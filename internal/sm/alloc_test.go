package sm

import (
	"testing"

	"cawa/internal/isa"
	"cawa/internal/simt"
)

// streamKernel loops every thread over a strided global-load sweep that
// wraps a 1 MiB window — far larger than the small config's L1D — so
// the steady state keeps exercising the whole hot path: fetch, issue,
// coalescer, MSHR fills, writeback and retire.
func streamKernel(t *testing.T, r *rig, iters int64) *simt.Kernel {
	t.Helper()
	base := r.mem.Alloc(1 << 17) // 2^17 words = 1 MiB of byte addresses
	b := isa.NewBuilder("stream")
	b.SReg(isa.R0, isa.SRGTid)
	b.Param(isa.R1, 0)
	b.MovI(isa.R9, 0) // accumulator
	b.MovI(isa.R5, 0) // loop counter
	b.Label("loop")
	b.MulI(isa.R2, isa.R5, 512)
	b.AndI(isa.R2, isa.R2, (1<<20)-1)
	b.MulI(isa.R6, isa.R0, 8)
	b.Add(isa.R2, isa.R2, isa.R6)
	b.AndI(isa.R2, isa.R2, (1<<20)-8)
	b.Add(isa.R2, isa.R2, isa.R1)
	b.Ld(isa.R7, isa.R2, 0)
	b.Add(isa.R9, isa.R9, isa.R7)
	b.AddI(isa.R5, isa.R5, 1)
	b.SetLTI(isa.R8, isa.R5, iters)
	b.CBra(isa.R8, "loop")
	b.MulI(isa.R2, isa.R0, 8)
	b.Add(isa.R2, isa.R2, isa.R1)
	b.St(isa.R2, 0, isa.R9)
	b.Exit()
	return &simt.Kernel{
		Name: "stream", Program: b.MustBuild(),
		GridDim: 8, BlockDim: 64,
		Params: []int64{base},
	}
}

// TestCyclePathAllocFree pins the event-driven engine's allocation
// budget: once a kernel is mid-flight and the memory system's event
// heap and MSHR pools have warmed up, driving the SM and memory system
// forward must not allocate at all. This is what keeps the simulator's
// throughput GC-free at steady state (see BenchmarkSimulatorThroughput).
func TestCyclePathAllocFree(t *testing.T) {
	r := newRig(t, nil)
	k := streamKernel(t, r, 1<<20)
	r.sm.SetKernel(k)
	for b := 0; b < k.GridDim && r.sm.CanAcceptBlock(); b++ {
		r.sm.DispatchBlock(b, b*2, 0)
	}

	var now int64
	for now < 20000 {
		now++
		r.sys.Cycle(now)
		r.sm.Cycle(now)
	}
	if r.done > 0 {
		t.Fatalf("kernel retired %d blocks during warmup; steady state not reached", r.done)
	}

	issued := r.sm.SchedulerIssued(0) + r.sm.SchedulerIssued(1)
	misses := r.sm.L1D().LoadMisses
	allocs := testing.AllocsPerRun(2000, func() {
		now++
		r.sys.Cycle(now)
		r.sm.Cycle(now)
	})
	if allocs != 0 {
		t.Errorf("cycle path allocated %.2f objects per cycle at steady state, want 0", allocs)
	}
	// Guard against a vacuous pass: the measured window must have kept
	// issuing instructions and missing in the L1D.
	if d := r.sm.SchedulerIssued(0) + r.sm.SchedulerIssued(1) - issued; d == 0 {
		t.Error("no instructions issued during the measured window")
	}
	if d := r.sm.L1D().LoadMisses - misses; d == 0 {
		t.Error("no L1D misses during the measured window")
	}
	if r.done > 0 {
		t.Fatalf("kernel finished during measurement; steady state was not sustained")
	}
}
