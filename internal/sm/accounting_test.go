package sm

import (
	"testing"

	"cawa/internal/isa"
	"cawa/internal/simt"
)

// TestStallAccountingConsistency: for every finished warp, the issue
// cycles plus all stall categories must not exceed the warp's execution
// time, and memory-heavy kernels must attribute most of their wait to
// memory.
func TestStallAccountingConsistency(t *testing.T) {
	r := newRig(t, nil)
	n := 2048
	buf := r.mem.Alloc(n * 64)
	b := isa.NewBuilder("memheavy")
	b.SReg(isa.R0, isa.SRGTid)
	b.MulI(isa.R1, isa.R0, 512) // scattered: one line per thread
	b.Param(isa.R2, 0)
	b.Add(isa.R1, isa.R1, isa.R2)
	b.MovI(isa.R5, 8)
	b.Label("head")
	b.Ld(isa.R3, isa.R1, 0)
	b.AddI(isa.R3, isa.R3, 1)
	b.St(isa.R1, 0, isa.R3)
	b.SubI(isa.R5, isa.R5, 1)
	b.CBra(isa.R5, "head")
	b.Exit()
	k := &simt.Kernel{Name: "memheavy", Program: b.MustBuild(), GridDim: 4, BlockDim: 128,
		Params: []int64{buf}}
	r.sm.SetKernel(k)
	dispatched := 0
	for r.sm.CanAcceptBlock() && dispatched < k.GridDim {
		r.sm.DispatchBlock(dispatched, dispatched*4, 0)
		dispatched++
	}
	var now int64
	for r.done < dispatched {
		now++
		r.sys.Cycle(now)
		r.sm.Cycle(now)
		if now > 10_000_000 {
			t.Fatal("timeout")
		}
	}
	var memTotal, execTotal int64
	for _, w := range r.sm.Finished {
		exec := w.ExecTime()
		accounted := w.IssueCycles + w.SchedStall + w.MemStall + w.ALUStall +
			w.BarrierStall + w.EmptyStall
		if accounted > exec {
			t.Fatalf("warp %d accounts %d cycles over %d exec", w.GID, accounted, exec)
		}
		if w.IssueCycles != w.Instructions {
			t.Fatalf("warp %d issued %d cycles for %d instructions", w.GID, w.IssueCycles, w.Instructions)
		}
		memTotal += w.MemStall
		execTotal += exec
	}
	if memShare := float64(memTotal) / float64(execTotal); memShare < 0.3 {
		t.Fatalf("memory-bound kernel attributed only %.2f of time to memory", memShare)
	}
}

// TestDivergenceCounted: a kernel with guaranteed lane divergence must
// record divergent branches in the warp records.
func TestDivergenceCounted(t *testing.T) {
	r := newRig(t, nil)
	b := isa.NewBuilder("div")
	b.SReg(isa.R0, isa.SRLane)
	b.AndI(isa.R1, isa.R0, 1)
	b.CBra(isa.R1, "odd")
	b.AddI(isa.R2, isa.R0, 1)
	b.Bra("join")
	b.Label("odd")
	b.AddI(isa.R2, isa.R0, 2)
	b.Label("join")
	b.Exit()
	k := &simt.Kernel{Name: "div", Program: b.MustBuild(), GridDim: 1, BlockDim: 32}
	r.sm.SetKernel(k)
	r.sm.DispatchBlock(0, 0, 0)
	r.run(t, 1, 100000)
	if r.sm.Finished[0].DivergentBranches != 1 {
		t.Fatalf("divergent branches %d, want 1", r.sm.Finished[0].DivergentBranches)
	}
}

// TestL1IColdMissesStallFetch: the very first issues pay instruction
// cache misses; the I-cache must end up holding the program.
func TestL1IColdMissesStallFetch(t *testing.T) {
	r := newRig(t, nil)
	k := countKernel(t, r.mem, 64)
	r.sm.SetKernel(k)
	r.sm.DispatchBlock(0, 0, 0)
	r.run(t, 1, 100000)
	ic := r.sm.L1I()
	if ic.Misses == 0 {
		t.Fatal("no instruction cache misses recorded")
	}
	if ic.Hits == 0 {
		t.Fatal("no instruction cache hits recorded")
	}
	if ic.HitRate() < 0.9 {
		t.Fatalf("I-cache hit rate %.2f too low for a tiny kernel", ic.HitRate())
	}
}
