package sm

import (
	"testing"

	"cawa/internal/cache"
	"cawa/internal/config"
	"cawa/internal/isa"
	"cawa/internal/memory"
	"cawa/internal/memsys"
	"cawa/internal/sched"
	"cawa/internal/simt"
)

type rig struct {
	cfg  config.Config
	mem  *memory.Memory
	sys  *memsys.System
	sm   *SM
	done int
}

func newRig(t *testing.T, factory sched.Factory) *rig {
	t.Helper()
	cfg := config.Small()
	r := &rig{cfg: cfg, mem: memory.New(1 << 22), sys: memsys.New(cfg)}
	r.sm = New(Options{
		ID:            0,
		Config:        cfg,
		Memory:        r.mem,
		MemSys:        r.sys,
		PolicyFactory: factory,
	})
	r.sm.OnBlockDone = func(int, int64) { r.done++ }
	return r
}

// run drives the SM until all dispatched blocks retire.
func (r *rig) run(t *testing.T, blocks int, maxCycles int64) int64 {
	t.Helper()
	var now int64
	for r.done < blocks {
		now++
		r.sys.Cycle(now)
		r.sm.Cycle(now)
		if now > maxCycles {
			t.Fatalf("SM did not finish %d blocks in %d cycles (%d done)", blocks, maxCycles, r.done)
		}
	}
	return now
}

func countKernel(t *testing.T, mem *memory.Memory, n int) *simt.Kernel {
	t.Helper()
	out := mem.Alloc(n)
	b := isa.NewBuilder("count")
	b.SReg(isa.R0, isa.SRGTid)
	b.Param(isa.R1, 1)
	b.SetGE(isa.R2, isa.R0, isa.R1)
	b.CBra(isa.R2, "exit")
	b.MulI(isa.R3, isa.R0, 8)
	b.Param(isa.R4, 0)
	b.Add(isa.R3, isa.R3, isa.R4)
	b.AddI(isa.R5, isa.R0, 1000)
	b.St(isa.R3, 0, isa.R5)
	b.Label("exit")
	b.Exit()
	return &simt.Kernel{
		Name: "count", Program: b.MustBuild(),
		GridDim: (n + 63) / 64, BlockDim: 64,
		Params: []int64{out, int64(n)},
	}
}

func TestSMRunsKernel(t *testing.T) {
	r := newRig(t, nil)
	k := countKernel(t, r.mem, 256)
	r.sm.SetKernel(k)
	for b := 0; b < k.GridDim; b++ {
		if !r.sm.CanAcceptBlock() {
			t.Fatalf("block %d rejected", b)
		}
		r.sm.DispatchBlock(b, b*2, 0)
	}
	r.run(t, k.GridDim, 1_000_000)
	out := k.Params[0]
	for i := 0; i < 256; i++ {
		if got := r.mem.Load(out + int64(i)*8); got != int64(i+1000) {
			t.Fatalf("out[%d] = %d", i, got)
		}
	}
	if len(r.sm.Finished) != k.GridDim*2 {
		t.Fatalf("finished warps %d", len(r.sm.Finished))
	}
	for _, w := range r.sm.Finished {
		if w.FinishCycle <= w.DispatchCycle || w.Instructions == 0 {
			t.Fatalf("bad warp record %+v", w)
		}
	}
}

func TestOccupancyLimits(t *testing.T) {
	r := newRig(t, nil)
	// 16 warps per block: 48 slots allow 3 blocks resident.
	b := isa.NewBuilder("idle")
	b.Bar() // park warps so blocks never retire during the test
	b.Exit()
	k := &simt.Kernel{Name: "idle", Program: b.MustBuild(), GridDim: 10, BlockDim: 512}
	r.sm.SetKernel(k)
	placed := 0
	for r.sm.CanAcceptBlock() {
		r.sm.DispatchBlock(placed, placed*16, 0)
		placed++
	}
	if placed != 3 {
		t.Fatalf("placed %d blocks, want 3 (48 slots / 16 warps)", placed)
	}

	// Shared memory limit: 48KB per SM, blocks of 24KB -> 2 resident.
	r2 := newRig(t, nil)
	k2 := &simt.Kernel{Name: "shm", Program: k.Program, GridDim: 10, BlockDim: 32, SharedWords: 3072}
	r2.sm.SetKernel(k2)
	placed = 0
	for r2.sm.CanAcceptBlock() {
		r2.sm.DispatchBlock(placed, placed, 0)
		placed++
	}
	if placed != 2 {
		t.Fatalf("placed %d blocks, want 2 (shared-memory bound)", placed)
	}

	// Register limit: 32768 regs, 64 regs/thread, 256 threads -> 2 blocks.
	r3 := newRig(t, nil)
	k3 := &simt.Kernel{Name: "regs", Program: k.Program, GridDim: 10, BlockDim: 256, RegsPerThread: 64}
	r3.sm.SetKernel(k3)
	placed = 0
	for r3.sm.CanAcceptBlock() {
		r3.sm.DispatchBlock(placed, placed*8, 0)
		placed++
	}
	if placed != 2 {
		t.Fatalf("placed %d blocks, want 2 (register bound)", placed)
	}

	// Block-count limit: tiny blocks are capped at MaxBlocksPerSM.
	r4 := newRig(t, nil)
	k4 := &simt.Kernel{Name: "tiny", Program: k.Program, GridDim: 100, BlockDim: 32}
	r4.sm.SetKernel(k4)
	placed = 0
	for r4.sm.CanAcceptBlock() {
		r4.sm.DispatchBlock(placed, placed, 0)
		placed++
	}
	if placed != r.cfg.MaxBlocksPerSM {
		t.Fatalf("placed %d blocks, want %d", placed, r.cfg.MaxBlocksPerSM)
	}
}

func TestBlockGranularSlotRelease(t *testing.T) {
	// One warp of the block loops much longer than the other: the
	// fast warp's slot must stay allocated until the block retires.
	r := newRig(t, nil)
	b := isa.NewBuilder("skew")
	b.SReg(isa.R0, isa.SRWarp)
	b.MovI(isa.R1, 10)
	b.CBraZ(isa.R0, "go") // warp 0: short loop
	b.MovI(isa.R1, 3000)  // warp 1: long loop
	b.Label("go")
	b.Label("head")
	b.SubI(isa.R1, isa.R1, 1)
	b.CBra(isa.R1, "head")
	b.Exit()
	k := &simt.Kernel{Name: "skew", Program: b.MustBuild(), GridDim: 1, BlockDim: 64}
	r.sm.SetKernel(k)
	r.sm.DispatchBlock(0, 0, 0)

	var now int64
	fastDone := false
	for r.done == 0 {
		now++
		r.sys.Cycle(now)
		r.sm.Cycle(now)
		if now > 1_000_000 {
			t.Fatal("timeout")
		}
		if len(r.sm.Finished) == 1 && !fastDone {
			fastDone = true
			if r.sm.ResidentWarps() != 2 {
				t.Fatalf("resident warps %d after fast warp finished; slot released early",
					r.sm.ResidentWarps())
			}
			if r.sm.CanAcceptBlock() && k.WarpsPerBlock(32) == 2 {
				// With 48 slots a second block fits anyway; the check
				// above (ResidentWarps) is the meaningful one.
				_ = fastDone
			}
		}
	}
	if r.sm.ResidentWarps() != 0 {
		t.Fatalf("slots leaked: %d resident after retire", r.sm.ResidentWarps())
	}
}

func TestBarrierSynchronizesBlock(t *testing.T) {
	// Warps increment a global counter before the barrier; after the
	// barrier every warp must observe the full count.
	r := newRig(t, nil)
	flagA := r.mem.Alloc(64)
	outA := r.mem.Alloc(64)
	b := isa.NewBuilder("barrier")
	b.SReg(isa.R0, isa.SRWarp)
	b.SReg(isa.R1, isa.SRLane)
	b.CBra(isa.R1, "afterinc") // only lane 0 of each warp increments
	b.Param(isa.R2, 0)
	b.MulI(isa.R3, isa.R0, 8)
	b.Add(isa.R3, isa.R3, isa.R2)
	b.MovI(isa.R4, 1)
	b.St(isa.R3, 0, isa.R4) // flag[warp] = 1
	b.Label("afterinc")
	b.Bar()
	// After the barrier, warp w reads flag[(w+1) % 4]: it must be set.
	b.AddI(isa.R5, isa.R0, 1)
	b.RemI(isa.R5, isa.R5, 4)
	b.Param(isa.R2, 0)
	b.MulI(isa.R5, isa.R5, 8)
	b.Add(isa.R5, isa.R5, isa.R2)
	b.Ld(isa.R6, isa.R5, 0)
	b.Param(isa.R7, 1)
	b.MulI(isa.R8, isa.R0, 8)
	b.Add(isa.R8, isa.R8, isa.R7)
	b.St(isa.R8, 0, isa.R6) // out[warp] = flag[(warp+1)%4]
	b.Exit()
	k := &simt.Kernel{Name: "barrier", Program: b.MustBuild(), GridDim: 1, BlockDim: 128,
		Params: []int64{flagA, outA}}
	r.sm.SetKernel(k)
	r.sm.DispatchBlock(0, 0, 0)
	r.run(t, 1, 1_000_000)
	for w := 0; w < 4; w++ {
		if got := r.mem.Load(outA + int64(w)*8); got != 1 {
			t.Fatalf("warp %d observed flag %d; barrier did not synchronize", w, got)
		}
	}
}

func TestScoreboardBlocksDependentIssue(t *testing.T) {
	// A load followed by a dependent add: the add must not issue until
	// the load's data returns, so total cycles >= DRAM latency.
	r := newRig(t, nil)
	buf := r.mem.Alloc(8)
	r.mem.Store(buf, 123)
	b := isa.NewBuilder("dep")
	b.Param(isa.R1, 0)
	b.Ld(isa.R2, isa.R1, 0)
	b.AddI(isa.R3, isa.R2, 1)
	b.St(isa.R1, 8, isa.R3)
	b.Exit()
	k := &simt.Kernel{Name: "dep", Program: b.MustBuild(), GridDim: 1, BlockDim: 1,
		Params: []int64{buf}}
	r.sm.SetKernel(k)
	r.sm.DispatchBlock(0, 0, 0)
	cycles := r.run(t, 1, 100000)
	if cycles < int64(r.cfg.DRAMLatency) {
		t.Fatalf("finished in %d cycles; dependent add issued before the miss returned", cycles)
	}
	if got := r.mem.Load(buf + 8); got != 124 {
		t.Fatalf("result %d", got)
	}
	// The warp's stall accounting must attribute the wait to memory.
	w := r.sm.Finished[0]
	if w.MemStall < int64(r.cfg.DRAMLatency)/2 {
		t.Fatalf("memory stalls %d too low for a %d-cycle miss", w.MemStall, r.cfg.DRAMLatency)
	}
}

func TestCoalescingOccupiesLSU(t *testing.T) {
	// 32 lanes accessing 32 distinct lines -> 32 transactions; a fully
	// coalesced access -> 1 transaction. Compare cycle counts.
	runOne := func(stride int64) int64 {
		r := newRig(t, nil)
		buf := r.mem.Alloc(32 * 16 * 2)
		b := isa.NewBuilder("coal")
		b.SReg(isa.R0, isa.SRLane)
		b.MulI(isa.R1, isa.R0, stride)
		b.Param(isa.R2, 0)
		b.Add(isa.R1, isa.R1, isa.R2)
		b.MovI(isa.R5, 32) // loop count: repeated accesses hit in L1
		b.Label("head")
		b.Ld(isa.R3, isa.R1, 0)
		b.AddI(isa.R4, isa.R3, 1) // depend on the load
		b.SubI(isa.R5, isa.R5, 1)
		b.CBra(isa.R5, "head")
		b.Exit()
		k := &simt.Kernel{Name: "coal", Program: b.MustBuild(), GridDim: 1, BlockDim: 32,
			Params: []int64{buf}}
		r.sm.SetKernel(k)
		r.sm.DispatchBlock(0, 0, 0)
		var now int64
		for r.done == 0 {
			now++
			r.sys.Cycle(now)
			r.sm.Cycle(now)
		}
		return now
	}
	coalesced := runOne(8)   // 32 lanes x 8B = 2 lines per access
	scattered := runOne(128) // 32 lanes x 128B stride = 32 lines per access
	// Each scattered iteration occupies the LSU for 32 cycles instead
	// of 2; over 32 iterations the gap must be large.
	if scattered < coalesced+300 {
		t.Fatalf("scattered (%d cycles) not clearly slower than coalesced (%d)", scattered, coalesced)
	}
}

func TestPoliciesInstalledPerUnit(t *testing.T) {
	r := newRig(t, func() sched.Policy { return sched.NewGTO() })
	ps := r.sm.Policies()
	if len(ps) != r.cfg.SchedulersPerSM {
		t.Fatalf("%d policies", len(ps))
	}
	if ps[0] == ps[1] {
		t.Fatal("scheduler units share one policy instance")
	}
}

func TestL1PolicyPluggable(t *testing.T) {
	cfg := config.Small()
	mem := memory.New(1 << 20)
	sys := memsys.New(cfg)
	m := New(Options{Config: cfg, Memory: mem, MemSys: sys, L1Policy: cache.SRRIP{}})
	if got := m.L1D().Cache().Policy().Name(); got != "SRRIP" {
		t.Fatalf("policy %s", got)
	}
}
