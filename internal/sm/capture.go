package sm

import (
	"fmt"

	"cawa/internal/cache"
	"cawa/internal/isa"
	"cawa/internal/sched"
	"cawa/internal/simt"
	"cawa/internal/stats"
)

// Serializable snapshots of one SM's pipeline state. Checkpoints fire
// at the engine-clean PerCycle boundary, where every engine variant has
// already flushed its store log and committed its stage buffer, so the
// snapshot never contains staged traffic. Three things are deliberately
// NOT part of the snapshot:
//
//   - The L1 data cache: it lives in internal/memsys and is captured
//     with the memory system (its MSHR tokens reference slot
//     generations, which IS captured here — Gen must round-trip).
//   - The criticality provider and L1 replacement policy: their
//     concrete types (internal/core) sit above this package, so the
//     checkpoint layer captures them via type switch.
//   - The memoized coalescing peek (peekPC/peekInstr/peekBuf): purely
//     derived from warp registers, recomputed on the next issue. Restore
//     leaves peekBuf empty, which invalidates the memo by construction.

// WBState is one pending register writeback.
type WBState struct {
	Time int64
	Reg  isa.Reg
}

// SlotState is the snapshot of one warp slot.
type SlotState struct {
	Valid bool
	Gen   int64
	Warp  simt.WarpState
	Block int // index into State.Blocks, -1 when free
	Age   int64

	BusyALU uint64
	BusyMem uint64
	WB      []WBState
	LoadRem [isa.NumRegs]int32

	LastIssue int64
	Rec       stats.WarpRecord

	PC          int32
	Done        bool
	Reason      uint8
	ReadyCycle  int64
	IssuedCycle int64
}

// BlockCapture is the snapshot of one resident block. The execution
// context is not serialized: it is rebuilt at restore time from the
// kernel and the restoring engine's store-log wiring (serial and
// parallel engines bind Log differently, and a checkpoint must restore
// onto either).
type BlockCapture struct {
	ID        int // grid-local block id
	Shared    []int64
	Live      int
	AtBarrier int
	Slots     []int
}

// UnitState is the snapshot of one scheduler unit.
type UnitState struct {
	Policy sched.State
	Issued int64
}

// State is the snapshot of one SM.
type State struct {
	Slots  []SlotState
	Blocks []BlockCapture
	Units  []UnitState

	L1I    cache.State
	ICBusy int64

	Cycle        int64
	LSUBusyUntil int64
	WBNext       int64
	AgeSeq       int64

	ResidentBlocks int
	SharedInUse    int
	RegsInUse      int

	Finished       []stats.WarpRecord
	BlockStatsBase int

	Instructions int64
	ThreadInstrs int64
	MemInstrs    int64
	MemTxns      int64
}

// Capture snapshots the SM's pipeline state.
func (m *SM) Capture() (State, error) {
	st := State{
		Slots:          make([]SlotState, len(m.slots)),
		Units:          make([]UnitState, len(m.units)),
		L1I:            m.l1i.Capture(),
		ICBusy:         m.icBusy,
		Cycle:          m.cycle,
		LSUBusyUntil:   m.lsuBusyUntil,
		WBNext:         m.wbNext,
		AgeSeq:         m.ageSeq,
		ResidentBlocks: m.residentBlocks,
		SharedInUse:    m.sharedInUse,
		RegsInUse:      m.regsInUse,
		Finished:       append([]stats.WarpRecord(nil), m.Finished...),
		BlockStatsBase: m.BlockStatsBase,
		Instructions:   m.Instructions,
		ThreadInstrs:   m.ThreadInstrs,
		MemInstrs:      m.MemInstrs,
		MemTxns:        m.MemTxns,
	}

	// Collect the resident blocks in first-appearance slot order so the
	// snapshot is canonical regardless of pointer values.
	blockIndex := make(map[*blockState]int)
	for i := range m.slots {
		s := &m.slots[i]
		if !s.valid {
			continue
		}
		if _, ok := blockIndex[s.block]; ok {
			continue
		}
		blockIndex[s.block] = len(st.Blocks)
		st.Blocks = append(st.Blocks, BlockCapture{
			ID:        s.block.id,
			Shared:    append([]int64(nil), s.block.shared...),
			Live:      s.block.live,
			AtBarrier: s.block.atBarrier,
			Slots:     append([]int(nil), s.block.slots...),
		})
	}
	if len(blockIndex) != m.residentBlocks {
		return State{}, fmt.Errorf("sm %d: capture found %d blocks via slots, %d resident",
			m.ID, len(blockIndex), m.residentBlocks)
	}

	for i := range m.slots {
		s := &m.slots[i]
		out := &st.Slots[i]
		out.Gen = s.gen // generations persist across occupancies
		if !s.valid {
			out.Block = -1
			continue
		}
		out.Valid = true
		out.Warp = s.warp.Capture()
		out.Block = blockIndex[s.block]
		out.Age = s.age
		out.BusyALU = s.busyALU
		out.BusyMem = s.busyMem
		out.WB = make([]WBState, len(s.wb))
		for j, e := range s.wb {
			out.WB[j] = WBState{Time: e.time, Reg: e.reg}
		}
		out.LoadRem = s.loadRem
		out.LastIssue = s.lastIssue
		out.Rec = s.rec
		out.PC = s.pc
		out.Done = s.done
		out.Reason = uint8(s.reason)
		out.ReadyCycle = s.readyCycle
		out.IssuedCycle = s.issuedCycle
	}

	for i := range m.units {
		ps, err := sched.Capture(m.units[i].policy)
		if err != nil {
			return State{}, fmt.Errorf("sm %d unit %d: %w", m.ID, i, err)
		}
		st.Units[i] = UnitState{Policy: ps, Issued: m.units[i].issued}
	}
	return st, nil
}

// Restore overwrites the SM's pipeline state from a snapshot, installing
// k as the mid-flight kernel. The SM must be freshly built with the same
// configuration; block execution contexts are rebuilt against the SM's
// current memory and store-log wiring, so the restoring engine may
// differ from the capturing one.
func (m *SM) Restore(st State, k *simt.Kernel) error {
	if len(st.Slots) != len(m.slots) {
		return fmt.Errorf("sm %d: restore slot count mismatch (have %d, snapshot %d)",
			m.ID, len(m.slots), len(st.Slots))
	}
	if len(st.Units) != len(m.units) {
		return fmt.Errorf("sm %d: restore unit count mismatch (have %d, snapshot %d)",
			m.ID, len(m.units), len(st.Units))
	}
	if err := m.l1i.Restore(st.L1I); err != nil {
		return err
	}

	m.kernel = k
	m.prog = k.Program
	m.meta = k.Program.Meta()

	blocks := make([]*blockState, len(st.Blocks))
	for i, bc := range st.Blocks {
		blk := &blockState{
			id:        bc.ID,
			shared:    append([]int64(nil), bc.Shared...),
			live:      bc.Live,
			atBarrier: bc.AtBarrier,
			slots:     append([]int(nil), bc.Slots...),
		}
		blk.ctx = simt.ExecContext{
			Mem:      m.mem,
			Log:      m.storeLog,
			Shared:   blk.shared,
			Params:   k.Params,
			BlockID:  blk.id,
			GridDim:  k.GridDim,
			BlockDim: k.BlockDim,
		}
		blocks[i] = blk
	}

	for i := range m.slots {
		in := &st.Slots[i]
		s := &m.slots[i]
		*s = slot{gen: in.Gen}
		if !in.Valid {
			continue
		}
		if in.Block < 0 || in.Block >= len(blocks) {
			return fmt.Errorf("sm %d slot %d: restore block index %d out of range (%d blocks)",
				m.ID, i, in.Block, len(blocks))
		}
		w, err := simt.NewWarpFromState(in.Warp)
		if err != nil {
			return err
		}
		s.valid = true
		s.warp = w
		s.block = blocks[in.Block]
		s.age = in.Age
		s.busyALU = in.BusyALU
		s.busyMem = in.BusyMem
		s.wb = make([]wbEvent, len(in.WB))
		for j, e := range in.WB {
			s.wb[j] = wbEvent{time: e.Time, reg: e.Reg}
		}
		s.loadRem = in.LoadRem
		s.lastIssue = in.LastIssue
		s.rec = in.Rec
		s.pc = in.PC
		s.done = in.Done
		s.reason = stallReason(in.Reason)
		s.readyCycle = in.ReadyCycle
		s.issuedCycle = in.IssuedCycle
	}

	for i := range m.units {
		if err := sched.Restore(m.units[i].policy, st.Units[i].Policy); err != nil {
			return fmt.Errorf("sm %d unit %d: %w", m.ID, i, err)
		}
		m.units[i].issued = st.Units[i].Issued
	}

	m.icBusy = st.ICBusy
	m.cycle = st.Cycle
	m.lsuBusyUntil = st.LSUBusyUntil
	m.wbNext = st.WBNext
	m.ageSeq = st.AgeSeq
	m.residentBlocks = st.ResidentBlocks
	m.sharedInUse = st.SharedInUse
	m.regsInUse = st.RegsInUse
	m.Finished = append(m.Finished[:0], st.Finished...)
	m.BlockStatsBase = st.BlockStatsBase
	m.Instructions = st.Instructions
	m.ThreadInstrs = st.ThreadInstrs
	m.MemInstrs = st.MemInstrs
	m.MemTxns = st.MemTxns
	return nil
}
