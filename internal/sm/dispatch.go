package sm

import (
	"fmt"

	"cawa/internal/simt"
	"cawa/internal/stats"
)

// CanAcceptBlock reports whether a block of the installed kernel can be
// dispatched right now, honoring the occupancy limits of Table 1: warp
// slots, block slots, shared memory, and (when the kernel declares a
// per-thread register count) the register file.
func (m *SM) CanAcceptBlock() bool {
	k := m.kernel
	if k == nil {
		return false
	}
	if m.residentBlocks >= m.cfg.MaxBlocksPerSM {
		return false
	}
	need := k.WarpsPerBlock(m.cfg.WarpSize)
	free := 0
	for i := range m.slots {
		if !m.slots[i].valid {
			free++
		}
	}
	if free < need {
		return false
	}
	if m.sharedInUse+k.SharedWords*8 > m.cfg.SharedMemPerSM {
		return false
	}
	if k.RegsPerThread > 0 && m.regsInUse+k.RegsPerThread*k.BlockDim > m.cfg.RegistersPerSM {
		return false
	}
	return true
}

// DispatchBlock places block blockID of the installed kernel onto the
// SM. gidBase numbers the block's warps globally. The caller must have
// checked CanAcceptBlock.
func (m *SM) DispatchBlock(blockID, gidBase int, now int64) {
	k := m.kernel
	if k == nil || !m.CanAcceptBlock() {
		panic(fmt.Sprintf("sm %d: DispatchBlock without capacity", m.ID))
	}
	blk := &blockState{
		id:     blockID,
		shared: make([]int64, k.SharedWords),
	}
	blk.ctx = simt.ExecContext{
		Mem:      m.mem,
		Log:      m.storeLog,
		Shared:   blk.shared,
		Params:   k.Params,
		BlockID:  blockID,
		GridDim:  k.GridDim,
		BlockDim: k.BlockDim,
	}

	warps := k.WarpsPerBlock(m.cfg.WarpSize)
	progLen := int32(k.Program.Len())
	placed := 0
	for i := range m.slots {
		if placed == warps {
			break
		}
		s := &m.slots[i]
		if s.valid {
			continue
		}
		lanes := k.BlockDim - placed*m.cfg.WarpSize
		if lanes > m.cfg.WarpSize {
			lanes = m.cfg.WarpSize
		}
		m.ageSeq++
		w := simt.NewWarp(gidBase+placed, blockID, placed, lanes, m.cfg.WarpSize, progLen)
		*s = slot{
			valid:     true,
			gen:       s.gen + 1,
			warp:      w,
			block:     blk,
			age:       m.ageSeq,
			wb:        s.wb[:0],      // recycle the previous occupant's
			peekBuf:   s.peekBuf[:0], // backing arrays (steady-state
			lastIssue: now - 1,       // allocation-free dispatch)
			rec: stats.WarpRecord{
				GID:           w.GID,
				SM:            m.ID,
				Block:         blockID + m.BlockStatsBase,
				IndexInBlock:  placed,
				DispatchCycle: now,
			},
		}
		blk.slots = append(blk.slots, i)
		blk.live++
		m.units[i%len(m.units)].policy.OnWarpArrived(i)
		m.crit.OnWarpArrived(i, w)
		placed++
	}
	if placed != warps {
		panic(fmt.Sprintf("sm %d: placed %d of %d warps", m.ID, placed, warps))
	}
	m.residentBlocks++
	m.sharedInUse += k.SharedWords * 8
	if k.RegsPerThread > 0 {
		m.regsInUse += k.RegsPerThread * k.BlockDim
	}
}
