package sm

import (
	"fmt"

	"cawa/internal/cache"
	"cawa/internal/isa"
	"cawa/internal/memsys"
	"cawa/internal/simt"
)

// Cycle advances the SM by one cycle. The GPU calls memsys.Cycle first,
// so load fills for this cycle have already been delivered.
func (m *SM) Cycle(now int64) {
	m.cycle = now
	m.retireWritebacks(now)
	for u := range m.units {
		m.issueFrom(&m.units[u], now)
	}
	m.accountStalls(now)
}

// retireWritebacks clears scoreboard bits whose compute results are due.
func (m *SM) retireWritebacks(now int64) {
	for i := range m.slots {
		s := &m.slots[i]
		if !s.valid || len(s.wb) == 0 {
			continue
		}
		kept := s.wb[:0]
		for _, e := range s.wb {
			if e.time <= now {
				s.busyALU &^= 1 << e.reg
			} else {
				kept = append(kept, e)
			}
		}
		s.wb = kept
	}
}

// readiness evaluates whether slot i can issue at now and records the
// stall classification. MSHR capacity is not checked here (it is
// checked once at issue time); a rejected issue demotes the slot to a
// structural memory stall for the cycle.
func (m *SM) readiness(i int, now int64) bool {
	s := &m.slots[i]
	s.reason = reasonNone
	if !s.valid || s.warp.Done() {
		return false
	}
	if s.warp.AtBarrier {
		s.reason = reasonBarrier
		return false
	}
	pc := s.warp.PC()
	if !m.fetch(pc, now) {
		s.reason = reasonMemStruct
		return false
	}
	in := m.prog.At(pc)
	need := regMask(in)
	if need&s.busyMem != 0 {
		s.reason = reasonMemData
		return false
	}
	if need&s.busyALU != 0 {
		s.reason = reasonALU
		return false
	}
	switch in.Op.Class() {
	case isa.ClassMem, isa.ClassSMem:
		if m.lsuBusyUntil > now {
			s.reason = reasonMemStruct
			return false
		}
	}
	s.reason = reasonReady
	s.readyCycle = now
	return true
}

// issueFrom lets one scheduler unit pick and issue a warp. A pick whose
// memory access cannot be accepted (MSHR full) is removed from the
// ready set and the policy re-selects, bounding retries by the ready
// count.
func (m *SM) issueFrom(u *schedUnit, now int64) {
	u.ready = u.ready[:0]
	for _, i := range u.slots {
		if m.readiness(i, now) {
			u.ready = append(u.ready, i)
		}
	}
	// Bound MSHR-reject retries: once the miss path is saturated,
	// further loads this cycle will almost surely reject too, and
	// probing them all is wasted work.
	const maxRejects = 2
	for rejects := 0; len(u.ready) > 0 && rejects <= maxRejects; rejects++ {
		u.ctx.Cycle = now
		u.ctx.Ready = u.ready
		pick := u.policy.Select(&u.ctx)
		if pick < 0 {
			return
		}
		if m.tryIssue(pick, now) {
			u.issued++
			return
		}
		// Structural reject: reclassify and let the policy try again.
		s := &m.slots[pick]
		s.reason = reasonMemStruct
		s.readyCycle = -1
		u.ready = removeSlot(u.ready, pick)
	}
}

func removeSlot(xs []int, v int) []int {
	out := xs[:0]
	for _, x := range xs {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// tryIssue executes one instruction from the warp in slot i, unless its
// global-memory access cannot be accepted this cycle.
func (m *SM) tryIssue(i int, now int64) bool {
	s := &m.slots[i]
	w := s.warp
	blk := s.block

	pc := w.PC()
	in := m.prog.At(pc)
	if in.Op == isa.OpLd {
		if s.peekPC == pc && s.peekInstr == s.rec.Instructions && len(s.peekBuf) > 0 {
			m.lineBuf = append(m.lineBuf[:0], s.peekBuf...)
		} else {
			m.peekLines(s, in)
			s.peekPC = pc
			s.peekInstr = s.rec.Instructions
			s.peekBuf = append(s.peekBuf[:0], m.lineBuf...)
		}
		if !m.l1d.CanAccept(m.lineBuf) {
			return false
		}
	}

	stall := now - s.lastIssue - 1
	if stall < 0 {
		stall = 0
	}
	st := simt.Exec(w, m.prog, &blk.ctx)
	s.lastIssue = now
	s.issuedCycle = now
	s.rec.IssueCycles++
	s.rec.Instructions++
	s.rec.ThreadInstrs += int64(st.Lanes)
	m.Instructions++
	m.ThreadInstrs += int64(st.Lanes)
	if st.Divergent {
		s.rec.DivergentBranches++
	}
	m.crit.OnIssue(i, &st, stall, now)

	switch st.Kind {
	case simt.StepCompute:
		if st.Instr.Op.HasDst() {
			s.busyALU |= 1 << st.Instr.Dst
			s.wb = append(s.wb, wbEvent{time: now + m.classLatency(st.Instr.Op.Class()), reg: st.Instr.Dst})
		}

	case simt.StepSMem:
		m.issueShared(s, &st, now)

	case simt.StepMem:
		m.issueGlobal(i, s, &st, now)

	case simt.StepBarrier:
		blk.atBarrier++
		m.maybeReleaseBarrier(blk)

	case simt.StepExit:
		if w.Done() {
			m.finishWarp(i, now)
		}
	}
	return true
}

// issueShared models shared-memory latency and bank conflicts: the LSU
// is occupied for one cycle per maximum bank-conflict degree across the
// 32 banks.
func (m *SM) issueShared(s *slot, st *simt.Step, now int64) {
	const banks = 32
	var bankWord [banks]int64
	var bankCnt [banks]int
	degree := 1
	for _, a := range st.Accesses {
		word := a.Addr / 8
		b := int(word % banks)
		if bankCnt[b] == 0 || bankWord[b] != word {
			bankWord[b] = word
			bankCnt[b]++
			if bankCnt[b] > degree {
				degree = bankCnt[b]
			}
		}
	}
	m.lsuBusyUntil = now + int64(degree)
	if st.IsLoad {
		s.busyALU |= 1 << st.Instr.Dst
		s.wb = append(s.wb, wbEvent{time: now + int64(m.cfg.SharedMemLatency) + int64(degree) - 1, reg: st.Instr.Dst})
	}
}

// peekLines fills m.lineBuf with the distinct cache lines the next
// memory instruction of slot s will access, without executing it.
func (m *SM) peekLines(s *slot, in isa.Instr) {
	w := s.warp
	mask := w.ActiveMask()
	lineSize := int64(m.cfg.L1D.LineBytes)
	m.lineBuf = m.lineBuf[:0]
	for lane := 0; lane < w.Size; lane++ {
		if mask&(1<<uint(lane)) == 0 {
			continue
		}
		addr := (w.Reg(lane, in.A) + in.Imm) &^ (lineSize - 1)
		// Fast path: consecutive lanes usually touch the same line.
		if n := len(m.lineBuf); n > 0 && m.lineBuf[n-1] == addr {
			continue
		}
		if !containsInt64(m.lineBuf, addr) {
			m.lineBuf = append(m.lineBuf, addr)
		}
	}
}

func containsInt64(xs []int64, v int64) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// issueGlobal coalesces a global access into line transactions and
// sends them to the L1D. For loads, m.lineBuf was just filled by
// tryIssue and acceptance verified; stores recompute their lines (they
// never reject).
func (m *SM) issueGlobal(slotIdx int, s *slot, st *simt.Step, now int64) {
	if !st.IsLoad {
		lineSize := int64(m.cfg.L1D.LineBytes)
		m.lineBuf = m.lineBuf[:0]
		for _, a := range st.Accesses {
			la := a.Addr &^ (lineSize - 1)
			if !containsInt64(m.lineBuf, la) {
				m.lineBuf = append(m.lineBuf, la)
			}
		}
	}
	m.lsuBusyUntil = now + int64(len(m.lineBuf))
	m.MemInstrs++
	m.MemTxns += int64(len(m.lineBuf))

	critical := m.crit.IsCritical(slotIdx)
	if st.IsLoad {
		m.nextToken++
		tok := m.nextToken
		remaining := 0
		for _, la := range m.lineBuf {
			req := cache.Request{Addr: la, PC: st.PC, Warp: s.warp.GID, Critical: critical}
			switch m.l1d.AccessLoad(req, tok, now) {
			case memsys.Hit:
			case memsys.Miss:
				remaining++
			case memsys.Reject:
				panic(fmt.Sprintf("sm %d: load rejected after CanAccept (line %#x)", m.ID, la))
			}
		}
		if remaining == 0 {
			s.busyALU |= 1 << st.Instr.Dst
			s.wb = append(s.wb, wbEvent{time: now + int64(m.cfg.L1HitLatency), reg: st.Instr.Dst})
		} else {
			s.busyMem |= 1 << st.Instr.Dst
			m.tokens[tok] = &loadToken{slot: slotIdx, gen: s.gen, reg: st.Instr.Dst, remaining: remaining}
		}
		return
	}
	for _, la := range m.lineBuf {
		req := cache.Request{Addr: la, PC: st.PC, Warp: s.warp.GID, Critical: critical, Write: true}
		m.l1d.AccessStore(req, now)
	}
}

// handleFill receives completed L1 miss lines and unblocks loads.
func (m *SM) handleFill(_ int64, tokens []int64) {
	for _, t := range tokens {
		lt, ok := m.tokens[t]
		if !ok {
			continue
		}
		lt.remaining--
		if lt.remaining > 0 {
			continue
		}
		delete(m.tokens, t)
		s := &m.slots[lt.slot]
		if s.valid && s.gen == lt.gen {
			s.busyMem &^= 1 << lt.reg
		}
	}
}

// maybeReleaseBarrier opens the block barrier once every live warp has
// arrived.
func (m *SM) maybeReleaseBarrier(blk *blockState) {
	if blk.atBarrier < blk.live || blk.atBarrier == 0 {
		return
	}
	blk.atBarrier = 0
	for _, si := range blk.slots {
		s := &m.slots[si]
		if s.valid && s.block == blk {
			s.warp.AtBarrier = false
		}
	}
}

// finishWarp records the warp's completion. The slot stays allocated —
// a thread-block's resources (warp slots, registers, shared memory) are
// only released when every warp of the block has finished. This is the
// root of the warp criticality problem the paper studies: fast warps
// idle at the implicit kernel-exit barrier, wasting their resources,
// until the critical warp arrives (Section 2.2).
func (m *SM) finishWarp(i int, now int64) {
	s := &m.slots[i]
	s.rec.FinishCycle = now
	m.Finished = append(m.Finished, s.rec)
	blk := s.block

	m.units[i%len(m.units)].policy.OnWarpFinished(i)
	m.crit.OnWarpFinished(i)

	blk.live--
	if blk.live == 0 {
		m.retireBlock(blk, now)
		return
	}
	m.maybeReleaseBarrier(blk)
}

// retireBlock frees every slot of the block and returns its resources.
func (m *SM) retireBlock(blk *blockState, now int64) {
	for _, i := range blk.slots {
		s := &m.slots[i]
		if s.block != blk {
			continue
		}
		s.valid = false
		s.gen++
		s.warp = nil
		s.block = nil
		s.busyALU, s.busyMem = 0, 0
		s.wb = nil
	}
	m.residentBlocks--
	m.sharedInUse -= len(blk.shared) * 8
	if m.kernel.RegsPerThread > 0 {
		m.regsInUse -= m.kernel.RegsPerThread * m.kernel.BlockDim
	}
	if m.OnBlockDone != nil {
		m.OnBlockDone(blk.id, now)
	}
}

// accountStalls classifies this cycle for every resident warp that did
// not issue (Figures 2c and 4; CPL's stall term sees the same cycles
// via the per-issue stall delta).
func (m *SM) accountStalls(now int64) {
	for i := range m.slots {
		s := &m.slots[i]
		if !s.valid || s.issuedCycle == now || s.warp.Done() {
			continue
		}
		switch {
		case s.readyCycle == now:
			s.rec.SchedStall++
		case s.reason == reasonBarrier:
			s.rec.BarrierStall++
		case s.reason == reasonMemData || s.reason == reasonMemStruct:
			s.rec.MemStall++
		case s.reason == reasonALU:
			s.rec.ALUStall++
		default:
			s.rec.EmptyStall++
		}
	}
}

// Occupancy returns resident warps over capacity (statistics).
func (m *SM) Occupancy() float64 {
	return float64(m.ResidentWarps()) / float64(len(m.slots))
}
