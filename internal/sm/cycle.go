package sm

import (
	"fmt"
	"math"

	"cawa/internal/cache"
	"cawa/internal/isa"
	"cawa/internal/memsys"
	"cawa/internal/simt"
)

// NoWake is the Cycle return value meaning "this SM will never act
// again without external input" (a memory fill or a block dispatch).
const NoWake int64 = math.MaxInt64

// Cycle advances the SM by one cycle. The GPU calls memsys.Cycle first,
// so load fills for this cycle have already been delivered.
//
// The return value is a conservative wakeup cycle for the event-driven
// fast-forward in gpu.Launch: the earliest future cycle at which this
// SM's state can change on its own (a writeback retiring, the fetch or
// load-store path freeing). A return of now means the SM had at least
// one issuable warp this cycle — its schedulers must run every cycle,
// so no cycles may be skipped. NoWake means the SM is idle or blocked
// entirely on external events. Skipping to the minimum returned wake
// (clamped by the memory system's next event) and crediting the
// skipped span in bulk (AccountSkipped) is byte-identical to ticking
// every cycle, because a cycle in which no scheduler has a ready warp
// mutates nothing except the stall counters.
func (m *SM) Cycle(now int64) int64 {
	m.cycle = now
	if m.storeLog != nil {
		// Stamp deferred stores with their emitting cycle so the
		// lookahead engine's barrier replay can flush them per-cycle.
		m.storeLog.SetCycle(now)
	}
	m.retireWritebacks(now)
	anyReady := false
	for u := range m.units {
		if m.issueFrom(&m.units[u], now) {
			anyReady = true
		}
	}
	m.accountStalls(now)
	if anyReady {
		return now
	}
	return m.nextWake(now)
}

// nextWake returns the earliest future cycle at which the SM's own
// state changes: a compute writeback retiring, the instruction-fetch
// path unblocking, or the load-store unit freeing. Barrier releases
// and load completions need no timer — the former requires an issue
// (so some warp must be ready first) and the latter rides a memsys
// event, which the GPU folds into the skip horizon separately.
func (m *SM) nextWake(now int64) int64 {
	wake := NoWake
	if m.icBusy > now {
		wake = m.icBusy
	}
	if m.lsuBusyUntil > now && m.lsuBusyUntil < wake {
		wake = m.lsuBusyUntil
	}
	if m.wbNext < wake {
		wake = m.wbNext
	}
	return wake
}

// AccountSkipped credits span cycles of stall time to every resident
// live warp, reproducing in one call what accountStalls would have
// recorded over span consecutive cycles in which no scheduler had a
// ready warp. Each warp's classification is the one computed by the
// last readiness evaluation; it cannot change during the skipped span
// because nothing issues, fills, or retires in it (the GPU clamps the
// span to the next writeback, fetch/LSU release, and memory event).
// No other SM state needs touching: readiness probes the I-cache only
// after the operand checks pass, and a warp whose operands clear or
// whose fetch path opens ends the span, so a ticking engine performs
// zero I-cache probes across these cycles too.
func (m *SM) AccountSkipped(span int64) {
	if span <= 0 {
		return
	}
	for i := range m.slots {
		s := &m.slots[i]
		if !s.valid || s.done {
			continue
		}
		switch s.reason {
		case reasonBarrier:
			s.rec.BarrierStall += span
		case reasonMemData, reasonMemStruct:
			s.rec.MemStall += span
		case reasonALU:
			s.rec.ALUStall += span
		default:
			s.rec.EmptyStall += span
		}
	}
}

// retireWritebacks clears scoreboard bits whose compute results are due.
// m.wbNext caches a lower bound on the earliest pending writeback, so
// cycles with nothing due skip the slot scan with one compare.
func (m *SM) retireWritebacks(now int64) {
	if m.wbNext > now {
		return
	}
	next := NoWake
	for i := range m.slots {
		s := &m.slots[i]
		if !s.valid || len(s.wb) == 0 {
			continue
		}
		kept := s.wb[:0]
		for _, e := range s.wb {
			if e.time <= now {
				s.busyALU &^= 1 << e.reg
			} else {
				kept = append(kept, e) //cawalint:alloc-ok in-place filter within the writeback queue's existing capacity
				if e.time < next {
					next = e.time
				}
			}
		}
		s.wb = kept
	}
	m.wbNext = next
}

// pushWB schedules a register writeback and keeps the earliest-pending
// cache current.
func (m *SM) pushWB(s *slot, t int64, reg isa.Reg) {
	s.wb = append(s.wb, wbEvent{time: t, reg: reg}) //cawalint:alloc-ok amortized growth of the per-slot writeback queue (bounded by pipe depth)
	if t < m.wbNext {
		m.wbNext = t
	}
}

// readiness evaluates whether slot i can issue at now and records the
// stall classification. MSHR capacity is not checked here (it is
// checked once at issue time); a rejected issue demotes the slot to a
// structural memory stall for the cycle.
//
// The instruction fetch is checked last, after the operand and LSU
// hazards: an operand-blocked warp performs no I-cache probe. This
// ordering is what lets the fast-forward engine skip stalled spans
// without touching the I-cache — any warp that would probe during the
// span either becomes ready (ending the span) or takes an I-miss,
// which sets icBusy and therefore bounds the span at its own cycle.
func (m *SM) readiness(i int, now int64) bool {
	s := &m.slots[i]
	s.reason = reasonNone
	if !s.valid || s.done {
		return false
	}
	if s.warp.AtBarrier {
		s.reason = reasonBarrier
		return false
	}
	md := &m.meta[s.pc]
	if md.RegMask&s.busyMem != 0 {
		s.reason = reasonMemData
		return false
	}
	if md.RegMask&s.busyALU != 0 {
		s.reason = reasonALU
		return false
	}
	if md.LSUGated && m.lsuBusyUntil > now {
		s.reason = reasonMemStruct
		return false
	}
	if !m.fetch(s.pc, now) {
		s.reason = reasonMemStruct
		return false
	}
	s.reason = reasonReady
	s.readyCycle = now
	return true
}

// issueFrom lets one scheduler unit pick and issue a warp, returning
// whether any of its warps was issuable this cycle. A pick whose
// memory access cannot be accepted (MSHR full) is removed from the
// ready set and the policy re-selects, bounding retries by the ready
// count.
func (m *SM) issueFrom(u *schedUnit, now int64) bool {
	u.ready = u.ready[:0]
	for _, i := range u.slots {
		if m.readiness(i, now) {
			u.ready = append(u.ready, i) //cawalint:alloc-ok amortized growth of the reused ready buffer
		}
	}
	if len(u.ready) == 0 {
		return false
	}
	// Bound MSHR-reject retries: once the miss path is saturated,
	// further loads this cycle will almost surely reject too, and
	// probing them all is wasted work.
	const maxRejects = 2
	for rejects := 0; len(u.ready) > 0 && rejects <= maxRejects; rejects++ {
		u.ctx.Cycle = now
		u.ctx.Ready = u.ready
		pick := u.policy.Select(&u.ctx)
		if pick < 0 {
			return true
		}
		if m.tryIssue(pick, now) {
			u.issued++
			return true
		}
		// Structural reject: reclassify and let the policy try again.
		s := &m.slots[pick]
		s.reason = reasonMemStruct
		s.readyCycle = -1
		u.ready = removeSlot(u.ready, pick)
	}
	return true
}

// removeSlot deletes v from the ready list, which readiness builds in
// ascending slot order: binary-search the position and close the gap,
// rather than filtering the whole list per rejected pick.
func removeSlot(xs []int, v int) []int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(xs) || xs[lo] != v {
		return xs
	}
	copy(xs[lo:], xs[lo+1:])
	return xs[:len(xs)-1]
}

// tryIssue executes one instruction from the warp in slot i, unless its
// global-memory access cannot be accepted this cycle.
func (m *SM) tryIssue(i int, now int64) bool {
	s := &m.slots[i]
	w := s.warp
	blk := s.block

	pc := s.pc
	in := m.prog.At(pc)
	if m.meta[pc].GlobalLoad {
		if s.peekPC == pc && s.peekInstr == s.rec.Instructions && len(s.peekBuf) > 0 {
			m.lineBuf = append(m.lineBuf[:0], s.peekBuf...) //cawalint:alloc-ok reuses lineBuf's backing array in place
		} else {
			m.peekLines(s, in)
			s.peekPC = pc
			s.peekInstr = s.rec.Instructions
			s.peekBuf = append(s.peekBuf[:0], m.lineBuf...) //cawalint:alloc-ok reuses peekBuf's backing array in place
		}
		if !m.l1d.CanAccept(m.lineBuf) {
			return false
		}
	}

	stall := now - s.lastIssue - 1
	if stall < 0 {
		stall = 0
	}
	st := &m.step
	simt.ExecInto(w, m.prog, &blk.ctx, st)
	s.lastIssue = now
	s.issuedCycle = now
	s.rec.IssueCycles++
	s.rec.Instructions++
	s.rec.ThreadInstrs += int64(st.Lanes)
	m.Instructions++
	m.ThreadInstrs += int64(st.Lanes)
	if st.Divergent {
		s.rec.DivergentBranches++
	}
	m.crit.OnIssue(i, st, stall, now)

	switch st.Kind {
	case simt.StepCompute:
		if st.Instr.Op.HasDst() {
			s.busyALU |= 1 << st.Instr.Dst
			m.pushWB(s, now+m.classLat[m.meta[pc].Class], st.Instr.Dst)
		}

	case simt.StepSMem:
		m.issueShared(s, st, now)

	case simt.StepMem:
		m.issueGlobal(i, s, st, now)

	case simt.StepBarrier:
		blk.atBarrier++
		m.maybeReleaseBarrier(blk)

	case simt.StepExit:
		if w.Done() {
			m.finishWarp(i, now)
		}
	}
	if w.Done() {
		s.done = true
	} else {
		s.pc = w.PC()
	}
	return true
}

// issueShared models shared-memory latency and bank conflicts: the LSU
// is occupied for one cycle per maximum bank-conflict degree across the
// 32 banks.
func (m *SM) issueShared(s *slot, st *simt.Step, now int64) {
	const banks = 32
	var bankWord [banks]int64
	var bankCnt [banks]int
	degree := 1
	for _, a := range st.Accesses {
		word := a.Addr / 8
		b := int(word % banks)
		if bankCnt[b] == 0 || bankWord[b] != word {
			bankWord[b] = word
			bankCnt[b]++
			if bankCnt[b] > degree {
				degree = bankCnt[b]
			}
		}
	}
	m.lsuBusyUntil = now + int64(degree)
	if st.IsLoad {
		s.busyALU |= 1 << st.Instr.Dst
		m.pushWB(s, now+int64(m.cfg.SharedMemLatency)+int64(degree)-1, st.Instr.Dst)
	}
}

// peekLines fills m.lineBuf with the distinct cache lines the next
// memory instruction of slot s will access, without executing it.
func (m *SM) peekLines(s *slot, in isa.Instr) {
	w := s.warp
	mask := w.ActiveMask()
	lineSize := int64(m.cfg.L1D.LineBytes)
	m.lineBuf = m.lineBuf[:0]
	for lane := 0; lane < w.Size; lane++ {
		if mask&(1<<uint(lane)) == 0 {
			continue
		}
		addr := (w.Reg(lane, in.A) + in.Imm) &^ (lineSize - 1)
		// Fast path: consecutive lanes usually touch the same line.
		if n := len(m.lineBuf); n > 0 && m.lineBuf[n-1] == addr {
			continue
		}
		if !containsInt64(m.lineBuf, addr) {
			m.lineBuf = append(m.lineBuf, addr) //cawalint:alloc-ok amortized growth of the reused line-coalescing buffer
		}
	}
}

func containsInt64(xs []int64, v int64) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// issueGlobal coalesces a global access into line transactions and
// sends them to the L1D. For loads, m.lineBuf was just filled by
// tryIssue and acceptance verified; stores recompute their lines (they
// never reject).
func (m *SM) issueGlobal(slotIdx int, s *slot, st *simt.Step, now int64) {
	if !st.IsLoad {
		lineSize := int64(m.cfg.L1D.LineBytes)
		m.lineBuf = m.lineBuf[:0]
		for _, a := range st.Accesses {
			la := a.Addr &^ (lineSize - 1)
			if !containsInt64(m.lineBuf, la) {
				m.lineBuf = append(m.lineBuf, la) //cawalint:alloc-ok amortized growth of the reused line-coalescing buffer
			}
		}
	}
	m.lsuBusyUntil = now + int64(len(m.lineBuf))
	m.MemInstrs++
	m.MemTxns += int64(len(m.lineBuf))

	critical := m.crit.IsCritical(slotIdx)
	if st.IsLoad {
		tok := makeToken(slotIdx, s.gen, st.Instr.Dst)
		remaining := int32(0)
		for _, la := range m.lineBuf {
			req := cache.Request{Addr: la, PC: st.PC, Warp: s.warp.GID, Critical: critical}
			switch m.l1d.AccessLoad(req, tok, now) {
			case memsys.Hit:
			case memsys.Miss:
				remaining++
			case memsys.Reject:
				panic(fmt.Sprintf("sm %d: load rejected after CanAccept (line %#x)", m.ID, la))
			}
		}
		if remaining == 0 {
			s.busyALU |= 1 << st.Instr.Dst
			m.pushWB(s, now+int64(m.cfg.L1HitLatency), st.Instr.Dst)
		} else {
			s.busyMem |= 1 << st.Instr.Dst
			s.loadRem[st.Instr.Dst] = remaining
		}
		return
	}
	for _, la := range m.lineBuf {
		req := cache.Request{Addr: la, PC: st.PC, Warp: s.warp.GID, Critical: critical, Write: true}
		m.l1d.AccessStore(req, now)
	}
}

// handleFill receives completed L1 miss lines and unblocks loads. A
// token whose slot generation no longer matches belongs to a warp that
// exited (or a block that retired) with the load still in flight; its
// fill is dropped, as the old occupant's scoreboard died with it.
func (m *SM) handleFill(_ int64, tokens []int64) {
	for _, t := range tokens {
		slotIdx, gen, reg := splitToken(t)
		s := &m.slots[slotIdx]
		if !s.valid || s.gen != gen || s.loadRem[reg] == 0 {
			continue
		}
		s.loadRem[reg]--
		if s.loadRem[reg] == 0 {
			s.busyMem &^= 1 << reg
		}
	}
}

// maybeReleaseBarrier opens the block barrier once every live warp has
// arrived.
func (m *SM) maybeReleaseBarrier(blk *blockState) {
	if blk.atBarrier < blk.live || blk.atBarrier == 0 {
		return
	}
	blk.atBarrier = 0
	for _, si := range blk.slots {
		s := &m.slots[si]
		if s.valid && s.block == blk {
			s.warp.AtBarrier = false
		}
	}
}

// finishWarp records the warp's completion. The slot stays allocated —
// a thread-block's resources (warp slots, registers, shared memory) are
// only released when every warp of the block has finished. This is the
// root of the warp criticality problem the paper studies: fast warps
// idle at the implicit kernel-exit barrier, wasting their resources,
// until the critical warp arrives (Section 2.2).
func (m *SM) finishWarp(i int, now int64) {
	s := &m.slots[i]
	s.done = true
	s.rec.FinishCycle = now
	m.Finished = append(m.Finished, s.rec) //cawalint:alloc-ok bounded by warps per launch; drained and reused at launch end
	blk := s.block

	m.units[i%len(m.units)].policy.OnWarpFinished(i)
	m.crit.OnWarpFinished(i)

	blk.live--
	if blk.live == 0 {
		m.retireBlock(blk, now)
		return
	}
	m.maybeReleaseBarrier(blk)
}

// retireBlock frees every slot of the block and returns its resources.
func (m *SM) retireBlock(blk *blockState, now int64) {
	for _, i := range blk.slots {
		s := &m.slots[i]
		if s.block != blk {
			continue
		}
		s.valid = false
		s.gen++
		s.warp = nil
		s.block = nil
		s.busyALU, s.busyMem = 0, 0
		s.wb = s.wb[:0] // keep the backing array for the next occupant
	}
	m.residentBlocks--
	m.sharedInUse -= len(blk.shared) * 8
	if m.kernel.RegsPerThread > 0 {
		m.regsInUse -= m.kernel.RegsPerThread * m.kernel.BlockDim
	}
	if m.OnBlockDone != nil {
		m.OnBlockDone(blk.id, now)
	}
}

// accountStalls classifies this cycle for every resident warp that did
// not issue (Figures 2c and 4; CPL's stall term sees the same cycles
// via the per-issue stall delta).
func (m *SM) accountStalls(now int64) {
	for i := range m.slots {
		s := &m.slots[i]
		if !s.valid || s.issuedCycle == now || s.done {
			continue
		}
		switch {
		case s.readyCycle == now:
			s.rec.SchedStall++
		case s.reason == reasonBarrier:
			s.rec.BarrierStall++
		case s.reason == reasonMemData || s.reason == reasonMemStruct:
			s.rec.MemStall++
		case s.reason == reasonALU:
			s.rec.ALUStall++
		default:
			s.rec.EmptyStall++
		}
	}
}

// Occupancy returns resident warps over capacity (statistics).
func (m *SM) Occupancy() float64 {
	return float64(m.ResidentWarps()) / float64(len(m.slots))
}
