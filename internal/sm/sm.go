// Package sm models one streaming multiprocessor: warp slots with
// scoreboards, dual warp schedulers, a load-store unit with a memory
// coalescer, shared-memory bank conflicts, block barriers, and per-warp
// stall accounting. It drives the functional model in internal/simt and
// the memory timing model in internal/memsys.
package sm

import (
	"fmt"

	"cawa/internal/cache"
	"cawa/internal/config"
	"cawa/internal/isa"
	"cawa/internal/memory"
	"cawa/internal/memsys"
	"cawa/internal/sched"
	"cawa/internal/simt"
	"cawa/internal/stats"
)

// CriticalityProvider feeds warp criticality into the scheduler context
// and into L1D requests. The CPL logic of the paper (internal/core)
// implements it; NullCriticality is the criticality-oblivious default.
type CriticalityProvider interface {
	// OnWarpArrived registers a warp occupying a slot.
	OnWarpArrived(slot int, w *simt.Warp)
	// OnWarpFinished unregisters the slot's warp.
	OnWarpFinished(slot int)
	// OnIssue observes every issued instruction along with the stall
	// cycles since the warp's previous issue (Algorithm 3).
	OnIssue(slot int, st *simt.Step, stallCycles, cycle int64)
	// Criticality returns the slot's criticality estimate.
	Criticality(slot int) float64
	// IsCritical reports whether the slot's warp is currently predicted
	// critical (slower than half its block peers, Section 5.2).
	IsCritical(slot int) bool
}

// NullCriticality is a no-op provider (criticality-oblivious baseline).
type NullCriticality struct{}

// OnWarpArrived implements CriticalityProvider.
func (NullCriticality) OnWarpArrived(int, *simt.Warp) {}

// OnWarpFinished implements CriticalityProvider.
func (NullCriticality) OnWarpFinished(int) {}

// OnIssue implements CriticalityProvider.
func (NullCriticality) OnIssue(int, *simt.Step, int64, int64) {}

// Criticality implements CriticalityProvider.
func (NullCriticality) Criticality(int) float64 { return 0 }

// IsCritical implements CriticalityProvider.
func (NullCriticality) IsCritical(int) bool { return false }

type wbEvent struct {
	time int64
	reg  isa.Reg
}

// stallReason classifies why a warp could not issue (statistics).
type stallReason uint8

const (
	reasonNone stallReason = iota
	reasonBarrier
	reasonMemData   // operand blocked on an outstanding load
	reasonMemStruct // LSU or MSHR structural hazard
	reasonALU       // operand blocked on an in-flight compute result
	reasonReady     // issuable (a non-issue then means scheduler delay)
)

// slot holds one resident warp and its pipeline state.
type slot struct {
	valid bool
	gen   int64 // incremented per occupancy; guards stale load tokens
	warp  *simt.Warp
	block *blockState
	age   int64 // dispatch sequence, for GTO/age tie-breaks

	busyALU uint64 // registers awaiting compute writeback
	busyMem uint64 // registers awaiting load data
	wb      []wbEvent
	// loadRem counts, per destination register, the line fills still
	// outstanding for the load that set the register's busyMem bit. The
	// scoreboard guarantees at most one in-flight load per register.
	loadRem [isa.NumRegs]int32

	lastIssue int64 // cycle of the previous issue (or dispatch)
	rec       stats.WarpRecord

	// pc and done mirror warp.PC() and warp.Done(): both can only
	// change when the warp issues, so caching them here keeps the
	// per-cycle readiness scan free of pointer chases into the warp's
	// reconvergence stack.
	pc   int32
	done bool

	reason      stallReason // last readiness classification
	readyCycle  int64       // cycle readiness last evaluated true
	issuedCycle int64       // cycle of the last issue

	// Memoized memory-coalescing peek: valid while the warp has not
	// issued since it was computed (registers cannot change underneath).
	peekPC    int32
	peekInstr int64
	peekBuf   []int64
}

type blockState struct {
	id        int // grid-wide block id
	shared    []int64
	ctx       simt.ExecContext
	live      int // resident warps not yet finished
	atBarrier int
	slots     []int
}

// Load tokens identify an in-flight load without any allocation: the
// destination register, owning slot, and the slot's occupancy
// generation (guarding stale fills) are packed into one int64.
const (
	tokenRegBits  = 6 // isa.NumRegs == 64
	tokenSlotBits = 8 // MaxWarpsPerSM fits well below 256
	tokenGenShift = tokenRegBits + tokenSlotBits
)

func makeToken(slot int, gen int64, reg isa.Reg) int64 {
	return gen<<tokenGenShift | int64(slot)<<tokenRegBits | int64(reg)
}

func splitToken(t int64) (slot int, gen int64, reg isa.Reg) {
	return int(t>>tokenRegBits) & (1<<tokenSlotBits - 1),
		t >> tokenGenShift,
		isa.Reg(t & (1<<tokenRegBits - 1))
}

type schedUnit struct {
	policy sched.Policy
	slots  []int // slot indices owned by this scheduler
	ready  []int // per-cycle scratch, reused
	ctx    sched.Context
	issued int64 // instructions this unit has issued (pick distribution)
}

// SM is one streaming multiprocessor.
type SM struct {
	ID  int
	cfg config.Config

	mem      *memory.Memory
	storeLog *memory.StoreLog // non-nil only while a parallel launch runs
	l1d      *memsys.L1D
	l1i      *cache.Cache // instruction cache (tag state only)
	icBusy   int64        // cycle until which an I-miss blocks fetch
	crit     CriticalityProvider
	units    []schedUnit
	slots    []slot
	kernel   *simt.Kernel
	prog     *isa.Program
	meta     []isa.InstrMeta // prog's predecoded issue metadata (SetKernel)

	// classLat maps a functional-unit class to its writeback latency,
	// precomputed from the configuration (indexed by isa.Class).
	classLat [isa.ClassCtrl + 1]int64

	cycle        int64
	lsuBusyUntil int64
	wbNext       int64 // earliest pending writeback time (NoWake if none)
	ageSeq       int64
	lineBuf      []int64   // scratch for memory-coalescing peeks
	step         simt.Step // scratch for ExecInto (reused every issue)

	residentBlocks int
	sharedInUse    int
	regsInUse      int

	// Finished accumulates warp records; the GPU drains it.
	Finished []stats.WarpRecord

	// BlockStatsBase offsets grid-local block ids in warp records so
	// blocks stay unique across kernel launches (set by the GPU).
	BlockStatsBase int

	// Counters.
	Instructions int64
	ThreadInstrs int64
	MemInstrs    int64 // global-memory instructions issued
	MemTxns      int64 // coalesced line transactions generated

	// OnBlockDone, when set, is invoked when a block retires.
	OnBlockDone func(blockID int, cycle int64)
}

// Options configures SM construction.
type Options struct {
	ID            int
	Config        config.Config
	Memory        *memory.Memory
	MemSys        *memsys.System
	PolicyFactory sched.Factory
	L1Policy      cache.Policy
	Criticality   CriticalityProvider
}

// New builds an SM, creating its L1D in the shared memory system.
func New(opt Options) *SM {
	if opt.PolicyFactory == nil {
		opt.PolicyFactory = func() sched.Policy { return sched.NewLRR() }
	}
	if opt.L1Policy == nil {
		opt.L1Policy = cache.LRU{}
	}
	if opt.Criticality == nil {
		opt.Criticality = NullCriticality{}
	}
	m := &SM{
		ID:     opt.ID,
		cfg:    opt.Config,
		mem:    opt.Memory,
		crit:   opt.Criticality,
		slots:  make([]slot, opt.Config.MaxWarpsPerSM),
		wbNext: NoWake,
	}
	for c := range m.classLat {
		switch isa.Class(c) {
		case isa.ClassFPU:
			m.classLat[c] = int64(opt.Config.FPULatency)
		case isa.ClassSFU:
			m.classLat[c] = int64(opt.Config.SFULatency)
		default:
			m.classLat[c] = int64(opt.Config.ALULatency)
		}
	}
	m.l1d = opt.MemSys.NewL1D(opt.L1Policy, m.handleFill)
	m.l1i = cache.New(opt.Config.L1I, cache.LRU{})
	m.units = make([]schedUnit, opt.Config.SchedulersPerSM)
	for i := range m.units {
		m.units[i].policy = opt.PolicyFactory()
		m.units[i].ctx = sched.Context{
			Age:         func(s int) int64 { return m.slots[s].age },
			Criticality: func(s int) float64 { return m.crit.Criticality(s) },
			WaitingMem: func(s int) bool {
				r := m.slots[s].reason
				return r == reasonMemData || r == reasonMemStruct || r == reasonBarrier
			},
		}
	}
	for s := range m.slots {
		u := s % len(m.units)
		m.units[u].slots = append(m.units[u].slots, s)
	}
	for i := range m.units {
		m.units[i].ready = make([]int, 0, len(m.units[i].slots))
	}
	return m
}

// L1D exposes the SM's data cache.
func (m *SM) L1D() *memsys.L1D { return m.l1d }

// SetStoreLog installs (nil: removes) the deferred store log that
// blocks dispatched from now on execute global-memory traffic against.
// The parallel engine gives each SM domain a private log and flushes
// them in SM-id order at every epoch barrier; the serial engine leaves
// it nil and warps write global memory directly.
//
// Resident blocks (possible only after a checkpoint restore — normal
// launches install the log before any dispatch) are rebound so a launch
// captured on one engine resumes correctly on the other.
func (m *SM) SetStoreLog(l *memory.StoreLog) {
	m.storeLog = l
	for i := range m.slots {
		if m.slots[i].valid {
			m.slots[i].block.ctx.Log = l
		}
	}
}

// L1I exposes the SM's instruction cache (statistics).
func (m *SM) L1I() *cache.Cache { return m.l1i }

// instrBytes approximates the encoded size of one instruction in the
// instruction stream, for L1I footprint modeling (PTX-era encodings are
// 8 bytes).
const instrBytes = 8

// fetch models the instruction cache: a hit is free (fetch is ahead of
// issue); a miss blocks the warp and occupies the fetch path while the
// line streams in from the (always-hitting) L2.
func (m *SM) fetch(pc int32, now int64) bool {
	if m.icBusy > now {
		return false
	}
	addr := int64(pc) * instrBytes
	if m.l1i.Access(cache.Request{Addr: addr}) {
		return true
	}
	m.l1i.Fill(cache.Request{Addr: addr})
	m.icBusy = now + int64(m.cfg.L2Latency)/4
	return false
}

// Crit exposes the criticality provider (sampling for Figure 12).
func (m *SM) Crit() CriticalityProvider { return m.crit }

// Policies returns the scheduler policies (tests).
func (m *SM) Policies() []sched.Policy {
	out := make([]sched.Policy, len(m.units))
	for i := range m.units {
		out[i] = m.units[i].policy
	}
	return out
}

// SetKernel installs the kernel to execute. Any resident blocks must
// have retired.
func (m *SM) SetKernel(k *simt.Kernel) {
	if m.residentBlocks != 0 {
		panic(fmt.Sprintf("sm %d: SetKernel with %d resident blocks", m.ID, m.residentBlocks))
	}
	m.kernel = k
	m.prog = k.Program
	m.meta = k.Program.Meta()
}

// Idle reports whether no warps are resident.
func (m *SM) Idle() bool { return m.residentBlocks == 0 }

// ResidentWarps returns the number of live warps (tests, occupancy
// statistics).
func (m *SM) ResidentWarps() int {
	n := 0
	for i := range m.slots {
		if m.slots[i].valid {
			n++
		}
	}
	return n
}

// Slot gives providers access to a slot's warp (nil when free).
func (m *SM) Slot(i int) *simt.Warp {
	if !m.slots[i].valid {
		return nil
	}
	return m.slots[i].warp
}

// ObsState is a point-in-time classification of the SM's warp
// population for the observability sampler: how many warps are
// resident, what each was doing at the sampled cycle, and the live
// criticality spread (max-min provider estimate) across unfinished
// warps. Gathering it is read-only and allocation-free.
type ObsState struct {
	Resident     int     // occupied warp slots
	Issued       int     // issued an instruction at the sampled cycle
	Ready        int     // issuable but not picked (scheduler delay)
	StallMem     int     // blocked on global memory (data or structural)
	StallALU     int     // blocked on an in-flight compute result
	StallBarrier int     // parked at a block barrier
	Idle         int     // finished, holding the slot until block exit
	CritSpread   float64 // max-min criticality across unfinished warps
}

// Active returns the warps making or awaiting progress (not yet
// finished).
func (o ObsState) Active() int {
	return o.Issued + o.Ready + o.StallMem + o.StallALU + o.StallBarrier
}

// Stalled returns the warps blocked on memory, compute results, or
// barriers.
func (o ObsState) Stalled() int { return o.StallMem + o.StallALU + o.StallBarrier }

// ObsState classifies every resident warp by its latest readiness
// evaluation (sampling hook; see internal/obs).
func (m *SM) ObsState() ObsState {
	var o ObsState
	var minC, maxC float64
	first := true
	for i := range m.slots {
		s := &m.slots[i]
		if !s.valid {
			continue
		}
		o.Resident++
		if s.warp.Done() {
			o.Idle++
			continue
		}
		switch {
		case s.issuedCycle == m.cycle:
			o.Issued++
		case s.reason == reasonReady:
			o.Ready++
		case s.reason == reasonMemData || s.reason == reasonMemStruct:
			o.StallMem++
		case s.reason == reasonALU:
			o.StallALU++
		case s.reason == reasonBarrier:
			o.StallBarrier++
		default:
			o.Ready++ // not yet evaluated this cycle
		}
		c := m.crit.Criticality(i)
		if first || c < minC {
			minC = c
		}
		if first || c > maxC {
			maxC = c
		}
		first = false
	}
	if !first {
		o.CritSpread = maxC - minC
	}
	return o
}

// Schedulers returns the number of scheduler units (sampling hook).
func (m *SM) Schedulers() int { return len(m.units) }

// SchedulerIssued returns the cumulative instructions issued by one
// scheduler unit — the scheduler-pick distribution (sampling hook).
func (m *SM) SchedulerIssued(unit int) int64 { return m.units[unit].issued }

// classLatency maps a functional-unit class to its latency.
func (m *SM) classLatency(c isa.Class) int64 { return m.classLat[c] }
