package trace

import (
	"context"
	"strings"
	"testing"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/gpu"
	"cawa/internal/isa"
	"cawa/internal/memory"
	"cawa/internal/simt"
	"cawa/internal/sm"
)

func TestRecorderRingBuffer(t *testing.T) {
	r := NewRecorder(nil, 4)
	w := simt.NewWarp(7, 0, 0, 32, 32, 10)
	r.OnWarpArrived(2, w)
	st := &simt.Step{PC: 1, Instr: isa.Instr{Op: isa.OpAdd}, Lanes: 32}
	for i := int64(0); i < 6; i++ {
		st.PC = int32(i)
		r.OnIssue(2, st, i, 100+i)
	}
	if r.Total() != 6 {
		t.Fatalf("total %d", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d", len(evs))
	}
	// Oldest two were overwritten: first retained is cycle 102.
	if evs[0].Cycle != 102 || evs[3].Cycle != 105 {
		t.Fatalf("ring order broken: %+v", evs)
	}
	if evs[0].GID != 7 {
		t.Fatalf("gid %d", evs[0].GID)
	}
	if tl := r.WarpTimeline(7); len(tl) != 4 {
		t.Fatalf("timeline %d", len(tl))
	}
	if tl := r.WarpTimeline(99); len(tl) != 0 {
		t.Fatalf("phantom timeline %d", len(tl))
	}
	if !strings.Contains(Format(evs), "w7") {
		t.Fatal("format lacks warp id")
	}
}

func TestRecorderDelegates(t *testing.T) {
	inner := core.NewCPL()
	r := NewRecorder(inner, 16)
	w := simt.NewWarp(3, 0, 0, 32, 32, 10)
	r.OnWarpArrived(0, w)
	st := &simt.Step{PC: 0, Instr: isa.Instr{Op: isa.OpAdd}, Lanes: 32}
	r.OnIssue(0, st, 40, 50)
	if got := r.Criticality(0); got != inner.Criticality(0) || got == 0 {
		t.Fatalf("criticality not delegated: %v", got)
	}
	if !r.IsCritical(0) {
		t.Fatal("IsCritical not delegated (lone warp is critical)")
	}
	r.OnWarpFinished(0)
	if r.Criticality(0) != 0 {
		t.Fatal("finish not delegated")
	}
}

func TestRecorderEndToEnd(t *testing.T) {
	mem := memory.New(1 << 16)
	b := isa.NewBuilder("t")
	b.SReg(isa.R0, isa.SRGTid)
	b.MovI(isa.R1, 5)
	b.Label("head")
	b.SubI(isa.R1, isa.R1, 1)
	b.CBra(isa.R1, "head")
	b.Exit()
	k := &simt.Kernel{Name: "t", Program: b.MustBuild(), GridDim: 2, BlockDim: 64}

	recs := make([]*Recorder, 0, 2)
	g, err := gpu.New(gpu.Options{
		Config: config.Small(),
		Memory: mem,
		Criticality: func() sm.CriticalityProvider {
			r := NewRecorder(core.NewCPL(), 1<<12)
			recs = append(recs, r)
			return r
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	launch, err := g.Launch(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, r := range recs {
		total += r.Total()
	}
	if total != uint64(launch.Instructions) {
		t.Fatalf("recorded %d events, launch committed %d instructions", total, launch.Instructions)
	}
	hot := recs[0].HotPCs()
	if len(hot) == 0 {
		t.Fatal("no hot PCs")
	}
	// The loop body (pc 2,3) must dominate issue counts.
	byPC := map[int32]PCProfile{}
	for _, p := range hot {
		byPC[p.PC] = p
	}
	if byPC[2].Issues <= byPC[0].Issues {
		t.Fatalf("loop body issues %d not above prologue %d", byPC[2].Issues, byPC[0].Issues)
	}
}
