package trace

import (
	"testing"

	"cawa/internal/isa"
	"cawa/internal/simt"
)

// issueAt pushes one event for the warp in slot at the given cycle.
func issueAt(r *Recorder, slot int, pc int32, cycle int64) {
	st := &simt.Step{PC: pc, Instr: isa.Instr{Op: isa.OpAdd}, Lanes: 32}
	r.OnIssue(slot, st, 0, cycle)
}

// TestRecorderRingWraparound pins the bounded-ring semantics: overwrite
// order is oldest-first, Total keeps counting past the capacity, and
// events recorded after a slot is reused carry the new occupant's gid
// while retained events keep the gid that was live when they were
// recorded.
func TestRecorderRingWraparound(t *testing.T) {
	const capacity = 3
	r := NewRecorder(nil, capacity)
	r.OnWarpArrived(0, simt.NewWarp(10, 0, 0, 32, 32, 8))

	// Fill the ring exactly; nothing overwritten yet.
	for c := int64(1); c <= capacity; c++ {
		issueAt(r, 0, int32(c), c)
	}
	if got := r.Events(); len(got) != capacity || got[0].Cycle != 1 || got[2].Cycle != 3 {
		t.Fatalf("pre-wrap events wrong: %+v", got)
	}

	// Two more events overwrite cycles 1 and 2.
	issueAt(r, 0, 4, 4)
	issueAt(r, 0, 5, 5)
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5 (overwritten events still count)", r.Total())
	}
	evs := r.Events()
	if len(evs) != capacity {
		t.Fatalf("retained %d events, want %d", len(evs), capacity)
	}
	for i, want := range []int64{3, 4, 5} {
		if evs[i].Cycle != want {
			t.Fatalf("wrap order broken at %d: got cycle %d, want %d (%+v)", i, evs[i].Cycle, want, evs)
		}
	}

	// Slot 0 is reused by a new warp: retained events keep gid 10,
	// post-reuse events map to gid 20.
	r.OnWarpFinished(0)
	r.OnWarpArrived(0, simt.NewWarp(20, 1, 0, 32, 32, 8))
	issueAt(r, 0, 6, 6)
	evs = r.Events()
	for i, want := range []int64{4, 5, 6} {
		if evs[i].Cycle != want {
			t.Fatalf("post-reuse order broken at %d: %+v", i, evs)
		}
	}
	if evs[0].GID != 10 || evs[1].GID != 10 {
		t.Fatalf("retained events lost their original gid: %+v", evs)
	}
	if evs[2].GID != 20 {
		t.Fatalf("post-reuse event has gid %d, want 20", evs[2].GID)
	}
	if tl := r.WarpTimeline(10); len(tl) != 2 {
		t.Fatalf("gid 10 timeline has %d events, want 2", len(tl))
	}
	if tl := r.WarpTimeline(20); len(tl) != 1 {
		t.Fatalf("gid 20 timeline has %d events, want 1", len(tl))
	}

	// Keep wrapping: after capacity more events only gid-20 events
	// survive and order is still oldest-first.
	for c := int64(7); c < 7+capacity; c++ {
		issueAt(r, 0, int32(c), c)
	}
	evs = r.Events()
	for i := range evs {
		if evs[i].GID != 20 {
			t.Fatalf("stale gid survived full wrap: %+v", evs)
		}
		if i > 0 && evs[i].Cycle <= evs[i-1].Cycle {
			t.Fatalf("order not monotonic after full wrap: %+v", evs)
		}
	}
	if r.Total() != 9 {
		t.Fatalf("total = %d, want 9", r.Total())
	}
}
