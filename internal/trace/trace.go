// Package trace records per-warp execution timelines for debugging and
// analysis: every issued instruction with its PC, opcode, active lane
// count and the stall preceding it. The recorder decorates any
// sm.CriticalityProvider, so it composes with CPL, the oracle, or the
// null provider without touching the pipeline.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"cawa/internal/isa"
	"cawa/internal/simt"
	"cawa/internal/sm"
)

// Event is one issued warp instruction.
type Event struct {
	Cycle int64
	GID   int // global warp id
	PC    int32
	Op    isa.Op
	Lanes int
	Stall int64 // cycles the warp waited since its previous issue
}

// Recorder captures issue events into a bounded ring buffer. It
// implements sm.CriticalityProvider by delegating to an inner provider.
type Recorder struct {
	inner sm.CriticalityProvider
	gids  []int // slot -> gid (-1 free)

	ring  []Event
	next  int
	total uint64
}

var _ sm.CriticalityProvider = (*Recorder)(nil)

// NewRecorder wraps inner (nil means the null provider), keeping up to
// capacity events (older events are overwritten).
func NewRecorder(inner sm.CriticalityProvider, capacity int) *Recorder {
	if inner == nil {
		inner = sm.NullCriticality{}
	}
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Recorder{inner: inner, ring: make([]Event, 0, capacity)}
}

// OnWarpArrived implements sm.CriticalityProvider.
func (r *Recorder) OnWarpArrived(slot int, w *simt.Warp) {
	for slot >= len(r.gids) {
		r.gids = append(r.gids, -1)
	}
	r.gids[slot] = w.GID
	r.inner.OnWarpArrived(slot, w)
}

// OnWarpFinished implements sm.CriticalityProvider.
func (r *Recorder) OnWarpFinished(slot int) {
	if slot < len(r.gids) {
		r.gids[slot] = -1
	}
	r.inner.OnWarpFinished(slot)
}

// OnIssue implements sm.CriticalityProvider.
func (r *Recorder) OnIssue(slot int, st *simt.Step, stallCycles, cycle int64) {
	gid := -1
	if slot < len(r.gids) {
		gid = r.gids[slot]
	}
	ev := Event{Cycle: cycle, GID: gid, PC: st.PC, Op: st.Instr.Op, Lanes: st.Lanes, Stall: stallCycles}
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, ev) //cawalint:alloc-ok bounded ring fill: grows only until the ring reaches capacity
	} else {
		r.ring[r.next] = ev
		r.next = (r.next + 1) % cap(r.ring)
	}
	r.total++
	r.inner.OnIssue(slot, st, stallCycles, cycle)
}

// Criticality implements sm.CriticalityProvider.
func (r *Recorder) Criticality(slot int) float64 { return r.inner.Criticality(slot) }

// IsCritical implements sm.CriticalityProvider.
func (r *Recorder) IsCritical(slot int) bool { return r.inner.IsCritical(slot) }

// Total returns the number of events observed (including overwritten).
func (r *Recorder) Total() uint64 { return r.total }

// Events returns the retained events in issue order.
func (r *Recorder) Events() []Event {
	if len(r.ring) < cap(r.ring) {
		return append([]Event(nil), r.ring...)
	}
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// WarpTimeline returns the retained events of one warp.
func (r *Recorder) WarpTimeline(gid int) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.GID == gid {
			out = append(out, e)
		}
	}
	return out
}

// PCProfile aggregates issue counts and stall time by program counter —
// a quick "where do warps wait" view.
type PCProfile struct {
	PC     int32
	Op     isa.Op
	Issues uint64
	Stall  uint64
}

// HotPCs returns per-PC profiles sorted by total stall (descending).
func (r *Recorder) HotPCs() []PCProfile {
	agg := make(map[int32]*PCProfile)
	for _, e := range r.Events() {
		p := agg[e.PC]
		if p == nil {
			p = &PCProfile{PC: e.PC, Op: e.Op}
			agg[e.PC] = p
		}
		p.Issues++
		p.Stall += uint64(e.Stall)
	}
	out := make([]PCProfile, 0, len(agg))
	for _, p := range agg {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stall != out[j].Stall {
			return out[i].Stall > out[j].Stall
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// Format renders a compact textual timeline of a warp (tests, CLIs).
func Format(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		fmt.Fprintf(&b, "%8d  w%-5d pc=%-4d %-10s lanes=%-2d stall=%d\n",
			e.Cycle, e.GID, e.PC, e.Op, e.Lanes, e.Stall)
	}
	return b.String()
}
