package lint

// Findings serialization and the accepted-findings baseline.
//
// The baseline is the contract that keeps the interprocedural gate
// adoptable without weakening it: every pre-existing finding the team
// accepts is recorded by its stable ID together with a written reason,
// and committed. The analyzer then fails only on findings NOT in the
// baseline — new regressions — while entries whose finding has
// disappeared surface as stale-baseline findings so the file can only
// shrink over time, never silently rot. Meta findings (bare directives,
// stale suppressions, stale baseline entries) are never baselinable:
// they are complaints about the suppression machinery itself.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// FindingJSON is the serialized form of one finding.
type FindingJSON struct {
	ID   string `json:"id,omitempty"`
	Rule string `json:"rule"`
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col,omitempty"`
	Msg  string `json:"msg"`
}

// WriteFindingsJSON writes findings as a deterministic JSON array,
// sorted by file, line, rule.
func WriteFindingsJSON(w io.Writer, findings []Finding) error {
	sorted := make([]Finding, len(findings))
	copy(sorted, findings)
	sortFindings(sorted)
	out := make([]FindingJSON, 0, len(sorted))
	for _, f := range sorted {
		out = append(out, FindingJSON{
			ID: f.ID, Rule: f.Rule, File: f.Pos.Filename,
			Line: f.Pos.Line, Col: f.Pos.Column, Msg: f.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(out)
}

// BaselineEntry is one accepted finding. File and line are
// informational (they drift as code moves); the ID is the identity.
type BaselineEntry struct {
	ID     string `json:"id"`
	Rule   string `json:"rule"`
	File   string `json:"file"`
	Line   int    `json:"line"`
	Reason string `json:"reason"`
}

// Baseline is the committed set of accepted findings.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// LoadBaseline reads a baseline file. Every entry must carry a reason:
// an acceptance without a justification is a config error.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	seen := map[string]bool{}
	for _, e := range b.Entries {
		if e.ID == "" || e.Reason == "" {
			return nil, fmt.Errorf("%s: baseline entry %q must have both id and reason", path, e.ID)
		}
		if seen[e.ID] {
			return nil, fmt.Errorf("%s: duplicate baseline entry %q", path, e.ID)
		}
		seen[e.ID] = true
	}
	return &b, nil
}

// SaveBaseline writes a baseline with entries sorted by file, line, ID.
func SaveBaseline(path string, b *Baseline) error {
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Line != c.Line {
			return a.Line < c.Line
		}
		return a.ID < c.ID
	})
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Apply filters findings through the baseline: baselined findings drop
// out, unmatched baseline entries come back as stale-baseline findings,
// and everything left is a failure. Meta findings pass through
// untouched.
func (b *Baseline) Apply(findings []Finding) []Finding {
	byID := map[string]BaselineEntry{}
	matched := map[string]bool{}
	for _, e := range b.Entries {
		byID[e.ID] = e
	}
	var out []Finding
	for _, f := range findings {
		if f.ID != "" && !metaRules[f.Rule] {
			if _, ok := byID[f.ID]; ok {
				matched[f.ID] = true
				continue
			}
		}
		out = append(out, f)
	}
	for _, e := range b.Entries {
		if matched[e.ID] {
			continue
		}
		out = append(out, Finding{
			Pos:  positionAt(e.File, e.Line),
			Rule: RuleStaleBaseline,
			Msg: fmt.Sprintf("baseline entry %s matches no finding; the code it excused is gone — remove the entry (reason was: %q)",
				e.ID, e.Reason),
		})
	}
	sortFindings(out)
	return out
}

// UpdateBaseline builds a baseline accepting every non-meta finding,
// carrying reasons over from prev where the ID survives. New entries
// get a placeholder reason that LoadBaseline accepts but a reviewer
// should replace.
func UpdateBaseline(findings []Finding, prev *Baseline) *Baseline {
	prevReason := map[string]string{}
	if prev != nil {
		for _, e := range prev.Entries {
			prevReason[e.ID] = e.Reason
		}
	}
	b := &Baseline{}
	for _, f := range findings {
		if f.ID == "" || metaRules[f.Rule] {
			continue
		}
		reason, ok := prevReason[f.ID]
		if !ok {
			reason = "TODO: justify this acceptance"
		}
		b.Entries = append(b.Entries, BaselineEntry{
			ID: f.ID, Rule: f.Rule, File: f.Pos.Filename, Line: f.Pos.Line, Reason: reason,
		})
	}
	return b
}
