// Package lint statically enforces the simulator's determinism
// invariants over its own Go source. The simulation core must produce
// bit-identical results for identical configurations — that is what
// makes the paper's A/B scheduler comparisons meaningful — so the
// linter bans the constructs that silently break replayability:
//
//   - wall-clock: time.Now/Since/Until/Sleep/Tick/After/AfterFunc/
//     NewTicker/NewTimer in simulation packages (simulation time is the
//     cycle counter, never the host clock). The observability tree
//     (internal/obs, including the obs/perf profiler) is held to this
//     rule alone: wall time reaches the profiler only through an
//     injected perf.Clock, constructed in the harness or a CLI.
//   - global-rand: math/rand's global-source functions (rand.Intn,
//     rand.Seed, ...) in simulation packages; rand.New(rand.NewSource(
//     seed)) with an explicit seed is the allowed form
//   - map-range: ranging over a map in simulation packages, whose
//     iteration order is deliberately randomized by the runtime. The
//     collect-then-sort idiom (a body of plain appends followed by a
//     sort.* call in the same block) is recognized and allowed, and
//     `//cawalint:ignore <reason>` suppresses a finding explicitly.
//   - goroutine: `go` statements anywhere outside internal/harness,
//     internal/serve, and the gpu domain runner (internal/gpu/domains.go,
//     allowlisted per file) — concurrency lives in the harness
//     scheduler, the HTTP serving layer, and the epoch-barrier engine,
//     never elsewhere in the model.
//   - memsys-mutation: direct memsys.System method calls from SM code
//     (internal/sm). Under the parallel engine SM domains run
//     concurrently and must reach the shared memory system only through
//     their L1D, whose outbound traffic stages for a deterministic
//     SM-id-ordered commit (see memsys/stage.go); construction-time
//     NewL1D wiring is exempt.
//
// The engine is stdlib-only (go/ast, go/parser, go/types). Cross-
// package types resolve against stub packages, so map detection is
// best-effort for expressions whose type lives in another package;
// every map ranged over in the simulation core today is package-local.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Rules reported by the per-file linter.
const (
	RuleWallClock       = "wall-clock"
	RuleGlobalRand      = "global-rand"
	RuleMapRange        = "map-range"
	RuleGoroutine       = "goroutine"
	RuleMemsysMutation  = "memsys-mutation"
	RuleIgnoreDirective = "ignore-directive"
)

// Rules reported by the interprocedural analyzer (interproc.go).
const (
	RuleHotPathAlloc     = "hotpath-alloc"
	RuleMemsysTransitive = "memsys-mutation-transitive"
	RuleDomainUnsafe     = "domain-unsafe"
	RuleGlobalWrite      = "global-write"
	RuleWallClockTrans   = "wall-clock-transitive"
	RuleStaleIgnore      = "stale-ignore"
	RuleStaleBaseline    = "stale-baseline"
)

// metaRules are findings about the lint configuration itself, not the
// analyzed code; they can never be baselined away.
var metaRules = map[string]bool{
	RuleIgnoreDirective: true,
	RuleStaleIgnore:     true,
	RuleStaleBaseline:   true,
}

// Finding is one determinism violation.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
	// ID is a stable identifier for interprocedural findings, of the
	// form rule@function#detail (plus ~N for repeats). It names the
	// function and the kind of violation rather than the line, so it
	// survives unrelated edits; per-file findings have no ID.
	ID string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Options scopes the rules to import paths.
type Options struct {
	// SimPaths are import-path prefixes where the wall-clock,
	// global-rand, and map-range rules apply.
	SimPaths []string
	// WallClockPaths are import-path prefixes where ONLY the wall-clock
	// rule applies. The observability tree lives here: it may range
	// maps and allocate freely (it is outside the simulated-timing
	// core), but it must never read the host clock itself — profiling
	// time enters exclusively through an injected perf.Clock, so that
	// the engine equivalence tests can drive the profiler with a
	// counting fake and the sim packages' time.Now ban stays airtight.
	WallClockPaths []string
	// GoroutineAllowed are import-path prefixes where `go` statements
	// are permitted.
	GoroutineAllowed []string
	// GoroutineAllowedFiles are single files where `go` statements are
	// permitted even though their package is not in GoroutineAllowed,
	// named as "<import path>/<file base name>" so the match is stable
	// no matter which directory the linter was invoked from. The only
	// entry today is the gpu domain runner, whose worker goroutines are
	// proven deterministic by the epoch barrier (see
	// internal/gpu/domains.go) — everything else in the model stays
	// single-threaded.
	GoroutineAllowedFiles []string
	// StagedMemsysPaths are import-path prefixes where the
	// memsys-mutation rule applies: code there runs inside parallel SM
	// domains and must reach the shared memory system only through its
	// staged two-phase interface (the per-SM L1D), never by calling
	// memsys.System methods directly.
	StagedMemsysPaths []string
}

// DefaultOptions matches this repository's layout: determinism rules
// over the simulation core, goroutines confined to the harness run
// scheduler, the HTTP serving layer (which sits entirely outside
// the deterministic core and talks to it only through harness.Session)
// and the gpu domain runner.
func DefaultOptions() Options {
	return Options{
		SimPaths: []string{
			"cawa/internal/sm", "cawa/internal/gpu", "cawa/internal/sched",
			"cawa/internal/core", "cawa/internal/cache", "cawa/internal/memsys",
			"cawa/internal/stats",
			// Checkpoint serialization is part of the deterministic core:
			// a state hash must be a pure function of simulated state, so
			// encode/decode may not read the clock, use the global rand
			// source, or range maps (gob would bake the random iteration
			// order into the byte stream and break digest comparisons).
			"cawa/internal/checkpoint",
		},
		// Prefix-matches cawa/internal/obs/perf too: the profiler's
		// injected-clock seam is the only way wall time reaches it.
		WallClockPaths: []string{"cawa/internal/obs"},
		// CLIs sit outside the deterministic core (cawaserve hosts the
		// HTTP server in a goroutine); whole-module mode scans them too.
		GoroutineAllowed:      []string{"cawa/internal/harness", "cawa/internal/serve", "cawa/cmd"},
		GoroutineAllowedFiles: []string{"cawa/internal/gpu/domains.go"},
		StagedMemsysPaths:     []string{"cawa/internal/sm"},
	}
}

// allowedSystemMethods are the memsys.System methods SM-domain and
// span-planning code may call directly: construction-time wiring
// (NewL1D) and the lookahead planner's read-only horizon query
// (SafeHorizon — it inspects the event heaps and mutates nothing).
// Everything that runs per cycle must go through the L1D, which stages
// its outbound traffic during parallel epochs.
var allowedSystemMethods = map[string]bool{"NewL1D": true, "SafeHorizon": true}

func hasPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// bannedTime are the time-package functions that read or wait on the
// host clock. Durations and constants remain fine.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTicker": true, "NewTimer": true,
}

// allowedRand are the math/rand names that do NOT touch the global
// source: explicit-source constructors and the exported types
// themselves. Everything else on the package does.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewChaCha8": true, "NewPCG": true,
	"Rand": true, "Source": true, "Source64": true, "Zipf": true,
	"ChaCha8": true, "PCG": true,
}

// Dir lints every non-test .go file in dir as the package with import
// path pkgPath.
func Dir(dir, pkgPath string, opts Options) ([]Finding, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return Files(fset, pkgPath, files, opts), nil
}

// Files lints already-parsed files (parsed with parser.ParseComments)
// belonging to the package with import path pkgPath.
func Files(fset *token.FileSet, pkgPath string, files []*ast.File, opts Options) []Finding {
	info := typeInfo(fset, pkgPath, files)
	var out []Finding
	for _, f := range files {
		dirs, bare := scanDirectives(fset, f)
		out = append(out, lintFile(fset, pkgPath, f, opts, info, dirs, bare)...)
	}
	sortFindings(out)
	return out
}

// lintFile runs the per-file rules over one file. The directives are
// shared with the caller so interprocedural mode can account usage
// across both passes before deciding staleness.
func lintFile(fset *token.FileSet, pkgPath string, f *ast.File, opts Options, info *types.Info, dirs []*directive, bare []int) []Finding {
	fl := &fileLinter{
		fset:    fset,
		pkgPath: pkgPath,
		opts:    opts,
		info:    info,
		imports: importNames(f),
		dirs:    dirs,
	}
	for _, line := range bare {
		fl.findings = append(fl.findings, Finding{
			Pos:  token.Position{Filename: fset.Position(f.Pos()).Filename, Line: line},
			Rule: RuleIgnoreDirective,
			Msg:  "cawalint suppression directive needs a reason",
		})
	}
	fl.file(f)
	return fl.findings
}

// sortFindings orders findings by file, line, then rule — the one
// deterministic order every output mode shares.
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Pos.Column < b.Pos.Column
	})
}

// typeInfo type-checks the files against stub imports so that
// package-local map types resolve. Type errors are expected (stubs
// export nothing) and ignored; the partial Info is still useful.
func typeInfo(fset *token.FileSet, pkgPath string, files []*ast.File) *types.Info {
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{
		Importer:         stubImporter{cache: map[string]*types.Package{}},
		Error:            func(error) {},
		IgnoreFuncBodies: false,
	}
	conf.Check(pkgPath, fset, files, info) //nolint:errcheck // best-effort
	return info
}

// stubImporter satisfies imports with empty, complete packages. It
// falls back to the compiler's export data when available so stdlib
// types sharpen the analysis, but never fails.
type stubImporter struct{ cache map[string]*types.Package }

func (s stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := s.cache[path]; ok {
		return p, nil
	}
	if p, err := importer.Default().Import(path); err == nil {
		s.cache[path] = p
		return p, nil
	}
	base := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		base = path[i+1:]
	}
	p := types.NewPackage(path, base)
	p.MarkComplete()
	s.cache[path] = p
	return p, nil
}

// importNames maps the local identifier of each import to its path.
func importNames(f *ast.File) map[string]string {
	out := map[string]string{}
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		out[name] = path
	}
	return out
}

// Directive kinds.
const (
	dirIgnore  = "ignore"   // //cawalint:ignore <reason>: suppresses any rule
	dirAllocOK = "alloc-ok" // //cawalint:alloc-ok <reason>: suppresses only hotpath-alloc
)

// directive is one suppression comment. It covers its own line and the
// next (so both trailing and standalone placements work) and records
// whether anything was actually suppressed — a directive that outlives
// its finding becomes a stale-ignore finding in interprocedural mode.
type directive struct {
	file   string // position filename, as the fset renders it
	line   int
	kind   string
	reason string
	used   bool
}

// covers reports whether the directive suppresses rule at file:line.
func (d *directive) covers(file string, line int, rule string) bool {
	if d.file != file || (line != d.line && line != d.line+1) {
		return false
	}
	if d.kind == dirAllocOK {
		return rule == RuleHotPathAlloc
	}
	return true
}

// scanDirectives collects the suppression directives of one file.
// Directives without a reason are returned separately so they can be
// reported: an escape hatch with no justification is itself a finding.
func scanDirectives(fset *token.FileSet, f *ast.File) (dirs []*directive, bare []int) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			kind := ""
			rest := ""
			if r, ok := strings.CutPrefix(c.Text, "//cawalint:ignore"); ok {
				kind, rest = dirIgnore, r
			} else if r, ok := strings.CutPrefix(c.Text, "//cawalint:alloc-ok"); ok {
				kind, rest = dirAllocOK, r
			} else {
				continue
			}
			pos := fset.Position(c.Pos())
			reason := strings.TrimSpace(rest)
			if reason == "" {
				bare = append(bare, pos.Line)
				continue
			}
			dirs = append(dirs, &directive{
				file: pos.Filename, line: pos.Line, kind: kind, reason: reason,
			})
		}
	}
	return dirs, bare
}

type fileLinter struct {
	fset     *token.FileSet
	pkgPath  string
	opts     Options
	info     *types.Info
	imports  map[string]string
	dirs     []*directive
	sim      bool            // full determinism rule set applies
	wall     bool            // at least the wall-clock rule applies
	sysNames map[string]bool // identifiers declared with type memsys.System
	findings []Finding
}

func (l *fileLinter) add(pos token.Pos, rule, msg string) {
	p := l.fset.Position(pos)
	for _, d := range l.dirs {
		if d.kind == dirIgnore && d.covers(p.Filename, p.Line, rule) {
			d.used = true
			return
		}
	}
	l.findings = append(l.findings, Finding{Pos: p, Rule: rule, Msg: msg})
}

func (l *fileLinter) file(f *ast.File) {
	sim := hasPrefix(l.pkgPath, l.opts.SimPaths)
	l.sim = sim
	l.wall = sim || hasPrefix(l.pkgPath, l.opts.WallClockPaths)
	staged := hasPrefix(l.pkgPath, l.opts.StagedMemsysPaths)
	if staged {
		l.collectSystemNames(f)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if !hasPrefix(l.pkgPath, l.opts.GoroutineAllowed) && !l.fileAllowsGoroutines(n.Pos()) {
				l.add(n.Pos(), RuleGoroutine,
					"goroutine creation outside internal/harness breaks deterministic replay")
			}
		case *ast.CallExpr:
			if staged {
				l.systemCall(n)
			}
		case *ast.SelectorExpr:
			if l.wall {
				l.selector(n)
			}
		case *ast.BlockStmt:
			if sim {
				l.stmtList(n.List)
			}
		case *ast.CaseClause:
			if sim {
				l.stmtList(n.Body)
			}
		case *ast.CommClause:
			if sim {
				l.stmtList(n.Body)
			}
		}
		return true
	})
}

// fileAllowsGoroutines reports whether the file containing pos is on
// the explicit goroutine allowlist: its package import path plus its
// base file name matches an entry, so the check holds whether the
// linter saw the file as internal/gpu/domains.go, ../gpu/domains.go,
// or an absolute path.
func (l *fileLinter) fileAllowsGoroutines(pos token.Pos) bool {
	key := l.pkgPath + "/" + filepath.Base(l.fset.Position(pos).Filename)
	for _, entry := range l.opts.GoroutineAllowedFiles {
		if key == entry {
			return true
		}
	}
	return false
}

// memsysImportNames returns the local identifiers under which this file
// imports the memsys package.
func (l *fileLinter) memsysImportNames() map[string]bool {
	out := map[string]bool{}
	for name, path := range l.imports {
		if path == "cawa/internal/memsys" || strings.HasSuffix(path, "/internal/memsys") {
			out[name] = true
		}
	}
	return out
}

// collectSystemNames gathers every identifier the file declares with
// type memsys.System or *memsys.System: struct fields, function
// parameters and results, variable declarations, and short declarations
// initialized from memsys.New. The stub importer cannot resolve the
// repository's own packages, so this is a syntactic census — it misses
// untyped aliased copies, which the repository's style does not use.
func (l *fileLinter) collectSystemNames(f *ast.File) {
	pkgs := l.memsysImportNames()
	if len(pkgs) == 0 {
		return
	}
	l.sysNames = map[string]bool{}
	isSystemType := func(expr ast.Expr) bool {
		if star, ok := expr.(*ast.StarExpr); ok {
			expr = star.X
		}
		sel, ok := expr.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "System" {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		return ok && pkgs[id.Name]
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Field: // struct fields, params, results, receivers
			if isSystemType(n.Type) {
				for _, name := range n.Names {
					l.sysNames[name.Name] = true
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil && isSystemType(n.Type) {
				for _, name := range n.Names {
					l.sysNames[name.Name] = true
				}
			}
		case *ast.AssignStmt: // sys := memsys.New(cfg)
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "New" {
				return true
			}
			if pkg, ok := sel.X.(*ast.Ident); ok && pkgs[pkg.Name] {
				if id, ok := n.Lhs[0].(*ast.Ident); ok {
					l.sysNames[id.Name] = true
				}
			}
		}
		return true
	})
}

// systemCall flags method calls on memsys.System values from SM-domain
// code. During a parallel epoch an SM goroutine must never touch the
// shared event heap or sequence counter; the sanctioned route is the
// per-SM L1D, which stages outbound traffic for the orchestrator's
// SM-id-ordered commit (see memsys/stage.go). Construction-time wiring
// (NewL1D) is exempt.
func (l *fileLinter) systemCall(call *ast.CallExpr) {
	if len(l.sysNames) == 0 {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || allowedSystemMethods[sel.Sel.Name] {
		return
	}
	var base string
	switch x := sel.X.(type) {
	case *ast.Ident: // sys.Cycle(...)
		base = x.Name
	case *ast.SelectorExpr: // m.sys.Cycle(...), opt.MemSys.Cycle(...)
		base = x.Sel.Name
	default:
		return
	}
	if !l.sysNames[base] {
		return
	}
	l.add(call.Pos(), RuleMemsysMutation,
		fmt.Sprintf("memsys.System.%s called from SM-domain code; route memory traffic through the L1D's staged interface (memsys/stage.go)", sel.Sel.Name))
}

// selector flags wall-clock and global-rand references. The receiver
// must resolve to the imported package, not a shadowing local. In
// packages covered only by WallClockPaths (l.wall without l.sim) the
// global-rand half is skipped.
func (l *fileLinter) selector(sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	path, imported := l.imports[id.Name]
	if !imported {
		return
	}
	if obj, ok := l.info.Uses[id]; ok {
		if _, isPkg := obj.(*types.PkgName); !isPkg {
			return // shadowed by a local
		}
	}
	switch path {
	case "time":
		if bannedTime[sel.Sel.Name] {
			l.add(sel.Pos(), RuleWallClock,
				fmt.Sprintf("time.%s reads the host clock; simulation time is the cycle counter", sel.Sel.Name))
		}
	case "math/rand", "math/rand/v2":
		if l.sim && !allowedRand[sel.Sel.Name] {
			l.add(sel.Pos(), RuleGlobalRand,
				fmt.Sprintf("rand.%s uses the global source; seed an explicit rand.New(rand.NewSource(seed))", sel.Sel.Name))
		}
	}
}

// stmtList scans one statement list for map ranges so the
// collect-then-sort exemption can see the following siblings.
func (l *fileLinter) stmtList(list []ast.Stmt) {
	for i, stmt := range list {
		if lbl, ok := stmt.(*ast.LabeledStmt); ok {
			stmt = lbl.Stmt
		}
		rng, ok := stmt.(*ast.RangeStmt)
		if !ok || !l.isMap(rng.X) {
			continue
		}
		if appendOnlyBody(rng.Body) && sortFollows(list[i+1:]) {
			continue // collect-then-sort: order laundered before use
		}
		l.add(rng.Pos(), RuleMapRange,
			"map iteration order is randomized; collect keys and sort, or annotate //cawalint:ignore <reason>")
	}
}

func (l *fileLinter) isMap(expr ast.Expr) bool {
	tv, ok := l.info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// appendOnlyBody reports whether every statement in the range body is
// a plain `x = append(x, ...)` — the collecting half of the idiom.
func appendOnlyBody(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	for _, stmt := range body.List {
		asg, ok := stmt.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 {
			return false
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
	}
	return true
}

// sortFollows reports whether a later sibling statement calls into the
// sort package — the ordering half of the idiom.
func sortFollows(rest []ast.Stmt) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == "sort" {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
