package lint

// Seeded-mutant suite: each test writes a small module shaped like the
// real engine (module cawa, the default root set resolvable), injects
// one deliberate violation, and asserts the interprocedural analyzer
// reports it under its expected stable ID. These are the proofs that
// the gate actually fires — a refactor that silently disconnects a
// rule from the call graph fails here, not in production.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mutantBase is the clean fixture module. Every mutant overrides one
// or two of these files.
var mutantBase = map[string]string{
	"go.mod": "module cawa\n\ngo 1.22\n",
	"internal/memsys/memsys.go": `// Package memsys is the staged-memory stub for the mutant suite.
package memsys

// System is the protected shared memory system.
type System struct {
	n int
}

// Cycle processes due events.
func (s *System) Cycle() {}

// Schedule enqueues an event; staged SM-domain code must not reach it.
func (s *System) Schedule(t int64) { s.n++ }

// SafeHorizon is the read-only horizon query the lookahead planner is
// allowed to call (allowedSystemMethods).
func (s *System) SafeHorizon(now int64) int64 { return now + 1 }
`,
	"internal/sm/sm.go": `// Package sm is the SM stub for the mutant suite.
package sm

import (
	"cawa/internal/core"
	"cawa/internal/memsys"
	"cawa/internal/util"
)

// SM is the stub streaming multiprocessor.
type SM struct {
	n   int
	sys *memsys.System
	ch  chan int
}

// Cycle runs one cycle through the helper packages.
func (s *SM) Cycle() {
	s.n = util.Bump(s.n)
	core.Note()
}
`,
	"internal/util/util.go": `// Package util holds helpers outside the sim-path scope.
package util

// Bump is the clean helper the mutants replace.
func Bump(n int) int { return n + 1 }

// Pack is the clean serialization helper the mutants replace.
func Pack(b []byte) []byte { return b }
`,
	"internal/core/core.go": `// Package core is a sim-path package for the global-write mutant.
package core

// Note records issue activity.
func Note() {}
`,
	"internal/gpu/gpu.go": `// Package gpu is a stub so the engine-loop roots resolve.
package gpu

import (
	"cawa/internal/memsys"
	"cawa/internal/sm"
)

// GPU is the stub engine.
type GPU struct {
	sms []*sm.SM
	sys *memsys.System
}

func (g *GPU) stepSMs() {
	for _, s := range g.sms {
		s.Cycle()
	}
}

func (g *GPU) fastForward() {}

// planHorizon mirrors the real lookahead planner: read-only against
// the System through the sanctioned SafeHorizon query.
func (g *GPU) planHorizon(now int64) int64 { return g.sys.SafeHorizon(now) }

// runBatch mirrors the real batched-commit path: one span stepped on
// the workers, then the replay drains the System cycle by cycle.
func (g *GPU) runBatch(w *domainWorker, now int64) {
	f := g.planHorizon(now)
	w.stepSpan(now+1, f-1)
	g.sys.Cycle()
}

// domainWorker is the stub span executor.
type domainWorker struct {
	sms []*sm.SM
}

// stepSpan advances the owned SMs across one lookahead span.
func (w *domainWorker) stepSpan(from, to int64) {
	for t := from; t <= to; t++ {
		for _, s := range w.sms {
			s.Cycle()
		}
	}
}

// Run drives the stub engine.
func (g *GPU) Run() {
	g.stepSMs()
	g.fastForward()
	g.runBatch(&domainWorker{sms: g.sms}, 0)
}
`,
	"internal/checkpoint/checkpoint.go": `// Package checkpoint is a stub so the serialization roots resolve.
package checkpoint

import "cawa/internal/util"

// Snapshot is the stub state capture.
type Snapshot struct {
	payload []byte
}

// Capture snapshots the stub engine.
func Capture() *Snapshot { return &Snapshot{} }

// Restore rebuilds the stub engine.
func Restore(s *Snapshot) error { return nil }

// Encode serializes through the helper package.
func Encode(s *Snapshot) []byte { return util.Pack(s.payload) }

// Decode deserializes through the helper package.
func Decode(b []byte) (*Snapshot, error) { return &Snapshot{payload: util.Pack(b)}, nil }

// StateHash digests a snapshot.
func StateHash(s *Snapshot) string { return string(Encode(s)) }

// FunctionalLaunch replays one launch without timing.
func FunctionalLaunch() error { return nil }
`,
	"internal/obs/perf/perf.go": `// Package perf is a stub so the profiler roots resolve.
package perf

// Profiler is the stub self-profiler.
type Profiler struct {
	now int64
}

// Now returns the stub clock.
func (p *Profiler) Now() int64 { return p.now }

// RecordShardCompute accounts one shard's compute time.
func (p *Profiler) RecordShardCompute(shard int, cycles int64) { p.now += cycles }
`,
}

// analyzeMutant materializes the base module with overrides applied
// and runs the full interprocedural analysis on it.
func analyzeMutant(t *testing.T, overrides map[string]string) []Finding {
	t.Helper()
	files := map[string]string{}
	for name, src := range mutantBase {
		files[name] = src
	}
	for name, src := range overrides {
		files[name] = src
	}
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	findings, err := AnalyzeModule(m, DefaultInterOptions())
	if err != nil {
		t.Fatalf("AnalyzeModule: %v", err)
	}
	return findings
}

func assertFindingID(t *testing.T, findings []Finding, wantID string) {
	t.Helper()
	for _, f := range findings {
		if f.ID == wantID {
			return
		}
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.ID+" ("+f.String()+")")
	}
	t.Errorf("expected finding %s, got %d findings:\n%s",
		wantID, len(findings), strings.Join(got, "\n"))
}

// TestMutantBaseClean proves the fixture itself carries no findings,
// so each mutant's finding is attributable to its seeded violation.
func TestMutantBaseClean(t *testing.T) {
	findings := analyzeMutant(t, nil)
	if len(findings) != 0 {
		var got []string
		for _, f := range findings {
			got = append(got, f.String())
		}
		t.Fatalf("base module should be clean, got:\n%s", strings.Join(got, "\n"))
	}
}

// TestMutantMemsysTransitive seeds a System mutation reached through a
// helper package: SM.Cycle -> util.Drain -> System.Schedule. The
// per-file rule cannot see it (the call is not in SM source); the
// transitive rule must.
func TestMutantMemsysTransitive(t *testing.T) {
	findings := analyzeMutant(t, map[string]string{
		"internal/util/util.go": `package util

import "cawa/internal/memsys"

// Bump is the clean helper.
func Bump(n int) int { return n + 1 }

// Pack is the clean serialization helper.
func Pack(b []byte) []byte { return b }

// Drain bypasses the staged L1 interface (seeded violation).
func Drain(s *memsys.System) { s.Schedule(3) }
`,
		"internal/sm/sm.go": `package sm

import (
	"cawa/internal/core"
	"cawa/internal/memsys"
	"cawa/internal/util"
)

// SM is the stub streaming multiprocessor.
type SM struct {
	n   int
	sys *memsys.System
	ch  chan int
}

// Cycle launders the System mutation through the helper package.
func (s *SM) Cycle() {
	s.n = util.Bump(s.n)
	util.Drain(s.sys)
	core.Note()
}
`,
	})
	assertFindingID(t, findings,
		"memsys-mutation-transitive@cawa/internal/util.Drain#System.Schedule")
}

// TestMutantHotPathAllocTwoDeep seeds an allocation two calls below the
// cycle root: SM.Cycle -> util.Bump -> util.pad -> make.
func TestMutantHotPathAllocTwoDeep(t *testing.T) {
	findings := analyzeMutant(t, map[string]string{
		"internal/util/util.go": `package util

// Bump now allocates two calls below the cycle root (seeded violation).
func Bump(n int) int { return len(pad(n)) }

// Pack is the clean serialization helper.
func Pack(b []byte) []byte { return b }

func pad(n int) []int { return make([]int, n) }
`,
	})
	assertFindingID(t, findings, "hotpath-alloc@cawa/internal/util.pad#make")
}

// TestMutantDomainChannel seeds a channel send in code a domain worker
// goroutine reaches: SM.Cycle -> util.Notify -> ch<-.
func TestMutantDomainChannel(t *testing.T) {
	findings := analyzeMutant(t, map[string]string{
		"internal/util/util.go": `package util

// Bump is the clean helper.
func Bump(n int) int { return n + 1 }

// Pack is the clean serialization helper.
func Pack(b []byte) []byte { return b }

// Notify pushes on a channel (seeded violation).
func Notify(ch chan int) { ch <- 1 }
`,
		"internal/sm/sm.go": `package sm

import (
	"cawa/internal/core"
	"cawa/internal/memsys"
	"cawa/internal/util"
)

// SM is the stub streaming multiprocessor.
type SM struct {
	n   int
	sys *memsys.System
	ch  chan int
}

// Cycle reaches a channel send through the helper package.
func (s *SM) Cycle() {
	s.n = util.Bump(s.n)
	util.Notify(s.ch)
	core.Note()
}
`,
	})
	assertFindingID(t, findings, "domain-unsafe@cawa/internal/util.Notify#channel send")
}

// TestMutantPlanHorizonMutation seeds a System mutation in the
// lookahead horizon planner: planning must stay read-only (SafeHorizon
// is the one sanctioned query), and a direct Schedule call from gpu
// code is invisible to the per-file rule (scoped to internal/sm), so
// only the transitive rule rooted at planHorizon can catch it.
func TestMutantPlanHorizonMutation(t *testing.T) {
	findings := analyzeMutant(t, map[string]string{
		"internal/gpu/gpu.go": `// Package gpu is a stub so the engine-loop roots resolve.
package gpu

import (
	"cawa/internal/memsys"
	"cawa/internal/sm"
)

// GPU is the stub engine.
type GPU struct {
	sms []*sm.SM
	sys *memsys.System
}

func (g *GPU) stepSMs() {
	for _, s := range g.sms {
		s.Cycle()
	}
}

func (g *GPU) fastForward() {}

// planHorizon mutates the System while planning (seeded violation).
func (g *GPU) planHorizon(now int64) int64 {
	g.sys.Schedule(now)
	return g.sys.SafeHorizon(now)
}

// runBatch mirrors the real batched-commit path.
func (g *GPU) runBatch(w *domainWorker, now int64) {
	f := g.planHorizon(now)
	w.stepSpan(now+1, f-1)
	g.sys.Cycle()
}

// domainWorker is the stub span executor.
type domainWorker struct {
	sms []*sm.SM
}

// stepSpan advances the owned SMs across one lookahead span.
func (w *domainWorker) stepSpan(from, to int64) {
	for t := from; t <= to; t++ {
		for _, s := range w.sms {
			s.Cycle()
		}
	}
}

// Run drives the stub engine.
func (g *GPU) Run() {
	g.stepSMs()
	g.fastForward()
	g.runBatch(&domainWorker{sms: g.sms}, 0)
}
`,
	})
	assertFindingID(t, findings,
		"memsys-mutation-transitive@(*cawa/internal/gpu.GPU).planHorizon#System.Schedule")
}

// TestMutantStepSpanChannel seeds a channel send in the span body a
// domain worker goroutine executes: the epoch barrier must be the only
// synchronization, and stepSpan joining the domain-unsafe root set is
// what makes the gate see worker-side span code at all.
func TestMutantStepSpanChannel(t *testing.T) {
	findings := analyzeMutant(t, map[string]string{
		"internal/gpu/gpu.go": `// Package gpu is a stub so the engine-loop roots resolve.
package gpu

import (
	"cawa/internal/memsys"
	"cawa/internal/sm"
)

// GPU is the stub engine.
type GPU struct {
	sms []*sm.SM
	sys *memsys.System
}

func (g *GPU) stepSMs() {
	for _, s := range g.sms {
		s.Cycle()
	}
}

func (g *GPU) fastForward() {}

// planHorizon mirrors the real lookahead planner.
func (g *GPU) planHorizon(now int64) int64 { return g.sys.SafeHorizon(now) }

// runBatch mirrors the real batched-commit path.
func (g *GPU) runBatch(w *domainWorker, now int64) {
	f := g.planHorizon(now)
	w.stepSpan(now+1, f-1)
	g.sys.Cycle()
}

// domainWorker is the stub span executor.
type domainWorker struct {
	sms  []*sm.SM
	done chan int
}

// stepSpan signals mid-span progress on a channel (seeded violation).
func (w *domainWorker) stepSpan(from, to int64) {
	for t := from; t <= to; t++ {
		for _, s := range w.sms {
			s.Cycle()
		}
		w.done <- int(t)
	}
}

// Run drives the stub engine.
func (g *GPU) Run() {
	g.stepSMs()
	g.fastForward()
	g.runBatch(&domainWorker{sms: g.sms}, 0)
}
`,
	})
	assertFindingID(t, findings,
		"domain-unsafe@(*cawa/internal/gpu.domainWorker).stepSpan#channel send")
}

// TestMutantGlobalWrite seeds a write to package-level mutable state in
// a deterministic (sim-path) package, reached from the cycle root.
func TestMutantGlobalWrite(t *testing.T) {
	findings := analyzeMutant(t, map[string]string{
		"internal/core/core.go": `package core

// Issued is package-level mutable state (seeded violation).
var Issued int

// Note records issue activity.
func Note() { Issued++ }
`,
	})
	assertFindingID(t, findings, "global-write@cawa/internal/core.Note#cawa/internal/core.Issued")
}

// TestMutantAllocOKSuppresses proves the escape hatch works end to end:
// the same two-deep allocation annotated //cawalint:alloc-ok is not a
// finding, and the directive counts as used (no stale-ignore).
func TestMutantAllocOKSuppresses(t *testing.T) {
	findings := analyzeMutant(t, map[string]string{
		"internal/util/util.go": `package util

// Bump allocates, but the site is annotated.
func Bump(n int) int { return len(pad(n)) }

// Pack is the clean serialization helper.
func Pack(b []byte) []byte { return b }

func pad(n int) []int {
	return make([]int, n) //cawalint:alloc-ok mutant fixture: annotated on purpose
}
`,
	})
	if len(findings) != 0 {
		var got []string
		for _, f := range findings {
			got = append(got, f.String())
		}
		t.Fatalf("annotated allocation should produce no findings, got:\n%s",
			strings.Join(got, "\n"))
	}
}

// TestMutantSerializationWallClock seeds a host-clock read in a helper
// the checkpoint encoder reaches: Encode -> util.Pack -> time.Now. The
// per-file rule cannot see it (util is outside every path scope), so
// only the transitive rule rooted at the serialization set can — a
// snapshot digest stamped with wall time would never verify on decode.
func TestMutantSerializationWallClock(t *testing.T) {
	findings := analyzeMutant(t, map[string]string{
		"internal/util/util.go": `package util

import "time"

// Bump is the clean helper.
func Bump(n int) int { return n + 1 }

// Pack stamps the payload with the host clock (seeded violation).
func Pack(b []byte) []byte {
	if time.Now().IsZero() {
		return nil
	}
	return b
}
`,
	})
	assertFindingID(t, findings,
		"wall-clock-transitive@cawa/internal/util.Pack#time.Now")
}

// TestMutantStaleIgnore proves a directive that suppresses nothing is
// itself a finding.
func TestMutantStaleIgnore(t *testing.T) {
	findings := analyzeMutant(t, map[string]string{
		"internal/util/util.go": `package util

// Bump is clean; the annotation below it suppresses nothing.
func Bump(n int) int {
	return n + 1 //cawalint:alloc-ok nothing here allocates
}

// Pack is the clean serialization helper.
func Pack(b []byte) []byte { return b }
`,
	})
	found := false
	for _, f := range findings {
		if f.Rule == RuleStaleIgnore {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a %s finding for the useless directive, got %d findings",
			RuleStaleIgnore, len(findings))
	}
}
