package lint

// Interprocedural analysis: whole-module rules that follow call chains
// instead of stopping at the statement that appears in the source.
//
// The per-file rules (lint.go) catch direct violations — a time.Now in
// a sim package, a System method call in SM code. The invariants they
// protect are transitive, though: a helper three calls away that
// allocates still breaks the 0-allocs/cycle budget, and a utility that
// locks a mutex still stalls a domain goroutine. AnalyzeModule builds
// the module call graph (callgraph.go), seeds it with the root sets
// below, and flags violations anywhere in the reachable closure, each
// with a witness call path back to its root.
//
// Root sets (DefaultInterOptions):
//
//   - CycleRoots: the per-cycle hot path. SM.Cycle and System.Cycle are
//     the work of one simulated cycle; GPU.stepSMs and GPU.fastForward
//     are the engine loops that drive them every cycle. GPU.Launch and
//     GPU.dispatch are deliberately NOT roots: launch setup and block
//     dispatch allocate by design (slices sized to the grid), and the
//     dynamic witness for the invariant — sm.TestCyclePathAllocFree —
//     measures exactly sys.Cycle+sm.Cycle in steady state.
//   - DomainRoots: what a domain worker goroutine executes between
//     epoch barriers (gpu/domains.go): the SM cycle plus the profiler
//     taps. The runner machinery itself (channels, atomics, WaitGroup)
//     is the sanctioned synchronization layer and is not reachable from
//     these roots.
//   - StagedRoots: SM-domain code whose memory-system traffic must go
//     through the L1D's staged interface. Call sites inside the memsys
//     package are exempt — the L1D legitimately schedules events on the
//     System when staging is off; stage.go is the mediator.
//   - SerializationRoots: the checkpoint capture/encode/decode/restore
//     paths plus the functional-replay launcher. A snapshot digest must
//     be a pure function of simulated state, so nothing these reach may
//     read the host clock; map-order nondeterminism is banned per-file
//     (internal/checkpoint sits in SimPaths).
//
// A root name that fails to resolve is a load error, not an empty
// result: a rename must not silently turn the gate vacuous.

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// InterOptions configures AnalyzeModule. The embedded per-file Options
// scope the intraprocedural rules, which run over the whole module in
// the same pass so directive usage can be accounted across both.
type InterOptions struct {
	Options

	// CycleRoots seed the hot-path allocation and transitive wall-clock
	// rules, named as go/types renders them: pkg.Func for functions,
	// (pkg.T).M or (*pkg.T).M for methods.
	CycleRoots []string
	// DomainRoots seed the domain-unsafe rule: code reachable from a
	// domain worker goroutine may not use channels, mutexes, go
	// statements, or non-allowlisted atomics.
	DomainRoots []string
	// StagedRoots seed the transitive memsys-mutation rule.
	StagedRoots []string
	// SerializationRoots seed the transitive wall-clock rule for the
	// checkpoint encode/decode paths: a snapshot digest must be a pure
	// function of simulated state, so nothing reachable from
	// serialization may read the host clock. (Map-order nondeterminism
	// is covered per-file: internal/checkpoint is in SimPaths, so the
	// map-range rule bans iteration the gob stream could observe.)
	SerializationRoots []string
	// MemsysPath is the package whose System type the staged rule
	// protects.
	MemsysPath string
	// AtomicAllowed lists synchronization details (as rendered in
	// domain-unsafe messages, e.g. "sync/atomic.Int64.Load") permitted
	// in domain-reachable code.
	AtomicAllowed []string
}

// DefaultInterOptions matches this repository's engine layout.
func DefaultInterOptions() InterOptions {
	return InterOptions{
		Options: DefaultOptions(),
		CycleRoots: []string{
			"(*cawa/internal/sm.SM).Cycle",
			"(*cawa/internal/memsys.System).Cycle",
			"(*cawa/internal/gpu.GPU).stepSMs",
			"(*cawa/internal/gpu.GPU).fastForward",
			// The lookahead engine's planner and batched-commit path run
			// once per span, but a span replays every cycle it covered:
			// the replay loop is as hot as the serial cycle loop.
			"(*cawa/internal/gpu.GPU).planHorizon",
			"(*cawa/internal/gpu.GPU).runBatch",
		},
		DomainRoots: []string{
			"(*cawa/internal/sm.SM).Cycle",
			"(*cawa/internal/obs/perf.Profiler).Now",
			"(*cawa/internal/obs/perf.Profiler).RecordShardCompute",
			// The lookahead span body a worker goroutine executes,
			// including the in-span fill deliveries it performs.
			"(*cawa/internal/gpu.domainWorker).stepSpan",
		},
		StagedRoots: []string{
			"(*cawa/internal/sm.SM).Cycle",
			// Horizon planning must stay read-only against the System
			// (SafeHorizon is the one sanctioned query), and the worker's
			// span body must defer all System-side effects to the barrier
			// replay (memsys spanfill.go).
			"(*cawa/internal/gpu.GPU).planHorizon",
			"(*cawa/internal/gpu.domainWorker).stepSpan",
		},
		MemsysPath: "cawa/internal/memsys",
		SerializationRoots: []string{
			"cawa/internal/checkpoint.Capture",
			"cawa/internal/checkpoint.Restore",
			"cawa/internal/checkpoint.Encode",
			"cawa/internal/checkpoint.Decode",
			"cawa/internal/checkpoint.StateHash",
			// The sampled-simulation replay path: functionally executed
			// launches must be as clock-free as timed ones, or resumed
			// runs could diverge from uninterrupted ones.
			"cawa/internal/checkpoint.FunctionalLaunch",
		},
	}
}

// AnalyzeModule runs the per-file rules over every package of m plus
// the interprocedural rules over its call graph, and reports stale
// suppression directives. Findings come back sorted by file, line,
// rule, with module-relative file names.
func AnalyzeModule(m *Module, opts InterOptions) ([]Finding, error) {
	a := &analysis{m: m, opts: opts}

	// Pass 1: per-file rules, against the real type information. The
	// directives are scanned once and shared, so a suppression consumed
	// by either pass counts as used.
	for _, pkg := range m.Sorted {
		for _, f := range pkg.Files {
			dirs, bare := scanDirectives(m.Fset, f)
			a.dirs = append(a.dirs, dirs...)
			found := lintFile(m.Fset, pkg.Path, f, opts.Options, pkg.Info, dirs, bare)
			for i := range found {
				// Per-file findings get positional IDs in module mode so
				// the baseline can carry them if they are ever accepted.
				if !metaRules[found[i].Rule] {
					found[i].ID = fmt.Sprintf("%s@%s#L%d",
						found[i].Rule, a.relFile(found[i].Pos.Filename), found[i].Pos.Line)
				}
			}
			a.findings = append(a.findings, found...)
		}
	}

	// Pass 2: interprocedural rules over the call graph.
	a.g = buildCallGraph(m)
	cycleReach, err := a.g.reachFrom(opts.CycleRoots)
	if err != nil {
		return nil, err
	}
	domainReach, err := a.g.reachFrom(opts.DomainRoots)
	if err != nil {
		return nil, err
	}
	stagedReach, err := a.g.reachFrom(opts.StagedRoots)
	if err != nil {
		return nil, err
	}
	serialReach, err := a.g.reachFrom(opts.SerializationRoots)
	if err != nil {
		return nil, err
	}
	a.hotPathAlloc(cycleReach)
	a.wallClockTransitive(cycleReach, domainReach, serialReach)
	a.memsysTransitive(stagedReach)
	a.domainUnsafe(domainReach)
	a.globalWrites(cycleReach, domainReach)

	// Pass 3: suppressions that suppressed nothing are findings too.
	for _, d := range a.dirs {
		if d.used {
			continue
		}
		a.findings = append(a.findings, Finding{
			Pos:  positionAt(d.file, d.line),
			Rule: RuleStaleIgnore,
			Msg: fmt.Sprintf("cawalint:%s directive suppresses no finding; remove it (reason given: %q)",
				d.kind, d.reason),
		})
	}

	a.finalize()
	return a.findings, nil
}

func positionAt(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line}
}

type analysis struct {
	m        *Module
	g        *callGraph
	opts     InterOptions
	dirs     []*directive
	findings []Finding
}

// relFile renders a fset filename relative to the module root with
// forward slashes, the stable spelling used in IDs, JSON, and the
// baseline.
func (a *analysis) relFile(name string) string {
	if rel, err := filepath.Rel(a.m.Dir, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(name)
}

// report adds one interprocedural finding unless a directive covers it.
func (a *analysis) report(rule string, node *cgNode, s site, reach map[*cgNode]*cgNode, msg string) {
	pos := a.m.Fset.Position(s.pos)
	for _, d := range a.dirs {
		if d.covers(pos.Filename, pos.Line, rule) {
			d.used = true
			return
		}
	}
	a.findings = append(a.findings, Finding{
		Pos:  pos,
		Rule: rule,
		Msg:  msg + " [" + witness(reach, node) + "]",
		ID:   rule + "@" + node.name + "#" + s.detail,
	})
}

// witness renders the call path from a root to n.
func witness(reach map[*cgNode]*cgNode, n *cgNode) string {
	var rev []string
	for cur := n; cur != nil; cur = reach[cur] {
		rev = append(rev, cur.name)
	}
	parts := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		parts = append(parts, rev[i])
	}
	return strings.Join(parts, " -> ")
}

// reachFrom computes the closure of the named roots, with a parent
// pointer per node for witness paths. Unresolvable roots are errors.
func (g *callGraph) reachFrom(names []string) (map[*cgNode]*cgNode, error) {
	set := map[*cgNode]*cgNode{}
	var queue []*cgNode
	for _, name := range names {
		n := g.nodes[name]
		if n == nil {
			return nil, fmt.Errorf("lint root %q does not resolve to any function in the module; if it was renamed, update the root set (the gate must not go vacuous silently)", name)
		}
		if _, ok := set[n]; !ok {
			set[n] = nil
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.callees {
			if _, ok := set[e.to]; !ok {
				set[e.to] = n
				queue = append(queue, e.to)
			}
		}
	}
	return set, nil
}

// sortedNodes returns a reach set's members in name order, so rule
// iteration (and therefore directive marking) is deterministic.
func sortedNodes(reach map[*cgNode]*cgNode) []*cgNode {
	out := make([]*cgNode, 0, len(reach))
	for n := range reach {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// hotPathAlloc enforces the 0-allocs/steady-cycle invariant statically:
// any allocation construct reachable from the cycle roots is a finding
// unless annotated //cawalint:alloc-ok <reason> (amortized growth,
// cold paths).
func (a *analysis) hotPathAlloc(cycle map[*cgNode]*cgNode) {
	for _, n := range sortedNodes(cycle) {
		for _, s := range n.facts.allocs {
			a.report(RuleHotPathAlloc, n, s, cycle, fmt.Sprintf(
				"%s on the per-cycle hot path breaks the 0-allocs/cycle invariant; restructure, or annotate //cawalint:alloc-ok <reason> if amortized or cold",
				s.detail))
		}
	}
}

// wallClockTransitive extends the wall-clock ban to everything the
// engine can reach: code outside the per-file rule's path scopes that
// reads the host clock is flagged when a cycle, domain, or
// serialization root reaches it. Inside those scopes the per-file rule
// already reported it.
func (a *analysis) wallClockTransitive(reaches ...map[*cgNode]*cgNode) {
	seen := map[*cgNode]bool{}
	for _, reach := range reaches {
		for _, n := range sortedNodes(reach) {
			if seen[n] {
				continue
			}
			seen[n] = true
			if hasPrefix(n.pkg.Path, a.opts.SimPaths) || hasPrefix(n.pkg.Path, a.opts.WallClockPaths) {
				continue
			}
			for _, s := range n.facts.wallClock {
				a.report(RuleWallClockTrans, n, s, reach, fmt.Sprintf(
					"%s is reachable from the deterministic engine; wall time may enter only through the injected obs/perf clock seam",
					s.detail))
			}
		}
	}
}

// memsysTransitive follows staged-SM call chains to memsys.System
// method calls. The per-file rule catches direct calls in SM source;
// this one catches a helper in any package that an SM cycle reaches.
// Call sites inside the memsys package itself are the sanctioned
// mediator (the L1D's staging seam) and are exempt.
func (a *analysis) memsysTransitive(staged map[*cgNode]*cgNode) {
	for _, n := range sortedNodes(staged) {
		if n.pkg != nil && n.pkg.Path == a.opts.MemsysPath {
			continue
		}
		for _, e := range n.callees {
			name, ok := a.systemMethod(e.to)
			if !ok || allowedSystemMethods[name] {
				continue
			}
			a.report(RuleMemsysTransitive, n, site{pos: e.pos, detail: "System." + name}, staged, fmt.Sprintf(
				"memsys.System.%s is reached from staged SM-domain code; during parallel epochs memory traffic must go through the L1D's staged interface (memsys/stage.go)",
				name))
		}
	}
}

// systemMethod reports whether a node is a method on the protected
// System type, and its name.
func (a *analysis) systemMethod(n *cgNode) (string, bool) {
	if n.fn == nil || n.sig == nil || n.sig.Recv() == nil {
		return "", false
	}
	if recvTypeName(n.sig.Recv().Type()) != "System" {
		return "", false
	}
	if n.pkg == nil || n.pkg.Path != a.opts.MemsysPath {
		return "", false
	}
	return n.fn.Name(), true
}

// domainUnsafe bans synchronization constructs in code a domain worker
// goroutine can execute: determinism of the parallel engine rests on
// the epoch barrier being the only synchronization, so channels,
// mutexes, nested goroutines, and non-allowlisted atomics anywhere in
// the reachable closure are findings.
func (a *analysis) domainUnsafe(domain map[*cgNode]*cgNode) {
	for _, n := range sortedNodes(domain) {
		for _, s := range n.facts.chanOps {
			a.report(RuleDomainUnsafe, n, s, domain,
				s.detail+" in domain-goroutine-reachable code; the epoch barrier must be the only synchronization")
		}
		for _, s := range n.facts.goStmts {
			a.report(RuleDomainUnsafe, n, s, domain,
				"goroutine creation in domain-goroutine-reachable code; workers must not spawn workers")
		}
		for _, s := range n.facts.syncOps {
			if a.atomicAllowed(s.detail) {
				continue
			}
			a.report(RuleDomainUnsafe, n, s, domain,
				s.detail+" in domain-goroutine-reachable code; the epoch barrier must be the only synchronization")
		}
	}
}

func (a *analysis) atomicAllowed(detail string) bool {
	for _, ok := range a.opts.AtomicAllowed {
		if detail == ok {
			return true
		}
	}
	return false
}

// globalWrites flags writes to package-level variables of deterministic
// packages from anywhere the engine reaches: shared mutable globals
// under the parallel engine are races, and even under the serial engine
// they leak state between runs.
func (a *analysis) globalWrites(cycle, domain map[*cgNode]*cgNode) {
	seen := map[*cgNode]bool{}
	for _, reach := range []map[*cgNode]*cgNode{cycle, domain} {
		for _, n := range sortedNodes(reach) {
			if seen[n] {
				continue
			}
			seen[n] = true
			for _, s := range n.facts.globalWrites {
				pkgPath := s.detail
				if i := strings.LastIndexByte(pkgPath, '.'); i >= 0 {
					pkgPath = pkgPath[:i]
				}
				if !hasPrefix(pkgPath, a.opts.SimPaths) {
					continue
				}
				a.report(RuleGlobalWrite, n, s, reach, fmt.Sprintf(
					"write to package-level %s from engine-reachable code; deterministic packages must keep state in the structs a run owns",
					s.detail))
			}
		}
	}
}

// finalize normalizes file names to module-relative form, disambiguates
// repeated IDs positionally, and sorts.
func (a *analysis) finalize() {
	for i := range a.findings {
		a.findings[i].Pos.Filename = a.relFile(a.findings[i].Pos.Filename)
	}
	byID := map[string][]int{}
	for i, f := range a.findings {
		if f.ID != "" {
			byID[f.ID] = append(byID[f.ID], i)
		}
	}
	for _, idxs := range byID {
		if len(idxs) < 2 {
			continue
		}
		sort.Slice(idxs, func(x, y int) bool {
			fx, fy := a.findings[idxs[x]], a.findings[idxs[y]]
			if fx.Pos.Filename != fy.Pos.Filename {
				return fx.Pos.Filename < fy.Pos.Filename
			}
			if fx.Pos.Line != fy.Pos.Line {
				return fx.Pos.Line < fy.Pos.Line
			}
			return fx.Pos.Column < fy.Pos.Column
		})
		// The first occurrence keeps the bare ID; later ones count up
		// from ~2, so a function's single violation never wears a
		// suffix.
		for k := 1; k < len(idxs); k++ {
			a.findings[idxs[k]].ID += fmt.Sprintf("~%d", k+1)
		}
	}
	sortFindings(a.findings)
}
