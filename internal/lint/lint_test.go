package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// lintSrc runs the engine over one synthetic file belonging to pkgPath.
func lintSrc(t *testing.T, pkgPath, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Files(fset, pkgPath, []*ast.File{f}, DefaultOptions())
}

func rulesOf(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Rule)
	}
	return out
}

func wantOnly(t *testing.T, fs []Finding, rule string, n int) {
	t.Helper()
	if len(fs) != n {
		t.Fatalf("got %d findings %v, want %d x %s", len(fs), rulesOf(fs), n, rule)
	}
	for _, f := range fs {
		if f.Rule != rule {
			t.Fatalf("got rule %s (%s), want %s", f.Rule, f.Msg, rule)
		}
	}
}

const simPkg = "cawa/internal/sm"

func TestWallClockFlagged(t *testing.T) {
	fs := lintSrc(t, simPkg, `package sm
import "time"
func f() int64 { return time.Now().UnixNano() }
func g() { time.Sleep(time.Millisecond) }
`)
	wantOnly(t, fs, RuleWallClock, 2)
	if fs[0].Pos.Line != 3 || fs[1].Pos.Line != 4 {
		t.Errorf("positions %v, want lines 3 and 4", fs)
	}
}

func TestWallClockDurationsAllowed(t *testing.T) {
	fs := lintSrc(t, simPkg, `package sm
import "time"
func f(d time.Duration) time.Duration { return d + time.Millisecond }
`)
	if len(fs) != 0 {
		t.Fatalf("durations flagged: %v", fs)
	}
}

func TestWallClockOutsideSimScopeAllowed(t *testing.T) {
	fs := lintSrc(t, "cawa/internal/harness", `package harness
import "time"
func f() { _ = time.Now() }
`)
	if len(fs) != 0 {
		t.Fatalf("harness wall-clock flagged: %v", fs)
	}
}

// TestWallClockOnlyInObsTree: the observability tree — including the
// obs/perf profiler, matched by prefix — must not read the host clock
// directly (the profiler's injected Clock seam is the only entry
// point), but it is exempt from the other determinism rules: it may
// range maps and use seedless rand, since it never feeds simulated
// timing.
func TestWallClockOnlyInObsTree(t *testing.T) {
	clockSrc := `package perf
import "time"
func now() int64 { return time.Now().UnixNano() }
`
	for _, pkg := range []string{"cawa/internal/obs", "cawa/internal/obs/perf"} {
		fs := lintSrc(t, pkg, clockSrc)
		wantOnly(t, fs, RuleWallClock, 1)
	}

	// Map ranges and global rand stay legal there: wall-clock only.
	fs := lintSrc(t, "cawa/internal/obs", `package obs
import "math/rand"
func f(m map[int]int) int {
	s := rand.Intn(3)
	for _, v := range m {
		s += v
	}
	return s
}
`)
	if len(fs) != 0 {
		t.Fatalf("non-wall-clock rules applied to obs: %v", fs)
	}
}

func TestGlobalRandFlagged(t *testing.T) {
	fs := lintSrc(t, simPkg, `package sm
import "math/rand"
func f() int { rand.Seed(1); return rand.Intn(10) }
`)
	wantOnly(t, fs, RuleGlobalRand, 2)
}

func TestSeededRandAllowed(t *testing.T) {
	fs := lintSrc(t, simPkg, `package sm
import "math/rand"
func f(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
`)
	if len(fs) != 0 {
		t.Fatalf("seeded rand flagged: %v", fs)
	}
}

func TestShadowedImportNotFlagged(t *testing.T) {
	fs := lintSrc(t, simPkg, `package sm
import "time"
type clock struct{}
func (clock) Now() int64 { return 0 }
func f() int64 {
	var time clock
	return time.Now()
}
var _ = time.Duration(0)
`)
	if len(fs) != 0 {
		t.Fatalf("shadowed receiver flagged: %v", fs)
	}
}

func TestMapRangeFlagged(t *testing.T) {
	fs := lintSrc(t, simPkg, `package sm
func f(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
`)
	wantOnly(t, fs, RuleMapRange, 1)
	if fs[0].Pos.Line != 4 {
		t.Errorf("position %v, want line 4", fs[0].Pos)
	}
}

func TestSliceRangeAllowed(t *testing.T) {
	fs := lintSrc(t, simPkg, `package sm
func f(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}
`)
	if len(fs) != 0 {
		t.Fatalf("slice range flagged: %v", fs)
	}
}

func TestCollectThenSortAllowed(t *testing.T) {
	fs := lintSrc(t, simPkg, `package sm
import "sort"
func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`)
	if len(fs) != 0 {
		t.Fatalf("collect-then-sort flagged: %v", fs)
	}
}

func TestCollectWithoutSortFlagged(t *testing.T) {
	fs := lintSrc(t, simPkg, `package sm
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`)
	wantOnly(t, fs, RuleMapRange, 1)
}

func TestIgnoreDirective(t *testing.T) {
	fs := lintSrc(t, simPkg, `package sm
func f(m map[int]int) {
	//cawalint:ignore order-insensitive sum
	for _, v := range m {
		_ = v
	}
}
`)
	if len(fs) != 0 {
		t.Fatalf("annotated range flagged: %v", fs)
	}
}

func TestBareIgnoreDirectiveFlagged(t *testing.T) {
	fs := lintSrc(t, simPkg, `package sm
func f(m map[int]int) {
	//cawalint:ignore
	for _, v := range m {
		_ = v
	}
}
`)
	if len(fs) != 2 {
		t.Fatalf("got %v, want ignore-directive + map-range", rulesOf(fs))
	}
	var sawBare bool
	for _, f := range fs {
		if f.Rule == "ignore-directive" {
			sawBare = true
			if !strings.Contains(f.Msg, "needs a reason") {
				t.Errorf("msg %q", f.Msg)
			}
		}
	}
	if !sawBare {
		t.Fatalf("bare directive not reported: %v", fs)
	}
}

func TestGoroutineFlaggedEverywhere(t *testing.T) {
	src := `package x
func f() { go func() {}() }
`
	for _, pkg := range []string{simPkg, "cawa/internal/workloads", "cawa/internal/isa"} {
		fs := lintSrc(t, pkg, src)
		wantOnly(t, fs, RuleGoroutine, 1)
	}
}

func TestGoroutineAllowedInHarness(t *testing.T) {
	fs := lintSrc(t, "cawa/internal/harness", `package harness
func f() { go func() {}() }
`)
	if len(fs) != 0 {
		t.Fatalf("harness goroutine flagged: %v", fs)
	}
}

// TestRepoIsClean runs the production configuration over the real
// simulation packages — the linter must hold on the code it guards.
func TestRepoIsClean(t *testing.T) {
	dirs := map[string]string{
		"../sm": "cawa/internal/sm", "../gpu": "cawa/internal/gpu",
		"../sched": "cawa/internal/sched", "../core": "cawa/internal/core",
		"../cache": "cawa/internal/cache", "../memsys": "cawa/internal/memsys",
		"../stats": "cawa/internal/stats", "../workloads": "cawa/internal/workloads",
		"../obs": "cawa/internal/obs", "../obs/perf": "cawa/internal/obs/perf",
	}
	for dir, pkg := range dirs {
		fs, err := Dir(dir, pkg, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, f := range fs {
			t.Errorf("%s: %s", pkg, f)
		}
	}
}

// lintNamed is lintSrc with a caller-chosen filename, for rules whose
// scope is a file path rather than a package.
func lintNamed(t *testing.T, pkgPath, filename, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Files(fset, pkgPath, []*ast.File{f}, DefaultOptions())
}

// TestGoroutineAllowedInDomainRunner: the gpu domain runner is the one
// model file permitted to start goroutines — its workers are proven
// deterministic by the epoch barrier. The allowlist is per file: the
// same package's other files stay banned.
func TestGoroutineAllowedInDomainRunner(t *testing.T) {
	src := `package gpu
func f() { go func() {}() }
`
	fs := lintNamed(t, "cawa/internal/gpu", "internal/gpu/domains.go", src)
	if len(fs) != 0 {
		t.Fatalf("domain-runner goroutine flagged: %v", fs)
	}
	fs = lintNamed(t, "cawa/internal/gpu", "/abs/path/repo/internal/gpu/domains.go", src)
	if len(fs) != 0 {
		t.Fatalf("domain-runner goroutine flagged under absolute path: %v", fs)
	}
	fs = lintNamed(t, "cawa/internal/gpu", "internal/gpu/gpu.go", src)
	wantOnly(t, fs, RuleGoroutine, 1)
	// A file merely named like the allowlisted one, in another package,
	// stays banned (the allowlist pairs import path with file name).
	fs = lintNamed(t, "cawa/internal/sm", "internal/sm/domains.go", src)
	wantOnly(t, fs, RuleGoroutine, 1)
}

// TestMemsysMutationFlagged: SM-domain code calling memsys.System
// methods directly bypasses the staged two-phase interface and is
// flagged, whether the System value is a struct field, a parameter, or
// a local built by memsys.New. NewL1D (construction wiring) is exempt,
// and the rule does not apply outside StagedMemsysPaths.
func TestMemsysMutationFlagged(t *testing.T) {
	src := `package sm
import "cawa/internal/memsys"
type SM struct{ sys *memsys.System }
func (m *SM) bad(now int64) { m.sys.Cycle(now) }
func alsoBad(s *memsys.System) { s.Cycle(1) }
func local(cfg Config) { sys := memsys.New(cfg); sys.Commit(nil) }
type Config struct{}
`
	fs := lintSrc(t, simPkg, src)
	wantOnly(t, fs, RuleMemsysMutation, 3)

	// The gpu orchestrator legitimately drives System.Cycle: not staged.
	fs = lintSrc(t, "cawa/internal/gpu", src)
	if len(fs) != 0 {
		t.Fatalf("orchestrator-side System call flagged: %v", fs)
	}
}

// TestMemsysConstructionAllowed: the sanctioned System uses in SM code
// — NewL1D wiring and everything reached through the L1D — are clean.
func TestMemsysConstructionAllowed(t *testing.T) {
	fs := lintSrc(t, simPkg, `package sm
import "cawa/internal/memsys"
type Options struct{ MemSys *memsys.System }
type SM struct{ l1d *memsys.L1D }
func New(opt Options) *SM {
	m := &SM{}
	m.l1d = opt.MemSys.NewL1D(nil, nil)
	return m
}
func (m *SM) issue(now int64) { m.l1d.AccessLoad(req(), 0, now) }
func req() (r struct{}) { return }
`)
	if len(fs) != 0 {
		t.Fatalf("sanctioned memsys uses flagged: %v", fs)
	}
}

// TestMemsysMutationIgnoreDirective: the escape hatch works for this
// rule too.
func TestMemsysMutationIgnoreDirective(t *testing.T) {
	fs := lintSrc(t, simPkg, `package sm
import "cawa/internal/memsys"
func f(s *memsys.System) {
	//cawalint:ignore test-only drain helper
	s.Cycle(1)
}
`)
	if len(fs) != 0 {
		t.Fatalf("ignored finding still reported: %v", fs)
	}
}
