package lint

// Whole-module loading for the interprocedural analyzer.
//
// The per-file engine (lint.go) type-checks each package against stub
// imports: cheap, but cross-package types degrade to empty named types,
// so it can only see what is syntactically local. The interprocedural
// passes need the real thing — exact method sets to resolve interface
// calls, exact signatures to resolve calls through function values, and
// exact receiver identities to recognize memsys.System no matter how a
// value reached the callee. LoadModule therefore parses every non-test
// package under the module root and type-checks them in dependency
// order: module-internal imports resolve to the already-checked
// packages, and standard-library imports resolve through the compiler's
// export data (with a from-source fallback), all stdlib-only.

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Pkg is one loaded, type-checked package of the module under analysis.
type Pkg struct {
	Path  string // import path
	Dir   string // directory the files were read from
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is a whole-module load: every non-test, non-testdata package
// under the module root, parsed with comments and fully type-checked.
type Module struct {
	Path string // module path from go.mod
	Dir  string // module root directory
	Fset *token.FileSet
	Pkgs map[string]*Pkg // by import path
	// Sorted lists packages in dependency order (imports before
	// importers, ties broken by path) — the type-checking order.
	Sorted []*Pkg
}

// LoadModule loads and type-checks the module rooted at dir. Any parse
// or type error fails the load: the interprocedural analysis is only
// meaningful over code the compiler would accept, and a broken tree
// must fail the lint gate loudly (exit 2 in the CLI), not silently
// shrink the call graph.
func LoadModule(dir string) (*Module, error) {
	modPath, err := readModulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{Path: modPath, Dir: dir, Fset: token.NewFileSet(), Pkgs: map[string]*Pkg{}}

	dirs, err := packageDirs(dir)
	if err != nil {
		return nil, err
	}
	for _, d := range dirs {
		rel, err := filepath.Rel(dir, d)
		if err != nil {
			return nil, err
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := parsePackage(m.Fset, d, pkgPath)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			m.Pkgs[pkgPath] = pkg
		}
	}

	order, err := dependencyOrder(m)
	if err != nil {
		return nil, err
	}
	imp := newChainImporter(m)
	for _, pkg := range order {
		if err := checkPackage(m.Fset, pkg, imp); err != nil {
			return nil, err
		}
		m.Sorted = append(m.Sorted, pkg)
	}
	return m, nil
}

// readModulePath extracts the module directive from a go.mod file.
func readModulePath(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s has no module directive", path)
}

// packageDirs returns every directory under root that holds at least
// one non-test .go file, skipping hidden directories, testdata trees,
// and vendored code.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		if dir := filepath.Dir(path); !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}

// parsePackage parses every non-test .go file in d. All files must
// declare the same package clause; a mixed directory is a load error.
func parsePackage(fset *token.FileSet, d, pkgPath string) (*Pkg, error) {
	entries, err := os.ReadDir(d)
	if err != nil {
		return nil, err
	}
	pkg := &Pkg{Path: pkgPath, Dir: d}
	pkgName := ""
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(d, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !fileIncluded(name, f) {
			continue // excluded by build constraints for the default tag set
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("%s: mixed packages %s and %s in one directory", d, pkgName, f.Name.Name)
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// fileIncluded evaluates a file's build constraints (the //go:build
// line and GOOS/GOARCH name suffixes) against the default build: host
// OS and architecture, gc, the race detector off. Exactly one file of
// a constraint pair like race_on.go / race_off.go loads, matching what
// `go build` would compile without -race.
func fileIncluded(name string, f *ast.File) bool {
	if !suffixIncluded(name) {
		return false
	}
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break // constraints must precede the package clause
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			return expr.Eval(buildTagOK)
		}
	}
	return true
}

// buildTagOK reports whether a build tag holds for the analyzer's
// default configuration.
func buildTagOK(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc", "unix":
		return true
	}
	// Language-version tags go1.N hold up to the running toolchain.
	if rest, ok := strings.CutPrefix(tag, "go1."); ok {
		n, err := strconv.Atoi(rest)
		if err != nil {
			return false
		}
		verParts := strings.SplitN(runtime.Version(), ".", 3) // "go1.24.0"
		if len(verParts) < 2 {
			return false
		}
		cur, err := strconv.Atoi(verParts[1])
		return err == nil && n <= cur
	}
	return false
}

// suffixIncluded applies GOOS/GOARCH file-name constraints
// (name_linux.go, name_amd64.go, name_linux_amd64.go).
func suffixIncluded(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	isOS := func(s string) bool {
		switch s {
		case "linux", "darwin", "windows", "freebsd", "openbsd", "netbsd", "js", "wasip1", "plan9", "solaris", "aix", "android", "ios":
			return true
		}
		return false
	}
	isArch := func(s string) bool {
		switch s {
		case "amd64", "arm64", "386", "arm", "wasm", "ppc64", "ppc64le", "mips", "mipsle", "mips64", "mips64le", "riscv64", "s390x", "loong64":
			return true
		}
		return false
	}
	n := len(parts)
	if n >= 2 && isArch(parts[n-1]) {
		if parts[n-1] != runtime.GOARCH {
			return false
		}
		parts = parts[:n-1]
		n--
	}
	if n >= 2 && isOS(parts[n-1]) {
		return parts[n-1] == runtime.GOOS
	}
	return true
}

// moduleImports lists pkg's imports that live inside the module, in
// sorted order.
func moduleImports(m *Module, pkg *Pkg) []string {
	set := map[string]bool{}
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if _, ok := m.Pkgs[path]; ok {
				set[path] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// dependencyOrder topologically sorts the module's packages so every
// package is checked after its module-internal imports. Import cycles
// are a load error (the go tool would reject them too).
func dependencyOrder(m *Module) ([]*Pkg, error) {
	paths := make([]string, 0, len(m.Pkgs))
	for p := range m.Pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []*Pkg
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("import cycle through %s", path)
		}
		state[path] = visiting
		for _, dep := range moduleImports(m, m.Pkgs[path]) {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, m.Pkgs[path])
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// chainImporter resolves module-internal imports to their checked
// types.Package and everything else through the compiler's export data,
// falling back to type-checking the dependency from source. Both
// fallbacks ship with the standard library; no tooling dependency.
type chainImporter struct {
	m      *Module
	gc     types.Importer
	source types.Importer
	cache  map[string]*types.Package
}

func newChainImporter(m *Module) *chainImporter {
	return &chainImporter{
		m:      m,
		gc:     importer.Default(),
		source: importer.ForCompiler(m.Fset, "source", nil),
		cache:  map[string]*types.Package{},
	}
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := c.m.Pkgs[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("internal import %s not yet checked (dependency order bug)", path)
		}
		return pkg.Types, nil
	}
	if p, ok := c.cache[path]; ok {
		return p, nil
	}
	p, err := c.gc.Import(path)
	if err != nil {
		p, err = c.source.Import(path)
	}
	if err != nil {
		return nil, fmt.Errorf("import %q: %w", path, err)
	}
	c.cache[path] = p
	return p, nil
}

// checkPackage type-checks one package, populating pkg.Types and a full
// types.Info. The first error aborts the load.
func checkPackage(fset *token.FileSet, pkg *Pkg, imp types.Importer) error {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, info)
	if firstErr != nil {
		return fmt.Errorf("type check %s: %w", pkg.Path, firstErr)
	}
	if err != nil {
		return fmt.Errorf("type check %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}
