package lint

// A CHA-style call graph over the whole module, for the
// interprocedural rules (interproc.go).
//
// Nodes are declared functions and methods plus function literals
// (named <parent>$N in creation order, so their identity survives line
// shifts). Edges come from four resolution strategies, each an
// overapproximation — the graph may contain calls that never happen at
// run time, never the reverse (within the documented caveats):
//
//   - static: direct calls to declared functions and methods.
//   - interface: a call through an interface method links to that
//     method on every named type in the module whose type (or pointer)
//     implements the interface — class-hierarchy analysis.
//   - function values: a call through a func-typed variable, field, or
//     parameter links to every module function or literal whose address
//     is taken somewhere in the module and whose signature matches.
//   - creation: a function links to every literal it lexically creates
//     (making a closure in hot code means it may well run hot).
//
// Soundness caveats (documented in DESIGN.md): calls made via
// reflection, and function values that enter the module from outside
// (no address-taken site in module source) are invisible. The module
// does not use either on the guarded paths.
//
// While walking bodies the builder also collects per-function *facts* —
// allocation sites, channel operations, sync/atomic usage, wall-clock
// calls, writes to package-level variables — which the rules later
// combine with reachability.

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// site is one fact occurrence inside a function body.
type site struct {
	pos    token.Pos
	detail string // stable, human-readable discriminator for finding IDs
}

// nodeFacts are the rule-relevant observations of one function body.
type nodeFacts struct {
	allocs       []site // make/new/append/literals/boxing/closures/concat
	chanOps      []site // send, receive, close, select, make(chan), range
	goStmts      []site
	syncOps      []site // sync.Mutex et al. methods, sync/atomic calls
	wallClock    []site // time.Now-class calls (detail "time.Now")
	globalWrites []site // writes to module package-level variables
}

// cgNode is one function, method, or function literal.
type cgNode struct {
	name string // canonical: types.Func.FullName(), or parent$N for literals
	fn   *types.Func
	pkg  *Pkg
	sig  *types.Signature
	pos  token.Pos
	file string // base file name, for per-file allowlists

	callees []cgEdge
	edgeSet map[*cgNode]bool
	facts   nodeFacts

	litSeq int // literals created so far (names children)
}

// cgEdge is a call edge with the position of (one of) its call sites.
type cgEdge struct {
	to  *cgNode
	pos token.Pos
}

// callGraph is the module-wide graph plus the indexes the rules need.
type callGraph struct {
	module *Module
	nodes  map[string]*cgNode
	byObj  map[*types.Func]*cgNode
	named  []*types.Named // module named types, for interface resolution

	addrTaken map[string][]*cgNode // normalized signature -> candidates
	pending   []pendingDynamic
	chaCache  map[string][]*cgNode

	// varBind tracks, per variable, the function-literal nodes assigned
	// to it; varEscapes marks variables that also receive non-literal
	// values, disqualifying them from precise resolution.
	varBind    map[*types.Var][]*cgNode
	varEscapes map[*types.Var]bool
}

type pendingDynamic struct {
	from *cgNode
	sig  string
	pos  token.Pos
	// localVar, when set, is the variable the call goes through; if its
	// only assignments are function literals, the call links to exactly
	// those literals instead of every signature match.
	localVar *types.Var
}

// buildCallGraph indexes declarations, walks every body, and resolves
// dynamic calls.
func buildCallGraph(m *Module) *callGraph {
	g := &callGraph{
		module:     m,
		nodes:      map[string]*cgNode{},
		byObj:      map[*types.Func]*cgNode{},
		addrTaken:  map[string][]*cgNode{},
		chaCache:   map[string][]*cgNode{},
		varBind:    map[*types.Var][]*cgNode{},
		varEscapes: map[*types.Var]bool{},
	}
	for _, pkg := range m.Sorted {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if named, ok := tn.Type().(*types.Named); ok {
					g.named = append(g.named, named)
				}
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &cgNode{
					name:    obj.FullName(),
					fn:      obj,
					pkg:     pkg,
					sig:     obj.Type().(*types.Signature),
					pos:     fd.Pos(),
					file:    filepath.Base(m.Fset.Position(fd.Pos()).Filename),
					edgeSet: map[*cgNode]bool{},
				}
				g.nodes[n.name] = n
				g.byObj[obj] = n
			}
		}
	}
	for _, pkg := range m.Sorted {
		for _, f := range pkg.Files {
			g.walkFile(pkg, f)
		}
	}
	for _, p := range g.pending {
		if v := p.localVar; v != nil && !g.varEscapes[v] && len(g.varBind[v]) > 0 {
			for _, lit := range g.varBind[v] {
				g.edge(p.from, lit, p.pos)
			}
			continue
		}
		for _, cand := range g.addrTaken[p.sig] {
			g.edge(p.from, cand, p.pos)
		}
	}
	return g
}

func (g *callGraph) edge(from, to *cgNode, pos token.Pos) {
	if from == nil || to == nil || from.edgeSet[to] {
		return
	}
	from.edgeSet[to] = true
	from.callees = append(from.callees, cgEdge{to: to, pos: pos})
}

// nodeOf maps a function object to its node, unwrapping generic
// instantiations to their declared origin.
func (g *callGraph) nodeOf(obj *types.Func) *cgNode {
	if obj == nil {
		return nil
	}
	return g.byObj[obj.Origin()]
}

// normSig renders a signature with the receiver stripped: the callable
// shape a function value of this function would have. Full package
// paths qualify parameter types, so identically-named types in
// different packages cannot alias.
func normSig(sig *types.Signature) string {
	if sig.Recv() != nil {
		sig = types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	}
	return types.TypeString(sig, nil)
}

// chaTargets resolves an interface method to every module method that
// may satisfy it: method name on each named type (or its pointer) that
// implements the interface.
func (g *callGraph) chaTargets(iface *types.Interface, name string) []*cgNode {
	key := types.TypeString(iface, nil) + "." + name
	if out, ok := g.chaCache[key]; ok {
		return out
	}
	var out []*cgNode
	for _, named := range g.named {
		if types.IsInterface(named) {
			continue
		}
		var recv types.Type = named
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, named.Obj().Pkg(), name)
		if fn, ok := obj.(*types.Func); ok {
			if n := g.nodeOf(fn); n != nil {
				out = append(out, n)
			}
		}
	}
	g.chaCache[key] = out
	return out
}

// fileWalker tracks the enclosing-function stack through one file's
// pre-order traversal (ast.Inspect calls f(nil) once after each node's
// children, so depth counting recovers the nesting).
type fileWalker struct {
	g     *callGraph
	pkg   *Pkg
	info  *types.Info
	depth int
	stack []walkFrame

	// calleeExprs marks expressions in call-operator position, so a
	// function referenced there is a call, not an address-taken value.
	calleeExprs map[ast.Expr]bool
	// panicSpans are intervals inside panic(...) arguments; allocation
	// facts there are skipped — a panicking cycle is not the hot path.
	panicSpans []span
	// handledLits are composite literals already accounted (under a &).
	handledLits map[*ast.CompositeLit]bool
	// litOwner maps a function literal to the variable it is assigned
	// to; the binding completes when the literal's node is created.
	litOwner map[*ast.FuncLit]*types.Var
}

type walkFrame struct {
	node  *cgNode
	depth int
}

type span struct{ lo, hi token.Pos }

func (w *fileWalker) current() *cgNode {
	if len(w.stack) == 0 {
		return nil
	}
	return w.stack[len(w.stack)-1].node
}

func (g *callGraph) walkFile(pkg *Pkg, f *ast.File) {
	w := &fileWalker{
		g: g, pkg: pkg, info: pkg.Info,
		calleeExprs: map[ast.Expr]bool{},
		handledLits: map[*ast.CompositeLit]bool{},
		litOwner:    map[*ast.FuncLit]*types.Var{},
	}
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			if len(w.stack) > 0 && w.stack[len(w.stack)-1].depth == w.depth {
				w.stack = w.stack[:len(w.stack)-1]
			}
			w.depth--
			return true
		}
		w.depth++
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body == nil {
				return false
			}
			if obj, ok := w.info.Defs[n.Name].(*types.Func); ok {
				if node := g.byObj[obj]; node != nil {
					w.stack = append(w.stack, walkFrame{node: node, depth: w.depth})
				}
			}
		case *ast.FuncLit:
			w.funcLit(n)
		default:
			w.visit(n)
		}
		return true
	})
}

// funcLit creates the literal's node, links it from its creator, and
// registers it as a dynamic-call candidate unless it is invoked on the
// spot.
func (w *fileWalker) funcLit(lit *ast.FuncLit) {
	parent := w.current()
	name := w.pkg.Path + ".init"
	var seq *int
	if parent != nil {
		name = parent.name
		seq = &parent.litSeq
	} else {
		seq = new(int) // package-level literal (var initializer)
	}
	*seq++
	node := &cgNode{
		name:    name + "$" + itoa(*seq),
		pkg:     w.pkg,
		pos:     lit.Pos(),
		file:    filepath.Base(w.g.module.Fset.Position(lit.Pos()).Filename),
		edgeSet: map[*cgNode]bool{},
	}
	if sig, ok := w.info.Types[lit].Type.(*types.Signature); ok {
		node.sig = sig
	}
	// Literal names can collide only if two package-level literals in
	// different files race the fresh counter; suffix until free.
	for w.g.nodes[node.name] != nil {
		*seq++
		node.name = name + "$" + itoa(*seq)
	}
	w.g.nodes[node.name] = node
	if parent != nil {
		w.g.edge(parent, node, lit.Pos())
	}
	if !w.calleeExprs[lit] {
		if node.sig != nil {
			w.g.addrTaken[normSig(node.sig)] = append(w.g.addrTaken[normSig(node.sig)], node)
		}
		if parent != nil {
			w.addAlloc(parent, lit.Pos(), "func literal (closure)")
		}
	}
	if v, ok := w.litOwner[lit]; ok {
		w.g.varBind[v] = append(w.g.varBind[v], node)
	}
	w.stack = append(w.stack, walkFrame{node: node, depth: w.depth})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func (w *fileWalker) inPanic(pos token.Pos) bool {
	for _, s := range w.panicSpans {
		if pos >= s.lo && pos < s.hi {
			return true
		}
	}
	return false
}

func (w *fileWalker) addAlloc(node *cgNode, pos token.Pos, detail string) {
	if node == nil || w.inPanic(pos) {
		return
	}
	node.facts.allocs = append(node.facts.allocs, site{pos: pos, detail: detail})
}

func (w *fileWalker) typeOf(e ast.Expr) types.Type {
	if tv, ok := w.info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := w.info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := w.info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// boxes reports whether assigning a value of type from to a location of
// type to converts a concrete value into an interface — the allocation
// the escape analyzer cannot always elide.
func boxes(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	if !types.IsInterface(to) || types.IsInterface(from) {
		return false
	}
	if b, ok := from.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

func (w *fileWalker) visit(n ast.Node) {
	node := w.current()
	switch n := n.(type) {
	case *ast.CallExpr:
		w.call(node, n)
	case *ast.GoStmt:
		if node != nil {
			node.facts.goStmts = append(node.facts.goStmts, site{pos: n.Pos(), detail: "go statement"})
		}
	case *ast.SendStmt:
		w.chanOp(node, n.Pos(), "channel send")
	case *ast.SelectStmt:
		w.chanOp(node, n.Pos(), "select")
	case *ast.UnaryExpr:
		switch n.Op {
		case token.ARROW:
			w.chanOp(node, n.Pos(), "channel receive")
		case token.AND:
			if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				w.handledLits[lit] = true
				w.addAlloc(node, n.Pos(), "&composite literal")
			}
		}
	case *ast.RangeStmt:
		if t := w.typeOf(n.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				w.chanOp(node, n.Pos(), "range over channel")
			}
		}
	case *ast.CompositeLit:
		if w.handledLits[n] {
			break
		}
		t := w.typeOf(n)
		if t == nil {
			break
		}
		switch t.Underlying().(type) {
		case *types.Slice:
			w.addAlloc(node, n.Pos(), "slice literal")
		case *types.Map:
			w.addAlloc(node, n.Pos(), "map literal")
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD && isString(w.typeOf(n)) {
			w.addAlloc(node, n.Pos(), "string concatenation")
		}
	case *ast.AssignStmt:
		w.assign(node, n)
	case *ast.IncDecStmt:
		w.globalWrite(node, n.X, n.Pos())
	case *ast.ValueSpec:
		if len(n.Names) == len(n.Values) {
			for i := range n.Names {
				w.bindFunc(n.Names[i], n.Values[i])
			}
		} else if len(n.Values) > 0 {
			for _, name := range n.Names {
				w.bindFunc(name, nil)
			}
		}
		if node != nil && n.Type != nil {
			declared := w.typeOf(n.Type)
			for _, v := range n.Values {
				if boxes(declared, w.typeOf(v)) {
					w.addAlloc(node, v.Pos(), "interface conversion")
				}
			}
		}
	case *ast.ReturnStmt:
		if node == nil || node.sig == nil {
			break
		}
		res := node.sig.Results()
		if len(n.Results) != res.Len() {
			break
		}
		for i, r := range n.Results {
			if boxes(res.At(i).Type(), w.typeOf(r)) {
				w.addAlloc(node, r.Pos(), "interface conversion")
			}
		}
	case *ast.Ident:
		w.maybeAddrTaken(n, n)
	case *ast.SelectorExpr:
		w.maybeAddrTaken(n, n.Sel)
	}
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (w *fileWalker) chanOp(node *cgNode, pos token.Pos, detail string) {
	if node != nil {
		node.facts.chanOps = append(node.facts.chanOps, site{pos: pos, detail: detail})
	}
}

// maybeAddrTaken registers a module function referenced outside call
// position as a dynamic-call candidate under its normalized signature.
func (w *fileWalker) maybeAddrTaken(e ast.Expr, id *ast.Ident) {
	if w.calleeExprs[e] {
		return
	}
	obj, ok := w.info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	n := w.g.nodeOf(obj)
	if n == nil || n.sig == nil {
		return
	}
	sig := normSig(n.sig)
	for _, have := range w.g.addrTaken[sig] {
		if have == n {
			return
		}
	}
	w.g.addrTaken[sig] = append(w.g.addrTaken[sig], n)
}

// assign collects global writes, string +=, interface boxing, and
// function-literal bindings.
func (w *fileWalker) assign(node *cgNode, n *ast.AssignStmt) {
	if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(w.typeOf(n.Lhs[0])) {
		w.addAlloc(node, n.Pos(), "string concatenation")
	}
	if len(n.Lhs) == len(n.Rhs) {
		for i := range n.Lhs {
			w.bindFunc(n.Lhs[i], n.Rhs[i])
		}
	} else {
		for _, lhs := range n.Lhs {
			w.bindFunc(lhs, nil)
		}
	}
	if n.Tok != token.DEFINE {
		for _, lhs := range n.Lhs {
			w.globalWrite(node, lhs, lhs.Pos())
		}
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				if boxes(w.typeOf(n.Lhs[i]), w.typeOf(n.Rhs[i])) {
					w.addAlloc(node, n.Rhs[i].Pos(), "interface conversion")
				}
			}
		}
	}
}

// bindFunc records a function-literal assignment to a variable, or
// marks the variable escaped when it receives anything else. rhs nil
// means an unknown value (multi-value assignment).
func (w *fileWalker) bindFunc(lhs, rhs ast.Expr) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	var v *types.Var
	if d, ok := w.info.Defs[id].(*types.Var); ok {
		v = d
	} else if u, ok := w.info.Uses[id].(*types.Var); ok {
		v = u
	}
	if v == nil {
		return
	}
	if _, isFunc := v.Type().Underlying().(*types.Signature); !isFunc {
		return
	}
	if rhs != nil {
		if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
			w.litOwner[lit] = v
			return
		}
	}
	w.g.varEscapes[v] = true
}

// globalWrite records a write whose base resolves to a package-level
// variable of a module package.
func (w *fileWalker) globalWrite(node *cgNode, lhs ast.Expr, pos token.Pos) {
	if node == nil {
		return
	}
	base := lhs
	for {
		switch e := base.(type) {
		case *ast.ParenExpr:
			base = e.X
		case *ast.IndexExpr:
			base = e.X
		case *ast.StarExpr:
			base = e.X
		case *ast.SelectorExpr:
			// pkg.Var: resolve the selected object; expr.Field: walk to
			// the root expression (writes through pointers stop here —
			// a documented approximation).
			if id, ok := e.X.(*ast.Ident); ok {
				if _, isPkg := w.info.Uses[id].(*types.PkgName); isPkg {
					base = e.Sel
					continue
				}
			}
			base = e.X
		default:
			goto resolved
		}
	}
resolved:
	id, ok := base.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	v, ok := w.info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return
	}
	pkg, inModule := w.g.module.Pkgs[v.Pkg().Path()]
	if !inModule || v.Parent() != pkg.Types.Scope() {
		return
	}
	node.facts.globalWrites = append(node.facts.globalWrites,
		site{pos: pos, detail: v.Pkg().Path() + "." + v.Name()})
}

// call resolves one call expression into edges and facts.
func (w *fileWalker) call(node *cgNode, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	w.calleeExprs[fun] = true
	w.calleeExprs[call.Fun] = true

	tv, hasTV := w.info.Types[fun]
	if hasTV && tv.IsType() {
		w.conversion(node, call, tv.Type)
		return
	}

	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := w.info.Uses[f].(type) {
		case *types.Builtin:
			w.builtin(node, call, obj.Name())
			return
		case *types.Func:
			w.staticCall(node, call, obj)
		case *types.Var:
			w.dynamicCall(node, call)
		default:
			w.dynamicCall(node, call)
		}
	case *ast.SelectorExpr:
		if sel, ok := w.info.Selections[f]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				w.methodCall(node, call, f, sel)
			case types.FieldVal:
				w.dynamicCall(node, call) // func-valued field
			}
		} else if obj, ok := w.info.Uses[f.Sel].(*types.Func); ok {
			w.staticCall(node, call, obj) // qualified pkg.Fun
		} else {
			w.dynamicCall(node, call) // pkg-level func var, etc.
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: the creation edge covers it.
	default:
		w.dynamicCall(node, call) // call of a call result, index, ...
	}
	w.callArgBoxing(node, call)
}

// conversion handles T(x): interface boxing and string<->byte/rune
// slice copies are allocation facts.
func (w *fileWalker) conversion(node *cgNode, call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	argT := w.typeOf(call.Args[0])
	if boxes(target, argT) {
		w.addAlloc(node, call.Pos(), "interface conversion")
		return
	}
	if argT == nil {
		return
	}
	toStr, fromStr := isString(target), isString(argT)
	_, toSlice := target.Underlying().(*types.Slice)
	_, fromSlice := argT.Underlying().(*types.Slice)
	if (toStr && fromSlice) || (toSlice && fromStr) {
		w.addAlloc(node, call.Pos(), "string conversion")
	}
}

func (w *fileWalker) builtin(node *cgNode, call *ast.CallExpr, name string) {
	switch name {
	case "make":
		if t := w.typeOf(call); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				w.chanOp(node, call.Pos(), "make(chan)")
			}
		}
		w.addAlloc(node, call.Pos(), "make")
	case "new":
		w.addAlloc(node, call.Pos(), "new")
	case "append":
		w.addAlloc(node, call.Pos(), "append")
	case "close":
		w.chanOp(node, call.Pos(), "close")
	case "panic":
		w.panicSpans = append(w.panicSpans, span{lo: call.Pos(), hi: call.End()})
	}
}

// staticCall links a direct call and records external-package facts.
func (w *fileWalker) staticCall(node *cgNode, call *ast.CallExpr, obj *types.Func) {
	if target := w.g.nodeOf(obj); target != nil {
		w.g.edge(node, target, call.Pos())
		return
	}
	w.externalFacts(node, call, obj)
}

// methodCall links a method call: interface receivers resolve via CHA,
// concrete receivers statically.
func (w *fileWalker) methodCall(node *cgNode, call *ast.CallExpr, selExpr *ast.SelectorExpr, sel *types.Selection) {
	obj, ok := sel.Obj().(*types.Func)
	if !ok {
		return
	}
	recv := sel.Recv()
	if sel.Kind() == types.MethodVal && types.IsInterface(recv) {
		if iface, ok := recv.Underlying().(*types.Interface); ok {
			for _, target := range w.g.chaTargets(iface, obj.Name()) {
				w.g.edge(node, target, call.Pos())
			}
		}
		w.externalFacts(node, call, obj)
		return
	}
	w.staticCall(node, call, obj)
}

// externalFacts classifies calls leaving the module: wall-clock reads
// and synchronization primitives.
func (w *fileWalker) externalFacts(node *cgNode, call *ast.CallExpr, obj *types.Func) {
	if node == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if bannedTime[obj.Name()] {
			node.facts.wallClock = append(node.facts.wallClock,
				site{pos: call.Pos(), detail: "time." + obj.Name()})
		}
	case "sync/atomic":
		detail := "sync/atomic." + obj.Name()
		if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
			detail = "sync/atomic." + recvTypeName(recv.Type()) + "." + obj.Name()
		}
		node.facts.syncOps = append(node.facts.syncOps, site{pos: call.Pos(), detail: detail})
	case "sync":
		detail := "sync." + obj.Name()
		if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
			detail = "sync." + recvTypeName(recv.Type()) + "." + obj.Name()
		}
		node.facts.syncOps = append(node.facts.syncOps, site{pos: call.Pos(), detail: detail})
	}
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return strings.TrimPrefix(types.TypeString(t, nil), "*")
}

// dynamicCall defers a call through a function value until every
// address-taken candidate is known.
func (w *fileWalker) dynamicCall(node *cgNode, call *ast.CallExpr) {
	if node == nil {
		return
	}
	t := w.typeOf(ast.Unparen(call.Fun))
	if t == nil {
		return
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return
	}
	p := pendingDynamic{from: node, sig: normSig(sig), pos: call.Pos()}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if v, ok := w.info.Uses[id].(*types.Var); ok {
			p.localVar = v
		}
	}
	w.g.pending = append(w.g.pending, p)
}

// callArgBoxing flags concrete arguments passed to interface
// parameters.
func (w *fileWalker) callArgBoxing(node *cgNode, call *ast.CallExpr) {
	if node == nil {
		return
	}
	t := w.typeOf(ast.Unparen(call.Fun))
	if t == nil {
		return
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // arg... passes the slice through
			}
			if s, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
				param = s.Elem()
			}
		case i < np:
			param = sig.Params().At(i).Type()
		}
		if boxes(param, w.typeOf(arg)) {
			w.addAlloc(node, arg.Pos(), "interface conversion")
		}
	}
}
