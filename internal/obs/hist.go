package obs

import "sync"

// histBounds are the fixed log-spaced upper bounds (seconds) every
// HistogramMetric uses: 1ms doubling up to ~524s, plus the implicit
// +Inf bucket. A fixed layout keeps Observe cheap (no per-metric
// configuration) and makes any two histograms mergeable bucket-wise —
// the property a fleet aggregator needs to sum per-worker scrapes.
const numHistBounds = 20

var histBounds = func() [numHistBounds]float64 {
	var out [numHistBounds]float64
	b := 0.001
	for i := range out {
		out[i] = b
		b *= 2
	}
	return out
}()

// HistogramBounds returns a copy of the fixed bucket upper bounds in
// seconds (exclusive of the implicit +Inf bucket).
func HistogramBounds() []float64 {
	return append([]float64(nil), histBounds[:]...)
}

// HistogramMetric is a concurrency-safe latency histogram with the
// registry's fixed log-spaced buckets. Unlike the probe-based kinds
// (Gauge/Rate/Ratio), a histogram is push-driven: callers Observe
// durations as they happen, and WritePrometheus renders the cumulative
// _bucket/_sum/_count series. The cycle-cadence Sampler ignores
// histograms — they live on the wall-clock (serving) axis, not the
// simulated-cycle axis.
type HistogramMetric struct {
	mu      sync.Mutex
	buckets [numHistBounds + 1]uint64 // last slot is +Inf
	count   uint64
	sum     float64
}

// Observe records one value (seconds). Values beyond the last bound
// land in the +Inf bucket; negative values clamp to zero.
func (h *HistogramMetric) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	i := 0
	for i < len(histBounds) && v > histBounds[i] {
		i++
	}
	h.mu.Lock()
	h.buckets[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Merge folds another histogram into h bucket-wise.
func (h *HistogramMetric) Merge(o *HistogramMetric) {
	o.mu.Lock()
	buckets, count, sum := o.buckets, o.count, o.sum
	o.mu.Unlock()
	h.mu.Lock()
	for i := range h.buckets {
		h.buckets[i] += buckets[i]
	}
	h.count += count
	h.sum += sum
	h.mu.Unlock()
}

// Count returns how many observations the histogram holds.
func (h *HistogramMetric) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values (seconds).
func (h *HistogramMetric) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns a consistent copy for rendering.
func (h *HistogramMetric) snapshot() (buckets [numHistBounds + 1]uint64, count uint64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.buckets, h.count, h.sum
}

// Histogram registers a push-driven latency histogram and returns it
// for the caller to Observe into. Scope follows the other kinds (smID
// or GPUScope).
func (r *Registry) Histogram(name string, smID int) *HistogramMetric {
	h := &HistogramMetric{}
	r.metrics = append(r.metrics, Metric{Name: name, SM: smID, Kind: Histogram, hist: h})
	return h
}
