// Package perf is the simulator's self-profiling layer: a low-overhead
// wall-clock phase profiler for the engine's orchestrator seams. Where
// internal/obs observes the *simulated* machine (IPC, stall counts,
// cache hit rates on the cycle axis), perf observes the *simulator
// itself* on the wall-clock axis — where the host nanoseconds of a run
// go: stepping SM domains, waiting at the epoch barrier, committing
// staged memory traffic, draining the shared memory system, planning
// fast-forward jumps.
//
// The package never reads the host clock. Simulation packages are
// banned from wall-clock access by cawalint (the cycle counter is the
// only time that may influence results), and perf sits under the same
// ban: every Profiler takes an injected Clock, and the only
// wall-clock-backed constructors live in internal/harness and the
// CLIs, which are outside the deterministic core. The clock is strictly
// observational — no engine control flow depends on a profiled
// duration — so profiled runs are byte-identical to unprofiled runs.
//
// Overhead budget: with profiling on, the engine performs a handful of
// clock reads per simulated cycle (two per instrumented phase).
// Observations land in fixed log2-bucketed histograms — one array
// increment, no allocation — so the steady-state cost is the clock
// reads themselves (~5-8% on the event-driven engine, measured in
// DESIGN.md "Self-profiling"). With profiling off (a nil *Profiler on
// the GPU) the only cost is one nil check per seam, and the cycle path
// stays allocation-free (TestProfilerOffZeroCost).
package perf

import (
	"fmt"
	"math/bits"
)

// Clock returns monotonic-enough nanoseconds. Injected so that the
// deterministic core never links the host clock directly; tests inject
// counting fakes, harness/CLIs inject time.Now. Implementations must be
// safe for concurrent use (domain workers read it during parallel
// epochs).
type Clock func() int64

// Phase identifies one orchestrator seam of the engine's cycle loop.
type Phase uint8

const (
	// PhaseDomainCompute is SM stepping: the serial per-SM loop, or the
	// wall-clock span of one parallel epoch (barrier entry to barrier
	// exit — the parallel region as the orchestrator experiences it).
	PhaseDomainCompute Phase = iota
	// PhaseBarrierWait is the summed per-shard barrier wait of one
	// parallel epoch: for each shard, the epoch span minus the time the
	// shard spent stepping its own SMs. This is the CPU time the epoch
	// barrier wastes on imbalance — the tuning signal for barrierSpins
	// and shard granularity.
	PhaseBarrierWait
	// PhaseStagedCommit is the orchestrator's post-barrier merge: store
	// log flushes plus stage-buffer commits, in SM-id order.
	PhaseStagedCommit
	// PhaseMemsysDrain is the shared memory system's event drain at the
	// top of each ticked cycle (System.Cycle).
	PhaseMemsysDrain
	// PhaseFastForward is the event-driven planner: the whole
	// fastForward call, including the memory-system drains and SM
	// wake-up cycles it performs at event boundaries (nested seams are
	// *not* subtracted; the taxonomy is documented in DESIGN.md).
	PhaseFastForward
	// PhaseDispatch is thread-block dispatch.
	PhaseDispatch
	// PhaseLookahead is the lookahead engine's batch path: horizon
	// planning, the multi-cycle batched epoch, and the barrier-time
	// replay of staged traffic. Like PhaseFastForward it brackets the
	// whole call — the nested epoch and commit seams it contains also
	// record under their own phases and are *not* subtracted.
	PhaseLookahead

	// NumPhases bounds the phase enum.
	NumPhases
)

// phaseNames index by Phase; these are the stable report keys.
var phaseNames = [NumPhases]string{
	"domain_compute",
	"barrier_wait",
	"staged_commit",
	"memsys_drain",
	"fast_forward",
	"dispatch",
	"lookahead",
}

// String returns the stable snake_case phase name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase%d", int(p))
}

// histBuckets is the fixed bucket count of a duration histogram:
// bucket i holds durations whose bit length is i, i.e. [2^(i-1), 2^i)
// nanoseconds, so 40 buckets span sub-ns to ~9 minutes. Fixed log2
// bucketing keeps Observe allocation-free and makes any two histograms
// mergeable by element-wise addition.
const histBuckets = 40

// Hist is a log2-bucketed duration histogram (nanoseconds). The zero
// value is ready to use. Not safe for concurrent use; the profiler's
// ownership discipline (orchestrator-only observation) makes that
// unnecessary.
type Hist struct {
	Buckets [histBuckets]uint64 `json:"-"`
	Count   uint64              `json:"count"`
	SumNS   int64               `json:"sum_ns"`
}

// Observe records one duration. Negative durations (a clock running
// backwards mid-observation) clamp to zero rather than corrupting a
// bucket index.
func (h *Hist) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.Buckets[i]++
	h.Count++
	h.SumNS += ns
}

// Merge folds o into h element-wise.
func (h *Hist) Merge(o *Hist) {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Count += o.Count
	h.SumNS += o.SumNS
}

// MeanNS returns the mean observation, or 0 when empty.
func (h *Hist) MeanNS() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.SumNS) / float64(h.Count)
}

// QuantileNS returns an upper bound on the q-quantile (0 < q <= 1)
// from the bucket boundaries: the upper edge of the bucket holding the
// q·Count-th observation. Resolution is a factor of two — enough to
// separate "tens of ns" barrier spins from "tens of µs" stragglers.
func (h *Hist) QuantileNS(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(q * float64(h.Count))
	if target < 1 {
		target = 1
	}
	var seen uint64
	for i, c := range h.Buckets {
		seen += c
		if seen >= target {
			return int64(1) << uint(i)
		}
	}
	return int64(1) << (histBuckets - 1)
}

// BucketBoundNS returns the exclusive upper bound of bucket i in
// nanoseconds (2^i; bucket 0 holds only zero-duration observations).
func BucketBoundNS(i int) int64 {
	if i <= 0 {
		return 0
	}
	return int64(1) << uint(i)
}

// shard is the per-domain-goroutine slice of a parallel run's profile.
// computeNS is the cross-goroutine seam: the shard's worker writes it
// during an epoch and the orchestrator reads it after the barrier —
// the barrier's release/acquire pair orders the accesses, and the
// struct's size (two histograms apart) keeps neighbouring shards'
// hot fields off one cache line.
type shard struct {
	compute   Hist
	wait      Hist
	computeNS int64 // this epoch's compute span; written by the shard's worker
	totalNS   int64 // cumulative compute
	waitNS    int64 // cumulative barrier wait
}

// DefaultSampleEvery is the epoch cadence of the counter-track
// checkpoints when a caller does not choose one.
const DefaultSampleEvery = 4096

// Profiler accumulates one run's (or, after Merge, one session's)
// phase profile. Construct with New, hand it to the engine
// (gpu.GPU.Perf via harness.RunOptions.Profiler), and call Report when
// the run finishes.
//
// Concurrency: Observe* methods belong to the engine's orchestrator
// goroutine; RecordShardCompute belongs to the shard's domain worker
// (each worker touches only its own index, and the epoch barrier
// orders worker writes before orchestrator reads). Merge and Report
// must only run after the profiled launch has returned.
type Profiler struct {
	clock       Clock
	sampleEvery int64

	startNS   int64
	epochs    int64
	simCycles int64
	phases    [NumPhases]Hist
	shards    []shard
	samples   []Sample
}

// New builds a profiler over the injected clock. sampleEvery is the
// epoch cadence of counter-track checkpoints (<= 0 disables sampling;
// DefaultSampleEvery is the CLIs' choice). The clock is read once here
// to anchor the run's time axis.
func New(clock Clock, sampleEvery int64) *Profiler {
	return &Profiler{clock: clock, sampleEvery: sampleEvery, startNS: clock()}
}

// Now reads the injected clock.
func (p *Profiler) Now() int64 { return p.clock() }

// ObservePhase records one span of the given phase.
func (p *Profiler) ObservePhase(ph Phase, ns int64) {
	p.phases[ph].Observe(ns)
}

// EnsureShards sizes the per-shard accumulators for a parallel launch
// with n domain goroutines. Existing shard totals are kept (a session
// may run several launches through one profiler); growth allocates,
// so the engine calls this at launch setup, never per cycle.
func (p *Profiler) EnsureShards(n int) {
	for len(p.shards) < n {
		p.shards = append(p.shards, shard{})
	}
}

// RecordShardCompute stores the compute span of shard i for the
// current epoch. Called by the shard's domain worker between barrier
// entry and exit; the orchestrator folds it in ObserveEpoch.
func (p *Profiler) RecordShardCompute(i int, ns int64) {
	if ns < 0 {
		ns = 0
	}
	p.shards[i].computeNS = ns
}

// ObserveEpoch folds one parallel epoch: the epoch's wall span
// [startNS, endNS) becomes a PhaseDomainCompute observation, each
// shard's recorded compute lands in its compute histogram, and the
// remainder of the epoch span becomes that shard's barrier wait. The
// summed wait is also recorded under PhaseBarrierWait. Every
// sampleEvery epochs a counter-track checkpoint is appended.
func (p *Profiler) ObserveEpoch(startNS, endNS int64, workers int) {
	epochNS := endNS - startNS
	if epochNS < 0 {
		epochNS = 0
	}
	p.phases[PhaseDomainCompute].Observe(epochNS)
	var waitSum int64
	for i := 0; i < workers && i < len(p.shards); i++ {
		s := &p.shards[i]
		c := s.computeNS
		if c > epochNS {
			c = epochNS // a straggler shard defines the epoch span
		}
		w := epochNS - c
		s.compute.Observe(c)
		s.wait.Observe(w)
		s.totalNS += c
		s.waitNS += w
		waitSum += w
	}
	p.phases[PhaseBarrierWait].Observe(waitSum)
	p.epochs++
	if p.sampleEvery > 0 && p.epochs%p.sampleEvery == 0 {
		p.checkpoint(endNS)
	}
}

// checkpoint appends one counter-track sample: cumulative per-phase
// and per-shard nanoseconds at a known wall offset.
func (p *Profiler) checkpoint(nowNS int64) {
	s := Sample{AtNS: nowNS - p.startNS, Epoch: p.epochs}
	for i := range p.phases {
		s.PhaseNS[i] = p.phases[i].SumNS
	}
	for i := range p.shards {
		s.Shards = append(s.Shards, ShardSample{ //cawalint:alloc-ok sampling cadence: one sample per checkpoint interval, not per cycle
			ComputeNS: p.shards[i].totalNS,
			WaitNS:    p.shards[i].waitNS,
		})
	}
	p.samples = append(p.samples, s) //cawalint:alloc-ok sampling cadence: one sample per checkpoint interval, not per cycle
}

// Merge folds another profiler's accumulation into p (histograms add,
// shard totals add index-wise, the other's counter-track samples are
// dropped — checkpoints are only meaningful on one run's time axis).
// Used by harness.Session to aggregate per-run profilers into one
// session report.
func (p *Profiler) Merge(o *Profiler) {
	for i := range p.phases {
		p.phases[i].Merge(&o.phases[i])
	}
	p.EnsureShards(len(o.shards))
	for i := range o.shards {
		p.shards[i].compute.Merge(&o.shards[i].compute)
		p.shards[i].wait.Merge(&o.shards[i].wait)
		p.shards[i].totalNS += o.shards[i].totalNS
		p.shards[i].waitNS += o.shards[i].waitNS
	}
	p.epochs += o.epochs
	p.simCycles += o.simCycles
}

// Epochs returns how many parallel epochs the profiler has folded.
func (p *Profiler) Epochs() int64 { return p.epochs }

// AddSimCycles accounts n simulated cycles to the profile. The engine
// calls it once per launch with the launch's cycle span; together with
// the epoch count it yields barriers_per_kcycle — the lookahead
// engine's headline amortization metric.
func (p *Profiler) AddSimCycles(n int64) {
	if n > 0 {
		p.simCycles += n
	}
}

// SimCycles returns the simulated cycles accounted so far.
func (p *Profiler) SimCycles() int64 { return p.simCycles }
