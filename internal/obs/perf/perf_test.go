package perf

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// fakeClock is a deterministic nanosecond counter advanced manually.
type fakeClock struct{ ns int64 }

func (c *fakeClock) now() int64       { return c.ns }
func (c *fakeClock) advance(ns int64) { c.ns += ns }

func TestHistObserveBuckets(t *testing.T) {
	var h Hist
	cases := []struct {
		ns     int64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
		{-5, 0}, // negative clamps to zero
	}
	for _, c := range cases {
		h.Observe(c.ns)
	}
	for _, c := range cases {
		if h.Buckets[c.bucket] == 0 {
			t.Errorf("Observe(%d): bucket %d empty", c.ns, c.bucket)
		}
	}
	if h.Count != uint64(len(cases)) {
		t.Fatalf("Count = %d, want %d", h.Count, len(cases))
	}
	wantSum := int64(0 + 1 + 2 + 3 + 4 + 1023 + 1024 + 0)
	if h.SumNS != wantSum {
		t.Fatalf("SumNS = %d, want %d", h.SumNS, wantSum)
	}

	// Overflow clamps to the last bucket instead of indexing out.
	var big Hist
	big.Observe(math.MaxInt64)
	if big.Buckets[histBuckets-1] != 1 {
		t.Fatalf("MaxInt64 not clamped to last bucket")
	}
}

func TestHistMergeAndQuantile(t *testing.T) {
	var a, b Hist
	for i := 0; i < 90; i++ {
		a.Observe(10) // bucket 4, bound 16
	}
	for i := 0; i < 10; i++ {
		b.Observe(1000) // bucket 10, bound 1024
	}
	a.Merge(&b)
	if a.Count != 100 {
		t.Fatalf("merged Count = %d, want 100", a.Count)
	}
	if got := a.QuantileNS(0.50); got != 16 {
		t.Errorf("p50 = %d, want 16", got)
	}
	if got := a.QuantileNS(0.99); got != 1024 {
		t.Errorf("p99 = %d, want 1024", got)
	}
	if got := a.MeanNS(); got != (90*10+10*1000)/100.0 {
		t.Errorf("mean = %v", got)
	}
}

func TestObserveEpochShardAccounting(t *testing.T) {
	clk := &fakeClock{}
	p := New(clk.now, 0)
	p.EnsureShards(2)

	// Epoch of 100ns; shard 0 computed 80ns, shard 1 computed 30ns.
	p.RecordShardCompute(0, 80)
	p.RecordShardCompute(1, 30)
	p.ObserveEpoch(0, 100, 2)

	// A shard reporting more compute than the epoch span clamps.
	p.RecordShardCompute(0, 500)
	p.RecordShardCompute(1, 200)
	p.ObserveEpoch(100, 300, 2)

	clk.advance(300)
	r := p.Report()
	if r.Epochs != 2 {
		t.Fatalf("Epochs = %d, want 2", r.Epochs)
	}
	if len(r.Shards) != 2 {
		t.Fatalf("Shards = %d, want 2", len(r.Shards))
	}
	// shard 0: 80 + 200(clamped) compute, 20 + 0 wait.
	if r.Shards[0].ComputeNS != 280 || r.Shards[0].WaitNS != 20 {
		t.Errorf("shard0 = %+v, want compute 280 wait 20", r.Shards[0])
	}
	// shard 1: 30 + 200 compute, 70 + 0 wait.
	if r.Shards[1].ComputeNS != 230 || r.Shards[1].WaitNS != 70 {
		t.Errorf("shard1 = %+v, want compute 230 wait 70", r.Shards[1])
	}
	if r.Imbalance == nil {
		t.Fatal("no imbalance summary")
	}
	// total wait 90, total wall 280+230+90 = 600.
	if want := 90.0 / 600.0; math.Abs(r.Imbalance.BarrierWaitFrac-want) > 1e-9 {
		t.Errorf("BarrierWaitFrac = %v, want %v", r.Imbalance.BarrierWaitFrac, want)
	}
	if want := 280.0 / 255.0; math.Abs(r.Imbalance.Spread-want) > 1e-9 {
		t.Errorf("Spread = %v, want %v", r.Imbalance.Spread, want)
	}
	if r.PhaseTotalNS("domain_compute") != 300 {
		t.Errorf("domain_compute total = %d, want 300", r.PhaseTotalNS("domain_compute"))
	}
	if r.PhaseTotalNS("barrier_wait") != 90 {
		t.Errorf("barrier_wait total = %d, want 90", r.PhaseTotalNS("barrier_wait"))
	}
	if r.WallNS != 300 {
		t.Errorf("WallNS = %d, want 300", r.WallNS)
	}
}

func TestProfilerMerge(t *testing.T) {
	clkA, clkB := &fakeClock{}, &fakeClock{}
	a, b := New(clkA.now, 0), New(clkB.now, 0)
	a.ObservePhase(PhaseMemsysDrain, 10)
	b.ObservePhase(PhaseMemsysDrain, 20)
	b.ObservePhase(PhaseDispatch, 5)
	b.EnsureShards(1)
	b.RecordShardCompute(0, 7)
	b.ObserveEpoch(0, 10, 1)

	a.Merge(b)
	r := a.Report()
	if r.PhaseTotalNS("memsys_drain") != 30 {
		t.Errorf("merged memsys_drain = %d, want 30", r.PhaseTotalNS("memsys_drain"))
	}
	if r.PhaseTotalNS("dispatch") != 5 {
		t.Errorf("merged dispatch = %d, want 5", r.PhaseTotalNS("dispatch"))
	}
	if len(r.Shards) != 1 || r.Shards[0].ComputeNS != 7 || r.Shards[0].WaitNS != 3 {
		t.Errorf("merged shards = %+v", r.Shards)
	}
	if r.Epochs != 1 {
		t.Errorf("merged epochs = %d, want 1", r.Epochs)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	clk := &fakeClock{}
	p := New(clk.now, 1) // checkpoint every epoch
	p.EnsureShards(1)
	p.RecordShardCompute(0, 40)
	p.ObserveEpoch(0, 50, 1)
	clk.advance(50)
	r := p.Report()
	if r.SchemaVersion != ReportSchemaVersion {
		t.Fatalf("SchemaVersion = %d", r.SchemaVersion)
	}
	if len(r.Samples) != 1 {
		t.Fatalf("Samples = %d, want 1", len(r.Samples))
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Epochs != r.Epochs || back.SchemaVersion != r.SchemaVersion {
		t.Fatalf("round-trip mismatch: %+v vs %+v", back, r)
	}
	if back.Imbalance == nil || back.Imbalance.BarrierWaitFrac != r.Imbalance.BarrierWaitFrac {
		t.Fatal("imbalance lost in round-trip")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	clk := &fakeClock{}
	p := New(clk.now, 1)
	p.EnsureShards(2)
	for e := 0; e < 3; e++ {
		p.RecordShardCompute(0, 60)
		p.RecordShardCompute(1, 40)
		start := clk.ns
		clk.advance(100)
		p.ObserveEpoch(start, clk.ns, 2)
	}
	r := p.Report()

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	var counters, shardTracks int
	for _, ev := range doc.TraceEvents {
		if ev.PID != perfPID {
			t.Errorf("event %q pid %d, want %d", ev.Name, ev.PID, perfPID)
		}
		switch ev.Phase {
		case "C":
			counters++
			if ev.Name == "shard_ms" {
				shardTracks++
				if _, ok := ev.Args["compute"]; !ok {
					t.Error("shard counter missing compute arg")
				}
			}
			if ev.Name == "phase_ms" {
				if _, ok := ev.Args["barrier_wait"]; !ok {
					t.Error("phase counter missing barrier_wait arg")
				}
			}
		case "M":
		default:
			t.Errorf("unexpected phase %q", ev.Phase)
		}
	}
	// 3 checkpoints × (1 phase track + 2 shard tracks).
	if counters != 9 || shardTracks != 6 {
		t.Fatalf("counters = %d shardTracks = %d, want 9 and 6", counters, shardTracks)
	}
	if !strings.Contains(buf.String(), "cawa engine profile") {
		t.Error("missing process_name metadata")
	}
}

func TestPhaseNamesStable(t *testing.T) {
	want := []string{"domain_compute", "barrier_wait", "staged_commit", "memsys_drain", "fast_forward", "dispatch", "lookahead"}
	for i, w := range want {
		if got := Phase(i).String(); got != w {
			t.Errorf("Phase(%d) = %q, want %q", i, got, w)
		}
	}
	if int(NumPhases) != len(want) {
		t.Errorf("NumPhases = %d, want %d (update report consumers)", NumPhases, len(want))
	}
}

func TestObservePhaseAllocFree(t *testing.T) {
	clk := &fakeClock{}
	p := New(clk.now, 0)
	p.EnsureShards(4)
	allocs := testing.AllocsPerRun(1000, func() {
		p.ObservePhase(PhaseMemsysDrain, 123)
		p.RecordShardCompute(2, 50)
		p.ObserveEpoch(0, 100, 4)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates: %v allocs/op", allocs)
	}
}
