package perf

import (
	"encoding/json"
	"io"
	"sort"
)

// ReportSchemaVersion stamps PerfReport JSON so downstream tooling
// (bench.sh, CI artifacts) can detect shape changes.
//
// Version history:
//  1. Initial shape (PR 7).
//  2. Lookahead engine (PR 9): sim_cycles + barriers_per_kcycle
//     top-level fields; the "lookahead" phase extends the per-sample
//     phase_ns array from 6 to 7 entries.
const ReportSchemaVersion = 2

// PhaseStats is one phase's aggregated histogram in report form.
type PhaseStats struct {
	Phase   string  `json:"phase"`
	Count   uint64  `json:"count"`
	TotalNS int64   `json:"total_ns"`
	MeanNS  float64 `json:"mean_ns"`
	P50NS   int64   `json:"p50_ns"`
	P99NS   int64   `json:"p99_ns"`
	MaxNS   int64   `json:"max_ns"` // upper bound of the highest occupied bucket
	// Buckets maps the exclusive upper bound (ns) of each occupied
	// log2 bucket to its count; empty buckets are omitted.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one occupied histogram bucket: count of observations below
// UpperNS (and at or above the previous bucket's bound).
type Bucket struct {
	UpperNS int64  `json:"upper_ns"`
	Count   uint64 `json:"count"`
}

// ShardStats summarizes one execution domain's compute/wait split.
type ShardStats struct {
	Shard       int     `json:"shard"`
	ComputeNS   int64   `json:"compute_ns"`
	WaitNS      int64   `json:"wait_ns"`
	WaitFrac    float64 `json:"wait_frac"` // wait / (compute + wait)
	P99WaitNS   int64   `json:"p99_wait_ns"`
	MeanEpochNS float64 `json:"mean_epoch_compute_ns"`
}

// Imbalance is the run-level shard-imbalance summary — the headline
// numbers bench.sh folds into BENCH_*.json.
type Imbalance struct {
	Shards        int   `json:"shards"`
	MeanComputeNS int64 `json:"mean_compute_ns"`
	MinComputeNS  int64 `json:"min_compute_ns"`
	MaxComputeNS  int64 `json:"max_compute_ns"`
	// Spread is max/mean shard compute — 1.0 is perfectly balanced.
	Spread float64 `json:"spread"`
	// BarrierWaitFrac is total shard wait over total shard wall
	// (compute+wait): the fraction of domain-goroutine CPU the epoch
	// barrier burns. The tuning signal for barrierSpins.
	BarrierWaitFrac float64 `json:"barrier_wait_frac"`
}

// Sample is one counter-track checkpoint: cumulative per-phase and
// per-shard nanoseconds at AtNS on the run's wall axis.
type Sample struct {
	AtNS    int64            `json:"at_ns"`
	Epoch   int64            `json:"epoch"`
	PhaseNS [NumPhases]int64 `json:"phase_ns"`
	Shards  []ShardSample    `json:"shards,omitempty"`
}

// ShardSample is one shard's cumulative split at a checkpoint.
type ShardSample struct {
	ComputeNS int64 `json:"compute_ns"`
	WaitNS    int64 `json:"wait_ns"`
}

// Report is the per-run (or merged per-session) PerfReport artifact.
type Report struct {
	SchemaVersion int   `json:"schema_version"`
	WallNS        int64 `json:"wall_ns"`
	Epochs        int64 `json:"epochs"`
	// SimCycles is the simulated cycles covered by the profile
	// (summed launch spans; see Profiler.AddSimCycles).
	SimCycles int64 `json:"sim_cycles"`
	// BarriersPerKcycle is epochs per 1000 simulated cycles — the
	// lookahead engine's amortization headline. The one-cycle-epoch
	// engine sits near 1000 on busy spans; lookahead divides it by the
	// mean horizon length. 0 for serial runs or when no cycles were
	// accounted.
	BarriersPerKcycle float64      `json:"barriers_per_kcycle"`
	Phases            []PhaseStats `json:"phases"`
	Shards            []ShardStats `json:"shards,omitempty"`
	Imbalance         *Imbalance   `json:"imbalance,omitempty"`
	Samples           []Sample     `json:"samples,omitempty"`
}

// Report snapshots the profiler into its serializable artifact. Phases
// with zero observations are omitted; shard stats and the imbalance
// summary appear only for parallel runs (EnsureShards > 0).
func (p *Profiler) Report() *Report {
	r := &Report{
		SchemaVersion: ReportSchemaVersion,
		WallNS:        p.clock() - p.startNS,
		Epochs:        p.epochs,
		SimCycles:     p.simCycles,
		Samples:       p.samples,
	}
	if p.simCycles > 0 {
		r.BarriersPerKcycle = float64(p.epochs) * 1000 / float64(p.simCycles)
	}
	for ph := Phase(0); ph < NumPhases; ph++ {
		h := &p.phases[ph]
		if h.Count == 0 {
			continue
		}
		r.Phases = append(r.Phases, phaseStats(ph.String(), h))
	}
	if len(p.shards) > 0 {
		var imb Imbalance
		imb.Shards = len(p.shards)
		var totalCompute, totalWait int64
		imb.MinComputeNS = p.shards[0].totalNS
		for i := range p.shards {
			s := &p.shards[i]
			wall := s.totalNS + s.waitNS
			ss := ShardStats{
				Shard:       i,
				ComputeNS:   s.totalNS,
				WaitNS:      s.waitNS,
				P99WaitNS:   s.wait.QuantileNS(0.99),
				MeanEpochNS: s.compute.MeanNS(),
			}
			if wall > 0 {
				ss.WaitFrac = float64(s.waitNS) / float64(wall)
			}
			r.Shards = append(r.Shards, ss)
			totalCompute += s.totalNS
			totalWait += s.waitNS
			if s.totalNS < imb.MinComputeNS {
				imb.MinComputeNS = s.totalNS
			}
			if s.totalNS > imb.MaxComputeNS {
				imb.MaxComputeNS = s.totalNS
			}
		}
		imb.MeanComputeNS = totalCompute / int64(len(p.shards))
		if imb.MeanComputeNS > 0 {
			imb.Spread = float64(imb.MaxComputeNS) / float64(imb.MeanComputeNS)
		}
		if totalCompute+totalWait > 0 {
			imb.BarrierWaitFrac = float64(totalWait) / float64(totalCompute+totalWait)
		}
		r.Imbalance = &imb
	}
	return r
}

func phaseStats(name string, h *Hist) PhaseStats {
	ps := PhaseStats{
		Phase:   name,
		Count:   h.Count,
		TotalNS: h.SumNS,
		MeanNS:  h.MeanNS(),
		P50NS:   h.QuantileNS(0.50),
		P99NS:   h.QuantileNS(0.99),
	}
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		ps.Buckets = append(ps.Buckets, Bucket{UpperNS: int64(1) << uint(i), Count: c})
		ps.MaxNS = int64(1) << uint(i)
	}
	return ps
}

// BarrierWaitFrac is the report's headline imbalance number, or 0 for
// serial runs (no shards).
func (r *Report) BarrierWaitFrac() float64 {
	if r.Imbalance == nil {
		return 0
	}
	return r.Imbalance.BarrierWaitFrac
}

// Spread is the report's max/mean shard-compute ratio, or 0 for serial
// runs.
func (r *Report) Spread() float64 {
	if r.Imbalance == nil {
		return 0
	}
	return r.Imbalance.Spread
}

// PhaseTotalNS returns the total nanoseconds attributed to the named
// phase, or 0 when the phase never fired.
func (r *Report) PhaseTotalNS(name string) int64 {
	for _, ps := range r.Phases {
		if ps.Phase == name {
			return ps.TotalNS
		}
	}
	return 0
}

// WriteJSON writes the indented report artifact.
func (r *Report) WriteJSON(w io.Writer) error {
	doc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	_, err = w.Write(doc)
	return err
}

// traceEvent mirrors the Chrome trace-event JSON shape. perf cannot
// import internal/obs (obs imports gpu which imports perf), so it
// carries its own minimal copy of the schema.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// perfPID namespaces the profiler's counter tracks away from the
// simulated-GPU tracks obs.WriteChromeTrace emits (gpuPID=1000).
const perfPID = 2000

// WriteChromeTrace renders the report's checkpoint samples as Chrome
// trace-event counter tracks ("ph":"C") — one track per phase plus a
// per-shard compute/wait pair — loadable in Perfetto next to (or
// instead of) the simulated-cycle trace. Counter values are cumulative
// milliseconds so the tracks read as "wall spent so far".
func (r *Report) WriteChromeTrace(w io.Writer) error {
	events := []traceEvent{{
		Name: "process_name", Phase: "M", PID: perfPID,
		Args: map[string]any{"name": "cawa engine profile"},
	}}
	for _, s := range r.Samples {
		ts := float64(s.AtNS) / 1e3
		phaseArgs := map[string]any{}
		for ph := Phase(0); ph < NumPhases; ph++ {
			phaseArgs[ph.String()] = float64(s.PhaseNS[ph]) / 1e6
		}
		events = append(events, traceEvent{
			Name: "phase_ms", Phase: "C", TS: ts, PID: perfPID, TID: 0, Args: phaseArgs,
		})
		for i, sh := range s.Shards {
			events = append(events, traceEvent{
				Name: "shard_ms", Phase: "C", TS: ts, PID: perfPID, TID: i + 1,
				Args: map[string]any{
					"compute": float64(sh.ComputeNS) / 1e6,
					"wait":    float64(sh.WaitNS) / 1e6,
				},
			})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	doc, err := json.Marshal(map[string]any{"traceEvents": events})
	if err != nil {
		return err
	}
	_, err = w.Write(doc)
	return err
}
