package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/harness"
	"cawa/internal/obs"
	"cawa/internal/sm"
	"cawa/internal/workloads"
)

// runBFSWithObs simulates bfs on the full CAWA design point with the
// collector and sampler attached, mirroring the cawasim wiring.
func runBFSWithObs(t *testing.T) (*harness.Result, *obs.Collector, *obs.Sampler) {
	t.Helper()
	collector := obs.NewCollector(1 << 16)
	sampler := obs.NewSampler(nil, 200)
	res, err := harness.Run(harness.RunOptions{
		Workload: "bfs",
		Params:   workloads.Params{Scale: 0.05, Seed: 3},
		Config:   config.Small(),
		System: core.SystemConfig{
			Scheduler: "gcaws", CPL: true, CACP: true,
			ProviderOverride: collector.Wrap(func() sm.CriticalityProvider { return core.NewCPL() }),
			Variant:          "obs-test",
		},
		PerCycle: sampler.OnCycle,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, collector, sampler
}

// TestChromeTraceSchema is the acceptance check for the Perfetto
// exporter: a bfs run on the full CAWA design point must produce a
// valid Chrome trace-event document with per-warp spans, stall slices
// nested inside their warp's span, kernel spans, and at least the
// IPC / active-warp / L1-hit-rate counter tracks.
func TestChromeTraceSchema(t *testing.T) {
	res, collector, sampler := runBFSWithObs(t)
	ct := obs.BuildChromeTrace(obs.TraceInput{
		Warps:  res.Agg.Warps,
		Events: collector.Events(),
		Series: sampler.Series(),
		Spans:  res.Spans,
	})

	var buf bytes.Buffer
	if err := ct.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}

	type span struct{ start, end int64 }
	warpSpans := map[int]span{} // tid -> warp span bounds
	var warps, kernels, stalls int
	counters := map[string]int{}
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		name, _ := e["name"].(string)
		if name == "" {
			t.Fatalf("event without name: %v", e)
		}
		if _, ok := e["pid"]; !ok {
			t.Fatalf("event without pid: %v", e)
		}
		switch ph {
		case "M":
			continue // metadata has no timestamp
		case "X", "C":
		default:
			t.Fatalf("unexpected phase %q: %v", ph, e)
		}
		ts, ok := e["ts"].(float64)
		if !ok || ts < 0 {
			t.Fatalf("event with bad ts: %v", e)
		}
		if ph == "C" {
			if _, ok := e["args"].(map[string]any)["value"]; !ok {
				t.Fatalf("counter without value arg: %v", e)
			}
			counters[name]++
			continue
		}
		dur, ok := e["dur"].(float64)
		if !ok || dur < 1 {
			t.Fatalf("span with bad dur: %v", e)
		}
		switch e["cat"] {
		case "warp":
			warps++
			warpSpans[int(e["tid"].(float64))] = span{int64(ts), int64(ts + dur)}
		case "kernel":
			kernels++
		case "stall":
			stalls++
		}
	}

	if warps != len(res.Agg.Warps) {
		t.Errorf("trace has %d warp spans, run finished %d warps", warps, len(res.Agg.Warps))
	}
	if kernels != res.Launches {
		t.Errorf("trace has %d kernel spans, run had %d launches", kernels, res.Launches)
	}
	if stalls == 0 {
		t.Error("no stall slices in trace")
	}
	for _, want := range []string{"gpu/ipc", "gpu/active_warps", "gpu/l1d_hit_rate"} {
		if counters[want] == 0 {
			t.Errorf("required counter track %q missing (have %v)", want, counterNames(counters))
		}
	}

	// Stall slices must nest inside their warp's span.
	for _, e := range doc.TraceEvents {
		if e["cat"] != "stall" {
			continue
		}
		tid := int(e["tid"].(float64))
		ws, ok := warpSpans[tid]
		if !ok {
			t.Fatalf("stall slice for unknown warp %d", tid)
		}
		ts := int64(e["ts"].(float64))
		end := ts + int64(e["dur"].(float64))
		if ts < ws.start || end > ws.end {
			t.Fatalf("stall slice [%d,%d] escapes warp %d span [%d,%d]", ts, end, tid, ws.start, ws.end)
		}
	}
}

func counterNames(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestSamplerSeriesShape checks the sampled series against the run:
// shared sample cycles on the configured cadence, and a whole-run IPC
// integral consistent with the launch statistics.
func TestSamplerSeriesShape(t *testing.T) {
	res, _, sampler := runBFSWithObs(t)
	series := sampler.Series()
	if len(series) == 0 {
		t.Fatal("sampler bound no series")
	}
	byName := map[string]*obs.Series{}
	n := -1
	for _, s := range series {
		byName[s.Name] = s
		if n == -1 {
			n = len(s.Samples)
		} else if len(s.Samples) != n {
			t.Fatalf("series %s has %d samples, others have %d", s.Name, len(s.Samples), n)
		}
	}
	if n < 2 {
		t.Fatalf("only %d samples for a %d-cycle run at cadence %d", n, res.Agg.Cycles, sampler.Every())
	}
	ipc := byName["gpu/ipc"]
	if ipc == nil {
		t.Fatalf("no gpu/ipc series (have %d series)", len(series))
	}
	// Integrating the rate over the sampling windows recovers the
	// thread instructions committed up to the last sample.
	var integral, last float64
	for _, p := range ipc.Samples {
		integral += p.Value * float64(p.Cycle-int64(last))
		last = float64(p.Cycle)
	}
	total := float64(res.Agg.ThreadInstrs)
	if integral > total || integral < 0.5*total {
		t.Errorf("IPC integral %.0f inconsistent with %0.f thread instructions", integral, total)
	}
	for _, s := range series {
		if strings.HasSuffix(s.Name, "hit_rate") {
			for _, p := range s.Samples {
				if p.Value < 0 || p.Value > 1 {
					t.Fatalf("%s sample out of [0,1]: %+v", s.Name, p)
				}
			}
		}
	}
}

// TestRegistryKinds exercises Gauge/Rate/Ratio arithmetic with a
// synthetic registry (no GPU needed).
func TestRegistryKinds(t *testing.T) {
	var counter, num, den, gauge float64
	reg := &obs.Registry{}
	reg.Gauge("g", obs.GPUScope, func() float64 { return gauge })
	reg.Rate("r", 0, func() float64 { return counter })
	reg.Ratio("q", 1, func() float64 { return num }, func() float64 { return den })
	if got := reg.Names(); len(got) != 3 || got[0] != "gpu/g" || got[1] != "sm0/r" || got[2] != "sm1/q" {
		t.Fatalf("names = %v", got)
	}

	s := obs.NewSampler(reg, 10)
	step := func(cycle int64) { s.OnCycle(nil, cycle) }

	step(1) // binds and takes the first sample
	gauge, counter, num, den = 7, 50, 30, 40
	step(5)  // off-cadence: ignored
	step(11) // window of 10 cycles
	counter, num, den = 90, 30, 40
	step(21)

	series := s.Series()
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	byName := map[string][]obs.Sample{}
	for _, sr := range series {
		byName[sr.Name] = sr.Samples
	}
	if g := byName["gpu/g"]; g[1].Value != 7 || g[2].Value != 7 {
		t.Fatalf("gauge samples %v", g)
	}
	if r := byName["sm0/r"]; r[1].Value != 5 || r[2].Value != 4 {
		t.Fatalf("rate samples %v (want 50/10 then 40/10)", r)
	}
	q := byName["sm1/q"]
	if q[1].Value != 0.75 {
		t.Fatalf("ratio sample %v (want 30/40)", q[1])
	}
	if q[2].Value != 0 {
		t.Fatalf("ratio with idle denominator = %v, want 0", q[2])
	}
}

// TestSeriesExports checks both exporter shapes.
func TestSeriesExports(t *testing.T) {
	series := []*obs.Series{
		{Name: "gpu/ipc", SM: obs.GPUScope, Samples: []obs.Sample{{Cycle: 10, Value: 1.5}, {Cycle: 20, Value: 2}}},
		{Name: "sm0/mshr_occupancy", SM: 0, Samples: []obs.Sample{{Cycle: 10, Value: 3}, {Cycle: 20, Value: 0}}},
	}
	var csvBuf bytes.Buffer
	if err := obs.WriteSeriesCSV(&csvBuf, series); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv rows = %d: %q", len(lines), csvBuf.String())
	}
	if lines[0] != "cycle,gpu/ipc,sm0/mshr_occupancy" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if lines[1] != "10,1.5,3" || lines[2] != "20,2,0" {
		t.Fatalf("csv rows = %q", lines[1:])
	}

	var jsonBuf bytes.Buffer
	if err := obs.WriteSeriesJSON(&jsonBuf, series); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Series []*obs.Series `json:"series"`
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Series) != 2 || doc.Series[0].Name != "gpu/ipc" || doc.Series[1].Samples[0].Value != 3 {
		t.Fatalf("json round trip lost data: %+v", doc)
	}
}

// TestManifestRoundTrip checks the manifest document survives a
// write/read cycle with the full design-point key intact.
func TestManifestRoundTrip(t *testing.T) {
	key, err := core.CAWA().Key()
	if err != nil {
		t.Fatal(err)
	}
	m := &obs.Manifest{
		Architecture: "GTX480", NumSMs: 15, Scale: 1, Seed: 1, Workers: 8,
		CacheHits: 3, CacheMisses: 9, WallSeconds: 12.5,
		Runs: []obs.RunRecord{{
			App: "bfs", System: "cawa", SystemKey: key,
			Seconds: 1.25, Launches: 16, Cycles: 87514, Instrs: 169235, IPC: 11.1, Warps: 1792,
		}},
	}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := obs.ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Runs[0].SystemKey != key || got.CacheMisses != 9 || got.Runs[0].Cycles != 87514 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

// TestCollectorSharedStream: the hot-PC report and the trace exporter
// consume the same merged event stream, so their issue totals agree.
func TestCollectorSharedStream(t *testing.T) {
	res, collector, _ := runBFSWithObs(t)
	events := collector.Events()
	var fromEvents uint64
	for range events {
		fromEvents++
	}
	var fromHot uint64
	for _, p := range collector.HotPCs(0) {
		fromHot += p.Issues
	}
	if fromHot != fromEvents {
		t.Fatalf("hot-PC issues %d != trace events %d (streams diverged)", fromHot, fromEvents)
	}
	if total := collector.Total(); total != uint64(res.Agg.Instructions) && total < fromEvents {
		t.Fatalf("collector total %d below retained %d", total, fromEvents)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Cycle < events[i-1].Cycle {
			t.Fatal("merged events not sorted by cycle")
		}
	}
}
