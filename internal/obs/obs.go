// Package obs is the simulator's observability layer: a registry of
// named metric probes sampled on a cycle cadence, exporters that turn
// the sampled series and per-warp issue events into Chrome trace-event
// JSON (loadable in Perfetto or chrome://tracing) or CSV/JSON time
// series, and run manifests that make whole harness sessions
// mechanically comparable.
//
// The layer is strictly read-only with respect to the simulation:
// every probe observes counters the pipeline already maintains, so
// enabling it never perturbs simulated timing, and leaving it disabled
// costs nothing (no sampler means no gpu.PerCycle hook).
package obs

import (
	"fmt"
	"sort"
)

// Kind says how a metric's probe values become samples.
type Kind uint8

const (
	// Gauge samples the probe value as-is (e.g. MSHR occupancy).
	Gauge Kind = iota
	// Rate samples the probe's delta per cycle since the previous
	// sample, turning cumulative counters into rates (instructions
	// become IPC).
	Rate
	// Ratio samples delta(num)/delta(den) over the sampling interval
	// (hits over accesses become a hit rate). Intervals where den does
	// not move sample as zero.
	Ratio
	// Histogram is a push-driven latency histogram (fixed log-spaced
	// buckets, see hist.go): callers Observe values as they happen
	// instead of the registry polling a probe, and WritePrometheus
	// renders cumulative _bucket/_sum/_count series. The cycle-cadence
	// Sampler skips histograms.
	Histogram
)

// GPUScope marks a metric as device-wide rather than per-SM.
const GPUScope = -1

// Metric is one registered probe.
type Metric struct {
	// Name identifies the series ("ipc", "active_warps", ...).
	Name string
	// SM is the owning streaming multiprocessor, or GPUScope.
	SM   int
	Kind Kind

	probe    func() float64   // Gauge and Rate
	num, den func() float64   // Ratio
	hist     *HistogramMetric // Histogram
}

// Label renders the canonical series name: "sm3/ipc" or "gpu/ipc".
func (m *Metric) Label() string {
	if m.SM == GPUScope {
		return "gpu/" + m.Name
	}
	return fmt.Sprintf("sm%d/%s", m.SM, m.Name)
}

// Registry holds the metrics a Sampler polls. Register everything
// before the first sample; registration is not safe during sampling.
type Registry struct {
	metrics  []Metric
	prepares []func()
}

// Gauge registers an instantaneous probe.
func (r *Registry) Gauge(name string, smID int, probe func() float64) {
	r.metrics = append(r.metrics, Metric{Name: name, SM: smID, Kind: Gauge, probe: probe})
}

// Rate registers a cumulative counter sampled as delta per cycle.
func (r *Registry) Rate(name string, smID int, probe func() float64) {
	r.metrics = append(r.metrics, Metric{Name: name, SM: smID, Kind: Rate, probe: probe})
}

// Ratio registers a pair of cumulative counters sampled as
// delta(num)/delta(den) per interval.
func (r *Registry) Ratio(name string, smID int, num, den func() float64) {
	r.metrics = append(r.metrics, Metric{Name: name, SM: smID, Kind: Ratio, num: num, den: den})
}

// Prepare registers a hook run once per sampling instant before any
// probe fires. Probes that share an expensive snapshot (one scan of
// the SM's warp slots feeding several gauges) refresh it here.
func (r *Registry) Prepare(fn func()) {
	r.prepares = append(r.prepares, fn)
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int { return len(r.metrics) }

// Names returns the canonical series labels, sorted.
func (r *Registry) Names() []string {
	out := make([]string, len(r.metrics))
	for i := range r.metrics {
		out[i] = r.metrics[i].Label()
	}
	sort.Strings(out)
	return out
}
