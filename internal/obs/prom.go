package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders every metric of the registry in the
// Prometheus text exposition format (version 0.0.4), one scrape's worth
// of instantaneous values:
//
//   - Gauge probes become prometheus gauges.
//   - Rate probes observe cumulative counters, so their raw value is
//     exposed as a prometheus counter (the server computes rates).
//   - Ratio probes expose their numerator and denominator as two
//     counters with a _num / _den suffix, so the scraper can build the
//     exact interval ratio instead of a lossy pre-divided gauge.
//   - Histogram metrics render the full prometheus histogram contract:
//     cumulative <name>_bucket{le="..."} series in ascending bound
//     order ending at le="+Inf" (equal to <name>_count), plus
//     <name>_sum and <name>_count.
//
// Metric names are prefixed ("cawa" -> cawa_ipc) and sanitized to the
// [a-zA-Z0-9_] identifier set; per-SM metrics carry an sm="N" label.
// Registered Prepare hooks run once before the first probe, matching
// the Sampler's contract.
func WritePrometheus(w io.Writer, prefix string, r *Registry) error {
	for _, fn := range r.prepares {
		fn()
	}
	// Group series of the same name (one per SM) under a single TYPE
	// header, as the exposition format requires.
	type sample struct {
		sm    int
		value float64
	}
	type histSample struct {
		sm      int
		buckets [numHistBounds + 1]uint64
		count   uint64
		sum     float64
	}
	families := map[string]struct {
		typ     string
		samples []sample
		hists   []histSample
	}{}
	var order []string
	add := func(name, typ string, sm int, v float64) {
		f, ok := families[name]
		if !ok {
			f.typ = typ
			order = append(order, name)
		}
		f.samples = append(f.samples, sample{sm: sm, value: v})
		families[name] = f
	}
	for i := range r.metrics {
		m := &r.metrics[i]
		name := promName(prefix, m.Name)
		switch m.Kind {
		case Gauge:
			add(name, "gauge", m.SM, m.probe())
		case Rate:
			add(name, "counter", m.SM, m.probe())
		case Ratio:
			add(name+"_num", "counter", m.SM, m.num())
			add(name+"_den", "counter", m.SM, m.den())
		case Histogram:
			f, ok := families[name]
			if !ok {
				f.typ = "histogram"
				order = append(order, name)
			}
			hs := histSample{sm: m.SM}
			hs.buckets, hs.count, hs.sum = m.hist.snapshot()
			f.hists = append(f.hists, hs)
			families[name] = f
		}
	}
	sort.Strings(order)
	for _, name := range order {
		f := families[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ); err != nil {
			return err
		}
		if f.typ == "histogram" {
			sort.Slice(f.hists, func(i, j int) bool { return f.hists[i].sm < f.hists[j].sm })
			for _, h := range f.hists {
				if err := writeHistogram(w, name, h.sm, h.buckets, h.count, h.sum); err != nil {
					return err
				}
			}
			continue
		}
		sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].sm < f.samples[j].sm })
		for _, s := range f.samples {
			var err error
			if s.sm == GPUScope {
				_, err = fmt.Fprintf(w, "%s %g\n", name, s.value)
			} else {
				_, err = fmt.Fprintf(w, "%s{sm=\"%d\"} %g\n", name, s.sm, s.value)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders one histogram series set: cumulative buckets
// in ascending bound order ending at +Inf, then _sum and _count. A
// per-SM histogram carries the sm label alongside le on every bucket.
func writeHistogram(w io.Writer, name string, sm int, buckets [numHistBounds + 1]uint64, count uint64, sum float64) error {
	smLabel := ""
	if sm != GPUScope {
		smLabel = fmt.Sprintf("sm=\"%d\",", sm)
	}
	var cum uint64
	for i, b := range buckets {
		cum += b
		le := "+Inf"
		if i < len(histBounds) {
			le = fmt.Sprintf("%g", histBounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"%s\"} %d\n", name, smLabel, le, cum); err != nil {
			return err
		}
	}
	if sm != GPUScope {
		if _, err := fmt.Fprintf(w, "%s_sum{sm=\"%d\"} %g\n", name, sm, sum); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count{sm=\"%d\"} %d\n", name, sm, count)
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %g\n", name, sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, count)
	return err
}

// promName sanitizes prefix_name to the metric identifier charset.
func promName(prefix, name string) string {
	full := name
	if prefix != "" {
		full = prefix + "_" + name
	}
	var b strings.Builder
	for i, c := range full {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteRune(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
