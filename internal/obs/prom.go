package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders every metric of the registry in the
// Prometheus text exposition format (version 0.0.4), one scrape's worth
// of instantaneous values:
//
//   - Gauge probes become prometheus gauges.
//   - Rate probes observe cumulative counters, so their raw value is
//     exposed as a prometheus counter (the server computes rates).
//   - Ratio probes expose their numerator and denominator as two
//     counters with a _num / _den suffix, so the scraper can build the
//     exact interval ratio instead of a lossy pre-divided gauge.
//
// Metric names are prefixed ("cawa" -> cawa_ipc) and sanitized to the
// [a-zA-Z0-9_] identifier set; per-SM metrics carry an sm="N" label.
// Registered Prepare hooks run once before the first probe, matching
// the Sampler's contract.
func WritePrometheus(w io.Writer, prefix string, r *Registry) error {
	for _, fn := range r.prepares {
		fn()
	}
	// Group series of the same name (one per SM) under a single TYPE
	// header, as the exposition format requires.
	type sample struct {
		sm    int
		value float64
	}
	families := map[string]struct {
		typ     string
		samples []sample
	}{}
	var order []string
	add := func(name, typ string, sm int, v float64) {
		f, ok := families[name]
		if !ok {
			f.typ = typ
			order = append(order, name)
		}
		f.samples = append(f.samples, sample{sm: sm, value: v})
		families[name] = f
	}
	for i := range r.metrics {
		m := &r.metrics[i]
		name := promName(prefix, m.Name)
		switch m.Kind {
		case Gauge:
			add(name, "gauge", m.SM, m.probe())
		case Rate:
			add(name, "counter", m.SM, m.probe())
		case Ratio:
			add(name+"_num", "counter", m.SM, m.num())
			add(name+"_den", "counter", m.SM, m.den())
		}
	}
	sort.Strings(order)
	for _, name := range order {
		f := families[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ); err != nil {
			return err
		}
		sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].sm < f.samples[j].sm })
		for _, s := range f.samples {
			var err error
			if s.sm == GPUScope {
				_, err = fmt.Fprintf(w, "%s %g\n", name, s.value)
			} else {
				_, err = fmt.Fprintf(w, "%s{sm=\"%d\"} %g\n", name, s.sm, s.value)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// promName sanitizes prefix_name to the metric identifier charset.
func promName(prefix, name string) string {
	full := name
	if prefix != "" {
		full = prefix + "_" + name
	}
	var b strings.Builder
	for i, c := range full {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteRune(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
