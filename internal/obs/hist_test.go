package obs

import (
	"fmt"
	"strings"
	"testing"
)

// TestWritePrometheusHistogram golden-pins the histogram exposition:
// cumulative buckets in ascending bound order, the +Inf terminal equal
// to _count, _sum/_count trailers, per-SM histograms carrying sm
// alongside le, name sanitization, and mixing with scalar families.
func TestWritePrometheusHistogram(t *testing.T) {
	r := &Registry{}
	r.Gauge("ipc", GPUScope, func() float64 { return 1.5 })
	reqs := r.Histogram("req.latency-s", GPUScope)
	reqs.Observe(0.0005)
	reqs.Observe(0.003)
	reqs.Observe(2.0)
	reqs.Observe(1000) // beyond the last bound: +Inf bucket
	qw := r.Histogram("queue_wait", 1)
	qw.Observe(0.05)

	var b strings.Builder
	if err := WritePrometheus(&b, "cawa", r); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE cawa_ipc gauge
cawa_ipc 1.5
# TYPE cawa_queue_wait histogram
cawa_queue_wait_bucket{sm="1",le="0.001"} 0
cawa_queue_wait_bucket{sm="1",le="0.002"} 0
cawa_queue_wait_bucket{sm="1",le="0.004"} 0
cawa_queue_wait_bucket{sm="1",le="0.008"} 0
cawa_queue_wait_bucket{sm="1",le="0.016"} 0
cawa_queue_wait_bucket{sm="1",le="0.032"} 0
cawa_queue_wait_bucket{sm="1",le="0.064"} 1
cawa_queue_wait_bucket{sm="1",le="0.128"} 1
cawa_queue_wait_bucket{sm="1",le="0.256"} 1
cawa_queue_wait_bucket{sm="1",le="0.512"} 1
cawa_queue_wait_bucket{sm="1",le="1.024"} 1
cawa_queue_wait_bucket{sm="1",le="2.048"} 1
cawa_queue_wait_bucket{sm="1",le="4.096"} 1
cawa_queue_wait_bucket{sm="1",le="8.192"} 1
cawa_queue_wait_bucket{sm="1",le="16.384"} 1
cawa_queue_wait_bucket{sm="1",le="32.768"} 1
cawa_queue_wait_bucket{sm="1",le="65.536"} 1
cawa_queue_wait_bucket{sm="1",le="131.072"} 1
cawa_queue_wait_bucket{sm="1",le="262.144"} 1
cawa_queue_wait_bucket{sm="1",le="524.288"} 1
cawa_queue_wait_bucket{sm="1",le="+Inf"} 1
cawa_queue_wait_sum{sm="1"} 0.05
cawa_queue_wait_count{sm="1"} 1
# TYPE cawa_req_latency_s histogram
cawa_req_latency_s_bucket{le="0.001"} 1
cawa_req_latency_s_bucket{le="0.002"} 1
cawa_req_latency_s_bucket{le="0.004"} 2
cawa_req_latency_s_bucket{le="0.008"} 2
cawa_req_latency_s_bucket{le="0.016"} 2
cawa_req_latency_s_bucket{le="0.032"} 2
cawa_req_latency_s_bucket{le="0.064"} 2
cawa_req_latency_s_bucket{le="0.128"} 2
cawa_req_latency_s_bucket{le="0.256"} 2
cawa_req_latency_s_bucket{le="0.512"} 2
cawa_req_latency_s_bucket{le="1.024"} 2
cawa_req_latency_s_bucket{le="2.048"} 3
cawa_req_latency_s_bucket{le="4.096"} 3
cawa_req_latency_s_bucket{le="8.192"} 3
cawa_req_latency_s_bucket{le="16.384"} 3
cawa_req_latency_s_bucket{le="32.768"} 3
cawa_req_latency_s_bucket{le="65.536"} 3
cawa_req_latency_s_bucket{le="131.072"} 3
cawa_req_latency_s_bucket{le="262.144"} 3
cawa_req_latency_s_bucket{le="524.288"} 3
cawa_req_latency_s_bucket{le="+Inf"} 4
cawa_req_latency_s_sum 1002.0035
cawa_req_latency_s_count 4
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestHistogramMergeAndBounds: bucket-wise merge preserves the
// cumulative invariants, and the fixed bounds are ascending.
func TestHistogramMergeAndBounds(t *testing.T) {
	bounds := HistogramBounds()
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not ascending at %d: %v <= %v", i, bounds[i], bounds[i-1])
		}
	}

	var a, b HistogramMetric
	a.Observe(0.01)
	a.Observe(-3) // clamps to zero, lands in the first bucket
	b.Observe(5)
	b.Observe(9999)
	a.Merge(&b)
	if a.Count() != 4 {
		t.Fatalf("merged count = %d, want 4", a.Count())
	}
	if got, want := a.Sum(), 0.01+0+5+9999; got != want {
		t.Fatalf("merged sum = %v, want %v", got, want)
	}

	// The rendered +Inf bucket must equal _count after the merge.
	r := &Registry{}
	h := r.Histogram("m", GPUScope)
	h.Merge(&a)
	var out strings.Builder
	if err := WritePrometheus(&out, "x", r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `x_m_bucket{le="+Inf"} 4`) {
		t.Errorf("+Inf bucket != count:\n%s", out.String())
	}
	if !strings.Contains(out.String(), fmt.Sprintf("x_m_count %d", 4)) {
		t.Errorf("missing count:\n%s", out.String())
	}
}
