package obs

import (
	"encoding/json"
	"io"
	"os"

	"cawa/internal/obs/perf"
)

// RunRecord is the manifest entry of one simulated application run:
// enough identity (the full design-point key) and outcome to compare
// two sweeps mechanically.
type RunRecord struct {
	App string `json:"app"`
	// System is the short design-point label ("cawa", "gto+cacp").
	System string `json:"system"`
	// SystemKey is the full core.SystemConfig.Key() identity; runs
	// whose design point carries non-keyable behaviour fall back to
	// the label.
	SystemKey string  `json:"system_key"`
	Seconds   float64 `json:"seconds"`
	Launches  int     `json:"launches"`
	Cycles    int64   `json:"cycles"`
	Instrs    int64   `json:"instructions"`
	IPC       float64 `json:"ipc"`
	Warps     int     `json:"warps"`
	// Err records a failed run (stats fields are zero).
	Err string `json:"error,omitempty"`
}

// Manifest captures one harness session — architecture, workload
// scaling, worker count, run-cache effectiveness, and every simulation
// the worker pool executed — in one JSON document.
type Manifest struct {
	Architecture string  `json:"architecture"`
	NumSMs       int     `json:"num_sms"`
	Scale        float64 `json:"scale"`
	Seed         int64   `json:"seed"`
	Workers      int     `json:"workers"`
	// CacheHits counts Session.Run requests served from the result
	// cache (including singleflight waiters); CacheMisses counts
	// actual simulations.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// DiskHits counts in-memory misses answered by the persistent disk
	// cache without simulating (zero when no disk cache is attached).
	DiskHits    uint64      `json:"disk_hits,omitempty"`
	WallSeconds float64     `json:"wall_seconds"`
	Runs        []RunRecord `json:"runs"`
	// Perf is the session-wide engine self-profile (merged across every
	// simulation the session executed), present only when the session
	// ran with profiling enabled (harness.Session.EnableProfiling).
	Perf *perf.Report `json:"perf,omitempty"`
}

// Write emits the manifest as JSON.
func (m *Manifest) Write(w io.Writer) error {
	doc, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	_, err = w.Write(doc)
	return err
}

// WriteFile writes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadManifest loads a manifest document (round-trip tests, tooling).
func ReadManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}
