package obs

import (
	"fmt"

	"cawa/internal/gpu"
	"cawa/internal/sm"
)

// Sample is one time point of one series.
type Sample struct {
	Cycle int64   `json:"cycle"`
	Value float64 `json:"value"`
}

// Series is the sampled history of one metric.
type Series struct {
	// Name is the canonical label ("sm3/ipc", "gpu/l1d_hit_rate").
	Name string `json:"name"`
	// SM is the owning SM, or GPUScope for device-wide series.
	SM      int      `json:"sm"`
	Samples []Sample `json:"samples"`
}

// Sampler polls a Registry every N cycles and accumulates one Series
// per metric. Assign OnCycle to gpu.GPU.PerCycle (or
// harness.RunOptions.PerCycle); the sampler binds the standard GPU
// metrics on the first callback, so it can be constructed before the
// GPU exists. The off-sample fast path is one comparison.
type Sampler struct {
	every int64
	reg   *Registry

	bound     bool
	next      int64
	lastCycle int64
	prev      []float64 // previous cumulative values (Rate)
	prevNum   []float64 // previous numerators (Ratio)
	prevDen   []float64 // previous denominators (Ratio)
	series    []*Series
}

// DefaultSampleEvery is the sampling cadence the CLIs use when
// observability is requested without an explicit -sample-every.
const DefaultSampleEvery = 1000

// NewSampler creates a sampler polling the given registry. A nil
// registry means "bind the standard GPU metrics on first OnCycle".
func NewSampler(reg *Registry, every int64) *Sampler {
	if every <= 0 {
		every = DefaultSampleEvery
	}
	return &Sampler{every: every, reg: reg}
}

// Every returns the sampling interval in cycles.
func (s *Sampler) Every() int64 { return s.every }

// OnCycle is the gpu.PerCycle hook: it samples every metric each time
// the cycle counter crosses the sampling cadence.
func (s *Sampler) OnCycle(g *gpu.GPU, cycle int64) {
	if s.bound && cycle < s.next {
		return
	}
	if !s.bound {
		s.bind(g, cycle)
	}
	if cycle < s.next {
		return
	}
	s.sample(cycle)
	s.next = cycle + s.every
}

// NextWake reports the next cycle at which OnCycle needs to observe
// the GPU, for gpu.PerCycleWake (or harness.RunOptions.PerCycleWake):
// with the wake hint wired up, the event-driven cycle engine can skip
// idle spans while still firing the sampler at exactly the cycles it
// would fire at under a tick-every-cycle engine. Before the first
// OnCycle call the sampler is unbound and must observe the next cycle.
func (s *Sampler) NextWake(now int64) int64 {
	if !s.bound {
		return now + 1
	}
	return s.next
}

// bind finalizes the registry against the observed GPU and allocates
// the per-metric state.
func (s *Sampler) bind(g *gpu.GPU, cycle int64) {
	if s.reg == nil {
		s.reg = StandardRegistry(g)
	}
	n := len(s.reg.metrics)
	s.prev = make([]float64, n)
	s.prevNum = make([]float64, n)
	s.prevDen = make([]float64, n)
	s.series = make([]*Series, n)
	for _, fn := range s.reg.prepares {
		fn()
	}
	for i := range s.reg.metrics {
		m := &s.reg.metrics[i]
		s.series[i] = &Series{Name: m.Label(), SM: m.SM}
		switch m.Kind {
		case Rate:
			s.prev[i] = m.probe()
		case Ratio:
			s.prevNum[i], s.prevDen[i] = m.num(), m.den()
		}
	}
	// Deltas accumulate from the cycle the sampler first observed, so
	// the first sample covers a well-defined window.
	s.lastCycle = cycle - 1
	s.bound = true
}

// sample appends one time point to every series.
func (s *Sampler) sample(cycle int64) {
	interval := float64(cycle - s.lastCycle)
	if interval <= 0 {
		interval = 1
	}
	for _, fn := range s.reg.prepares {
		fn()
	}
	for i := range s.reg.metrics {
		m := &s.reg.metrics[i]
		if m.Kind == Histogram {
			continue // push-driven; not on the cycle axis
		}
		var v float64
		switch m.Kind {
		case Gauge:
			v = m.probe()
		case Rate:
			cur := m.probe()
			v = (cur - s.prev[i]) / interval
			s.prev[i] = cur
		case Ratio:
			num, den := m.num(), m.den()
			if dd := den - s.prevDen[i]; dd > 0 {
				v = (num - s.prevNum[i]) / dd
			}
			s.prevNum[i], s.prevDen[i] = num, den
		}
		s.series[i].Samples = append(s.series[i].Samples, Sample{Cycle: cycle, Value: v})
	}
	s.lastCycle = cycle
}

// Series returns the accumulated series (empty until the first sample
// fires). The slices are live; read them after the run completes.
func (s *Sampler) Series() []*Series {
	return s.series
}

// StandardRegistry registers the stock metric set against a GPU:
// device-wide IPC, active/stalled warp counts, L1D and L2 hit rates
// and criticality spread, plus per-SM IPC, warp-state gauges, L1D hit
// rate, MSHR occupancy, criticality spread, and the per-scheduler pick
// distribution.
func StandardRegistry(g *gpu.GPU) *Registry {
	r := &Registry{}
	sms := g.SMs()

	// One slot scan per SM per sample feeds all warp-state gauges.
	states := make([]sm.ObsState, len(sms))
	r.Prepare(func() {
		for i, m := range sms {
			states[i] = m.ObsState()
		}
	})

	sumStates := func(f func(sm.ObsState) float64) func() float64 {
		return func() float64 {
			var t float64
			for i := range states {
				t += f(states[i])
			}
			return t
		}
	}

	r.Rate("ipc", GPUScope, func() float64 {
		var t int64
		for _, m := range sms {
			t += m.ThreadInstrs
		}
		return float64(t)
	})
	r.Gauge("active_warps", GPUScope, sumStates(func(o sm.ObsState) float64 { return float64(o.Active()) }))
	r.Gauge("stalled_warps", GPUScope, sumStates(func(o sm.ObsState) float64 { return float64(o.Stalled()) }))
	r.Ratio("l1d_hit_rate", GPUScope,
		func() float64 {
			var hits uint64
			for _, m := range sms {
				l1 := m.L1D()
				hits += l1.LoadAccesses + l1.StoreAccesses - l1.LoadMisses - l1.StoreMisses
			}
			return float64(hits)
		},
		func() float64 {
			var acc uint64
			for _, m := range sms {
				l1 := m.L1D()
				acc += l1.LoadAccesses + l1.StoreAccesses
			}
			return float64(acc)
		})
	l2 := g.MemSys().L2()
	r.Ratio("l2_hit_rate", GPUScope,
		func() float64 { return float64(l2.Accesses - l2.Misses) },
		func() float64 { return float64(l2.Accesses) })
	r.Gauge("crit_spread", GPUScope, func() float64 {
		var best float64
		for i := range states {
			if s := states[i].CritSpread; s > best {
				best = s
			}
		}
		return best
	})

	for i, m := range sms {
		i, m := i, m
		r.Rate("ipc", i, func() float64 { return float64(m.ThreadInstrs) })
		r.Gauge("active_warps", i, func() float64 { return float64(states[i].Active()) })
		r.Gauge("stalled_warps", i, func() float64 { return float64(states[i].Stalled()) })
		r.Ratio("l1d_hit_rate", i,
			func() float64 {
				l1 := m.L1D()
				return float64(l1.LoadAccesses + l1.StoreAccesses - l1.LoadMisses - l1.StoreMisses)
			},
			func() float64 {
				l1 := m.L1D()
				return float64(l1.LoadAccesses + l1.StoreAccesses)
			})
		r.Gauge("mshr_occupancy", i, func() float64 { return float64(m.L1D().MSHROccupancy()) })
		r.Gauge("crit_spread", i, func() float64 { return states[i].CritSpread })
		for u := 0; u < m.Schedulers(); u++ {
			u := u
			r.Rate(fmt.Sprintf("sched%d_picks", u), i, func() float64 { return float64(m.SchedulerIssued(u)) })
		}
	}
	return r
}
