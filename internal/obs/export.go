package obs

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"os"
	"strconv"
)

// WriteSeriesCSV emits the series in wide form: a "cycle" column
// followed by one column per series, one row per sampling instant.
// All series of one sampler share their sample cycles; series with
// fewer samples leave trailing cells empty.
func WriteSeriesCSV(w io.Writer, series []*Series) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(series)+1)
	header = append(header, "cycle")
	rows := 0
	for _, s := range series {
		header = append(header, s.Name)
		if len(s.Samples) > rows {
			rows = len(s.Samples)
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i := 0; i < rows; i++ {
		for j := range row {
			row[j] = ""
		}
		for j, s := range series {
			if i >= len(s.Samples) {
				continue
			}
			if row[0] == "" {
				row[0] = strconv.FormatInt(s.Samples[i].Cycle, 10)
			}
			row[j+1] = strconv.FormatFloat(s.Samples[i].Value, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSeriesJSON emits the series as one JSON document.
func WriteSeriesJSON(w io.Writer, series []*Series) error {
	doc := struct {
		Series []*Series `json:"series"`
	}{Series: series}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// writeFileWith opens path and streams fn into it.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
