package obs

import (
	"sort"

	"cawa/internal/sm"
	"cawa/internal/trace"
)

// Collector fans the per-SM trace recorders of one run into a single
// merged issue-event stream. The Chrome trace exporter and the hot-PC
// report both consume this stream, so what Perfetto shows and what
// `cawasim -hotpcs` prints can never diverge.
//
// A Collector belongs to one simulation: Wrap the design point's
// criticality-provider factory before the GPU is built, run, then
// read. It is not safe for concurrent use.
type Collector struct {
	capacity int
	recs     []*trace.Recorder
}

// NewCollector sizes each per-SM recorder ring to capacityPerSM events
// (<=0 uses the trace package default).
func NewCollector(capacityPerSM int) *Collector {
	return &Collector{capacity: capacityPerSM}
}

// Wrap decorates a criticality-provider factory so every provider the
// GPU creates records its SM's issue stream into the collector. A nil
// inner factory records over the null provider.
func (c *Collector) Wrap(inner func() sm.CriticalityProvider) func() sm.CriticalityProvider {
	return func() sm.CriticalityProvider {
		var in sm.CriticalityProvider
		if inner != nil {
			in = inner()
		}
		r := trace.NewRecorder(in, c.capacity)
		c.recs = append(c.recs, r)
		return r
	}
}

// Recorders returns the per-SM recorders created so far.
func (c *Collector) Recorders() []*trace.Recorder { return c.recs }

// Total returns the number of events observed across all SMs,
// including ones the bounded rings have since overwritten.
func (c *Collector) Total() uint64 {
	var t uint64
	for _, r := range c.recs {
		t += r.Total()
	}
	return t
}

// Events returns the retained events of every SM merged into one
// stream, ordered by cycle (ties keep SM order).
func (c *Collector) Events() []trace.Event {
	var out []trace.Event
	for _, r := range c.recs {
		out = append(out, r.Events()...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cycle < out[j].Cycle })
	return out
}

// HotPCs merges the per-SM PC profiles and returns the top limit PCs
// by accumulated stall time (limit <= 0 returns all).
func (c *Collector) HotPCs(limit int) []trace.PCProfile {
	agg := make(map[int32]*trace.PCProfile)
	for _, r := range c.recs {
		for _, p := range r.HotPCs() {
			a := agg[p.PC]
			if a == nil {
				a = &trace.PCProfile{PC: p.PC, Op: p.Op}
				agg[p.PC] = a
			}
			a.Issues += p.Issues
			a.Stall += p.Stall
		}
	}
	out := make([]trace.PCProfile, 0, len(agg))
	for _, p := range agg {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stall != out[j].Stall {
			return out[i].Stall > out[j].Stall
		}
		return out[i].PC < out[j].PC
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
