package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheus pins the exposition format: family grouping with
// one TYPE header, gauge/counter kind mapping, ratio num/den
// expansion, per-SM labels, sorted family and SM order, and name
// sanitization.
func TestWritePrometheus(t *testing.T) {
	r := &Registry{}
	prepared := 0
	r.Prepare(func() { prepared++ })
	r.Gauge("ipc", GPUScope, func() float64 { return 1.5 })
	r.Gauge("occupancy", 1, func() float64 { return 0.25 })
	r.Gauge("occupancy", 0, func() float64 { return 0.75 })
	r.Rate("instructions/s", GPUScope, func() float64 { return 12345 })
	r.Ratio("l1.hit-rate", GPUScope,
		func() float64 { return 30 }, func() float64 { return 40 })

	var b strings.Builder
	if err := WritePrometheus(&b, "cawa", r); err != nil {
		t.Fatal(err)
	}
	if prepared != 1 {
		t.Errorf("prepare hooks ran %d times, want 1", prepared)
	}
	want := `# TYPE cawa_instructions_s counter
cawa_instructions_s 12345
# TYPE cawa_ipc gauge
cawa_ipc 1.5
# TYPE cawa_l1_hit_rate_den counter
cawa_l1_hit_rate_den 40
# TYPE cawa_l1_hit_rate_num counter
cawa_l1_hit_rate_num 30
# TYPE cawa_occupancy gauge
cawa_occupancy{sm="0"} 0.75
cawa_occupancy{sm="1"} 0.25
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestPromName: identifier sanitization, including a leading digit.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"ipc":        "cawa_ipc",
		"l1.hits/s":  "cawa_l1_hits_s",
		"warp-stall": "cawa_warp_stall",
	}
	for in, want := range cases {
		if got := promName("cawa", in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := promName("", "2lvl"); got != "_lvl" {
		t.Errorf("leading digit: got %q, want %q", got, "_lvl")
	}
}
