package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"cawa/internal/gpu"
	"cawa/internal/stats"
	"cawa/internal/trace"
)

// TraceEvent is one event of the Chrome Trace Event Format ("JSON
// Array Format"); Perfetto and chrome://tracing load the document
// directly. Timestamps are microseconds by convention — we map one
// simulated cycle to one microsecond.
type TraceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeTrace is a complete trace document.
type ChromeTrace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// gpuPID is the synthetic process id carrying device-wide counter
// tracks and kernel-launch spans (per-SM rows use the SM id).
const gpuPID = 1000

// TraceInput collects everything the Chrome trace builder renders.
// Any field may be empty; the corresponding tracks are simply absent.
type TraceInput struct {
	// Warps are the finished warp records (dispatch→finish spans).
	Warps []stats.WarpRecord
	// Events is the merged per-warp issue stream; stall-segment slices
	// are derived from each event's Stall prefix.
	Events []trace.Event
	// Series are sampled metric series rendered as counter tracks.
	Series []*Series
	// Spans are kernel-launch windows (top-level spans on the GPU row).
	Spans []gpu.LaunchSpan
}

// BuildChromeTrace renders warp spans, stall slices, counter tracks
// and kernel spans into one trace document. Each SM becomes a trace
// process whose threads are warps (thread id = global warp id); a
// synthetic GPU process carries kernel spans and device-wide counters.
func BuildChromeTrace(in TraceInput) *ChromeTrace {
	t := &ChromeTrace{DisplayTimeUnit: "ms"}

	// Process metadata rows.
	seenSM := map[int]bool{}
	addSM := func(id int) {
		if seenSM[id] {
			return
		}
		seenSM[id] = true
		t.TraceEvents = append(t.TraceEvents, TraceEvent{
			Name: "process_name", Phase: "M", PID: id,
			Args: map[string]any{"name": fmt.Sprintf("SM %d", id)},
		})
	}
	t.TraceEvents = append(t.TraceEvents, TraceEvent{
		Name: "process_name", Phase: "M", PID: gpuPID,
		Args: map[string]any{"name": "GPU"},
	})

	for _, s := range in.Spans {
		dur := s.End - s.Start
		if dur < 1 {
			dur = 1
		}
		t.TraceEvents = append(t.TraceEvents, TraceEvent{
			Name: s.Kernel, Phase: "X", Cat: "kernel",
			TS: s.Start, Dur: dur, PID: gpuPID, TID: 0,
		})
	}

	// Warp spans, plus a gid → SM map for the stall slices.
	warpSM := make(map[int]int, len(in.Warps))
	for i := range in.Warps {
		w := &in.Warps[i]
		addSM(w.SM)
		warpSM[w.GID] = w.SM
		dur := w.ExecTime()
		if dur < 1 {
			dur = 1
		}
		t.TraceEvents = append(t.TraceEvents,
			TraceEvent{
				Name: "thread_name", Phase: "M", PID: w.SM, TID: w.GID,
				Args: map[string]any{"name": fmt.Sprintf("warp %d (block %d)", w.GID, w.Block)},
			},
			TraceEvent{
				Name: fmt.Sprintf("warp %d", w.GID), Phase: "X", Cat: "warp",
				TS: w.DispatchCycle, Dur: dur, PID: w.SM, TID: w.GID,
				Args: map[string]any{
					"block":         w.Block,
					"instructions":  w.Instructions,
					"issue_cycles":  w.IssueCycles,
					"sched_stall":   w.SchedStall,
					"mem_stall":     w.MemStall,
					"alu_stall":     w.ALUStall,
					"barrier_stall": w.BarrierStall,
					"empty_stall":   w.EmptyStall,
				},
			})
	}

	// Stall slices: each issue event closes a stall window of Stall
	// cycles ending at the issue; the args name the instruction the
	// warp was waiting to issue.
	for _, e := range in.Events {
		if e.Stall <= 0 {
			continue
		}
		smID, ok := warpSM[e.GID]
		if !ok {
			continue
		}
		t.TraceEvents = append(t.TraceEvents, TraceEvent{
			Name: "stall", Phase: "X", Cat: "stall",
			TS: e.Cycle - e.Stall, Dur: e.Stall, PID: smID, TID: e.GID,
			Args: map[string]any{"next_pc": e.PC, "next_op": e.Op.String(), "lanes": e.Lanes},
		})
	}

	// Counter tracks.
	for _, s := range in.Series {
		pid := gpuPID
		if s.SM != GPUScope {
			pid = s.SM
			addSM(s.SM)
		}
		for _, p := range s.Samples {
			t.TraceEvents = append(t.TraceEvents, TraceEvent{
				Name: s.Name, Phase: "C", TS: p.Cycle, PID: pid,
				Args: map[string]any{"value": p.Value},
			})
		}
	}

	// Stable order: by timestamp, metadata first. Perfetto tolerates
	// any order; sorted output diffs cleanly across runs.
	sort.SliceStable(t.TraceEvents, func(i, j int) bool {
		a, b := &t.TraceEvents[i], &t.TraceEvents[j]
		if (a.Phase == "M") != (b.Phase == "M") {
			return a.Phase == "M"
		}
		return a.TS < b.TS
	})
	return t
}

// Write emits the document as JSON.
func (t *ChromeTrace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// WriteFile writes the document to path.
func (t *ChromeTrace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
