package gpu

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"cawa/internal/config"
	"cawa/internal/isa"
	"cawa/internal/memory"
	"cawa/internal/simt"
	"cawa/internal/stats"
)

// thrashKernel builds a memory-bound multi-block kernel: every thread
// walks a strided read-modify-write loop over a shared buffer, keeping
// the L1s missing and the event heap full of in-flight fills — the
// workload shape that exercises in-span fill delivery hardest.
func thrashKernel(t *testing.T, mem *memory.Memory, grid, block int) *simt.Kernel {
	t.Helper()
	buf := mem.Alloc(64 * 1024)
	b := isa.NewBuilder("thrash")
	b.SReg(isa.R0, isa.SRGTid)
	b.RemI(isa.R1, isa.R0, 512)
	b.MulI(isa.R1, isa.R1, 8)
	b.Param(isa.R2, 0)
	b.Add(isa.R1, isa.R1, isa.R2)
	b.MovI(isa.R5, 0)
	b.Label("loop")
	b.Ld(isa.R3, isa.R1, 0)
	b.AddI(isa.R3, isa.R3, 1)
	b.St(isa.R1, 0, isa.R3)
	b.AddI(isa.R1, isa.R1, 1024)
	b.RemI(isa.R1, isa.R1, 4096)
	b.Add(isa.R1, isa.R1, isa.R2)
	b.AddI(isa.R5, isa.R5, 1)
	b.SetLTI(isa.R4, isa.R5, 6)
	b.CBra(isa.R4, "loop")
	b.Exit()
	return &simt.Kernel{Name: "thrash", Program: b.MustBuild(), GridDim: grid, BlockDim: block,
		Params: []int64{buf}}
}

// asymKernel builds the slack-divergence witness: block 0 spins a long
// compute loop (its SM always has an issuable warp, pinning the engine
// to the lookahead branch instead of fast-forward) while block 1 loops
// dependent strided loads. Every in-flight load leaves an internal
// event at the plan time of some batch, and that event derives a fill
// at exactly internals[0]+L2Latency-icntLat — SafeHorizon's second
// bound — so a one-cycle-wide horizon pulls that fill into the span
// unplanned and the replay delivers it a cycle late.
func asymKernel(t *testing.T, mem *memory.Memory) *simt.Kernel {
	t.Helper()
	buf := mem.Alloc(4096)
	b := isa.NewBuilder("asym")
	b.SReg(isa.R0, isa.SRCtaid)
	b.SetEQI(isa.R6, isa.R0, 0)
	b.CBra(isa.R6, "compute")
	// Memory block: dependent single-line loads (every lane reads the
	// same fresh line, so each iteration is one compulsory miss and its
	// fill is the one unblocking event the next load waits on). A fill
	// landing one cycle late is therefore always visible in the warp's
	// issue timing.
	b.Param(isa.R2, 0)
	b.MovI(isa.R5, 0)
	b.Label("mloop")
	b.MulI(isa.R7, isa.R5, 128)
	b.Add(isa.R7, isa.R7, isa.R2)
	b.Ld(isa.R3, isa.R7, 0)
	b.AddI(isa.R5, isa.R5, 1)
	b.SetLTI(isa.R4, isa.R5, 40)
	b.CBra(isa.R4, "mloop")
	b.Exit()
	// Compute block: outlasts the memory block by a wide margin.
	b.Label("compute")
	b.MovI(isa.R5, 0)
	b.Label("cloop")
	b.AddI(isa.R5, isa.R5, 1)
	b.SetLTI(isa.R4, isa.R5, 3000)
	b.CBra(isa.R4, "cloop")
	b.Exit()
	return &simt.Kernel{Name: "asym", Program: b.MustBuild(), GridDim: 2, BlockDim: 32,
		Params: []int64{buf}}
}

// runEngine launches one kernel on one engine configuration and
// returns (stats, final memory image prefix).
func runEngine(t *testing.T, build func(*testing.T, *memory.Memory) *simt.Kernel,
	workers int, lookahead bool, slack int64) (*stats.Launch, []int64) {
	t.Helper()
	mem := memory.New(1 << 20)
	g, err := New(Options{Config: config.Small(), Memory: mem})
	if err != nil {
		t.Fatal(err)
	}
	g.SMWorkers = workers
	g.Lookahead = lookahead
	g.horizonSlack = slack
	launch, err := g.Launch(context.Background(), build(t, mem))
	if err != nil {
		t.Fatal(err)
	}
	img := make([]int64, 512)
	for i := range img {
		img[i] = mem.Load(int64(i) * 8)
	}
	return launch, img
}

// TestLookaheadByteIdentity is the package-local half of the harness
// equivalence matrix: the lookahead engine must reproduce the serial
// engine's statistics and memory image exactly, and the horizonSlack
// test hook must prove the guarantee is non-vacuous — widening every
// horizon by a single cycle has to break equivalence, otherwise the
// SafeHorizon bound is slack and the test proves nothing.
func TestLookaheadByteIdentity(t *testing.T) {
	for _, build := range []func(*testing.T, *memory.Memory) *simt.Kernel{
		func(t *testing.T, mem *memory.Memory) *simt.Kernel { return thrashKernel(t, mem, 6, 128) },
		asymKernel,
	} {
		serial, serialImg := runEngine(t, build, 1, false, 0)
		la, laImg := runEngine(t, build, 2, true, 0)
		if !reflect.DeepEqual(serial, la) {
			t.Fatalf("lookahead stats diverge from serial:\nserial: %+v\nla:     %+v", serial, la)
		}
		if !reflect.DeepEqual(serialImg, laImg) {
			t.Fatal("lookahead memory image diverges from serial")
		}
	}

	serial, _ := runEngine(t, asymKernel, 1, false, 0)
	wide, _ := runEngine(t, asymKernel, 2, true, 1)
	if reflect.DeepEqual(serial, wide) {
		t.Fatal("horizonSlack=1 did not break equivalence: the SafeHorizon bound is not tight enough for this test to witness anything")
	}
}

// TestLookaheadPlanHorizonClamps pins the planner's clamp ladder:
// SafeHorizon alone, then the MaxCycles abort cycle, then the PerCycle
// hook (no wake callback → never batch; wake callback → clamp to it).
func TestLookaheadPlanHorizonClamps(t *testing.T) {
	mem := memory.New(1 << 16)
	g, err := New(Options{Config: config.Small(), Memory: mem})
	if err != nil {
		t.Fatal(err)
	}
	free := g.sys.SafeHorizon(g.cycle)
	if got := g.planHorizon(g.cycle); got != free {
		t.Fatalf("unclamped horizon %d, want SafeHorizon %d", got, free)
	}

	g.cfg.MaxCycles = 5
	if got, want := g.planHorizon(g.cycle), g.cycle+g.cfg.MaxCycles+1; got != want {
		t.Fatalf("MaxCycles clamp gave %d, want %d", got, want)
	}
	// The clamp anchors at the launch's start cycle, not the current one.
	if got, want := g.planHorizon(g.cycle-3), g.cycle-3+g.cfg.MaxCycles+1; got != want {
		t.Fatalf("MaxCycles clamp from earlier start gave %d, want %d", got, want)
	}
	g.cfg.MaxCycles = 0

	g.PerCycle = func(*GPU, int64) {}
	if got, want := g.planHorizon(g.cycle), g.cycle+1; got != want {
		t.Fatalf("PerCycle without PerCycleWake gave %d, want never-batch %d", got, want)
	}
	g.PerCycleWake = func(now int64) int64 { return now + 3 }
	if got, want := g.planHorizon(g.cycle), g.cycle+3; got != want {
		t.Fatalf("PerCycleWake clamp gave %d, want %d", got, want)
	}
	// A wake beyond the fill horizon must not widen the span.
	g.PerCycleWake = func(now int64) int64 { return now + 1_000_000 }
	if got := g.planHorizon(g.cycle); got != free {
		t.Fatalf("distant wake widened the horizon to %d, want %d", got, free)
	}
}

// TestLookaheadZeroSpanNoOp proves runBatch refuses spans that
// amortize nothing: with the horizon clamped to the very next cycle
// the call must return without touching the cycle counter, the runner,
// or the span-fill plan (runner and counters are nil/unused here — a
// touch would panic).
func TestLookaheadZeroSpanNoOp(t *testing.T) {
	mem := memory.New(1 << 16)
	g, err := New(Options{Config: config.Small(), Memory: mem})
	if err != nil {
		t.Fatal(err)
	}
	g.cycle = 42
	g.PerCycle = func(*GPU, int64) {}
	g.PerCycleWake = func(now int64) int64 { return now + 1 }
	if err := g.runBatch(context.Background(), 0, nil, nil, 0); err != nil {
		t.Fatal(err)
	}
	if g.cycle != 42 {
		t.Fatalf("zero-span batch moved the cycle counter to %d", g.cycle)
	}
	// A two-cycle horizon is still not worth a barrier.
	g.PerCycleWake = func(now int64) int64 { return now + 2 }
	if err := g.runBatch(context.Background(), 0, nil, nil, 0); err != nil {
		t.Fatal(err)
	}
	if g.cycle != 42 {
		t.Fatalf("sub-threshold batch moved the cycle counter to %d", g.cycle)
	}
}

// TestLookaheadMaxCyclesTruncation proves the runaway guard fires at
// the identical cycle under lookahead batching: the horizon clamp
// truncates the span at the abort cycle, so a spinning kernel dies
// with the same error and the same final cycle counter as the serial
// engine.
func TestLookaheadMaxCyclesTruncation(t *testing.T) {
	run := func(workers int, lookahead bool) (string, int64) {
		mem := memory.New(1 << 16)
		cfg := config.Small()
		cfg.MaxCycles = 100
		g, err := New(Options{Config: cfg, Memory: mem})
		if err != nil {
			t.Fatal(err)
		}
		g.SMWorkers = workers
		g.Lookahead = lookahead
		b := isa.NewBuilder("spin")
		b.Label("head")
		b.Bra("head")
		b.Exit()
		k := &simt.Kernel{Name: "spin", Program: b.MustBuild(), GridDim: 1, BlockDim: 32}
		_, err = g.Launch(context.Background(), k)
		if err == nil {
			t.Fatal("runaway kernel not aborted")
		}
		return err.Error(), g.Cycle()
	}
	serialMsg, serialCycle := run(1, false)
	laMsg, laCycle := run(2, true)
	if serialMsg != laMsg {
		t.Fatalf("abort errors diverge:\nserial: %s\nla:     %s", serialMsg, laMsg)
	}
	if serialCycle != laCycle {
		t.Fatalf("abort cycles diverge: serial %d, lookahead %d", serialCycle, laCycle)
	}
}

// flipCtx is a context whose Err flips to Canceled after a fixed
// number of polls — it measures how often the engine actually checks,
// with no wall-clock involved.
type flipCtx struct {
	context.Context
	polls int
	after int
}

func (c *flipCtx) Err() error {
	c.polls++
	if c.polls > c.after {
		return context.Canceled
	}
	return nil
}

// TestLookaheadCancellationPolledInBatch proves batching does not
// starve cancellation: runBatch polls ctx once per batch, so a context
// that dies mid-kernel aborts the launch long before the ticking
// path's cancelCheckMask cadence would notice, even though the engine
// crosses thousands of cycles per barrier.
func TestLookaheadCancellationPolledInBatch(t *testing.T) {
	mem := memory.New(1 << 20)
	g, err := New(Options{Config: config.Small(), Memory: mem})
	if err != nil {
		t.Fatal(err)
	}
	g.SMWorkers = 2
	g.Lookahead = true
	ctx := &flipCtx{Context: context.Background(), after: 8}
	_, err = g.Launch(ctx, thrashKernel(t, mem, 6, 128))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled launch returned %v", err)
	}
	if g.Cycle() >= cancelCheckMask {
		t.Fatalf("abort only at cycle %d: batches are not polling ctx (mask cadence is %d)", g.Cycle(), cancelCheckMask+1)
	}
}

// TestDomainSpinRetune drives the adaptive controller's histogram
// directly (no goroutines): the budget must reset to twice the p90
// bucket edge each retune window, clamped to the documented bounds.
func TestDomainSpinRetune(t *testing.T) {
	feed := func(r *domainRunner, spins int, parked bool, n int) {
		for i := 0; i < n; i++ {
			r.observeSpins(spins, parked, int(r.spinBudget.Load()))
		}
	}
	r := &domainRunner{}
	r.spinBudget.Store(DefaultBarrierSpins)

	// All-zero observations retune to the minimum.
	feed(r, 0, false, spinRetuneEvery)
	if got := r.spinBudget.Load(); got != minBarrierSpins {
		t.Fatalf("idle window retuned to %d, want min %d", got, minBarrierSpins)
	}

	// spins=100 → log2 bucket 7 → edge 128 → budget 256.
	feed(r, 100, false, spinRetuneEvery)
	if got := r.spinBudget.Load(); got != 256 {
		t.Fatalf("p90 retune gave %d, want 256", got)
	}

	// A parked barrier votes for twice the budget it exhausted:
	// v = 2*256 = 512 → bucket 10 → edge 1024 → budget 2048.
	feed(r, 256, true, spinRetuneEvery)
	if got := r.spinBudget.Load(); got != 2048 {
		t.Fatalf("parked retune gave %d, want 2048", got)
	}

	// Huge observations clamp at the ceiling.
	feed(r, 1<<14, false, spinRetuneEvery)
	if got := r.spinBudget.Load(); got != maxBarrierSpins {
		t.Fatalf("oversized retune gave %d, want max %d", got, maxBarrierSpins)
	}

	// The p90 ignores a small tail of outliers: 58 fast barriers and 6
	// slow ones retune to the fast bucket.
	feed(r, 10, false, spinRetuneEvery-6)
	feed(r, 4000, false, 6)
	if got := r.spinBudget.Load(); got != 32 {
		t.Fatalf("outlier-tail retune gave %d, want 32 (2x bucket edge 16)", got)
	}
}

// TestDomainSpinFixedOverride proves a pinned budget never adapts:
// stepSpan (zero workers, so the barrier clears instantly) must skip
// the controller entirely when fixedSpins is set, and feed it when
// not.
func TestDomainSpinFixedOverride(t *testing.T) {
	pinned := &domainRunner{fixedSpins: 9, doneCh: make(chan struct{}, 1)}
	pinned.spinBudget.Store(9)
	for i := 0; i < 2*spinRetuneEvery; i++ {
		pinned.stepSpan(int64(i), int64(i))
	}
	if got := pinned.spinBudget.Load(); got != 9 {
		t.Fatalf("pinned budget drifted to %d", got)
	}
	if pinned.spinObs != 0 {
		t.Fatalf("pinned runner fed the histogram (%d observations)", pinned.spinObs)
	}

	adaptive := &domainRunner{doneCh: make(chan struct{}, 1)}
	adaptive.spinBudget.Store(DefaultBarrierSpins)
	for i := 0; i < spinRetuneEvery; i++ {
		adaptive.stepSpan(int64(i), int64(i))
	}
	// Zero-worker barriers take zero spin rounds: the budget collapses
	// to the floor, proving the controller ran.
	if got := adaptive.spinBudget.Load(); got != minBarrierSpins {
		t.Fatalf("adaptive budget %d after an idle window, want %d", got, minBarrierSpins)
	}
}
