package gpu

import (
	"context"
	"testing"

	"cawa/internal/config"
	"cawa/internal/isa"
	"cawa/internal/memory"
	"cawa/internal/sched"
	"cawa/internal/simt"
)

// vecAddKernel builds c[i] = a[i] + b[i] over n elements.
func vecAddKernel(t *testing.T, mem *memory.Memory, n int) (*simt.Kernel, int64, int64, int64) {
	t.Helper()
	a := mem.Alloc(n)
	b := mem.Alloc(n)
	c := mem.Alloc(n)
	for i := 0; i < n; i++ {
		mem.Store(a+int64(i)*8, int64(i))
		mem.Store(b+int64(i)*8, int64(i*10))
	}
	bld := isa.NewBuilder("vecadd")
	bld.SReg(isa.R0, isa.SRGTid)
	bld.Param(isa.R5, 3) // n
	bld.SetGE(isa.R6, isa.R0, isa.R5)
	bld.CBra(isa.R6, "done")
	bld.MulI(isa.R1, isa.R0, 8)
	bld.Param(isa.R2, 0)
	bld.Add(isa.R2, isa.R2, isa.R1)
	bld.Ld(isa.R3, isa.R2, 0) // a[i]
	bld.Param(isa.R2, 1)
	bld.Add(isa.R2, isa.R2, isa.R1)
	bld.Ld(isa.R4, isa.R2, 0) // b[i]
	bld.Add(isa.R3, isa.R3, isa.R4)
	bld.Param(isa.R2, 2)
	bld.Add(isa.R2, isa.R2, isa.R1)
	bld.St(isa.R2, 0, isa.R3)
	bld.Label("done")
	bld.Exit()
	prog, err := bld.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	const blockDim = 64
	grid := (n + blockDim - 1) / blockDim
	return &simt.Kernel{
		Name:     "vecadd",
		Program:  prog,
		GridDim:  grid,
		BlockDim: blockDim,
		Params:   []int64{a, b, c, int64(n)},
	}, a, b, c
}

func TestVecAddAllPolicies(t *testing.T) {
	for _, pol := range sched.Names() {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			mem := memory.New(1 << 20)
			const n = 1000
			k, _, _, c := vecAddKernel(t, mem, n)
			factory, ok := sched.Lookup(pol)
			if !ok {
				t.Fatalf("policy %s not registered", pol)
			}
			g, err := New(Options{Config: config.Small(), Memory: mem, Policy: factory})
			if err != nil {
				t.Fatalf("gpu: %v", err)
			}
			launch, err := g.Launch(context.Background(), k)
			if err != nil {
				t.Fatalf("launch: %v", err)
			}
			for i := 0; i < n; i++ {
				want := int64(i + i*10)
				if got := mem.Load(c + int64(i)*8); got != want {
					t.Fatalf("c[%d] = %d, want %d", i, got, want)
				}
			}
			if launch.Cycles <= 0 {
				t.Fatalf("no cycles recorded")
			}
			wantWarps := k.GridDim * k.WarpsPerBlock(32)
			if len(launch.Warps) != wantWarps {
				t.Fatalf("got %d warp records, want %d", len(launch.Warps), wantWarps)
			}
			if launch.Instructions == 0 || launch.ThreadInstrs < launch.Instructions {
				t.Fatalf("bad instruction counts: %d warp, %d thread",
					launch.Instructions, launch.ThreadInstrs)
			}
			t.Logf("%s: %s", pol, launch)
		})
	}
}
