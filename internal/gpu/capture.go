package gpu

import (
	"fmt"

	"cawa/internal/memory"
	"cawa/internal/memsys"
	"cawa/internal/simt"
	"cawa/internal/sm"
)

// Serializable snapshot of the whole device mid-launch. Capture runs
// from the PerCycle hook, which every engine variant fires only at a
// clean cycle boundary: store logs flushed, stage buffers committed,
// lookahead span plans drained (stepSMs orders those before the hook;
// fastForward and planHorizon clamp their skips and spans to
// PerCycleWake). The snapshot is therefore engine-independent — a
// checkpoint written by the serial ticking engine restores onto the
// parallel lookahead engine and vice versa.
//
// Two things are NOT in the snapshot and must be handled by the caller
// (internal/checkpoint): the criticality providers and L1 replacement
// policies (their concrete types live in internal/core, above this
// package) and the functional memory's workload identity (Restore
// overwrites words into a memory rebuilt from the same Params).

// L1LaunchSnap is the per-SM L1 counter snapshot the launch statistics
// are deltas against.
type L1LaunchSnap struct {
	LoadAcc   uint64
	StoreAcc  uint64
	LoadMiss  uint64
	StoreMiss uint64
}

// LaunchProgress is the snapshot of the in-flight launch's progress.
type LaunchProgress struct {
	Kernel        string // sanity-checked against the resumed kernel
	WarpsPerBlock int
	Total         int
	NextBlock     int

	StartCycle  int64
	StartInstr  int64
	StartTInstr int64
	StartMemI   int64
	StartMemT   int64
	L1Snap      []L1LaunchSnap
	StartL2Acc  uint64
	StartL2Miss uint64

	RetiredBy  []int
	LastRetire []int64
}

// State is the snapshot of the whole device at a cycle boundary.
type State struct {
	Cycle     int64
	NextGID   int
	BlockBase int
	RR        int
	Spans     []LaunchSpan

	Launch LaunchProgress
	SMs    []sm.State
	Sys    memsys.State
	Mem    memory.State
}

// Capture snapshots the device. It must be called from inside a launch
// (normally from the PerCycle hook) — between launches there is nothing
// to checkpoint, the harness just replays completed launches
// functionally.
func (g *GPU) Capture() (State, error) {
	ls := g.launch
	if ls == nil {
		return State{}, fmt.Errorf("gpu: Capture outside a launch")
	}
	for _, l := range g.logs {
		if l.Len() != 0 {
			return State{}, fmt.Errorf("gpu: Capture with unflushed store log (%d entries)", l.Len())
		}
	}

	st := State{
		Cycle:     g.cycle,
		NextGID:   g.nextGID,
		BlockBase: g.blockBase,
		RR:        g.rr,
		Spans:     append([]LaunchSpan(nil), g.Spans...),
		Launch: LaunchProgress{
			Kernel:        ls.k.Name,
			WarpsPerBlock: ls.warpsPerBlock,
			Total:         ls.total,
			NextBlock:     ls.nextBlock,
			StartCycle:    ls.startCycle,
			StartInstr:    ls.startInstr,
			StartTInstr:   ls.startTInstr,
			StartMemI:     ls.startMemI,
			StartMemT:     ls.startMemT,
			L1Snap:        make([]L1LaunchSnap, len(ls.l1snap)),
			StartL2Acc:    ls.startL2Acc,
			StartL2Miss:   ls.startL2Miss,
			RetiredBy:     append([]int(nil), ls.retiredBy...),
			LastRetire:    append([]int64(nil), ls.lastRetire...),
		},
		SMs: make([]sm.State, len(g.sms)),
		Mem: g.mem.Capture(),
	}
	for i, snap := range ls.l1snap {
		st.Launch.L1Snap[i] = L1LaunchSnap{
			LoadAcc: snap.loadAcc, StoreAcc: snap.storeAcc,
			LoadMiss: snap.loadMiss, StoreMiss: snap.storeMiss,
		}
	}

	l1s := make([]*memsys.L1D, len(g.sms))
	for i, s := range g.sms {
		l1s[i] = s.L1D()
	}
	sys, err := g.sys.Capture(l1s)
	if err != nil {
		return State{}, err
	}
	st.Sys = sys
	for i, s := range g.sms {
		smState, err := s.Capture()
		if err != nil {
			return State{}, err
		}
		l1State, err := s.L1D().Capture()
		if err != nil {
			return State{}, err
		}
		st.SMs[i] = smState
		st.Sys.L1Ds = append(st.Sys.L1Ds, l1State)
	}
	return st, nil
}

// Restore overwrites a freshly built GPU (same configuration, same
// workload memory shape) with a snapshot and arms it for Resume. k must
// be the same kernel the snapshot was captured inside — the caller
// rebuilds it by replaying the workload's completed launches
// functionally.
func (g *GPU) Restore(st State, k *simt.Kernel) error {
	if g.launch != nil {
		return fmt.Errorf("gpu: Restore inside a launch")
	}
	if st.Launch.Kernel != k.Name {
		return fmt.Errorf("gpu: restore kernel mismatch (snapshot %q, resuming %q)",
			st.Launch.Kernel, k.Name)
	}
	if len(st.SMs) != len(g.sms) || len(st.Sys.L1Ds) != len(g.sms) ||
		len(st.Launch.L1Snap) != len(g.sms) ||
		len(st.Launch.RetiredBy) != len(g.sms) || len(st.Launch.LastRetire) != len(g.sms) {
		return fmt.Errorf("gpu: restore SM count mismatch (have %d SMs, snapshot %d/%d/%d)",
			len(g.sms), len(st.SMs), len(st.Sys.L1Ds), len(st.Launch.L1Snap))
	}
	if err := g.mem.Restore(st.Mem); err != nil {
		return err
	}
	l1s := make([]*memsys.L1D, len(g.sms))
	for i, s := range g.sms {
		l1s[i] = s.L1D()
	}
	if err := g.sys.Restore(st.Sys, l1s); err != nil {
		return err
	}
	for i, s := range g.sms {
		if err := s.L1D().Restore(st.Sys.L1Ds[i]); err != nil {
			return err
		}
		if err := s.Restore(st.SMs[i], k); err != nil {
			return err
		}
	}

	g.cycle = st.Cycle
	g.nextGID = st.NextGID
	g.blockBase = st.BlockBase
	g.rr = st.RR
	g.Spans = append(g.Spans[:0], st.Spans...)

	ls := &launchState{
		k:             k,
		warpsPerBlock: st.Launch.WarpsPerBlock,
		total:         st.Launch.Total,
		nextBlock:     st.Launch.NextBlock,
		startCycle:    st.Launch.StartCycle,
		startInstr:    st.Launch.StartInstr,
		startTInstr:   st.Launch.StartTInstr,
		startMemI:     st.Launch.StartMemI,
		startMemT:     st.Launch.StartMemT,
		l1snap:        make([]l1Snapshot, len(st.Launch.L1Snap)),
		startL2Acc:    st.Launch.StartL2Acc,
		startL2Miss:   st.Launch.StartL2Miss,
		retiredBy:     append([]int(nil), st.Launch.RetiredBy...),
		lastRetire:    append([]int64(nil), st.Launch.LastRetire...),
	}
	for i, snap := range st.Launch.L1Snap {
		ls.l1snap[i] = l1Snapshot{snap.LoadAcc, snap.StoreAcc, snap.LoadMiss, snap.StoreMiss}
	}
	ls.install(g)
	g.launch = ls
	return nil
}
