package gpu

import (
	"runtime"
	"testing"
	"time"

	"cawa/internal/config"
	"cawa/internal/memory"
	"cawa/internal/sm"
)

// newIdleGPU builds a GPU with n SMs and no kernel resident: every SM
// cycle is a pure scheduler pass returning sm.NoWake, which makes the
// runner's barrier mechanics observable without simulating a workload
// (the harness engine-equivalence matrix covers loaded behavior).
func newIdleGPU(t *testing.T, n int) *GPU {
	t.Helper()
	cfg := config.Small()
	cfg.NumSMs = n
	g, err := New(Options{Config: cfg, Memory: memory.New(1 << 16)})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// waitGoroutines polls until the goroutine count returns to base,
// failing after a deadline: parked domain workers that missed a stop
// signal show up as a stable elevated count.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDomainRunnerLifecycle drives the runner through many epochs —
// enough to exercise both the yield-spin and the parked path of the
// hybrid barrier on any machine — and checks that stepSMs matches the
// serial fold, that teardown restores the goroutine count, and that
// the staging plumbing is uninstalled afterwards.
func TestDomainRunnerLifecycle(t *testing.T) {
	g := newIdleGPU(t, 8)
	base := runtime.NumGoroutine()

	g.startDomains(4)
	if got := len(g.runner.workers); got != 4 {
		t.Fatalf("runner has %d workers, want 4", got)
	}
	for c := int64(1); c <= 500; c++ {
		if wake := g.stepSMs(c); wake != sm.NoWake {
			t.Fatalf("idle epoch %d returned wake %d, want NoWake", c, wake)
		}
		if c%97 == 0 {
			// Let workers fall off the spin path and park, so later
			// epochs exercise the channel wakeup.
			time.Sleep(2 * time.Millisecond)
		}
	}
	g.stopDomains()
	waitGoroutines(t, base)

	if g.runner != nil {
		t.Error("stopDomains left the runner installed")
	}
	for i, s := range g.sms {
		if s.L1D().Staged() {
			t.Errorf("SM %d still has a staging buffer after stopDomains", i)
		}
	}

	// The plumbing is reusable: a second launch-scoped start/stop works.
	g.startDomains(2)
	if wake := g.stepSMs(501); wake != sm.NoWake {
		t.Fatal("restarted runner returned a spurious wake")
	}
	g.stopDomains()
	waitGoroutines(t, base)
}

// TestDomainRunnerPartition: the contiguous shard must cover every SM
// exactly once, and worker counts above the SM count clamp.
func TestDomainRunnerPartition(t *testing.T) {
	g := newIdleGPU(t, 5)
	for _, workers := range []int{1, 2, 3, 5, 9} {
		r := newDomainRunner(g.sms, workers, 0, nil)
		want := workers
		if want > len(g.sms) {
			want = len(g.sms)
		}
		if len(r.workers) != want {
			t.Errorf("workers=%d: runner built %d shards, want %d", workers, len(r.workers), want)
		}
		seen := make(map[*sm.SM]int)
		total := 0
		for _, w := range r.workers {
			if len(w.sms) == 0 {
				t.Errorf("workers=%d: empty shard", workers)
			}
			for _, s := range w.sms {
				seen[s]++
				total++
			}
		}
		if total != len(g.sms) || len(seen) != len(g.sms) {
			t.Errorf("workers=%d: shards cover %d/%d SMs (%d slots)", workers, len(seen), len(g.sms), total)
		}
		r.stop()
	}
}

// TestDomainRunnerStopIdempotent: stop before any epoch, stop twice,
// and stop racing a parked worker must all terminate cleanly.
func TestDomainRunnerStopIdempotent(t *testing.T) {
	g := newIdleGPU(t, 4)
	base := runtime.NumGoroutine()

	r := newDomainRunner(g.sms, 4, 0, nil)
	r.stop()
	r.stop() // second call is a no-op
	waitGoroutines(t, base)

	r = newDomainRunner(g.sms, 4, 0, nil)
	r.step(1)
	time.Sleep(2 * time.Millisecond) // workers fall through the spin path and park
	r.stop()
	r.stop()
	waitGoroutines(t, base)
}
