package gpu

// The lookahead engine: multi-cycle epochs under safe horizons.
//
// PR 6's parallel engine barriers every cycle, and PR 7's self-profiler
// measured over half its wall-clock in that barrier. The classic
// conservative-PDES fix applies because SMs interact only through the
// shared memory system, and the memory system can split its SM-visible
// effects (L1 fills) into two classes at planning time: fills already
// pending in the event heap, whose delivery cycles and line addresses
// are exact, and fills the span itself could create, which
// memsys.SafeHorizon proves cannot land before the horizon. The
// planner hands the first class to the domain workers for delivery at
// their exact in-span cycles (memsys.PlanSpanFills) and ends the span
// before the second class can exist, so the workers may run the whole
// span between two barriers, staging outbound traffic with per-cycle
// stamps.
//
// The barrier then *replays* the span cycle by cycle on the
// orchestrator: for each cycle t it drains the due memory events
// (System.Cycle) and commits every SM's staged accesses and deferred
// stores emitted at t, in SM-id order. That reproduces the serial
// engine's cycle → SM-id → program order exactly, so the event heap's
// sequence numbers — the determinism linchpin that tie-breaks
// same-time events and thereby decides every bank/channel contention
// outcome — evolve bit-identically to the serial engine. A fill event
// popping during the replay consumes its worker's delivery record and
// applies the deferred System-side effects (the FillsDelivered count,
// the dirty-victim writeback) at exactly the serial pop position;
// every other event the replay schedules inside the span is internal
// by construction (L2/DRAM pipeline; the horizon proves no unplanned
// fill lands in-span) and is processed at its exact cycle.
//
// A batch is only planned when dispatch is exhausted (nextBlock ==
// GridDim): block capacity frees at retirement, which the planner
// cannot predict, so while blocks remain undispatched the engine
// sticks to one-cycle epochs. The PerCycle hook and the MaxCycles
// guard clamp the horizon so samplers fire and the runaway abort
// triggers at exactly the serial engine's cycles.
//
// Kernel completion can land mid-span: workers keep cycling their
// (now empty) SMs to the span end, recording each SM's last
// block-retirement cycle. The replay then stops at the last
// retirement — later staged traffic cannot exist (empty SMs emit
// none) and later-due events stay pending, matching the serial
// engine's warm state at its own final cycle — and the cycle counter
// rewinds to it. Empty-SM cycles beyond that point touch nothing but
// the SM's own cycle latch and writeback scan cache, both re-derived
// on the next launch.
//
// DESIGN.md ("Lookahead epochs") carries the full safety argument.

import (
	"context"
	"fmt"

	"cawa/internal/obs/perf"
)

// planHorizon returns the first cycle the engine must tick normally:
// cycles g.cycle+1 .. planHorizon-1 form the next batchable span. The
// bound folds the memory system's fill-free guarantee, the MaxCycles
// abort cycle, and the PerCycle hook's next observation point. The
// test-only horizonSlack widens the result to prove the byte-identity
// guard is non-vacuous (a +1 slack must break equivalence).
func (g *GPU) planHorizon(startCycle int64) int64 {
	f := g.sys.SafeHorizon(g.cycle)
	if g.cfg.MaxCycles > 0 {
		if limit := startCycle + g.cfg.MaxCycles + 1; limit < f {
			f = limit
		}
	}
	if g.PerCycle != nil {
		if g.PerCycleWake == nil {
			return g.cycle + 1 // the hook may act on any cycle: never batch
		}
		if t := g.PerCycleWake(g.cycle); t < f {
			f = t
		}
	}
	return f + g.horizonSlack
}

// runBatch plans one safe horizon and, when the span is worth a
// barrier (two cycles or more), runs it as a single multi-cycle epoch
// followed by the cycle-by-cycle replay of the staged traffic. The
// cycle counter lands on the last replayed cycle; the caller's loop
// ticks the horizon cycle normally. Cancellation is polled once per
// batch — the batch bounds the poll cadence the same way fastForward's
// event boundaries do.
func (g *GPU) runBatch(ctx context.Context, startCycle int64, lastRetire []int64, retired func() int, total int) error {
	f := g.planHorizon(startCycle)
	if f <= g.cycle+2 {
		return nil // a span of under two cycles amortizes nothing
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	from, end := g.cycle+1, f-1
	g.sys.PlanSpanFills(f)
	prof := g.Perf
	var t0 int64
	if prof != nil {
		t0 = prof.Now()
	}
	g.runner.stepSpan(from, end)
	var t1 int64
	if prof != nil {
		t1 = prof.Now()
		prof.ObserveEpoch(t0, t1, len(g.runner.workers))
	}
	replayEnd := end
	if retired() >= total {
		// The kernel finished mid-span: replay only to the last
		// retirement and discard the empty overshoot cycles.
		tr := from
		for _, t := range lastRetire {
			if t > tr {
				tr = t
			}
		}
		replayEnd = tr
	}
	for t := from; t <= replayEnd; t++ {
		g.sys.Cycle(t)
		for i := range g.sms {
			g.logs[i].FlushThrough(t)
			g.sys.CommitThrough(g.stages[i], t)
		}
	}
	g.cycle = replayEnd
	for _, s := range g.sms {
		l1 := s.L1D()
		if !l1.SpanFillsDrained() {
			// Unreachable by the planner's contract: a worker only
			// delivers to an SM with resident blocks, so every delivered
			// fill is due at or before the last retirement cycle and the
			// replay popped its event.
			panic(fmt.Sprintf("gpu: sm %d delivered a span fill the replay never reached", s.ID))
		}
		l1.ResetSpanFills()
	}
	if prof != nil {
		prof.ObservePhase(perf.PhaseStagedCommit, prof.Now()-t1)
	}
	return nil
}
