package gpu

// Parallel per-SM execution domains.
//
// The serial engine steps every SM on the caller's goroutine; the
// parallel engine shards the SMs across a small pool of persistent
// worker goroutines — the *domain runner* — and advances them in
// lockstep epochs. PR 6 pinned epochs to exactly one cycle because the
// orchestrator's serial duties (the shared memory system's event
// drain, block dispatch, the PerCycle hook, staged-access commit and
// store-log flush) are interleaved with SM execution at cycle
// granularity by the serial engine, and the refactor's contract is
// byte-identical output. The lookahead engine (lookahead.go) keeps
// that contract while batching many cycles per barrier: an epoch is
// now a *span* [from, to], and the barrier-time replay re-serializes
// the span's staged traffic cycle by cycle, so the one-cycle epoch is
// just the span from == to.
//
// Invariants that make the parallel engine deterministic:
//
//  1. Domain isolation. During an epoch a worker only touches the
//     state of its own SMs: warp slots, scoreboards, schedulers, the
//     L1D tag array and MSHRs. Shared structures are reached through
//     two staging channels drained by the orchestrator at the barrier:
//     outbound memory-system requests (memsys.StageBuffer) and
//     functional global-memory stores (memory.StoreLog), both stamped
//     with their emitting cycle. The linter's memsys-mutation rule
//     enforces the first statically.
//  2. Deterministic merge. Both staging channels are committed in
//     (cycle, SM id, program order) — exactly the order the serial
//     engine generates them — so the event heap's sequence numbers and
//     the functional memory image evolve identically.
//  3. Serial orchestration. Everything that reads or writes cross-SM
//     state (System.Cycle with its L1 fill delivery, dispatch, the
//     PerCycle hook, fast-forward and horizon planning) runs on the
//     orchestrator between barriers, unchanged from the serial engine.
//  4. Fill-free spans. A multi-cycle span is only scheduled when the
//     memory system guarantees no L1 fill can land inside it
//     (memsys.SafeHorizon), so an SM's evolution across the span
//     depends on nothing outside its own state.
//
// The barrier is a hybrid spin/park design: both sides yield-spin for
// a bounded number of rounds (cheap when all cores are busy advancing
// SMs) and then park on a buffered signal channel (cheap when a launch
// idles, e.g. between fast-forward jumps). The signal channels have
// capacity 1 and are written with non-blocking sends: a stale token
// costs one spurious wakeup — the waiter re-checks its atomic and
// parks again — and never a lost one.
//
// The spin budget adapts: the orchestrator observes how many yield
// rounds each barrier took in a small log2 histogram and periodically
// resets the budget to twice the observed p90 (clamped to
// [minBarrierSpins, maxBarrierSpins]), so short busy epochs keep
// spinning while park-heavy phases shrink the wasted yields. A
// positive GPU.BarrierSpins / -barrier-spins pins the budget instead.

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"cawa/internal/obs/perf"
	"cawa/internal/sm"
)

// DefaultBarrierSpins is the adaptive spin controller's starting
// budget: how many scheduler yields a waiter burns before parking on
// its channel. Yield-spinning keeps barrier latency in the tens of
// nanoseconds while every worker has cycles to run; parking caps the
// cost when the machine is oversubscribed or the run idles. A positive
// GPU.BarrierSpins / RunOptions.BarrierSpins pins the budget and
// disables adaptation. Purely a host-performance knob: results are
// byte-identical at any setting.
const DefaultBarrierSpins = 64

const (
	// minBarrierSpins / maxBarrierSpins clamp the adaptive budget.
	minBarrierSpins = 16
	maxBarrierSpins = 4096
	// spinRetuneEvery is the observation cadence: the budget is
	// recomputed from the histogram after this many barriers, and the
	// window resets.
	spinRetuneEvery = 64
	// spinHistBuckets bounds the log2 spin-round histogram; bucket i
	// holds observations with bit length i, so 16 buckets cover rounds
	// up to 32768 — far beyond maxBarrierSpins.
	spinHistBuckets = 16
)

// domainWorker is one goroutine's share of the SMs plus its epoch
// output: the minimum wake bound across the SMs it stepped.
type domainWorker struct {
	id     int // shard index, for per-shard profiling
	sms    []*sm.SM
	wake   int64
	wakeCh chan struct{} // capacity 1; park/wake signal
}

// domainRunner drives one kernel launch's SM epochs. It is created
// when a parallel Launch starts and stopped (unconditionally, via
// defer) when the launch returns, so an aborted launch can never leak
// its workers.
type domainRunner struct {
	workers []*domainWorker
	// from/to delimit the epoch's cycle span (inclusive); written
	// before the epoch is published. One-cycle epochs have from == to.
	from, to int64
	// prof, when non-nil, receives each shard's per-epoch compute span
	// (RecordShardCompute from the shard's own worker; the barrier's
	// release/acquire pair orders those writes before the
	// orchestrator's ObserveEpoch fold). Purely observational: no
	// control flow reads a profiled duration.
	prof *perf.Profiler

	// Adaptive spin controller. spinBudget is read by workers and the
	// orchestrator each barrier; only the orchestrator writes it, from
	// the spin-round histogram it alone maintains. fixedSpins > 0 pins
	// the budget (the -barrier-spins override).
	fixedSpins int
	spinBudget atomic.Int64
	spinHist   [spinHistBuckets]uint32
	spinObs    int

	epoch   atomic.Int64 // epoch counter; incremented to start an epoch
	pending atomic.Int64 // workers that have not finished the epoch
	stopped atomic.Bool
	doneCh  chan struct{} // capacity 1; last finisher pings the orchestrator
	wg      sync.WaitGroup
}

// newDomainRunner partitions sms contiguously across workers goroutines
// (workers is clamped to len(sms)) and starts them parked. spins > 0
// pins the barrier spin budget; <= 0 selects the adaptive controller
// starting at DefaultBarrierSpins. prof may be nil.
func newDomainRunner(sms []*sm.SM, workers, spins int, prof *perf.Profiler) *domainRunner {
	if workers > len(sms) {
		workers = len(sms)
	}
	if workers < 1 {
		workers = 1
	}
	r := &domainRunner{doneCh: make(chan struct{}, 1), prof: prof}
	if spins > 0 {
		r.fixedSpins = spins
		r.spinBudget.Store(int64(spins))
	} else {
		r.spinBudget.Store(DefaultBarrierSpins)
	}
	if prof != nil {
		prof.EnsureShards(workers)
	}
	for wi := 0; wi < workers; wi++ {
		lo := wi * len(sms) / workers
		hi := (wi + 1) * len(sms) / workers
		r.workers = append(r.workers, &domainWorker{
			id:     wi,
			sms:    sms[lo:hi],
			wakeCh: make(chan struct{}, 1),
		})
	}
	for _, w := range r.workers {
		r.wg.Add(1)
		go r.run(w)
	}
	return r
}

// step runs a one-cycle epoch: every SM executes cycle c, in parallel,
// and step returns the minimum wake bound across all SMs (the same
// value the serial engine's min-fold computes).
func (r *domainRunner) step(c int64) int64 { return r.stepSpan(c, c) }

// stepSpan runs one epoch covering cycles from..to (inclusive): every
// worker advances its SM shard across the whole span, staging all
// outbound traffic, and stepSpan returns the minimum wake bound across
// all SMs after their last cycle. On return all workers have finished,
// so the orchestrator may touch any SM state until the next epoch.
// Multi-cycle spans are only legal when no L1 fill, dispatch, or hook
// can land inside the span — the lookahead planner's contract.
func (r *domainRunner) stepSpan(from, to int64) int64 {
	r.from, r.to = from, to
	r.pending.Store(int64(len(r.workers)))
	r.epoch.Add(1)
	for _, w := range r.workers {
		select {
		case w.wakeCh <- struct{}{}:
		default:
		}
	}
	budget := int(r.spinBudget.Load())
	spins, parked := 0, false
	for r.pending.Load() != 0 {
		if spins < budget {
			spins++
			runtime.Gosched()
			continue
		}
		parked = true
		<-r.doneCh // park; a stale token just re-checks the counter
	}
	if r.fixedSpins == 0 {
		r.observeSpins(spins, parked, budget)
	}
	wake := sm.NoWake
	for _, w := range r.workers {
		if w.wake < wake {
			wake = w.wake
		}
	}
	return wake
}

// observeSpins feeds the adaptive controller: one barrier took the
// given number of yield rounds (a parked wait votes for twice the
// budget it exhausted — the wait outlasted it by an unknown amount).
// Every spinRetuneEvery observations the budget resets to twice the
// window's p90, clamped, and the window restarts.
func (r *domainRunner) observeSpins(spins int, parked bool, budget int) {
	v := spins
	if parked {
		v = budget * 2
	}
	b := bits.Len(uint(v))
	if b >= spinHistBuckets {
		b = spinHistBuckets - 1
	}
	r.spinHist[b]++
	r.spinObs++
	if r.spinObs < spinRetuneEvery {
		return
	}
	target := (r.spinObs*9 + 9) / 10 // ceil(0.9 * n): the p90 observation
	seen, bound := 0, 0
	for i, c := range r.spinHist {
		seen += int(c)
		r.spinHist[i] = 0
		if bound == 0 && seen >= target {
			bound = 1 << uint(i) // upper edge of the p90 bucket
		}
	}
	r.spinObs = 0
	next := 2 * bound
	if next < minBarrierSpins {
		next = minBarrierSpins
	}
	if next > maxBarrierSpins {
		next = maxBarrierSpins
	}
	r.spinBudget.Store(int64(next))
}

// stop terminates the workers and waits for them to exit. Safe to call
// more than once; the runner cannot be restarted.
func (r *domainRunner) stop() {
	if r.stopped.Swap(true) {
		return
	}
	for _, w := range r.workers {
		select {
		case w.wakeCh <- struct{}{}:
		default:
		}
	}
	r.wg.Wait()
}

// run is a worker's loop: wait for an epoch (or stop), step the owned
// SMs across the epoch's span, fold their wake bounds, and report
// completion.
func (r *domainRunner) run(w *domainWorker) {
	defer r.wg.Done()
	last := int64(0)
	for {
		spins, budget := 0, int(r.spinBudget.Load())
		for r.epoch.Load() == last {
			if r.stopped.Load() {
				return
			}
			if spins < budget {
				spins++
				runtime.Gosched()
				continue
			}
			<-w.wakeCh // park; a stale token just re-checks the epoch
		}
		last++
		from, to := r.from, r.to
		var t0 int64
		if r.prof != nil {
			t0 = r.prof.Now()
		}
		w.wake = w.stepSpan(from, to)
		if r.prof != nil {
			r.prof.RecordShardCompute(w.id, r.prof.Now()-t0)
		}
		if r.pending.Add(-1) == 0 {
			select {
			case r.doneCh <- struct{}{}:
			default:
			}
		}
	}
}

// stepSpan advances every owned SM from cycle from through to
// (inclusive) and returns the minimum wake bound after the span. The
// span is dispatch-free by the planner's contract and every fill that
// lands inside it was planned onto the SM's L1 up front, so each SM
// evolves on state its worker owns: before an SM's cycle at t the
// worker delivers the planned fills due at t (the serial engine's
// System.Cycle-before-SM.Cycle order), exactly while the SM still has
// resident blocks — a drained SM issues nothing, so its remaining
// fills are left for the barrier replay (memsys spanfill.go).
//
// When an SM reports it cannot act before some future cycle, the dead
// cycles up to the earlier of that wake and the next planned fill are
// credited to its stall buckets in bulk (AccountSkipped — the same
// discipline fastForward applies across globally idle spans) and the
// SM next runs a real cycle there: a fill may unblock a load, so the
// delivery cycle must be classified for real.
func (w *domainWorker) stepSpan(from, to int64) int64 {
	wake := sm.NoWake
	for _, s := range w.sms {
		l1 := s.L1D()
		live := !s.Idle()
		nf := sm.NoWake
		if live {
			if f := l1.NextSpanFill(); f >= 0 {
				nf = f
			}
		}
		t := from
		var v int64
		for {
			if nf <= t {
				l1.DeliverSpanFills(t)
				nf = sm.NoWake
				if f := l1.NextSpanFill(); f >= 0 {
					nf = f
				}
			}
			v = s.Cycle(t)
			if live && s.Idle() {
				// The last resident block retired during cycle t: stop
				// delivering — the replay owns the rest of the plan.
				live, nf = false, sm.NoWake
			}
			next := v
			if nf < next {
				next = nf
			}
			if next <= t {
				// The SM acted (or could have) at t: the next cycle
				// must run for real too.
				if t == to {
					break
				}
				t++
				continue
			}
			if next > to {
				// Dead through the end of the span.
				s.AccountSkipped(to - t)
				break
			}
			// Dead until next: bulk-credit the skipped stalls, jump there.
			s.AccountSkipped(next - t - 1)
			t = next
		}
		if v < wake {
			wake = v
		}
	}
	return wake
}
