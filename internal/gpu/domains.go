package gpu

// Parallel per-SM execution domains.
//
// The serial engine steps every SM on the caller's goroutine; the
// parallel engine shards the SMs across a small pool of persistent
// worker goroutines — the *domain runner* — and advances them in
// lockstep epochs of exactly one cycle. One cycle, not more, because
// the orchestrator's serial duties (the shared memory system's event
// drain, block dispatch, the PerCycle hook, staged-access commit and
// store-log flush) are interleaved with SM execution at cycle
// granularity by the serial engine, and the refactor's contract is
// byte-identical output.
//
// Invariants that make the parallel engine deterministic:
//
//  1. Domain isolation. During an epoch a worker only touches the
//     state of its own SMs: warp slots, scoreboards, schedulers, the
//     L1D tag array and MSHRs. Shared structures are reached through
//     two staging channels drained by the orchestrator at the barrier:
//     outbound memory-system requests (memsys.StageBuffer) and
//     functional global-memory stores (memory.StoreLog). The linter's
//     memsys-mutation rule enforces the first statically.
//  2. Deterministic merge. Both staging channels are committed in
//     (cycle, SM id, program order) — exactly the order the serial
//     engine generates them — so the event heap's sequence numbers and
//     the functional memory image evolve identically.
//  3. Serial orchestration. Everything that reads or writes cross-SM
//     state (System.Cycle with its L1 fill delivery, dispatch, the
//     PerCycle hook, fast-forward planning) runs on the orchestrator
//     between barriers, unchanged from the serial engine.
//
// The barrier is a hybrid spin/park design: both sides yield-spin for
// a bounded number of rounds (cheap when all cores are busy advancing
// SMs) and then park on a buffered signal channel (cheap when a launch
// idles, e.g. between fast-forward jumps). The signal channels have
// capacity 1 and are written with non-blocking sends: a stale token
// costs one spurious wakeup — the waiter re-checks its atomic and
// parks again — and never a lost one.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"cawa/internal/obs/perf"
	"cawa/internal/sm"
)

// DefaultBarrierSpins bounds how many scheduler yields a waiter burns
// before parking on its channel, when the caller does not choose a
// value (GPU.BarrierSpins / RunOptions.BarrierSpins). Yield-spinning
// keeps barrier latency in the tens of nanoseconds while every worker
// has cycles to run; parking caps the cost when the machine is
// oversubscribed or the run idles.
const DefaultBarrierSpins = 64

// domainWorker is one goroutine's share of the SMs plus its epoch
// output: the minimum wake bound across the SMs it stepped.
type domainWorker struct {
	id     int // shard index, for per-shard profiling
	sms    []*sm.SM
	wake   int64
	wakeCh chan struct{} // capacity 1; park/wake signal
}

// domainRunner drives one kernel launch's SM epochs. It is created
// when a parallel Launch starts and stopped (unconditionally, via
// defer) when the launch returns, so an aborted launch can never leak
// its workers.
type domainRunner struct {
	workers []*domainWorker
	cycle   int64 // epoch input; written before epoch is published
	spins   int   // barrier spin budget before parking
	// prof, when non-nil, receives each shard's per-epoch compute span
	// (RecordShardCompute from the shard's own worker; the barrier's
	// release/acquire pair orders those writes before the
	// orchestrator's ObserveEpoch fold). Purely observational: no
	// control flow reads a profiled duration.
	prof *perf.Profiler

	epoch   atomic.Int64 // epoch counter; incremented to start an epoch
	pending atomic.Int64 // workers that have not finished the epoch
	stopped atomic.Bool
	doneCh  chan struct{} // capacity 1; last finisher pings the orchestrator
	wg      sync.WaitGroup
}

// newDomainRunner partitions sms contiguously across workers goroutines
// (workers is clamped to len(sms)) and starts them parked. spins <= 0
// selects DefaultBarrierSpins; prof may be nil.
func newDomainRunner(sms []*sm.SM, workers, spins int, prof *perf.Profiler) *domainRunner {
	if workers > len(sms) {
		workers = len(sms)
	}
	if workers < 1 {
		workers = 1
	}
	if spins <= 0 {
		spins = DefaultBarrierSpins
	}
	r := &domainRunner{doneCh: make(chan struct{}, 1), spins: spins, prof: prof}
	if prof != nil {
		prof.EnsureShards(workers)
	}
	for wi := 0; wi < workers; wi++ {
		lo := wi * len(sms) / workers
		hi := (wi + 1) * len(sms) / workers
		r.workers = append(r.workers, &domainWorker{
			id:     wi,
			sms:    sms[lo:hi],
			wakeCh: make(chan struct{}, 1),
		})
	}
	for _, w := range r.workers {
		r.wg.Add(1)
		go r.run(w)
	}
	return r
}

// step runs one epoch: every SM executes one cycle at c, in parallel,
// and step returns the minimum wake bound across all SMs (the same
// value the serial engine's min-fold computes). On return all workers
// have finished the epoch, so the orchestrator may touch any SM state
// until it starts the next epoch.
func (r *domainRunner) step(c int64) int64 {
	r.cycle = c
	r.pending.Store(int64(len(r.workers)))
	r.epoch.Add(1)
	for _, w := range r.workers {
		select {
		case w.wakeCh <- struct{}{}:
		default:
		}
	}
	spins := 0
	for r.pending.Load() != 0 {
		if spins < r.spins {
			spins++
			runtime.Gosched()
			continue
		}
		<-r.doneCh // park; a stale token just re-checks the counter
	}
	wake := sm.NoWake
	for _, w := range r.workers {
		if w.wake < wake {
			wake = w.wake
		}
	}
	return wake
}

// stop terminates the workers and waits for them to exit. Safe to call
// more than once; the runner cannot be restarted.
func (r *domainRunner) stop() {
	if r.stopped.Swap(true) {
		return
	}
	for _, w := range r.workers {
		select {
		case w.wakeCh <- struct{}{}:
		default:
		}
	}
	r.wg.Wait()
}

// run is a worker's loop: wait for an epoch (or stop), step the owned
// SMs, fold their wake bounds, and report completion.
func (r *domainRunner) run(w *domainWorker) {
	defer r.wg.Done()
	last := int64(0)
	for {
		spins := 0
		for r.epoch.Load() == last {
			if r.stopped.Load() {
				return
			}
			if spins < r.spins {
				spins++
				runtime.Gosched()
				continue
			}
			<-w.wakeCh // park; a stale token just re-checks the epoch
		}
		last++
		c := r.cycle
		var t0 int64
		if r.prof != nil {
			t0 = r.prof.Now()
		}
		wake := sm.NoWake
		for _, s := range w.sms {
			if v := s.Cycle(c); v < wake {
				wake = v
			}
		}
		if r.prof != nil {
			r.prof.RecordShardCompute(w.id, r.prof.Now()-t0)
		}
		w.wake = wake
		if r.pending.Add(-1) == 0 {
			select {
			case r.doneCh <- struct{}{}:
			default:
			}
		}
	}
}
