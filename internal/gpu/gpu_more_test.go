package gpu

import (
	"context"
	"testing"

	"cawa/internal/config"
	"cawa/internal/isa"
	"cawa/internal/memory"
	"cawa/internal/simt"
)

func trivialKernel(t *testing.T, grid, block int) *simt.Kernel {
	t.Helper()
	b := isa.NewBuilder("trivial")
	b.SReg(isa.R0, isa.SRGTid)
	b.AddI(isa.R1, isa.R0, 1)
	b.Exit()
	return &simt.Kernel{Name: "trivial", Program: b.MustBuild(), GridDim: grid, BlockDim: block}
}

func TestLaunchValidation(t *testing.T) {
	mem := memory.New(1 << 16)
	g, err := New(Options{Config: config.Small(), Memory: mem})
	if err != nil {
		t.Fatal(err)
	}
	// Block larger than the SM warp capacity.
	big := trivialKernel(t, 1, 49*32)
	if _, err := g.Launch(context.Background(), big); err == nil {
		t.Fatal("oversized block accepted")
	}
	// Shared memory beyond the SM.
	shm := trivialKernel(t, 1, 32)
	shm.SharedWords = 1 << 20
	if _, err := g.Launch(context.Background(), shm); err == nil {
		t.Fatal("oversized shared memory accepted")
	}
	// Register demand beyond the file.
	regs := trivialKernel(t, 1, 1024)
	regs.RegsPerThread = 64
	if _, err := g.Launch(context.Background(), regs); err == nil {
		t.Fatal("oversized register demand accepted")
	}
	// Invalid geometry.
	badK := trivialKernel(t, 0, 32)
	if _, err := g.Launch(context.Background(), badK); err == nil {
		t.Fatal("zero grid accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Config: config.Small()}); err == nil {
		t.Fatal("missing memory accepted")
	}
	bad := config.Small()
	bad.NumSMs = 0
	if _, err := New(Options{Config: bad, Memory: memory.New(1 << 12)}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestMultiLaunchAccumulatesGIDs(t *testing.T) {
	mem := memory.New(1 << 16)
	g, err := New(Options{Config: config.Small(), Memory: mem})
	if err != nil {
		t.Fatal(err)
	}
	k := trivialKernel(t, 3, 64)
	l1, err := g.Launch(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := g.Launch(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, w := range l1.Warps {
		seen[w.GID] = true
	}
	for _, w := range l2.Warps {
		if seen[w.GID] {
			t.Fatalf("gid %d reused across launches", w.GID)
		}
	}
	// Block ids must be unique across launches too.
	blocks := make(map[int]bool)
	for _, w := range append(l1.Warps, l2.Warps...) {
		blocks[w.Block] = true
	}
	if len(blocks) != 6 {
		t.Fatalf("distinct blocks %d, want 6", len(blocks))
	}
	// Cycle counter keeps advancing.
	if g.Cycle() <= l1.Cycles {
		t.Fatalf("global cycle %d did not accumulate", g.Cycle())
	}
}

func TestBlocksSpreadAcrossSMs(t *testing.T) {
	mem := memory.New(1 << 16)
	g, err := New(Options{Config: config.Small(), Memory: mem})
	if err != nil {
		t.Fatal(err)
	}
	launch, err := g.Launch(context.Background(), trivialKernel(t, 8, 64))
	if err != nil {
		t.Fatal(err)
	}
	perSM := make(map[int]int)
	for _, w := range launch.Warps {
		perSM[w.SM]++
	}
	if len(perSM) != 2 {
		t.Fatalf("blocks landed on %d SMs, want 2 (breadth-first dispatch)", len(perSM))
	}
}

func TestPerCycleHook(t *testing.T) {
	mem := memory.New(1 << 16)
	g, err := New(Options{Config: config.Small(), Memory: mem})
	if err != nil {
		t.Fatal(err)
	}
	var calls int64
	g.PerCycle = func(gg *GPU, cycle int64) { calls++ }
	launch, err := g.Launch(context.Background(), trivialKernel(t, 2, 64))
	if err != nil {
		t.Fatal(err)
	}
	if calls != launch.Cycles {
		t.Fatalf("hook called %d times over %d cycles", calls, launch.Cycles)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() int64 {
		mem := memory.New(1 << 20)
		buf := mem.Alloc(1024)
		b := isa.NewBuilder("det")
		b.SReg(isa.R0, isa.SRGTid)
		b.RemI(isa.R1, isa.R0, 100)
		b.MulI(isa.R1, isa.R1, 8)
		b.Param(isa.R2, 0)
		b.Add(isa.R1, isa.R1, isa.R2)
		b.Ld(isa.R3, isa.R1, 0)
		b.AddI(isa.R3, isa.R3, 1)
		b.St(isa.R1, 0, isa.R3)
		b.Exit()
		k := &simt.Kernel{Name: "det", Program: b.MustBuild(), GridDim: 6, BlockDim: 128,
			Params: []int64{buf}}
		g, err := New(Options{Config: config.Small(), Memory: mem})
		if err != nil {
			t.Fatal(err)
		}
		launch, err := g.Launch(context.Background(), k)
		if err != nil {
			t.Fatal(err)
		}
		return launch.Cycles
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic: %d vs %d cycles", a, b)
	}
}

func TestCoalescingFactor(t *testing.T) {
	run := func(strideBytes int64) float64 {
		mem := memory.New(1 << 22)
		buf := mem.Alloc(32 * 512)
		b := isa.NewBuilder("coal")
		b.SReg(isa.R0, isa.SRLane)
		b.MulI(isa.R1, isa.R0, strideBytes)
		b.Param(isa.R2, 0)
		b.Add(isa.R1, isa.R1, isa.R2)
		b.Ld(isa.R3, isa.R1, 0)
		b.Exit()
		k := &simt.Kernel{Name: "coal", Program: b.MustBuild(), GridDim: 1, BlockDim: 32,
			Params: []int64{buf}}
		g, err := New(Options{Config: config.Small(), Memory: mem})
		if err != nil {
			t.Fatal(err)
		}
		launch, err := g.Launch(context.Background(), k)
		if err != nil {
			t.Fatal(err)
		}
		return launch.CoalescingFactor()
	}
	if got := run(8); got != 2 { // 32 lanes x 8B = 256B = 2 lines
		t.Fatalf("coalesced factor %v, want 2", got)
	}
	if got := run(128); got != 32 { // one line per lane
		t.Fatalf("scattered factor %v, want 32", got)
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	mem := memory.New(1 << 16)
	cfg := config.Small()
	cfg.MaxCycles = 100
	g, err := New(Options{Config: cfg, Memory: mem})
	if err != nil {
		t.Fatal(err)
	}
	b := isa.NewBuilder("spin")
	b.Label("head")
	b.Bra("head")
	b.Exit()
	k := &simt.Kernel{Name: "spin", Program: b.MustBuild(), GridDim: 1, BlockDim: 32}
	if _, err := g.Launch(context.Background(), k); err == nil {
		t.Fatal("runaway kernel not aborted")
	}
}
