// Package gpu assembles the full simulated GPU: a set of SMs sharing a
// memory system, plus the thread-block dispatcher and the cycle loop
// that runs kernel launches to completion.
package gpu

import (
	"context"
	"fmt"

	"cawa/internal/cache"
	"cawa/internal/config"
	"cawa/internal/isa/analysis"
	"cawa/internal/memory"
	"cawa/internal/memsys"
	"cawa/internal/obs/perf"
	"cawa/internal/sched"
	"cawa/internal/simt"
	"cawa/internal/sm"
	"cawa/internal/stats"
)

// Options configures GPU construction. Factories are invoked once per
// SM so that policies and predictors keep per-SM state, matching the
// paper's per-L1D CCBP/SHiP tables and per-scheduler warp state.
type Options struct {
	// Config is the architectural configuration (Table 1).
	Config config.Config
	// Memory is the functional global memory holding workload data.
	Memory *memory.Memory
	// Policy creates one warp-scheduler policy per scheduler unit.
	// Defaults to the round-robin baseline.
	Policy sched.Factory
	// L1Policy creates one L1D replacement policy per SM. Defaults to
	// LRU. The CACP policy from internal/core plugs in here.
	L1Policy func() cache.Policy
	// Criticality creates one criticality provider per SM. Defaults to
	// the criticality-oblivious null provider. The CPL logic from
	// internal/core plugs in here.
	Criticality func() sm.CriticalityProvider
}

// GPU is the whole simulated device.
type GPU struct {
	cfg config.Config
	mem *memory.Memory
	sys *memsys.System
	sms []*sm.SM

	cycle     int64
	nextGID   int
	blockBase int // launch-unique block id offset for statistics
	rr        int // round-robin SM pointer for block dispatch

	// PerCycle, when set, is called after every simulated cycle
	// (sampling hooks for timeline figures). Keep it cheap. Setting
	// PerCycle disables idle-cycle fast-forwarding unless PerCycleWake
	// also tells the engine when the hook next needs to observe the
	// GPU, because an arbitrary hook may act on any cycle.
	PerCycle func(g *GPU, cycle int64)

	// PerCycleWake, when set alongside PerCycle, returns the next cycle
	// (> now) at which the PerCycle hook must run. The fast-forward
	// engine clamps every skip to that cycle, so a cadenced sampler
	// fires at exactly the cycles it fires at under the tick-every-cycle
	// engine. Returning a value <= now forces ticking.
	PerCycleWake func(now int64) int64

	// DisableFastForward forces the tick-every-cycle engine. The
	// event-driven engine (the default) produces byte-identical results
	// — it only skips cycles in which no scheduler has an issuable warp
	// and credits the stall accounting in bulk — so this switch exists
	// for the equivalence tests and for debugging.
	DisableFastForward bool

	// SMWorkers, when greater than 1, runs each Launch on the parallel
	// per-SM execution-domain engine: the SMs are sharded across that
	// many goroutines advancing between single-cycle epoch barriers,
	// with all shared-state traffic staged per SM and merged
	// deterministically at each barrier (see domains.go). Results are
	// byte-identical to the serial engine. Values <= 1 (the default)
	// select the serial engine; values above NumSMs are clamped.
	//
	// Callers that attach cross-SM shared observers (profiler taps,
	// trace collectors) must leave this at 1; the harness gates those
	// runs automatically.
	SMWorkers int

	// BarrierSpins pins the parallel engine's barrier spin budget
	// (scheduler yields before a waiter parks; see domains.go). Values
	// <= 0 (the default) select the adaptive controller, which retunes
	// the budget from observed barrier waits starting at
	// DefaultBarrierSpins. Purely a host-performance knob: results are
	// byte-identical at any setting.
	BarrierSpins int

	// Lookahead enables multi-cycle epochs on the parallel engine: once
	// dispatch is exhausted, each barrier plans a safe horizon from the
	// memory system's fill-free guarantee and runs the whole span as one
	// epoch, replaying the staged traffic cycle by cycle at the barrier
	// (see lookahead.go). Results stay byte-identical to every other
	// engine; the switch only changes how often the engine barriers.
	// Ignored by the serial engine (SMWorkers <= 1).
	Lookahead bool

	// horizonSlack widens every planned horizon by this many cycles.
	// Test hook only: a slack of +1 lets a test prove the byte-identity
	// guard is non-vacuous (the first fill cycle lands in-span and
	// equivalence breaks).
	horizonSlack int64

	// Perf, when non-nil, self-profiles the engine: Launch brackets its
	// orchestrator seams (memsys drain, dispatch, SM stepping, staged
	// commit, fast-forward planning) with reads of the profiler's
	// injected clock, and parallel launches additionally record each
	// shard's per-epoch compute span. The clock is observational only —
	// no engine control flow depends on a profiled duration — so
	// results stay byte-identical with profiling on or off. When nil
	// (the default) the only cost is one predictable branch per seam
	// and the cycle path stays allocation-free (TestProfilerOffZeroCost).
	Perf *perf.Profiler

	// Parallel-engine plumbing, allocated lazily on the first parallel
	// launch and installed onto the SMs only while one runs.
	stages []*memsys.StageBuffer
	logs   []*memory.StoreLog
	runner *domainRunner

	// Spans records the cycle window of every completed kernel launch
	// (observability exporters render launches as top-level trace
	// spans). One entry per Launch call; never trimmed.
	Spans []LaunchSpan

	// launch is the in-flight launch's progress state. Non-nil only
	// while run executes (or between Restore and Resume); Capture
	// serializes it so a restored GPU can re-enter the cycle loop
	// exactly where the checkpoint left it.
	launch *launchState
}

// launchState carries one launch's progress: the dispatch cursor, the
// per-launch counter snapshots the final statistics are deltas against,
// and the per-SM block-retirement counters. It lives on the GPU for the
// duration of run so a checkpoint taken from the PerCycle hook can
// serialize it.
type launchState struct {
	k             *simt.Kernel
	warpsPerBlock int
	total         int
	nextBlock     int

	startCycle  int64
	startInstr  int64
	startTInstr int64
	startMemI   int64
	startMemT   int64
	l1snap      []l1Snapshot
	startL2Acc  uint64
	startL2Miss uint64

	// Block-retirement counters are per SM: under the parallel engine
	// each counter is written only by the goroutine stepping its SM,
	// and the orchestrator folds them between epochs (the barrier
	// orders the accesses). The serial engine uses the same shape.
	retiredBy []int
	// lastRetire records each SM's most recent block-retirement cycle:
	// when a kernel completes inside a lookahead batch, the replay stops
	// at the max — the serial engine's final cycle (see lookahead.go).
	lastRetire []int64
}

func (ls *launchState) retired() int {
	n := 0
	for _, v := range ls.retiredBy {
		n += v
	}
	return n
}

// install wires the per-SM block-retirement callbacks at the counters.
// Called on launch entry and again after a checkpoint restore (closures
// do not serialize).
func (ls *launchState) install(g *GPU) {
	for i, s := range g.sms {
		counter := &ls.retiredBy[i]
		at := &ls.lastRetire[i]
		s.OnBlockDone = func(_ int, cycle int64) {
			*counter++
			*at = cycle
		}
	}
}

// LaunchSpan is the cycle window of one kernel launch.
type LaunchSpan struct {
	Kernel string
	Start  int64
	End    int64
}

// New builds a GPU.
func New(opt Options) (*GPU, error) {
	if err := opt.Config.Validate(); err != nil {
		return nil, err
	}
	if opt.Memory == nil {
		return nil, fmt.Errorf("gpu: Options.Memory is required")
	}
	g := &GPU{
		cfg: opt.Config,
		mem: opt.Memory,
		sys: memsys.New(opt.Config),
	}
	for i := 0; i < opt.Config.NumSMs; i++ {
		var l1p cache.Policy
		if opt.L1Policy != nil {
			l1p = opt.L1Policy()
		}
		var crit sm.CriticalityProvider
		if opt.Criticality != nil {
			crit = opt.Criticality()
		}
		g.sms = append(g.sms, sm.New(sm.Options{
			ID:            i,
			Config:        opt.Config,
			Memory:        opt.Memory,
			MemSys:        g.sys,
			PolicyFactory: opt.Policy,
			L1Policy:      l1p,
			Criticality:   crit,
		}))
	}
	return g, nil
}

// Config returns the architectural configuration.
func (g *GPU) Config() config.Config { return g.cfg }

// Memory returns the functional global memory.
func (g *GPU) Memory() *memory.Memory { return g.mem }

// MemSys returns the shared memory system.
func (g *GPU) MemSys() *memsys.System { return g.sys }

// SMs returns the streaming multiprocessors.
func (g *GPU) SMs() []*sm.SM { return g.sms }

// Cycle returns the global cycle counter (monotonic across launches).
func (g *GPU) Cycle() int64 { return g.cycle }

type l1Snapshot struct {
	loadAcc, storeAcc, loadMiss, storeMiss uint64
}

// cancelCheckMask bounds how stale a cancellation can go unnoticed on
// the ticking path: ctx.Err is polled every cancelCheckMask+1 simulated
// cycles (and at every fast-forward event boundary), so a cancelled
// launch returns within that many real cycles of work.
const cancelCheckMask = 1<<12 - 1

// Launch runs one kernel to completion and returns its statistics.
// Caches stay warm across launches; the cycle counter keeps advancing.
//
// Launch honors ctx: cancellation or deadline expiry aborts the run
// with ctx's error (wrapped), checked every few thousand cycles on the
// ticking path and at every event boundary of the fast-forward engine,
// so a dead client never pins a worker for the rest of a long kernel.
// A cancelled launch leaves the GPU in an undefined mid-kernel state;
// callers must discard it (the harness builds a fresh GPU per run).
func (g *GPU) Launch(ctx context.Context, k *simt.Kernel) (*stats.Launch, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	// Fail a dead context up front: the in-loop poll only fires every
	// cancelCheckMask+1 cycles, so a short kernel could otherwise run to
	// completion under an already-cancelled context.
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("gpu: kernel %s aborted at cycle %d: %w", k.Name, g.cycle, err)
		}
	}
	// Re-verify with the launch context only the GPU knows: the warp
	// size sharpens the affine %warp/%lane ranges and the memory size
	// enables the global out-of-bounds check.
	launch := k.AnalysisLaunch()
	launch.WarpSize = g.cfg.WarpSize
	launch.GlobalBytes = g.mem.Size()
	if err := analysis.Verify(k.Program, analysis.Options{Launch: launch}); err != nil {
		return nil, fmt.Errorf("gpu: %w", err)
	}
	warpsPerBlock := k.WarpsPerBlock(g.cfg.WarpSize)
	if warpsPerBlock > g.cfg.MaxWarpsPerSM {
		return nil, fmt.Errorf("gpu: kernel %s needs %d warps per block, SM holds %d",
			k.Name, warpsPerBlock, g.cfg.MaxWarpsPerSM)
	}
	if k.SharedWords*8 > g.cfg.SharedMemPerSM {
		return nil, fmt.Errorf("gpu: kernel %s needs %dB shared memory, SM has %dB",
			k.Name, k.SharedWords*8, g.cfg.SharedMemPerSM)
	}
	if k.RegsPerThread > 0 && k.RegsPerThread*k.BlockDim > g.cfg.RegistersPerSM {
		return nil, fmt.Errorf("gpu: kernel %s block needs %d registers, SM has %d",
			k.Name, k.RegsPerThread*k.BlockDim, g.cfg.RegistersPerSM)
	}

	return g.run(ctx, g.initLaunch(k, warpsPerBlock))
}

// Resume re-enters the cycle loop of a launch restored by Restore. The
// launch runs to completion on whichever engine this GPU is configured
// for (the checkpoint boundary is engine-clean, so the restoring engine
// may differ from the capturing one) and returns the launch statistics
// exactly as the uninterrupted Launch would have.
func (g *GPU) Resume(ctx context.Context) (*stats.Launch, error) {
	if g.launch == nil {
		return nil, fmt.Errorf("gpu: Resume without a restored launch")
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("gpu: kernel %s aborted at cycle %d: %w",
				g.launch.k.Name, g.cycle, err)
		}
	}
	return g.run(ctx, g.launch)
}

// initLaunch snapshots the per-launch counters, installs the kernel on
// every SM, and wires the block-retirement callbacks.
func (g *GPU) initLaunch(k *simt.Kernel, warpsPerBlock int) *launchState {
	ls := &launchState{
		k:             k,
		warpsPerBlock: warpsPerBlock,
		total:         k.GridDim,
		startCycle:    g.cycle,
		l1snap:        make([]l1Snapshot, len(g.sms)),
		retiredBy:     make([]int, len(g.sms)),
		lastRetire:    make([]int64, len(g.sms)),
	}
	for i, s := range g.sms {
		ls.startInstr += s.Instructions
		ls.startTInstr += s.ThreadInstrs
		ls.startMemI += s.MemInstrs
		ls.startMemT += s.MemTxns
		l1 := s.L1D()
		ls.l1snap[i] = l1Snapshot{l1.LoadAccesses, l1.StoreAccesses, l1.LoadMisses, l1.StoreMisses}
		s.Finished = s.Finished[:0]
		s.SetKernel(k)
		s.BlockStatsBase = g.blockBase
	}
	g.blockBase += k.GridDim
	l2 := g.sys.L2()
	ls.startL2Acc, ls.startL2Miss = l2.Accesses, l2.Misses
	ls.install(g)
	return ls
}

// run drives a launch (fresh or restored) to completion.
func (g *GPU) run(ctx context.Context, ls *launchState) (*stats.Launch, error) {
	g.launch = ls
	defer func() { g.launch = nil }()
	k := ls.k

	if workers := g.smWorkers(); workers > 1 {
		g.startDomains(workers)
		// Unconditional teardown: an aborted launch (cancellation,
		// MaxCycles, a failed verify) must not leak domain goroutines
		// or leave staging installed on the SMs.
		defer g.stopDomains()
	}

	prof := g.Perf
	for ls.retired() < ls.total {
		g.cycle++
		if g.cycle&cancelCheckMask == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("gpu: kernel %s aborted at cycle %d: %w", k.Name, g.cycle, err)
			}
		}
		var t0 int64
		if prof != nil {
			t0 = prof.Now()
		}
		g.sys.Cycle(g.cycle)
		if prof != nil {
			t1 := prof.Now()
			prof.ObservePhase(perf.PhaseMemsysDrain, t1-t0)
			t0 = t1
		}
		g.dispatch(k, &ls.nextBlock, ls.total, ls.warpsPerBlock)
		if prof != nil {
			prof.ObservePhase(perf.PhaseDispatch, prof.Now()-t0)
		}
		// wake is the conservative next cycle at which any SM can act
		// on its own; sm.NoWake when every SM is idle or fully blocked
		// on memory. Any SM with a ready warp returns g.cycle, pinning
		// the engine to tick-every-cycle behavior for this cycle.
		wake := g.stepSMs(g.cycle)
		if g.PerCycle != nil {
			g.PerCycle(g, g.cycle)
		}
		if g.cfg.MaxCycles > 0 && g.cycle-ls.startCycle > g.cfg.MaxCycles {
			return nil, fmt.Errorf("gpu: kernel %s exceeded %d cycles (%d/%d blocks retired)",
				k.Name, g.cfg.MaxCycles, ls.retired(), ls.total)
		}
		if wake > g.cycle && !g.DisableFastForward {
			if prof != nil {
				t0 = prof.Now()
			}
			err := g.fastForward(ctx, wake, ls.startCycle)
			if prof != nil {
				// The whole planning call, including the memsys drains
				// and real SM cycles it performs at event boundaries
				// (nested seams record too; the taxonomy is in DESIGN.md).
				prof.ObservePhase(perf.PhaseFastForward, prof.Now()-t0)
			}
			if err != nil {
				return nil, fmt.Errorf("gpu: kernel %s aborted at cycle %d: %w", k.Name, g.cycle, err)
			}
		} else if g.Lookahead && g.runner != nil && ls.nextBlock >= ls.total && ls.retired() < ls.total {
			// Busy span on the parallel engine with dispatch exhausted:
			// batch the cycles up to the next safe horizon into one
			// epoch (lookahead.go). Brackets the whole call, planning
			// plus epoch plus replay; nested seams record too.
			if prof != nil {
				t0 = prof.Now()
			}
			err := g.runBatch(ctx, ls.startCycle, ls.lastRetire, ls.retired, ls.total)
			if prof != nil {
				prof.ObservePhase(perf.PhaseLookahead, prof.Now()-t0)
			}
			if err != nil {
				return nil, fmt.Errorf("gpu: kernel %s aborted at cycle %d: %w", k.Name, g.cycle, err)
			}
		}
	}

	if prof != nil {
		prof.AddSimCycles(g.cycle - ls.startCycle)
	}
	g.Spans = append(g.Spans, LaunchSpan{Kernel: k.Name, Start: ls.startCycle + 1, End: g.cycle})
	out := &stats.Launch{Kernel: k.Name, Cycles: g.cycle - ls.startCycle}
	for i, s := range g.sms {
		out.Instructions += s.Instructions
		out.ThreadInstrs += s.ThreadInstrs
		out.MemInstrs += s.MemInstrs
		out.MemTxns += s.MemTxns
		l1 := s.L1D()
		out.L1DAccesses += l1.LoadAccesses + l1.StoreAccesses -
			ls.l1snap[i].loadAcc - ls.l1snap[i].storeAcc
		out.L1DMisses += l1.LoadMisses + l1.StoreMisses -
			ls.l1snap[i].loadMiss - ls.l1snap[i].storeMiss
		out.Warps = append(out.Warps, s.Finished...)
		s.Finished = s.Finished[:0]
	}
	out.Instructions -= ls.startInstr
	out.ThreadInstrs -= ls.startTInstr
	out.MemInstrs -= ls.startMemI
	out.MemTxns -= ls.startMemT
	l2 := g.sys.L2()
	out.L2Accesses = l2.Accesses - ls.startL2Acc
	out.L2Misses = l2.Misses - ls.startL2Miss
	return out, nil
}

// fastForward advances the cycle counter across a span in which no SM
// can act: every scheduler's ready set is empty until smWake at the
// earliest, so no policy state can change and dispatch is a no-op
// (block capacity only frees when an SM issues). Dead cycles are
// accumulated and credited to the warps' stall buckets in bulk
// (AccountSkipped), keeping the per-warp accounting identities
// byte-identical to the tick-every-cycle engine.
//
// Memory-system events landing inside the span are processed at their
// exact cycles, just as the ticking engine would: the engine jumps to
// each event time, drains the event heap there, and keeps skipping
// unless the drain delivered an L1 fill — the only event kind that can
// change an SM scoreboard. On a fill the SMs run a real cycle at that
// time (the unblocked warp may issue immediately), exactly mirroring
// the ticking engine's sys.Cycle-before-sm.Cycle order.
//
// The skip horizon is clamped to the PerCycle hook's next observation
// point and to the MaxCycles guard, so cadenced samplers fire at their
// exact cycles and the runaway abort triggers at the identical cycle.
//
// Cancellation is polled once per loop iteration — i.e. at every
// memory-system event boundary and before every skip — so even a span
// that jumps millions of dead cycles in O(1) observes a dead ctx
// within one event's worth of work.
func (g *GPU) fastForward(ctx context.Context, smWake, startCycle int64) error {
	limit := sm.NoWake
	if g.cfg.MaxCycles > 0 {
		limit = startCycle + g.cfg.MaxCycles + 1
	}
	// Dead cycles accumulate in pending and are credited lazily: the
	// stall classification recorded by the last real SM cycle holds for
	// the whole run of dead cycles, so one bulk AccountSkipped call
	// equals per-cycle accounting.
	pending := int64(0)
	flush := func() { //cawalint:alloc-ok one closure per fastForward call, amortized over the skipped span
		if pending > 0 {
			for _, s := range g.sms {
				s.AccountSkipped(pending)
			}
			pending = 0
		}
	}
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				flush()
				return err
			}
		}
		horizon := smWake
		if limit < horizon {
			horizon = limit
		}
		if g.PerCycle != nil {
			if g.PerCycleWake == nil {
				flush()
				return nil // the hook may act on any cycle: never skip
			}
			if t := g.PerCycleWake(g.cycle); t < horizon {
				horizon = t
			}
		}
		if horizon <= g.cycle+1 {
			flush()
			return nil
		}
		t := g.sys.NextEventTime()
		if t < 0 || t >= horizon {
			// No memory event before the horizon: skip straight to it.
			// The main loop ticks the horizon cycle normally.
			pending += horizon - g.cycle - 1
			g.cycle = horizon - 1
			flush()
			return nil
		}
		// Jump to the event cycle and drain the memory system there.
		pending += t - g.cycle - 1
		g.cycle = t
		fills := g.sys.FillsDelivered
		g.sys.Cycle(t)
		if g.sys.FillsDelivered == fills {
			// Internal memory traffic only (L2/DRAM pipeline): no SM
			// state changed, cycle t is dead for the SMs too.
			pending++
			continue
		}
		// A fill unblocked at least one load: run a real SM cycle at t.
		flush()
		smWake = g.stepSMs(t)
		if smWake <= t {
			return nil // a warp issued (or could have): resume ticking
		}
	}
}

// smWorkers resolves the engine choice for a launch: the configured
// SMWorkers clamped to the SM count, with values <= 1 (and single-SM
// configurations) selecting the serial engine.
func (g *GPU) smWorkers() int {
	w := g.SMWorkers
	if w > len(g.sms) {
		w = len(g.sms)
	}
	if w < 1 || len(g.sms) < 2 {
		return 1
	}
	return w
}

// startDomains switches the GPU onto the parallel engine for one
// launch: every SM gets a private stage buffer for outbound
// memory-system requests and a private store log for functional
// global-memory writes, and the domain runner's workers start parked.
func (g *GPU) startDomains(workers int) {
	if g.stages == nil {
		g.stages = make([]*memsys.StageBuffer, len(g.sms))
		g.logs = make([]*memory.StoreLog, len(g.sms))
		for i := range g.sms {
			g.stages[i] = &memsys.StageBuffer{}
			g.logs[i] = memory.NewStoreLog(g.mem)
		}
	}
	for i, s := range g.sms {
		s.L1D().SetStaging(g.stages[i])
		s.SetStoreLog(g.logs[i])
	}
	g.runner = newDomainRunner(g.sms, workers, g.BarrierSpins, g.Perf)
}

// stopDomains tears the parallel engine down: workers exit, any staged
// residue is merged (clean exits have none; aborted launches discard
// the GPU, but the memory system is left consistent either way), and
// the SMs return to direct execution.
func (g *GPU) stopDomains() {
	g.runner.stop()
	g.runner = nil
	for i, s := range g.sms {
		g.logs[i].Flush()
		g.sys.Commit(g.stages[i])
		s.L1D().SetStaging(nil)
		s.SetStoreLog(nil)
	}
}

// stepSMs advances every SM one cycle at time c and returns the
// minimum conservative wake bound, on whichever engine the launch
// selected. On the parallel engine the per-SM staging channels are
// merged immediately after the epoch barrier, in SM-id order — the
// deterministic merge that keeps the event heap's sequence numbers and
// the functional memory image byte-identical to the serial engine
// (see domains.go).
func (g *GPU) stepSMs(c int64) int64 {
	prof := g.Perf
	if g.runner == nil {
		var t0 int64
		if prof != nil {
			t0 = prof.Now()
		}
		wake := sm.NoWake
		for _, s := range g.sms {
			if w := s.Cycle(c); w < wake {
				wake = w
			}
		}
		if prof != nil {
			prof.ObservePhase(perf.PhaseDomainCompute, prof.Now()-t0)
		}
		return wake
	}
	var t0 int64
	if prof != nil {
		t0 = prof.Now()
	}
	wake := g.runner.step(c)
	var t1 int64
	if prof != nil {
		// One epoch: the barrier span folds into DomainCompute, the
		// workers' recorded per-shard compute splits it into compute
		// vs. barrier wait.
		t1 = prof.Now()
		prof.ObserveEpoch(t0, t1, len(g.runner.workers))
	}
	for i := range g.sms {
		g.logs[i].Flush()
		g.sys.Commit(g.stages[i])
	}
	if prof != nil {
		prof.ObservePhase(perf.PhaseStagedCommit, prof.Now()-t1)
	}
	return wake
}

// dispatch hands out blocks breadth-first across SMs with capacity.
func (g *GPU) dispatch(k *simt.Kernel, nextBlock *int, total, warpsPerBlock int) {
	for *nextBlock < total {
		placed := false
		for i := 0; i < len(g.sms); i++ {
			s := g.sms[(g.rr+i)%len(g.sms)]
			if !s.CanAcceptBlock() {
				continue
			}
			s.DispatchBlock(*nextBlock, g.nextGID, g.cycle)
			g.nextGID += warpsPerBlock
			*nextBlock++
			g.rr = (g.rr + i + 1) % len(g.sms)
			placed = true
			break
		}
		if !placed {
			return
		}
	}
}
