package gpu

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"

	"cawa/internal/config"
	"cawa/internal/isa"
	"cawa/internal/memory"
	"cawa/internal/obs/perf"
	"cawa/internal/simt"
)

// loopKernel keeps every warp busy in a long strided global-load loop
// (the internal/sm alloc test's shape) so the engine stays mid-kernel
// for the whole measured window.
func loopKernel(t *testing.T, mem *memory.Memory, iters int64) *simt.Kernel {
	t.Helper()
	base := mem.Alloc(1 << 17)
	b := isa.NewBuilder("perfloop")
	b.SReg(isa.R0, isa.SRGTid)
	b.Param(isa.R1, 0)
	b.MovI(isa.R9, 0)
	b.MovI(isa.R5, 0)
	b.Label("loop")
	b.MulI(isa.R2, isa.R5, 512)
	b.AndI(isa.R2, isa.R2, (1<<20)-1)
	b.MulI(isa.R6, isa.R0, 8)
	b.Add(isa.R2, isa.R2, isa.R6)
	b.AndI(isa.R2, isa.R2, (1<<20)-8)
	b.Add(isa.R2, isa.R2, isa.R1)
	b.Ld(isa.R7, isa.R2, 0)
	b.Add(isa.R9, isa.R9, isa.R7)
	b.AddI(isa.R5, isa.R5, 1)
	b.SetLTI(isa.R8, isa.R5, iters)
	b.CBra(isa.R8, "loop")
	b.MulI(isa.R2, isa.R0, 8)
	b.Add(isa.R2, isa.R2, isa.R1)
	b.St(isa.R2, 0, isa.R9)
	b.Exit()
	return &simt.Kernel{
		Name: "perfloop", Program: b.MustBuild(),
		GridDim: 8, BlockDim: 64,
		Params: []int64{base},
	}
}

// TestProfilerOffZeroCost pins the profiling-off overhead at zero: with
// g.Perf nil the orchestrator's cycle loop — memsys drain, dispatch, SM
// stepping — must not allocate. This test drives the same per-cycle
// sequence Launch runs (Launch itself cannot be stepped from outside)
// after warming the kernel to steady state.
func TestProfilerOffZeroCost(t *testing.T) {
	mem := memory.New(1 << 21)
	k := loopKernel(t, mem, 1<<20)
	g, err := New(Options{Config: config.Small(), Memory: mem})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range g.sms {
		s.SetKernel(k)
	}
	warpsPerBlock := k.WarpsPerBlock(g.cfg.WarpSize)
	nextBlock := 0
	retired := 0
	for _, s := range g.sms {
		s.OnBlockDone = func(int, int64) { retired++ }
	}

	for i := 0; i < 20000; i++ {
		g.cycle++
		g.sys.Cycle(g.cycle)
		g.dispatch(k, &nextBlock, k.GridDim, warpsPerBlock)
		g.stepSMs(g.cycle)
	}
	if retired > 0 {
		t.Fatalf("kernel retired %d blocks during warmup; steady state not reached", retired)
	}

	issued := int64(0)
	for _, s := range g.sms {
		issued += s.Instructions
	}
	allocs := testing.AllocsPerRun(2000, func() {
		g.cycle++
		g.sys.Cycle(g.cycle)
		g.dispatch(k, &nextBlock, k.GridDim, warpsPerBlock)
		g.stepSMs(g.cycle)
	})
	if allocs != 0 {
		t.Errorf("cycle path with profiling off allocated %.2f objects/cycle, want 0", allocs)
	}
	after := int64(0)
	for _, s := range g.sms {
		after += s.Instructions
	}
	if after == issued {
		t.Error("no instructions issued during the measured window (vacuous)")
	}
	if retired > 0 {
		t.Fatal("kernel finished during measurement; steady state was not sustained")
	}
}

// countingClock is a deterministic goroutine-safe Clock: every read
// advances a shared counter, so all profiled durations are positive.
func countingClock() perf.Clock {
	var ns atomic.Int64
	return func() int64 { return ns.Add(3) }
}

// TestProfilerOnByteIdentical proves profiling is observational: the
// same kernel, with and without a profiler attached, on both engines,
// produces identical launch statistics and memory images — and the
// profiled parallel run's report carries the per-shard compute/wait
// breakdown the tuning workflow needs.
func TestProfilerOnByteIdentical(t *testing.T) {
	run := func(workers int, prof *perf.Profiler) ([]int64, interface{}) {
		mem := memory.New(1 << 20)
		const n = 1000
		k, _, _, c := vecAddKernel(t, mem, n)
		g, err := New(Options{Config: config.Small(), Memory: mem})
		if err != nil {
			t.Fatal(err)
		}
		g.SMWorkers = workers
		g.Perf = prof
		out, err := g.Launch(context.Background(), k)
		if err != nil {
			t.Fatal(err)
		}
		img := make([]int64, n)
		for i := range img {
			img[i] = mem.Load(c + int64(i)*8)
		}
		return img, *out
	}

	for _, workers := range []int{1, 2} {
		baseImg, baseStats := run(workers, nil)
		prof := perf.New(countingClock(), 1)
		profImg, profStats := run(workers, prof)
		if !reflect.DeepEqual(baseImg, profImg) {
			t.Fatalf("workers=%d: memory image differs with profiling on", workers)
		}
		if !reflect.DeepEqual(baseStats, profStats) {
			t.Fatalf("workers=%d: launch stats differ with profiling on:\n%+v\nvs\n%+v",
				workers, baseStats, profStats)
		}

		r := prof.Report()
		if r.PhaseTotalNS("domain_compute") <= 0 {
			t.Errorf("workers=%d: no domain_compute time recorded", workers)
		}
		if r.PhaseTotalNS("memsys_drain") <= 0 {
			t.Errorf("workers=%d: no memsys_drain time recorded", workers)
		}
		if workers > 1 {
			if r.Epochs <= 0 {
				t.Errorf("parallel run recorded no epochs")
			}
			if len(r.Shards) != workers {
				t.Fatalf("report has %d shards, want %d", len(r.Shards), workers)
			}
			for _, s := range r.Shards {
				if s.ComputeNS <= 0 {
					t.Errorf("shard %d recorded no compute time", s.Shard)
				}
			}
			if r.Imbalance == nil {
				t.Fatal("parallel report missing imbalance summary")
			}
			if r.Imbalance.BarrierWaitFrac < 0 || r.Imbalance.BarrierWaitFrac >= 1 {
				t.Errorf("BarrierWaitFrac = %v out of range", r.Imbalance.BarrierWaitFrac)
			}
			if len(r.Samples) == 0 {
				t.Error("sampleEvery=1 parallel run produced no checkpoints")
			}
		} else if len(r.Shards) != 0 {
			t.Errorf("serial run grew %d shards", len(r.Shards))
		}
	}
}

// TestBarrierSpinsKnob proves the spin budget is purely a host
// performance knob: extreme settings produce byte-identical results.
func TestBarrierSpinsKnob(t *testing.T) {
	run := func(spins int) ([]int64, interface{}) {
		mem := memory.New(1 << 20)
		const n = 500
		k, _, _, c := vecAddKernel(t, mem, n)
		g, err := New(Options{Config: config.Small(), Memory: mem})
		if err != nil {
			t.Fatal(err)
		}
		g.SMWorkers = 2
		g.BarrierSpins = spins
		out, err := g.Launch(context.Background(), k)
		if err != nil {
			t.Fatal(err)
		}
		img := make([]int64, n)
		for i := range img {
			img[i] = mem.Load(c + int64(i)*8)
		}
		return img, *out
	}
	baseImg, baseStats := run(0) // default
	for _, spins := range []int{1, 100000} {
		img, stats := run(spins)
		if !reflect.DeepEqual(baseImg, img) || !reflect.DeepEqual(baseStats, stats) {
			t.Fatalf("BarrierSpins=%d changed simulation output", spins)
		}
	}
}
