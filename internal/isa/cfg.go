package isa

import "fmt"

// ReconvAtExit is the reconvergence PC used when two divergent paths only
// rejoin at thread exit: one past the last instruction.
func ReconvAtExit(p *Program) int32 { return int32(len(p.Instrs)) }

// Successors returns the control-flow successors of the instruction at pc.
// OpExit has none. The slice is freshly allocated.
func (p *Program) Successors(pc int32) []int32 {
	in := p.Instrs[pc]
	switch in.Op {
	case OpExit:
		return nil
	case OpBra:
		return []int32{in.Target()}
	case OpCBra, OpCBraZ:
		if in.Target() == pc+1 {
			return []int32{pc + 1}
		}
		return []int32{in.Target(), pc + 1}
	default:
		return []int32{pc + 1}
	}
}

// bitset is a fixed-capacity bit set used by the post-dominator analysis.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// fill sets the first n bits and clears any tail bits so that set algebra
// never sees garbage beyond the node count.
func (b bitset) fill(n int) {
	for i := range b {
		b[i] = ^uint64(0)
	}
	if tail := uint(n) % 64; tail != 0 {
		b[len(b)-1] = (1 << tail) - 1
	}
}

func (b bitset) copyFrom(o bitset) { copy(b, o) }

func (b bitset) intersect(o bitset) {
	for i := range b {
		b[i] &= o[i]
	}
}

func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// isSubset reports whether every element of b is in o.
func (b bitset) isSubset(o bitset) bool {
	for i := range b {
		if b[i]&^o[i] != 0 {
			return false
		}
	}
	return true
}

// computeReconvergence fills Rpc of every conditional branch with the PC
// of the branch's immediate post-dominator: the earliest point where the
// taken and not-taken paths are guaranteed to rejoin. Divergent warps use
// this PC to pop their SIMT stack (Section 2.1 of the paper; the standard
// PDOM mechanism GPGPU-sim implements).
func computeReconvergence(p *Program) error {
	n := len(p.Instrs)
	exit := n // virtual exit node
	total := n + 1

	// Post-dominator sets, one bitset per node.
	pdom := make([]bitset, total)
	for i := range pdom {
		pdom[i] = newBitset(total)
	}
	// pdom(exit) = {exit}; all others start full.
	for i := 0; i < n; i++ {
		pdom[i].fill(total)
	}
	pdom[exit].set(exit)

	succs := make([][]int32, n)
	for pc := 0; pc < n; pc++ {
		s := p.Successors(int32(pc))
		if s == nil {
			succs[pc] = []int32{int32(exit)}
			continue
		}
		for _, t := range s {
			if t < 0 || t >= int32(n) {
				return fmt.Errorf("branch at pc %d targets out-of-range pc %d", pc, t)
			}
		}
		succs[pc] = s
	}

	tmp := newBitset(total)
	for changed := true; changed; {
		changed = false
		for pc := n - 1; pc >= 0; pc-- {
			tmp.fill(total)
			for _, s := range succs[pc] {
				tmp.intersect(pdom[s])
			}
			tmp.set(pc)
			if !tmp.equal(pdom[pc]) {
				pdom[pc].copyFrom(tmp)
				changed = true
			}
		}
	}

	// Immediate post-dominator of a branch: the strict post-dominator d
	// whose own post-dominator set contains every other strict
	// post-dominator (i.e. the closest one).
	for pc := 0; pc < n; pc++ {
		in := &p.Instrs[pc]
		if !in.Op.IsCondBranch() {
			continue
		}
		strict := newBitset(total)
		strict.copyFrom(pdom[pc])
		strict[pc/64] &^= 1 << (uint(pc) % 64)
		ip := -1
		for d := 0; d < total; d++ {
			if !strict.has(d) {
				continue
			}
			if strict.isSubset(pdom[d]) {
				ip = d
				break
			}
		}
		if ip < 0 {
			return fmt.Errorf("no immediate post-dominator for branch at pc %d", pc)
		}
		in.Rpc = int32(ip) // ip == exit means ReconvAtExit
	}
	return nil
}
