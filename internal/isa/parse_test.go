package isa

import (
	"errors"
	"strings"
	"testing"
)

const sampleAsm = `
// simple guarded accumulate kernel
    sreg   r0, %gtid
    param  r1, param[1]
    set.ge r2, r0, r1
    cbra   r2, @done
    movi   r3, 0
    movi   r4, 10
loop:
    add    r3, r3, r0
    sub    r4, r4, 1
    cbra   r4, @loop
    param  r5, param[0]
    mul    r6, r0, 8
    add    r5, r5, r6
    st.global [r5+0], r3
done:
    exit
`

func TestParseBasics(t *testing.T) {
	p, err := Parse("sample", sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 14 {
		t.Fatalf("parsed %d instructions", p.Len())
	}
	if pc, ok := p.LabelPC("loop"); !ok || p.At(8).Target() != pc {
		t.Fatalf("loop label wiring broken")
	}
	// Reconvergence must be computed for the parsed conditional branches.
	if p.At(3).Rpc == NoReconv {
		t.Fatal("rpc not computed for parsed branch")
	}
}

func TestParseDisasmRoundTrip(t *testing.T) {
	b := NewBuilder("rt")
	b.SReg(R0, SRLane)
	b.MovI(R1, -5)
	b.MovF(R2, 2.5)
	b.AddI(R3, R0, 100)
	b.Add(R4, R3, R1)
	b.FMad(R2, R2, R2)
	b.Ld(R5, R4, -16)
	b.St(R4, 24, R5)
	b.LdS(R6, R0, 0)
	b.StS(R0, 8, R6)
	b.SetNE(R7, R5, R6)
	b.CBra(R7, "side")
	b.FSqrt(R8, R2)
	b.Bra("end")
	b.Label("side")
	b.CvtIF(R8, R1)
	b.Label("end")
	b.Bar()
	b.Exit()
	orig := b.MustBuild()

	parsed, err := Parse("rt", orig.Disasm())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, orig.Disasm())
	}
	if parsed.Len() != orig.Len() {
		t.Fatalf("length drift: %d vs %d", parsed.Len(), orig.Len())
	}
	for pc := 0; pc < orig.Len(); pc++ {
		a, bIn := orig.At(int32(pc)), parsed.At(int32(pc))
		if a.Op != bIn.Op || a.Dst != bIn.Dst || a.A != bIn.A ||
			a.B != bIn.B || a.BImm != bIn.BImm || a.Imm != bIn.Imm || a.Rpc != bIn.Rpc {
			t.Fatalf("pc %d drift:\n  orig   %v\n  parsed %v", pc, a, bIn)
		}
	}
}

func TestParseAbsoluteTargets(t *testing.T) {
	p, err := Parse("abs", `
    movi r1, 2
    cbra r1, @3
    nop
    exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.At(1).Target() != 3 {
		t.Fatalf("absolute target %d", p.At(1).Target())
	}
}

func TestParseNegatedPredicate(t *testing.T) {
	p, err := Parse("neg", `
    movi r1, 0
    cbra !r1, @end
    nop
end:
    exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.At(1).Op != OpCBraZ {
		t.Fatalf("negated predicate parsed as %s", p.At(1).Op)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic": "frobnicate r1, r2\nexit",
		"bad register":     "movi r99, 1\nexit",
		"missing operand":  "add r1, r2\nexit",
		"bad memory":       "ld.global r1, r2\nexit",
		"bad target":       "bra @999\nexit",
		"bad sreg":         "sreg r1, %bogus\nexit",
		"garbage operand":  "add r1, r2, $$$\nexit",
	}
	for name, src := range cases {
		if _, err := Parse(name, src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

// TestParseErrorPaths pins down the diagnostic each malformed input
// produces, including the 1-based line number carried by ParseError.
func TestParseErrorPaths(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		wantLine int
		wantMsg  string
	}{
		{"bad opcode", "nop\nfrobnicate r1, r2\nexit", 2, `unknown mnemonic "frobnicate"`},
		{"duplicate label", "top:\n    nop\ntop:\n    exit", 3, `duplicate label "top"`},
		{"immediate overflow", "movi r1, 99999999999999999999\nexit", 1, "overflows int64"},
		{"register out of range", "movi r64, 1\nexit", 1, `register "r64" out of range (r0..r63)`},
		{"huge register", "mov r1, r100000\nexit", 1, "out of range"},
		{"movi needs immediate", "movi r1, r2\nexit", 1, "operand 2 must be an integer immediate"},
		{"movi needs register dst", "movi 3, 4\nexit", 1, "operand 1 must be a register"},
		{"sreg needs special", "sreg r1, r2\nexit", 1, "operand 2 must be a %special register"},
		{"unknown sreg", "sreg r1, %bogus\nexit", 1, "unknown special register %bogus"},
		{"param negative index", "param r1, -3\nexit", 1, "negative parameter index"},
		{"param bad operand", "param r1, [r2+0]\nexit", 1, "param[N] or an index"},
		{"ld needs address", "ld.global r1, r2\nexit", 1, "operand 2 must be [reg+off]"},
		{"st flipped operands", "st.global r1, [r2+0]\nexit", 1, "want [reg+off], reg"},
		{"bad memory base", "ld.global r1, [7+0]\nexit", 1, "bad memory base"},
		{"bad memory offset", "ld.global r1, [r2+zebra]\nexit", 1, "bad memory offset"},
		{"bra needs label", "bra r1\nexit", 1, "operand 1 must be @label or @pc"},
		{"cbra needs register", "cbra @x, @x\nx:\nexit", 1, "operand 1 must be a register"},
		{"operand count", "add r1, r2\nexit", 1, "add expects 3 operands, got 2"},
		{"undefined label", "bra @nowhere\nexit", 0, `undefined label "nowhere"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.name, tc.src)
			if err == nil {
				t.Fatal("expected parse error")
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %T is not *ParseError: %v", err, err)
			}
			if pe.Line != tc.wantLine {
				t.Errorf("line = %d, want %d (%v)", pe.Line, tc.wantLine, err)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("error %q does not mention %q", err, tc.wantMsg)
			}
			if pe.Unwrap() == nil {
				t.Error("ParseError must wrap the underlying cause")
			}
		})
	}
}

func TestParseSharedAndSpecials(t *testing.T) {
	src := `
    sreg r0, %lane
    sreg r1, %warp
    sreg r2, %ctaid
    movf r3, 1.5
    ld.shared r4, [r0+0]
    st.shared [r0+8], r4
    exit
`
	p := MustParse("sh", src)
	if p.At(3).Imm != F2B(1.5) {
		t.Fatal("movf immediate wrong")
	}
	if p.At(4).Op != OpLdS || p.At(5).Op != OpStS {
		t.Fatal("shared ops wrong")
	}
	if !strings.Contains(p.Disasm(), "%lane") {
		t.Fatal("disasm lost special register name")
	}
}
