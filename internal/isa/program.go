package isa

import "fmt"

// NewProgram assembles a Program directly from decoded instructions,
// validating branch targets and recomputing reconvergence PCs. It is the
// constructor used by tooling that manipulates instruction slices
// (mutation testing, optimizers); hand-written kernels should prefer
// Builder or Parse, which also resolve labels.
//
// The input slice is copied; stale Rpc annotations on conditional
// branches are overwritten.
func NewProgram(name string, instrs []Instr) (*Program, error) {
	if len(instrs) == 0 {
		return nil, fmt.Errorf("isa: program %q is empty", name)
	}
	cp := make([]Instr, len(instrs))
	copy(cp, instrs)
	p := &Program{Name: name, Instrs: cp, labels: map[string]int32{}}
	if err := computeReconvergence(p); err != nil {
		return nil, fmt.Errorf("isa: program %q: %w", name, err)
	}
	p.precompute()
	return p, nil
}

// NewProgramUnchecked wraps instructions into a Program without any
// validation or reconvergence recomputation: branch targets may be out
// of range and Rpc annotations stale. It exists so the static verifier
// (internal/isa/analysis) and its mutation tests can represent damaged
// programs; the simulator must never execute one.
func NewProgramUnchecked(name string, instrs []Instr) *Program {
	cp := make([]Instr, len(instrs))
	copy(cp, instrs)
	p := &Program{Name: name, Instrs: cp, labels: map[string]int32{}}
	p.precompute()
	return p
}
