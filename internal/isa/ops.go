// Package isa defines the register-based mini instruction set executed by
// the simulated GPU, a program builder with label resolution, and the
// control-flow analysis that computes SIMT reconvergence points
// (immediate post-dominators) for divergent branches.
//
// The ISA plays the role PTX plays for GPGPU-sim in the paper: it is rich
// enough to express the twelve evaluation workloads (integer and floating
// point arithmetic, global/shared memory, divergent control flow and
// barriers) while keeping per-instruction semantics simple enough for a
// cycle-level timing model.
package isa

import "fmt"

// Reg names one of the per-thread general-purpose registers, R0..R63.
// All registers hold 64-bit values; floating-point data is stored as
// IEEE-754 bits (see Float/Int helpers on Value).
type Reg uint8

// NumRegs is the size of the per-thread register file.
const NumRegs = 64

// Convenient register aliases.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	R29
	R30
	R31
)

// Op is an opcode of the mini ISA.
type Op uint8

// Opcodes. Binary operations read A and B (B may be an immediate when
// Instr.BImm is set) and write Dst.
const (
	OpNop Op = iota

	// Data movement.
	OpMov   // Dst = A
	OpMovI  // Dst = Imm
	OpSReg  // Dst = special register selected by Imm
	OpParam // Dst = kernel parameter Imm

	// Integer arithmetic and logic.
	OpAdd // Dst = A + B
	OpSub // Dst = A - B
	OpMul // Dst = A * B
	OpMad // Dst = A*B + Dst
	OpDiv // Dst = A / B (B==0 -> 0)
	OpRem // Dst = A % B (B==0 -> 0)
	OpMin // Dst = min(A, B)
	OpMax // Dst = max(A, B)
	OpAnd // Dst = A & B
	OpOr  // Dst = A | B
	OpXor // Dst = A ^ B
	OpShl // Dst = A << B
	OpShr // Dst = A >> B (arithmetic)
	OpAbs // Dst = |A|

	// Integer comparisons: Dst = 1 if true else 0.
	OpSetLT
	OpSetLE
	OpSetEQ
	OpSetNE
	OpSetGT
	OpSetGE

	// Select: Dst = (Dst != 0) ? A : B. The predicate is the previous
	// value of Dst, so a typical sequence is SetLT(Rd, x, y) followed by
	// Sel(Rd, a, b).
	OpSel

	// Floating point (operands are IEEE-754 bit patterns).
	OpFAdd
	OpFSub
	OpFMul
	OpFMad // Dst = A*B + Dst
	OpFDiv
	OpFSqrt // Dst = sqrt(A)
	OpFMin
	OpFMax
	OpFAbs  // Dst = |A|
	OpFNeg  // Dst = -A
	OpFExp  // Dst = exp(A)
	OpFLog  // Dst = ln(A)
	OpCvtIF // Dst = float(A as int)
	OpCvtFI // Dst = int(trunc(A as float))

	// Floating-point comparisons: Dst = 1 if true else 0.
	OpFSetLT
	OpFSetLE
	OpFSetGT
	OpFSetGE
	OpFSetEQ

	// Memory. Addresses are byte addresses; accesses are 8-byte words.
	OpLd  // Dst = global[A + Imm]
	OpSt  // global[A + Imm] = B
	OpLdS // Dst = shared[A + Imm]
	OpStS // shared[A + Imm] = B

	// Control flow.
	OpBra   // unconditional jump to Imm
	OpCBra  // jump to Imm if A != 0
	OpCBraZ // jump to Imm if A == 0
	OpBar   // block-wide barrier
	OpExit  // thread exit

	opCount // sentinel
)

// SpecialReg selects the source of an OpSReg read.
type SpecialReg int64

// Special registers available to kernels.
const (
	SRTid    SpecialReg = iota // thread index within the block
	SRNtid                     // block size (threads per block)
	SRCtaid                    // block index within the grid
	SRNctaid                   // grid size (blocks)
	SRLane                     // lane index within the warp
	SRWarp                     // warp index within the block
	SRGTid                     // global thread index (Ctaid*Ntid + Tid)
)

// Class groups opcodes by the functional unit that executes them, which
// determines issue latency in the timing model.
type Class uint8

// Functional-unit classes.
const (
	ClassALU  Class = iota // simple integer/logic, moves, compares
	ClassFPU               // floating add/mul/compare/convert
	ClassSFU               // div, rem, sqrt, exp, log
	ClassMem               // global loads/stores
	ClassSMem              // shared-memory accesses
	ClassCtrl              // branches, barrier, exit
)

var opInfo = [opCount]struct {
	name  string
	class Class
}{
	OpNop:    {"nop", ClassALU},
	OpMov:    {"mov", ClassALU},
	OpMovI:   {"movi", ClassALU},
	OpSReg:   {"sreg", ClassALU},
	OpParam:  {"param", ClassALU},
	OpAdd:    {"add", ClassALU},
	OpSub:    {"sub", ClassALU},
	OpMul:    {"mul", ClassALU},
	OpMad:    {"mad", ClassALU},
	OpDiv:    {"div", ClassSFU},
	OpRem:    {"rem", ClassSFU},
	OpMin:    {"min", ClassALU},
	OpMax:    {"max", ClassALU},
	OpAnd:    {"and", ClassALU},
	OpOr:     {"or", ClassALU},
	OpXor:    {"xor", ClassALU},
	OpShl:    {"shl", ClassALU},
	OpShr:    {"shr", ClassALU},
	OpAbs:    {"abs", ClassALU},
	OpSetLT:  {"set.lt", ClassALU},
	OpSetLE:  {"set.le", ClassALU},
	OpSetEQ:  {"set.eq", ClassALU},
	OpSetNE:  {"set.ne", ClassALU},
	OpSetGT:  {"set.gt", ClassALU},
	OpSetGE:  {"set.ge", ClassALU},
	OpSel:    {"sel", ClassALU},
	OpFAdd:   {"fadd", ClassFPU},
	OpFSub:   {"fsub", ClassFPU},
	OpFMul:   {"fmul", ClassFPU},
	OpFMad:   {"fmad", ClassFPU},
	OpFDiv:   {"fdiv", ClassSFU},
	OpFSqrt:  {"fsqrt", ClassSFU},
	OpFMin:   {"fmin", ClassFPU},
	OpFMax:   {"fmax", ClassFPU},
	OpFAbs:   {"fabs", ClassFPU},
	OpFNeg:   {"fneg", ClassFPU},
	OpFExp:   {"fexp", ClassSFU},
	OpFLog:   {"flog", ClassSFU},
	OpCvtIF:  {"cvt.if", ClassFPU},
	OpCvtFI:  {"cvt.fi", ClassFPU},
	OpFSetLT: {"fset.lt", ClassFPU},
	OpFSetLE: {"fset.le", ClassFPU},
	OpFSetGT: {"fset.gt", ClassFPU},
	OpFSetGE: {"fset.ge", ClassFPU},
	OpFSetEQ: {"fset.eq", ClassFPU},
	OpLd:     {"ld.global", ClassMem},
	OpSt:     {"st.global", ClassMem},
	OpLdS:    {"ld.shared", ClassSMem},
	OpStS:    {"st.shared", ClassSMem},
	OpBra:    {"bra", ClassCtrl},
	OpCBra:   {"cbra", ClassCtrl},
	OpCBraZ:  {"cbraz", ClassCtrl},
	OpBar:    {"bar.sync", ClassCtrl},
	OpExit:   {"exit", ClassCtrl},
}

// String returns the mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(opInfo) && opInfo[o].name != "" {
		return opInfo[o].name
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class returns the functional-unit class of the opcode.
func (o Op) Class() Class {
	if int(o) < len(opInfo) {
		return opInfo[o].class
	}
	return ClassALU
}

// IsBranch reports whether the opcode transfers control.
func (o Op) IsBranch() bool { return o == OpBra || o == OpCBra || o == OpCBraZ }

// IsCondBranch reports whether the opcode is a conditional branch, i.e.
// may diverge.
func (o Op) IsCondBranch() bool { return o == OpCBra || o == OpCBraZ }

// IsMem reports whether the opcode accesses global memory.
func (o Op) IsMem() bool { return o == OpLd || o == OpSt }

// IsLoad reports whether the opcode is a load (global or shared).
func (o Op) IsLoad() bool { return o == OpLd || o == OpLdS }

// IsStore reports whether the opcode is a store (global or shared).
func (o Op) IsStore() bool { return o == OpSt || o == OpStS }

// HasDst reports whether the opcode writes a destination register.
func (o Op) HasDst() bool {
	switch o {
	case OpNop, OpSt, OpStS, OpBra, OpCBra, OpCBraZ, OpBar, OpExit:
		return false
	}
	return true
}

// ReadsA reports whether the opcode reads source register A.
func (o Op) ReadsA() bool {
	switch o {
	case OpNop, OpMovI, OpSReg, OpParam, OpBra, OpBar, OpExit:
		return false
	}
	return true
}

// ReadsB reports whether the opcode reads source operand B (register or
// immediate).
func (o Op) ReadsB() bool {
	switch o {
	case OpAdd, OpSub, OpMul, OpMad, OpDiv, OpRem, OpMin, OpMax,
		OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpSetLT, OpSetLE, OpSetEQ, OpSetNE, OpSetGT, OpSetGE, OpSel,
		OpFAdd, OpFSub, OpFMul, OpFMad, OpFDiv, OpFMin, OpFMax,
		OpFSetLT, OpFSetLE, OpFSetGT, OpFSetGE, OpFSetEQ,
		OpSt, OpStS:
		return true
	}
	return false
}

// ReadsDst reports whether the opcode reads its destination register as an
// input (accumulating multiply-add and select).
func (o Op) ReadsDst() bool { return o == OpMad || o == OpFMad || o == OpSel }
