package isa

// InstrMeta is per-instruction issue metadata precomputed once at
// Program construction, so the SM's per-cycle readiness check is a few
// mask tests instead of re-deriving operand sets from the opcode tables
// (the scoreboard probe runs for every resident warp every cycle — it
// is the hottest loop in the simulator).
type InstrMeta struct {
	// RegMask has a bit set for every register the instruction reads or
	// writes (the scoreboard hazard set).
	RegMask uint64
	// Class is the functional-unit class (cached Op.Class()).
	Class Class
	// LSUGated marks instructions that need the load-store unit
	// (ClassMem or ClassSMem) and therefore stall on lsuBusyUntil.
	LSUGated bool
	// GlobalLoad marks OpLd: the only instruction that coalesces into
	// line transactions which may be rejected by a full MSHR.
	GlobalLoad bool
}

// metaFor derives the metadata of one instruction.
func metaFor(in Instr) InstrMeta {
	var mask uint64
	if in.Op.HasDst() || in.Op.ReadsDst() {
		mask |= 1 << in.Dst
	}
	if in.Op.ReadsA() {
		mask |= 1 << in.A
	}
	if in.Op.ReadsB() && !in.BImm {
		mask |= 1 << in.B
	}
	cl := in.Op.Class()
	return InstrMeta{
		RegMask:    mask,
		Class:      cl,
		LSUGated:   cl == ClassMem || cl == ClassSMem,
		GlobalLoad: in.Op == OpLd,
	}
}

// precompute fills the metadata side table. Every Program constructor
// calls it; the table is index-parallel with Instrs.
func (p *Program) precompute() {
	p.meta = make([]InstrMeta, len(p.Instrs))
	for i, in := range p.Instrs {
		p.meta[i] = metaFor(in)
	}
}

// Meta returns the precomputed metadata table, index-parallel with
// Instrs. The caller must not modify it.
func (p *Program) Meta() []InstrMeta { return p.meta }
