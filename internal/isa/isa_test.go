package isa

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpMetadata(t *testing.T) {
	for op := OpNop; op < opCount; op++ {
		if op.String() == "" || strings.HasPrefix(op.String(), "op(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
	if !OpLd.IsLoad() || !OpLdS.IsLoad() || OpSt.IsLoad() {
		t.Error("IsLoad misclassifies")
	}
	if !OpSt.IsStore() || !OpStS.IsStore() || OpLd.IsStore() {
		t.Error("IsStore misclassifies")
	}
	if !OpCBra.IsCondBranch() || !OpCBraZ.IsCondBranch() || OpBra.IsCondBranch() {
		t.Error("IsCondBranch misclassifies")
	}
	if !OpBra.IsBranch() || OpBar.IsBranch() {
		t.Error("IsBranch misclassifies")
	}
	if OpSt.HasDst() || OpBar.HasDst() || !OpAdd.HasDst() || !OpLd.HasDst() {
		t.Error("HasDst misclassifies")
	}
	if !OpMad.ReadsDst() || !OpSel.ReadsDst() || OpAdd.ReadsDst() {
		t.Error("ReadsDst misclassifies")
	}
	if OpMovI.ReadsA() || !OpMov.ReadsA() || !OpSt.ReadsA() {
		t.Error("ReadsA misclassifies")
	}
	if !OpSt.ReadsB() || OpLd.ReadsB() || !OpAdd.ReadsB() {
		t.Error("ReadsB misclassifies")
	}
}

func TestOpClasses(t *testing.T) {
	cases := map[Op]Class{
		OpAdd:   ClassALU,
		OpFAdd:  ClassFPU,
		OpDiv:   ClassSFU,
		OpFSqrt: ClassSFU,
		OpLd:    ClassMem,
		OpLdS:   ClassSMem,
		OpBra:   ClassCtrl,
		OpBar:   ClassCtrl,
	}
	for op, want := range cases {
		if got := op.Class(); got != want {
			t.Errorf("%s class = %d, want %d", op, got, want)
		}
	}
}

func TestBuilderLabelResolution(t *testing.T) {
	b := NewBuilder("t")
	b.MovI(R0, 5)
	b.Label("loop")
	b.SubI(R0, R0, 1)
	b.CBra(R0, "loop")
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if pc, ok := p.LabelPC("loop"); !ok || pc != 1 {
		t.Fatalf("label loop at %d (ok=%v), want 1", pc, ok)
	}
	if got := p.At(2).Target(); got != 1 {
		t.Fatalf("branch target = %d, want 1", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := map[string]func(*Builder){
		"undefined label": func(b *Builder) { b.Bra("nowhere"); b.Exit() },
		"empty":           func(b *Builder) {},
		"no exit":         func(b *Builder) { b.MovI(R0, 1); b.Nop() },
		"duplicate label": func(b *Builder) { b.Label("x"); b.Nop(); b.Label("x"); b.Exit() },
	}
	for name, build := range cases {
		b := NewBuilder(name)
		build(b)
		if _, err := b.Build(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestBuilderPanicsOnBadRegister(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range register")
		}
	}()
	NewBuilder("bad").Mov(Reg(NumRegs), R0)
}

func TestReconvergenceIfElse(t *testing.T) {
	b := NewBuilder("ifelse")
	b.CBra(R0, "then") // 0
	b.MovI(R1, 1)      // 1 else
	b.Bra("join")      // 2
	b.Label("then")
	b.MovI(R1, 2) // 3
	b.Label("join")
	b.MovI(R2, 3) // 4
	b.Exit()      // 5
	p := b.MustBuild()
	if got := p.At(0).Rpc; got != 4 {
		t.Fatalf("if/else reconvergence = %d, want 4 (join)", got)
	}
}

func TestReconvergenceLoop(t *testing.T) {
	b := NewBuilder("loop")
	b.MovI(R0, 3)   // 0
	b.Label("head") // 1
	b.SubI(R0, R0, 1)
	b.CBra(R0, "head") // 2
	b.MovI(R1, 9)      // 3
	b.Exit()           // 4
	p := b.MustBuild()
	if got := p.At(2).Rpc; got != 3 {
		t.Fatalf("loop back-edge reconvergence = %d, want 3 (loop exit)", got)
	}
}

func TestReconvergenceAtExit(t *testing.T) {
	// Divergent paths that never rejoin before exit.
	b := NewBuilder("noexitjoin")
	b.CBra(R0, "a") // 0
	b.Exit()        // 1
	b.Label("a")
	b.Exit() // 2
	p := b.MustBuild()
	if got := p.At(0).Rpc; got != ReconvAtExit(p) {
		t.Fatalf("reconvergence = %d, want exit sentinel %d", got, ReconvAtExit(p))
	}
}

func TestReconvergenceNested(t *testing.T) {
	b := NewBuilder("nested")
	b.CBra(R0, "outer_t") // 0
	b.CBra(R1, "inner_t") // 1
	b.MovI(R2, 1)         // 2
	b.Label("inner_t")
	b.MovI(R2, 2) // 3 inner join
	b.Label("outer_t")
	b.MovI(R3, 3) // 4 outer join
	b.Exit()      // 5
	p := b.MustBuild()
	if got := p.At(0).Rpc; got != 4 {
		t.Fatalf("outer reconvergence = %d, want 4", got)
	}
	if got := p.At(1).Rpc; got != 3 {
		t.Fatalf("inner reconvergence = %d, want 3", got)
	}
}

// TestReconvergencePostDominates verifies, on randomized structured
// programs, the defining property: every conditional branch's Rpc is
// reachable from both outcomes, and the instruction range skipped by
// the branch lies before the reconvergence point.
func TestReconvergencePostDominates(t *testing.T) {
	f := func(seedLens [6]uint8) bool {
		b := NewBuilder("rand")
		// Build a chain of if/else blocks with variable body lengths.
		for i, l := range seedLens {
			thenLabel := b.FreshLabel("t")
			joinLabel := b.FreshLabel("j")
			b.CBra(Reg(i%8), thenLabel)
			for j := 0; j < int(l%5); j++ {
				b.AddI(R9, R9, 1)
			}
			b.Bra(joinLabel)
			b.Label(thenLabel)
			for j := 0; j < int(l%3); j++ {
				b.AddI(R10, R10, 1)
			}
			b.Label(joinLabel)
		}
		b.Exit()
		p, err := b.Build()
		if err != nil {
			return false
		}
		for pc := int32(0); pc < int32(p.Len()); pc++ {
			in := p.At(pc)
			if !in.Op.IsCondBranch() {
				continue
			}
			rpc := in.Rpc
			if rpc < 0 || rpc > ReconvAtExit(p) {
				return false
			}
			if !reaches(p, in.Target(), rpc) || !reaches(p, pc+1, rpc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// reaches does a DFS from pc to target over the CFG.
func reaches(p *Program, from, target int32) bool {
	seen := make(map[int32]bool)
	stack := []int32{from}
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if pc == target {
			return true
		}
		if pc >= int32(p.Len()) || seen[pc] {
			continue
		}
		seen[pc] = true
		stack = append(stack, p.Successors(pc)...)
	}
	return target == ReconvAtExit(p) // exit sentinel is reached by falling off
}

func TestDisasmRoundTrip(t *testing.T) {
	b := NewBuilder("disasm")
	b.SReg(R0, SRGTid)
	b.MovI(R1, 42)
	b.AddI(R2, R0, 7)
	b.Ld(R3, R2, 16)
	b.St(R2, 8, R3)
	b.CBraZ(R3, "end")
	b.FMul(R4, R3, R1)
	b.Label("end")
	b.Exit()
	p := b.MustBuild()
	d := p.Disasm()
	for _, want := range []string{"sreg", "movi", "ld.global", "st.global", "cbraz", "fmul", "exit", "end:"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestFloatBits(t *testing.T) {
	for _, f := range []float64{0, 1, -1, math.Pi, math.Inf(1), 1e-300} {
		if got := B2F(F2B(f)); got != f {
			t.Errorf("roundtrip %v -> %v", f, got)
		}
	}
	if !math.IsNaN(B2F(F2B(math.NaN()))) {
		t.Error("NaN roundtrip failed")
	}
}

func TestSuccessors(t *testing.T) {
	b := NewBuilder("succ")
	b.CBra(R0, "x") // 0
	b.Bra("y")      // 1
	b.Label("x")
	b.Nop() // 2
	b.Label("y")
	b.Exit() // 3
	p := b.MustBuild()
	if s := p.Successors(0); len(s) != 2 || s[0] != 2 || s[1] != 1 {
		t.Fatalf("cond branch successors = %v", s)
	}
	if s := p.Successors(1); len(s) != 1 || s[0] != 3 {
		t.Fatalf("bra successors = %v", s)
	}
	if s := p.Successors(3); s != nil {
		t.Fatalf("exit successors = %v", s)
	}
}
