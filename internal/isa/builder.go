package isa

import (
	"fmt"
	"sort"
)

// Builder assembles a Program. Emit instructions through the typed
// helpers, mark positions with Label, and reference labels from branches;
// Build resolves labels, validates the program and computes reconvergence
// PCs for all conditional branches.
//
// Builder methods panic on malformed operands (out-of-range registers);
// structural errors (unknown labels, missing exit) are reported by Build.
type Builder struct {
	name     string
	instrs   []Instr
	labels   map[string]int32
	fixups   []fixup // branches whose Imm is a label reference
	pcFixups []pcFixup
	errs     []error
	nextLbl  int
}

type fixup struct {
	pc    int32
	label string
}

// pcFixup binds a synthetic label to an absolute PC (text assembler's
// "@12" form).
type pcFixup struct {
	name string
	pc   int32
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int32)}
}

func (b *Builder) pc() int32 { return int32(len(b.instrs)) }

func (b *Builder) emit(in Instr) *Builder {
	b.instrs = append(b.instrs, in)
	return b
}

func checkReg(r Reg) {
	if r >= NumRegs {
		panic(fmt.Sprintf("isa: register r%d out of range", r))
	}
}

// Label binds name to the next emitted instruction's PC.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("isa: duplicate label %q", name))
		return b
	}
	b.labels[name] = b.pc()
	return b
}

// FreshLabel returns a unique label name, for structured-control helpers.
func (b *Builder) FreshLabel(prefix string) string {
	b.nextLbl++
	return fmt.Sprintf(".%s%d", prefix, b.nextLbl)
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(Instr{Op: OpNop}) }

// Mov emits dst = a.
func (b *Builder) Mov(dst, a Reg) *Builder {
	checkReg(dst)
	checkReg(a)
	return b.emit(Instr{Op: OpMov, Dst: dst, A: a})
}

// MovI emits dst = imm.
func (b *Builder) MovI(dst Reg, imm int64) *Builder {
	checkReg(dst)
	return b.emit(Instr{Op: OpMovI, Dst: dst, Imm: imm})
}

// MovF emits dst = float immediate f (stored as bits).
func (b *Builder) MovF(dst Reg, f float64) *Builder { return b.MovI(dst, F2B(f)) }

// SReg emits dst = special register sr.
func (b *Builder) SReg(dst Reg, sr SpecialReg) *Builder {
	checkReg(dst)
	return b.emit(Instr{Op: OpSReg, Dst: dst, Imm: int64(sr)})
}

// Param emits dst = kernel parameter at index.
func (b *Builder) Param(dst Reg, index int) *Builder {
	checkReg(dst)
	if index < 0 {
		panic("isa: negative parameter index")
	}
	return b.emit(Instr{Op: OpParam, Dst: dst, Imm: int64(index)})
}

func (b *Builder) bin(op Op, dst, a, src Reg) *Builder {
	checkReg(dst)
	checkReg(a)
	checkReg(src)
	return b.emit(Instr{Op: op, Dst: dst, A: a, B: src})
}

func (b *Builder) binI(op Op, dst, a Reg, imm int64) *Builder {
	checkReg(dst)
	checkReg(a)
	return b.emit(Instr{Op: op, Dst: dst, A: a, BImm: true, Imm: imm})
}

// Integer ALU helpers (register second operand).

func (b *Builder) Add(dst, a, c Reg) *Builder { return b.bin(OpAdd, dst, a, c) }
func (b *Builder) Sub(dst, a, c Reg) *Builder { return b.bin(OpSub, dst, a, c) }
func (b *Builder) Mul(dst, a, c Reg) *Builder { return b.bin(OpMul, dst, a, c) }
func (b *Builder) Mad(dst, a, c Reg) *Builder { return b.bin(OpMad, dst, a, c) }
func (b *Builder) Div(dst, a, c Reg) *Builder { return b.bin(OpDiv, dst, a, c) }
func (b *Builder) Rem(dst, a, c Reg) *Builder { return b.bin(OpRem, dst, a, c) }
func (b *Builder) Min(dst, a, c Reg) *Builder { return b.bin(OpMin, dst, a, c) }
func (b *Builder) Max(dst, a, c Reg) *Builder { return b.bin(OpMax, dst, a, c) }
func (b *Builder) And(dst, a, c Reg) *Builder { return b.bin(OpAnd, dst, a, c) }
func (b *Builder) Or(dst, a, c Reg) *Builder  { return b.bin(OpOr, dst, a, c) }
func (b *Builder) Xor(dst, a, c Reg) *Builder { return b.bin(OpXor, dst, a, c) }
func (b *Builder) Shl(dst, a, c Reg) *Builder { return b.bin(OpShl, dst, a, c) }
func (b *Builder) Shr(dst, a, c Reg) *Builder { return b.bin(OpShr, dst, a, c) }
func (b *Builder) Abs(dst, a Reg) *Builder {
	checkReg(dst)
	checkReg(a)
	return b.emit(Instr{Op: OpAbs, Dst: dst, A: a})
}

// Integer ALU helpers (immediate second operand).

func (b *Builder) AddI(dst, a Reg, imm int64) *Builder { return b.binI(OpAdd, dst, a, imm) }
func (b *Builder) SubI(dst, a Reg, imm int64) *Builder { return b.binI(OpSub, dst, a, imm) }
func (b *Builder) MulI(dst, a Reg, imm int64) *Builder { return b.binI(OpMul, dst, a, imm) }
func (b *Builder) DivI(dst, a Reg, imm int64) *Builder { return b.binI(OpDiv, dst, a, imm) }
func (b *Builder) RemI(dst, a Reg, imm int64) *Builder { return b.binI(OpRem, dst, a, imm) }
func (b *Builder) AndI(dst, a Reg, imm int64) *Builder { return b.binI(OpAnd, dst, a, imm) }
func (b *Builder) OrI(dst, a Reg, imm int64) *Builder  { return b.binI(OpOr, dst, a, imm) }
func (b *Builder) XorI(dst, a Reg, imm int64) *Builder { return b.binI(OpXor, dst, a, imm) }
func (b *Builder) ShlI(dst, a Reg, imm int64) *Builder { return b.binI(OpShl, dst, a, imm) }
func (b *Builder) ShrI(dst, a Reg, imm int64) *Builder { return b.binI(OpShr, dst, a, imm) }
func (b *Builder) MinI(dst, a Reg, imm int64) *Builder { return b.binI(OpMin, dst, a, imm) }
func (b *Builder) MaxI(dst, a Reg, imm int64) *Builder { return b.binI(OpMax, dst, a, imm) }

// Comparisons.

func (b *Builder) SetLT(dst, a, c Reg) *Builder { return b.bin(OpSetLT, dst, a, c) }
func (b *Builder) SetLE(dst, a, c Reg) *Builder { return b.bin(OpSetLE, dst, a, c) }
func (b *Builder) SetEQ(dst, a, c Reg) *Builder { return b.bin(OpSetEQ, dst, a, c) }
func (b *Builder) SetNE(dst, a, c Reg) *Builder { return b.bin(OpSetNE, dst, a, c) }
func (b *Builder) SetGT(dst, a, c Reg) *Builder { return b.bin(OpSetGT, dst, a, c) }
func (b *Builder) SetGE(dst, a, c Reg) *Builder { return b.bin(OpSetGE, dst, a, c) }

func (b *Builder) SetLTI(dst, a Reg, imm int64) *Builder { return b.binI(OpSetLT, dst, a, imm) }
func (b *Builder) SetLEI(dst, a Reg, imm int64) *Builder { return b.binI(OpSetLE, dst, a, imm) }
func (b *Builder) SetEQI(dst, a Reg, imm int64) *Builder { return b.binI(OpSetEQ, dst, a, imm) }
func (b *Builder) SetNEI(dst, a Reg, imm int64) *Builder { return b.binI(OpSetNE, dst, a, imm) }
func (b *Builder) SetGTI(dst, a Reg, imm int64) *Builder { return b.binI(OpSetGT, dst, a, imm) }
func (b *Builder) SetGEI(dst, a Reg, imm int64) *Builder { return b.binI(OpSetGE, dst, a, imm) }

// Sel emits dst = (dst != 0) ? a : c.
func (b *Builder) Sel(dst, a, c Reg) *Builder { return b.bin(OpSel, dst, a, c) }

// Floating point.

func (b *Builder) FAdd(dst, a, c Reg) *Builder { return b.bin(OpFAdd, dst, a, c) }
func (b *Builder) FSub(dst, a, c Reg) *Builder { return b.bin(OpFSub, dst, a, c) }
func (b *Builder) FMul(dst, a, c Reg) *Builder { return b.bin(OpFMul, dst, a, c) }
func (b *Builder) FMad(dst, a, c Reg) *Builder { return b.bin(OpFMad, dst, a, c) }
func (b *Builder) FDiv(dst, a, c Reg) *Builder { return b.bin(OpFDiv, dst, a, c) }
func (b *Builder) FMin(dst, a, c Reg) *Builder { return b.bin(OpFMin, dst, a, c) }
func (b *Builder) FMax(dst, a, c Reg) *Builder { return b.bin(OpFMax, dst, a, c) }

func (b *Builder) unary(op Op, dst, a Reg) *Builder {
	checkReg(dst)
	checkReg(a)
	return b.emit(Instr{Op: op, Dst: dst, A: a})
}

func (b *Builder) FSqrt(dst, a Reg) *Builder { return b.unary(OpFSqrt, dst, a) }
func (b *Builder) FAbs(dst, a Reg) *Builder  { return b.unary(OpFAbs, dst, a) }
func (b *Builder) FNeg(dst, a Reg) *Builder  { return b.unary(OpFNeg, dst, a) }
func (b *Builder) FExp(dst, a Reg) *Builder  { return b.unary(OpFExp, dst, a) }
func (b *Builder) FLog(dst, a Reg) *Builder  { return b.unary(OpFLog, dst, a) }
func (b *Builder) CvtIF(dst, a Reg) *Builder { return b.unary(OpCvtIF, dst, a) }
func (b *Builder) CvtFI(dst, a Reg) *Builder { return b.unary(OpCvtFI, dst, a) }

func (b *Builder) FSetLT(dst, a, c Reg) *Builder { return b.bin(OpFSetLT, dst, a, c) }
func (b *Builder) FSetLE(dst, a, c Reg) *Builder { return b.bin(OpFSetLE, dst, a, c) }
func (b *Builder) FSetGT(dst, a, c Reg) *Builder { return b.bin(OpFSetGT, dst, a, c) }
func (b *Builder) FSetGE(dst, a, c Reg) *Builder { return b.bin(OpFSetGE, dst, a, c) }
func (b *Builder) FSetEQ(dst, a, c Reg) *Builder { return b.bin(OpFSetEQ, dst, a, c) }

// Memory. offset is a byte offset added to the base register.

func (b *Builder) Ld(dst, addr Reg, offset int64) *Builder {
	checkReg(dst)
	checkReg(addr)
	return b.emit(Instr{Op: OpLd, Dst: dst, A: addr, Imm: offset})
}

func (b *Builder) St(addr Reg, offset int64, val Reg) *Builder {
	checkReg(addr)
	checkReg(val)
	return b.emit(Instr{Op: OpSt, A: addr, B: val, Imm: offset})
}

func (b *Builder) LdS(dst, addr Reg, offset int64) *Builder {
	checkReg(dst)
	checkReg(addr)
	return b.emit(Instr{Op: OpLdS, Dst: dst, A: addr, Imm: offset})
}

func (b *Builder) StS(addr Reg, offset int64, val Reg) *Builder {
	checkReg(addr)
	checkReg(val)
	return b.emit(Instr{Op: OpStS, A: addr, B: val, Imm: offset})
}

// Control flow.

// Bra emits an unconditional jump to label.
func (b *Builder) Bra(label string) *Builder {
	b.fixups = append(b.fixups, fixup{b.pc(), label})
	return b.emit(Instr{Op: OpBra})
}

// CBra emits a jump to label taken when cond != 0.
func (b *Builder) CBra(cond Reg, label string) *Builder {
	checkReg(cond)
	b.fixups = append(b.fixups, fixup{b.pc(), label})
	return b.emit(Instr{Op: OpCBra, A: cond, Rpc: NoReconv})
}

// CBraZ emits a jump to label taken when cond == 0.
func (b *Builder) CBraZ(cond Reg, label string) *Builder {
	checkReg(cond)
	b.fixups = append(b.fixups, fixup{b.pc(), label})
	return b.emit(Instr{Op: OpCBraZ, A: cond, Rpc: NoReconv})
}

// Bar emits a block-wide barrier.
func (b *Builder) Bar() *Builder { return b.emit(Instr{Op: OpBar}) }

// Exit emits a thread exit.
func (b *Builder) Exit() *Builder { return b.emit(Instr{Op: OpExit}) }

// Build resolves labels, validates the program, computes reconvergence
// PCs, and returns the immutable Program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.instrs) == 0 {
		return nil, fmt.Errorf("isa: program %q is empty", b.name)
	}
	instrs := make([]Instr, len(b.instrs))
	copy(instrs, b.instrs)
	for _, pf := range b.pcFixups {
		if _, dup := b.labels[pf.name]; dup {
			continue
		}
		if pf.pc < 0 || pf.pc > int32(len(instrs)) {
			return nil, fmt.Errorf("isa: program %q: absolute branch target %d out of range", b.name, pf.pc)
		}
		b.labels[pf.name] = pf.pc
	}
	for _, f := range b.fixups {
		pc, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: program %q: undefined label %q", b.name, f.label)
		}
		if pc >= int32(len(instrs)) {
			return nil, fmt.Errorf("isa: program %q: label %q points past the end", b.name, f.label)
		}
		instrs[f.pc].Imm = int64(pc)
	}
	// Every path must end in Exit; conservatively require the last
	// instruction to be Exit or an unconditional branch.
	last := instrs[len(instrs)-1]
	if last.Op != OpExit && last.Op != OpBra {
		return nil, fmt.Errorf("isa: program %q: must end with exit or bra, got %s", b.name, last.Op)
	}
	hasExit := false
	for _, in := range instrs {
		if in.Op == OpExit {
			hasExit = true
			break
		}
	}
	if !hasExit {
		return nil, fmt.Errorf("isa: program %q has no exit instruction", b.name)
	}

	labels := make(map[string]int32, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	p := &Program{Name: b.name, Instrs: instrs, labels: labels}
	if err := computeReconvergence(p); err != nil {
		return nil, fmt.Errorf("isa: program %q: %w", b.name, err)
	}
	p.precompute()
	return p, nil
}

// MustBuild is Build but panics on error; intended for statically known
// kernels constructed at package initialization.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Labels returns the defined labels in PC order, for tooling.
func (b *Builder) Labels() []string {
	names := make([]string, 0, len(b.labels))
	for n := range b.labels {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return b.labels[names[i]] < b.labels[names[j]] })
	return names
}
