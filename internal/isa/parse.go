package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse assembles a text program in the syntax produced by
// Program.Disasm:
//
//	// comment
//	label:
//	    movi   r1, 42
//	    sreg   r0, %gtid
//	    param  r2, param[0]
//	    ld.global  r3, [r2+16]
//	    set.lt r4, r1, 100
//	    cbra   r4, @label
//	    bar.sync
//	    exit
//
// Branch targets accept @label or an absolute @pc. The second source
// operand of binary instructions may be a register or an integer
// immediate; `movf rD, <float>` stores a float immediate. Reconvergence
// PCs are recomputed, so `(rpc=...)` annotations from Disasm are
// ignored.
// ParseError is a parse or assembly failure positioned at a source
// line. Line is 1-based; 0 means the error is structural (e.g. an
// undefined label) and has no single originating line.
type ParseError struct {
	Line int
	Err  error
}

func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("line %d: %v", e.Line, e.Err)
	}
	return e.Err.Error()
}

func (e *ParseError) Unwrap() error { return e.Err }

func Parse(name, src string) (*Program, error) {
	b := NewBuilder(name)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Strip Disasm's rpc annotation.
		if i := strings.Index(line, "(rpc="); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		// Leading "NNNN:" PC prefixes from Disasm are ignored; labels
		// end with ':' and contain no spaces.
		if strings.HasSuffix(line, ":") {
			lbl := strings.TrimSuffix(line, ":")
			if isNumber(lbl) {
				continue // bare PC marker
			}
			if _, dup := b.labels[lbl]; dup {
				return nil, &ParseError{Line: lineNo + 1, Err: fmt.Errorf("duplicate label %q", lbl)}
			}
			b.Label(lbl)
			continue
		}
		if i := strings.Index(line, ":"); i >= 0 && isNumber(strings.TrimSpace(line[:i])) {
			line = strings.TrimSpace(line[i+1:]) // "  12: add r1, ..." form
		}
		if line == "" {
			continue
		}
		if err := parseInstr(b, line); err != nil {
			return nil, &ParseError{Line: lineNo + 1, Err: err}
		}
	}
	p, err := b.Build()
	if err != nil {
		return nil, &ParseError{Err: err}
	}
	return p, nil
}

// MustParse is Parse but panics on error (static kernels in tests).
func MustParse(name, src string) *Program {
	p, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func isNumber(s string) bool {
	if s == "" {
		return false
	}
	_, err := strconv.Atoi(s)
	return err == nil
}

// operand kinds recognized by the parser.
type operand struct {
	kind byte // 'r' register, 'i' immediate, 'm' [reg+off], 's' %sreg, 'p' param[i], 'l' @label/@pc, 'f' float
	reg  Reg
	imm  int64
	f    float64
	str  string // label name
	neg  bool   // '!' prefix (cbraz rendering)
}

func parseOperand(tok string) (operand, error) {
	tok = strings.TrimSpace(tok)
	neg := false
	if strings.HasPrefix(tok, "!") {
		neg = true
		tok = tok[1:]
	}
	switch {
	case strings.HasPrefix(tok, "r") && len(tok) > 1 && allDigits(tok[1:]):
		n, err := strconv.Atoi(tok[1:])
		if err != nil || n < 0 || n >= NumRegs {
			return operand{}, fmt.Errorf("register %q out of range (r0..r%d)", tok, NumRegs-1)
		}
		return operand{kind: 'r', reg: Reg(n), neg: neg}, nil
	case strings.HasPrefix(tok, "%"):
		return operand{kind: 's', str: tok[1:]}, nil
	case strings.HasPrefix(tok, "param["):
		inner := strings.TrimSuffix(strings.TrimPrefix(tok, "param["), "]")
		n, err := strconv.Atoi(inner)
		if err != nil {
			return operand{}, fmt.Errorf("bad parameter index %q", tok)
		}
		return operand{kind: 'p', imm: int64(n)}, nil
	case strings.HasPrefix(tok, "@"):
		return operand{kind: 'l', str: tok[1:]}, nil
	case strings.HasPrefix(tok, "["):
		inner := strings.TrimSuffix(strings.TrimPrefix(tok, "["), "]")
		base, off := inner, "0"
		if i := strings.IndexAny(inner[1:], "+-"); i >= 0 {
			base, off = inner[:i+1], inner[i+1:]
		}
		bop, err := parseOperand(base)
		if err != nil || bop.kind != 'r' {
			return operand{}, fmt.Errorf("bad memory base in %q", tok)
		}
		o, err := strconv.ParseInt(off, 0, 64)
		if err != nil {
			return operand{}, fmt.Errorf("bad memory offset in %q", tok)
		}
		return operand{kind: 'm', reg: bop.reg, imm: o}, nil
	}
	v, err := strconv.ParseInt(tok, 0, 64)
	if err == nil {
		return operand{kind: 'i', imm: v}, nil
	}
	if ne, ok := err.(*strconv.NumError); ok && ne.Err == strconv.ErrRange {
		return operand{}, fmt.Errorf("immediate %q overflows int64", tok)
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return operand{kind: 'f', f: f}, nil
	}
	return operand{}, fmt.Errorf("unrecognized operand %q", tok)
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return s != ""
}

func splitOperands(s string) ([]operand, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []operand
	depth := 0
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || (s[i] == ',' && depth == 0) {
			op, err := parseOperand(s[start:i])
			if err != nil {
				return nil, err
			}
			out = append(out, op)
			start = i + 1
			continue
		}
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		}
	}
	return out, nil
}

var sregByName = map[string]SpecialReg{
	"tid": SRTid, "ntid": SRNtid, "ctaid": SRCtaid, "nctaid": SRNctaid,
	"lane": SRLane, "warp": SRWarp, "gtid": SRGTid,
}

// binaryOps maps mnemonics to opcodes for the regular three-operand
// instructions (register or immediate second source).
var binaryOps = map[string]Op{
	"add": OpAdd, "sub": OpSub, "mul": OpMul, "mad": OpMad,
	"div": OpDiv, "rem": OpRem, "min": OpMin, "max": OpMax,
	"and": OpAnd, "or": OpOr, "xor": OpXor, "shl": OpShl, "shr": OpShr,
	"set.lt": OpSetLT, "set.le": OpSetLE, "set.eq": OpSetEQ,
	"set.ne": OpSetNE, "set.gt": OpSetGT, "set.ge": OpSetGE,
	"sel":  OpSel,
	"fadd": OpFAdd, "fsub": OpFSub, "fmul": OpFMul, "fmad": OpFMad,
	"fdiv": OpFDiv, "fmin": OpFMin, "fmax": OpFMax,
	"fset.lt": OpFSetLT, "fset.le": OpFSetLE, "fset.gt": OpFSetGT,
	"fset.ge": OpFSetGE, "fset.eq": OpFSetEQ,
}

var unaryOps = map[string]Op{
	"mov": OpMov, "abs": OpAbs, "fabs": OpFAbs, "fneg": OpFNeg,
	"fsqrt": OpFSqrt, "fexp": OpFExp, "flog": OpFLog,
	"cvt.if": OpCvtIF, "cvt.fi": OpCvtFI,
}

func parseInstr(b *Builder, line string) error {
	mnemonic := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnemonic, rest = line[:i], line[i+1:]
	}
	mnemonic = strings.ToLower(mnemonic)
	ops, err := splitOperands(rest)
	if err != nil {
		return err
	}
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s expects %d operands, got %d", mnemonic, n, len(ops))
		}
		return nil
	}

	if op, ok := binaryOps[mnemonic]; ok {
		if err := need(3); err != nil {
			return err
		}
		if ops[0].kind != 'r' || ops[1].kind != 'r' {
			return fmt.Errorf("%s: first two operands must be registers", mnemonic)
		}
		switch ops[2].kind {
		case 'r':
			b.bin(op, ops[0].reg, ops[1].reg, ops[2].reg)
		case 'i':
			b.binI(op, ops[0].reg, ops[1].reg, ops[2].imm)
		default:
			return fmt.Errorf("%s: bad second source", mnemonic)
		}
		return nil
	}
	if op, ok := unaryOps[mnemonic]; ok {
		if err := need(2); err != nil {
			return err
		}
		if ops[0].kind != 'r' || ops[1].kind != 'r' {
			return fmt.Errorf("%s: operands must be registers", mnemonic)
		}
		b.unary(op, ops[0].reg, ops[1].reg)
		return nil
	}

	wantKind := func(i int, kind byte, what string) error {
		if ops[i].kind != kind {
			return fmt.Errorf("%s: operand %d must be %s", mnemonic, i+1, what)
		}
		return nil
	}

	switch mnemonic {
	case "nop":
		b.Nop()
	case "movi":
		if err := need(2); err != nil {
			return err
		}
		if err := wantKind(0, 'r', "a register"); err != nil {
			return err
		}
		if err := wantKind(1, 'i', "an integer immediate"); err != nil {
			return err
		}
		b.MovI(ops[0].reg, ops[1].imm)
	case "movf":
		if err := need(2); err != nil {
			return err
		}
		if err := wantKind(0, 'r', "a register"); err != nil {
			return err
		}
		switch ops[1].kind {
		case 'f':
			b.MovF(ops[0].reg, ops[1].f)
		case 'i':
			b.MovF(ops[0].reg, float64(ops[1].imm))
		default:
			return fmt.Errorf("movf: bad immediate")
		}
	case "sreg":
		if err := need(2); err != nil {
			return err
		}
		if err := wantKind(0, 'r', "a register"); err != nil {
			return err
		}
		if err := wantKind(1, 's', "a %special register"); err != nil {
			return err
		}
		sr, ok := sregByName[ops[1].str]
		if !ok {
			return fmt.Errorf("unknown special register %%%s", ops[1].str)
		}
		b.SReg(ops[0].reg, sr)
	case "param":
		if err := need(2); err != nil {
			return err
		}
		if err := wantKind(0, 'r', "a register"); err != nil {
			return err
		}
		if ops[1].kind != 'p' && ops[1].kind != 'i' {
			return fmt.Errorf("param: operand 2 must be param[N] or an index")
		}
		if ops[1].imm < 0 {
			return fmt.Errorf("param: negative parameter index %d", ops[1].imm)
		}
		b.Param(ops[0].reg, int(ops[1].imm))
	case "ld.global", "ld":
		if err := need(2); err != nil {
			return err
		}
		if err := wantKind(0, 'r', "a register"); err != nil {
			return err
		}
		if err := wantKind(1, 'm', "[reg+off]"); err != nil {
			return err
		}
		b.Ld(ops[0].reg, ops[1].reg, ops[1].imm)
	case "st.global", "st":
		if err := need(2); err != nil {
			return err
		}
		if ops[0].kind != 'm' || ops[1].kind != 'r' {
			return fmt.Errorf("st.global: want [reg+off], reg")
		}
		b.St(ops[0].reg, ops[0].imm, ops[1].reg)
	case "ld.shared":
		if err := need(2); err != nil {
			return err
		}
		if err := wantKind(0, 'r', "a register"); err != nil {
			return err
		}
		if err := wantKind(1, 'm', "[reg+off]"); err != nil {
			return err
		}
		b.LdS(ops[0].reg, ops[1].reg, ops[1].imm)
	case "st.shared":
		if err := need(2); err != nil {
			return err
		}
		if ops[0].kind != 'm' || ops[1].kind != 'r' {
			return fmt.Errorf("st.shared: want [reg+off], reg")
		}
		b.StS(ops[0].reg, ops[0].imm, ops[1].reg)
	case "bra":
		if err := need(1); err != nil {
			return err
		}
		if err := wantKind(0, 'l', "@label or @pc"); err != nil {
			return err
		}
		b.Bra(branchLabel(b, ops[0]))
	case "cbra":
		if err := need(2); err != nil {
			return err
		}
		if err := wantKind(0, 'r', "a register"); err != nil {
			return err
		}
		if err := wantKind(1, 'l', "@label or @pc"); err != nil {
			return err
		}
		if ops[0].neg {
			b.CBraZ(ops[0].reg, branchLabel(b, ops[1]))
		} else {
			b.CBra(ops[0].reg, branchLabel(b, ops[1]))
		}
	case "cbraz":
		if err := need(2); err != nil {
			return err
		}
		if err := wantKind(0, 'r', "a register"); err != nil {
			return err
		}
		if err := wantKind(1, 'l', "@label or @pc"); err != nil {
			return err
		}
		b.CBraZ(ops[0].reg, branchLabel(b, ops[1]))
	case "bar.sync", "bar":
		b.Bar()
	case "exit":
		b.Exit()
	default:
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	return nil
}

// branchLabel resolves an @label or absolute @pc operand into a label
// name, synthesizing pc-anchored labels for absolute targets.
func branchLabel(b *Builder, op operand) string {
	if isNumber(op.str) {
		name := "@pc" + op.str
		if _, exists := b.labels[name]; !exists {
			b.pcFixups = append(b.pcFixups, pcFixup{name: name, pc: mustAtoi(op.str)})
		}
		return name
	}
	return op.str
}

func mustAtoi(s string) int32 {
	n, _ := strconv.Atoi(s)
	return int32(n)
}
