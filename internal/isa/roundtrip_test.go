package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomProgram emits a random but well-formed program mixing every
// operand form the disassembler can print.
func randomProgram(rng *rand.Rand) *Program {
	b := NewBuilder("fuzz")
	reg := func() Reg { return Reg(rng.Intn(16)) }
	n := 3 + rng.Intn(20)
	for i := 0; i < n; i++ {
		switch rng.Intn(12) {
		case 0:
			b.MovI(reg(), int64(rng.Intn(1<<16))-1<<15)
		case 1:
			b.Add(reg(), reg(), reg())
		case 2:
			b.AddI(reg(), reg(), int64(rng.Intn(1000)))
		case 3:
			b.FMul(reg(), reg(), reg())
		case 4:
			b.Ld(reg(), reg(), int64(rng.Intn(64))*8-128)
		case 5:
			b.St(reg(), int64(rng.Intn(64))*8, reg())
		case 6:
			b.LdS(reg(), reg(), int64(rng.Intn(16))*8)
		case 7:
			b.SetLE(reg(), reg(), reg())
		case 8:
			b.SReg(reg(), SpecialReg(rng.Intn(7)))
		case 9:
			b.Param(reg(), rng.Intn(4))
		case 10:
			b.FSqrt(reg(), reg())
		case 11:
			b.Sel(reg(), reg(), reg())
		}
	}
	// A forward conditional branch over a small tail.
	lbl := b.FreshLabel("f")
	b.CBra(reg(), lbl)
	b.Nop()
	b.Label(lbl)
	b.Exit()
	return b.MustBuild()
}

// TestParseDisasmRoundTripProperty: Parse(Disasm(p)) must reproduce p
// exactly, for arbitrary generated programs.
func TestParseDisasmRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := randomProgram(rng)
		parsed, err := Parse("fuzz", orig.Disasm())
		if err != nil {
			t.Logf("parse error: %v\n%s", err, orig.Disasm())
			return false
		}
		if parsed.Len() != orig.Len() {
			return false
		}
		for pc := int32(0); pc < int32(orig.Len()); pc++ {
			a, b := orig.At(pc), parsed.At(pc)
			if a != b {
				t.Logf("pc %d: %v vs %v", pc, a, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
