package analysis_test

import (
	"testing"

	"cawa/internal/isa/analysis"
	"cawa/internal/simt"
	"cawa/internal/workloads"
)

// workloadKernels drains every registered workload's launch sequence
// and returns one representative kernel per distinct program.
func workloadKernels(t *testing.T) map[string]*simt.Kernel {
	t.Helper()
	out := make(map[string]*simt.Kernel)
	for _, name := range workloads.Names() {
		w, err := workloads.New(name, workloads.DefaultParams())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Take the first kernel only: iterative workloads inspect memory
		// between launches, which requires actually running them, and
		// every distinct program appears in the first iteration.
		k, ok := w.Next()
		if !ok {
			t.Fatalf("%s: no kernel", name)
		}
		out[name+"/"+k.Name] = k
	}
	return out
}

func launchOf(k *simt.Kernel) *analysis.Launch {
	return &analysis.Launch{
		GridDim:     k.GridDim,
		BlockDim:    k.BlockDim,
		SharedWords: k.SharedWords,
		Params:      k.Params,
	}
}

// TestWorkloadsVerifyClean asserts the twelve workload kernels produce
// zero findings of any severity — the acceptance gate for the verifier
// staying useful rather than vacuous.
func TestWorkloadsVerifyClean(t *testing.T) {
	kernels := workloadKernels(t)
	if len(kernels) < 12 {
		t.Fatalf("expected at least 12 workload kernels, got %d", len(kernels))
	}
	for name, k := range kernels {
		rep := analysis.Analyze(k.Program, analysis.Options{Launch: launchOf(k)})
		for _, f := range rep.Findings {
			t.Errorf("%s: %s", name, f)
		}
		if rep.RegsUsed == 0 || rep.MaxLive == 0 || len(rep.Blocks) == 0 {
			t.Errorf("%s: implausible pressure report: %+v", name, rep)
		}
	}
}
