package analysis

import (
	"fmt"

	"cawa/internal/isa"
)

// The bounds pass tracks, per register, values of the form
//
//	c0 + cTid*tid + cCtaid*ctaid + cLane*lane + cWarp*warp + cGtid*gtid
//
// via abstract interpretation. Kernel parameters resolve to their
// concrete launch values (buffer base addresses), and the block-size /
// grid-size special registers resolve to constants, so the common
// "param base + element stride * thread index" addressing of the
// workload kernels stays fully symbolic. Anything else (loads, division,
// data-dependent arithmetic) widens to ⊤ and is exempt from checking.

const nSreg = 7

// aff is one abstract register value.
type aff struct {
	top bool
	c0  int64
	co  [nSreg]int64
}

func affConst(v int64) aff { return aff{c0: v} }

func affTop() aff { return aff{top: true} }

func (a aff) isConst() (int64, bool) {
	if a.top {
		return 0, false
	}
	for _, c := range a.co {
		if c != 0 {
			return 0, false
		}
	}
	return a.c0, true
}

func (a aff) eq(b aff) bool { return a == b }

func affJoin(a, b aff) aff {
	if a.eq(b) {
		return a
	}
	return affTop()
}

func affAdd(a, b aff) aff {
	if a.top || b.top {
		return affTop()
	}
	r := aff{c0: a.c0 + b.c0}
	for i := range r.co {
		r.co[i] = a.co[i] + b.co[i]
	}
	return r
}

func affNeg(a aff) aff {
	if a.top {
		return a
	}
	r := aff{c0: -a.c0}
	for i := range r.co {
		r.co[i] = -a.co[i]
	}
	return r
}

func affScale(a aff, k int64) aff {
	if a.top {
		return a
	}
	r := aff{c0: a.c0 * k}
	for i := range r.co {
		r.co[i] = a.co[i] * k
	}
	return r
}

func affMul(a, b aff) aff {
	if ka, ok := a.isConst(); ok {
		return affScale(b, ka)
	}
	if kb, ok := b.isConst(); ok {
		return affScale(a, kb)
	}
	return affTop()
}

// affState is the abstract register file.
type affState [isa.NumRegs]aff

func affStateJoin(a, b affState) affState {
	var r affState
	for i := range r {
		r[i] = affJoin(a[i], b[i])
	}
	return r
}

// affTransfer interprets one instruction.
func affTransfer(in isa.Instr, st affState, l *Launch) affState {
	if !in.Op.HasDst() {
		return st
	}
	b := func() aff {
		if in.BImm {
			return affConst(in.Imm)
		}
		return st[in.B]
	}
	var v aff
	switch in.Op {
	case isa.OpMovI:
		v = affConst(in.Imm)
	case isa.OpMov:
		v = st[in.A]
	case isa.OpParam:
		if int(in.Imm) < len(l.Params) {
			v = affConst(l.Params[in.Imm])
		} else {
			v = affTop()
		}
	case isa.OpSReg:
		switch sr := isa.SpecialReg(in.Imm); sr {
		case isa.SRNtid:
			v = affConst(int64(l.BlockDim))
		case isa.SRNctaid:
			v = affConst(int64(l.GridDim))
		case isa.SRTid, isa.SRCtaid, isa.SRLane, isa.SRWarp, isa.SRGTid:
			v.co[sr] = 1
		default:
			v = affTop()
		}
	case isa.OpAdd:
		v = affAdd(st[in.A], b())
	case isa.OpSub:
		v = affAdd(st[in.A], affNeg(b()))
	case isa.OpMul:
		v = affMul(st[in.A], b())
	case isa.OpMad:
		v = affAdd(st[in.Dst], affMul(st[in.A], b()))
	case isa.OpShl:
		if k, ok := b().isConst(); ok && k >= 0 && k < 32 {
			v = affScale(st[in.A], int64(1)<<k)
		} else {
			v = affTop()
		}
	default:
		v = affTop()
	}
	st[in.Dst] = v
	return st
}

// srRange returns the inclusive value range of a per-lane special
// register under the launch geometry.
func srRange(sr isa.SpecialReg, l *Launch) (lo, hi int64) {
	warpSize := l.WarpSize
	if warpSize <= 0 {
		warpSize = 32
	}
	switch sr {
	case isa.SRTid:
		return 0, int64(l.BlockDim - 1)
	case isa.SRCtaid:
		return 0, int64(l.GridDim - 1)
	case isa.SRLane:
		n := warpSize
		if l.BlockDim < n {
			n = l.BlockDim
		}
		return 0, int64(n - 1)
	case isa.SRWarp:
		return 0, int64((l.BlockDim+warpSize-1)/warpSize - 1)
	case isa.SRGTid:
		return 0, int64(l.GridDim*l.BlockDim - 1)
	}
	return 0, 0
}

// bounds returns the inclusive [lo, hi] byte range the affine value can
// take under the launch geometry.
func (a aff) bounds(l *Launch) (lo, hi int64) {
	lo, hi = a.c0, a.c0
	for i, c := range a.co {
		if c == 0 {
			continue
		}
		rlo, rhi := srRange(isa.SpecialReg(i), l)
		if c > 0 {
			lo += c * rlo
			hi += c * rhi
		} else {
			lo += c * rhi
			hi += c * rlo
		}
	}
	return lo, hi
}

// boundsCheck walks the program with the stable abstract state and
// flags memory accesses whose affine address range escapes the
// allocation. An access is an error when even its smallest reachable
// address is out of bounds — every lane that executes it faults. With
// StrictBounds set, ranges whose upper end escapes are errors too
// (guarded kernels routinely round the grid up past the buffer, so
// strict mode is opt-in).
func boundsCheck(c *cfg, l *Launch, strict bool, rep *Report) {
	nb := len(c.blocks)
	in := make([]affState, nb)
	out := make([]affState, nb)
	solved := make([]bool, nb)

	transfer := func(b *Block, st affState) affState {
		for pc := b.Start; pc < b.End; pc++ {
			st = affTransfer(c.p.At(pc), st, l)
		}
		return st
	}
	// Iterate to fixpoint. Blocks contribute to the meet only once they
	// have been solved at least once; the entry block additionally meets
	// the zero-initialized register file the SIMT core provides.
	for iter, changed := 0, true; changed && iter < 4*nb+8; iter++ {
		changed = false
		for i := 0; i < nb; i++ {
			if !c.reachable[i] {
				continue
			}
			var st affState
			have := false
			if i == 0 {
				st = affState{}
				have = true
			}
			for _, pr := range c.blocks[i].Preds {
				if !c.reachable[pr] || !solved[pr] {
					continue
				}
				if !have {
					st = out[pr]
					have = true
				} else {
					st = affStateJoin(st, out[pr])
				}
			}
			if !have {
				continue
			}
			in[i] = st
			o := transfer(&c.blocks[i], st)
			if !solved[i] || o != out[i] {
				solved[i] = true
				out[i] = o
				changed = true
			}
		}
	}

	check := func(pc int32, addr aff, size int64, rule Rule, space string) {
		if addr.top || size <= 0 {
			return
		}
		lo, hi := addr.bounds(l)
		switch {
		case lo < 0 || lo+8 > size:
			rep.add(Finding{
				Rule: rule, Severity: SevError, PC: pc,
				Msg: fmt.Sprintf("%s access range [%d, %d]+8 escapes the %d-byte allocation for every executing lane", space, lo, hi, size),
			})
		case strict && hi+8 > size:
			rep.add(Finding{
				Rule: rule, Severity: SevError, PC: pc,
				Msg: fmt.Sprintf("%s access upper bound %d+8 escapes the %d-byte allocation", space, hi, size),
			})
		}
	}

	sharedBytes := int64(l.SharedWords) * 8
	for i := 0; i < nb; i++ {
		if !c.reachable[i] {
			continue
		}
		st := in[i]
		for pc := c.blocks[i].Start; pc < c.blocks[i].End; pc++ {
			instr := c.p.At(pc)
			switch instr.Op {
			case isa.OpLd, isa.OpSt:
				addr := affAdd(st[instr.A], affConst(instr.Imm))
				check(pc, addr, l.GlobalBytes, RuleOOBGlobal, "global")
			case isa.OpLdS, isa.OpStS:
				if sharedBytes == 0 {
					rep.add(Finding{
						Rule: RuleOOBShared, Severity: SevError, PC: pc,
						Msg: "shared-memory access but the kernel allocates no shared memory",
					})
					break
				}
				addr := affAdd(st[instr.A], affConst(instr.Imm))
				check(pc, addr, sharedBytes, RuleOOBShared, "shared")
			case isa.OpParam:
				if int(instr.Imm) >= len(l.Params) {
					rep.add(Finding{
						Rule: RuleParamRange, Severity: SevError, PC: pc,
						Msg: fmt.Sprintf("param[%d] read but the launch passes only %d parameters", instr.Imm, len(l.Params)),
					})
				}
			}
			st = affTransfer(instr, st, l)
		}
	}
}
