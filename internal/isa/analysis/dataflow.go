package analysis

import (
	"fmt"
	"math/bits"

	"cawa/internal/isa"
)

// regMask is a bit set over the 64 general-purpose registers.
type regMask uint64

func (m regMask) has(r isa.Reg) bool { return m&(1<<r) != 0 }

// readMask returns the registers an instruction reads.
func readMask(in isa.Instr) regMask {
	var m regMask
	if in.Op.ReadsA() {
		m |= 1 << in.A
	}
	if in.Op.ReadsB() && !in.BImm {
		m |= 1 << in.B
	}
	if in.Op.ReadsDst() {
		m |= 1 << in.Dst
	}
	return m
}

// writeMask returns the register an instruction defines, as a mask.
func writeMask(in isa.Instr) regMask {
	if in.Op.HasDst() {
		return 1 << in.Dst
	}
	return 0
}

// eachReg calls f for every register in the mask, lowest first.
func eachReg(m regMask, f func(isa.Reg)) {
	for m != 0 {
		r := isa.Reg(bits.TrailingZeros64(uint64(m)))
		f(r)
		m &= m - 1
	}
}

// defBeforeUse runs a forward must-defined dataflow (meet = intersection
// over predecessors) and reports every read of a register that is not
// definitely assigned on all paths from the entry. The simulator zeroes
// register files, so such reads execute — but they almost always mark a
// dropped initialization, the defect class GPGPU-sim's PTX checker
// guards against.
func defBeforeUse(c *cfg, rep *Report) {
	nb := len(c.blocks)
	in := make([]regMask, nb)
	out := make([]regMask, nb)
	const full = ^regMask(0)
	for i := range out {
		if i != 0 {
			in[i] = full
			out[i] = full
		}
	}
	transfer := func(b *Block, defined regMask) regMask {
		for pc := b.Start; pc < b.End; pc++ {
			defined |= writeMask(c.p.At(pc))
		}
		return defined
	}
	out[0] = transfer(&c.blocks[0], 0)
	for changed := true; changed; {
		changed = false
		for i := 1; i < nb; i++ {
			if !c.reachable[i] {
				continue
			}
			m := full
			for _, pr := range c.blocks[i].Preds {
				if c.reachable[pr] {
					m &= out[pr]
				}
			}
			in[i] = m
			if o := transfer(&c.blocks[i], m); o != out[i] {
				out[i] = o
				changed = true
			}
		}
	}

	for i := 0; i < nb; i++ {
		if !c.reachable[i] {
			continue
		}
		defined := in[i]
		for pc := c.blocks[i].Start; pc < c.blocks[i].End; pc++ {
			instr := c.p.At(pc)
			eachReg(readMask(instr)&^defined, func(r isa.Reg) {
				rep.add(Finding{
					Rule: RuleDefBeforeUse, Severity: SevError, PC: pc,
					Msg: fmt.Sprintf("r%d read before any definition reaches this point", r),
				})
			})
			defined |= writeMask(instr)
		}
	}
}

// liveness runs a backward liveness dataflow, reports dead stores
// (pure register writes whose value can never be read), and fills the
// pressure section of the report: registers referenced, the maximum
// number of simultaneously live registers, and per-block live-in counts.
func liveness(c *cfg, rep *Report) {
	nb := len(c.blocks)
	liveIn := make([]regMask, nb)
	liveOut := make([]regMask, nb)

	transfer := func(b *Block, live regMask) regMask {
		for pc := b.End - 1; pc >= b.Start; pc-- {
			instr := c.p.At(pc)
			live &^= writeMask(instr)
			live |= readMask(instr)
		}
		return live
	}
	for changed := true; changed; {
		changed = false
		for i := nb - 1; i >= 0; i-- {
			if !c.reachable[i] {
				continue
			}
			var o regMask
			for _, s := range c.blocks[i].Succs {
				o |= liveIn[s]
			}
			liveOut[i] = o
			if li := transfer(&c.blocks[i], o); li != liveIn[i] {
				liveIn[i] = li
				changed = true
			}
		}
	}

	var used regMask
	maxLive := 0
	rep.BlockLiveIn = make([]int, nb)
	for i := 0; i < nb; i++ {
		if !c.reachable[i] {
			continue
		}
		rep.BlockLiveIn[i] = bits.OnesCount64(uint64(liveIn[i]))
		live := liveOut[i]
		for pc := c.blocks[i].End - 1; pc >= c.blocks[i].Start; pc-- {
			instr := c.p.At(pc)
			used |= readMask(instr) | writeMask(instr)
			if w := writeMask(instr); w != 0 && live&w == 0 && !instr.Op.IsLoad() {
				rep.add(Finding{
					Rule: RuleDeadStore, Severity: SevWarn, PC: pc,
					Msg: fmt.Sprintf("r%d is written but never read afterwards", instr.Dst),
				})
			}
			live &^= writeMask(instr)
			live |= readMask(instr)
			if n := bits.OnesCount64(uint64(live)); n > maxLive {
				maxLive = n
			}
		}
	}
	rep.RegsUsed = bits.OnesCount64(uint64(used))
	rep.MaxLive = maxLive
}
