package analysis_test

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"cawa/internal/isa"
	"cawa/internal/isa/analysis"
)

func mustParse(t *testing.T, name, src string) *isa.Program {
	t.Helper()
	p, err := isa.Parse(name, src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return p
}

func findings(rep *analysis.Report, rule analysis.Rule) []analysis.Finding {
	var out []analysis.Finding
	for _, f := range rep.Findings {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

func wantRule(t *testing.T, rep *analysis.Report, rule analysis.Rule, n int) {
	t.Helper()
	if got := findings(rep, rule); len(got) != n {
		t.Errorf("want %d %s findings, got %d: %v", n, rule, len(got), rep.Findings)
	}
}

func TestDefBeforeUse(t *testing.T) {
	p := mustParse(t, "dbu", `
		add r1, r2, r3
		exit
	`)
	rep := analysis.Analyze(p, analysis.Options{})
	wantRule(t, rep, analysis.RuleDefBeforeUse, 2) // r2 and r3
	// r1 is also a dead store: written, never read.
	wantRule(t, rep, analysis.RuleDeadStore, 1)
	if err := analysis.Verify(p, analysis.Options{}); err == nil {
		t.Fatal("Verify should fail on def-before-use")
	}
}

func TestDefBeforeUseGuardedPathsClean(t *testing.T) {
	// r2 is defined on both sides of the branch before the use: clean.
	p := mustParse(t, "guarded", `
		sreg r0, %tid
		cbraz r0, @else
		movi r2, 1
		bra @join
	else:
		movi r2, 2
	join:
		st.global [r2+0], r2
		exit
	`)
	rep := analysis.Analyze(p, analysis.Options{})
	wantRule(t, rep, analysis.RuleDefBeforeUse, 0)
}

func TestDefBeforeUseOneArmMissing(t *testing.T) {
	// r2 defined on only one path to the use.
	p := mustParse(t, "onearm", `
		sreg r0, %tid
		cbraz r0, @join
		movi r2, 1
	join:
		st.global [r2+0], r2
		exit
	`)
	rep := analysis.Analyze(p, analysis.Options{})
	if len(findings(rep, analysis.RuleDefBeforeUse)) == 0 {
		t.Fatalf("want def-before-use for r2, got %v", rep.Findings)
	}
}

func TestUnreachable(t *testing.T) {
	p := mustParse(t, "unreach", `
		bra @end
		nop
	end:
		exit
	`)
	rep := analysis.Analyze(p, analysis.Options{})
	wantRule(t, rep, analysis.RuleUnreachable, 1)
}

func TestFallthroughOffEnd(t *testing.T) {
	p := isa.NewProgramUnchecked("fall", []isa.Instr{
		{Op: isa.OpMovI, Dst: isa.R1, Imm: 3},
	})
	rep := analysis.Analyze(p, analysis.Options{})
	wantRule(t, rep, analysis.RuleFallthrough, 1)
}

func TestBranchTargetOutOfRange(t *testing.T) {
	p := isa.NewProgramUnchecked("badtarget", []isa.Instr{
		{Op: isa.OpBra, Imm: 7},
		{Op: isa.OpExit},
	})
	rep := analysis.Analyze(p, analysis.Options{})
	wantRule(t, rep, analysis.RuleBranchTarget, 1)
}

func TestDivergentBarrier(t *testing.T) {
	p := mustParse(t, "divbar", `
		sreg r0, %tid
		cbraz r0, @skip
		bar.sync
	skip:
		exit
	`)
	rep := analysis.Analyze(p, analysis.Options{})
	wantRule(t, rep, analysis.RuleDivergentBarrier, 1)
}

func TestUniformBarrierClean(t *testing.T) {
	// The branch condition only depends on an immediate: every lane
	// agrees, so the barrier inside the "divergent" region is safe.
	p := mustParse(t, "unibar", `
		movi r1, 4
		cbraz r1, @skip
		bar.sync
	skip:
		exit
	`)
	rep := analysis.Analyze(p, analysis.Options{})
	wantRule(t, rep, analysis.RuleDivergentBarrier, 0)
}

func TestBarrierAtReconvergenceClean(t *testing.T) {
	// The classic tree-reduction shape: the barrier IS the
	// reconvergence point of the divergent branch, which is legal.
	p := mustParse(t, "barrpc", `
		sreg r0, %tid
		cbraz r0, @join
		movi r1, 1
	join:
		bar.sync
		exit
	`)
	rep := analysis.Analyze(p, analysis.Options{})
	wantRule(t, rep, analysis.RuleDivergentBarrier, 0)
}

func TestControlDependentTaint(t *testing.T) {
	// r2 starts uniform but is redefined under divergent control, so
	// the second branch is divergent and its barrier is flagged.
	p := mustParse(t, "taint", `
		sreg r0, %tid
		movi r2, 0
		cbraz r0, @join
		movi r2, 1
	join:
		cbraz r2, @skip
		bar.sync
	skip:
		exit
	`)
	rep := analysis.Analyze(p, analysis.Options{})
	wantRule(t, rep, analysis.RuleDivergentBarrier, 1)
}

func TestReconvergenceMismatch(t *testing.T) {
	p := mustParse(t, "reconv", `
		sreg r0, %tid
		cbraz r0, @skip
		nop
	skip:
		exit
	`)
	instrs := make([]isa.Instr, p.Len())
	for pc := range instrs {
		instrs[pc] = p.At(int32(pc))
	}
	instrs[1].Rpc = 2 // true immediate post-dominator is 3
	damaged := isa.NewProgramUnchecked("reconv", instrs)
	rep := analysis.Analyze(damaged, analysis.Options{})
	wantRule(t, rep, analysis.RuleReconvergence, 1)
}

func TestStackDepthBound(t *testing.T) {
	p := mustParse(t, "deep", `
		sreg r0, %tid
		cbraz r0, @out
		sreg r1, %lane
		cbraz r1, @out
		nop
	out:
		exit
	`)
	rep := analysis.Analyze(p, analysis.Options{MaxStackDepth: 1})
	wantRule(t, rep, analysis.RuleStackDepth, 1)
	if rep.StackDepth != 2 {
		t.Errorf("StackDepth = %d, want 2", rep.StackDepth)
	}
	if rep.DivergentBranches != 2 {
		t.Errorf("DivergentBranches = %d, want 2", rep.DivergentBranches)
	}
	clean := analysis.Analyze(p, analysis.Options{})
	wantRule(t, clean, analysis.RuleStackDepth, 0)
}

func TestOOBShared(t *testing.T) {
	p := mustParse(t, "oobsh", `
		sreg r0, %tid
		mul r1, r0, 8
		st.shared [r1+16384], r0
		exit
	`)
	launch := &analysis.Launch{GridDim: 1, BlockDim: 64, SharedWords: 64}
	rep := analysis.Analyze(p, analysis.Options{Launch: launch})
	wantRule(t, rep, analysis.RuleOOBShared, 1)
}

func TestOOBSharedStrictUpperBound(t *testing.T) {
	// tid*8 for tid in [0,64) needs 512 bytes; only 32 words = 256
	// bytes are allocated. The lower bound (0) is fine, so only strict
	// mode flags it.
	p := mustParse(t, "oobstrict", `
		sreg r0, %tid
		mul r1, r0, 8
		st.shared [r1+0], r0
		exit
	`)
	launch := &analysis.Launch{GridDim: 1, BlockDim: 64, SharedWords: 32}
	rep := analysis.Analyze(p, analysis.Options{Launch: launch})
	wantRule(t, rep, analysis.RuleOOBShared, 0)
	strict := analysis.Analyze(p, analysis.Options{Launch: launch, StrictBounds: true})
	wantRule(t, strict, analysis.RuleOOBShared, 1)
}

func TestSharedAccessWithoutAllocation(t *testing.T) {
	p := mustParse(t, "nosh", `
		sreg r0, %tid
		st.shared [r0+0], r0
		exit
	`)
	launch := &analysis.Launch{GridDim: 1, BlockDim: 32}
	rep := analysis.Analyze(p, analysis.Options{Launch: launch})
	wantRule(t, rep, analysis.RuleOOBShared, 1)
}

func TestOOBGlobal(t *testing.T) {
	p := mustParse(t, "oobg", `
		param r1, param[0]
		st.global [r1+65536], r1
		exit
	`)
	launch := &analysis.Launch{GridDim: 1, BlockDim: 32, Params: []int64{1024}, GlobalBytes: 4096}
	rep := analysis.Analyze(p, analysis.Options{Launch: launch})
	wantRule(t, rep, analysis.RuleOOBGlobal, 1)

	// Without a known memory size the check is skipped.
	nosize := analysis.Analyze(p, analysis.Options{Launch: &analysis.Launch{GridDim: 1, BlockDim: 32, Params: []int64{1024}}})
	wantRule(t, nosize, analysis.RuleOOBGlobal, 0)
}

func TestOOBGlobalNegative(t *testing.T) {
	p := mustParse(t, "oobneg", `
		param r1, param[0]
		ld.global r2, [r1-65536]
		st.global [r1+0], r2
		exit
	`)
	launch := &analysis.Launch{GridDim: 1, BlockDim: 32, Params: []int64{1024}, GlobalBytes: 1 << 20}
	rep := analysis.Analyze(p, analysis.Options{Launch: launch})
	wantRule(t, rep, analysis.RuleOOBGlobal, 1)
}

func TestParamRange(t *testing.T) {
	p := mustParse(t, "param", `
		param r1, param[3]
		st.global [r1+0], r1
		exit
	`)
	launch := &analysis.Launch{GridDim: 1, BlockDim: 32, Params: []int64{4}}
	rep := analysis.Analyze(p, analysis.Options{Launch: launch})
	wantRule(t, rep, analysis.RuleParamRange, 1)
}

func TestDeadStoreWarnsButVerifies(t *testing.T) {
	p := mustParse(t, "dead", `
		movi r1, 5
		exit
	`)
	rep := analysis.Analyze(p, analysis.Options{})
	wantRule(t, rep, analysis.RuleDeadStore, 1)
	if got := rep.Findings[0].Severity; got != analysis.SevWarn {
		t.Errorf("dead store severity = %v, want warn", got)
	}
	if err := analysis.Verify(p, analysis.Options{}); err != nil {
		t.Errorf("warnings must not fail Verify: %v", err)
	}
}

func TestDeadLoadNotFlagged(t *testing.T) {
	// A load whose result is unused still has cache side effects the
	// timing model cares about; it must not count as a dead store.
	p := mustParse(t, "deadld", `
		param r1, param[0]
		ld.global r2, [r1+0]
		exit
	`)
	rep := analysis.Analyze(p, analysis.Options{})
	wantRule(t, rep, analysis.RuleDeadStore, 0)
}

func TestAccumulatorLoopClean(t *testing.T) {
	// Loop-carried accumulator: defined before the loop, read and
	// written inside, read after. Neither dead nor undefined.
	p := mustParse(t, "acc", `
		movi r1, 0
		movi r2, 10
		sreg r3, %tid
	loop:
		cbraz r2, @done
		add r1, r1, r3
		sub r2, r2, 1
		bra @loop
	done:
		param r4, param[0]
		st.global [r4+0], r1
		exit
	`)
	rep := analysis.Analyze(p, analysis.Options{})
	if len(rep.Findings) != 0 {
		t.Fatalf("expected clean report, got %v", rep.Findings)
	}
	if rep.Loops != 1 {
		t.Errorf("Loops = %d, want 1", rep.Loops)
	}
}

func TestBlockStructure(t *testing.T) {
	p := mustParse(t, "blocks", `
		sreg r0, %tid
		cbraz r0, @skip
		nop
	skip:
		exit
	`)
	rep := analysis.Analyze(p, analysis.Options{})
	if len(rep.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3 (%+v)", len(rep.Blocks), rep.Blocks)
	}
	// Entry dominates everything; both later blocks have it on their
	// dominator path.
	if rep.Blocks[0].Idom != -1 {
		t.Errorf("entry Idom = %d, want -1", rep.Blocks[0].Idom)
	}
	if rep.Blocks[1].Idom != 0 || rep.Blocks[2].Idom != 0 {
		t.Errorf("Idoms = %d, %d, want 0, 0", rep.Blocks[1].Idom, rep.Blocks[2].Idom)
	}
}

func TestReportJSON(t *testing.T) {
	p := mustParse(t, "json", `
		sreg r0, %tid
		cbraz r0, @skip
		bar.sync
	skip:
		exit
	`)
	rep := analysis.Analyze(p, analysis.Options{})
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	for _, want := range []string{`"rule":"divergent-barrier"`, `"severity":"error"`, `"program":"json"`, `"blocks"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON report missing %s:\n%s", want, s)
		}
	}
	var back analysis.Report
	if err := json.Unmarshal(raw, &back); err == nil {
		if back.Program != "json" || len(back.Findings) != len(rep.Findings) {
			t.Errorf("round-trip mismatch: %+v", back)
		}
	}
}

func TestVerifyErrorMessage(t *testing.T) {
	p := mustParse(t, "msg", `
		add r1, r2, r3
		exit
	`)
	err := analysis.Verify(p, analysis.Options{})
	var verr *analysis.VerifyError
	if !errors.As(err, &verr) {
		t.Fatalf("want *VerifyError, got %T %v", err, err)
	}
	if len(verr.Findings) != 2 {
		t.Errorf("findings = %d, want 2", len(verr.Findings))
	}
	if !strings.Contains(err.Error(), "def-before-use") {
		t.Errorf("message should name the rule: %v", err)
	}
}
