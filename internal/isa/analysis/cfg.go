package analysis

import (
	"cawa/internal/isa"
)

// Block is one basic block: a maximal straight-line instruction run
// [Start, End) entered only at Start and left only at End-1.
type Block struct {
	ID    int   `json:"id"`
	Start int32 `json:"start"`
	End   int32 `json:"end"`
	Succs []int `json:"succs,omitempty"`
	Preds []int `json:"preds,omitempty"`
	// Idom is the immediate dominator block, -1 for the entry block and
	// unreachable blocks.
	Idom int `json:"idom"`
	// LoopHead reports whether some back edge targets this block (a
	// natural-loop header under the dominator tree).
	LoopHead bool `json:"loopHead,omitempty"`
}

// cfg is the per-program analysis context shared by all passes.
type cfg struct {
	p         *isa.Program
	n         int // instruction count; node n is the virtual exit
	blocks    []Block
	blockOf   []int  // pc -> block ID
	reachable []bool // per block, from block 0
	// ipdom[pc] is the instruction-level immediate post-dominator of pc
	// (n for "reconverges only at thread exit").
	ipdom []int32
}

// bitset is a fixed-capacity bit set, mirroring the machinery
// internal/isa uses for its post-dominator solve.
type bitset []uint64

func newBitset(n int) bitset       { return make(bitset, (n+63)/64) }
func (b bitset) set(i int)         { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int)       { b[i/64] &^= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool    { return b[i/64]&(1<<(uint(i)%64)) != 0 }
func (b bitset) copyFrom(o bitset) { copy(b, o) }

func (b bitset) fill(n int) {
	for i := range b {
		b[i] = ^uint64(0)
	}
	if tail := uint(n) % 64; tail != 0 {
		b[len(b)-1] = (1 << tail) - 1
	}
}

func (b bitset) intersect(o bitset) {
	for i := range b {
		b[i] &= o[i]
	}
}

func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

func (b bitset) isSubset(o bitset) bool {
	for i := range b {
		if b[i]&^o[i] != 0 {
			return false
		}
	}
	return true
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// succsOf returns the successors of pc with the virtual exit node n
// substituted for "off the end" and OpExit. Callers must have verified
// targets are in range (preflight).
func (c *cfg) succsOf(pc int32) []int32 {
	s := c.p.Successors(pc)
	if s == nil {
		return []int32{int32(c.n)}
	}
	return s
}

// buildCFG partitions the program into basic blocks and links them.
// The program must have passed preflight (all successors in [0, n]).
func buildCFG(p *isa.Program) *cfg {
	n := p.Len()
	c := &cfg{p: p, n: n}

	leader := make([]bool, n+1)
	leader[0] = true
	for pc := 0; pc < n; pc++ {
		op := p.At(int32(pc)).Op
		if op.IsBranch() || op == isa.OpExit {
			leader[pc+1] = true
			if op.IsBranch() {
				if t := p.At(int32(pc)).Target(); t >= 0 && int(t) < n {
					leader[t] = true
				}
			}
		}
	}

	c.blockOf = make([]int, n)
	for pc := 0; pc < n; pc++ {
		if leader[pc] {
			c.blocks = append(c.blocks, Block{ID: len(c.blocks), Start: int32(pc), Idom: -1})
		}
		c.blockOf[pc] = len(c.blocks) - 1
	}
	for i := range c.blocks {
		if i+1 < len(c.blocks) {
			c.blocks[i].End = c.blocks[i+1].Start
		} else {
			c.blocks[i].End = int32(n)
		}
	}

	// Edges from each block's terminator.
	for i := range c.blocks {
		b := &c.blocks[i]
		for _, t := range c.succsOf(b.End - 1) {
			if int(t) == n {
				continue // virtual exit
			}
			sb := c.blockOf[t]
			if !containsInt(b.Succs, sb) {
				b.Succs = append(b.Succs, sb)
			}
		}
	}
	for i := range c.blocks {
		for _, s := range c.blocks[i].Succs {
			c.blocks[s].Preds = append(c.blocks[s].Preds, i)
		}
	}

	// Reachability from the entry block.
	c.reachable = make([]bool, len(c.blocks))
	stack := []int{0}
	c.reachable[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range c.blocks[b].Succs {
			if !c.reachable[s] {
				c.reachable[s] = true
				stack = append(stack, s)
			}
		}
	}

	c.computeDominators()
	c.computePostdominators()
	return c
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// computeDominators solves block-level dominators iteratively with
// bitsets and derives immediate dominators and natural-loop headers.
func (c *cfg) computeDominators() {
	nb := len(c.blocks)
	dom := make([]bitset, nb)
	for i := range dom {
		dom[i] = newBitset(nb)
		if i == 0 {
			dom[i].set(0)
		} else {
			dom[i].fill(nb)
		}
	}
	tmp := newBitset(nb)
	for changed := true; changed; {
		changed = false
		for i := 1; i < nb; i++ {
			if !c.reachable[i] {
				continue
			}
			tmp.fill(nb)
			any := false
			for _, pr := range c.blocks[i].Preds {
				if !c.reachable[pr] {
					continue
				}
				tmp.intersect(dom[pr])
				any = true
			}
			if !any {
				continue
			}
			tmp.set(i)
			if !tmp.equal(dom[i]) {
				dom[i].copyFrom(tmp)
				changed = true
			}
		}
	}

	// Immediate dominator: the strict dominator dominated by every
	// other strict dominator.
	for i := 1; i < nb; i++ {
		if !c.reachable[i] {
			continue
		}
		strict := newBitset(nb)
		strict.copyFrom(dom[i])
		strict.clear(i)
		for d := 0; d < nb; d++ {
			if strict.has(d) && strict.isSubset(dom[d]) {
				c.blocks[i].Idom = d
				break
			}
		}
	}

	// Back edge b -> h with h dominating b marks h as a loop header.
	for i := 0; i < nb; i++ {
		if !c.reachable[i] {
			continue
		}
		for _, s := range c.blocks[i].Succs {
			if dom[i].has(s) {
				c.blocks[s].LoopHead = true
			}
		}
	}
}

// computePostdominators solves instruction-level post-dominators (the
// same fixpoint internal/isa runs when assigning reconvergence PCs) and
// records each instruction's immediate post-dominator. Node n is the
// virtual exit.
func (c *cfg) computePostdominators() {
	n := c.n
	total := n + 1
	pdom := make([]bitset, total)
	for i := range pdom {
		pdom[i] = newBitset(total)
	}
	for i := 0; i < n; i++ {
		pdom[i].fill(total)
	}
	pdom[n].set(n)

	succs := make([][]int32, n)
	for pc := 0; pc < n; pc++ {
		succs[pc] = c.succsOf(int32(pc))
	}

	tmp := newBitset(total)
	for changed := true; changed; {
		changed = false
		for pc := n - 1; pc >= 0; pc-- {
			tmp.fill(total)
			for _, s := range succs[pc] {
				tmp.intersect(pdom[s])
			}
			tmp.set(pc)
			if !tmp.equal(pdom[pc]) {
				pdom[pc].copyFrom(tmp)
				changed = true
			}
		}
	}

	c.ipdom = make([]int32, n)
	for pc := 0; pc < n; pc++ {
		c.ipdom[pc] = int32(n)
		strict := newBitset(total)
		strict.copyFrom(pdom[pc])
		strict.clear(pc)
		for d := 0; d < total; d++ {
			if strict.has(d) && strict.isSubset(pdom[d]) {
				c.ipdom[pc] = int32(d)
				break
			}
		}
	}
}

// region returns the set of PCs strictly inside the divergent region of
// the conditional branch at pc: everything reachable from the branch's
// successors without passing through the reconvergence point rpc. The
// rpc itself is excluded — at rpc the warp has already reconverged.
func (c *cfg) region(pc, rpc int32) []bool {
	in := make([]bool, c.n)
	var stack []int32
	push := func(t int32) {
		if int(t) >= c.n || t == rpc || in[t] {
			return
		}
		in[t] = true
		stack = append(stack, t)
	}
	for _, s := range c.succsOf(pc) {
		push(s)
	}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range c.succsOf(t) {
			push(s)
		}
	}
	return in
}
