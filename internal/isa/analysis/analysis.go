// Package analysis is the static verifier for mini-ISA programs: the
// role GPGPU-sim's PTX checker plays for the paper's infrastructure.
// It builds a basic-block CFG with dominators and post-dominators on
// top of isa.Program.Successors and runs dataflow passes over it:
//
//   - structural: branch targets in range, no fallthrough off the end,
//     unreachable code, stored reconvergence PCs matching the immediate
//     post-dominators
//   - def-before-use: no register read before a definition reaches it
//     on every path
//   - dead stores: pure register writes whose value is never read
//   - barrier uniformity: no barrier reachable under a possibly
//     divergent branch before its reconvergence point (such a barrier
//     deadlocks the masked-off lanes)
//   - reconvergence-stack depth: divergent regions must not nest past
//     a configurable bound
//   - affine bounds: global/shared accesses whose address is an affine
//     function of tid/ctaid/lane/warp/gtid and the launch parameters
//     must stay inside their allocations
//
// plus a register-liveness/pressure report (registers used, maximum
// simultaneously live, per-block live-in counts) consumed by cawadis.
//
// Error-severity findings fail simt.Kernel.Validate and gpu.Launch;
// cawadis -lint surfaces everything, machine-readably with -json.
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"cawa/internal/isa"
)

// Severity grades a finding.
type Severity int

// Severities. Errors fail verification; warnings are advisory.
const (
	SevWarn Severity = iota
	SevError
)

// String returns "warn" or "error".
func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warn"
}

// MarshalJSON encodes the severity as its string form.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Rule identifies the verifier pass that produced a finding.
type Rule string

// Verifier rules.
const (
	RuleBranchTarget     Rule = "branch-target"
	RuleFallthrough      Rule = "fallthrough-off-end"
	RuleUnreachable      Rule = "unreachable"
	RuleReconvergence    Rule = "reconvergence"
	RuleDefBeforeUse     Rule = "def-before-use"
	RuleDeadStore        Rule = "dead-store"
	RuleDivergentBarrier Rule = "divergent-barrier"
	RuleStackDepth       Rule = "stack-depth"
	RuleOOBGlobal        Rule = "oob-global"
	RuleOOBShared        Rule = "oob-shared"
	RuleParamRange       Rule = "param-range"
)

// Finding is one verifier diagnostic, anchored at a PC with the
// disassembly of the offending instruction for context.
type Finding struct {
	Rule     Rule     `json:"rule"`
	Severity Severity `json:"severity"`
	PC       int32    `json:"pc"`
	Msg      string   `json:"msg"`
	Context  string   `json:"context,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("pc %d: %s: %s: %s [%s]", f.PC, f.Severity, f.Rule, f.Msg, f.Context)
}

// Launch carries the launch geometry the bounds pass needs. GlobalBytes
// and WarpSize may be zero when unknown (the global bounds check is
// then skipped and the warp size defaults to 32).
type Launch struct {
	GridDim     int
	BlockDim    int
	WarpSize    int
	SharedWords int
	Params      []int64
	GlobalBytes int64
}

// Options tunes Analyze.
type Options struct {
	// Launch enables the launch-dependent passes (affine bounds,
	// param-range). Nil analyzes the bare program.
	Launch *Launch
	// MaxStackDepth bounds divergent-region nesting; 0 means the
	// default of 32 (one level per warp lane is the hardware ceiling).
	MaxStackDepth int
	// StrictBounds also flags accesses whose affine upper bound
	// escapes the allocation, not just definite (lower-bound) escapes.
	StrictBounds bool
}

// Report is the full analysis result.
type Report struct {
	Program  string    `json:"program"`
	Instrs   int       `json:"instrs"`
	Findings []Finding `json:"findings"`
	Blocks   []Block   `json:"blocks"`
	// BlockLiveIn is the live register count entering each block.
	BlockLiveIn []int `json:"blockLiveIn,omitempty"`
	Loops       int   `json:"loops"`
	// RegsUsed counts registers referenced anywhere; MaxLive is the
	// peak number of simultaneously live registers.
	RegsUsed int `json:"regsUsed"`
	MaxLive  int `json:"maxLive"`
	// DivergentBranches counts conditional branches that may diverge;
	// StackDepth is the static bound on reconvergence-stack nesting.
	DivergentBranches int `json:"divergentBranches"`
	StackDepth        int `json:"stackDepth"`
}

func (r *Report) add(f Finding) { r.Findings = append(r.Findings, f) }

// Errors returns the error-severity findings.
func (r *Report) Errors() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity == SevError {
			out = append(out, f)
		}
	}
	return out
}

// Analyze runs every verifier pass over the program and returns the
// report. It never panics on malformed programs: structural damage is
// reported as findings and the dependent passes are skipped.
func Analyze(p *isa.Program, opts Options) *Report {
	rep := &Report{Program: p.Name, Instrs: p.Len(), Findings: []Finding{}}
	maxDepth := opts.MaxStackDepth
	if maxDepth <= 0 {
		maxDepth = 32
	}

	if structuralDamage(p, rep) {
		finish(p, rep)
		return rep
	}

	c := buildCFG(p)
	rep.Blocks = c.blocks
	for i := range c.blocks {
		if c.blocks[i].LoopHead {
			rep.Loops++
		}
		if !c.reachable[i] {
			rep.add(Finding{
				Rule: RuleUnreachable, Severity: SevError, PC: c.blocks[i].Start,
				Msg: fmt.Sprintf("block %d (pc %d..%d) is unreachable from the entry", i, c.blocks[i].Start, c.blocks[i].End-1),
			})
		}
	}

	defBeforeUse(c, rep)
	liveness(c, rep)
	divergence(c, maxDepth, rep)
	if opts.Launch != nil {
		boundsCheck(c, opts.Launch, opts.StrictBounds, rep)
	}

	finish(p, rep)
	return rep
}

// structuralDamage validates every successor edge; out-of-range branch
// targets or execution falling off the end poison all later passes.
func structuralDamage(p *isa.Program, rep *Report) bool {
	n := int32(p.Len())
	for pc := int32(0); pc < n; pc++ {
		in := p.At(pc)
		if in.Op.IsBranch() {
			if t := in.Target(); t < 0 || t >= n {
				rep.add(Finding{
					Rule: RuleBranchTarget, Severity: SevError, PC: pc,
					Msg: fmt.Sprintf("branch targets out-of-range pc %d", t),
				})
			}
		}
		// Fallthrough past the last instruction.
		if pc == n-1 && in.Op != isa.OpExit && in.Op != isa.OpBra {
			rep.add(Finding{
				Rule: RuleFallthrough, Severity: SevError, PC: pc,
				Msg: "execution can fall through past the last instruction",
			})
		}
	}
	return len(rep.Findings) > 0
}

// finish attaches disassembly context and sorts findings into a
// deterministic order.
func finish(p *isa.Program, rep *Report) {
	for i := range rep.Findings {
		f := &rep.Findings[i]
		if f.Context == "" && f.PC >= 0 && int(f.PC) < p.Len() {
			f.Context = p.At(f.PC).String()
		}
	}
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i], rep.Findings[j]
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

// VerifyError aggregates the error findings that failed verification.
type VerifyError struct {
	Program  string
	Findings []Finding
}

func (e *VerifyError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %q failed verification (%d errors)", e.Program, len(e.Findings))
	for i, f := range e.Findings {
		if i == 4 && len(e.Findings) > 5 {
			fmt.Fprintf(&b, "; and %d more", len(e.Findings)-i)
			break
		}
		fmt.Fprintf(&b, "; %s", f)
	}
	return b.String()
}

// Verify runs Analyze and fails fast on error-severity findings.
// Warnings never fail verification.
func Verify(p *isa.Program, opts Options) error {
	rep := Analyze(p, opts)
	if errs := rep.Errors(); len(errs) > 0 {
		return &VerifyError{Program: p.Name, Findings: errs}
	}
	return nil
}
