package analysis_test

import (
	"testing"

	"cawa/internal/isa"
	"cawa/internal/isa/analysis"
	"cawa/internal/simt"
)

// The mutant suite guards against a vacuously-green verifier: it
// deterministically corrupts every workload kernel (drop a definition,
// make a guard unconditional, retarget a branch past a barrier's
// reconvergence point, widen a store) and asserts the verifier flags
// each injected defect. Mutant selection is purely structural — no
// randomness — so failures reproduce exactly.

func instrsOf(p *isa.Program) []isa.Instr {
	out := make([]isa.Instr, p.Len())
	for pc := range out {
		out[pc] = p.At(int32(pc))
	}
	return out
}

func analyzeMutant(k *simt.Kernel, instrs []isa.Instr) *analysis.Report {
	mutant := isa.NewProgramUnchecked(k.Program.Name+"+mutant", instrs)
	return analysis.Analyze(mutant, analysis.Options{Launch: launchOf(k)})
}

func hasRule(rep *analysis.Report, rule analysis.Rule) bool {
	for _, f := range rep.Findings {
		if f.Rule == rule {
			return true
		}
	}
	return false
}

// dropDefSite picks the first instruction defining a register that is
// written exactly once in the whole program and read somewhere after
// it; removing that definition must surface as def-before-use.
func dropDefSite(p *isa.Program) int {
	defCount := map[isa.Reg]int{}
	readAnywhere := map[isa.Reg]bool{}
	for pc := 0; pc < p.Len(); pc++ {
		in := p.At(int32(pc))
		if in.Op.HasDst() {
			defCount[in.Dst]++
		}
	}
	for pc := 0; pc < p.Len(); pc++ {
		in := p.At(int32(pc))
		if in.Op.ReadsA() {
			readAnywhere[in.A] = true
		}
		if in.Op.ReadsB() && !in.BImm {
			readAnywhere[in.B] = true
		}
		if in.Op.ReadsDst() {
			readAnywhere[in.Dst] = true
		}
	}
	for pc := 0; pc < p.Len(); pc++ {
		in := p.At(int32(pc))
		if in.Op.HasDst() && defCount[in.Dst] == 1 && readAnywhere[in.Dst] && !in.Op.ReadsDst() {
			return pc
		}
	}
	return -1
}

func TestMutantDroppedDef(t *testing.T) {
	for name, k := range workloadKernels(t) {
		pc := dropDefSite(k.Program)
		if pc < 0 {
			t.Errorf("%s: no drop-def mutation site", name)
			continue
		}
		instrs := instrsOf(k.Program)
		instrs[pc] = isa.Instr{Op: isa.OpNop}
		rep := analyzeMutant(k, instrs)
		if !hasRule(rep, analysis.RuleDefBeforeUse) {
			t.Errorf("%s: dropping def at pc %d not flagged as def-before-use: %v",
				name, pc, rep.Findings)
		}
	}
}

// TestMutantUnconditionalGuard rewrites conditional branches as
// unconditional ones. When the original fallthrough block is reachable
// only through that edge (per the CFG report), the verifier must flag
// the orphaned block as unreachable.
func TestMutantUnconditionalGuard(t *testing.T) {
	coveredKernels := 0
	for name, k := range workloadKernels(t) {
		base := analysis.Analyze(k.Program, analysis.Options{Launch: launchOf(k)})
		injected := false
		for pc := 0; pc < k.Program.Len() && !injected; pc++ {
			in := k.Program.At(int32(pc))
			if !in.Op.IsCondBranch() || in.Target() == int32(pc+1) {
				continue
			}
			// Find the fallthrough block; only mutate when this branch
			// is its sole entry, which guarantees orphaning it.
			fall := blockStartingAt(base.Blocks, int32(pc+1))
			branchBlock := blockContaining(base.Blocks, int32(pc))
			if fall == nil || branchBlock == nil {
				continue
			}
			if len(fall.Preds) != 1 || fall.Preds[0] != branchBlock.ID {
				continue
			}
			instrs := instrsOf(k.Program)
			instrs[pc] = isa.Instr{Op: isa.OpBra, Imm: in.Imm}
			rep := analyzeMutant(k, instrs)
			if !hasRule(rep, analysis.RuleUnreachable) {
				t.Errorf("%s: unconditional guard at pc %d not flagged as unreachable: %v",
					name, pc, rep.Findings)
			}
			injected = true
		}
		if injected {
			coveredKernels++
		}
	}
	if coveredKernels < 8 {
		t.Errorf("unconditional-guard mutants covered only %d kernels", coveredKernels)
	}
}

func blockStartingAt(blocks []analysis.Block, pc int32) *analysis.Block {
	for i := range blocks {
		if blocks[i].Start == pc {
			return &blocks[i]
		}
	}
	return nil
}

func blockContaining(blocks []analysis.Block, pc int32) *analysis.Block {
	for i := range blocks {
		if blocks[i].Start <= pc && pc < blocks[i].End {
			return &blocks[i]
		}
	}
	return nil
}

// TestMutantBranchPastBarrier retargets a conditional branch that
// reconverges exactly at a barrier to one instruction past it, pushing
// the barrier inside the divergent region.
func TestMutantBranchPastBarrier(t *testing.T) {
	injected := 0
	for name, k := range workloadKernels(t) {
		p := k.Program
		for pc := 0; pc < p.Len(); pc++ {
			in := p.At(int32(pc))
			if !in.Op.IsCondBranch() {
				continue
			}
			tgt := in.Target()
			if int(tgt) >= p.Len() || p.At(tgt).Op != isa.OpBar || int(tgt)+1 >= p.Len() {
				continue
			}
			instrs := instrsOf(p)
			instrs[pc].Imm = int64(tgt + 1)
			rep := analyzeMutant(k, instrs)
			if !hasRule(rep, analysis.RuleDivergentBarrier) {
				t.Errorf("%s: branch at pc %d retargeted past barrier at pc %d not flagged: %v",
					name, pc, tgt, rep.Findings)
			}
			injected++
		}
	}
	if injected == 0 {
		t.Error("no branch-past-barrier mutation site found (expected at least backprop)")
	}
}

// TestMutantWidenedStore adds a huge offset to stores whose address the
// affine pass can bound; each such widened store must be flagged
// out-of-bounds. Stores with data-dependent addresses are exempt (the
// pass is deliberately conservative), so coverage is also asserted.
func TestMutantWidenedStore(t *testing.T) {
	flagged := 0
	for name, k := range workloadKernels(t) {
		p := k.Program
		launch := launchOf(k)
		launch.GlobalBytes = 1 << 30 // generous bound; the widening jumps far past it
		kernelFlagged := false
		for pc := 0; pc < p.Len(); pc++ {
			in := p.At(int32(pc))
			if !in.Op.IsStore() {
				continue
			}
			instrs := instrsOf(p)
			instrs[pc].Imm += 1 << 40
			mutant := isa.NewProgramUnchecked(p.Name+"+widen", instrs)
			rep := analysis.Analyze(mutant, analysis.Options{Launch: launch})
			want := analysis.RuleOOBGlobal
			if in.Op == isa.OpStS {
				want = analysis.RuleOOBShared
			}
			if hasRule(rep, want) {
				kernelFlagged = true
			}
		}
		if kernelFlagged {
			flagged++
		} else {
			t.Logf("%s: no affine store site (data-dependent addressing)", name)
		}
	}
	if flagged < 6 {
		t.Errorf("widened-store mutants flagged in only %d kernels, want >= 6", flagged)
	}
}

// TestMutantStaleReconvergence flips a stored reconvergence PC and
// asserts the consistency check catches it.
func TestMutantStaleReconvergence(t *testing.T) {
	injected := 0
	for name, k := range workloadKernels(t) {
		p := k.Program
		for pc := 0; pc < p.Len(); pc++ {
			in := p.At(int32(pc))
			if !in.Op.IsCondBranch() {
				continue
			}
			instrs := instrsOf(p)
			instrs[pc].Rpc++
			rep := analyzeMutant(k, instrs)
			if !hasRule(rep, analysis.RuleReconvergence) {
				t.Errorf("%s: stale rpc at pc %d not flagged: %v", name, pc, rep.Findings)
			}
			injected++
			break
		}
	}
	if injected < 10 {
		t.Errorf("stale-rpc mutants injected in only %d kernels", injected)
	}
}
