package analysis

import (
	"fmt"

	"cawa/internal/isa"
)

// divergence runs the warp-uniformity analysis and everything built on
// it: the set of possibly-divergent branches, the barrier-uniformity
// check, reconvergence-PC verification, and the static bound on SIMT
// reconvergence-stack depth.
//
// A register is warp-uniform when every thread of a warp is guaranteed
// to hold the same value in it. Sources of non-uniformity are the
// per-lane special registers (tid, lane, gtid), any memory load
// (conservatively), and any definition executed under divergent control
// flow (threads that skip the definition keep a different value). A
// conditional branch on a non-uniform register may diverge; its
// divergent region is every PC reachable from the branch before the
// reconvergence point. The two are mutually dependent, so the analysis
// iterates to a fixpoint: the divergent-branch set only grows, so it
// terminates.
func divergence(c *cfg, maxDepth int, rep *Report) {
	p := c.p
	n := c.n

	// Verify stored reconvergence PCs against the freshly computed
	// immediate post-dominators before trusting them.
	for pc := 0; pc < n; pc++ {
		in := p.At(int32(pc))
		if !in.Op.IsCondBranch() {
			continue
		}
		if in.Rpc != c.ipdom[pc] {
			rep.add(Finding{
				Rule: RuleReconvergence, Severity: SevError, PC: int32(pc),
				Msg: fmt.Sprintf("stored reconvergence PC %d differs from immediate post-dominator %d", in.Rpc, c.ipdom[pc]),
			})
		}
	}

	divergent := make([]bool, n)
	var inAnyRegion []bool
	for {
		// Union of all divergent regions under the current estimate.
		inAnyRegion = make([]bool, n)
		for pc := 0; pc < n; pc++ {
			if !divergent[pc] {
				continue
			}
			reg := c.region(int32(pc), c.ipdom[pc])
			for i, ok := range reg {
				if ok {
					inAnyRegion[i] = true
				}
			}
		}

		nonUniform := uniformDataflow(c, inAnyRegion)

		grew := false
		for i := range c.blocks {
			if !c.reachable[i] {
				continue
			}
			nu := nonUniform[i]
			for pc := c.blocks[i].Start; pc < c.blocks[i].End; pc++ {
				instr := p.At(pc)
				if instr.Op.IsCondBranch() && !divergent[pc] && nu.has(instr.A) {
					divergent[pc] = true
					grew = true
				}
				nu = uniformTransfer(instr, nu, inAnyRegion[pc])
			}
		}
		if !grew {
			break
		}
	}

	// Barrier-uniformity: a barrier strictly inside a divergent region
	// deadlocks the masked-off lanes (they wait at the reconvergence
	// point while active lanes wait at the barrier).
	depth := make([]int, n)
	for pc := 0; pc < n; pc++ {
		if !divergent[pc] {
			continue
		}
		rep.DivergentBranches++
		reg := c.region(int32(pc), c.ipdom[pc])
		for i, ok := range reg {
			if !ok {
				continue
			}
			depth[i]++
			if p.At(int32(i)).Op == isa.OpBar {
				rep.add(Finding{
					Rule: RuleDivergentBarrier, Severity: SevError, PC: int32(i),
					Msg: fmt.Sprintf("barrier reachable under divergent branch at pc %d (reconverges at %d)", pc, c.ipdom[pc]),
				})
			}
		}
	}
	for _, d := range depth {
		if d > rep.StackDepth {
			rep.StackDepth = d
		}
	}
	if rep.StackDepth > maxDepth {
		rep.add(Finding{
			Rule: RuleStackDepth, Severity: SevError, PC: 0,
			Msg: fmt.Sprintf("divergent regions nest %d deep, exceeding the reconvergence-stack bound %d", rep.StackDepth, maxDepth),
		})
	}
}

// uniformDataflow computes, per reachable block, the registers that may
// be non-uniform at block entry (forward may-analysis, meet = union).
func uniformDataflow(c *cfg, inRegion []bool) []regMask {
	nb := len(c.blocks)
	in := make([]regMask, nb)
	out := make([]regMask, nb)

	transfer := func(b *Block, nu regMask) regMask {
		for pc := b.Start; pc < b.End; pc++ {
			nu = uniformTransfer(c.p.At(pc), nu, inRegion[pc])
		}
		return nu
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < nb; i++ {
			if !c.reachable[i] {
				continue
			}
			var m regMask
			for _, pr := range c.blocks[i].Preds {
				m |= out[pr]
			}
			in[i] = m
			if o := transfer(&c.blocks[i], m); o != out[i] {
				out[i] = o
				changed = true
			}
		}
	}
	return in
}

// uniformTransfer applies one instruction to the non-uniform register
// mask. inRegion marks the instruction as control-dependent on a
// divergent branch, which taints its definition.
func uniformTransfer(in isa.Instr, nu regMask, inRegion bool) regMask {
	if !in.Op.HasDst() {
		return nu
	}
	tainted := inRegion || in.Op.IsLoad() || readMask(in)&nu != 0
	if in.Op == isa.OpSReg {
		switch isa.SpecialReg(in.Imm) {
		case isa.SRTid, isa.SRLane, isa.SRGTid:
			tainted = true
		}
	}
	if tainted {
		return nu | 1<<in.Dst
	}
	return nu &^ (1 << in.Dst)
}
