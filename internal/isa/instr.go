package isa

import (
	"fmt"
	"math"
	"strings"
)

// NoReconv marks a branch with no (or not yet computed) reconvergence PC.
const NoReconv int32 = -1

// Instr is one decoded instruction. Instructions are fixed-format: an
// opcode, a destination register, two source operands (the second may be
// an immediate) and an immediate field whose meaning depends on the
// opcode (memory offset, branch target, parameter index, ...).
type Instr struct {
	Op   Op
	Dst  Reg
	A    Reg
	B    Reg
	BImm bool  // B operand is Imm rather than a register
	Imm  int64 // immediate / branch target PC / offset / selector
	Rpc  int32 // reconvergence PC for conditional branches, else NoReconv
}

// Target returns the branch target PC; valid only for branch opcodes.
func (in Instr) Target() int32 { return int32(in.Imm) }

// String renders the instruction in an assembly-like syntax.
func (in Instr) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", in.Op)
	switch in.Op {
	case OpNop, OpBar, OpExit:
	case OpMovI:
		fmt.Fprintf(&b, "r%d, %d", in.Dst, in.Imm)
	case OpSReg:
		fmt.Fprintf(&b, "r%d, %%%s", in.Dst, sregName(SpecialReg(in.Imm)))
	case OpParam:
		fmt.Fprintf(&b, "r%d, param[%d]", in.Dst, in.Imm)
	case OpMov, OpAbs, OpFAbs, OpFNeg, OpFSqrt, OpFExp, OpFLog, OpCvtIF, OpCvtFI:
		fmt.Fprintf(&b, "r%d, r%d", in.Dst, in.A)
	case OpLd, OpLdS:
		fmt.Fprintf(&b, "r%d, [r%d%+d]", in.Dst, in.A, in.Imm)
	case OpSt, OpStS:
		fmt.Fprintf(&b, "[r%d%+d], %s", in.A, in.Imm, in.operandB())
	case OpBra:
		fmt.Fprintf(&b, "@%d", in.Imm)
	case OpCBra:
		fmt.Fprintf(&b, "r%d, @%d (rpc=%d)", in.A, in.Imm, in.Rpc)
	case OpCBraZ:
		fmt.Fprintf(&b, "!r%d, @%d (rpc=%d)", in.A, in.Imm, in.Rpc)
	default:
		fmt.Fprintf(&b, "r%d, r%d, %s", in.Dst, in.A, in.operandB())
	}
	return strings.TrimRight(b.String(), " ")
}

func (in Instr) operandB() string {
	if in.BImm {
		return fmt.Sprintf("%d", in.Imm)
	}
	return fmt.Sprintf("r%d", in.B)
}

func sregName(s SpecialReg) string {
	switch s {
	case SRTid:
		return "tid"
	case SRNtid:
		return "ntid"
	case SRCtaid:
		return "ctaid"
	case SRNctaid:
		return "nctaid"
	case SRLane:
		return "lane"
	case SRWarp:
		return "warp"
	case SRGTid:
		return "gtid"
	}
	return fmt.Sprintf("sreg%d", int64(s))
}

// Program is a validated instruction sequence with reconvergence points
// resolved. Programs are immutable after Build.
type Program struct {
	Name   string
	Instrs []Instr
	labels map[string]int32
	meta   []InstrMeta // precomputed issue metadata, index-parallel with Instrs
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Instrs) }

// At returns the instruction at pc.
func (p *Program) At(pc int32) Instr { return p.Instrs[pc] }

// LabelPC returns the PC a label resolved to, for tests and tooling.
func (p *Program) LabelPC(name string) (int32, bool) {
	pc, ok := p.labels[name]
	return pc, ok
}

// Disasm renders the whole program with PCs and label annotations.
func (p *Program) Disasm() string {
	byPC := make(map[int32][]string)
	for name, pc := range p.labels {
		byPC[pc] = append(byPC[pc], name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// program %s (%d instrs)\n", p.Name, len(p.Instrs))
	for pc, in := range p.Instrs {
		for _, l := range byPC[int32(pc)] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "  %4d: %s\n", pc, in)
	}
	return b.String()
}

// Value helpers: the ISA stores floats as IEEE-754 bit patterns in int64
// registers and memory words.

// F2B converts a float64 to its register bit pattern.
func F2B(f float64) int64 { return int64(math.Float64bits(f)) }

// B2F converts a register bit pattern to float64.
func B2F(b int64) float64 { return math.Float64frombits(uint64(b)) }
