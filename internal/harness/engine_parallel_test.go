package harness

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/gpu"
	"cawa/internal/memsys"
)

// waitGoroutines polls until the process goroutine count drops back to
// at most base, failing the test if it never does. Domain workers park
// on channels, so a leak shows up as a stable elevated count.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestParallelEngineCancel cancels a parallel-engine run from a
// PerCycle hook mid-kernel and checks that the abort both honors the
// bounded check cadence and releases every domain goroutine: the
// runner's deferred stop must park-and-join all workers even though the
// launch unwinds by error return, not by retiring its blocks.
func TestParallelEngineCancel(t *testing.T) {
	const cancelAt = 2000
	const checkCadence = 4096 // gpu.cancelCheckMask + 1

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := RunContext(ctx, RunOptions{
		Workload: "bfs", Params: cancelTestParams,
		System: core.Baseline(), Config: engineMatrixConfig(),
		SMWorkers: 4,
		PerCycle: func(g *gpu.GPU, cycle int64) {
			if cycle == cancelAt {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel mid-run cancel: got %v, want context.Canceled", err)
	}
	aborted, ok := abortCycle(err.Error())
	if !ok {
		t.Fatalf("abort error %q does not record the abort cycle", err)
	}
	if aborted < cancelAt || aborted > cancelAt+checkCadence {
		t.Errorf("aborted at cycle %d; want within %d cycles of the cancel at %d",
			aborted, checkCadence, cancelAt)
	}
	waitGoroutines(t, base)
}

// TestParallelSessionCancelThenRerun is TestSessionCancelThenRerun on
// the parallel engine: a cancelled parallel run must evict its flight,
// leak no goroutines, and leave the session producing results
// byte-identical to a serial session that never saw the cancellation.
func TestParallelSessionCancelThenRerun(t *testing.T) {
	app, sc := "bfs", core.CAWA()
	cfg := engineMatrixConfig()

	base := runtime.NumGoroutine()
	disturbed := NewSession(cfg, cancelTestParams).SetWorkers(4).SMParallel(4)
	disturbed.SetRunFunc(func(ctx context.Context, opt RunOptions) (*Result, error) {
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		opt.PerCycle = func(g *gpu.GPU, cycle int64) {
			if cycle == 3000 {
				cancel()
			}
		}
		return RunContext(runCtx, opt)
	})
	if _, err := disturbed.RunContext(context.Background(), app, sc); !errors.Is(err, context.Canceled) {
		t.Fatalf("injected cancel: got %v, want context.Canceled", err)
	}
	waitGoroutines(t, base)

	// Re-run on the same session: must re-simulate (the flight was
	// evicted, not poisoned) and match a pristine serial session.
	disturbed.SetRunFunc(nil)
	retried, err := disturbed.Run(app, sc)
	if err != nil {
		t.Fatalf("re-run after cancel: %v", err)
	}
	pristine, err := NewSession(cfg, cancelTestParams).Run(app, sc)
	if err != nil {
		t.Fatalf("pristine serial run: %v", err)
	}
	compareResults(t, "parallel-after-cancel", retried, pristine)
}

// TestSessionSharedWorkerBudget pins the over-subscription fix: a
// session's run-level workers and SM-domain goroutines draw from one
// pool, so total concurrency never exceeds SetWorkers(n) no matter how
// runs and domains stack. With 4 slots and SMParallel(2), two runs
// claim 2 slots each (base + one extra for domains) and a third run
// must wait for a base slot rather than push the total to 5.
func TestSessionSharedWorkerBudget(t *testing.T) {
	const workers, smpar = 4, 2
	s := NewSession(config.Small(), cancelTestParams).SetWorkers(workers).SMParallel(smpar)

	var mu sync.Mutex
	var weights []int // opt.SMWorkers of each run, in start order
	inflight, peak := 0, 0
	gate := make(chan struct{})
	s.SetRunFunc(func(ctx context.Context, opt RunOptions) (*Result, error) {
		w := opt.SMWorkers
		if w == 0 {
			w = 1
		}
		mu.Lock()
		weights = append(weights, w)
		inflight += w
		if inflight > peak {
			peak = inflight
		}
		mu.Unlock()
		<-gate
		mu.Lock()
		inflight -= w
		mu.Unlock()
		return &Result{Workload: opt.Workload, System: opt.System.Label()}, nil
	})

	started := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(weights)
	}
	// Start three runs one at a time so slot acquisition is ordered
	// (racing starts could legitimately split the extra slots
	// differently — that would still respect the budget, but not the
	// exact weights this test asserts).
	apps := []string{"bfs", "kmeans", "needle"}
	var wg sync.WaitGroup
	for i, app := range apps {
		wg.Add(1)
		go func(app string) {
			defer wg.Done()
			if _, err := s.Run(app, core.Baseline()); err != nil {
				t.Errorf("%s: %v", app, err)
			}
		}(app)
		if i < 2 {
			for started() < i+1 {
				time.Sleep(time.Millisecond)
			}
		}
	}
	// Runs 1 and 2 hold 2 slots each: the pool is full, run 3 must be
	// blocked in acquire. Give it real time to (wrongly) start.
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	if len(weights) != 2 {
		mu.Unlock()
		t.Fatalf("third run started with the pool saturated (started %d)", len(weights))
	}
	if weights[0] != smpar || weights[1] != smpar {
		t.Errorf("saturating runs got SMWorkers %v, want %d each", weights, smpar)
	}
	if inflight != workers {
		t.Errorf("inflight weight %d with two %d-wide runs, want %d", inflight, smpar, workers)
	}
	mu.Unlock()

	close(gate)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(weights) != 3 {
		t.Fatalf("runs executed: %d, want 3", len(weights))
	}
	if peak > workers {
		t.Errorf("peak total concurrency %d exceeds the %d-slot pool", peak, workers)
	}
	for i, w := range weights {
		if w > smpar {
			t.Errorf("run %d got SMWorkers %d, above the SMParallel(%d) target", i, w, smpar)
		}
	}
}

// TestParallelGatedSerialForSharedObservers: runs carrying cross-SM
// shared observers must land on the serial engine even when the caller
// asks for SM parallelism — those closures may share mutable state
// between SMs, which only the serial engine may do. The gate is
// observable on direct runs through the returned GPU: a gated run never
// has SMWorkers assigned.
func TestParallelGatedSerialForSharedObservers(t *testing.T) {
	opt := RunOptions{
		Workload: "bfs", Params: cancelTestParams,
		System: core.Baseline(), Config: engineMatrixConfig(),
		SMWorkers: 4,
	}

	// No shared observer: the engine choice passes through.
	plain, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if plain.GPU.SMWorkers != 4 {
		t.Errorf("plain run: GPU.SMWorkers = %d, want 4", plain.GPU.SMWorkers)
	}

	// An AttachL1 tap forces the serial engine.
	tapped := opt
	taps := 0
	tapped.AttachL1 = func(smID int, l1 *memsys.L1D) { taps++ }
	tr, err := Run(tapped)
	if err != nil {
		t.Fatal(err)
	}
	if taps != tapped.Config.NumSMs {
		t.Fatalf("tap called %d times, want %d", taps, tapped.Config.NumSMs)
	}
	if tr.GPU.SMWorkers != 0 {
		t.Errorf("tapped run: GPU.SMWorkers = %d, want 0 (serial gate)", tr.GPU.SMWorkers)
	}
	compareResults(t, "gated-serial", tr, plain)

	// The ccws scheduler auto-wires per-SM providers through shared
	// closures (a ProviderOverride): also gated.
	ccws := opt
	ccws.System = core.SystemConfig{Scheduler: "ccws"}
	cr, err := Run(ccws)
	if err != nil {
		t.Fatal(err)
	}
	if cr.GPU.SMWorkers != 0 {
		t.Errorf("ccws run: GPU.SMWorkers = %d, want 0 (serial gate)", cr.GPU.SMWorkers)
	}
}
