package harness

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Table is the printable result of one experiment: a figure's series or
// a paper table's rows.
type Table struct {
	ID      string
	Title   string
	Note    string
	Columns []string // column headers; rows carry one label + len-1 values
	rows    []tableRow
}

type tableRow struct {
	label  string
	values []string
}

// NewTable creates a table whose first column holds row labels.
func NewTable(id, title string, columns ...string) *Table {
	return &Table{ID: id, Title: title, Columns: columns}
}

// AddRow appends a numeric row formatted with %.3f (integers collapse).
func (t *Table) AddRow(label string, values ...float64) {
	vs := make([]string, len(values))
	for i, v := range values {
		vs[i] = formatNum(v)
	}
	t.rows = append(t.rows, tableRow{label, vs})
}

// AddTextRow appends a row of preformatted cells.
func (t *Table) AddTextRow(label string, values ...string) {
	t.rows = append(t.rows, tableRow{label, values})
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Value returns the numeric-formatted cell (row, col) where col 0 is the
// first value column; it is a test convenience.
func (t *Table) Value(row, col int) string { return t.rows[row].values[col] }

// Label returns the row label.
func (t *Table) Label(row int) string { return t.rows[row].label }

func formatNum(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}

// MarshalJSON renders the table as a structured document for plotting
// pipelines (cawabench -json).
func (t *Table) MarshalJSON() ([]byte, error) {
	type jsonRow struct {
		Label  string   `json:"label"`
		Values []string `json:"values"`
	}
	doc := struct {
		ID      string    `json:"id"`
		Title   string    `json:"title"`
		Note    string    `json:"note,omitempty"`
		Columns []string  `json:"columns"`
		Rows    []jsonRow `json:"rows"`
	}{ID: t.ID, Title: t.Title, Note: t.Note, Columns: t.Columns}
	for _, r := range t.rows {
		doc.Rows = append(doc.Rows, jsonRow{Label: r.label, Values: r.values})
	}
	return json.Marshal(doc)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		if len(r.label) > widths[0] {
			widths[0] = len(r.label)
		}
		for i, v := range r.values {
			if i+1 < len(widths) && len(v) > widths[i+1] {
				widths[i+1] = len(v)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else if i < len(widths) {
				fmt.Fprintf(&b, "  %*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "  %s", c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.rows {
		writeRow(append([]string{r.label}, r.values...))
	}
	return b.String()
}
