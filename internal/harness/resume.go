package harness

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"cawa/internal/checkpoint"
	"cawa/internal/gpu"
	"cawa/internal/stats"
)

// DefaultCheckpointEvery is the periodic capture cadence, in simulated
// cycles, used when a checkpointed run does not pin one. Captures are
// in-memory struct copies (gob encoding happens only when a checkpoint
// is persisted), so the cadence trades a little host time for how much
// simulated work a cancelled run can lose.
const DefaultCheckpointEvery = 50_000

// WarmCheckpoint pairs a mid-launch engine snapshot with the statistics
// of the launches that completed before it. Together they are enough to
// resume a run exactly: the completed launches replay functionally
// (their timing stats come from Partial), the in-flight launch restores
// from Snap and continues on the timing model.
type WarmCheckpoint struct {
	// Partial is the run's Result as of the snapshot: Agg merged across
	// the detailed launches that finished before the in-flight one,
	// Launches/Detailed counted to match. GPU is nil; Spans and the
	// per-warp L1 tallies are not filled (the resumed GPU regenerates
	// them at run end from restored state).
	Partial Result
	// Snap is the full engine snapshot of the in-flight launch.
	Snap *checkpoint.Snapshot
}

// RunCheckpointed is RunContext plus warm-start checkpointing: the run
// captures an in-memory WarmCheckpoint every `every` cycles (0 means
// DefaultCheckpointEvery), resumes from `warm` when non-nil instead of
// re-simulating its prefix, and — when the run is cut short by ctx —
// returns the most recent checkpoint alongside the error so the caller
// can persist it. On success the checkpoint return is nil.
//
// Capture is best-effort: a design point whose provider or policy is
// not checkpointable (e.g. the CCWS baseline) simply never yields a
// checkpoint; the run itself is unaffected. Resume is exact: the
// round-trip tests prove a restored run is byte-identical to an
// uninterrupted one across the whole engine matrix.
func RunCheckpointed(ctx context.Context, opt RunOptions, every int64, warm *WarmCheckpoint) (*Result, *WarmCheckpoint, error) {
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	wl, g, res, err := setupRun(&opt)
	if err != nil {
		return nil, nil, err
	}
	sysKey, err := opt.System.Key()
	if err != nil {
		return nil, nil, err
	}
	meta := checkpoint.Meta{
		EngineVersion: EngineVersion,
		Workload:      opt.Workload,
		Scale:         opt.Params.Scale,
		Seed:          opt.Params.Seed,
		SystemKey:     sysKey,
	}

	// Periodic capture hook, chained in front of any caller-supplied
	// per-cycle sampler. curIx tracks the in-flight launch index for
	// Meta; both it and last are touched only from the engine's hook
	// boundary (caller goroutine), never concurrently.
	var (
		last    *WarmCheckpoint
		curIx   int
		nextCap = every
		dead    bool // first capture failure disables further attempts
	)
	userPC, userWake := g.PerCycle, g.PerCycleWake
	g.PerCycle = func(gg *gpu.GPU, cycle int64) {
		if userPC != nil {
			userPC(gg, cycle)
		}
		if dead || cycle < nextCap {
			return
		}
		nextCap = cycle + every
		m := meta
		m.LaunchIndex = curIx
		snap, err := checkpoint.Capture(gg, m)
		if err != nil {
			dead = true
			return
		}
		last = &WarmCheckpoint{Partial: clonePartial(res), Snap: snap}
	}
	g.PerCycleWake = func(now int64) int64 {
		var w int64
		if dead {
			// Capture is off for the rest of the run; stop constraining
			// the fast-forward engine.
			w = now + (1 << 40)
		} else if w = nextCap; w <= now {
			w = now + 1
		}
		if userPC != nil {
			if userWake == nil {
				return now + 1
			}
			if uw := userWake(now); uw < w {
				w = uw
			}
		}
		return w
	}

	// An incompatible checkpoint (different workload, params, design
	// point, or engine version) is ignored rather than reported: a warm
	// start is an optimization, and a confused artifact must cost at
	// most a cold start — never a failed run. Disk-cache users cannot
	// reach this (the identity is folded into the key); it guards
	// hand-fed snapshots.
	if warm != nil && warm.compatible(meta) != nil {
		warm = nil
	}

	ix := 0
	if warm != nil {
		for ; ix < warm.Snap.Meta.LaunchIndex; ix++ {
			k, ok := wl.Next()
			if !ok {
				return nil, nil, fmt.Errorf("harness: %s: checkpoint launch index %d beyond workload launch count %d",
					opt.Workload, warm.Snap.Meta.LaunchIndex, ix)
			}
			if err := checkpoint.FunctionalLaunch(k, wl.Mem(), opt.Config.WarpSize); err != nil {
				return nil, nil, fmt.Errorf("harness: %s: checkpoint replay: %w", opt.Workload, err)
			}
		}
		k, ok := wl.Next()
		if !ok {
			return nil, nil, fmt.Errorf("harness: %s: checkpoint launch index %d beyond workload launch count",
				opt.Workload, warm.Snap.Meta.LaunchIndex)
		}
		if err := checkpoint.Restore(warm.Snap, g, k); err != nil {
			return nil, nil, fmt.Errorf("harness: %s: checkpoint restore: %w", opt.Workload, err)
		}
		res.Agg = cloneAgg(warm.Partial.Agg)
		res.Launches = warm.Partial.Launches
		res.Detailed = warm.Partial.Detailed
		curIx = ix
		nextCap = warm.Snap.Meta.Cycle + every
		launch, err := g.Resume(ctx)
		if err != nil {
			return nil, last, fmt.Errorf("harness: %s on %s: %w", opt.Workload, opt.System.Label(), err)
		}
		res.Agg.Merge(launch)
		res.Launches++
		res.Detailed++
		ix++
	}

	for ; ; ix++ {
		k, ok := wl.Next()
		if !ok {
			break
		}
		curIx = ix
		if !sampleDetailed(ix, opt.SampleWarmup, opt.SampleInterval) {
			if err := ctx.Err(); err != nil {
				return nil, last, err
			}
			if err := checkpoint.FunctionalLaunch(k, wl.Mem(), opt.Config.WarpSize); err != nil {
				return nil, nil, fmt.Errorf("harness: %s on %s: %w", opt.Workload, opt.System.Label(), err)
			}
			res.Launches++
			continue
		}
		launch, err := g.Launch(ctx, k)
		if err != nil {
			return nil, last, fmt.Errorf("harness: %s on %s: %w", opt.Workload, opt.System.Label(), err)
		}
		res.Agg.Merge(launch)
		res.Launches++
		res.Detailed++
	}
	r, err := finishRun(wl, g, res, &opt)
	return r, nil, err
}

// compatible checks a checkpoint against the identity of the run about
// to resume from it. Callers keying checkpoints through the disk cache
// never see a mismatch (the identity is folded into the key); this is
// the defense for hand-fed snapshots.
func (w *WarmCheckpoint) compatible(meta checkpoint.Meta) error {
	if w.Snap == nil {
		return errors.New("harness: warm checkpoint has no snapshot")
	}
	m := w.Snap.Meta
	if m.EngineVersion != meta.EngineVersion || m.Workload != meta.Workload ||
		m.Scale != meta.Scale || m.Seed != meta.Seed || m.SystemKey != meta.SystemKey {
		return fmt.Errorf("harness: checkpoint identity mismatch (snapshot %s/%s scale=%g seed=%d engine=%s, run %s/%s scale=%g seed=%d engine=%s)",
			m.Workload, m.SystemKey, m.Scale, m.Seed, m.EngineVersion,
			meta.Workload, meta.SystemKey, meta.Scale, meta.Seed, meta.EngineVersion)
	}
	return nil
}

// clonePartial snapshots the run's statistics so far into a detached
// Result (the live one keeps being mutated as launches complete).
func clonePartial(res *Result) Result {
	p := Result{
		Workload: res.Workload,
		System:   res.System,
		Agg:      cloneAgg(res.Agg),
		Launches: res.Launches,
		Detailed: res.Detailed,
	}
	return p
}

// cloneAgg deep-copies a launch aggregate (Warps is the only reference
// field).
func cloneAgg(a stats.Launch) stats.Launch {
	a.Warps = append([]stats.WarpRecord(nil), a.Warps...)
	return a
}

// Persisted warm-checkpoint container: a length-prefixed JSON header
// (identity key + partial result) followed by the digest-protected
// checkpoint stream (checkpoint.Encode). The header's key is verified
// on load exactly like the result cache's, and any damage anywhere —
// short header, unparsable JSON, mis-keyed entry, truncated or
// bit-flipped checkpoint — reads back as a clean miss.

type warmHeader struct {
	Key     string  `json:"key"`
	Partial *Result `json:"partial"`
}

// encode writes the persistable form of the checkpoint.
func (w *WarmCheckpoint) encode(out io.Writer, key string) error {
	hdr, err := json.Marshal(warmHeader{Key: key, Partial: &w.Partial})
	if err != nil {
		return fmt.Errorf("harness: warm checkpoint: %w", err)
	}
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(hdr)))
	if _, err := out.Write(n[:]); err != nil {
		return fmt.Errorf("harness: warm checkpoint: %w", err)
	}
	if _, err := out.Write(hdr); err != nil {
		return fmt.Errorf("harness: warm checkpoint: %w", err)
	}
	if _, err := checkpoint.Encode(out, w.Snap); err != nil {
		return err
	}
	return nil
}

// decodeWarm reads a persisted checkpoint back, verifying the stored
// key. Any error means "treat as a miss".
func decodeWarm(in io.Reader, key string) (*WarmCheckpoint, error) {
	var n [4]byte
	if _, err := io.ReadFull(in, n[:]); err != nil {
		return nil, fmt.Errorf("harness: warm checkpoint: short length: %w", err)
	}
	size := binary.BigEndian.Uint32(n[:])
	if size > 1<<30 {
		return nil, fmt.Errorf("harness: warm checkpoint: implausible header size %d", size)
	}
	hdrBytes := make([]byte, size)
	if _, err := io.ReadFull(in, hdrBytes); err != nil {
		return nil, fmt.Errorf("harness: warm checkpoint: short header: %w", err)
	}
	var hdr warmHeader
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		return nil, fmt.Errorf("harness: warm checkpoint: %w", err)
	}
	if hdr.Key != key || hdr.Partial == nil {
		return nil, errors.New("harness: warm checkpoint: key mismatch")
	}
	snap, err := checkpoint.Decode(in)
	if err != nil {
		return nil, err
	}
	return &WarmCheckpoint{Partial: *hdr.Partial, Snap: snap}, nil
}
