//go:build race

package harness

// raceDetectorEnabled reports whether this binary was built with the
// race detector. Heavyweight equivalence sweeps trim their matrices
// under -race: the detector multiplies simulation cost ~20x, and the
// synchronization patterns it audits do not depend on how many
// applications run through them.
const raceDetectorEnabled = true
