package harness

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/obs"
	"cawa/internal/obs/perf"
	"cawa/internal/stats"
	"cawa/internal/workloads"
)

// wallBase anchors WallClock: reading nanoseconds as an offset from
// process start keeps the values on Go's monotonic clock (immune to
// wall-time steps) and small enough to survive any arithmetic the
// profiler does.
var wallBase = time.Now()

// WallClock is the host-backed perf.Clock. It lives in harness — not
// in the profiler or the engine — because cawalint bans wall-clock
// reads in the simulation packages; the harness is the outermost layer
// allowed to know what time it is, and injects it downward.
func WallClock() int64 { return int64(time.Since(wallBase)) }

// NewWallProfiler builds a perf.Profiler over the host clock with
// counter-track checkpoints every sampleEvery epochs (<= 0 disables
// checkpoints; perf.DefaultSampleEvery is the CLIs' choice).
func NewWallProfiler(sampleEvery int64) *perf.Profiler {
	return perf.New(WallClock, sampleEvery)
}

// PaperApps lists the twelve benchmarks in the paper's Table 2 order:
// the seven scheduler/cache-sensitive applications first.
var PaperApps = []string{
	"bfs", "b+tree", "heartwall", "kmeans", "needle", "srad_1", "strcltr_small",
	"backprop", "particle", "pathfinder", "strcltr_mid", "tpacf",
}

// SensApps returns the paper's Sens benchmarks.
func SensApps() []string { return PaperApps[:7] }

// NonSensApps returns the paper's Non-sens benchmarks.
func NonSensApps() []string { return PaperApps[7:] }

// RunKey names one (application, design point) cell of an experiment's
// run matrix. Experiments declare their matrix up front (see
// Experiment.Requests) so the session can simulate all cells in
// parallel before sequential table construction.
type RunKey struct {
	App    string
	System core.SystemConfig
}

// RunTiming records the wall-clock cost of one simulation the session's
// worker pool executed (cache hits and singleflight waiters are not
// recorded — each simulation appears exactly once).
type RunTiming struct {
	App     string  `json:"app"`
	System  string  `json:"system"`
	Seconds float64 `json:"seconds"`
}

// Session is a concurrent run scheduler: it executes application runs
// on a bounded worker pool (default runtime.NumCPU), caches results,
// and deduplicates concurrent requests for the same (app, design
// point) so each cell simulates exactly once (singleflight). All
// methods are safe for concurrent use. Each simulation is itself
// single-threaded and fully self-contained (per-instance GPU, memory
// image and workload RNG), so results are deterministic regardless of
// worker count or completion order.
type Session struct {
	// Config is the simulated architecture; defaults to GTX480.
	Config config.Config
	// Params scales workloads; defaults to workloads.DefaultParams.
	Params workloads.Params
	// Apps, when non-nil, restricts the application set experiments
	// iterate over (default: PaperApps). Reduced-scale tests use it to
	// run a figure on a subset of benchmarks.
	Apps []string
	// DisableFastForward forces every run the session launches onto the
	// tick-every-cycle engine. The event-driven engine produces
	// byte-identical results (proven by TestEngineEquivalenceMatrix), so
	// the result cache is deliberately not keyed on this switch.
	DisableFastForward bool
	// Disk, when non-nil, backs the in-memory result cache with a
	// persistent content-addressed store: misses consult it before
	// simulating, and fresh results are written through, so restarts and
	// repeated campaigns skip re-simulation (see DiskCache).
	Disk *DiskCache
	// BarrierSpins overrides the parallel engine's epoch-barrier spin
	// budget for every run the session launches (0 = default; see
	// gpu.GPU.BarrierSpins). Results are byte-identical at any value,
	// so the result cache is deliberately not keyed on it.
	BarrierSpins int
	// Lookahead enables multi-cycle safe-horizon epochs for every
	// parallel run the session launches (see gpu.GPU.Lookahead).
	// Results are byte-identical with it on or off, so the result cache
	// is deliberately not keyed on it.
	Lookahead bool
	// SampleWarmup and SampleInterval apply sampled simulation to every
	// run the session launches (see RunOptions.SampleWarmup). Unlike the
	// engine switches above, sampling CHANGES the aggregate numbers, so
	// the disk-cache key is extended with the sampling parameters when
	// active — sampled and full-detail campaigns never share entries.
	// The in-memory cache needs no such keying: these fields are set
	// before the session's first run and never changed.
	SampleWarmup   int
	SampleInterval int
	// CheckpointEvery pins the warm-start capture cadence in simulated
	// cycles for disk-backed runs (0 = DefaultCheckpointEvery). Purely
	// a host-side knob; simulated results are identical at any value.
	CheckpointEvery int64

	mu       sync.Mutex
	cache    map[string]*flight
	sem      chan struct{}
	smpar    int // target SM-domain goroutines per run (<=1: serial)
	profile  bool
	perfAgg  *perf.Profiler // merged profile across runs; nil until profiling enabled
	records  []obs.RunRecord
	hits     uint64 // Run requests served from the in-memory cache
	misses   uint64 // Run requests that missed the in-memory cache
	diskHits uint64 // misses answered by the disk cache without simulating
	// warmResumes counts simulations that warm-started from a persisted
	// checkpoint instead of beginning at cycle zero.
	warmResumes uint64
	started     time.Time

	// runFn, when non-nil, replaces RunContext as the simulation
	// executor. It is a seam for tests (injected failures, controlled
	// run durations); production code never sets it.
	runFn func(ctx context.Context, opt RunOptions) (*Result, error)
}

// flight is one singleflight cache slot: the first requester simulates
// and closes done; later requesters block on done and share the result.
type flight struct {
	done chan struct{}
	res  *Result
	err  error
}

// NewSession builds a Session with the given architecture and workload
// scaling, sized to runtime.NumCPU workers.
func NewSession(cfg config.Config, p workloads.Params) *Session {
	return &Session{
		Config:  cfg,
		Params:  p,
		cache:   make(map[string]*flight),
		sem:     make(chan struct{}, runtime.NumCPU()),
		started: time.Now(),
	}
}

// DefaultSession uses the GTX480 configuration and default scaling.
func DefaultSession() *Session {
	return NewSession(config.GTX480(), workloads.DefaultParams())
}

// SetWorkers bounds the number of simulations in flight (values below 1
// clamp to 1) and returns the session for chaining. Runs already
// holding a slot finish under the previous bound.
func (s *Session) SetWorkers(n int) *Session {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	s.sem = make(chan struct{}, n)
	s.mu.Unlock()
	return s
}

// Workers returns the current worker-pool bound.
func (s *Session) Workers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return cap(s.sem)
}

// SMParallel asks every run the session launches to use up to n
// SM-domain goroutines (the parallel intra-run engine; results are
// byte-identical, see gpu.GPU.SMWorkers). Values <= 1 disable it.
//
// Run-level and SM-level parallelism are budgeted from the same worker
// pool: a run always holds its base slot and opportunistically claims
// up to n-1 extra slots for its domain goroutines, returning them when
// it finishes. Total concurrency therefore never exceeds Workers() —
// when the pool is saturated by runs, every run degrades gracefully to
// the serial engine, and when runs are scarce (the tail of a sweep,
// a single cache-miss request in cawaserve) the idle slots accelerate
// the runs still in flight.
func (s *Session) SMParallel(n int) *Session {
	s.mu.Lock()
	s.smpar = n
	s.mu.Unlock()
	return s
}

// EnableProfiling turns on engine self-profiling for every subsequent
// run: each simulation gets a private wall-clock perf.Profiler (no
// cross-run sharing — domain workers of concurrent runs must never
// write one accumulator) whose totals merge into a session-wide
// profile when the run finishes. Chainable. Profiling is observational
// only — results stay byte-identical — so the result cache is not
// keyed on it; note that cache and disk hits skip simulation entirely
// and therefore contribute nothing to the profile.
func (s *Session) EnableProfiling() *Session {
	s.mu.Lock()
	s.profile = true
	if s.perfAgg == nil {
		s.perfAgg = NewWallProfiler(0)
	}
	s.mu.Unlock()
	return s
}

// PerfReport snapshots the session-wide merged engine profile, or nil
// when EnableProfiling was never called.
func (s *Session) PerfReport() *perf.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.perfAgg == nil {
		return nil
	}
	return s.perfAgg.Report()
}

// SetRunFunc replaces the simulation executor with fn (nil restores
// the default, RunContext). This is a seam for harness- and
// service-level tests that need injected failures or runs whose
// duration they control; it must never be set in production code.
func (s *Session) SetRunFunc(fn func(ctx context.Context, opt RunOptions) (*Result, error)) {
	s.mu.Lock()
	s.runFn = fn
	s.mu.Unlock()
}

// acquire claims one base worker slot (blocking until one frees or ctx
// dies) plus up to extra additional slots claimed opportunistically
// (non-blocking), all from the same semaphore so run-level and
// SM-level concurrency share one budget. It returns the total number
// of slots held and their release func.
func (s *Session) acquire(ctx context.Context, extra int) (held int, release func(), err error) {
	s.mu.Lock()
	sem := s.sem
	s.mu.Unlock()
	select {
	case sem <- struct{}{}:
		held = 1
	case <-ctx.Done():
		return 0, nil, ctx.Err()
	}
	for held-1 < extra {
		select {
		case sem <- struct{}{}:
			held++
		default:
			extra = 0 // pool saturated; stop asking
		}
	}
	n := held
	return held, func() {
		for i := 0; i < n; i++ {
			<-sem
		}
	}, nil
}

// simulate executes one run under the worker-pool bound and records a
// manifest entry with its wall-clock cost and outcome.
func (s *Session) simulate(ctx context.Context, opt RunOptions) (*Result, error) {
	r, _, err := s.simulateCore(ctx, opt, nil, false)
	return r, err
}

// simulateResumable is simulate with warm-start checkpointing: the run
// captures periodic in-memory checkpoints, resumes from warm when
// non-nil instead of re-simulating its prefix, and on a ctx-cut run
// returns the latest checkpoint so the caller can persist it. A
// SetRunFunc seam disables checkpointing (the seam replaces the engine
// entirely), degrading to plain simulation.
func (s *Session) simulateResumable(ctx context.Context, opt RunOptions, warm *WarmCheckpoint) (*Result, *WarmCheckpoint, error) {
	return s.simulateCore(ctx, opt, warm, true)
}

func (s *Session) simulateCore(ctx context.Context, opt RunOptions, warm *WarmCheckpoint, resumable bool) (*Result, *WarmCheckpoint, error) {
	s.mu.Lock()
	smpar := s.smpar
	profile := s.profile
	if opt.BarrierSpins == 0 {
		opt.BarrierSpins = s.BarrierSpins
	}
	if s.Lookahead {
		opt.Lookahead = true
	}
	if opt.SampleInterval == 0 {
		opt.SampleWarmup = s.SampleWarmup
		opt.SampleInterval = s.SampleInterval
	}
	s.mu.Unlock()
	extra := 0
	if smpar > 1 && opt.SMWorkers == 0 {
		extra = smpar - 1
	}
	held, release, err := s.acquire(ctx, extra)
	if err != nil {
		return nil, nil, err
	}
	if extra > 0 {
		// The run's engine width is however many slots the pool could
		// spare right now (>= 1). Results are byte-identical at any
		// width, so the cache never keys on it.
		opt.SMWorkers = held
	}
	if profile && opt.Profiler == nil {
		// One private profiler per run: concurrent runs must not share
		// an accumulator (domain workers write per-shard slots). The
		// totals merge into the session profile below.
		opt.Profiler = NewWallProfiler(perf.DefaultSampleEvery)
	}
	s.mu.Lock()
	run := s.runFn
	s.mu.Unlock()
	var (
		r    *Result
		last *WarmCheckpoint
	)
	start := time.Now()
	if run == nil && resumable {
		r, last, err = RunCheckpointed(ctx, opt, s.CheckpointEvery, warm)
	} else {
		if run == nil {
			run = RunContext
		}
		r, err = run(ctx, opt)
	}
	elapsed := time.Since(start)
	release()
	if profile && opt.Profiler != nil {
		s.mu.Lock()
		if s.perfAgg != nil {
			s.perfAgg.Merge(opt.Profiler)
		}
		s.mu.Unlock()
	}
	rec := obs.RunRecord{
		App:     opt.Workload,
		System:  opt.System.Label(),
		Seconds: elapsed.Seconds(),
	}
	if key, kerr := opt.System.Key(); kerr == nil {
		rec.SystemKey = key
	} else {
		rec.SystemKey = rec.System
	}
	switch {
	case err != nil:
		rec.Err = err.Error()
	default:
		rec.Launches = r.Launches
		rec.Cycles = r.Agg.Cycles
		rec.Instrs = r.Agg.Instructions
		rec.IPC = r.Agg.IPC()
		rec.Warps = len(r.Agg.Warps)
	}
	s.mu.Lock()
	s.records = append(s.records, rec)
	s.mu.Unlock()
	return r, last, err
}

// Run simulates (or returns the cached) application run on the design
// point. Concurrent calls with the same key share one simulation.
func (s *Session) Run(app string, sc core.SystemConfig) (*Result, error) {
	return s.RunContext(context.Background(), app, sc)
}

// RunContext is Run with cancellation: if ctx dies while the request is
// queued for a worker slot, waiting on another caller's in-flight
// simulation, or mid-simulation, the call returns ctx's error promptly.
//
// Failure handling: a flight that ends in an error — including a
// cancellation — is evicted from the cache before its waiters are
// released, so one transient failure never poisons the (app, design
// point) for the session's lifetime; the next request re-simulates.
// Waiters sharing the failed flight receive its error (standard
// singleflight semantics), but a waiter whose own ctx dies first
// detaches with its own ctx error and leaves the flight untouched.
//
// Successful results are cached with their GPU reference dropped
// (Result.ReleaseGPU): a long-running session holds only the
// snapshotted statistics, never the runs' memory images.
func (s *Session) RunContext(ctx context.Context, app string, sc core.SystemConfig) (*Result, error) {
	sysKey, err := sc.Key()
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", app, err)
	}
	key := app + "|" + sysKey
	s.mu.Lock()
	if s.cache == nil {
		s.cache = make(map[string]*flight)
	}
	if f, ok := s.cache[key]; ok {
		s.hits++
		s.mu.Unlock()
		select {
		case <-f.done:
			return f.res, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.cache[key] = f
	s.misses++
	disk := s.Disk
	s.mu.Unlock()

	var (
		warm     *WarmCheckpoint
		entryKey string
		ckptKey  string
	)
	if disk != nil {
		entryKey = s.diskEntryKey(disk, app, sysKey)
		if res, ok := disk.Load(entryKey); ok {
			s.mu.Lock()
			s.diskHits++
			s.mu.Unlock()
			f.res = res
			close(f.done)
			return f.res, f.err
		}
		// Warm start: a checkpoint persisted by an earlier cancelled or
		// deadline-cut run resumes instead of re-simulating its prefix.
		// Stale engine versions or damaged blobs read back as misses.
		ckptKey = disk.CheckpointKey(entryKey)
		if w, ok := disk.LoadCheckpoint(ckptKey); ok {
			warm = w
			s.mu.Lock()
			s.warmResumes++
			s.mu.Unlock()
		}
	}

	opt := RunOptions{
		Workload: app, Params: s.Params, System: sc, Config: s.Config,
		DisableFastForward: s.DisableFastForward,
	}
	if disk == nil {
		f.res, f.err = s.simulate(ctx, opt)
	} else {
		var last *WarmCheckpoint
		f.res, last, f.err = s.simulateResumable(ctx, opt, warm)
		if f.err != nil && last != nil && ctx.Err() != nil {
			// The run was cut short; persist its progress so the next
			// attempt resumes here. Best-effort like the result
			// write-through.
			disk.StoreCheckpoint(ckptKey, last) //nolint:errcheck
		}
	}
	if f.err != nil {
		// Evict before releasing waiters: a retry must re-simulate
		// rather than observe the stale error as a cache "hit".
		s.mu.Lock()
		if s.cache[key] == f {
			delete(s.cache, key)
		}
		s.mu.Unlock()
	} else {
		f.res.ReleaseGPU()
		if disk != nil {
			// Write-through is best-effort: a full or read-only disk
			// degrades to in-memory caching, never to a failed run.
			disk.Store(entryKey, f.res) //nolint:errcheck
			// The final result supersedes any warm checkpoint.
			disk.RemoveCheckpoint(ckptKey)
		}
	}
	close(f.done)
	return f.res, f.err
}

// RunUncached executes one run under the session's worker-pool bound
// without touching the result cache. Experiments whose runs carry
// per-run instrumentation (PerCycle samplers, AttachL1 taps) use it so
// hooked runs still respect -j and appear in the timing summary. Zero
// Params/Config fields default to the session's.
func (s *Session) RunUncached(opt RunOptions) (*Result, error) {
	if opt.Params == (workloads.Params{}) {
		opt.Params = s.Params
	}
	if opt.Config.NumSMs == 0 {
		opt.Config = s.Config
	}
	if s.DisableFastForward {
		opt.DisableFastForward = true
	}
	return s.simulate(context.Background(), opt)
}

// Prewarm simulates every key of the run matrix across the worker
// pool, deduplicating against the cache and against concurrent
// requests, and returns the first (lowest-index) error.
func (s *Session) Prewarm(keys []RunKey) error {
	return s.Fanout(len(keys), func(i int) error {
		_, err := s.Run(keys[i].App, keys[i].System)
		return err
	})
}

// Fanout runs fn(0) … fn(n-1) concurrently and returns the
// lowest-index error (deterministic under nondeterministic completion
// order). fn bodies self-limit through Run/RunUncached, so Fanout
// itself imposes no bound and nested fan-outs cannot deadlock the
// pool.
func (s *Session) Fanout(n int, fn func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Timings returns a copy of the per-simulation wall-clock records, in
// completion order.
func (s *Session) Timings() []RunTiming {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RunTiming, len(s.records))
	for i, r := range s.records {
		out[i] = RunTiming{App: r.App, System: r.System, Seconds: r.Seconds}
	}
	return out
}

// CacheStats returns how many Session.Run requests were served from
// the result cache (including singleflight waiters) versus simulated.
func (s *Session) CacheStats() (hits, misses uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

// DiskHits returns how many in-memory cache misses were answered by
// the persistent disk cache without simulating.
func (s *Session) DiskHits() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.diskHits
}

// diskEntryKey is the session's persistent identity for one run:
// DiskCache.EntryKey extended with the sampling parameters when sampled
// simulation is active, because sampled aggregates are genuinely
// different numbers than full-detail ones.
func (s *Session) diskEntryKey(disk *DiskCache, app, sysKey string) string {
	key := disk.EntryKey(app, sysKey, s.Params, s.Config)
	if s.SampleInterval > 1 {
		key += fmt.Sprintf("|sample=%d+%d", s.SampleWarmup, s.SampleInterval)
	}
	return key
}

// WarmResumes reports how many simulations warm-started from a
// persisted checkpoint instead of beginning at cycle zero.
func (s *Session) WarmResumes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.warmResumes
}

// Manifest snapshots the session — architecture, workload scaling,
// worker count, cache effectiveness, and every simulation executed so
// far — as one observability document.
func (s *Session) Manifest() *obs.Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	var perfReport *perf.Report
	if s.perfAgg != nil {
		perfReport = s.perfAgg.Report()
	}
	return &obs.Manifest{
		Perf:         perfReport,
		Architecture: s.Config.Name,
		NumSMs:       s.Config.NumSMs,
		Scale:        s.Params.Scale,
		Seed:         s.Params.Seed,
		Workers:      cap(s.sem),
		CacheHits:    s.hits,
		CacheMisses:  s.misses,
		DiskHits:     s.diskHits,
		WallSeconds:  time.Since(s.started).Seconds(),
		Runs:         append([]obs.RunRecord(nil), s.records...),
	}
}

// paperApps is the application set experiments iterate over: the
// session's Apps restriction, or the full paper list.
func (s *Session) paperApps() []string {
	if s.Apps != nil {
		return s.Apps
	}
	return PaperApps
}

// sensApps restricts SensApps to the session's application set.
func (s *Session) sensApps() []string {
	if s.Apps == nil {
		return SensApps()
	}
	sens := make(map[string]bool, len(SensApps()))
	for _, a := range SensApps() {
		sens[a] = true
	}
	var out []string
	for _, a := range s.Apps {
		if sens[a] {
			out = append(out, a)
		}
	}
	return out
}

// Baseline returns the cached round-robin run of app.
func (s *Session) Baseline(app string) (*Result, error) {
	return s.Run(app, core.Baseline())
}

// OracleFor profiles app under the baseline scheduler and returns the
// per-warp execution times used as oracle criticality by CAWS.
func (s *Session) OracleFor(app string) (map[int]float64, error) {
	r, err := s.Baseline(app)
	if err != nil {
		return nil, err
	}
	oracle := make(map[int]float64, len(r.Agg.Warps))
	for _, w := range r.Agg.Warps {
		oracle[w.GID] = float64(w.ExecTime())
	}
	return oracle, nil
}

// matrix builds the cross product of apps and design points as a run
// matrix for Prewarm.
func matrix(apps []string, systems ...core.SystemConfig) []RunKey {
	keys := make([]RunKey, 0, len(apps)*len(systems))
	for _, app := range apps {
		for _, sc := range systems {
			keys = append(keys, RunKey{App: app, System: sc})
		}
	}
	return keys
}

// CriticalGIDs returns, for a finished run, the global warp id of the
// slowest (critical) warp of every block with at least minWarps warps.
func CriticalGIDs(agg *stats.Launch, minWarps int) map[int]bool {
	out := make(map[int]bool)
	for _, ws := range agg.BlockGroup() {
		if len(ws) < minWarps {
			continue
		}
		out[stats.CriticalWarp(ws).GID] = true
	}
	return out
}

// pickBlock selects the block with the highest warp execution time
// disparity among blocks with at least minWarps warps, returning its
// warp records sorted fastest-first.
func pickBlock(agg *stats.Launch, minWarps int) []stats.WarpRecord {
	groups := agg.BlockGroup()
	ids := make([]int, 0, len(groups))
	for id, ws := range groups {
		if len(ws) >= minWarps {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		for id := range groups {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	best, bestD := -1, -1.0
	for _, id := range ids {
		if d := stats.BlockDisparity(groups[id]); d > bestD {
			best, bestD = id, d
		}
	}
	if best < 0 {
		return nil
	}
	return stats.SortedByExecTime(groups[best])
}
