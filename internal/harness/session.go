package harness

import (
	"fmt"
	"sort"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/stats"
	"cawa/internal/workloads"
)

// PaperApps lists the twelve benchmarks in the paper's Table 2 order:
// the seven scheduler/cache-sensitive applications first.
var PaperApps = []string{
	"bfs", "b+tree", "heartwall", "kmeans", "needle", "srad_1", "strcltr_small",
	"backprop", "particle", "pathfinder", "strcltr_mid", "tpacf",
}

// SensApps returns the paper's Sens benchmarks.
func SensApps() []string { return PaperApps[:7] }

// NonSensApps returns the paper's Non-sens benchmarks.
func NonSensApps() []string { return PaperApps[7:] }

// Session caches application runs so experiments sharing a design point
// (e.g. the round-robin baseline) simulate it once.
type Session struct {
	// Config is the simulated architecture; defaults to GTX480.
	Config config.Config
	// Params scales workloads; defaults to workloads.DefaultParams.
	Params workloads.Params

	cache map[string]*Result
}

// NewSession builds a Session with the given architecture and workload
// scaling.
func NewSession(cfg config.Config, p workloads.Params) *Session {
	return &Session{Config: cfg, Params: p, cache: make(map[string]*Result)}
}

// DefaultSession uses the GTX480 configuration and default scaling.
func DefaultSession() *Session {
	return NewSession(config.GTX480(), workloads.DefaultParams())
}

// Run simulates (or returns the cached) application run on the design
// point.
func (s *Session) Run(app string, sc core.SystemConfig) (*Result, error) {
	key := fmt.Sprintf("%s|%s|cpl=%v|cacp=%v|oracle=%v", app, sc.Scheduler, sc.CPL, sc.CACP, sc.Oracle != nil)
	if sc.CACPConfig != nil {
		key += fmt.Sprintf("|ways=%d|sig=%d", sc.CACPConfig.CriticalWays, sc.CACPConfig.Signature)
	}
	if sc.CPLTweak != nil {
		key += fmt.Sprintf("|tweak=%p", sc.CPLTweak)
	}
	if r, ok := s.cache[key]; ok {
		return r, nil
	}
	r, err := Run(RunOptions{Workload: app, Params: s.Params, System: sc, Config: s.Config})
	if err != nil {
		return nil, err
	}
	s.cache[key] = r
	return r, nil
}

// Baseline returns the cached round-robin run of app.
func (s *Session) Baseline(app string) (*Result, error) {
	return s.Run(app, core.Baseline())
}

// OracleFor profiles app under the baseline scheduler and returns the
// per-warp execution times used as oracle criticality by CAWS.
func (s *Session) OracleFor(app string) (map[int]float64, error) {
	r, err := s.Baseline(app)
	if err != nil {
		return nil, err
	}
	oracle := make(map[int]float64, len(r.Agg.Warps))
	for _, w := range r.Agg.Warps {
		oracle[w.GID] = float64(w.ExecTime())
	}
	return oracle, nil
}

// CriticalGIDs returns, for a finished run, the global warp id of the
// slowest (critical) warp of every block with at least minWarps warps.
func CriticalGIDs(agg *stats.Launch, minWarps int) map[int]bool {
	out := make(map[int]bool)
	for _, ws := range agg.BlockGroup() {
		if len(ws) < minWarps {
			continue
		}
		out[stats.CriticalWarp(ws).GID] = true
	}
	return out
}

// pickBlock selects the block with the highest warp execution time
// disparity among blocks with at least minWarps warps, returning its
// warp records sorted fastest-first.
func pickBlock(agg *stats.Launch, minWarps int) []stats.WarpRecord {
	groups := agg.BlockGroup()
	ids := make([]int, 0, len(groups))
	for id, ws := range groups {
		if len(ws) >= minWarps {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		for id := range groups {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	best, bestD := -1, -1.0
	for _, id := range ids {
		if d := stats.BlockDisparity(groups[id]); d > bestD {
			best, bestD = id, d
		}
	}
	if best < 0 {
		return nil
	}
	return stats.SortedByExecTime(groups[best])
}
