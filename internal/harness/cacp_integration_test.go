package harness

import (
	"testing"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/workloads"
)

// TestCACPEngagesEndToEnd: after a CAWA run, the per-SM CACP policies
// must have made both critical and non-critical predictions, and the
// criticality flag must reach the cache (some lines filled by
// predicted-critical warps).
func TestCACPEngagesEndToEnd(t *testing.T) {
	res, err := Run(RunOptions{
		Workload: "kmeans",
		Params:   workloads.Params{Scale: 0.05, Seed: 3},
		System:   core.CAWA(),
		Config:   config.Small(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var predCrit, predNon uint64
	var critFills int
	for _, m := range res.GPU.SMs() {
		p, ok := m.L1D().Cache().Policy().(*core.CACP)
		if !ok {
			t.Fatal("CAWA run without a CACP L1 policy")
		}
		predCrit += p.PredCritical
		predNon += p.PredNonCritical
		c := m.L1D().Cache()
		for s := 0; s < c.Sets(); s++ {
			for w := 0; w < c.Ways(); w++ {
				if l := c.Line(s, w); l.Valid && l.FillCritical {
					critFills++
				}
			}
		}
	}
	if predCrit == 0 || predNon == 0 {
		t.Fatalf("CCBP predictions one-sided: critical=%d non=%d", predCrit, predNon)
	}
	if critFills == 0 {
		t.Fatal("no resident line was filled by a predicted-critical warp")
	}
}

// TestCPLDrivesGCAWSEndToEnd: under gCAWS, per-slot criticality must be
// non-trivial during execution — checked post-hoc via the providers'
// block bookkeeping being drained (all warps finished) and the run
// differing from the baseline scheduler's cycle count.
func TestCPLDrivesGCAWSEndToEnd(t *testing.T) {
	p := workloads.Params{Scale: 0.05, Seed: 3}
	base, err := Run(RunOptions{Workload: "bfs", Params: p, System: core.Baseline(), Config: config.Small()})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Run(RunOptions{Workload: "bfs", Params: p,
		System: core.SystemConfig{Scheduler: "gcaws", CPL: true}, Config: config.Small()})
	if err != nil {
		t.Fatal(err)
	}
	if base.Agg.Instructions != g.Agg.Instructions {
		t.Fatalf("schedulers changed the committed instruction count: %d vs %d",
			base.Agg.Instructions, g.Agg.Instructions)
	}
	if base.Agg.Cycles == g.Agg.Cycles {
		t.Log("note: gCAWS and RR produced identical cycle counts (possible but unusual)")
	}
	for _, m := range g.GPU.SMs() {
		if _, ok := m.Crit().(*core.CPL); !ok {
			t.Fatal("gCAWS run without CPL providers")
		}
	}
}
