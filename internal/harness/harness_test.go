package harness

import (
	"strings"
	"testing"

	"cawa/internal/config"
	"cawa/internal/workloads"
)

func testSession() *Session {
	return NewSession(config.Small(), workloads.Params{Scale: 0.25, Seed: 7})
}

// TestExperimentsProduceTables smoke-runs every registered experiment
// on a reduced configuration and checks each yields a non-empty table.
func TestExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is slow")
	}
	s := testSession()
	for _, id := range ExperimentIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tbl, err := RunExperiment(id, s)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if tbl.Rows() == 0 {
				t.Fatalf("%s: empty table", id)
			}
			if !strings.Contains(tbl.String(), tbl.ID) {
				t.Fatalf("%s: rendering lacks id", id)
			}
			t.Logf("\n%s", tbl)
		})
	}
}
