package harness

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"testing"
	"time"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/workloads"
)

// TestSessionEvictsErroredFlight is the regression test for the
// error-poisoning bug: Session.Run used to cache a failed flight
// forever, so one transient failure turned every later request for
// that (app, design point) into the same stale error. A failed flight
// must be evicted so the next request re-simulates.
func TestSessionEvictsErroredFlight(t *testing.T) {
	s := NewSession(config.Small(), workloads.Params{Scale: 0.05, Seed: 3})
	injected := errors.New("injected transient failure")
	calls := 0
	s.SetRunFunc(func(ctx context.Context, opt RunOptions) (*Result, error) {
		calls++
		if calls == 1 {
			return nil, injected
		}
		return RunContext(ctx, opt)
	})

	if _, err := s.Run("bfs", core.Baseline()); !errors.Is(err, injected) {
		t.Fatalf("first run: got %v, want the injected failure", err)
	}
	res, err := s.Run("bfs", core.Baseline())
	if err != nil {
		t.Fatalf("second run after transient failure: %v (error was cached)", err)
	}
	if res == nil || res.Agg.Cycles == 0 {
		t.Fatal("second run returned no result")
	}
	if calls != 2 {
		t.Fatalf("executor ran %d times, want 2 (fail, then re-simulate)", calls)
	}
	// Both requests were cache misses: the failed flight must not count
	// (or serve) as a hit.
	hits, misses := s.CacheStats()
	if hits != 0 || misses != 2 {
		t.Errorf("cache stats after fail+retry: hits=%d misses=%d, want 0/2", hits, misses)
	}
	// Third request is a genuine hit on the good result.
	if _, err := s.Run("bfs", core.Baseline()); err != nil {
		t.Fatal(err)
	}
	if hits, _ := s.CacheStats(); hits != 1 {
		t.Errorf("third run: hits=%d, want 1", hits)
	}
}

// TestSessionCachedResultsDropGPU is the regression test for the
// memory-leak bug: cached Results used to pin the run's entire *gpu.GPU
// — SMs, caches, and the workload's memory image — for the session's
// lifetime. Cached entries must hold only snapshotted statistics.
func TestSessionCachedResultsDropGPU(t *testing.T) {
	s := NewSession(config.Small(), workloads.Params{Scale: 0.05, Seed: 3})
	if err := s.Prewarm(matrix(PaperApps, core.Baseline())); err != nil {
		t.Fatal(err)
	}
	for _, app := range PaperApps {
		res, err := s.Run(app, core.Baseline())
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if res.GPU != nil {
			t.Errorf("%s: cached result retains its *gpu.GPU (memory image pinned)", app)
		}
		// The snapshot must cover what experiments read from cached
		// results: spans and the pooled per-warp L1 counters.
		if len(res.Spans) == 0 {
			t.Errorf("%s: cached result has no launch spans", app)
		}
		if len(res.WarpL1Accesses) == 0 {
			t.Errorf("%s: cached result has no per-warp L1 snapshot", app)
		}
		// And it must be serializable (the disk cache and the serving
		// layer both marshal Results).
		if _, err := json.Marshal(res); err != nil {
			t.Errorf("%s: cached result not serializable: %v", app, err)
		}
	}
	// Direct runs keep the live GPU for instrumented consumers.
	direct, err := Run(RunOptions{
		Workload: "bfs", Params: s.Params, System: core.Baseline(), Config: s.Config,
	})
	if err != nil {
		t.Fatal(err)
	}
	if direct.GPU == nil {
		t.Error("direct Run dropped its GPU; instrumented experiments need it")
	}
}

// TestReleaseGPUFreesMemoryImage pins the release mechanism end to end:
// once a Result drops its GPU reference, the GPU (and with it the
// workload memory image) becomes collectable.
func TestReleaseGPUFreesMemoryImage(t *testing.T) {
	res, err := Run(RunOptions{
		Workload: "bfs", Params: workloads.Params{Scale: 0.05, Seed: 3},
		System: core.Baseline(), Config: config.Small(),
	})
	if err != nil {
		t.Fatal(err)
	}
	collected := make(chan struct{})
	runtime.SetFinalizer(res.GPU, func(any) { close(collected) })
	res.ReleaseGPU()
	deadline := time.After(10 * time.Second)
	for {
		runtime.GC()
		select {
		case <-collected:
			return
		case <-deadline:
			t.Fatal("GPU not collected after ReleaseGPU; something still pins the memory image")
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
}
