package harness

import (
	"encoding/json"
	"strings"
	"testing"

	"cawa/internal/core"
	"cawa/internal/stats"
)

func TestTableFormatting(t *testing.T) {
	tbl := NewTable("t1", "demo", "name", "a", "b")
	tbl.AddRow("x", 1, 2.5)
	tbl.AddTextRow("y", "p", "q")
	tbl.Note = "note line"
	s := tbl.String()
	for _, want := range []string{"t1", "demo", "note line", "2.500", "p"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
	if tbl.Rows() != 2 || tbl.Label(0) != "x" || tbl.Value(0, 1) != "2.500" {
		t.Fatalf("accessors broken: %q %q", tbl.Label(0), tbl.Value(0, 1))
	}
	// Integers collapse to plain form.
	if tbl.Value(0, 0) != "1" {
		t.Fatalf("int formatting %q", tbl.Value(0, 0))
	}
}

func TestTableJSON(t *testing.T) {
	tbl := NewTable("fx", "json demo", "name", "v")
	tbl.AddRow("a", 1.25)
	doc, err := json.Marshal(tbl)
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		ID      string   `json:"id"`
		Columns []string `json:"columns"`
		Rows    []struct {
			Label  string   `json:"label"`
			Values []string `json:"values"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(doc, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != "fx" || len(back.Rows) != 1 || back.Rows[0].Values[0] != "1.250" {
		t.Fatalf("roundtrip: %+v", back)
	}
}

func TestPaperAppsRegistered(t *testing.T) {
	if len(PaperApps) != 12 {
		t.Fatalf("paper app list has %d entries", len(PaperApps))
	}
	if len(SensApps()) != 7 || len(NonSensApps()) != 5 {
		t.Fatalf("category split %d/%d", len(SensApps()), len(NonSensApps()))
	}
}

func TestSessionCaching(t *testing.T) {
	s := testSession()
	r1, err := s.Run("needle", core.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run("needle", core.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("identical design point re-simulated")
	}
	r3, err := s.Run("needle", core.SystemConfig{Scheduler: "gto"})
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Fatal("different design points shared a cache entry")
	}
}

func TestOracleForCoversAllWarps(t *testing.T) {
	s := testSession()
	oracle, err := s.OracleFor("needle")
	if err != nil {
		t.Fatal(err)
	}
	base, _ := s.Baseline("needle")
	if len(oracle) != len(base.Agg.Warps) {
		t.Fatalf("oracle entries %d, warps %d", len(oracle), len(base.Agg.Warps))
	}
	for gid, v := range oracle {
		if v <= 0 {
			t.Fatalf("oracle[%d] = %v", gid, v)
		}
	}
}

func TestCriticalGIDs(t *testing.T) {
	agg := &stats.Launch{Warps: []stats.WarpRecord{
		{GID: 0, Block: 0, FinishCycle: 100},
		{GID: 1, Block: 0, FinishCycle: 300},
		{GID: 2, Block: 1, FinishCycle: 50},
	}}
	crit := CriticalGIDs(agg, 2)
	if !crit[1] || crit[0] || crit[2] {
		t.Fatalf("critical set %v", crit)
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if _, err := Run(RunOptions{Workload: "nope"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := RunExperiment("nope", testSession()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2a", "fig2b", "fig2c", "fig3", "fig4", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "tab1", "tab2", "sec552",
		"abl-cpl", "abl-greedy", "abl-partition", "abl-signature",
		"abl-dynpart", "ext-ccws",
	}
	ids := ExperimentIDs()
	have := make(map[string]bool, len(ids))
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registered %d experiments, want %d: %v", len(ids), len(want), ids)
	}
}
