// Package harness runs workloads on configured GPU design points and
// regenerates every table and figure of the paper's motivation and
// evaluation sections (see DESIGN.md for the experiment index).
package harness

import (
	"context"
	"fmt"

	"cawa/internal/checkpoint"
	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/gpu"
	"cawa/internal/memsys"
	"cawa/internal/obs/perf"
	"cawa/internal/stats"
	"cawa/internal/workloads"
)

// RunOptions describes one simulated application run.
type RunOptions struct {
	// Workload is a registered workload name.
	Workload string
	// Params tunes the workload size and seed (zero value = defaults).
	Params workloads.Params
	// System is the design point (scheduler / CPL / CACP combination).
	System core.SystemConfig
	// Config is the architecture; zero value means config.GTX480().
	Config config.Config
	// AttachL1, when set, is called for every SM's L1D before the run
	// (profiler taps).
	AttachL1 func(smID int, l1 *memsys.L1D)
	// PerCycle, when set, samples the GPU every cycle. Setting it
	// disables idle-cycle fast-forwarding unless PerCycleWake is also
	// provided (see gpu.GPU.PerCycle).
	PerCycle func(g *gpu.GPU, cycle int64)
	// PerCycleWake, when set alongside PerCycle, tells the event-driven
	// cycle engine the next cycle the hook must observe (for cadenced
	// samplers: obs.Sampler.NextWake).
	PerCycleWake func(now int64) int64
	// DisableFastForward forces the tick-every-cycle engine. Results
	// are byte-identical either way; the switch exists for equivalence
	// tests and debugging (see gpu.GPU.DisableFastForward).
	DisableFastForward bool
	// SMWorkers, when greater than 1, runs the simulation on the
	// parallel per-SM execution-domain engine with that many domain
	// goroutines (see gpu.GPU.SMWorkers). Results are byte-identical
	// to the serial engine. Runs that attach cross-SM shared observers
	// (AttachL1 taps, a ProviderOverride) are forced serial: those
	// closures may share mutable state between SMs, which only the
	// serial engine may do.
	SMWorkers int
	// BarrierSpins pins the parallel engine's epoch-barrier spin
	// budget (see gpu.GPU.BarrierSpins). 0 keeps the adaptive
	// controller. Purely a host performance knob; results are
	// byte-identical at any value.
	BarrierSpins int
	// Lookahead enables multi-cycle safe-horizon epochs on the parallel
	// engine (see gpu.GPU.Lookahead). Results are byte-identical with
	// it on or off; the switch only changes barrier frequency. Ignored
	// by serial runs.
	Lookahead bool
	// Profiler, when non-nil, self-profiles the engine's wall-clock
	// phases into the given accumulator (see gpu.GPU.Perf and
	// internal/obs/perf). Observational only: simulation results are
	// byte-identical with or without it (TestProfilerEquivalence).
	Profiler *perf.Profiler
	// SkipVerify skips the functional check against the Go reference.
	SkipVerify bool

	// SampleWarmup and SampleInterval enable SimPoint-style sampled
	// simulation over the workload's launch sequence. Sampling is active
	// when SampleInterval > 1: launch index ix runs on the detailed
	// timing model iff ix < SampleWarmup (the cache/predictor warmup
	// prefix) or (ix-SampleWarmup)%SampleInterval == 0 (the periodic
	// sample windows); every other launch executes functionally
	// (checkpoint.FunctionalLaunch) — exact memory effects, no timing.
	// Verify stays exact under sampling; Agg covers only the detailed
	// launches (Result.Detailed counts them). See DESIGN.md for the
	// sampling error budget.
	SampleWarmup   int
	SampleInterval int
}

// sampleDetailed reports whether launch ix runs on the detailed timing
// model under the given sampling parameters.
func sampleDetailed(ix, warmup, interval int) bool {
	if interval <= 1 {
		return true
	}
	return ix < warmup || (ix-warmup)%interval == 0
}

// Result is the outcome of one application run. Everything experiments
// read after the fact is snapshotted into plain serializable fields at
// run end (Agg, Spans, the per-warp L1 tallies), so a Result can be
// cached, JSON-encoded for the disk cache or the serving layer, and
// held for a session's lifetime without pinning the run's GPU — whose
// memory image, caches and MSHRs dwarf the statistics by orders of
// magnitude. Session-cached results have GPU nil (see ReleaseGPU);
// only direct Run/RunUncached callers get the live GPU for deeper
// post-run inspection.
type Result struct {
	Workload string
	System   string
	Agg      stats.Launch // merged across detailed launches
	Launches int
	// Detailed counts the launches that ran on the timing model. Equal
	// to Launches unless sampled simulation was active (RunOptions
	// SampleWarmup/SampleInterval); Agg covers only these.
	Detailed int

	// Spans are the cycle windows of the run's kernel launches
	// (snapshot of gpu.GPU.Spans).
	Spans []gpu.LaunchSpan

	// WarpL1Accesses and WarpL1Hits pool each warp's L1D accesses and
	// hits across SMs by global warp id — the counters behind the
	// critical-warp hit-rate analysis (Figure 14).
	WarpL1Accesses map[int32]uint64
	WarpL1Hits     map[int32]uint64

	// GPU allows post-run inspection (cache tag state, policies,
	// providers) on directly executed runs. It is nil on session-cached
	// results and excluded from serialization.
	GPU *gpu.GPU `json:"-"`
}

// ReleaseGPU drops the result's reference to the run's GPU so the
// memory image, cache arrays and MSHRs become collectable. The
// snapshotted statistics remain valid. The session's result cache calls
// this on every entry it retains.
func (r *Result) ReleaseGPU() { r.GPU = nil }

// snapshotGPU fills the serializable post-run fields from the GPU.
func (r *Result) snapshotGPU(g *gpu.GPU) {
	r.Spans = append([]gpu.LaunchSpan(nil), g.Spans...)
	r.WarpL1Accesses = make(map[int32]uint64)
	r.WarpL1Hits = make(map[int32]uint64)
	for _, s := range g.SMs() {
		l1 := s.L1D()
		for gid, a := range l1.WarpAccesses {
			r.WarpL1Accesses[gid] += a
		}
		for gid, h := range l1.WarpHits {
			r.WarpL1Hits[gid] += h
		}
	}
}

// Run executes the workload to completion on the design point.
func Run(opt RunOptions) (*Result, error) {
	return RunContext(context.Background(), opt)
}

// RunContext executes the workload to completion on the design point,
// honoring ctx: cancellation or deadline expiry aborts the simulation
// mid-kernel (checked cheaply inside gpu.Launch) and returns ctx's
// error. A cancelled run's partial state is discarded entirely.
func RunContext(ctx context.Context, opt RunOptions) (*Result, error) {
	wl, g, res, err := setupRun(&opt)
	if err != nil {
		return nil, err
	}
	for ix := 0; ; ix++ {
		k, ok := wl.Next()
		if !ok {
			break
		}
		if !sampleDetailed(ix, opt.SampleWarmup, opt.SampleInterval) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := checkpoint.FunctionalLaunch(k, wl.Mem(), opt.Config.WarpSize); err != nil {
				return nil, fmt.Errorf("harness: %s on %s: %w", opt.Workload, opt.System.Label(), err)
			}
			res.Launches++
			continue
		}
		launch, err := g.Launch(ctx, k)
		if err != nil {
			return nil, fmt.Errorf("harness: %s on %s: %w", opt.Workload, opt.System.Label(), err)
		}
		res.Agg.Merge(launch)
		res.Launches++
		res.Detailed++
	}
	return finishRun(wl, g, res, &opt)
}

// setupRun builds the workload, the GPU, and an empty Result for one
// run, wiring every engine option. Shared by RunContext and the
// checkpointed/resumable path (RunCheckpointedContext).
func setupRun(opt *RunOptions) (workloads.Workload, *gpu.GPU, *Result, error) {
	if opt.Params == (workloads.Params{}) {
		opt.Params = workloads.DefaultParams()
	}
	if opt.Config.NumSMs == 0 {
		opt.Config = config.GTX480()
	}
	wl, err := workloads.New(opt.Workload, opt.Params)
	if err != nil {
		return nil, nil, nil, err
	}
	// The CCWS baseline needs per-SM providers observing their L1Ds;
	// wire them automatically unless the caller already supplied a
	// ProviderOverride. Precedence: an explicit ProviderOverride always
	// wins (no auto-wiring, no AttachL1 hijack); otherwise only the
	// provider factory and the L1 attachment are filled in — every
	// other System field (CACP, CACPConfig, Variant, ...) keeps the
	// caller's semantics. Documented by TestCCWSAutoWiringPrecedence.
	if opt.System.Scheduler == "ccws" && opt.System.ProviderOverride == nil {
		sc, attach := core.CCWSSystem()
		opt.System.ProviderOverride = sc.ProviderOverride
		userAttach := opt.AttachL1
		opt.AttachL1 = func(smID int, l1 *memsys.L1D) {
			attach(smID, l1)
			if userAttach != nil {
				userAttach(smID, l1)
			}
		}
	}
	g, err := opt.System.NewGPU(opt.Config, wl.Mem())
	if err != nil {
		return nil, nil, nil, err
	}
	if opt.AttachL1 != nil {
		for i, s := range g.SMs() {
			opt.AttachL1(i, s.L1D())
		}
	}
	g.PerCycle = opt.PerCycle
	g.PerCycleWake = opt.PerCycleWake
	g.DisableFastForward = opt.DisableFastForward
	g.BarrierSpins = opt.BarrierSpins
	g.Lookahead = opt.Lookahead
	g.Perf = opt.Profiler
	// Engine selection. The serial gate is evaluated here, after the
	// CCWS auto-wiring above, so a ccws run (whose per-SM providers are
	// attached through shared closures) lands on the serial engine even
	// when the caller asked for SM parallelism.
	if opt.AttachL1 == nil && opt.System.ProviderOverride == nil {
		g.SMWorkers = opt.SMWorkers
	}

	res := &Result{Workload: opt.Workload, System: opt.System.Label(), GPU: g}
	res.Agg.Kernel = opt.Workload
	return wl, g, res, nil
}

// finishRun verifies and snapshots a completed run.
func finishRun(wl workloads.Workload, g *gpu.GPU, res *Result, opt *RunOptions) (*Result, error) {
	if !opt.SkipVerify {
		if err := wl.Verify(); err != nil {
			return nil, fmt.Errorf("harness: %s on %s: verification failed: %w",
				opt.Workload, opt.System.Label(), err)
		}
	}
	res.snapshotGPU(g)
	return res, nil
}
