// Package harness runs workloads on configured GPU design points and
// regenerates every table and figure of the paper's motivation and
// evaluation sections (see DESIGN.md for the experiment index).
package harness

import (
	"fmt"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/gpu"
	"cawa/internal/memsys"
	"cawa/internal/stats"
	"cawa/internal/workloads"
)

// RunOptions describes one simulated application run.
type RunOptions struct {
	// Workload is a registered workload name.
	Workload string
	// Params tunes the workload size and seed (zero value = defaults).
	Params workloads.Params
	// System is the design point (scheduler / CPL / CACP combination).
	System core.SystemConfig
	// Config is the architecture; zero value means config.GTX480().
	Config config.Config
	// AttachL1, when set, is called for every SM's L1D before the run
	// (profiler taps).
	AttachL1 func(smID int, l1 *memsys.L1D)
	// PerCycle, when set, samples the GPU every cycle. Setting it
	// disables idle-cycle fast-forwarding unless PerCycleWake is also
	// provided (see gpu.GPU.PerCycle).
	PerCycle func(g *gpu.GPU, cycle int64)
	// PerCycleWake, when set alongside PerCycle, tells the event-driven
	// cycle engine the next cycle the hook must observe (for cadenced
	// samplers: obs.Sampler.NextWake).
	PerCycleWake func(now int64) int64
	// DisableFastForward forces the tick-every-cycle engine. Results
	// are byte-identical either way; the switch exists for equivalence
	// tests and debugging (see gpu.GPU.DisableFastForward).
	DisableFastForward bool
	// SkipVerify skips the functional check against the Go reference.
	SkipVerify bool
}

// Result is the outcome of one application run.
type Result struct {
	Workload string
	System   string
	Agg      stats.Launch // merged across launches
	Launches int
	GPU      *gpu.GPU // post-run inspection (cache stats, providers)
}

// Run executes the workload to completion on the design point.
func Run(opt RunOptions) (*Result, error) {
	if opt.Params == (workloads.Params{}) {
		opt.Params = workloads.DefaultParams()
	}
	if opt.Config.NumSMs == 0 {
		opt.Config = config.GTX480()
	}
	wl, err := workloads.New(opt.Workload, opt.Params)
	if err != nil {
		return nil, err
	}
	// The CCWS baseline needs per-SM providers observing their L1Ds;
	// wire them automatically unless the caller already supplied a
	// ProviderOverride. Precedence: an explicit ProviderOverride always
	// wins (no auto-wiring, no AttachL1 hijack); otherwise only the
	// provider factory and the L1 attachment are filled in — every
	// other System field (CACP, CACPConfig, Variant, ...) keeps the
	// caller's semantics. Documented by TestCCWSAutoWiringPrecedence.
	if opt.System.Scheduler == "ccws" && opt.System.ProviderOverride == nil {
		sc, attach := core.CCWSSystem()
		opt.System.ProviderOverride = sc.ProviderOverride
		userAttach := opt.AttachL1
		opt.AttachL1 = func(smID int, l1 *memsys.L1D) {
			attach(smID, l1)
			if userAttach != nil {
				userAttach(smID, l1)
			}
		}
	}
	g, err := opt.System.NewGPU(opt.Config, wl.Mem())
	if err != nil {
		return nil, err
	}
	if opt.AttachL1 != nil {
		for i, s := range g.SMs() {
			opt.AttachL1(i, s.L1D())
		}
	}
	g.PerCycle = opt.PerCycle
	g.PerCycleWake = opt.PerCycleWake
	g.DisableFastForward = opt.DisableFastForward

	res := &Result{Workload: opt.Workload, System: opt.System.Label(), GPU: g}
	res.Agg.Kernel = opt.Workload
	for {
		k, ok := wl.Next()
		if !ok {
			break
		}
		launch, err := g.Launch(k)
		if err != nil {
			return nil, fmt.Errorf("harness: %s on %s: %w", opt.Workload, opt.System.Label(), err)
		}
		res.Agg.Merge(launch)
		res.Launches++
	}
	if !opt.SkipVerify {
		if err := wl.Verify(); err != nil {
			return nil, fmt.Errorf("harness: %s on %s: verification failed: %w",
				opt.Workload, opt.System.Label(), err)
		}
	}
	return res, nil
}
