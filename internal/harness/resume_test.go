package harness

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/gpu"
	"cawa/internal/workloads"
)

var resumeParams = workloads.Params{Scale: 0.1, Seed: 5}

func resumeConfig() config.Config {
	c := config.Small()
	c.NumSMs = 4
	return c
}

func TestSampleDetailedGate(t *testing.T) {
	// Sampling off: everything is detailed.
	for ix := 0; ix < 5; ix++ {
		if !sampleDetailed(ix, 0, 0) || !sampleDetailed(ix, 3, 1) {
			t.Fatalf("launch %d not detailed with sampling off", ix)
		}
	}
	// warmup=2 interval=3: detailed at 0,1 (warmup) then 2,5,8,...
	want := map[int]bool{0: true, 1: true, 2: true, 3: false, 4: false, 5: true, 6: false, 7: false, 8: true}
	for ix, w := range want {
		if got := sampleDetailed(ix, 2, 3); got != w {
			t.Fatalf("sampleDetailed(%d, 2, 3) = %v, want %v", ix, got, w)
		}
	}
}

// TestSampledRunExactMemory runs a multi-launch iterative workload with
// sampling on: the functional launches must leave memory exact (Verify
// inside RunContext), and the detailed count must match the gate.
func TestSampledRunExactMemory(t *testing.T) {
	res, err := Run(RunOptions{
		Workload: "bfs", Params: resumeParams, System: core.CAWA(), Config: resumeConfig(),
		SampleWarmup: 2, SampleInterval: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detailed >= res.Launches {
		t.Fatalf("sampling skipped nothing: %d detailed of %d launches", res.Detailed, res.Launches)
	}
	wantDetailed := 0
	for ix := 0; ix < res.Launches; ix++ {
		if sampleDetailed(ix, 2, 3) {
			wantDetailed++
		}
	}
	if res.Detailed != wantDetailed {
		t.Fatalf("Detailed = %d, want %d of %d launches", res.Detailed, wantDetailed, res.Launches)
	}
	if res.Agg.Cycles == 0 || res.Agg.Instructions == 0 {
		t.Fatalf("empty aggregate from sampled run: %+v", res.Agg)
	}
}

// cancelAt builds RunOptions whose per-cycle hook cancels the context
// once the global cycle reaches `at`.
func cancelAt(opt RunOptions, at int64) (RunOptions, context.Context) {
	ctx, cancel := context.WithCancel(context.Background())
	opt.PerCycle = func(g *gpu.GPU, cycle int64) {
		if cycle >= at {
			cancel()
		}
	}
	return opt, ctx
}

// TestRunCheckpointedCancelResume cuts a CAWA run mid-flight, persists
// the returned checkpoint through the disk cache, and resumes it to
// completion: the resumed result must equal the uninterrupted run's in
// every snapshotted field.
func TestRunCheckpointedCancelResume(t *testing.T) {
	opt := RunOptions{
		Workload: "bfs", Params: resumeParams, System: core.CAWA(), Config: resumeConfig(),
	}
	ref, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Agg.Cycles < 10_000 {
		t.Fatalf("reference too short to interrupt meaningfully: %d cycles", ref.Agg.Cycles)
	}

	hooked, ctx := cancelAt(opt, ref.Agg.Cycles/2)
	res, last, err := RunCheckpointed(ctx, hooked, 2_000, nil)
	if err == nil {
		t.Fatalf("cancelled run returned no error (res=%+v)", res)
	}
	if last == nil {
		t.Fatal("cancelled run returned no checkpoint")
	}
	if last.Snap.Meta.Workload != "bfs" || last.Snap.Meta.EngineVersion != EngineVersion {
		t.Fatalf("checkpoint meta: %+v", last.Snap.Meta)
	}

	// Persist and reload through the disk cache's checkpoint namespace.
	d, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := d.CheckpointKey(d.EntryKey("bfs", "cawa-key", resumeParams, resumeConfig()))
	if err := d.StoreCheckpoint(key, last); err != nil {
		t.Fatal(err)
	}
	loaded, ok := d.LoadCheckpoint(key)
	if !ok {
		t.Fatal("stored checkpoint did not load back")
	}
	if loaded.Partial.Launches != last.Partial.Launches ||
		!reflect.DeepEqual(loaded.Partial.Agg, last.Partial.Agg) {
		t.Fatalf("partial result changed across persistence:\nstored %+v\nloaded %+v",
			last.Partial.Agg, loaded.Partial.Agg)
	}

	resumed, lastAfter, err := RunCheckpointed(context.Background(), opt, 2_000, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if lastAfter != nil {
		t.Fatal("completed run still returned a checkpoint")
	}
	if !reflect.DeepEqual(resumed.Agg, ref.Agg) {
		t.Fatalf("resumed aggregate differs from uninterrupted run:\nresumed %+v\nref     %+v",
			resumed.Agg, ref.Agg)
	}
	if resumed.Launches != ref.Launches || resumed.Detailed != ref.Detailed {
		t.Fatalf("launch counts differ: resumed %d/%d, ref %d/%d",
			resumed.Detailed, resumed.Launches, ref.Detailed, ref.Launches)
	}
	if !reflect.DeepEqual(resumed.Spans, ref.Spans) {
		t.Fatalf("spans differ:\nresumed %+v\nref     %+v", resumed.Spans, ref.Spans)
	}
	if !reflect.DeepEqual(resumed.WarpL1Accesses, ref.WarpL1Accesses) ||
		!reflect.DeepEqual(resumed.WarpL1Hits, ref.WarpL1Hits) {
		t.Fatal("per-warp L1 tallies differ between resumed and uninterrupted runs")
	}
}

// TestRunCheckpointedSampledResume is the same interrupted/resumed
// equality under sampled simulation — the checkpoint must remember
// which launches were detailed.
func TestRunCheckpointedSampledResume(t *testing.T) {
	opt := RunOptions{
		Workload: "bfs", Params: resumeParams, System: core.CAWA(), Config: resumeConfig(),
		SampleWarmup: 1, SampleInterval: 2,
	}
	ref, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	hooked, ctx := cancelAt(opt, ref.Agg.Cycles/2)
	_, last, err := RunCheckpointed(ctx, hooked, 1_000, nil)
	if err == nil || last == nil {
		t.Fatalf("cancelled sampled run: err=%v checkpoint=%v", err, last != nil)
	}
	resumed, _, err := RunCheckpointed(context.Background(), opt, 1_000, last)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed.Agg, ref.Agg) || resumed.Detailed != ref.Detailed {
		t.Fatalf("sampled resume diverged:\nresumed %+v (detailed %d)\nref     %+v (detailed %d)",
			resumed.Agg, resumed.Detailed, ref.Agg, ref.Detailed)
	}
}

// TestCheckpointArtifactDamageIsCleanMiss proves satellite semantics:
// a truncated, bit-flipped, mis-keyed, or stale-engine checkpoint
// artifact reads back as a miss, never an error or a poisoned entry.
func TestCheckpointArtifactDamageIsCleanMiss(t *testing.T) {
	opt := RunOptions{
		Workload: "bfs", Params: resumeParams, System: core.Baseline(), Config: resumeConfig(),
	}
	ref, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	hooked, ctx := cancelAt(opt, ref.Agg.Cycles/2)
	_, last, err := RunCheckpointed(ctx, hooked, 2_000, nil)
	if err == nil || last == nil {
		t.Fatalf("cancelled run: err=%v checkpoint=%v", err, last != nil)
	}

	dir := t.TempDir()
	d, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := d.CheckpointKey(d.EntryKey("bfs", "lrr-key", resumeParams, resumeConfig()))
	if err := d.StoreCheckpoint(key, last); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(files) != 1 {
		t.Fatalf("expected one .ckpt artifact, got %v (%v)", files, err)
	}
	blob, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}

	// A different key — e.g. one embedding an older EngineVersion — maps
	// to a different artifact and misses.
	staleKey := d.CheckpointKey("bfs|lrr-key|scale=0.1|seed=5|arch=small|cawa-engine-0")
	if _, ok := d.LoadCheckpoint(staleKey); ok {
		t.Fatal("stale-engine key unexpectedly hit")
	}

	damage := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		if err := os.WriteFile(files[0], mutate(append([]byte(nil), blob...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if w, ok := d.LoadCheckpoint(key); ok {
			t.Fatalf("%s artifact unexpectedly loaded: %+v", name, w.Snap.Meta)
		}
	}
	damage("truncated", func(b []byte) []byte { return b[:len(b)/2] })
	damage("bit-flipped", func(b []byte) []byte { b[len(b)-1] ^= 1; return b })
	damage("short-header", func(b []byte) []byte { return b[:3] })
	damage("empty", func(b []byte) []byte { return nil })

	// Restore the intact artifact: it must still load, and the full
	// key-verification still rejects a hand-renamed file.
	if err := os.WriteFile(files[0], blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.LoadCheckpoint(key); !ok {
		t.Fatal("intact artifact stopped loading")
	}
	otherKey := d.CheckpointKey(d.EntryKey("bfs", "other-key", resumeParams, resumeConfig()))
	if err := os.Rename(files[0], d.ckptPath(otherKey)); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.LoadCheckpoint(otherKey); ok {
		t.Fatal("mis-keyed (renamed) artifact unexpectedly hit")
	}
}

// TestSessionWarmStart seeds the disk cache with a checkpoint from an
// interrupted run and shows the session resumes it instead of
// simulating from cycle zero, then supersedes it with the final result.
func TestSessionWarmStart(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	sc := core.CAWA()
	sysKey, err := sc.Key()
	if err != nil {
		t.Fatal(err)
	}

	s := NewSession(resumeConfig(), resumeParams)
	s.Disk = d
	opt := RunOptions{Workload: "bfs", Params: resumeParams, System: sc, Config: resumeConfig()}
	ref, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	hooked, ctx := cancelAt(opt, ref.Agg.Cycles/2)
	_, last, err := RunCheckpointed(ctx, hooked, 2_000, nil)
	if err == nil || last == nil {
		t.Fatalf("cancelled run: err=%v checkpoint=%v", err, last != nil)
	}
	ckptKey := d.CheckpointKey(s.diskEntryKey(d, "bfs", sysKey))
	if err := d.StoreCheckpoint(ckptKey, last); err != nil {
		t.Fatal(err)
	}

	res, err := s.RunContext(context.Background(), "bfs", sc)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.WarmResumes(); got != 1 {
		t.Fatalf("WarmResumes = %d, want 1", got)
	}
	if !reflect.DeepEqual(res.Agg, ref.Agg) {
		t.Fatalf("warm-started session result differs:\nres %+v\nref %+v", res.Agg, ref.Agg)
	}
	// The final result supersedes the checkpoint artifact...
	if _, ok := d.LoadCheckpoint(ckptKey); ok {
		t.Fatal("checkpoint artifact survived a completed run")
	}
	// ...and a fresh session sees a plain disk hit.
	s2 := NewSession(resumeConfig(), resumeParams)
	s2.Disk = d
	if _, err := s2.RunContext(context.Background(), "bfs", sc); err != nil {
		t.Fatal(err)
	}
	if got := s2.DiskHits(); got != 1 {
		t.Fatalf("DiskHits = %d, want 1", got)
	}
	if got := s2.WarmResumes(); got != 0 {
		t.Fatalf("fresh session WarmResumes = %d, want 0", got)
	}
}

// TestSessionPersistsCheckpointOnDeadline drives the session's own
// persist-on-cancel path: a deadline-cut run leaves a checkpoint
// artifact behind, and a later attempt warm-starts from it.
func TestSessionPersistsCheckpointOnDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock deadline test")
	}
	dir := t.TempDir()
	d, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(resumeConfig(), workloads.Params{Scale: 0.5, Seed: 5})
	s.Disk = d
	s.CheckpointEvery = 2_000
	sc := core.CAWA()

	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	if _, err := s.RunContext(ctx, "bfs", sc); err == nil {
		t.Skip("machine fast enough to finish inside the deadline; nothing to persist")
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if len(files) == 0 {
		t.Skip("deadline hit before the first capture; nothing persisted")
	}

	if _, err := s.RunContext(context.Background(), "bfs", sc); err != nil {
		t.Fatal(err)
	}
	if got := s.WarmResumes(); got != 1 {
		t.Fatalf("WarmResumes = %d, want 1", got)
	}
}
