package harness

import (
	"testing"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/sm"
	"cawa/internal/workloads"
)

func tinySession() *Session {
	return NewSession(config.Small(), workloads.Params{Scale: 0.05, Seed: 3})
}

// TestSessionSingleflightDedup: concurrent requests for one design
// point must simulate exactly once and share the result.
func TestSessionSingleflightDedup(t *testing.T) {
	s := tinySession().SetWorkers(4)
	const callers = 8
	results := make([]*Result, callers)
	err := s.Fanout(callers, func(i int) error {
		r, err := s.Run("needle", core.Baseline())
		results[i] = r
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d received a different result instance", i)
		}
	}
	if n := len(s.Timings()); n != 1 {
		t.Fatalf("%d simulations executed, want 1 (singleflight)", n)
	}
}

// TestSessionKeyRequiresVariant: design points carrying behaviour in
// function fields are not cacheable without a stable Variant label, and
// distinct Variants must occupy distinct cache slots.
func TestSessionKeyRequiresVariant(t *testing.T) {
	s := tinySession().SetWorkers(2)
	tweak := func(c *core.CPL) { c.DisableStallTerm = true }
	if _, err := s.Run("needle", core.SystemConfig{Scheduler: "gcaws", CPL: true, CPLTweak: tweak}); err == nil {
		t.Fatal("CPLTweak without Variant accepted")
	}
	if _, err := s.Run("needle", core.SystemConfig{
		Scheduler:        "lrr",
		ProviderOverride: func() sm.CriticalityProvider { return core.NewCPL() },
	}); err == nil {
		t.Fatal("ProviderOverride without Variant accepted")
	}
	r1, err := s.Run("needle", core.SystemConfig{Scheduler: "gcaws", CPL: true, CPLTweak: tweak, Variant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run("needle", core.SystemConfig{Scheduler: "gcaws", CPL: true, CPLTweak: tweak, Variant: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Fatal("distinct Variants shared a cache entry")
	}
	if n := len(s.Timings()); n != 2 {
		t.Fatalf("%d simulations executed, want 2", n)
	}
}

// TestParallelSequentialTablesIdentical: the determinism guarantee of
// the parallel engine — a representative experiment rendered from a
// single-worker session and from a multi-worker session must be
// byte-for-byte identical.
func TestParallelSequentialTablesIdentical(t *testing.T) {
	render := func(workers int) string {
		s := NewSession(config.Small(), workloads.Params{Scale: 0.1, Seed: 7}).SetWorkers(workers)
		s.Apps = []string{"bfs", "kmeans"}
		tbl, err := RunExperiment("fig9", s)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return tbl.String()
	}
	seq := render(1)
	par := render(4)
	if seq != par {
		t.Fatalf("parallel table diverged from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

// TestPrewarmExperiments: pooling the matrices of several experiments
// must populate the cache so the subsequent sequential passes add no
// simulations.
func TestPrewarmExperiments(t *testing.T) {
	s := tinySession().SetWorkers(4)
	s.Apps = []string{"bfs"}
	ids := []string{"fig1", "fig2a", "fig2c"}
	if err := PrewarmExperiments(s, ids); err != nil {
		t.Fatal(err)
	}
	warmed := len(s.Timings())
	if warmed != 1 { // all three matrices collapse to baseline("bfs")
		t.Fatalf("%d simulations after prewarm, want 1", warmed)
	}
	for _, id := range ids {
		if _, err := RunExperiment(id, s); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(s.Timings()); n != warmed {
		t.Fatalf("sequential passes re-simulated: %d runs, want %d", n, warmed)
	}
	if err := PrewarmExperiments(s, []string{"nope"}); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

// TestCCWSAutoWiringPrecedence documents the provider precedence of the
// ccws scheduler in harness.Run: an explicit ProviderOverride always
// wins and suppresses the auto-wiring entirely; without one, only the
// provider factory and L1 attachment are filled in, and every other
// System field (here CACP) keeps the caller's semantics.
func TestCCWSAutoWiringPrecedence(t *testing.T) {
	p := workloads.Params{Scale: 0.05, Seed: 3}

	// Auto-wiring path: ccws with no override gets CCWS providers, and
	// the caller's CACP request survives untouched.
	res, err := Run(RunOptions{
		Workload: "needle", Params: p, Config: config.Small(),
		System: core.SystemConfig{Scheduler: "ccws", CPL: true, CACP: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.GPU.SMs() {
		if _, ok := m.Crit().(*core.CCWSProvider); !ok {
			t.Fatalf("auto-wired ccws run has provider %T, want *core.CCWSProvider", m.Crit())
		}
		if _, ok := m.L1D().Cache().Policy().(*core.CACP); !ok {
			t.Fatalf("auto-wiring dropped the caller's CACP policy (got %T)", m.L1D().Cache().Policy())
		}
	}

	// Override path: the caller's factory is used verbatim; no CCWS
	// provider is injected.
	res, err = Run(RunOptions{
		Workload: "needle", Params: p, Config: config.Small(),
		System: core.SystemConfig{
			Scheduler:        "ccws",
			ProviderOverride: func() sm.CriticalityProvider { return core.NewCPL() },
			Variant:          "cpl-under-ccws",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.GPU.SMs() {
		if _, ok := m.Crit().(*core.CPL); !ok {
			t.Fatalf("explicit ProviderOverride ignored: provider %T, want *core.CPL", m.Crit())
		}
	}
}
