package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"cawa/internal/config"
	"cawa/internal/workloads"
)

// EngineVersion names the current behaviour of the simulation engine
// for persistent-cache keying. Bump it whenever a change can alter any
// simulated number (timing model, scheduler, cache policy, workload
// generators); purely structural or performance work that is proven
// byte-identical (e.g. the fast-forward engine) does not bump it.
// Stale disk-cache entries from older engine versions simply stop
// matching and are re-simulated.
const EngineVersion = "cawa-engine-5"

// DiskCache is a persistent, content-addressed result store shared by
// long-running services and repeated evaluation campaigns. Each entry
// is one JSON file named by the SHA-256 of its full identity key
// (app | design-point key | workload params | architecture | engine
// version), so restarts and concurrent processes pointing at the same
// directory reuse each other's simulations.
//
// The cache is corruption-tolerant by construction: a missing,
// truncated, unparsable or mis-keyed entry is treated as a miss and
// re-simulated — a bad file can cost one redundant run, never a crash
// or a wrong result. Writes go through a temp file + rename so readers
// never observe a partially written entry.
type DiskCache struct {
	dir string
}

// OpenDiskCache opens (creating if needed) a disk cache rooted at dir.
func OpenDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: disk cache: %w", err)
	}
	return &DiskCache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (d *DiskCache) Dir() string { return d.dir }

// EntryKey builds the full identity of one simulation result. sysKey
// must be the design point's core.SystemConfig.Key(). The architecture
// is folded in via its complete value (every field of config.Config is
// comparable scalar state), and EngineVersion ties entries to the
// simulator behaviour that produced them.
func (d *DiskCache) EntryKey(app, sysKey string, p workloads.Params, cfg config.Config) string {
	return fmt.Sprintf("%s|%s|scale=%g|seed=%d|arch=%+v|%s",
		app, sysKey, p.Scale, p.Seed, cfg, EngineVersion)
}

// entry is the on-disk document: the full key is stored alongside the
// result so loads can verify identity (guarding against hash-prefix
// reuse or hand-copied files) and operators can inspect entries.
type entry struct {
	Key    string  `json:"key"`
	Result *Result `json:"result"`
}

// path maps a key to its content-addressed file.
func (d *DiskCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:])+".json")
}

// Load returns the cached result for key, or (nil, false) on any kind
// of miss — absent, unreadable, corrupt, or keyed to a different
// identity. It never fails hard.
func (d *DiskCache) Load(key string) (*Result, bool) {
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil || e.Result == nil || e.Key != key {
		return nil, false
	}
	return e.Result, true
}

// Store writes the result under key atomically (temp file + rename).
// The result must already be GPU-free serializable state; Result.GPU
// is excluded from encoding either way.
func (d *DiskCache) Store(key string, r *Result) error {
	data, err := json.Marshal(entry{Key: key, Result: r})
	if err != nil {
		return fmt.Errorf("harness: disk cache: %w", err)
	}
	tmp, err := os.CreateTemp(d.dir, ".entry-*")
	if err != nil {
		return fmt.Errorf("harness: disk cache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: disk cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: disk cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), d.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: disk cache: %w", err)
	}
	return nil
}

// Len counts the committed entries on disk (operational visibility).
func (d *DiskCache) Len() int {
	matches, err := filepath.Glob(filepath.Join(d.dir, "*.json"))
	if err != nil {
		return 0
	}
	return len(matches)
}
