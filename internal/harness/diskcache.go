package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"cawa/internal/config"
	"cawa/internal/workloads"
)

// EngineVersion names the current behaviour of the simulation engine
// for persistent-cache keying. Bump it whenever a change can alter any
// simulated number (timing model, scheduler, cache policy, workload
// generators); purely structural or performance work that is proven
// byte-identical (e.g. the fast-forward engine) does not bump it.
// Stale disk-cache entries from older engine versions simply stop
// matching and are re-simulated.
const EngineVersion = "cawa-engine-6"

// DiskCache is a persistent, content-addressed result store shared by
// long-running services and repeated evaluation campaigns. Each entry
// is one JSON file named by the SHA-256 of its full identity key
// (app | design-point key | workload params | architecture | engine
// version), so restarts and concurrent processes pointing at the same
// directory reuse each other's simulations.
//
// The cache is corruption-tolerant by construction: a missing,
// truncated, unparsable or mis-keyed entry is treated as a miss and
// re-simulated — a bad file can cost one redundant run, never a crash
// or a wrong result. Writes go through a temp file + rename so readers
// never observe a partially written entry.
type DiskCache struct {
	dir string
}

// OpenDiskCache opens (creating if needed) a disk cache rooted at dir.
func OpenDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: disk cache: %w", err)
	}
	return &DiskCache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (d *DiskCache) Dir() string { return d.dir }

// EntryKey builds the full identity of one simulation result. sysKey
// must be the design point's core.SystemConfig.Key(). The architecture
// is folded in via its complete value (every field of config.Config is
// comparable scalar state), and EngineVersion ties entries to the
// simulator behaviour that produced them.
func (d *DiskCache) EntryKey(app, sysKey string, p workloads.Params, cfg config.Config) string {
	return fmt.Sprintf("%s|%s|scale=%g|seed=%d|arch=%+v|%s",
		app, sysKey, p.Scale, p.Seed, cfg, EngineVersion)
}

// entry is the on-disk document: the full key is stored alongside the
// result so loads can verify identity (guarding against hash-prefix
// reuse or hand-copied files) and operators can inspect entries.
type entry struct {
	Key    string  `json:"key"`
	Result *Result `json:"result"`
}

// path maps a key to its content-addressed file.
func (d *DiskCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:])+".json")
}

// Load returns the cached result for key, or (nil, false) on any kind
// of miss — absent, unreadable, corrupt, or keyed to a different
// identity. It never fails hard.
func (d *DiskCache) Load(key string) (*Result, bool) {
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil || e.Result == nil || e.Key != key {
		return nil, false
	}
	return e.Result, true
}

// Store writes the result under key atomically (temp file + rename).
// The result must already be GPU-free serializable state; Result.GPU
// is excluded from encoding either way.
func (d *DiskCache) Store(key string, r *Result) error {
	data, err := json.Marshal(entry{Key: key, Result: r})
	if err != nil {
		return fmt.Errorf("harness: disk cache: %w", err)
	}
	tmp, err := os.CreateTemp(d.dir, ".entry-*")
	if err != nil {
		return fmt.Errorf("harness: disk cache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: disk cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: disk cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), d.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: disk cache: %w", err)
	}
	return nil
}

// CheckpointKey derives the warm-checkpoint identity from a run's full
// entry key. It inherits every component of the entry key — including
// EngineVersion, so checkpoints from an older engine stop matching and
// read back as clean misses — plus a suffix keeping the two namespaces
// disjoint.
func (d *DiskCache) CheckpointKey(entryKey string) string {
	return entryKey + "|checkpoint"
}

// ckptPath maps a checkpoint key to its content-addressed file. The
// extension differs from result entries so Len (which counts *.json)
// and operators see the two populations apart.
func (d *DiskCache) ckptPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:])+".ckpt")
}

// LoadCheckpoint returns the persisted warm checkpoint for key, or
// (nil, false) on any kind of miss — absent, truncated, corrupt,
// mis-keyed, or written by an incompatible checkpoint format. Like
// Load, it never fails hard: a bad artifact costs a cold start, never
// an error.
func (d *DiskCache) LoadCheckpoint(key string) (*WarmCheckpoint, bool) {
	f, err := os.Open(d.ckptPath(key))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	w, err := decodeWarm(f, key)
	if err != nil {
		return nil, false
	}
	return w, true
}

// StoreCheckpoint persists a warm checkpoint under key atomically
// (temp file + rename), replacing any previous one.
func (d *DiskCache) StoreCheckpoint(key string, w *WarmCheckpoint) error {
	tmp, err := os.CreateTemp(d.dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("harness: disk cache: %w", err)
	}
	if err := w.encode(tmp, key); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: disk cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), d.ckptPath(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: disk cache: %w", err)
	}
	return nil
}

// RemoveCheckpoint drops the warm checkpoint for key, if any. A
// completed run's final result supersedes its checkpoint; removing the
// blob is pure hygiene, so errors are not reported.
func (d *DiskCache) RemoveCheckpoint(key string) {
	os.Remove(d.ckptPath(key)) //nolint:errcheck
}

// Len counts the committed entries on disk (operational visibility).
func (d *DiskCache) Len() int {
	matches, err := filepath.Glob(filepath.Join(d.dir, "*.json"))
	if err != nil {
		return 0
	}
	return len(matches)
}
