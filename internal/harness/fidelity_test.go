package harness

import (
	"testing"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/workloads"
)

// TestFig9ReducedGmeanPinned pins the reduced-configuration CAWA
// geometric-mean speedup over the Sens applications so the headline
// fidelity number cannot drift silently. The simulator is
// deterministic, so the value is exactly reproducible; the band only
// absorbs float-ordering differences across platforms.
//
// Context (see the fig9 deviation callout in EXPERIMENTS.md): this
// reproduction's CAWA lands below GTO on the Sens gmean — full scale
// 1.039 vs 1.082, and at this reduced configuration 0.958 vs 0.988 —
// with bfs the main offender (CACP raises its MPKI, fig10). The pin
// covers both values so a change that moves either in *any* direction
// shows up as a conscious decision, not noise.
func TestFig9ReducedGmeanPinned(t *testing.T) {
	const (
		pinCAWA = 0.9579 // measured at Small config, Scale 0.1, Seed 7
		pinGTO  = 0.9876
		band    = 0.005
	)
	s := NewSession(config.Small(), workloads.Params{Scale: 0.1, Seed: 7})
	gto := core.SystemConfig{Scheduler: "gto"}
	if err := s.Prewarm(matrix(s.sensApps(), core.Baseline(), gto, core.CAWA())); err != nil {
		t.Fatal(err)
	}

	cawa, err := gmeanSpeedup(s, core.CAWA())
	if err != nil {
		t.Fatal(err)
	}
	gtoG, err := gmeanSpeedup(s, gto)
	if err != nil {
		t.Fatal(err)
	}
	if cawa < pinCAWA-band || cawa > pinCAWA+band {
		t.Errorf("CAWA gmean(sens) = %.4f, pinned at %.4f ± %.3f — if this moved on purpose, update the pin AND the fig9 deviation callout in EXPERIMENTS.md",
			cawa, pinCAWA, band)
	}
	if gtoG < pinGTO-band || gtoG > pinGTO+band {
		t.Errorf("GTO gmean(sens) = %.4f, pinned at %.4f ± %.3f", gtoG, pinGTO, band)
	}
}

// TestFig9SampledScalePinned re-measures the fig9 deviation at 4x the
// reduced pin's input scale, made affordable by sampled simulation
// (2 detailed warmup launches, then every 4th launch on the timing
// model). The hypothesis under test was that the CAWA < GTO and
// bfs < RR directions are artifacts of input scale. The evidence
// splits by absolute footprint: at GTX480 Scale 4 the bfs direction
// closes (1.001 >= RR) and the Sens gap collapses to 0.5 points
// (EXPERIMENTS.md "fig9 at sampled 4x scale"), but that sweep costs
// ~30 minutes; at this affordable Small/0.4 configuration — still far
// below GTX480 footprints in absolute terms — the ordering persists
// (CAWA 0.958 < GTO 0.983, bfs 0.944 < RR 1.000), so per the
// deviation callout the measured values are pinned here and the
// full-scale restoration is guarded by the CI fig9 artifact instead.
// Any change that moves these values must update both pins and the
// callout.
func TestFig9SampledScalePinned(t *testing.T) {
	if testing.Short() {
		t.Skip("sampled 4x-scale pin is too slow for -short")
	}
	const (
		pinCAWA = 0.9577 // measured at Small config, Scale 0.4, Seed 7, sampling 2+4
		pinGTO  = 0.9831
		pinBFS  = 0.9435 // bfs IPC speedup over RR under CAWA
		band    = 0.005
	)
	s := NewSession(config.Small(), workloads.Params{Scale: 0.4, Seed: 7})
	s.SampleWarmup = 2
	s.SampleInterval = 4
	gto := core.SystemConfig{Scheduler: "gto"}
	if err := s.Prewarm(matrix(s.sensApps(), core.Baseline(), gto, core.CAWA())); err != nil {
		t.Fatal(err)
	}

	cawa, err := gmeanSpeedup(s, core.CAWA())
	if err != nil {
		t.Fatal(err)
	}
	gtoG, err := gmeanSpeedup(s, gto)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Baseline("bfs")
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run("bfs", core.CAWA())
	if err != nil {
		t.Fatal(err)
	}
	bfs := r.Agg.IPC() / base.Agg.IPC()

	if cawa < pinCAWA-band || cawa > pinCAWA+band {
		t.Errorf("sampled CAWA gmean(sens) = %.4f, pinned at %.4f ± %.3f — if this moved on purpose, update the pin AND the fig9 deviation callout in EXPERIMENTS.md",
			cawa, pinCAWA, band)
	}
	if gtoG < pinGTO-band || gtoG > pinGTO+band {
		t.Errorf("sampled GTO gmean(sens) = %.4f, pinned at %.4f ± %.3f", gtoG, pinGTO, band)
	}
	if bfs < pinBFS-band || bfs > pinBFS+band {
		t.Errorf("sampled bfs speedup under CAWA = %.4f, pinned at %.4f ± %.3f", bfs, pinBFS, band)
	}
}
