package harness

import (
	"testing"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/workloads"
)

// TestFig9ReducedGmeanPinned pins the reduced-configuration CAWA
// geometric-mean speedup over the Sens applications so the headline
// fidelity number cannot drift silently. The simulator is
// deterministic, so the value is exactly reproducible; the band only
// absorbs float-ordering differences across platforms.
//
// Context (see the fig9 deviation callout in EXPERIMENTS.md): this
// reproduction's CAWA lands below GTO on the Sens gmean — full scale
// 1.039 vs 1.082, and at this reduced configuration 0.958 vs 0.988 —
// with bfs the main offender (CACP raises its MPKI, fig10). The pin
// covers both values so a change that moves either in *any* direction
// shows up as a conscious decision, not noise.
func TestFig9ReducedGmeanPinned(t *testing.T) {
	const (
		pinCAWA = 0.9579 // measured at Small config, Scale 0.1, Seed 7
		pinGTO  = 0.9876
		band    = 0.005
	)
	s := NewSession(config.Small(), workloads.Params{Scale: 0.1, Seed: 7})
	gto := core.SystemConfig{Scheduler: "gto"}
	if err := s.Prewarm(matrix(s.sensApps(), core.Baseline(), gto, core.CAWA())); err != nil {
		t.Fatal(err)
	}

	cawa, err := gmeanSpeedup(s, core.CAWA())
	if err != nil {
		t.Fatal(err)
	}
	gtoG, err := gmeanSpeedup(s, gto)
	if err != nil {
		t.Fatal(err)
	}
	if cawa < pinCAWA-band || cawa > pinCAWA+band {
		t.Errorf("CAWA gmean(sens) = %.4f, pinned at %.4f ± %.3f — if this moved on purpose, update the pin AND the fig9 deviation callout in EXPERIMENTS.md",
			cawa, pinCAWA, band)
	}
	if gtoG < pinGTO-band || gtoG > pinGTO+band {
		t.Errorf("GTO gmean(sens) = %.4f, pinned at %.4f ± %.3f", gtoG, pinGTO, band)
	}
}
