package harness

import (
	"context"
	"errors"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/gpu"
	"cawa/internal/workloads"
)

// cancelTestParams is deliberately tiny: cancellation semantics don't
// depend on workload size, only on the engine observing a dead context.
var cancelTestParams = workloads.Params{Scale: 0.05, Seed: 3}

// TestRunContextPreCancelled: a context that is already dead must fail
// the run before any simulation work.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, RunOptions{
		Workload: "bfs", Params: cancelTestParams,
		System: core.Baseline(), Config: config.Small(),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run: got %v, want context.Canceled", err)
	}
}

// TestRunContextMidRunCancel cancels from a PerCycle hook at a known
// simulated cycle and checks both that the run aborts and that the
// abort happens within the engine's bounded check cadence (the ticking
// loop polls ctx every 4096 cycles; the hook forces the ticking
// engine, so the bound applies exactly).
func TestRunContextMidRunCancel(t *testing.T) {
	const cancelAt = 2000
	const checkCadence = 4096 // gpu.cancelCheckMask + 1

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := RunContext(ctx, RunOptions{
		Workload: "bfs", Params: cancelTestParams,
		System: core.Baseline(), Config: config.Small(),
		PerCycle: func(g *gpu.GPU, cycle int64) {
			if cycle == cancelAt {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: got %v, want context.Canceled", err)
	}
	// The abort error records the cycle the engine noticed: "aborted at
	// cycle N". It must be within one check cadence of the cancel.
	aborted, ok := abortCycle(err.Error())
	if !ok {
		t.Fatalf("abort error %q does not record the abort cycle", err)
	}
	if aborted < cancelAt || aborted > cancelAt+checkCadence {
		t.Errorf("aborted at cycle %d; want within %d cycles of the cancel at %d",
			aborted, checkCadence, cancelAt)
	}
}

// abortCycle extracts N from "... aborted at cycle N: ..." abort
// errors.
func abortCycle(msg string) (int64, bool) {
	const marker = "aborted at cycle "
	i := strings.Index(msg, marker)
	if i < 0 {
		return 0, false
	}
	rest := msg[i+len(marker):]
	if j := strings.IndexByte(rest, ':'); j >= 0 {
		rest = rest[:j]
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	return n, err == nil
}

// TestSessionCancelThenRerun is the serving layer's core invariant: a
// cancelled run must leave the session fully usable — the poisoned
// flight is evicted, and re-running the same key produces results
// byte-identical to a session that never saw a cancellation (same
// aggregate counters, same per-warp records, same launch spans).
func TestSessionCancelThenRerun(t *testing.T) {
	app, sc := "bfs", core.CAWA()

	disturbed := NewSession(config.Small(), cancelTestParams)
	// First request: wrap the executor so the run cancels itself at a
	// fixed simulated cycle — deterministic mid-run cancellation with no
	// wall-clock races.
	disturbed.SetRunFunc(func(ctx context.Context, opt RunOptions) (*Result, error) {
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		opt.PerCycle = func(g *gpu.GPU, cycle int64) {
			if cycle == 3000 {
				cancel()
			}
		}
		return RunContext(runCtx, opt)
	})
	if _, err := disturbed.RunContext(context.Background(), app, sc); !errors.Is(err, context.Canceled) {
		t.Fatalf("injected cancel: got %v, want context.Canceled", err)
	}

	// Second request on the same key: must re-simulate and succeed.
	disturbed.SetRunFunc(nil)
	retried, err := disturbed.Run(app, sc)
	if err != nil {
		t.Fatalf("re-run after cancel: %v", err)
	}

	pristine, err := NewSession(config.Small(), cancelTestParams).Run(app, sc)
	if err != nil {
		t.Fatalf("pristine run: %v", err)
	}
	if !reflect.DeepEqual(retried.Agg, pristine.Agg) {
		t.Errorf("aggregate counters diverge after cancel+retry:\nretried  %+v\npristine %+v",
			retried.Agg, pristine.Agg)
	}
	if !reflect.DeepEqual(retried.Spans, pristine.Spans) {
		t.Errorf("launch spans diverge after cancel+retry")
	}
	if retried.Launches != pristine.Launches {
		t.Errorf("launches: retried %d, pristine %d", retried.Launches, pristine.Launches)
	}
}

// TestSessionWaiterDetachesOnCancel: a waiter on someone else's flight
// whose own context dies must detach with its own error and leave the
// flight (and the eventual cached result) untouched.
func TestSessionWaiterDetachesOnCancel(t *testing.T) {
	s := NewSession(config.Small(), cancelTestParams)
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	s.SetRunFunc(func(ctx context.Context, opt RunOptions) (*Result, error) {
		started <- struct{}{}
		<-release
		return RunContext(ctx, opt)
	})
	firstDone := make(chan error, 1)
	go func() {
		_, err := s.Run("bfs", core.Baseline())
		firstDone <- err
	}()
	<-started // the flight is registered and running

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunContext(ctx, "bfs", core.Baseline()); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter with dead ctx: got %v, want context.Canceled", err)
	}

	close(release)
	if err := <-firstDone; err != nil {
		t.Fatalf("first requester: %v", err)
	}
	// The flight completed and is cached: the detached waiter must not
	// have evicted it.
	hitsBefore, _ := s.CacheStats()
	if _, err := s.Run("bfs", core.Baseline()); err != nil {
		t.Fatal(err)
	}
	hitsAfter, _ := s.CacheStats()
	if hitsAfter != hitsBefore+1 {
		t.Errorf("expected a cache hit after waiter detach (hits %d -> %d)", hitsBefore, hitsAfter)
	}
}
