package harness

import (
	"fmt"

	"cawa/internal/core"
	"cawa/internal/memsys"
	"cawa/internal/reuse"
	"cawa/internal/stats"
)

func init() {
	registerExpReq("fig1", "Warp execution time disparity across GPGPU applications (max per-block, baseline RR)",
		func(s *Session) []RunKey { return matrix(s.paperApps(), core.Baseline()) }, fig1)
	registerExpReq("fig2a", "Per-warp execution time, highest-disparity block, bfs (workload imbalance)",
		func(s *Session) []RunKey { return matrix([]string{"bfs"}, core.Baseline()) }, fig2a)
	registerExpReq("fig2b", "Per-warp execution time and instruction count, balanced-tree bfs (branch behaviour)",
		func(s *Session) []RunKey { return matrix([]string{"bfs-balanced"}, core.Baseline()) }, fig2b)
	registerExpReq("fig2c", "Memory-subsystem share of warp execution time, bfs",
		func(s *Session) []RunKey { return matrix([]string{"bfs"}, core.Baseline()) }, fig2c)
	registerExp("fig3", "Reuse distance of critical-warp cache lines, bfs (16KB 4-way L1D)", fig3)
	registerExpReq("fig4", "Scheduler-induced extra wait time for the critical warp, baseline RR",
		func(s *Session) []RunKey { return matrix(fig4Apps, core.Baseline()) }, fig4)
	registerExp("fig8", "Per-PC reuse behaviour of bfs under 256KB vs 16KB caches", fig8)
}

// fig4Apps are the four applications the paper's Figure 4 breaks down.
var fig4Apps = []string{"bfs", "b+tree", "kmeans", "srad_1"}

// fig1: for every application, the highest per-block warp execution
// time disparity under the round-robin baseline (paper: average 45%,
// up to ~70% for srad_1).
func fig1(s *Session) (*Table, error) {
	t := NewTable("fig1", "Warp execution time disparity (baseline RR)",
		"app", "max_disparity", "mean_disparity")
	sum := 0.0
	apps := s.paperApps()
	for _, app := range apps {
		r, err := s.Baseline(app)
		if err != nil {
			return nil, err
		}
		d := r.Agg.MaxDisparity(2)
		t.AddRow(app, d, r.Agg.MeanDisparity(2))
		sum += d
	}
	t.AddRow("AVG", sum/float64(len(apps)), 0)
	t.Note = "disparity = (slowest - fastest) / slowest warp execution time within a block"
	return t, nil
}

// fig2a: sorted per-warp execution times of the highest-disparity bfs
// block (paper: ~20% gap between fastest and slowest).
func fig2a(s *Session) (*Table, error) {
	return warpTimeTable(s, "bfs", "fig2a")
}

// fig2b: the balanced-tree bfs still shows warp time disparity, caused
// by diverging branch behaviour; the dynamic instruction counts are
// reported alongside (paper: ~40% time gap, up to ~20% instruction
// gap).
func fig2b(s *Session) (*Table, error) {
	r, err := s.Baseline("bfs-balanced")
	if err != nil {
		return nil, err
	}
	warps := pickBlock(&r.Agg, 8)
	if warps == nil {
		return nil, fmt.Errorf("fig2b: no block found")
	}
	t := NewTable("fig2b", "Balanced-tree bfs: per-warp time and instructions",
		"warp", "exec_cycles", "norm_time", "thread_instrs", "norm_instrs")
	slowest := float64(warps[len(warps)-1].ExecTime())
	maxInstr := float64(1)
	for _, w := range warps {
		if v := float64(w.ThreadInstrs); v > maxInstr {
			maxInstr = v
		}
	}
	for i, w := range warps {
		t.AddRow(fmt.Sprintf("w%02d", i),
			float64(w.ExecTime()), float64(w.ExecTime())/slowest,
			float64(w.ThreadInstrs), float64(w.ThreadInstrs)/maxInstr)
	}
	return t, nil
}

// fig2c: the share of each warp's execution time spent stalled on the
// memory subsystem, slowest warps last (paper: slower warps see larger
// memory shares).
func fig2c(s *Session) (*Table, error) {
	r, err := s.Baseline("bfs")
	if err != nil {
		return nil, err
	}
	warps := pickBlock(&r.Agg, 8)
	if warps == nil {
		return nil, fmt.Errorf("fig2c: no block found")
	}
	t := NewTable("fig2c", "bfs: memory share of warp execution time",
		"warp", "exec_cycles", "mem_stall_cycles", "mem_share")
	for i, w := range warps {
		t.AddRow(fmt.Sprintf("w%02d", i),
			float64(w.ExecTime()), float64(w.MemStall), w.MemShare())
	}
	return t, nil
}

func warpTimeTable(s *Session, app, id string) (*Table, error) {
	r, err := s.Baseline(app)
	if err != nil {
		return nil, err
	}
	warps := pickBlock(&r.Agg, 8)
	if warps == nil {
		return nil, fmt.Errorf("%s: no block found", id)
	}
	t := NewTable(id, app+": sorted per-warp execution time (highest-disparity block)",
		"warp", "exec_cycles", "norm_time")
	slowest := float64(warps[len(warps)-1].ExecTime())
	for i, w := range warps {
		t.AddRow(fmt.Sprintf("w%02d", i), float64(w.ExecTime()), float64(w.ExecTime())/slowest)
	}
	return t, nil
}

// fig3: reuse distances of the lines referenced by critical warps in a
// 16KB 4-way L1D geometry (32 sets of 128B lines). The paper reports
// that over 60% of would-be reuses are evicted before the critical warp
// re-references them.
func fig3(s *Session) (*Table, error) {
	// The footnote geometry: 16KB, 4-way, 128B lines -> 32 sets.
	profilers := make([]*reuse.Profiler, s.Config.NumSMs)
	r, err := s.RunUncached(RunOptions{
		Workload: "bfs",
		System:   core.SystemConfig{Scheduler: "lrr", CPL: true},
		AttachL1: func(smID int, l1 *memsys.L1D) {
			profilers[smID] = reuse.NewProfiler(32, 128, 128, 2048)
			l1.AccessListener = profilers[smID].Record
		},
	})
	if err != nil {
		return nil, err
	}
	crit := CriticalGIDs(&r.Agg, 2)
	var critHist, allHist reuse.Histogram
	for _, p := range profilers {
		if p == nil {
			continue
		}
		for gid, h := range p.ByWarp {
			merge := func(dst *reuse.Histogram) {
				dst.ColdN += h.ColdN
				dst.Total += h.Total
				for i, v := range h.Buckets {
					dst.Buckets[i] += v
				}
			}
			merge(&allHist)
			if crit[gid] {
				merge(&critHist)
			}
		}
	}
	t := NewTable("fig3", "bfs: reuse distance of critical warp cache lines (16KB 4-way)",
		"metric", "critical_warps", "all_warps")
	t.AddRow("reuses", float64(critHist.Reuses()), float64(allHist.Reuses()))
	t.AddRow("frac_evicted_before_reuse", critHist.FracBeyond(4), allHist.FracBeyond(4))
	t.AddRow("frac_dist<=1", frac(critHist, 0, 1), frac(allHist, 0, 1))
	t.AddRow("frac_dist2-3", frac(critHist, 2, 3), frac(allHist, 2, 3))
	t.AddRow("frac_dist4-15", frac(critHist, 4, 15), frac(allHist, 4, 15))
	t.AddRow("frac_dist>=16", critHist.FracBeyond(16), allHist.FracBeyond(16))
	t.Note = "frac_evicted_before_reuse = per-set stack distance >= 4 ways"
	return t, nil
}

// frac returns the share of reuses whose distance lies in [lo, hi].
func frac(h reuse.Histogram, lo, hi int64) float64 {
	return h.FracBeyond(lo) - h.FracBeyond(hi+1)
}

// fig4: extra wait imposed on the critical warp by the scheduler: the
// cycles it was ready but not selected, as a share of its execution
// time (paper: up to 52.4% under RR).
func fig4(s *Session) (*Table, error) {
	t := NewTable("fig4", "Scheduler-induced wait of the critical warp (baseline RR)",
		"app", "sched_wait_share", "mem_share", "issue_share")
	for _, app := range fig4Apps {
		r, err := s.Baseline(app)
		if err != nil {
			return nil, err
		}
		var wait, mem, issue, total float64
		for _, ws := range r.Agg.BlockGroup() {
			if len(ws) < 2 {
				continue
			}
			cw := stats.CriticalWarp(ws)
			wait += float64(cw.SchedStall)
			mem += float64(cw.MemStall)
			issue += float64(cw.IssueCycles)
			total += float64(cw.ExecTime())
		}
		if total == 0 {
			total = 1
		}
		t.AddRow(app, wait/total, mem/total, issue/total)
	}
	return t, nil
}

// fig8: per-PC reuse behaviour: for each memory instruction of the bfs
// kernels, the share of its accesses that would hit in a large (256KB)
// versus the real (16KB) cache. Some PCs stream (no reuse at either
// size), motivating the signature-based predictors.
func fig8(s *Session) (*Table, error) {
	profilers := make([]*reuse.Profiler, s.Config.NumSMs)
	_, err := s.RunUncached(RunOptions{
		Workload: "bfs",
		System:   core.SystemConfig{Scheduler: "lrr", CPL: true},
		AttachL1: func(smID int, l1 *memsys.L1D) {
			// Capacities in 128B lines: 16KB = 128, 256KB = 2048.
			profilers[smID] = reuse.NewProfiler(32, 128, 128, 2048)
			l1.AccessListener = profilers[smID].Record
		},
	})
	if err != nil {
		return nil, err
	}
	merged := make(map[int32]*reuse.PCStat)
	for _, p := range profilers {
		if p == nil {
			continue
		}
		for pc, st := range p.ByPC {
			m := merged[pc]
			if m == nil {
				m = &reuse.PCStat{}
				merged[pc] = m
			}
			m.Accesses += st.Accesses
			m.Cold += st.Cold
			m.ReuseWithinSmall += st.ReuseWithinSmall
			m.ReuseWithinLarge += st.ReuseWithinLarge
			m.CriticalReuses += st.CriticalReuses
		}
	}
	pcs := make([]int32, 0, len(merged))
	for pc := range merged {
		pcs = append(pcs, pc)
	}
	sortInt32(pcs)
	t := NewTable("fig8", "bfs: per-PC reuse under 256KB vs 16KB caches",
		"pc", "accesses", "reuse_256KB", "reuse_16KB", "zero_reuse")
	for _, pc := range pcs {
		st := merged[pc]
		if st.Accesses == 0 {
			continue
		}
		a := float64(st.Accesses)
		// zero_reuse: first touches plus reuses that would miss even in
		// the large cache (streamed data).
		zero := (float64(st.Cold) + float64(reusesOf(st)-st.ReuseWithinLarge)) / a
		t.AddRow(fmt.Sprintf("PC-%d", pc),
			a,
			float64(st.ReuseWithinLarge)/a,
			float64(st.ReuseWithinSmall)/a,
			zero)
	}
	t.Note = "reuse_* = share of accesses re-referencing data within the given capacity"
	return t, nil
}

func reusesOf(st *reuse.PCStat) uint64 { return st.Accesses - st.Cold }

func sortInt32(xs []int32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
