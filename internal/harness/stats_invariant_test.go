package harness

import (
	"testing"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/workloads"
)

// TestStallAccountingInvariants runs every paper application on the
// baseline design point and checks the accounting identities the
// stall-breakdown figures (2c, 4) and the observability exporters rely
// on:
//
//   - Every resident cycle of a live warp lands in exactly one bucket,
//     so IssueCycles + SchedStall + MemStall + ALUStall + BarrierStall
//   - EmptyStall == ExecTime() + 1. The +1 is the dispatch-cycle
//     fencepost: the warp is accounted on its dispatch cycle, while
//     ExecTime counts the distance FinishCycle - DispatchCycle. In
//     particular no component can ever exceed the warp's residency.
//   - The launch totals aggregated from SM counters equal the sums
//     over the per-warp records (the two are maintained independently
//     in the pipeline).
func TestStallAccountingInvariants(t *testing.T) {
	apps := PaperApps
	if testing.Short() {
		apps = apps[:4] // bfs, b+tree, heartwall, kmeans
	}
	s := NewSession(config.Small(), workloads.Params{Scale: 0.05, Seed: 3})
	if err := s.Prewarm(matrix(apps, core.Baseline())); err != nil {
		t.Fatal(err)
	}
	for _, app := range apps {
		app := app
		t.Run(app, func(t *testing.T) {
			r, err := s.Run(app, core.Baseline())
			if err != nil {
				t.Fatal(err)
			}
			var sumInstr, sumThread int64
			for _, w := range r.Agg.Warps {
				res := w.ExecTime()
				if res < 0 {
					t.Fatalf("warp %d: negative residency %d", w.GID, res)
				}
				sum := w.IssueCycles + w.SchedStall + w.MemStall + w.ALUStall +
					w.BarrierStall + w.EmptyStall
				if sum != res+1 {
					t.Errorf("warp %d: cycle buckets sum to %d, want residency+1 = %d (issue=%d sched=%d mem=%d alu=%d barrier=%d empty=%d)",
						w.GID, sum, res+1, w.IssueCycles, w.SchedStall, w.MemStall,
						w.ALUStall, w.BarrierStall, w.EmptyStall)
				}
				for name, c := range map[string]int64{
					"IssueCycles": w.IssueCycles, "SchedStall": w.SchedStall,
					"MemStall": w.MemStall, "ALUStall": w.ALUStall,
					"BarrierStall": w.BarrierStall, "EmptyStall": w.EmptyStall,
				} {
					if c < 0 || c > res+1 {
						t.Errorf("warp %d: %s = %d outside [0, %d]", w.GID, name, c, res+1)
					}
				}
				sumInstr += w.Instructions
				sumThread += w.ThreadInstrs
			}
			if sumInstr != r.Agg.Instructions {
				t.Errorf("warp records carry %d instructions, launch counted %d", sumInstr, r.Agg.Instructions)
			}
			if sumThread != r.Agg.ThreadInstrs {
				t.Errorf("warp records carry %d thread instructions, launch counted %d", sumThread, r.Agg.ThreadInstrs)
			}
		})
	}
}
