package harness

import (
	"cawa/internal/core"
	"cawa/internal/stats"
)

func init() {
	registerExpReq("ext-ccws", "Extension: CCWS locality-aware throttling vs GTO and CAWA",
		func(s *Session) []RunKey {
			return matrix(s.sensApps(),
				core.Baseline(), core.SystemConfig{Scheduler: "gto"}, core.CAWA())
		}, extCCWS)
}

// extCCWS compares the CCWS-style baseline (reference [34] of the
// paper) against GTO and the full CAWA design on the Sens applications.
// CCWS needs its per-SM providers attached to the L1Ds, so its runs
// bypass the session cache; they still fan out across the worker pool.
func extCCWS(s *Session) (*Table, error) {
	t := NewTable("ext-ccws", "Speedup over RR: CCWS, GTO, CAWA (Sens apps)",
		"app", "ccws", "gto", "cawa")
	apps := s.sensApps()
	ccwsRuns := make([]*Result, len(apps))
	err := s.Fanout(len(apps), func(i int) error {
		sc, attach := core.CCWSSystem()
		r, err := s.RunUncached(RunOptions{
			Workload: apps[i],
			System:   sc,
			AttachL1: attach,
		})
		ccwsRuns[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	var sp1, sp2, sp3 []float64
	for i, app := range apps {
		base, err := s.Baseline(app)
		if err != nil {
			return nil, err
		}
		rGTO, err := s.Run(app, core.SystemConfig{Scheduler: "gto"})
		if err != nil {
			return nil, err
		}
		rCAWA, err := s.Run(app, core.CAWA())
		if err != nil {
			return nil, err
		}
		a := ccwsRuns[i].Agg.IPC() / base.Agg.IPC()
		b := rGTO.Agg.IPC() / base.Agg.IPC()
		c := rCAWA.Agg.IPC() / base.Agg.IPC()
		t.AddRow(app, a, b, c)
		sp1, sp2, sp3 = append(sp1, a), append(sp2, b), append(sp3, c)
	}
	t.AddRow("GMEAN", stats.GeoMean(sp1), stats.GeoMean(sp2), stats.GeoMean(sp3))
	return t, nil
}
