package harness

import (
	"cawa/internal/core"
	"cawa/internal/stats"
)

func init() {
	registerExp("ext-ccws", "Extension: CCWS locality-aware throttling vs GTO and CAWA", extCCWS)
}

// extCCWS compares the CCWS-style baseline (reference [34] of the
// paper) against GTO and the full CAWA design on the Sens applications.
// CCWS needs its per-SM providers attached to the L1Ds, so its runs
// bypass the session cache.
func extCCWS(s *Session) (*Table, error) {
	t := NewTable("ext-ccws", "Speedup over RR: CCWS, GTO, CAWA (Sens apps)",
		"app", "ccws", "gto", "cawa")
	var sp1, sp2, sp3 []float64
	for _, app := range SensApps() {
		base, err := s.Baseline(app)
		if err != nil {
			return nil, err
		}
		sc, attach := core.CCWSSystem()
		rCCWS, err := Run(RunOptions{
			Workload: app,
			Params:   s.Params,
			System:   sc,
			Config:   s.Config,
			AttachL1: attach,
		})
		if err != nil {
			return nil, err
		}
		rGTO, err := s.Run(app, core.SystemConfig{Scheduler: "gto"})
		if err != nil {
			return nil, err
		}
		rCAWA, err := s.Run(app, core.CAWA())
		if err != nil {
			return nil, err
		}
		a := rCCWS.Agg.IPC() / base.Agg.IPC()
		b := rGTO.Agg.IPC() / base.Agg.IPC()
		c := rCAWA.Agg.IPC() / base.Agg.IPC()
		t.AddRow(app, a, b, c)
		sp1, sp2, sp3 = append(sp1, a), append(sp2, b), append(sp3, c)
	}
	t.AddRow("GMEAN", stats.GeoMean(sp1), stats.GeoMean(sp2), stats.GeoMean(sp3))
	return t, nil
}
