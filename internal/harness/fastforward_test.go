package harness

import (
	"reflect"
	"testing"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/workloads"
)

// TestFastForwardEquivalence proves the event-driven cycle engine is a
// pure wall-clock optimization: for every paper application on the
// baseline, GTO and full-CAWA design points, a fast-forwarded run and a
// tick-every-cycle run produce byte-identical results — same cycle
// counts, same launch spans, same aggregate counters, and the same
// per-warp record for every warp, including the stall-cycle buckets
// that bulk accounting fills during skipped spans. Session caching
// relies on this (the run cache is deliberately not keyed on
// DisableFastForward).
func TestFastForwardEquivalence(t *testing.T) {
	apps := PaperApps
	systems := []struct {
		name string
		sc   core.SystemConfig
	}{
		{"lrr", core.Baseline()},
		{"gto", core.SystemConfig{Scheduler: "gto"}},
		{"cawa", core.CAWA()},
	}
	if testing.Short() {
		apps = apps[:4] // bfs, b+tree, heartwall, kmeans
	}

	params := workloads.Params{Scale: 0.05, Seed: 3}
	fast := NewSession(config.Small(), params)
	slow := NewSession(config.Small(), params)
	slow.DisableFastForward = true

	var keys []RunKey
	for _, sys := range systems {
		keys = append(keys, matrix(apps, sys.sc)...)
	}
	if err := fast.Prewarm(keys); err != nil {
		t.Fatal(err)
	}
	if err := slow.Prewarm(keys); err != nil {
		t.Fatal(err)
	}

	for _, sys := range systems {
		for _, app := range apps {
			app, sys := app, sys
			t.Run(sys.name+"/"+app, func(t *testing.T) {
				fr, err := fast.Run(app, sys.sc)
				if err != nil {
					t.Fatal(err)
				}
				sr, err := slow.Run(app, sys.sc)
				if err != nil {
					t.Fatal(err)
				}
				if fr.Launches != sr.Launches {
					t.Errorf("launches: fast-forward %d, ticked %d", fr.Launches, sr.Launches)
				}
				if !reflect.DeepEqual(fr.Spans, sr.Spans) {
					t.Errorf("launch spans diverge:\nfast-forward %+v\nticked       %+v", fr.Spans, sr.Spans)
				}
				fa, sa := fr.Agg, sr.Agg
				// Compare the scalar aggregate first for a readable diff,
				// then every warp record (the sensitive part: bulk stall
				// accounting must land each skipped cycle in the same
				// bucket the ticked engine would have chosen).
				fw, sw := fa.Warps, sa.Warps
				fa.Warps, sa.Warps = nil, nil
				if !reflect.DeepEqual(fa, sa) {
					t.Errorf("aggregate counters diverge:\nfast-forward %+v\nticked       %+v", fa, sa)
				}
				if len(fw) != len(sw) {
					t.Fatalf("warp record count: fast-forward %d, ticked %d", len(fw), len(sw))
				}
				for i := range fw {
					if fw[i] != sw[i] {
						t.Errorf("warp %d diverges:\nfast-forward %+v\nticked       %+v", fw[i].GID, fw[i], sw[i])
					}
				}
			})
		}
	}
}
