package harness

import (
	"testing"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/workloads"
)

// TestProfilerEquivalence proves engine self-profiling is purely
// observational at the harness level: a profiled session (serial and
// parallel engines) produces results byte-identical to an unprofiled
// reference, while its PerfReport carries the phase breakdown — and,
// for parallel runs, the per-shard compute/barrier-wait split.
func TestProfilerEquivalence(t *testing.T) {
	cfg := engineMatrixConfig()
	params := workloads.Params{Scale: 0.05, Seed: 3}
	apps := []string{"bfs", "kmeans"}
	sys := core.CAWA()

	newSess := func(parallel, profiled bool) *Session {
		s := NewSession(cfg, params)
		if parallel {
			s.SetWorkers(cfg.NumSMs).SMParallel(cfg.NumSMs)
		}
		if profiled {
			s.EnableProfiling()
		}
		return s
	}

	for _, parallel := range []bool{false, true} {
		name := "serial"
		if parallel {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			ref := newSess(parallel, false)
			prof := newSess(parallel, true)
			for _, app := range apps {
				rr, err := ref.Run(app, sys)
				if err != nil {
					t.Fatal(err)
				}
				pr, err := prof.Run(app, sys)
				if err != nil {
					t.Fatal(err)
				}
				compareResults(t, "profiled/"+app, pr, rr)
			}

			r := prof.PerfReport()
			if r == nil {
				t.Fatal("profiled session returned nil PerfReport")
			}
			if r.PhaseTotalNS("domain_compute") <= 0 {
				t.Error("no domain_compute time in session profile")
			}
			if r.PhaseTotalNS("memsys_drain") <= 0 {
				t.Error("no memsys_drain time in session profile")
			}
			if parallel {
				if r.Epochs <= 0 {
					t.Error("parallel session profile recorded no epochs")
				}
				if len(r.Shards) == 0 || r.Imbalance == nil {
					t.Fatalf("parallel session profile missing shard breakdown: %d shards", len(r.Shards))
				}
				if r.Imbalance.BarrierWaitFrac < 0 || r.Imbalance.BarrierWaitFrac >= 1 {
					t.Errorf("BarrierWaitFrac = %v out of range", r.Imbalance.BarrierWaitFrac)
				}
			}

			m := prof.Manifest()
			if m.Perf == nil {
				t.Fatal("profiled session manifest has no perf report")
			}
			if m.Perf.Epochs != r.Epochs {
				t.Errorf("manifest perf epochs %d != report epochs %d", m.Perf.Epochs, r.Epochs)
			}
			if um := ref.Manifest(); um.Perf != nil {
				t.Error("unprofiled session manifest unexpectedly carries a perf report")
			}
		})
	}
}

// TestSessionBarrierSpins pins the session-level knob: runs launched
// with an overridden spin budget stay byte-identical to the default.
func TestSessionBarrierSpins(t *testing.T) {
	cfg := config.Small()
	cfg.NumSMs = 4
	params := workloads.Params{Scale: 0.05, Seed: 3}
	sys := core.Baseline()

	ref := NewSession(cfg, params).SetWorkers(4).SMParallel(4)
	tuned := NewSession(cfg, params).SetWorkers(4).SMParallel(4)
	tuned.BarrierSpins = 1

	rr, err := ref.Run("bfs", sys)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tuned.Run("bfs", sys)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, "barrier-spins-1", tr, rr)
}
