package harness

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/workloads"
)

var diskTestParams = workloads.Params{Scale: 0.05, Seed: 3}

// TestDiskCacheRoundTrip: a stored result loads back equal, and the
// load is keyed — a different key misses.
func TestDiskCacheRoundTrip(t *testing.T) {
	d, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunOptions{
		Workload: "bfs", Params: diskTestParams,
		System: core.Baseline(), Config: config.Small(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res.ReleaseGPU()
	key := d.EntryKey("bfs", "lrr", diskTestParams, config.Small())
	if err := d.Store(key, res); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Load(key)
	if !ok {
		t.Fatal("stored entry did not load")
	}
	if !reflect.DeepEqual(got.Agg, res.Agg) || !reflect.DeepEqual(got.Spans, res.Spans) {
		t.Error("round-tripped result differs from the original")
	}
	otherParams := diskTestParams
	otherParams.Seed++
	if _, ok := d.Load(d.EntryKey("bfs", "lrr", otherParams, config.Small())); ok {
		t.Error("load with a different seed hit the same entry")
	}
	if d.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", d.Len())
	}
}

// TestDiskCacheCorruptionTolerant: truncated, garbage, and
// key-mismatched entry files must degrade to a miss, never an error or
// a wrong result.
func TestDiskCacheCorruptionTolerant(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunOptions{
		Workload: "bfs", Params: diskTestParams,
		System: core.Baseline(), Config: config.Small(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res.ReleaseGPU()
	key := d.EntryKey("bfs", "lrr", diskTestParams, config.Small())
	if err := d.Store(key, res); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("expected one entry file, got %v (%v)", entries, err)
	}

	for name, content := range map[string]string{
		"truncated": "{\"Key\":\"",
		"garbage":   "not json at all",
		"empty":     "",
	} {
		if err := os.WriteFile(entries[0], []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := d.Load(key); ok {
			t.Errorf("%s entry file served a result", name)
		}
	}

	// A misfiled entry (right filename for key B, content recorded for
	// key A) must miss: the stored key is verified, not trusted.
	if err := d.Store(key, res); err != nil {
		t.Fatal(err)
	}
	otherParams := diskTestParams
	otherParams.Seed++
	otherKey := d.EntryKey("bfs", "lrr", otherParams, config.Small())
	if err := d.Store(otherKey, res); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 2 {
		t.Fatalf("expected two entry files, got %v (%v)", files, err)
	}
	goodDoc, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if f == entries[0] {
			continue
		}
		if err := os.WriteFile(f, goodDoc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := d.Load(otherKey); ok {
		t.Error("entry recorded for a different key served a result")
	}

	// A session pointed at the corrupted cache must silently
	// re-simulate.
	if err := os.WriteFile(entries[0], []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewSession(config.Small(), diskTestParams)
	s.Disk = d
	got, err := s.Run("bfs", core.Baseline())
	if err != nil {
		t.Fatalf("session with corrupt disk cache: %v", err)
	}
	if s.DiskHits() != 0 {
		t.Errorf("corrupt entry counted as a disk hit")
	}
	if !reflect.DeepEqual(got.Agg, res.Agg) {
		t.Error("re-simulated result differs from the original")
	}
}

// TestDiskCacheSurvivesRestart: a second session on the same cache
// directory serves the first session's campaign without simulating —
// the serving layer's restart story.
func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	d1, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewSession(config.Small(), diskTestParams)
	s1.Disk = d1
	first, err := s1.Run("bfs", core.CAWA())
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Timings()) != 1 {
		t.Fatalf("first session simulated %d runs, want 1", len(s1.Timings()))
	}

	// "Restart": fresh session, fresh DiskCache handle, same directory.
	d2, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSession(config.Small(), diskTestParams)
	s2.Disk = d2
	second, err := s2.Run("bfs", core.CAWA())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(s2.Timings()); n != 0 {
		t.Errorf("restarted session simulated %d runs, want 0 (disk cache)", n)
	}
	if s2.DiskHits() != 1 {
		t.Errorf("restarted session disk hits = %d, want 1", s2.DiskHits())
	}
	if !reflect.DeepEqual(first.Agg, second.Agg) || !reflect.DeepEqual(first.Spans, second.Spans) {
		t.Error("disk-cached result differs from the simulated one")
	}
	if len(second.Agg.Warps) != len(first.Agg.Warps) {
		t.Fatalf("warp records: %d vs %d", len(second.Agg.Warps), len(first.Agg.Warps))
	}

	// A different architecture on the same directory must not hit.
	s3 := NewSession(config.GTX480(), diskTestParams)
	s3.Disk = d2
	s3.SetRunFunc(func(ctx context.Context, opt RunOptions) (*Result, error) {
		return &Result{}, nil
	})
	if _, err := s3.Run("bfs", core.CAWA()); err != nil {
		t.Fatal(err)
	}
	if s3.DiskHits() != 0 {
		t.Error("different architecture hit the small-config cache entry")
	}
}
