package harness

import (
	"encoding/json"
	"testing"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/obs"
	"cawa/internal/workloads"
)

// TestLookaheadSamplerSeriesBytes proves the observability cadence
// survives multi-cycle epochs: a cadenced obs.Sampler wired through
// PerCycle/PerCycleWake must produce byte-identical sampled series
// under the lookahead engine, because the horizon planner clamps every
// span to the sampler's next wake cycle. A missing clamp would shift
// or drop samples, not just reorder them, so comparing the marshaled
// series bytes is the sharpest check available.
func TestLookaheadSamplerSeriesBytes(t *testing.T) {
	cfg := config.Small()
	cfg.NumSMs = 4
	params := workloads.Params{Scale: 0.05, Seed: 3}

	sample := func(parallel, lookahead bool) []byte {
		t.Helper()
		s := obs.NewSampler(nil, 50)
		opt := RunOptions{
			Workload:     "bfs",
			Params:       params,
			System:       core.Baseline(),
			Config:       cfg,
			PerCycle:     s.OnCycle,
			PerCycleWake: s.NextWake,
			Lookahead:    lookahead,
		}
		if parallel {
			opt.SMWorkers = cfg.NumSMs
		}
		if _, err := Run(opt); err != nil {
			t.Fatal(err)
		}
		series := s.Series()
		if len(series) == 0 {
			t.Fatal("sampler bound no series")
		}
		total := 0
		for _, sr := range series {
			total += len(sr.Samples)
		}
		if total == 0 {
			t.Fatal("sampler took no samples")
		}
		b, err := json.Marshal(series)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	ref := sample(false, false)
	la := sample(true, true)
	if string(ref) != string(la) {
		t.Fatal("sampled series diverge between the serial engine and the lookahead engine")
	}
	// The parallel engine without lookahead must agree too (regression
	// anchor: the clamp is in the shared planner, not the batch path).
	par := sample(true, false)
	if string(ref) != string(par) {
		t.Fatal("sampled series diverge between the serial and parallel engines")
	}
}
