package harness

import (
	"reflect"
	"testing"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/workloads"
)

// engineMatrixConfig is the architecture the equivalence matrix runs
// on: the quick 2-SM configuration widened to 4 SMs so the parallel
// engine exercises real multi-domain merges (with 2 SMs one barrier
// joins only two goroutines and the SM-id-ordered commit is trivial).
func engineMatrixConfig() config.Config {
	cfg := config.Small()
	cfg.NumSMs = 4
	return cfg
}

// matrixSystems are the design points every engine must agree on.
var matrixSystems = []struct {
	name string
	sc   core.SystemConfig
}{
	{"lrr", core.Baseline()},
	{"gto", core.SystemConfig{Scheduler: "gto"}},
	{"cawa", core.CAWA()},
}

// TestEngineEquivalenceMatrix proves that every execution engine is a
// pure wall-clock optimization. For each paper application on the
// baseline, GTO and full-CAWA design points, every engine combination
// must produce byte-identical results against the serial-ticked
// reference:
//
//	serial-ticked       one goroutine, every cycle stepped (the reference)
//	serial-ff           event-driven idle-cycle fast-forwarding
//	serial-la           lookahead requested on a serial session (the
//	                    switch must be inert without the parallel engine)
//	parallel-ticked     per-SM execution domains, every cycle stepped
//	parallel-ff         execution domains + fast-forwarding
//	parallel-ticked-la  execution domains + multi-cycle lookahead epochs
//	parallel-ff-la      domains + fast-forwarding + lookahead epochs
//
// "Byte-identical" covers cycle counts, launch spans, every aggregate
// counter, every per-warp record including the stall-cycle buckets
// (bulk accounting during skipped spans, and the epoch-barrier
// accounting of the parallel engine, must land each cycle in the same
// bucket the reference chose), and the per-warp L1 tallies. Session
// caching relies on this: the run cache is keyed on neither
// DisableFastForward nor the SM-worker count.
//
// This grew out of TestFastForwardEquivalence, which compared only the
// first two columns.
func TestEngineEquivalenceMatrix(t *testing.T) {
	apps := PaperApps
	if testing.Short() {
		apps = apps[:4] // bfs, b+tree, heartwall, kmeans
	}
	if raceDetectorEnabled {
		// The detector multiplies simulation cost ~20x, and the barrier
		// and staging synchronization it audits is identical per app:
		// two applications already drive every engine through thousands
		// of epochs. The full byte-identity sweep runs without -race.
		apps = apps[:2]
	}
	cfg := engineMatrixConfig()
	params := workloads.Params{Scale: 0.05, Seed: 3}

	newEngineSession := func(ticked, parallel, lookahead bool) *Session {
		s := NewSession(cfg, params)
		s.DisableFastForward = ticked
		s.Lookahead = lookahead
		if parallel {
			// Enough pool slots that every run gets NumSMs domains even
			// on a single-CPU host (NewSession sizes to runtime.NumCPU).
			s.SetWorkers(cfg.NumSMs).SMParallel(cfg.NumSMs)
		}
		return s
	}
	ref := newEngineSession(true, false, false)
	variants := []struct {
		name    string
		session *Session
	}{
		{"serial-ff", newEngineSession(false, false, false)},
		{"serial-la", newEngineSession(true, false, true)},
		{"parallel-ticked", newEngineSession(true, true, false)},
		{"parallel-ff", newEngineSession(false, true, false)},
		{"parallel-ticked-la", newEngineSession(true, true, true)},
		{"parallel-ff-la", newEngineSession(false, true, true)},
	}

	var keys []RunKey
	for _, sys := range matrixSystems {
		keys = append(keys, matrix(apps, sys.sc)...)
	}
	if err := ref.Prewarm(keys); err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		if err := v.session.Prewarm(keys); err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
	}

	for _, sys := range matrixSystems {
		for _, app := range apps {
			app, sys := app, sys
			t.Run(sys.name+"/"+app, func(t *testing.T) {
				rr, err := ref.Run(app, sys.sc)
				if err != nil {
					t.Fatal(err)
				}
				for _, v := range variants {
					vr, err := v.session.Run(app, sys.sc)
					if err != nil {
						t.Fatalf("%s: %v", v.name, err)
					}
					compareResults(t, v.name, vr, rr)
				}
			})
		}
	}
}

// compareResults asserts the engine variant's result is byte-identical
// to the serial-ticked reference.
func compareResults(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if got.Launches != want.Launches {
		t.Errorf("%s: launches %d, reference %d", name, got.Launches, want.Launches)
	}
	if !reflect.DeepEqual(got.Spans, want.Spans) {
		t.Errorf("%s: launch spans diverge:\ngot       %+v\nreference %+v", name, got.Spans, want.Spans)
	}
	ga, wa := got.Agg, want.Agg
	// Compare the scalar aggregate first for a readable diff, then
	// every warp record (the sensitive part: stall accounting must land
	// each cycle in the same bucket the reference chose).
	gw, ww := ga.Warps, wa.Warps
	ga.Warps, wa.Warps = nil, nil
	if !reflect.DeepEqual(ga, wa) {
		t.Errorf("%s: aggregate counters diverge:\ngot       %+v\nreference %+v", name, ga, wa)
	}
	if len(gw) != len(ww) {
		t.Fatalf("%s: warp record count %d, reference %d", name, len(gw), len(ww))
	}
	for i := range gw {
		if gw[i] != ww[i] {
			t.Errorf("%s: warp %d diverges:\ngot       %+v\nreference %+v", name, gw[i].GID, gw[i], ww[i])
		}
	}
	if !reflect.DeepEqual(got.WarpL1Accesses, want.WarpL1Accesses) {
		t.Errorf("%s: per-warp L1 access tallies diverge", name)
	}
	if !reflect.DeepEqual(got.WarpL1Hits, want.WarpL1Hits) {
		t.Errorf("%s: per-warp L1 hit tallies diverge", name)
	}
}
