package harness

import (
	"testing"

	"cawa/internal/reuse"
	"cawa/internal/workloads"
)

// TestPaperAppsMatchWorkloadCategories: the harness's Sens/Non-sens
// split must agree with the workload registry's classification.
func TestPaperAppsMatchWorkloadCategories(t *testing.T) {
	sens := make(map[string]bool)
	for _, n := range workloads.Sensitive() {
		sens[n] = true
	}
	for _, app := range SensApps() {
		if !sens[app] {
			t.Errorf("%s is Sens in the harness but not in the registry", app)
		}
	}
	for _, app := range NonSensApps() {
		if sens[app] {
			t.Errorf("%s is Non-sens in the harness but Sens in the registry", app)
		}
	}
	// Every paper app must be buildable.
	for _, app := range PaperApps {
		if _, err := workloads.New(app, workloads.Params{Scale: 0.01, Seed: 1}); err != nil {
			t.Errorf("paper app %s not constructible: %v", app, err)
		}
	}
}

func TestBinRanks(t *testing.T) {
	points := []rankPoint{
		{cycle: 0, rank: 2}, {cycle: 10, rank: 4},
		{cycle: 90, rank: 8}, {cycle: 99, rank: 10},
	}
	out := binRanks(points, 2)
	if len(out) != 2 {
		t.Fatalf("bins %d", len(out))
	}
	if out[0] != 3 { // mean of 2 and 4
		t.Fatalf("bin0 = %v", out[0])
	}
	if out[1] != 9 { // mean of 8 and 10
		t.Fatalf("bin1 = %v", out[1])
	}
	if got := binRanks(nil, 4); len(got) != 4 {
		t.Fatal("empty points must still produce bins")
	}
}

func TestFracBucketsPartition(t *testing.T) {
	var h reuse.Histogram
	for d := int64(0); d < 64; d++ {
		h.Add(d)
	}
	// The bucket-range helper must partition [0, inf): summing adjacent
	// ranges equals the complement of FracBeyond.
	total := frac(h, 0, 1) + frac(h, 2, 3) + frac(h, 4, 15) + h.FracBeyond(16)
	if total < 0.99 || total > 1.01 {
		t.Fatalf("bucket shares sum to %v", total)
	}
}

func TestIsSens(t *testing.T) {
	if !isSens("kmeans") || isSens("tpacf") {
		t.Fatal("isSens misclassifies")
	}
}
