//go:build !race

package harness

// raceDetectorEnabled reports whether this binary was built with the
// race detector; see race_on.go.
const raceDetectorEnabled = false
