package harness

import (
	"fmt"

	"cawa/internal/cache"
	"cawa/internal/core"
	"cawa/internal/gpu"
	"cawa/internal/memsys"
	"cawa/internal/stats"
)

func init() {
	registerExpReq("fig9", "IPC speedup over the RR baseline: 2-level, GTO, CAWA", evalMatrix, fig9)
	registerExpReq("fig10", "L1D MPKI: baseline RR, 2-level, GTO, CAWA", evalMatrix, fig10)
	registerExp("fig11", "CPL warp criticality prediction accuracy", fig11)
	registerExpReq("fig12", "Critical warp scheduling priority over time, RR vs gCAWS (bfs)",
		func(s *Session) []RunKey { return matrix([]string{"bfs"}, core.Baseline()) }, fig12)
	registerExpReq("fig13", "Speedup of oracle CAWS, gCAWS, and CAWA over RR (Sens apps)", fig13Requests, fig13)
	registerExpReq("fig14", "Critical-warp L1D hit rate, normalized to the RR baseline",
		func(s *Session) []RunKey {
			return matrix(s.sensApps(), core.Baseline(), core.SystemConfig{Scheduler: "gto"}, core.CAWA())
		}, fig14)
	registerExp("fig15", "Zero-reuse critical-warp lines: baseline vs CAWA", fig15)
	registerExpReq("fig16", "L1D MPKI with CACP applied to RR/GTO/2-level schedulers", cacpMatrix, fig16)
	registerExpReq("fig17", "IPC with CACP applied to RR/GTO/2-level schedulers", cacpMatrix, fig17)
}

// evalMatrix is the shared run matrix of Figures 9 and 10: baseline
// plus every evaluated scheduler, across the full application set.
func evalMatrix(s *Session) []RunKey {
	systems := []core.SystemConfig{core.Baseline()}
	for _, sys := range evalSystems {
		systems = append(systems, sys.sc)
	}
	return matrix(s.paperApps(), systems...)
}

// cacpMatrix is the shared run matrix of Figures 16 and 17.
func cacpMatrix(s *Session) []RunKey {
	systems := make([]core.SystemConfig, 0, len(cacpSystems))
	for _, sys := range cacpSystems {
		systems = append(systems, sys.sc)
	}
	return matrix(s.sensApps(), systems...)
}

var evalSystems = []struct {
	label string
	sc    core.SystemConfig
}{
	{"2lvl", core.SystemConfig{Scheduler: "2lvl"}},
	{"gto", core.SystemConfig{Scheduler: "gto"}},
	{"cawa", core.CAWA()},
}

// fig9: IPC speedup over the RR baseline for the 2-level scheduler,
// GTO, and the full CAWA design (paper: CAWA +23% on Sens, GTO +16%,
// 2-level -2%; kmeans up to 3.13x under CAWA).
func fig9(s *Session) (*Table, error) {
	t := NewTable("fig9", "IPC speedup over baseline RR",
		"app", "2lvl", "gto", "cawa")
	perSys := map[string][]float64{}
	perSysSens := map[string][]float64{}
	for _, app := range s.paperApps() {
		base, err := s.Baseline(app)
		if err != nil {
			return nil, err
		}
		row := make([]float64, 0, len(evalSystems))
		for _, sys := range evalSystems {
			r, err := s.Run(app, sys.sc)
			if err != nil {
				return nil, err
			}
			sp := r.Agg.IPC() / base.Agg.IPC()
			row = append(row, sp)
			perSys[sys.label] = append(perSys[sys.label], sp)
			if isSens(app) {
				perSysSens[sys.label] = append(perSysSens[sys.label], sp)
			}
		}
		t.AddRow(app, row...)
	}
	t.AddRow("GMEAN(sens)",
		stats.GeoMean(perSysSens["2lvl"]), stats.GeoMean(perSysSens["gto"]), stats.GeoMean(perSysSens["cawa"]))
	t.AddRow("GMEAN(all)",
		stats.GeoMean(perSys["2lvl"]), stats.GeoMean(perSys["gto"]), stats.GeoMean(perSys["cawa"]))
	return t, nil
}

func isSens(app string) bool {
	for _, a := range SensApps() {
		if a == app {
			return true
		}
	}
	return false
}

// fig10: absolute L1D MPKI under each scheduler (paper: CAWA reduces
// MPKI the most on cache-thrashing apps; heartwall and strcltr_small
// may rise while IPC still improves).
func fig10(s *Session) (*Table, error) {
	t := NewTable("fig10", "L1D MPKI", "app", "rr", "2lvl", "gto", "cawa")
	for _, app := range s.paperApps() {
		base, err := s.Baseline(app)
		if err != nil {
			return nil, err
		}
		row := []float64{base.Agg.MPKI()}
		for _, sys := range evalSystems {
			r, err := s.Run(app, sys.sc)
			if err != nil {
				return nil, err
			}
			row = append(row, r.Agg.MPKI())
		}
		t.AddRow(app, row...)
	}
	return t, nil
}

// cplSampler periodically snapshots every SM's CPL "slow warp"
// predictions, attributing them to global warp ids.
type cplSampler struct {
	every   int64
	samples map[int]*samplePair // gid -> counts
}

type samplePair struct{ slow, total int64 }

func newCPLSampler(every int64) *cplSampler {
	return &cplSampler{every: every, samples: make(map[int]*samplePair)}
}

// nextWake clamps fast-forward skips to the sampling cadence
// (RunOptions.PerCycleWake): the hook only acts on multiples of every.
func (cs *cplSampler) nextWake(now int64) int64 {
	return now + cs.every - now%cs.every
}

func (cs *cplSampler) hook(g *gpu.GPU, cycle int64) {
	if cycle%cs.every != 0 {
		return
	}
	for _, m := range g.SMs() {
		cpl, ok := m.Crit().(*core.CPL)
		if !ok {
			continue
		}
		for slot := 0; slot < g.Config().MaxWarpsPerSM; slot++ {
			gid := cpl.GID(slot)
			if gid < 0 {
				continue
			}
			p := cs.samples[gid]
			if p == nil {
				p = &samplePair{}
				cs.samples[gid] = p
			}
			p.total++
			if cpl.IsCritical(slot) {
				p.slow++
			}
		}
	}
}

// fig11: CPL prediction accuracy, measured as the frequency with which
// the post-hoc critical (slowest) warp of each block was flagged as a
// slow warp by CPL during execution (paper: 73% average, 100% for
// needle).
func fig11(s *Session) (*Table, error) {
	t := NewTable("fig11", "CPL criticality prediction accuracy", "app", "accuracy")
	apps := s.paperApps()
	// Each instrumented run owns its sampler, so the per-app runs are
	// independent; fan them out and build the table sequentially.
	accs := make([]float64, len(apps))
	err := s.Fanout(len(apps), func(i int) error {
		app := apps[i]
		sampler := newCPLSampler(50)
		r, err := s.RunUncached(RunOptions{
			Workload:     app,
			System:       core.SystemConfig{Scheduler: "gcaws", CPL: true},
			PerCycle:     sampler.hook,
			PerCycleWake: sampler.nextWake,
		})
		if err != nil {
			return err
		}
		var num, den float64
		for _, ws := range r.Agg.BlockGroup() {
			if len(ws) < 2 {
				continue
			}
			cw := stats.CriticalWarp(ws)
			if p := sampler.samples[cw.GID]; p != nil && p.total > 0 {
				num += float64(p.slow)
				den += float64(p.total)
			}
		}
		acc := 0.0
		if den > 0 {
			acc = num / den
		}
		if app == "needle" && den == 0 {
			acc = 1 // single-warp blocks are trivially critical
		}
		accs[i] = acc
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, app := range apps {
		t.AddRow(app, accs[i])
	}
	mean := 0.0
	for _, a := range accs {
		mean += a
	}
	t.AddRow("AVG", mean/float64(len(accs)))
	return t, nil
}

// rankSampler traces the criticality rank of one warp over time.
type rankSampler struct {
	target int
	every  int64
	points []rankPoint
}

type rankPoint struct {
	cycle int64
	rank  int
	peers int
}

// nextWake clamps fast-forward skips to the sampling cadence.
func (rs *rankSampler) nextWake(now int64) int64 {
	return now + rs.every - now%rs.every
}

func (rs *rankSampler) hook(g *gpu.GPU, cycle int64) {
	if cycle%rs.every != 0 {
		return
	}
	for _, m := range g.SMs() {
		cpl, ok := m.Crit().(*core.CPL)
		if !ok {
			continue
		}
		for slot := 0; slot < g.Config().MaxWarpsPerSM; slot++ {
			if cpl.GID(slot) != rs.target {
				continue
			}
			rank, peers := cpl.Rank(slot)
			if peers > 1 { // a lone survivor has no meaningful rank
				rs.points = append(rs.points, rankPoint{cycle, rank, peers})
			}
			return
		}
	}
}

// fig12: the critical warp's priority rank within its block over its
// lifetime, under the RR baseline and under gCAWS (paper: gCAWS keeps
// the critical warp at high rank and schedules it more often).
func fig12(s *Session) (*Table, error) {
	base, err := s.Baseline("bfs")
	if err != nil {
		return nil, err
	}
	warps := pickBlock(&base.Agg, 8)
	if warps == nil {
		return nil, fmt.Errorf("fig12: no block found")
	}
	target := warps[len(warps)-1].GID // critical warp of that block

	schedulers := []string{"lrr", "gcaws"}
	traces := make([][]rankPoint, len(schedulers))
	err = s.Fanout(len(schedulers), func(i int) error {
		rs := &rankSampler{target: target, every: 10}
		_, err := s.RunUncached(RunOptions{
			Workload:     "bfs",
			System:       core.SystemConfig{Scheduler: schedulers[i], CPL: true},
			PerCycle:     rs.hook,
			PerCycleWake: rs.nextWake,
		})
		traces[i] = rs.points
		return err
	})
	if err != nil {
		return nil, err
	}
	rrPoints, gPoints := traces[0], traces[1]

	const bins = 20
	t := NewTable("fig12", fmt.Sprintf("Criticality rank of critical warp gid=%d over normalized lifetime", target),
		"lifetime", "rr_rank", "gcaws_rank")
	rr := binRanks(rrPoints, bins)
	gc := binRanks(gPoints, bins)
	for i := 0; i < bins; i++ {
		t.AddRow(fmt.Sprintf("%.2f", (float64(i)+0.5)/bins), rr[i], gc[i])
	}
	t.Note = "rank: 0 = least critical, peers-1 = most critical within the thread-block"
	return t, nil
}

func binRanks(points []rankPoint, bins int) []float64 {
	out := make([]float64, bins)
	if len(points) == 0 {
		return out
	}
	lo, hi := points[0].cycle, points[len(points)-1].cycle
	span := hi - lo + 1
	sums := make([]float64, bins)
	counts := make([]int, bins)
	for _, p := range points {
		b := int((p.cycle - lo) * int64(bins) / span)
		if b >= bins {
			b = bins - 1
		}
		sums[b] += float64(p.rank)
		counts[b]++
	}
	for i := range out {
		if counts[i] > 0 {
			out[i] = sums[i] / float64(counts[i])
		}
	}
	return out
}

// fig13: speedups of the oracle CAWS scheduler, gCAWS alone, and the
// full CAWA over RR on the Sens applications (paper: oracle CAWS best
// on small kernels; gCAWS/CAWA win on large kernels and kmeans; CAWA
// ~5% above gCAWS overall).
// fig13Requests declares fig13's matrix. The oracle design points
// depend on baseline profiles, so the baselines prewarm first (in
// parallel), then the oracle-keyed runs join the matrix.
func fig13Requests(s *Session) []RunKey {
	apps := s.sensApps()
	if err := s.Prewarm(matrix(apps, core.Baseline())); err != nil {
		return nil // the error resurfaces in fig13's sequential pass
	}
	keys := matrix(apps,
		core.SystemConfig{Scheduler: "gcaws", CPL: true}, core.CAWA())
	for _, app := range apps {
		oracle, err := s.OracleFor(app)
		if err != nil {
			return nil
		}
		keys = append(keys, RunKey{App: app, System: core.SystemConfig{Scheduler: "caws", Oracle: oracle}})
	}
	return keys
}

func fig13(s *Session) (*Table, error) {
	t := NewTable("fig13", "Speedup over RR: oracle CAWS, gCAWS, CAWA",
		"app", "caws_oracle", "gcaws", "cawa")
	var sp1, sp2, sp3 []float64
	for _, app := range s.sensApps() {
		base, err := s.Baseline(app)
		if err != nil {
			return nil, err
		}
		oracle, err := s.OracleFor(app)
		if err != nil {
			return nil, err
		}
		rCAWS, err := s.Run(app, core.SystemConfig{Scheduler: "caws", Oracle: oracle})
		if err != nil {
			return nil, err
		}
		rG, err := s.Run(app, core.SystemConfig{Scheduler: "gcaws", CPL: true})
		if err != nil {
			return nil, err
		}
		rC, err := s.Run(app, core.CAWA())
		if err != nil {
			return nil, err
		}
		a := rCAWS.Agg.IPC() / base.Agg.IPC()
		b := rG.Agg.IPC() / base.Agg.IPC()
		c := rC.Agg.IPC() / base.Agg.IPC()
		t.AddRow(app, a, b, c)
		sp1, sp2, sp3 = append(sp1, a), append(sp2, b), append(sp3, c)
	}
	t.AddRow("GMEAN", stats.GeoMean(sp1), stats.GeoMean(sp2), stats.GeoMean(sp3))
	return t, nil
}

// criticalHitRate pools L1D hits/accesses of the post-hoc critical
// warps of a run, read from the per-warp snapshot the Result carries
// (session-cached results no longer retain their GPU).
func criticalHitRate(r *Result) float64 {
	crit := CriticalGIDs(&r.Agg, 2)
	var hits, accs uint64
	for gid, a := range r.WarpL1Accesses {
		if crit[int(gid)] {
			accs += a
			hits += r.WarpL1Hits[gid]
		}
	}
	if accs == 0 {
		return 0
	}
	return float64(hits) / float64(accs)
}

// fig14: the L1D hit rate received by critical-warp requests, under
// GTO and CAWA, normalized to the RR baseline (paper: CAWA 2.46x on
// average, 7.22x for kmeans).
func fig14(s *Session) (*Table, error) {
	t := NewTable("fig14", "Critical-warp L1D hit rate normalized to RR baseline",
		"app", "gto", "cawa")
	var g, c []float64
	for _, app := range s.sensApps() {
		base, err := s.Baseline(app)
		if err != nil {
			return nil, err
		}
		rG, err := s.Run(app, core.SystemConfig{Scheduler: "gto"})
		if err != nil {
			return nil, err
		}
		rC, err := s.Run(app, core.CAWA())
		if err != nil {
			return nil, err
		}
		b := criticalHitRate(base)
		if b == 0 {
			b = 1e-9
		}
		gv, cv := criticalHitRate(rG)/b, criticalHitRate(rC)/b
		t.AddRow(app, gv, cv)
		g, c = append(g, gv), append(c, cv)
	}
	t.AddRow("GMEAN", stats.GeoMean(g), stats.GeoMean(c))
	return t, nil
}

// zeroReuseShare runs app with an eviction listener and returns the
// share of critical-warp-filled lines evicted without any reuse
// (lines "useful to critical warps" that never saw a re-reference).
func zeroReuseShare(s *Session, app string, sc core.SystemConfig) (float64, error) {
	var zero, total uint64
	_, err := s.RunUncached(RunOptions{
		Workload: app,
		System:   sc,
		AttachL1: func(_ int, l1 *memsys.L1D) {
			l1.Cache().EvictListener = func(ev *cache.Eviction) {
				if ev.Line.FillCritical {
					total++
					if ev.Line.Refs == 0 {
						zero++
					}
				}
			}
		},
	})
	if err != nil {
		return 0, err
	}
	if total == 0 {
		return 0, nil
	}
	return float64(zero) / float64(total), nil
}

// fig15: the share of critical-warp cache lines evicted with zero reuse
// under the baseline and under CAWA (paper: 44.3% in the baseline,
// greatly reduced by CACP's explicit partitioning).
func fig15(s *Session) (*Table, error) {
	t := NewTable("fig15", "Zero-reuse critical-warp lines (share of critical evictions)",
		"app", "baseline", "cawa")
	apps := s.sensApps()
	systems := []core.SystemConfig{{Scheduler: "lrr", CPL: true}, core.CAWA()}
	// Eviction-listener runs bypass the cache; fan out all app×system
	// cells and assemble the table sequentially.
	shares := make([][]float64, len(apps))
	for i := range shares {
		shares[i] = make([]float64, len(systems))
	}
	err := s.Fanout(len(apps)*len(systems), func(i int) error {
		a, j := i/len(systems), i%len(systems)
		v, err := zeroReuseShare(s, apps[a], systems[j])
		shares[a][j] = v
		return err
	})
	if err != nil {
		return nil, err
	}
	var sumB, sumC float64
	for i, app := range apps {
		t.AddRow(app, shares[i][0], shares[i][1])
		sumB += shares[i][0]
		sumC += shares[i][1]
	}
	t.AddRow("AVG", sumB/float64(len(apps)), sumC/float64(len(apps)))
	return t, nil
}

// cacpSystems are the design points of Figures 16 and 17: each
// state-of-the-art scheduler with and without CACP, plus CAWA.
var cacpSystems = []struct {
	label string
	sc    core.SystemConfig
}{
	{"rr", core.Baseline()},
	{"rr+cacp", core.SystemConfig{Scheduler: "lrr", CPL: true, CACP: true}},
	{"gto", core.SystemConfig{Scheduler: "gto"}},
	{"gto+cacp", core.SystemConfig{Scheduler: "gto", CPL: true, CACP: true}},
	{"2lvl", core.SystemConfig{Scheduler: "2lvl"}},
	{"2lvl+cacp", core.SystemConfig{Scheduler: "2lvl", CPL: true, CACP: true}},
	{"cawa", core.CAWA()},
}

// fig16: L1D MPKI when CACP is applied underneath each scheduler
// (paper: CACP helps every scheduler; the coordinated CAWA is best).
func fig16(s *Session) (*Table, error) {
	cols := []string{"app"}
	for _, sys := range cacpSystems {
		cols = append(cols, sys.label)
	}
	t := NewTable("fig16", "L1D MPKI with CACP under different schedulers", cols...)
	for _, app := range s.sensApps() {
		row := make([]float64, 0, len(cacpSystems))
		for _, sys := range cacpSystems {
			r, err := s.Run(app, sys.sc)
			if err != nil {
				return nil, err
			}
			row = append(row, r.Agg.MPKI())
		}
		t.AddRow(app, row...)
	}
	return t, nil
}

// fig17: IPC speedup over RR for the same design points (paper: CACP
// adds 2%-16.5% on top of the schedulers; CAWA remains best).
func fig17(s *Session) (*Table, error) {
	cols := []string{"app"}
	for _, sys := range cacpSystems[1:] {
		cols = append(cols, sys.label)
	}
	t := NewTable("fig17", "IPC speedup over RR with CACP under different schedulers", cols...)
	gmeans := make([][]float64, len(cacpSystems)-1)
	for _, app := range s.sensApps() {
		base, err := s.Baseline(app)
		if err != nil {
			return nil, err
		}
		row := make([]float64, 0, len(cacpSystems)-1)
		for i, sys := range cacpSystems[1:] {
			r, err := s.Run(app, sys.sc)
			if err != nil {
				return nil, err
			}
			sp := r.Agg.IPC() / base.Agg.IPC()
			row = append(row, sp)
			gmeans[i] = append(gmeans[i], sp)
		}
		t.AddRow(app, row...)
	}
	g := make([]float64, len(gmeans))
	for i, xs := range gmeans {
		g[i] = stats.GeoMean(xs)
	}
	t.AddRow("GMEAN", g...)
	return t, nil
}
