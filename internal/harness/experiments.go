package harness

import (
	"fmt"
	"sort"
)

// Experiment regenerates one of the paper's tables or figures.
type Experiment struct {
	// ID is the experiment key (e.g. "fig9", "tab1").
	ID string
	// Title summarizes what the paper's figure/table shows.
	Title string
	// Run produces the table.
	Run func(s *Session) (*Table, error)
}

var experiments = map[string]*Experiment{}

func registerExp(id, title string, run func(s *Session) (*Table, error)) {
	if _, dup := experiments[id]; dup {
		panic(fmt.Sprintf("harness: duplicate experiment %q", id))
	}
	experiments[id] = &Experiment{ID: id, Title: title, Run: run}
}

// LookupExperiment returns the experiment registered under id.
func LookupExperiment(id string) (*Experiment, bool) {
	e, ok := experiments[id]
	return e, ok
}

// ExperimentIDs lists all experiment ids, sorted.
func ExperimentIDs() []string {
	out := make([]string, 0, len(experiments))
	for id := range experiments {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// RunExperiment runs the experiment by id against the session.
func RunExperiment(id string, s *Session) (*Table, error) {
	e, ok := LookupExperiment(id)
	if !ok {
		return nil, fmt.Errorf("harness: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
	return e.Run(s)
}
