package harness

import (
	"fmt"
	"sort"
	"sync"
)

// Experiment regenerates one of the paper's tables or figures.
type Experiment struct {
	// ID is the experiment key (e.g. "fig9", "tab1").
	ID string
	// Title summarizes what the paper's figure/table shows.
	Title string
	// Requests declares the experiment's run matrix: every cacheable
	// (app, design point) cell Run will consult. RunExperiment prewarms
	// the matrix across the session's worker pool before table
	// construction; nil means the experiment has no cacheable matrix
	// (or manages its own fan-out of hooked runs).
	Requests func(s *Session) []RunKey
	// Run produces the table. Table construction is sequential and
	// deterministic; all simulation fan-out happens in Requests or
	// through Session.Fanout.
	Run func(s *Session) (*Table, error)
}

var experiments = map[string]*Experiment{}

func registerExp(id, title string, run func(s *Session) (*Table, error)) {
	registerExpReq(id, title, nil, run)
}

// registerExpReq registers an experiment together with its declared run
// matrix.
func registerExpReq(id, title string, requests func(s *Session) []RunKey, run func(s *Session) (*Table, error)) {
	if _, dup := experiments[id]; dup {
		panic(fmt.Sprintf("harness: duplicate experiment %q", id))
	}
	experiments[id] = &Experiment{ID: id, Title: title, Requests: requests, Run: run}
}

// LookupExperiment returns the experiment registered under id.
func LookupExperiment(id string) (*Experiment, bool) {
	e, ok := experiments[id]
	return e, ok
}

// ExperimentIDs lists all experiment ids, sorted.
func ExperimentIDs() []string {
	out := make([]string, 0, len(experiments))
	for id := range experiments {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// RunExperiment runs the experiment by id against the session: its run
// matrix simulates in parallel across the session's workers, then the
// table builds sequentially from the cached results.
func RunExperiment(id string, s *Session) (*Table, error) {
	e, ok := LookupExperiment(id)
	if !ok {
		return nil, fmt.Errorf("harness: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
	if e.Requests != nil {
		if err := s.Prewarm(e.Requests(s)); err != nil {
			return nil, err
		}
	}
	return e.Run(s)
}

// PrewarmExperiments collects the run matrices of the named experiments
// (gathering concurrently — a Requests func may itself simulate
// prerequisite runs) and simulates the union across the session's
// worker pool. Drivers covering several experiments (cawabench
// -exp all) call it once so independent simulations from different
// figures share the pool instead of parallelizing only within each
// figure.
func PrewarmExperiments(s *Session, ids []string) error {
	exps := make([]*Experiment, len(ids))
	for i, id := range ids {
		e, ok := LookupExperiment(id)
		if !ok {
			return fmt.Errorf("harness: unknown experiment %q (have %v)", id, ExperimentIDs())
		}
		exps[i] = e
	}
	var mu sync.Mutex
	var keys []RunKey
	err := s.Fanout(len(exps), func(i int) error {
		if exps[i].Requests == nil {
			return nil
		}
		ks := exps[i].Requests(s)
		mu.Lock()
		keys = append(keys, ks...)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return err
	}
	return s.Prewarm(keys)
}
