package harness

import (
	"fmt"

	"cawa/internal/core"
	"cawa/internal/stats"
)

func init() {
	registerExpReq("abl-cpl", "Ablation: CPL counter terms (Equation 1)",
		sensMatrixOf(ablCPLSystems), ablCPL)
	registerExpReq("abl-greedy", "Ablation: greedy vs re-ranking criticality scheduling",
		sensMatrixOf(ablGreedySystems), ablGreedy)
	registerExpReq("abl-partition", "Ablation: CACP critical-partition size sweep",
		sensMatrixOf(ablPartitionSystems), ablPartition)
	registerExpReq("abl-signature", "Ablation: CACP signature composition",
		sensMatrixOf(ablSignatureSystems), ablSignature)
	registerExpReq("abl-dynpart", "Extension: UCP-style dynamic partition tuning (Section 3.3)",
		sensMatrixOf(ablDynPartSystems), ablDynPart)
}

// sensMatrixOf declares a run matrix of the given design points plus
// the RR baseline over the Sens applications.
func sensMatrixOf(systems func() []core.SystemConfig) func(s *Session) []RunKey {
	return func(s *Session) []RunKey {
		return matrix(s.sensApps(), append([]core.SystemConfig{core.Baseline()}, systems()...)...)
	}
}

// gmeanSpeedup runs the design point over the Sens apps and returns the
// geometric-mean IPC speedup over the RR baseline.
func gmeanSpeedup(s *Session, sc core.SystemConfig) (float64, error) {
	var sp []float64
	for _, app := range s.sensApps() {
		base, err := s.Baseline(app)
		if err != nil {
			return 0, err
		}
		r, err := s.Run(app, sc)
		if err != nil {
			return 0, err
		}
		sp = append(sp, r.Agg.IPC()/base.Agg.IPC())
	}
	return stats.GeoMean(sp), nil
}

// Stable tweak funcs; the Variant labels give the design points a
// stable cache identity (pointer-keyed closures are not cacheable).
var (
	tweakInstOnly  = func(c *core.CPL) { c.DisableStallTerm = true }
	tweakStallOnly = func(c *core.CPL) { c.DisableInstTerm = true }
)

// ablCPLVariants pairs each Equation-1 ablation with its table label.
var ablCPLVariants = []struct {
	name string
	sc   core.SystemConfig
}{
	{"inst+stall (paper)", core.SystemConfig{Scheduler: "gcaws", CPL: true}},
	{"inst-only", core.SystemConfig{Scheduler: "gcaws", CPL: true, CPLTweak: tweakInstOnly, Variant: "cpl-inst-only"}},
	{"stall-only", core.SystemConfig{Scheduler: "gcaws", CPL: true, CPLTweak: tweakStallOnly, Variant: "cpl-stall-only"}},
}

func ablCPLSystems() []core.SystemConfig {
	out := make([]core.SystemConfig, len(ablCPLVariants))
	for i, v := range ablCPLVariants {
		out[i] = v.sc
	}
	return out
}

// ablCPL compares the full Equation-1 criticality counter against
// instruction-disparity-only and stall-only predictors, under gCAWS.
func ablCPL(s *Session) (*Table, error) {
	t := NewTable("abl-cpl", "CPL term ablation (gCAWS, GMEAN speedup over RR, Sens apps)",
		"variant", "gmean_speedup")
	for _, v := range ablCPLVariants {
		g, err := gmeanSpeedup(s, v.sc)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.name, g)
	}
	return t, nil
}

func ablGreedySystems() []core.SystemConfig {
	return []core.SystemConfig{
		{Scheduler: "gcaws", CPL: true},
		{Scheduler: "caws", CPL: true},
	}
}

// ablGreedy compares gCAWS's greedy hold of the selected critical warp
// against re-ranking by criticality every cycle (the caws policy driven
// by CPL instead of an oracle).
func ablGreedy(s *Session) (*Table, error) {
	t := NewTable("abl-greedy", "Greedy hold vs per-cycle re-ranking (GMEAN speedup over RR, Sens apps)",
		"variant", "gmean_speedup")
	systems := ablGreedySystems()
	g1, err := gmeanSpeedup(s, systems[0])
	if err != nil {
		return nil, err
	}
	g2, err := gmeanSpeedup(s, systems[1])
	if err != nil {
		return nil, err
	}
	t.AddRow("greedy (gCAWS)", g1)
	t.AddRow("re-rank each cycle", g2)
	return t, nil
}

// ablPartitionWays are the sweep points of the critical-way ablation.
var ablPartitionWays = []int{2, 4, 8, 12, 14}

func ablPartitionSystems() []core.SystemConfig {
	out := make([]core.SystemConfig, 0, len(ablPartitionWays))
	for _, ways := range ablPartitionWays {
		cfg := core.DefaultCACPConfig()
		cfg.CriticalWays = ways
		out = append(out, core.SystemConfig{
			Scheduler: "gcaws", CPL: true, CACP: true, CACPConfig: &cfg,
		})
	}
	return out
}

// ablPartition sweeps the number of L1D ways reserved for critical
// lines (paper: 8 of 16 is best).
func ablPartition(s *Session) (*Table, error) {
	t := NewTable("abl-partition", "CACP critical ways sweep (GMEAN speedup over RR, Sens apps)",
		"critical_ways", "gmean_speedup")
	for i, sc := range ablPartitionSystems() {
		g, err := gmeanSpeedup(s, sc)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d/16", ablPartitionWays[i]), g)
	}
	return t, nil
}

func ablDynPartSystems() []core.SystemConfig {
	dcfg := core.DefaultCACPConfig()
	dcfg.DynamicPartition = true
	return []core.SystemConfig{
		core.CAWA(),
		{Scheduler: "gcaws", CPL: true, CACP: true, CACPConfig: &dcfg},
	}
}

// ablDynPart compares the paper's static 8/16 split against the
// runtime utility-driven boundary the paper suggests as future work.
func ablDynPart(s *Session) (*Table, error) {
	t := NewTable("abl-dynpart", "Static vs dynamic CACP partition (GMEAN speedup over RR, Sens apps)",
		"variant", "gmean_speedup")
	systems := ablDynPartSystems()
	static, err := gmeanSpeedup(s, systems[0])
	if err != nil {
		return nil, err
	}
	dynamic, err := gmeanSpeedup(s, systems[1])
	if err != nil {
		return nil, err
	}
	t.AddRow("static 8/16 (paper)", static)
	t.AddRow("dynamic (UCP-style)", dynamic)
	return t, nil
}

// ablSignatureKinds pairs each predictor indexing scheme with its
// table label.
var ablSignatureKinds = []struct {
	name string
	kind core.SignatureKind
}{
	{"pc^addr (paper)", core.SigPCXorAddr},
	{"pc-only", core.SigPCOnly},
	{"addr-only", core.SigAddrOnly},
}

func ablSignatureSystems() []core.SystemConfig {
	out := make([]core.SystemConfig, 0, len(ablSignatureKinds))
	for _, k := range ablSignatureKinds {
		cfg := core.DefaultCACPConfig()
		cfg.Signature = k.kind
		out = append(out, core.SystemConfig{
			Scheduler: "gcaws", CPL: true, CACP: true, CACPConfig: &cfg,
		})
	}
	return out
}

// ablSignature compares the paper's PC-xor-address signature with
// PC-only and address-only predictor indexing.
func ablSignature(s *Session) (*Table, error) {
	t := NewTable("abl-signature", "CACP signature composition (GMEAN speedup over RR, Sens apps)",
		"signature", "gmean_speedup")
	for i, sc := range ablSignatureSystems() {
		g, err := gmeanSpeedup(s, sc)
		if err != nil {
			return nil, err
		}
		t.AddRow(ablSignatureKinds[i].name, g)
	}
	return t, nil
}
