package harness

import (
	"fmt"

	"cawa/internal/core"
	"cawa/internal/stats"
)

func init() {
	registerExp("abl-cpl", "Ablation: CPL counter terms (Equation 1)", ablCPL)
	registerExp("abl-greedy", "Ablation: greedy vs re-ranking criticality scheduling", ablGreedy)
	registerExp("abl-partition", "Ablation: CACP critical-partition size sweep", ablPartition)
	registerExp("abl-signature", "Ablation: CACP signature composition", ablSignature)
	registerExp("abl-dynpart", "Extension: UCP-style dynamic partition tuning (Section 3.3)", ablDynPart)
}

// gmeanSpeedup runs the design point over the Sens apps and returns the
// geometric-mean IPC speedup over the RR baseline.
func gmeanSpeedup(s *Session, sc core.SystemConfig) (float64, error) {
	var sp []float64
	for _, app := range SensApps() {
		base, err := s.Baseline(app)
		if err != nil {
			return 0, err
		}
		r, err := s.Run(app, sc)
		if err != nil {
			return 0, err
		}
		sp = append(sp, r.Agg.IPC()/base.Agg.IPC())
	}
	return stats.GeoMean(sp), nil
}

// Stable tweak funcs so the session cache can key on them.
var (
	tweakInstOnly  = func(c *core.CPL) { c.DisableStallTerm = true }
	tweakStallOnly = func(c *core.CPL) { c.DisableInstTerm = true }
)

// ablCPL compares the full Equation-1 criticality counter against
// instruction-disparity-only and stall-only predictors, under gCAWS.
func ablCPL(s *Session) (*Table, error) {
	t := NewTable("abl-cpl", "CPL term ablation (gCAWS, GMEAN speedup over RR, Sens apps)",
		"variant", "gmean_speedup")
	variants := []struct {
		name  string
		tweak func(*core.CPL)
	}{
		{"inst+stall (paper)", nil},
		{"inst-only", tweakInstOnly},
		{"stall-only", tweakStallOnly},
	}
	for _, v := range variants {
		g, err := gmeanSpeedup(s, core.SystemConfig{Scheduler: "gcaws", CPL: true, CPLTweak: v.tweak})
		if err != nil {
			return nil, err
		}
		t.AddRow(v.name, g)
	}
	return t, nil
}

// ablGreedy compares gCAWS's greedy hold of the selected critical warp
// against re-ranking by criticality every cycle (the caws policy driven
// by CPL instead of an oracle).
func ablGreedy(s *Session) (*Table, error) {
	t := NewTable("abl-greedy", "Greedy hold vs per-cycle re-ranking (GMEAN speedup over RR, Sens apps)",
		"variant", "gmean_speedup")
	g1, err := gmeanSpeedup(s, core.SystemConfig{Scheduler: "gcaws", CPL: true})
	if err != nil {
		return nil, err
	}
	g2, err := gmeanSpeedup(s, core.SystemConfig{Scheduler: "caws", CPL: true})
	if err != nil {
		return nil, err
	}
	t.AddRow("greedy (gCAWS)", g1)
	t.AddRow("re-rank each cycle", g2)
	return t, nil
}

// ablPartition sweeps the number of L1D ways reserved for critical
// lines (paper: 8 of 16 is best).
func ablPartition(s *Session) (*Table, error) {
	t := NewTable("abl-partition", "CACP critical ways sweep (GMEAN speedup over RR, Sens apps)",
		"critical_ways", "gmean_speedup")
	for _, ways := range []int{2, 4, 8, 12, 14} {
		cfg := core.DefaultCACPConfig()
		cfg.CriticalWays = ways
		g, err := gmeanSpeedup(s, core.SystemConfig{
			Scheduler: "gcaws", CPL: true, CACP: true, CACPConfig: &cfg,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d/16", ways), g)
	}
	return t, nil
}

// ablDynPart compares the paper's static 8/16 split against the
// runtime utility-driven boundary the paper suggests as future work.
func ablDynPart(s *Session) (*Table, error) {
	t := NewTable("abl-dynpart", "Static vs dynamic CACP partition (GMEAN speedup over RR, Sens apps)",
		"variant", "gmean_speedup")
	static, err := gmeanSpeedup(s, core.CAWA())
	if err != nil {
		return nil, err
	}
	dcfg := core.DefaultCACPConfig()
	dcfg.DynamicPartition = true
	dynamic, err := gmeanSpeedup(s, core.SystemConfig{
		Scheduler: "gcaws", CPL: true, CACP: true, CACPConfig: &dcfg,
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("static 8/16 (paper)", static)
	t.AddRow("dynamic (UCP-style)", dynamic)
	return t, nil
}

// ablSignature compares the paper's PC-xor-address signature with
// PC-only and address-only predictor indexing.
func ablSignature(s *Session) (*Table, error) {
	t := NewTable("abl-signature", "CACP signature composition (GMEAN speedup over RR, Sens apps)",
		"signature", "gmean_speedup")
	kinds := []struct {
		name string
		kind core.SignatureKind
	}{
		{"pc^addr (paper)", core.SigPCXorAddr},
		{"pc-only", core.SigPCOnly},
		{"addr-only", core.SigAddrOnly},
	}
	for _, k := range kinds {
		cfg := core.DefaultCACPConfig()
		cfg.Signature = k.kind
		g, err := gmeanSpeedup(s, core.SystemConfig{
			Scheduler: "gcaws", CPL: true, CACP: true, CACPConfig: &cfg,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(k.name, g)
	}
	return t, nil
}
