package harness

import (
	"strings"

	"cawa/internal/core"
	"cawa/internal/stats"
	"cawa/internal/workloads"
)

func init() {
	registerExp("tab1", "GPGPU-sim configuration (Table 1)", tab1)
	registerExp("tab2", "Benchmarks and data-set classification (Table 2)", tab2)
	registerExpReq("sec552", "CPL-guided scheduling on top of GTO (Section 5.5.2)",
		func(s *Session) []RunKey {
			return matrix(s.sensApps(),
				core.SystemConfig{Scheduler: "gto"},
				core.SystemConfig{Scheduler: "gcaws", CPL: true})
		}, sec552)
}

// tab1 renders the architectural configuration in the paper's format.
func tab1(s *Session) (*Table, error) {
	t := NewTable("tab1", "Simulated configuration", "parameter", "value")
	for _, line := range strings.Split(s.Config.String(), "\n") {
		parts := strings.SplitN(line, "  ", 2)
		key := parts[0]
		val := ""
		if len(parts) > 1 {
			val = strings.TrimSpace(parts[1])
		}
		t.AddTextRow(key, val)
	}
	return t, nil
}

// tab2 lists the benchmark inventory with the Sens/Non-sens
// classification and the scaled default input sizes.
func tab2(s *Session) (*Table, error) {
	t := NewTable("tab2", "GPGPU benchmarks", "benchmark", "category", "registered")
	for _, app := range PaperApps {
		cat := "Non-sens"
		if isSens(app) {
			cat = "Sens"
		}
		found := "no"
		for _, n := range workloads.Names() {
			if n == app {
				found = "yes"
				break
			}
		}
		t.AddTextRow(app, cat, found)
	}
	return t, nil
}

// sec552: the paper notes that applying CPL-guided criticality
// scheduling on top of GTO improves the Sens applications by ~7%; in
// this design space that is gCAWS (criticality-first, GTO tie-break,
// greedy) versus plain GTO.
func sec552(s *Session) (*Table, error) {
	t := NewTable("sec552", "gCAWS (CPL on GTO) vs plain GTO", "app", "speedup_vs_gto")
	var sp []float64
	for _, app := range s.sensApps() {
		gto, err := s.Run(app, core.SystemConfig{Scheduler: "gto"})
		if err != nil {
			return nil, err
		}
		g, err := s.Run(app, core.SystemConfig{Scheduler: "gcaws", CPL: true})
		if err != nil {
			return nil, err
		}
		v := g.Agg.IPC() / gto.Agg.IPC()
		t.AddRow(app, v)
		sp = append(sp, v)
	}
	t.AddRow("GMEAN", stats.GeoMean(sp))
	return t, nil
}
