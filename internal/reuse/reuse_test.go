package reuse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cawa/internal/cache"
)

// naiveDistance is an O(n) reference: distinct lines since the previous
// access of the same line.
type naiveDistance struct {
	stream []int64
}

func (n *naiveDistance) record(line int64) int64 {
	defer func() { n.stream = append(n.stream, line) }()
	last := -1
	for i := len(n.stream) - 1; i >= 0; i-- {
		if n.stream[i] == line {
			last = i
			break
		}
	}
	if last < 0 {
		return Cold
	}
	distinct := make(map[int64]bool)
	for _, l := range n.stream[last+1:] {
		distinct[l] = true
	}
	return int64(len(distinct))
}

func TestDistanceTrackerBasics(t *testing.T) {
	tr := NewDistanceTracker()
	if d := tr.Record(1); d != Cold {
		t.Fatalf("first access distance %d", d)
	}
	if d := tr.Record(1); d != 0 {
		t.Fatalf("immediate re-reference distance %d", d)
	}
	tr.Record(2)
	tr.Record(3)
	if d := tr.Record(1); d != 2 {
		t.Fatalf("distance after 2 distinct lines = %d", d)
	}
	if got := tr.UniqueLines(); got != 3 {
		t.Fatalf("unique lines %d", got)
	}
}

// TestDistanceTrackerMatchesNaive is the central property: the Fenwick
// implementation equals the brute-force definition on random streams.
func TestDistanceTrackerMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewDistanceTracker()
		ref := &naiveDistance{}
		for i := 0; i < 400; i++ {
			line := int64(rng.Intn(40))
			if tr.Record(line) != ref.record(line) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDistanceTrackerGrowth exercises the capacity-compaction path.
func TestDistanceTrackerGrowth(t *testing.T) {
	tr := NewDistanceTracker()
	ref := &naiveDistance{}
	rng := rand.New(rand.NewSource(3))
	// More accesses than the initial 1024-capacity tree.
	for i := 0; i < 5000; i++ {
		line := int64(rng.Intn(64))
		got, want := tr.Record(line), ref.record(line)
		if got != want {
			t.Fatalf("access %d: got %d, want %d", i, got, want)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Add(Cold)
	h.Add(0)
	h.Add(1)
	h.Add(2)
	h.Add(3)
	h.Add(8)
	if h.Total != 6 || h.ColdN != 1 || h.Reuses() != 5 {
		t.Fatalf("histogram totals %+v", h)
	}
	if h.Buckets[0] != 1 { // distance 0
		t.Fatalf("bucket0 %d", h.Buckets[0])
	}
	if h.Buckets[1] != 1 { // distance 1
		t.Fatalf("bucket1 %d", h.Buckets[1])
	}
	if h.Buckets[2] != 2 { // distances 2,3
		t.Fatalf("bucket2 %d", h.Buckets[2])
	}
}

func TestFracBeyond(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Add(0) // fits any cache
	}
	for i := 0; i < 10; i++ {
		h.Add(64) // beyond a 4-line set
	}
	got := h.FracBeyond(4)
	if got < 0.45 || got > 0.55 {
		t.Fatalf("FracBeyond(4) = %v, want ~0.5", got)
	}
	if h.FracBeyond(1<<30) != 0 {
		t.Fatal("nothing should be beyond a huge cache")
	}
	var empty Histogram
	if empty.FracBeyond(4) != 0 {
		t.Fatal("empty histogram FracBeyond")
	}
}

// TestFracBeyondMonotone: larger caches never increase the beyond
// fraction.
func TestFracBeyondMonotone(t *testing.T) {
	f := func(ds []uint16) bool {
		var h Histogram
		for _, d := range ds {
			h.Add(int64(d % 512))
		}
		prev := 1.1
		for limit := int64(1); limit <= 1024; limit *= 2 {
			cur := h.FracBeyond(limit)
			if cur > prev+1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProfilerPerWarpAndPerPC(t *testing.T) {
	p := NewProfiler(4, 128, 8, 64)
	// Warp 1 streams (no reuse); warp 2 re-references one line.
	for i := int64(0); i < 10; i++ {
		p.Record(cache.Request{Addr: i * 128, Warp: 1, PC: 10}, false)
	}
	const fresh = 4096 * 128 // line untouched by warp 1
	p.Record(cache.Request{Addr: fresh, Warp: 2, PC: 20, Critical: true}, true)
	p.Record(cache.Request{Addr: fresh, Warp: 2, PC: 20, Critical: true}, true)

	if h := p.ByWarp[1]; h == nil || h.Reuses() != 0 || h.ColdN != 10 {
		t.Fatalf("warp1 histogram %+v", h)
	}
	if h := p.ByWarp[2]; h == nil || h.Reuses() != 1 || h.ColdN != 1 {
		t.Fatalf("warp2 histogram %+v", h)
	}
	st := p.ByPC[20]
	if st == nil || st.Accesses != 2 || st.CriticalReuses != 1 {
		t.Fatalf("PC 20 stats %+v", st)
	}
	if st10 := p.ByPC[10]; st10.Cold != 10 {
		t.Fatalf("PC 10 cold %d", st10.Cold)
	}
	if got := p.WarpFracBeyond([]int{1, 2}, 4); got != 0 {
		t.Fatalf("pooled beyond = %v (the only reuse is at distance 0)", got)
	}
}

func TestProfilerPerSetDistances(t *testing.T) {
	p := NewProfiler(2, 128, 8, 64)
	// Lines 0 and 2 map to set 0; line 1 maps to set 1. Accessing
	// 0,1,0: the second access to 0 has per-set distance 1 (line 2
	// intervened in the same set) but would be 2 globally.
	p.Record(cache.Request{Addr: 0 * 128, Warp: 0}, false)
	p.Record(cache.Request{Addr: 2 * 128, Warp: 0}, false)
	p.Record(cache.Request{Addr: 1 * 128, Warp: 0}, false)
	p.Record(cache.Request{Addr: 0 * 128, Warp: 0}, false)
	h := p.ByWarp[0]
	if h.Reuses() != 1 {
		t.Fatalf("reuses %d", h.Reuses())
	}
	if h.Buckets[1] != 1 { // distance exactly 1
		t.Fatalf("expected per-set distance 1, histogram %+v", h)
	}
}
