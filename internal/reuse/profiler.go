package reuse

import (
	"cawa/internal/cache"
)

// PCStat summarizes reuse behaviour of the lines inserted by one memory
// instruction (Figure 8).
type PCStat struct {
	Accesses uint64
	Cold     uint64
	// ReuseWithin counts reuses whose fully-associative stack distance
	// fits a cache of the given capacity in lines.
	ReuseWithinSmall uint64 // e.g. 16KB = 128 lines
	ReuseWithinLarge uint64 // e.g. 256KB = 2048 lines
	// CriticalReuses counts reuses issued by predicted-critical warps.
	CriticalReuses uint64
}

// Profiler consumes an L1 access stream (via memsys.L1D.AccessListener)
// and computes:
//   - per-warp, per-set stack-distance histograms at a configurable
//     geometry (Figure 3 uses 16KB 4-way: 32 sets, limit 4);
//   - per-PC reuse statistics against small/large capacities (Figure 8).
type Profiler struct {
	lineBytes  int64
	sets       int64
	smallLines int64
	largeLines int64

	perSet []*DistanceTracker
	global *DistanceTracker
	ByWarp map[int]*Histogram
	ByPC   map[int32]*PCStat
	All    Histogram
	Crit   Histogram // accesses from predicted-critical warps
}

// NewProfiler builds a profiler. sets and lineBytes describe the
// per-set geometry for the histograms; smallLines/largeLines are the
// capacities (in lines) used for the per-PC reuse classification.
func NewProfiler(sets int, lineBytes int, smallLines, largeLines int) *Profiler {
	p := &Profiler{
		lineBytes:  int64(lineBytes),
		sets:       int64(sets),
		smallLines: int64(smallLines),
		largeLines: int64(largeLines),
		perSet:     make([]*DistanceTracker, sets),
		global:     NewDistanceTracker(),
		ByWarp:     make(map[int]*Histogram),
		ByPC:       make(map[int32]*PCStat),
	}
	for i := range p.perSet {
		p.perSet[i] = NewDistanceTracker()
	}
	return p
}

// Record consumes one access.
func (p *Profiler) Record(req cache.Request, _ bool) {
	line := req.Addr / p.lineBytes
	set := line % p.sets

	d := p.perSet[set].Record(line)
	p.All.Add(d)
	if req.Critical {
		p.Crit.Add(d)
	}
	h := p.ByWarp[req.Warp]
	if h == nil {
		h = &Histogram{}
		p.ByWarp[req.Warp] = h
	}
	h.Add(d)

	gd := p.global.Record(line)
	ps := p.ByPC[req.PC]
	if ps == nil {
		ps = &PCStat{}
		p.ByPC[req.PC] = ps
	}
	ps.Accesses++
	if gd == Cold {
		ps.Cold++
		return
	}
	if gd < p.smallLines {
		ps.ReuseWithinSmall++
	}
	if gd < p.largeLines {
		ps.ReuseWithinLarge++
	}
	if req.Critical {
		ps.CriticalReuses++
	}
}

// WarpFracBeyond returns, for the given warps, the pooled fraction of
// reuses whose per-set distance reaches or exceeds ways — the share of
// would-be reuses evicted first in a ways-associative cache (Figure 3's
// headline number for the critical warps).
func (p *Profiler) WarpFracBeyond(warps []int, ways int64) float64 {
	var pooled Histogram
	for _, w := range warps {
		h := p.ByWarp[w]
		if h == nil {
			continue
		}
		pooled.ColdN += h.ColdN
		pooled.Total += h.Total
		for i, v := range h.Buckets {
			pooled.Buckets[i] += v
		}
	}
	return pooled.FracBeyond(ways)
}
