// Package reuse computes cache-line reuse (stack) distances over L1
// access streams, supporting the paper's characterization figures:
// Figure 3 (reuse distance of critical-warp lines), Figure 8 (per-PC
// reuse behaviour under 16KB vs 256KB caches), and Figure 15
// (zero-reuse critical lines).
//
// Distances are computed with Olken's algorithm: a Fenwick tree over
// access timestamps counts the distinct lines touched since a line's
// previous access, giving O(log n) per access.
package reuse

import "sort"

// Cold marks a first-touch access (infinite reuse distance).
const Cold int64 = -1

// DistanceTracker computes exact LRU stack distances for a stream of
// line identifiers.
type DistanceTracker struct {
	fenwick []int64
	last    map[int64]int
	time    int
}

// NewDistanceTracker returns an empty tracker.
func NewDistanceTracker() *DistanceTracker {
	return &DistanceTracker{
		fenwick: make([]int64, 1024),
		last:    make(map[int64]int),
	}
}

func (t *DistanceTracker) add(i int, v int64) {
	for i++; i <= len(t.fenwick); i += i & (-i) {
		t.fenwick[i-1] += v
	}
}

func (t *DistanceTracker) sum(i int) int64 {
	var s int64
	for i++; i > 0; i -= i & (-i) {
		s += t.fenwick[i-1]
	}
	return s
}

// Record registers an access to line and returns the LRU stack distance
// since its previous access: 0 means an immediate re-reference with no
// distinct intervening lines; Cold means first touch.
func (t *DistanceTracker) Record(line int64) int64 {
	if t.time >= len(t.fenwick) {
		t.grow()
	}
	dist := Cold
	if prev, seen := t.last[line]; seen {
		// Distinct lines touched strictly after prev and before now.
		dist = t.sum(t.time-1) - t.sum(prev)
		t.add(prev, -1)
	}
	t.add(t.time, 1)
	t.last[line] = t.time
	t.time++
	return dist
}

// UniqueLines returns the number of distinct lines seen.
func (t *DistanceTracker) UniqueLines() int { return len(t.last) }

// grow doubles the timestamp capacity, compacting live stamps so the
// tree stays proportional to the stream length.
func (t *DistanceTracker) grow() {
	// Compact: renumber live lines by their stamp order.
	type pair struct {
		line  int64
		stamp int
	}
	live := make([]pair, 0, len(t.last))
	for l, s := range t.last {
		live = append(live, pair{l, s})
	}
	sort.Slice(live, func(i, j int) bool { return live[i].stamp < live[j].stamp })
	size := 2 * (len(live) + 1024)
	t.fenwick = make([]int64, size)
	t.time = 0
	for _, p := range live {
		t.add(t.time, 1)
		t.last[p.line] = t.time
		t.time++
	}
}

// Histogram buckets distances by powers of two: bucket i holds
// distances in [2^(i-1), 2^i) with bucket 0 = {0}; the last bucket
// accumulates everything larger, and Cold counts separately.
type Histogram struct {
	Buckets [22]uint64
	ColdN   uint64
	Total   uint64
}

// Add records one distance.
func (h *Histogram) Add(d int64) {
	h.Total++
	if d == Cold {
		h.ColdN++
		return
	}
	b := 0
	for d > 0 && b < len(h.Buckets)-1 {
		d >>= 1
		b++
	}
	h.Buckets[b]++
}

// Reuses returns the number of non-cold accesses.
func (h *Histogram) Reuses() uint64 { return h.Total - h.ColdN }

// FracBeyond returns the fraction of reuses whose distance is >= limit
// — i.e. re-references an LRU cache holding limit lines (per set, or
// fully-associative, depending on how distances were computed) would
// miss. This is the "evicted before re-reference" measure of Figure 3.
func (h *Histogram) FracBeyond(limit int64) float64 {
	reuses := h.Reuses()
	if reuses == 0 {
		return 0
	}
	var beyond uint64
	lo := int64(1)
	for b := 1; b < len(h.Buckets); b++ {
		hi := lo * 2 // bucket b covers [lo, hi)
		switch {
		case lo >= limit:
			beyond += h.Buckets[b]
		case hi > limit:
			// Partial bucket: apportion uniformly.
			frac := float64(hi-limit) / float64(hi-lo)
			beyond += uint64(float64(h.Buckets[b]) * frac)
		}
		lo = hi
	}
	if limit <= 0 {
		beyond = reuses
	}
	return float64(beyond) / float64(reuses)
}
