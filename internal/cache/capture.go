package cache

import "fmt"

// State is the serializable snapshot of a cache's tag/state array:
// every line (replacement and CACP training fields included), the
// logical LRU clock, and the access counters. The replacement policy
// itself is not part of the snapshot — the restoring side reconstructs
// the cache with the same policy and re-applies the line states, which
// is sufficient because every policy in this repository keeps its
// per-line state inside Line and its global state (CACP's predictor
// tables) in its own struct, captured separately by internal/core.
type State struct {
	Lines []Line // sets*ways lines, set-major
	Tick  uint64

	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Capture deep-copies the cache contents and counters.
func (c *Cache) Capture() State {
	st := State{
		Lines:     make([]Line, 0, c.cfg.Sets*c.cfg.Ways),
		Tick:      c.tick,
		Accesses:  c.Accesses,
		Hits:      c.Hits,
		Misses:    c.Misses,
		Evictions: c.Evictions,
	}
	for s := range c.sets {
		st.Lines = append(st.Lines, c.sets[s]...)
	}
	return st
}

// Restore overwrites the cache contents and counters from a snapshot.
// The geometry must match the cache it was captured from.
func (c *Cache) Restore(st State) error {
	if len(st.Lines) != c.cfg.Sets*c.cfg.Ways {
		return fmt.Errorf("cache: restore geometry mismatch (have %d lines, snapshot %d)",
			c.cfg.Sets*c.cfg.Ways, len(st.Lines))
	}
	for s := range c.sets {
		copy(c.sets[s], st.Lines[s*c.cfg.Ways:(s+1)*c.cfg.Ways])
	}
	c.tick = st.Tick
	c.Accesses = st.Accesses
	c.Hits = st.Hits
	c.Misses = st.Misses
	c.Evictions = st.Evictions
	return nil
}
