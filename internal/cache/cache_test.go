package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cawa/internal/config"
)

func smallCfg() config.CacheConfig {
	return config.CacheConfig{Sets: 4, Ways: 2, LineBytes: 128, MSHRs: 4, MSHRTargets: 4}
}

func TestBlockAndSetIndex(t *testing.T) {
	c := New(smallCfg(), LRU{})
	if got := c.BlockAddr(0x1234); got != 0x1200 {
		t.Fatalf("BlockAddr = %#x", got)
	}
	if got := c.SetIndex(0x1234); got != (0x1234>>7)&3 {
		t.Fatalf("SetIndex = %d", got)
	}
	// Same line -> same set regardless of offset within line.
	if c.SetIndex(0x1200) != c.SetIndex(0x127F) {
		t.Fatal("offsets within a line map to different sets")
	}
}

func TestNonPowerOfTwoSets(t *testing.T) {
	cfg := config.CacheConfig{Sets: 6, Ways: 2, LineBytes: 128}
	c := New(cfg, LRU{})
	for addr := int64(0); addr < 1<<16; addr += 128 {
		s := c.SetIndex(addr)
		if s < 0 || s >= 6 {
			t.Fatalf("set %d out of range for addr %#x", s, addr)
		}
	}
	// All sets reachable.
	seen := make(map[int]bool)
	for addr := int64(0); addr < 128*64; addr += 128 {
		seen[c.SetIndex(addr)] = true
	}
	if len(seen) != 6 {
		t.Fatalf("only %d sets reachable", len(seen))
	}
}

func TestHitMissFill(t *testing.T) {
	c := New(smallCfg(), LRU{})
	req := Request{Addr: 0x1000}
	if c.Access(req) {
		t.Fatal("hit in empty cache")
	}
	c.Fill(req)
	if !c.Access(req) {
		t.Fatal("miss after fill")
	}
	if c.Accesses != 2 || c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("counters: %d/%d/%d", c.Accesses, c.Hits, c.Misses)
	}
	if got := c.HitRate(); got != 0.5 {
		t.Fatalf("hit rate %v", got)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(smallCfg(), LRU{}) // 2 ways per set
	// Three lines in the same set: A, B, then touch A, fill C -> B evicted.
	lineA := int64(0 * 4 * 128)
	lineB := int64(1 * 4 * 128)
	lineC := int64(2 * 4 * 128)
	c.Fill(Request{Addr: lineA})
	c.Fill(Request{Addr: lineB})
	c.Access(Request{Addr: lineA}) // A now MRU
	ev := c.Fill(Request{Addr: lineC})
	if !ev.Valid || ev.Addr != lineB {
		t.Fatalf("evicted %#x (valid=%v), want %#x", ev.Addr, ev.Valid, lineB)
	}
	if !c.Access(Request{Addr: lineA}) || !c.Access(Request{Addr: lineC}) {
		t.Fatal("survivors missing")
	}
}

func TestDirtyEvictionCarriesState(t *testing.T) {
	c := New(smallCfg(), LRU{})
	c.Fill(Request{Addr: 0, Write: true})
	c.Fill(Request{Addr: 4 * 128})
	ev := c.Fill(Request{Addr: 8 * 128})
	if !ev.Valid || !ev.Dirty || ev.Addr != 0 {
		t.Fatalf("dirty eviction: %+v", ev)
	}
}

func TestRefsAndFillMetadata(t *testing.T) {
	c := New(smallCfg(), LRU{})
	c.Fill(Request{Addr: 0x80, Warp: 9, Critical: true})
	c.Access(Request{Addr: 0x80})
	c.Access(Request{Addr: 0x80})
	set, way, hit := c.Probe(0x80)
	if !hit {
		t.Fatal("probe missed")
	}
	l := c.Line(set, way)
	if l.Refs != 2 || l.FillWarp != 9 || !l.FillCritical {
		t.Fatalf("line metadata: %+v", l)
	}
}

func TestEvictListener(t *testing.T) {
	c := New(smallCfg(), LRU{})
	var got []int64
	c.EvictListener = func(ev *Eviction) { got = append(got, ev.Addr) }
	c.Fill(Request{Addr: 0})
	c.Fill(Request{Addr: 4 * 128})
	c.Fill(Request{Addr: 8 * 128}) // evicts line 0
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("listener saw %v", got)
	}
}

func TestSRRIPInsertPromoteEvict(t *testing.T) {
	c := New(smallCfg(), SRRIP{})
	c.Fill(Request{Addr: 0})
	set, way, _ := c.Probe(0)
	if got := c.Line(set, way).RRPV; got != RRPVLong {
		t.Fatalf("insert RRPV = %d, want %d", got, RRPVLong)
	}
	c.Access(Request{Addr: 0})
	if got := c.Line(set, way).RRPV; got != RRPVNear {
		t.Fatalf("promoted RRPV = %d, want %d", got, RRPVNear)
	}
	// Fill a second line; evicting a third time must pick the non-promoted one.
	c.Fill(Request{Addr: 4 * 128})
	ev := c.Fill(Request{Addr: 8 * 128})
	if !ev.Valid || ev.Addr != 4*128 {
		t.Fatalf("SRRIP evicted %#x, want %#x", ev.Addr, int64(4*128))
	}
}

func TestSRRIPVictimAmongRestriction(t *testing.T) {
	cfg := config.CacheConfig{Sets: 1, Ways: 4, LineBytes: 128}
	c := New(cfg, SRRIP{})
	for i := int64(0); i < 4; i++ {
		c.Fill(Request{Addr: i * 128})
	}
	// Promote everything, then restrict victims to ways {2,3}.
	for i := int64(0); i < 4; i++ {
		c.Access(Request{Addr: i * 128})
	}
	v := SRRIPVictimAmong(c, 0, []int{2, 3})
	if v != 2 && v != 3 {
		t.Fatalf("victim %d outside restriction", v)
	}
	// Ways 0,1 must not have been aged past max by the scan.
	for w := 0; w < 2; w++ {
		if c.Line(0, w).RRPV > RRPVMax {
			t.Fatalf("way %d RRPV overflow", w)
		}
	}
}

// lruRef is a straightforward reference model of a set-associative LRU
// cache for property testing.
type lruRef struct {
	ways int
	sets map[int][]int64 // MRU-first line addresses
}

func (r *lruRef) access(set int, line int64) bool {
	s := r.sets[set]
	for i, l := range s {
		if l == line {
			r.sets[set] = append([]int64{line}, append(append([]int64{}, s[:i]...), s[i+1:]...)...)
			return true
		}
	}
	if len(s) >= r.ways {
		s = s[:r.ways-1]
	}
	r.sets[set] = append([]int64{line}, s...)
	return false
}

// TestLRUMatchesReference drives the cache and a reference LRU model
// with the same random access stream; hit/miss sequences must agree.
func TestLRUMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := smallCfg()
		c := New(cfg, LRU{})
		ref := &lruRef{ways: cfg.Ways, sets: make(map[int][]int64)}
		for i := 0; i < 500; i++ {
			addr := int64(rng.Intn(24)) * 128 // 24 lines over 4 sets
			req := Request{Addr: addr}
			got := c.Access(req)
			if !got {
				c.Fill(req)
			}
			want := ref.access(c.SetIndex(addr), c.BlockAddr(addr))
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestCacheInvariants: after any access stream, no duplicate tags
// within a set and all valid lines map to their set.
func TestCacheInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(smallCfg(), SRRIP{})
		for i := 0; i < 300; i++ {
			addr := int64(rng.Intn(64)) * 128
			req := Request{Addr: addr, Write: rng.Intn(4) == 0}
			if !c.Access(req) {
				c.Fill(req)
			}
		}
		for s := 0; s < c.Sets(); s++ {
			seen := make(map[int64]bool)
			for w := 0; w < c.Ways(); w++ {
				l := c.Line(s, w)
				if !l.Valid {
					continue
				}
				if seen[l.Tag] {
					return false // duplicate line in set
				}
				seen[l.Tag] = true
				if c.SetIndex(l.Tag) != s {
					return false // line in wrong set
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidateAllAndResetStats(t *testing.T) {
	c := New(smallCfg(), LRU{})
	c.Fill(Request{Addr: 0})
	c.Access(Request{Addr: 0})
	c.InvalidateAll()
	if c.Access(Request{Addr: 0}) {
		t.Fatal("hit after invalidate")
	}
	c.ResetStats()
	if c.Accesses != 0 || c.Hits != 0 || c.Misses != 0 || c.Evictions != 0 {
		t.Fatal("stats not reset")
	}
}

func TestBadPolicyVictimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := New(smallCfg(), badPolicy{})
	c.Fill(Request{Addr: 0})
	c.Fill(Request{Addr: 4 * 128})
	c.Fill(Request{Addr: 8 * 128}) // needs a victim; policy returns -7
}

type badPolicy struct{}

func (badPolicy) Name() string                        { return "bad" }
func (badPolicy) OnFill(*Cache, int, int, Request)    {}
func (badPolicy) OnHit(*Cache, int, int, Request)     {}
func (badPolicy) Victim(*Cache, int, Request) int     { return -7 }
func (badPolicy) OnEvict(*Cache, int, int, *Eviction) {}
