package cache

// LRU is the least-recently-used replacement policy, used by the
// baseline L1 data cache and the L2.
type LRU struct{}

// Name implements Policy.
func (LRU) Name() string { return "LRU" }

// OnFill implements Policy.
func (LRU) OnFill(c *Cache, set, way int, _ Request) {
	c.Line(set, way).LRU = c.NextTick()
}

// OnHit implements Policy.
func (LRU) OnHit(c *Cache, set, way int, _ Request) {
	c.Line(set, way).LRU = c.NextTick()
}

// Victim implements Policy: the valid line with the oldest stamp.
func (LRU) Victim(c *Cache, set int, _ Request) int {
	lines := c.Set(set)
	victim, oldest := 0, ^uint64(0)
	for w := range lines {
		if lines[w].LRU < oldest {
			victim, oldest = w, lines[w].LRU
		}
	}
	return victim
}

// OnEvict implements Policy.
func (LRU) OnEvict(*Cache, int, int, *Eviction) {}

// RRPV constants for the 2-bit SRRIP policy family (Jaleel et al.,
// ISCA'10), which the paper's modified SHiP predictor steers.
const (
	RRPVMax      uint8 = 3 // distant re-reference
	RRPVLong     uint8 = 2 // long re-reference
	RRPVNear     uint8 = 0 // near-immediate re-reference (promotion)
	RRPVInterval       = RRPVMax
)

// SRRIP is static re-reference interval prediction with hit-promotion to
// RRPV 0 and insertion at "long" (RRPV 2).
type SRRIP struct{}

// Name implements Policy.
func (SRRIP) Name() string { return "SRRIP" }

// OnFill implements Policy.
func (SRRIP) OnFill(c *Cache, set, way int, _ Request) {
	c.Line(set, way).RRPV = RRPVLong
}

// OnHit implements Policy.
func (SRRIP) OnHit(c *Cache, set, way int, _ Request) {
	c.Line(set, way).RRPV = RRPVNear
}

// Victim implements Policy: find a line with RRPV==max, aging the whole
// set until one appears.
func (SRRIP) Victim(c *Cache, set int, _ Request) int {
	return SRRIPVictimAmong(c, set, nil)
}

// OnEvict implements Policy.
func (SRRIP) OnEvict(*Cache, int, int, *Eviction) {}

// LRUVictimAmong picks the least-recently-used valid line restricted to
// the given ways (nil means all ways), for partitioned LRU policies.
func LRUVictimAmong(c *Cache, set int, ways []int) int {
	lines := c.Set(set)
	if ways == nil {
		return LRU{}.Victim(c, set, Request{})
	}
	victim, oldest := ways[0], ^uint64(0)
	for _, w := range ways {
		if lines[w].LRU < oldest {
			victim, oldest = w, lines[w].LRU
		}
	}
	return victim
}

// SRRIPVictimAmong runs the SRRIP victim scan restricted to the given
// ways (nil means all ways). It is exported for partitioned policies
// (the paper's CACP restricts replacement to the critical or the
// non-critical partition).
func SRRIPVictimAmong(c *Cache, set int, ways []int) int {
	lines := c.Set(set)
	if ways == nil {
		// Unrestricted scan: iterate the set directly rather than
		// materializing an index slice — this runs on the per-fill hot
		// path, which must not allocate.
		for {
			for w := range lines {
				if lines[w].RRPV >= RRPVMax {
					return w
				}
			}
			for w := range lines {
				if lines[w].RRPV < RRPVMax {
					lines[w].RRPV++
				}
			}
		}
	}
	for {
		for _, w := range ways {
			if lines[w].RRPV >= RRPVMax {
				return w
			}
		}
		for _, w := range ways {
			if lines[w].RRPV < RRPVMax {
				lines[w].RRPV++
			}
		}
	}
}
