// Package cache models set-associative caches with pluggable replacement
// policies. It provides the tag/state arrays and the LRU and SRRIP
// policies used by the baseline L1/L2 caches; the paper's
// criticality-aware prioritization (CACP) is a policy implemented in
// internal/core on top of the hooks exposed here (per-line user state,
// policy-chosen victims, eviction callbacks).
package cache

import (
	"fmt"
	"math/bits"

	"cawa/internal/config"
)

// Request carries the information replacement policies may condition on.
type Request struct {
	// Addr is the byte address of the access (any byte within the line).
	Addr int64
	// PC is the instruction address that issued the access.
	PC int32
	// Warp is a global warp identifier, for per-warp statistics.
	Warp int
	// Critical marks requests issued by a predicted-critical warp.
	Critical bool
	// Write marks stores.
	Write bool
}

// Line is one cache line's state. Policies may read and write the
// replacement fields (RRPV, LRU) and the CACP training fields
// (Sig, CReuse, NCReuse, InCritical).
type Line struct {
	Valid bool
	Dirty bool
	Tag   int64

	// Replacement state.
	RRPV uint8  // re-reference prediction value (SRRIP family)
	LRU  uint64 // global timestamp of last touch (LRU family)

	// CACP training state (Algorithm 4 of the paper).
	Sig        uint16 // fill signature: PC xor address region
	CReuse     bool   // line was reused by a critical warp
	NCReuse    bool   // line was reused by a non-critical warp
	InCritical bool   // line resides in the critical partition
	FillPC     int32  // PC of the instruction that filled the line

	// Statistics.
	Refs         uint32 // hits received since fill
	FillWarp     int32  // global warp id that filled the line
	FillCritical bool   // filling warp was predicted critical
}

// Eviction describes a line displaced by a fill.
type Eviction struct {
	// Valid is false when the fill used an invalid (empty) way.
	Valid bool
	// Addr is the base address of the evicted line.
	Addr int64
	// Dirty reports whether the evicted line held unwritten-back data.
	Dirty bool
	// Line is a copy of the evicted line's state, for policy training.
	Line Line
}

// Policy decides victim selection and maintains per-line replacement
// state. Implementations receive the owning cache so they can inspect
// whole sets.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// OnFill initializes replacement state of a just-filled line.
	OnFill(c *Cache, set, way int, req Request)
	// OnHit updates replacement state when a line is re-referenced.
	OnHit(c *Cache, set, way int, req Request)
	// Victim selects the way to replace in the set for req. Invalid ways
	// are handled by the cache before Victim is consulted.
	Victim(c *Cache, set int, req Request) int
	// OnEvict observes a line leaving the cache, for predictor training.
	OnEvict(c *Cache, set, way int, ev *Eviction)
}

// WayChooser is an optional Policy extension that takes over the whole
// fill-way decision, including the use of invalid ways. Partitioned
// policies (CACP) implement it so that fills stay inside the partition
// the request was predicted into.
type WayChooser interface {
	// FillWay returns the way the line for req must be installed in.
	// If that way currently holds a valid line, the cache evicts it.
	FillWay(c *Cache, set int, req Request) int
}

// Cache is a set-associative tag/state array. It has no notion of
// latency or miss handling; internal/memsys drives it.
type Cache struct {
	cfg      config.CacheConfig
	policy   Policy
	sets     [][]Line
	setShift uint
	setMask  int64 // power-of-two fast path; -1 when sets is not 2^k
	nSets    int64
	tick     uint64 // logical time for LRU stamps

	// EvictListener, when non-nil, observes every eviction after the
	// policy's OnEvict hook. Used for reuse statistics (Figures 3, 15).
	EvictListener func(*Eviction)

	// Statistics.
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// New builds a cache with the given geometry and replacement policy.
func New(cfg config.CacheConfig, policy Policy) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("cache: %v", err))
	}
	sets := make([][]Line, cfg.Sets)
	lines := make([]Line, cfg.Sets*cfg.Ways)
	for i := range sets {
		sets[i], lines = lines[:cfg.Ways:cfg.Ways], lines[cfg.Ways:]
	}
	mask := int64(-1)
	if cfg.Sets&(cfg.Sets-1) == 0 {
		mask = int64(cfg.Sets - 1)
	}
	return &Cache{
		cfg:      cfg,
		policy:   policy,
		sets:     sets,
		setShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:  mask,
		nSets:    int64(cfg.Sets),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() config.CacheConfig { return c.cfg }

// Policy returns the replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.cfg.Ways }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.cfg.Sets }

// BlockAddr returns the line base address containing addr.
func (c *Cache) BlockAddr(addr int64) int64 {
	return addr &^ (int64(c.cfg.LineBytes) - 1)
}

// SetIndex returns the set addr maps to.
func (c *Cache) SetIndex(addr int64) int {
	if c.setMask >= 0 {
		return int((addr >> c.setShift) & c.setMask)
	}
	return int((addr >> c.setShift) % c.nSets)
}

// Set exposes a set's lines to policies.
func (c *Cache) Set(set int) []Line { return c.sets[set] }

// Line returns a pointer to the line at (set, way) for policy updates.
func (c *Cache) Line(set, way int) *Line { return &c.sets[set][way] }

// NextTick advances and returns the logical LRU clock.
func (c *Cache) NextTick() uint64 {
	c.tick++
	return c.tick
}

// Probe looks the address up without updating any state.
func (c *Cache) Probe(addr int64) (set, way int, hit bool) {
	tag := c.BlockAddr(addr)
	set = c.SetIndex(addr)
	for w := range c.sets[set] {
		if l := &c.sets[set][w]; l.Valid && l.Tag == tag {
			return set, w, true
		}
	}
	return set, -1, false
}

// Access performs a full lookup: on hit it applies policy hit-updates and
// returns hit=true; on miss it only counts the miss (the caller is
// responsible for fetching the line and calling Fill).
func (c *Cache) Access(req Request) (hit bool) {
	c.Accesses++
	set, way, ok := c.Probe(req.Addr)
	if !ok {
		c.Misses++
		return false
	}
	c.Hits++
	l := &c.sets[set][way]
	l.Refs++
	if req.Write {
		l.Dirty = true
	}
	c.policy.OnHit(c, set, way, req)
	return true
}

// Fill installs the line for req, evicting if needed, and returns the
// eviction record (Valid=false if an empty way was used). Fill must only
// be called when the line is absent.
func (c *Cache) Fill(req Request) Eviction {
	tag := c.BlockAddr(req.Addr)
	set := c.SetIndex(req.Addr)
	way := -1
	if wc, ok := c.policy.(WayChooser); ok {
		way = wc.FillWay(c, set, req)
	} else {
		for w := range c.sets[set] {
			if !c.sets[set][w].Valid {
				way = w
				break
			}
		}
	}
	var ev Eviction
	if way < 0 {
		way = c.policy.Victim(c, set, req)
	}
	if way < 0 || way >= c.cfg.Ways {
		panic(fmt.Sprintf("cache: policy %s returned invalid victim way %d", c.policy.Name(), way))
	}
	if old := c.sets[set][way]; old.Valid {
		ev = Eviction{Valid: true, Addr: old.Tag, Dirty: old.Dirty, Line: old}
		c.Evictions++
		c.policy.OnEvict(c, set, way, &ev)
		if c.EvictListener != nil {
			c.EvictListener(&ev)
		}
	}
	c.sets[set][way] = Line{
		Valid:        true,
		Tag:          tag,
		Dirty:        req.Write,
		FillWarp:     int32(req.Warp),
		FillCritical: req.Critical,
	}
	c.policy.OnFill(c, set, way, req)
	return ev
}

// InvalidateAll clears the cache contents (used between kernel launches
// in tests; real runs keep caches warm).
func (c *Cache) InvalidateAll() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w] = Line{}
		}
	}
}

// ResetStats zeroes the access counters.
func (c *Cache) ResetStats() {
	c.Accesses, c.Hits, c.Misses, c.Evictions = 0, 0, 0, 0
}

// HitRate returns hits/accesses (0 for an untouched cache).
func (c *Cache) HitRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Accesses)
}
