// Package memsys models the timing side of the GPU memory hierarchy:
// per-SM L1 data caches with MSHRs, a banked shared L2, and DRAM
// channels. Latencies and bandwidths follow Table 1 of the paper (120
// cycle minimum L2 round trip, 220 cycle minimum DRAM round trip).
//
// The functional side (actual data values) lives in internal/memory;
// memsys only decides *when* a request completes and maintains cache
// tag state for hit/miss and replacement decisions.
package memsys

import (
	"fmt"

	"cawa/internal/cache"
	"cawa/internal/config"
)

// Outcome classifies one L1 access attempt.
type Outcome int

// Access outcomes.
const (
	// Hit completes after the L1 hit latency.
	Hit Outcome = iota
	// Miss was accepted: an MSHR entry was allocated or merged; the
	// fill handler fires when data returns.
	Miss
	// Reject means the access could not be accepted this cycle (MSHR
	// full or merge list full) and must be retried.
	Reject
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Reject:
		return "reject"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// FillHandler receives completed L1 miss fills: the line address and the
// tokens of all loads merged onto the miss.
type FillHandler func(lineAddr int64, tokens []int64)

type eventKind uint8

const (
	evL2Arrive eventKind = iota
	evDRAMDone
	evL1Fill
)

type event struct {
	time int64
	seq  uint64 // tie-break for determinism
	kind eventKind
	addr int64 // line address
	l1   *L1D
	req  cache.Request
}

// eventHeap is a hand-rolled binary min-heap ordered by (time, seq).
// container/heap would box every event into an interface value on Push
// and Pop — one allocation per memory-system event — so the sift
// operations are written out here and the backing array is recycled.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		c := l
		if r := l + 1; r < n && h.less(r, l) {
			c = r
		}
		if !h.less(c, i) {
			return
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e) //cawalint:alloc-ok amortized growth of the event heap's backing array
	h.up(len(*h) - 1)
}

// popMin removes and returns the earliest event. The caller must have
// checked the heap is non-empty.
func (h *eventHeap) popMin() event {
	old := *h
	e := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = event{} // drop the stale L1D pointer
	*h = old[:n]
	if n > 0 {
		old[:n].down(0)
	}
	return e
}

type mshrEntry struct {
	req    cache.Request
	tokens []int64
}

type l2Waiter struct {
	l1  *L1D
	req cache.Request
}

// System is the shared part of the memory hierarchy: L2 banks and DRAM
// channels, plus the event machinery that delivers responses to L1s.
type System struct {
	cfg config.Config

	l2     *cache.Cache
	l2mshr map[int64][]l2Waiter
	// waiterPool recycles the per-miss waiter slices: dramDone returns
	// each drained slice here and l2Arrive reuses one on the next miss,
	// so steady-state L2 misses allocate nothing (the same discipline
	// the L1 mshrEntry free list follows).
	waiterPool [][]l2Waiter
	bankFree   []int64
	chanFree   []int64

	events eventHeap
	seq    uint64
	// internals mirrors the pending non-fill event times so SafeHorizon
	// can bound the earliest fill a pending internal event could
	// schedule in O(1) (see horizon.go).
	internals timeHeap

	icntLat int64 // one-way interconnect latency SM <-> L2

	// Stats.
	L2Reads    uint64
	L2Writes   uint64
	DRAMReads  uint64
	DRAMWrites uint64

	// FillsDelivered counts L1 fills that completed an outstanding miss
	// (stale fills excluded). The event-driven cycle engine compares it
	// across a Cycle call to learn whether any SM scoreboard may have
	// changed — every other event kind is internal to the memory system.
	FillsDelivered uint64
}

// New builds the shared memory system for the given configuration.
func New(cfg config.Config) *System {
	s := &System{
		cfg:      cfg,
		l2:       cache.New(cfg.L2, cache.LRU{}),
		l2mshr:   make(map[int64][]l2Waiter),
		bankFree: make([]int64, cfg.L2Banks),
		chanFree: make([]int64, cfg.DRAMChannels),
		icntLat:  int64(cfg.L2Latency) / 3,
	}
	if s.icntLat < 1 {
		s.icntLat = 1
	}
	return s
}

// L2 exposes the L2 cache for statistics.
func (s *System) L2() *cache.Cache { return s.l2 }

func (s *System) schedule(t int64, kind eventKind, addr int64, l1 *L1D, req cache.Request) {
	s.seq++
	s.events.push(event{time: t, seq: s.seq, kind: kind, addr: addr, l1: l1, req: req})
	if kind != evL1Fill {
		s.internals.push(t)
	}
}

// Cycle processes all memory-system events due at or before now.
func (s *System) Cycle(now int64) {
	for len(s.events) > 0 && s.events[0].time <= now {
		e := s.events.popMin()
		switch e.kind {
		case evL2Arrive:
			s.internals.popMin()
			s.l2Arrive(e)
		case evDRAMDone:
			s.internals.popMin()
			s.dramDone(e)
		case evL1Fill:
			// A fill a lookahead span already delivered (spanfill.go)
			// carries a record of its deferred System-side effects;
			// apply those at exactly this pop position. Everything else
			// is a full delivery.
			if rec, ok := e.l1.takeSpanFill(e.time, e.addr); ok {
				s.commitSpanFill(e.l1, rec)
			} else {
				e.l1.handleFill(e.addr, e.time)
			}
		}
	}
}

// Drained reports whether no memory events remain in flight.
func (s *System) Drained() bool { return len(s.events) == 0 }

// NextEventTime returns the time of the earliest pending event, or -1.
func (s *System) NextEventTime() int64 {
	if len(s.events) == 0 {
		return -1
	}
	return s.events[0].time
}

func (s *System) bankOf(addr int64) int {
	return int((addr / int64(s.cfg.L2.LineBytes)) % int64(s.cfg.L2Banks))
}

func (s *System) chanOf(addr int64) int {
	return int((addr / int64(s.cfg.L2.LineBytes)) % int64(s.cfg.DRAMChannels))
}

// l2Arrive services a request at its L2 bank.
func (s *System) l2Arrive(e event) {
	const bankOccupancy = 2
	bank := s.bankOf(e.addr)
	start := e.time
	if s.bankFree[bank] > start {
		start = s.bankFree[bank]
	}
	s.bankFree[bank] = start + bankOccupancy

	if e.req.Write {
		s.L2Writes++
		// Write-no-allocate at L2: update on hit, forward to DRAM on miss.
		if !s.l2.Access(e.req) {
			s.dramWrite(e.addr, start)
		}
		return
	}

	s.L2Reads++
	if s.l2.Access(e.req) {
		// L2 hit: response travels back; total minimum latency from the
		// original miss equals cfg.L2Latency.
		respAt := start + int64(s.cfg.L2Latency) - s.icntLat
		s.schedule(respAt, evL1Fill, e.addr, e.l1, e.req)
		return
	}

	// L2 miss: merge into the L2 MSHR or start a DRAM read.
	if waiters, ok := s.l2mshr[e.addr]; ok {
		s.l2mshr[e.addr] = append(waiters, l2Waiter{e.l1, e.req}) //cawalint:alloc-ok amortized growth of a pooled waiter slice
		return
	}
	s.l2mshr[e.addr] = append(s.takeWaiters(), l2Waiter{e.l1, e.req}) //cawalint:alloc-ok first miss per pool slot; recycled by dramDone thereafter
	ch := s.chanOf(e.addr)
	dramStart := start
	if s.chanFree[ch] > dramStart {
		dramStart = s.chanFree[ch]
	}
	s.chanFree[ch] = dramStart + int64(s.cfg.DRAMBandwidth)
	s.DRAMReads++
	done := dramStart + int64(s.cfg.DRAMLatency) - int64(s.cfg.L2Latency)
	if done < dramStart+1 {
		done = dramStart + 1
	}
	s.schedule(done, evDRAMDone, e.addr, e.l1, e.req)
}

func (s *System) dramWrite(addr int64, t int64) {
	ch := s.chanOf(addr)
	start := t
	if s.chanFree[ch] > start {
		start = s.chanFree[ch]
	}
	s.chanFree[ch] = start + int64(s.cfg.DRAMBandwidth)
	s.DRAMWrites++
}

// dramDone fills the L2 and fans responses out to all merged L1 waiters.
func (s *System) dramDone(e event) {
	ev := s.l2.Fill(e.req)
	if ev.Valid && ev.Dirty {
		s.dramWrite(ev.Addr, e.time)
	}
	waiters := s.l2mshr[e.addr]
	delete(s.l2mshr, e.addr)
	respAt := e.time + int64(s.cfg.L2Latency) - s.icntLat
	for _, w := range waiters {
		s.schedule(respAt, evL1Fill, e.addr, w.l1, w.req)
	}
	s.putWaiters(waiters)
}

// takeWaiters pops a recycled waiter slice (length 0, capacity warm)
// or returns nil, in which case the first append allocates once.
func (s *System) takeWaiters() []l2Waiter {
	if n := len(s.waiterPool); n > 0 {
		ws := s.waiterPool[n-1]
		s.waiterPool = s.waiterPool[:n-1]
		return ws
	}
	return nil
}

// putWaiters returns a drained waiter slice to the pool.
func (s *System) putWaiters(ws []l2Waiter) {
	if ws == nil {
		return
	}
	s.waiterPool = append(s.waiterPool, ws[:0]) //cawalint:alloc-ok amortized growth of the pool's own backing array
}

// L1D is one SM's L1 data cache with its MSHRs.
type L1D struct {
	sys    *System
	cache  *cache.Cache
	mshr   map[int64]*mshrEntry
	free   []*mshrEntry // retired MSHR entries, recycled with their token arrays
	fill   FillHandler
	cfgref config.CacheConfig
	stage  *StageBuffer // parallel-epoch staging; nil schedules directly

	// Lookahead span-fill state (spanfill.go): fills planned for
	// in-span delivery by the owning domain worker, and the records of
	// their deferred System-side effects the barrier replay consumes.
	plan     []plannedFill
	planHead int
	recs     []spanFill
	recHead  int

	// Stats.
	LoadAccesses  uint64
	StoreAccesses uint64
	LoadMisses    uint64
	StoreMisses   uint64
	Rejects       uint64

	// Per-warp access/hit counts for critical-warp hit-rate analysis
	// (Figure 14).
	WarpAccesses map[int32]uint64
	WarpHits     map[int32]uint64

	// AccessListener, when non-nil, observes every accepted access
	// (after hit/miss resolution but before timing). Reuse-distance
	// profilers tap the stream here.
	AccessListener func(req cache.Request, hit bool)
}

// NewL1D creates an L1 data cache attached to the shared system. The
// policy governs replacement (LRU baseline or the CACP policy); fill is
// invoked when outstanding misses complete.
func (s *System) NewL1D(policy cache.Policy, fill FillHandler) *L1D {
	l := &L1D{
		sys:          s,
		cache:        cache.New(s.cfg.L1D, policy),
		mshr:         make(map[int64]*mshrEntry),
		fill:         fill,
		cfgref:       s.cfg.L1D,
		WarpAccesses: make(map[int32]uint64),
		WarpHits:     make(map[int32]uint64),
	}
	return l
}

// Cache exposes the underlying tag array (statistics, policies).
func (l *L1D) Cache() *cache.Cache { return l.cache }

// AccessLoad attempts a load at time now. On Miss the token is recorded
// and will be passed to the fill handler when the line arrives.
func (l *L1D) AccessLoad(req cache.Request, token int64, now int64) Outcome {
	req.Write = false
	line := l.cache.BlockAddr(req.Addr)
	if _, _, hit := l.cache.Probe(req.Addr); hit {
		l.cache.Access(req)
		l.LoadAccesses++
		l.WarpAccesses[int32(req.Warp)]++
		l.WarpHits[int32(req.Warp)]++
		if l.AccessListener != nil {
			l.AccessListener(req, true)
		}
		return Hit
	}
	// Miss path: make sure it can be accepted before counting anything,
	// so that rejected-and-retried accesses are not double counted.
	if entry, ok := l.mshr[line]; ok {
		if len(entry.tokens) >= l.cfgref.MSHRTargets {
			l.Rejects++
			return Reject
		}
		l.cache.Access(req)
		l.LoadAccesses++
		l.WarpAccesses[int32(req.Warp)]++
		l.LoadMisses++
		entry.tokens = append(entry.tokens, token) //cawalint:alloc-ok amortized growth of the pooled MSHR entry's token buffer
		if l.AccessListener != nil {
			l.AccessListener(req, false)
		}
		return Miss
	}
	if len(l.mshr) >= l.cfgref.MSHRs {
		l.Rejects++
		return Reject
	}
	l.cache.Access(req)
	l.LoadAccesses++
	l.WarpAccesses[int32(req.Warp)]++
	l.LoadMisses++
	var entry *mshrEntry
	if n := len(l.free); n > 0 {
		entry = l.free[n-1]
		l.free = l.free[:n-1]
		entry.req = req
		entry.tokens = append(entry.tokens[:0], token) //cawalint:alloc-ok reuses the pooled entry's token buffer in place
	} else {
		entry = &mshrEntry{req: req, tokens: make([]int64, 1, 8)} //cawalint:alloc-ok one-time pool growth; entries recycle through the free list
		entry.tokens[0] = token
	}
	l.mshr[line] = entry
	l.emitL2(now, line, req)
	if l.AccessListener != nil {
		l.AccessListener(req, false)
	}
	return Miss
}

// AccessStore attempts a store at time now. Stores are write-back on hit
// and write-no-allocate on miss (forwarded to the L2). Stores never
// reject: a miss consumes interconnect bandwidth but needs no MSHR.
func (l *L1D) AccessStore(req cache.Request, now int64) Outcome {
	req.Write = true
	line := l.cache.BlockAddr(req.Addr)
	l.StoreAccesses++
	l.WarpAccesses[int32(req.Warp)]++
	if l.cache.Access(req) {
		l.WarpHits[int32(req.Warp)]++
		if l.AccessListener != nil {
			l.AccessListener(req, true)
		}
		return Hit
	}
	l.StoreMisses++
	l.emitL2(now, line, req)
	if l.AccessListener != nil {
		l.AccessListener(req, false)
	}
	return Miss
}

// handleFill completes an outstanding miss: installs the line and
// notifies the SM about every merged load.
func (l *L1D) handleFill(lineAddr int64, now int64) {
	entry, ok := l.mshr[lineAddr]
	if !ok {
		return // stale fill (e.g. store forwarding); nothing waits on it
	}
	delete(l.mshr, lineAddr)
	l.sys.FillsDelivered++
	ev := l.cache.Fill(entry.req)
	if ev.Valid && ev.Dirty {
		// Write the dirty victim back to L2 (bandwidth only). Scheduled
		// directly, never staged: handleFill only runs inside the
		// orchestrator's serial System.Cycle, and its sequence number
		// must precede the cycle's SM accesses (see stage.go).
		wb := cache.Request{Addr: ev.Addr, Write: true}
		l.sys.schedule(now+l.sys.icntLat, evL2Arrive, ev.Addr, l, wb)
	}
	if l.fill != nil {
		l.fill(lineAddr, entry.tokens)
	}
	// Fill handlers do not retain tokens, so the entry can be recycled.
	l.free = append(l.free, entry) //cawalint:alloc-ok amortized growth of the MSHR free list
}

// CanAccept reports whether a load touching the given (deduplicated)
// lines could be accepted right now: every missing line either merges
// into an existing MSHR entry with target room or fits a free MSHR.
func (l *L1D) CanAccept(lines []int64) bool {
	// Fast path: with no outstanding misses there is nothing to merge
	// into, so acceptance only needs free MSHR entries.
	if len(l.mshr) == 0 && len(lines) <= l.cfgref.MSHRs {
		return true
	}
	newEntries := 0
	for _, la := range lines {
		if _, _, hit := l.cache.Probe(la); hit {
			continue
		}
		if entry, ok := l.mshr[la]; ok {
			if len(entry.tokens) >= l.cfgref.MSHRTargets {
				return false
			}
			continue
		}
		newEntries++
	}
	return len(l.mshr)+newEntries <= l.cfgref.MSHRs
}

// MSHROccupancy returns the number of in-flight miss lines.
func (l *L1D) MSHROccupancy() int { return len(l.mshr) }

// MPKI returns L1D misses per thousand instructions, given the committed
// instruction count of the owning SM's warps.
func (l *L1D) MPKI(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(l.LoadMisses+l.StoreMisses) / float64(instructions) * 1000
}
