package memsys

// Safe-horizon support for the lookahead engine (internal/gpu
// lookahead.go): the parallel engine batches multiple cycles into one
// epoch when it can prove the span is safe to run without orchestrator
// intervention.
//
// A span is safe when every L1 fill that lands inside it is already
// pending in the event heap when the span is planned — those fills are
// extracted up front (PlanSpanFills) and delivered by the domain
// workers at their exact cycles (spanfill.go), so the only fills the
// plan must exclude are ones the span itself could *create*:
//
//  1. An access issued during the span (earliest: now+1) reaches its
//     L2 bank after the interconnect hop and can fill no earlier than
//     now + 1 + L2Latency — L2Latency is the minimum L1 round trip,
//     so this holds for the hit path, and the DRAM path is strictly
//     slower.
//  2. A pending internal event (L2 arrival, DRAM completion) at time
//     t can, when processed, schedule a fill no earlier than
//     t + L2Latency - icntLat: a DRAM completion fans its fills out
//     at exactly that offset, and an L2 arrival at t starts bank
//     service no earlier than t, responding at t + L2Latency - icntLat
//     at the soonest. Internal events that events of either kind
//     schedule in turn are strictly later, so the minimum over the
//     pending internal events bounds every transitively created fill.
//     (Dirty-victim writebacks are stores and never fill.)
//
// The internals heap mirrors the pending non-fill event times so bound
// 2 is O(1) to read. DESIGN.md ("Lookahead epochs") carries the full
// argument.

// timeHeap is a min-heap of event times. Times are pushed when their
// events are scheduled and popped when they are processed — and events
// are processed in global (time, seq) order, so the time being retired
// is always the heap minimum. The minimum is therefore exact, not an
// estimate, at every point between System.Cycle calls.
type timeHeap []int64

func (h timeHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func (h timeHeap) down(i int) {
	n := len(h)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && h[r] < h[c] {
			c = r
		}
		if h[i] <= h[c] {
			return
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}

func (h *timeHeap) push(t int64) {
	*h = append(*h, t) //cawalint:alloc-ok amortized growth of the horizon heap's backing array
	h.up(len(*h) - 1)
}

// popMin removes the earliest time. The caller must have checked the
// heap is non-empty.
func (h *timeHeap) popMin() {
	old := *h
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	if n > 0 {
		old[:n].down(0)
	}
}

// SafeHorizon returns the earliest future cycle at which a fill that
// is NOT already pending in the event heap could be delivered to an
// L1, given the state at cycle now with all events due <= now already
// processed. Cycles now+1 .. SafeHorizon(now)-1 are safe to run as one
// batched epoch once the already-pending fills have been extracted
// with PlanSpanFills for in-span delivery by the domain workers; the
// horizon cycle itself must be ticked normally.
func (s *System) SafeHorizon(now int64) int64 {
	h := now + 1 + int64(s.cfg.L2Latency)
	if len(s.internals) > 0 {
		if b := s.internals[0] + int64(s.cfg.L2Latency) - s.icntLat; b < h {
			h = b
		}
	}
	return h
}
