package memsys

import "cawa/internal/cache"

// The parallel engine's two-phase memory interface.
//
// Under the serial engine every L1 miss schedules its L2-arrive event
// directly, and the global sequence counter (System.seq) is advanced in
// the order the engine happens to step the SMs — SM 0's accesses of a
// cycle before SM 1's, and so on. That sequence order is the
// determinism linchpin: it tie-breaks same-cycle events in the heap,
// which decides L2 bank and DRAM channel contention, which decides
// every downstream latency.
//
// The parallel engine cannot let SM goroutines touch the shared event
// heap, so each SM *stages* its outbound requests into a private
// StageBuffer during an epoch, and the orchestrator commits the buffers
// in SM-id order at the epoch barrier. An SM stages its own requests in
// program order, and the commit walks SMs 0..N-1, so the sequence
// numbers assigned at commit are exactly the ones the serial engine
// would have assigned — the heaps evolve identically, bit for bit
// (verified by TestStagedCommitEquivalence and the harness
// engine-equivalence matrix).
//
// Each staged access carries the SM cycle that emitted it. One-cycle
// epochs drain whole buffers with Commit; the lookahead engine runs
// multi-cycle epochs and replays the barrier cycle by cycle, using
// CommitThrough to interleave each simulated cycle's accesses with the
// memory events due that cycle — reproducing the serial engine's
// cycle → SM-id → program order across the whole batched span.
//
// Only SM-originated accesses stage. Fill-side traffic — dirty-victim
// writebacks scheduled by handleFill — runs inside the orchestrator's
// serial System.Cycle, *before* the cycle's SM accesses, and must keep
// scheduling directly so its sequence numbers precede theirs just as
// they do under the serial engine.

// stagedAccess is one captured request. SMs only ever emit L2-arrive
// events (loads/stores leaving the L1), so the kind is implicit.
type stagedAccess struct {
	cycle int64 // SM cycle that emitted the access
	time  int64 // L2 arrival time (cycle + interconnect latency)
	addr  int64 // line address
	l1    *L1D
	req   cache.Request
}

// StageBuffer collects one SM domain's outbound memory-system requests
// during an epoch. It is owned by a single SM goroutine between
// barriers and drained by the orchestrator at the barrier; it needs no
// locking. Accesses are appended in cycle order (an SM's cycles run in
// sequence), so the committed prefix [0, head) is always the entries
// with the smallest cycle stamps.
type StageBuffer struct {
	pending []stagedAccess
	head    int // entries below head are committed, awaiting reset
}

// Len reports the number of staged, uncommitted accesses.
func (b *StageBuffer) Len() int { return len(b.pending) - b.head }

// reset drops the (fully committed) backlog, keeping capacity.
func (b *StageBuffer) reset() {
	for i := range b.pending {
		b.pending[i] = stagedAccess{} // drop the stale L1D pointer
	}
	b.pending = b.pending[:0]
	b.head = 0
}

// SetStaging installs buf as the L1D's staging buffer (nil restores
// direct scheduling). While staged, AccessLoad/AccessStore capture
// their outbound events instead of touching the shared event heap.
func (l *L1D) SetStaging(buf *StageBuffer) { l.stage = buf }

// Staged reports whether a staging buffer is installed (the L1 is part
// of a running parallel epoch).
func (l *L1D) Staged() bool { return l.stage != nil }

// emitL2 sends one L2-arrive request emitted at SM cycle now: staged
// when a buffer is installed (parallel epoch), scheduled directly
// otherwise. The event lands at the L2 one interconnect hop later.
func (l *L1D) emitL2(now int64, addr int64, req cache.Request) {
	t := now + l.sys.icntLat
	if l.stage != nil {
		l.stage.pending = append(l.stage.pending, stagedAccess{cycle: now, time: t, addr: addr, l1: l, req: req}) //cawalint:alloc-ok amortized growth of the reused epoch stage buffer
		return
	}
	l.sys.schedule(t, evL2Arrive, addr, l, req)
}

// Commit replays buf's staged accesses into the event system in
// capture order, assigning sequence numbers exactly as the serial
// engine would have, and empties the buffer. The caller must commit
// the per-SM buffers in SM-id order.
func (s *System) Commit(buf *StageBuffer) {
	for i := buf.head; i < len(buf.pending); i++ {
		a := &buf.pending[i]
		s.schedule(a.time, evL2Arrive, a.addr, a.l1, a.req)
	}
	buf.reset()
}

// CommitThrough replays the staged accesses emitted at SM cycles <= c
// and leaves later ones pending. The lookahead engine's barrier replay
// walks the batched span cycle by cycle, calling System.Cycle(t) and
// then CommitThrough(buf, t) per SM in id order, so sequence numbers
// interleave with event processing exactly as under the serial engine.
// Once the buffer drains completely its storage is reset for reuse.
func (s *System) CommitThrough(buf *StageBuffer, c int64) {
	for buf.head < len(buf.pending) {
		a := &buf.pending[buf.head]
		if a.cycle > c {
			return
		}
		s.schedule(a.time, evL2Arrive, a.addr, a.l1, a.req)
		buf.head++
	}
	buf.reset()
}
