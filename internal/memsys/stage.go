package memsys

import "cawa/internal/cache"

// The parallel engine's two-phase memory interface.
//
// Under the serial engine every L1 miss schedules its L2-arrive event
// directly, and the global sequence counter (System.seq) is advanced in
// the order the engine happens to step the SMs — SM 0's accesses of a
// cycle before SM 1's, and so on. That sequence order is the
// determinism linchpin: it tie-breaks same-cycle events in the heap,
// which decides L2 bank and DRAM channel contention, which decides
// every downstream latency.
//
// The parallel engine cannot let SM goroutines touch the shared event
// heap, so each SM *stages* its outbound requests into a private
// StageBuffer during an epoch, and the orchestrator commits the buffers
// in SM-id order at the epoch barrier. An SM stages its own requests in
// program order, and the commit walks SMs 0..N-1, so the sequence
// numbers assigned at commit are exactly the ones the serial engine
// would have assigned — the heaps evolve identically, bit for bit
// (verified by TestStagedCommitEquivalence and the harness
// engine-equivalence matrix).
//
// Only SM-originated accesses stage. Fill-side traffic — dirty-victim
// writebacks scheduled by handleFill — runs inside the orchestrator's
// serial System.Cycle, *before* the cycle's SM accesses, and must keep
// scheduling directly so its sequence numbers precede theirs just as
// they do under the serial engine.

// stagedAccess is one captured request. SMs only ever emit L2-arrive
// events (loads/stores leaving the L1), so the kind is implicit.
type stagedAccess struct {
	time int64
	addr int64 // line address
	l1   *L1D
	req  cache.Request
}

// StageBuffer collects one SM domain's outbound memory-system requests
// during an epoch. It is owned by a single SM goroutine between
// barriers and drained by the orchestrator at the barrier; it needs no
// locking.
type StageBuffer struct {
	pending []stagedAccess
}

// Len reports the number of staged, uncommitted accesses.
func (b *StageBuffer) Len() int { return len(b.pending) }

// SetStaging installs buf as the L1D's staging buffer (nil restores
// direct scheduling). While staged, AccessLoad/AccessStore capture
// their outbound events instead of touching the shared event heap.
func (l *L1D) SetStaging(buf *StageBuffer) { l.stage = buf }

// Staged reports whether a staging buffer is installed (the L1 is part
// of a running parallel epoch).
func (l *L1D) Staged() bool { return l.stage != nil }

// emitL2 sends one L2-arrive request: staged when a buffer is
// installed (parallel epoch), scheduled directly otherwise.
func (l *L1D) emitL2(t int64, addr int64, req cache.Request) {
	if l.stage != nil {
		l.stage.pending = append(l.stage.pending, stagedAccess{time: t, addr: addr, l1: l, req: req}) //cawalint:alloc-ok amortized growth of the reused epoch stage buffer
		return
	}
	l.sys.schedule(t, evL2Arrive, addr, l, req)
}

// Commit replays buf's staged accesses into the event system in
// capture order, assigning sequence numbers exactly as the serial
// engine would have, and empties the buffer. The caller must commit
// the per-SM buffers in SM-id order.
func (s *System) Commit(buf *StageBuffer) {
	for i := range buf.pending {
		a := &buf.pending[i]
		s.schedule(a.time, evL2Arrive, a.addr, a.l1, a.req)
		buf.pending[i] = stagedAccess{} // drop the stale L1D pointer
	}
	buf.pending = buf.pending[:0]
}
