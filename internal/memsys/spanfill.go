package memsys

import "cawa/internal/cache"

// In-span fill delivery for the lookahead engine.
//
// Every fill that lands inside a planned span is already pending in
// the event heap when the span is planned (horizon.go proves the span
// cannot create an earlier one), so the orchestrator extracts them up
// front — PlanSpanFills distributes each onto its target L1's plan —
// and the domain worker that owns the L1's SM delivers them at their
// exact cycles while the span runs. Delivery splits handleFill's
// effects between the two phases:
//
//   - in-span (worker goroutine, DeliverSpanFills): the L1/SM half —
//     MSHR retirement, the tag-array install with its victim choice,
//     and the scoreboard notification. These feed back into the SM's
//     own execution within the span, so they cannot wait; they touch
//     only state the worker's goroutine owns.
//   - at the barrier (orchestrator, takeSpanFill): the System half —
//     the FillsDelivered counter and the dirty-victim writeback. The
//     replay consumes one record per popped fill event, so the
//     writeback's sequence number lands exactly where the serial
//     engine's handleFill would have put it.
//
// A worker only delivers to an SM that still has resident blocks:
// once the SM retires its last block it can issue no further accesses,
// so a fill's L1-side effects stop influencing the span and the replay
// applies them whole (handleFill at the event's pop) — or, past the
// replay window when a kernel completes mid-span, leaves the event
// pending, exactly matching the serial engine's end-of-launch state.

// plannedFill is one pending evL1Fill event copied onto its L1's span
// plan. The sequence number orders same-cycle fills identically to the
// event heap's pop order.
type plannedFill struct {
	time int64
	seq  uint64
	addr int64
}

// spanFill records one in-span delivery for the barrier replay. victim
// is the dirty line address the tag install evicted, or -1. A stale
// record marks a fill whose MSHR entry had already been retired
// (store-forwarded lines); the serial engine's handleFill ignores
// those, so the replay must too.
type spanFill struct {
	time   int64
	addr   int64
	victim int64
	stale  bool
}

// PlanSpanFills copies every pending L1 fill due strictly before
// horizon onto its L1's span plan for in-span delivery by the domain
// workers. The events stay in the heap — the barrier replay pops them
// at their cycles and applies the recorded System-side effects.
func (s *System) PlanSpanFills(horizon int64) {
	for i := range s.events {
		e := &s.events[i]
		if e.kind == evL1Fill && e.time < horizon {
			e.l1.planFill(plannedFill{time: e.time, seq: e.seq, addr: e.addr})
		}
	}
}

// planFill inserts one fill into the plan, keeping it (time, seq)
// sorted — the heap iteration order of PlanSpanFills is arbitrary, and
// in-span fills per L1 are few, so an insertion step beats sorting.
func (l *L1D) planFill(p plannedFill) {
	l.plan = append(l.plan, p) //cawalint:alloc-ok amortized growth of the reused span-fill plan
	i := len(l.plan) - 1
	for i > 0 && (l.plan[i-1].time > p.time ||
		(l.plan[i-1].time == p.time && l.plan[i-1].seq > p.seq)) {
		l.plan[i] = l.plan[i-1]
		i--
	}
	l.plan[i] = p
}

// NextSpanFill returns the due cycle of the next planned in-span fill,
// or -1 when the plan is exhausted. Domain workers clamp their
// idle-span jumps to it.
func (l *L1D) NextSpanFill() int64 {
	if l.planHead >= len(l.plan) {
		return -1
	}
	return l.plan[l.planHead].time
}

// DeliverSpanFills applies the L1- and SM-side half of every planned
// fill due at or before now, recording the deferred System-side half
// for the barrier replay. Called by the owning domain worker before
// the SM's cycle at now, mirroring the serial engine's
// System.Cycle-before-SM.Cycle order.
func (l *L1D) DeliverSpanFills(now int64) {
	for l.planHead < len(l.plan) && l.plan[l.planHead].time <= now {
		p := l.plan[l.planHead]
		l.planHead++
		rec := spanFill{time: p.time, addr: p.addr, victim: -1}
		if entry, ok := l.mshr[p.addr]; ok {
			delete(l.mshr, p.addr)
			ev := l.cache.Fill(entry.req)
			if ev.Valid && ev.Dirty {
				rec.victim = ev.Addr
			}
			if l.fill != nil {
				l.fill(p.addr, entry.tokens)
			}
			l.free = append(l.free, entry)
		} else {
			rec.stale = true
		}
		l.recs = append(l.recs, rec)
	}
}

// takeSpanFill consumes the delivery record matching a popped fill
// event, if the event was delivered in-span. Records are appended in
// (time, seq) order and fill events pop in (time, seq) order, so a
// simple head match aligns them; an event with no matching record
// (the SM was already drained when its cycle ran, or the span never
// reached it) gets the ordinary full handleFill instead.
func (l *L1D) takeSpanFill(time, addr int64) (spanFill, bool) {
	if l.recHead < len(l.recs) {
		if r := l.recs[l.recHead]; r.time == time && r.addr == addr {
			l.recHead++
			return r, true
		}
	}
	return spanFill{}, false
}

// commitSpanFill applies the System-side half of one in-span delivery
// at the event's pop position during the barrier replay.
func (s *System) commitSpanFill(l *L1D, rec spanFill) {
	if rec.stale {
		return
	}
	s.FillsDelivered++
	if rec.victim >= 0 {
		wb := cache.Request{Addr: rec.victim, Write: true}
		s.schedule(rec.time+s.icntLat, evL2Arrive, rec.victim, l, wb)
	}
}

// SpanFillsDrained reports whether every in-span delivery record has
// been consumed by the replay. The lookahead engine asserts this after
// each batch: a worker only delivers to SMs with resident blocks, so
// every delivered fill's event time is at most the last retirement
// cycle and the replay must have popped it.
func (l *L1D) SpanFillsDrained() bool { return l.recHead == len(l.recs) }

// ResetSpanFills clears the plan and record buffers after a batch. The
// backing arrays are retained for the next span.
func (l *L1D) ResetSpanFills() {
	l.plan, l.planHead = l.plan[:0], 0
	l.recs, l.recHead = l.recs[:0], 0
}
