package memsys

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cawa/internal/cache"
	"cawa/internal/config"
)

// TestAllAcceptedLoadsComplete is the memory-system liveness property:
// every load accepted (hit or miss) must deliver its token exactly
// once, regardless of the access mix, and the system must drain.
func TestAllAcceptedLoadsComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := config.Small()
		cfg.L1D.MSHRs = 4
		cfg.L1D.MSHRTargets = 3
		s := New(cfg)

		delivered := make(map[int64]int)
		var l1 *L1D
		l1 = s.NewL1D(cache.LRU{}, func(_ int64, tokens []int64) {
			for _, tok := range tokens {
				delivered[tok]++
			}
		})

		pendingMiss := make(map[int64]bool)
		hits := 0
		now := int64(0)
		var token int64
		for i := 0; i < 300; i++ {
			now++
			s.Cycle(now)
			addr := int64(rng.Intn(64)) * 128
			if rng.Intn(4) == 0 {
				l1.AccessStore(cache.Request{Addr: addr, Warp: 1}, now)
				continue
			}
			token++
			switch l1.AccessLoad(cache.Request{Addr: addr, Warp: 1}, token, now) {
			case Hit:
				hits++
			case Miss:
				pendingMiss[token] = true
			case Reject:
				// Rejected tokens must never be delivered.
			}
		}
		// Drain.
		for i := 0; i < 1_000_000 && !s.Drained(); i++ {
			now++
			s.Cycle(now)
		}
		if !s.Drained() {
			return false
		}
		if len(delivered) != len(pendingMiss) {
			return false
		}
		for tok, n := range delivered {
			if n != 1 || !pendingMiss[tok] {
				return false
			}
		}
		return l1.MSHROccupancy() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestLatencyBounds: every miss completes no earlier than the L2
// minimum latency and no later than a loose upper bound under light
// load.
func TestLatencyBounds(t *testing.T) {
	cfg := config.Small()
	s := New(cfg)
	type rec struct{ issued, done int64 }
	outstanding := make(map[int64]*rec)
	var l1 *L1D
	now := int64(0)
	l1 = s.NewL1D(cache.LRU{}, func(_ int64, tokens []int64) {
		for _, tok := range tokens {
			outstanding[tok].done = now
		}
	})
	for now = 0; now < 16*500; now++ {
		s.Cycle(now)
		if now%500 == 0 { // light load: no queueing
			tok := now / 500
			outstanding[tok] = &rec{issued: now}
			if got := l1.AccessLoad(cache.Request{Addr: tok * 100000, Warp: 0}, tok, now); got != Miss {
				t.Fatalf("expected miss, got %v", got)
			}
		}
	}
	for i := 0; i < 1_000_000 && !s.Drained(); i++ {
		now++
		s.Cycle(now)
	}
	for tok, r := range outstanding {
		if r.done == 0 {
			t.Fatalf("token %d never completed", tok)
		}
		lat := r.done - r.issued
		if lat < int64(cfg.L2Latency) {
			t.Fatalf("token %d latency %d below L2 minimum", tok, lat)
		}
		if lat > int64(cfg.DRAMLatency)+100 {
			t.Fatalf("token %d latency %d unreasonably high under light load", tok, lat)
		}
	}
}
