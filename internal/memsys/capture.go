package memsys

import (
	"fmt"
	"sort"

	"cawa/internal/cache"
)

// Serializable snapshots of the memory-system timing state. Checkpoints
// are taken at engine-clean cycle boundaries (stage buffers committed,
// store logs flushed, span-fill plans drained), so the only mutable
// state here is the L2 tag array and MSHRs, the per-L1 tag arrays and
// MSHRs, bank/channel occupancy, and the pending event heap.
//
// Pointers do not serialize: every *L1D reference (in events and L2
// waiters) is encoded as an index into the SM-ordered L1 list the
// caller supplies, and the event heap is canonicalized to a (time, seq)
// sorted list. A list sorted by the heap's own ordering is itself a
// valid binary min-heap, so Restore installs it directly; and because
// (time, seq) is a total order, heap layout never affects pop order —
// a restored system drains events exactly like the uninterrupted one.

// EventState is one pending memory event.
type EventState struct {
	Time int64
	Seq  uint64
	Kind uint8
	Addr int64
	L1   int // index into the SM-ordered L1 list, -1 when absent
	Req  cache.Request
}

// L2WaiterState is one L1 request merged onto an in-flight L2 miss.
type L2WaiterState struct {
	L1  int
	Req cache.Request
}

// L2MSHRState is one in-flight L2 miss with its merged waiters, in
// arrival order (fan-out order determines response sequence numbers).
type L2MSHRState struct {
	Addr    int64
	Waiters []L2WaiterState
}

// MSHRState is one in-flight L1 miss line with its merged load tokens.
type MSHRState struct {
	Line   int64
	Req    cache.Request
	Tokens []int64
}

// WarpCountState is one entry of a per-warp counter map, flattened so
// serialization never ranges over a map.
type WarpCountState struct {
	Warp  int32
	Count uint64
}

// L1DState is the snapshot of one SM's L1 data cache and MSHRs.
type L1DState struct {
	Cache cache.State
	MSHR  []MSHRState // sorted by line address

	LoadAccesses  uint64
	StoreAccesses uint64
	LoadMisses    uint64
	StoreMisses   uint64
	Rejects       uint64

	WarpAccesses []WarpCountState
	WarpHits     []WarpCountState
}

// State is the snapshot of the shared memory system.
type State struct {
	L2       cache.State
	L2MSHR   []L2MSHRState // sorted by address
	BankFree []int64
	ChanFree []int64

	// L1Ds carries the per-SM L1 snapshots in SM-id order. System
	// Capture/Restore do not touch it — the device layer fills it in
	// (the L1s belong to the SMs) — but it rides in this struct so one
	// State is the complete memory-hierarchy image.
	L1Ds []L1DState

	Events []EventState // sorted by (time, seq)
	Seq    uint64

	L2Reads        uint64
	L2Writes       uint64
	DRAMReads      uint64
	DRAMWrites     uint64
	FillsDelivered uint64
}

// Capture snapshots the system. l1s is the SM-ordered list of L1Ds
// attached to this system; every L1 referenced by a pending event or
// L2 waiter must appear in it.
func (s *System) Capture(l1s []*L1D) (State, error) {
	index := make(map[*L1D]int, len(l1s))
	for i, l := range l1s {
		index[l] = i
	}
	l1Index := func(l *L1D) (int, error) {
		if l == nil {
			return -1, nil
		}
		i, ok := index[l]
		if !ok {
			return 0, fmt.Errorf("memsys: capture found an L1 outside the supplied list")
		}
		return i, nil
	}

	st := State{
		L2:             s.l2.Capture(),
		BankFree:       append([]int64(nil), s.bankFree...),
		ChanFree:       append([]int64(nil), s.chanFree...),
		Seq:            s.seq,
		L2Reads:        s.L2Reads,
		L2Writes:       s.L2Writes,
		DRAMReads:      s.DRAMReads,
		DRAMWrites:     s.DRAMWrites,
		FillsDelivered: s.FillsDelivered,
	}

	st.Events = make([]EventState, 0, len(s.events))
	for _, e := range s.events {
		li, err := l1Index(e.l1)
		if err != nil {
			return State{}, err
		}
		st.Events = append(st.Events, EventState{
			Time: e.time, Seq: e.seq, Kind: uint8(e.kind),
			Addr: e.addr, L1: li, Req: e.req,
		})
	}
	sort.Slice(st.Events, func(i, j int) bool {
		if st.Events[i].Time != st.Events[j].Time {
			return st.Events[i].Time < st.Events[j].Time
		}
		return st.Events[i].Seq < st.Events[j].Seq
	})

	st.L2MSHR = make([]L2MSHRState, 0, len(s.l2mshr))
	//cawalint:ignore iteration order is laundered by the Addr sort below; the waiter-flattening body is too complex for the collect-then-sort matcher
	for addr, waiters := range s.l2mshr {
		ms := L2MSHRState{Addr: addr, Waiters: make([]L2WaiterState, 0, len(waiters))}
		for _, w := range waiters {
			li, err := l1Index(w.l1)
			if err != nil {
				return State{}, err
			}
			ms.Waiters = append(ms.Waiters, L2WaiterState{L1: li, Req: w.req})
		}
		st.L2MSHR = append(st.L2MSHR, ms)
	}
	sort.Slice(st.L2MSHR, func(i, j int) bool { return st.L2MSHR[i].Addr < st.L2MSHR[j].Addr })

	return st, nil
}

// Restore overwrites the system's dynamic state from a snapshot. l1s
// must be the same SM-ordered L1 list the snapshot was captured with
// (same length, freshly built instances are fine).
func (s *System) Restore(st State, l1s []*L1D) error {
	if err := s.l2.Restore(st.L2); err != nil {
		return err
	}
	if len(st.BankFree) != len(s.bankFree) || len(st.ChanFree) != len(s.chanFree) {
		return fmt.Errorf("memsys: restore geometry mismatch (banks %d/%d, channels %d/%d)",
			len(s.bankFree), len(st.BankFree), len(s.chanFree), len(st.ChanFree))
	}
	resolve := func(i int) (*L1D, error) {
		if i < 0 {
			return nil, nil
		}
		if i >= len(l1s) {
			return nil, fmt.Errorf("memsys: restore L1 index %d out of range (%d L1s)", i, len(l1s))
		}
		return l1s[i], nil
	}

	copy(s.bankFree, st.BankFree)
	copy(s.chanFree, st.ChanFree)
	s.seq = st.Seq
	s.L2Reads = st.L2Reads
	s.L2Writes = st.L2Writes
	s.DRAMReads = st.DRAMReads
	s.DRAMWrites = st.DRAMWrites
	s.FillsDelivered = st.FillsDelivered

	// The snapshot's event list is sorted by the heap's own ordering,
	// so it is already a valid min-heap; the internal (non-fill) times
	// inherit that sort and form a valid timeHeap the same way.
	s.events = s.events[:0]
	s.internals = s.internals[:0]
	for _, e := range st.Events {
		l1, err := resolve(e.L1)
		if err != nil {
			return err
		}
		s.events = append(s.events, event{
			time: e.Time, seq: e.Seq, kind: eventKind(e.Kind),
			addr: e.Addr, l1: l1, req: e.Req,
		})
		if eventKind(e.Kind) != evL1Fill {
			s.internals = append(s.internals, e.Time)
		}
	}

	s.l2mshr = make(map[int64][]l2Waiter, len(st.L2MSHR))
	for _, ms := range st.L2MSHR {
		waiters := make([]l2Waiter, 0, len(ms.Waiters))
		for _, w := range ms.Waiters {
			l1, err := resolve(w.L1)
			if err != nil {
				return err
			}
			waiters = append(waiters, l2Waiter{l1: l1, req: w.Req})
		}
		s.l2mshr[ms.Addr] = waiters
	}
	return nil
}

// Capture snapshots the L1's tag array, MSHRs, and counters. It must
// run at a clean boundary: any undrained span-fill plan means the
// caller checkpointed mid-span, which is a bug.
func (l *L1D) Capture() (L1DState, error) {
	if l.planHead != len(l.plan) || l.recHead != len(l.recs) {
		return L1DState{}, fmt.Errorf("memsys: capture with undrained span fills (plan %d/%d, recs %d/%d)",
			l.planHead, len(l.plan), l.recHead, len(l.recs))
	}
	st := L1DState{
		Cache:         l.cache.Capture(),
		MSHR:          make([]MSHRState, 0, len(l.mshr)),
		LoadAccesses:  l.LoadAccesses,
		StoreAccesses: l.StoreAccesses,
		LoadMisses:    l.LoadMisses,
		StoreMisses:   l.StoreMisses,
		Rejects:       l.Rejects,
		WarpAccesses:  captureWarpCounts(l.WarpAccesses),
		WarpHits:      captureWarpCounts(l.WarpHits),
	}
	for line, entry := range l.mshr {
		st.MSHR = append(st.MSHR, MSHRState{
			Line:   line,
			Req:    entry.req,
			Tokens: append([]int64(nil), entry.tokens...),
		})
	}
	sort.Slice(st.MSHR, func(i, j int) bool { return st.MSHR[i].Line < st.MSHR[j].Line })
	return st, nil
}

// Restore overwrites the L1's dynamic state from a snapshot. The fill
// handler, staging wiring, and system attachment are engine concerns
// and are left untouched.
func (l *L1D) Restore(st L1DState) error {
	if err := l.cache.Restore(st.Cache); err != nil {
		return err
	}
	l.mshr = make(map[int64]*mshrEntry, len(st.MSHR))
	for _, ms := range st.MSHR {
		l.mshr[ms.Line] = &mshrEntry{
			req:    ms.Req,
			tokens: append([]int64(nil), ms.Tokens...),
		}
	}
	l.plan = l.plan[:0]
	l.planHead = 0
	l.recs = l.recs[:0]
	l.recHead = 0
	l.LoadAccesses = st.LoadAccesses
	l.StoreAccesses = st.StoreAccesses
	l.LoadMisses = st.LoadMisses
	l.StoreMisses = st.StoreMisses
	l.Rejects = st.Rejects
	l.WarpAccesses = restoreWarpCounts(st.WarpAccesses)
	l.WarpHits = restoreWarpCounts(st.WarpHits)
	return nil
}

func captureWarpCounts(m map[int32]uint64) []WarpCountState {
	out := make([]WarpCountState, 0, len(m))
	for w, n := range m {
		out = append(out, WarpCountState{Warp: w, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Warp < out[j].Warp })
	return out
}

func restoreWarpCounts(st []WarpCountState) map[int32]uint64 {
	m := make(map[int32]uint64, len(st))
	for _, e := range st {
		m[e.Warp] = e.Count
	}
	return m
}
