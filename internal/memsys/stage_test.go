package memsys

import (
	"reflect"
	"testing"

	"cawa/internal/cache"
	"cawa/internal/config"
)

// fillTrace records every delivered L1 fill as (owning L1 index, line
// address, delivery cycle) — the externally visible outcome whose
// ordering and timing the staged commit must reproduce exactly.
type fillTrace struct {
	l1   int
	line int64
	time int64
}

// stageHarness is one memory system with two L1Ds standing in for two
// SM domains, plus the per-cycle observation trail the equivalence
// test compares.
type stageHarness struct {
	sys   *System
	l1s   [2]*L1D
	now   int64
	fills []fillTrace
	// nexts and delivered sample NextEventTime and FillsDelivered after
	// every cycle: the exact signals the fast-forward engine steers by,
	// so they must be bit-identical between serial and staged schedules.
	nexts     []int64
	delivered []uint64
}

func newStageHarness(cfg config.Config) *stageHarness {
	h := &stageHarness{sys: New(cfg)}
	for i := range h.l1s {
		i := i
		h.l1s[i] = h.sys.NewL1D(cache.LRU{}, func(line int64, tokens []int64) {
			h.fills = append(h.fills, fillTrace{l1: i, line: line, time: h.now})
		})
	}
	return h
}

func (h *stageHarness) cycle() {
	h.now++
	h.sys.Cycle(h.now)
	h.nexts = append(h.nexts, h.sys.NextEventTime())
	h.delivered = append(h.delivered, h.sys.FillsDelivered)
}

// TestStagedCommitEquivalence is the determinism core of the parallel
// engine, isolated: sequence numbers tie-break same-cycle events in the
// event heap, and same-cycle ties decide L2 bank and DRAM channel
// contention, so every downstream latency depends on the order accesses
// enter the heap. The test issues the same per-cycle loads on two
// systems — one accessing directly in SM-id order (the serial engine),
// one staging per-SM buffers filled in REVERSE SM order (a worst-case
// parallel interleaving) and committing them in SM-id order at the
// barrier — and requires identical fill traces, NextEventTime samples
// and FillsDelivered counts, cycle by cycle. All addresses map to one
// L2 bank and one DRAM channel, so any seq divergence shifts real
// latencies rather than hiding in idle ports.
func TestStagedCommitEquivalence(t *testing.T) {
	cfg := config.Small()
	line := int64(cfg.L2.LineBytes)
	// Stride line*banks*channels keeps every access on bank 0/channel 0.
	stride := line * int64(cfg.L2Banks) * int64(cfg.DRAMChannels)

	serial := newStageHarness(cfg)
	staged := newStageHarness(cfg)
	bufs := [2]*StageBuffer{{}, {}}
	for i, l1 := range staged.l1s {
		l1.SetStaging(bufs[i])
	}

	// Each SM issues two loads per cycle for eight cycles; the two SMs'
	// lines are distinct (no cross-SM merging masks ordering effects).
	const cycles, perSM = 8, 2
	addr := func(sm, c, k int) int64 {
		return stride * int64(1+sm*100+c*perSM+k)
	}
	token := int64(0)
	for c := 0; c < cycles; c++ {
		// Serial engine: SM 0's accesses of the cycle, then SM 1's.
		for smID := 0; smID < 2; smID++ {
			for k := 0; k < perSM; k++ {
				req := cache.Request{Addr: addr(smID, c, k), Warp: smID*8 + k}
				if out := serial.l1s[smID].AccessLoad(req, token, serial.now); out != Miss {
					t.Fatalf("serial SM%d cycle %d: outcome %v, want miss", smID, c, out)
				}
				token++
			}
		}
		// Parallel epoch: domains run in any order (here deliberately
		// reversed), staging privately...
		stagedToken := token - perSM*2
		for smID := 1; smID >= 0; smID-- {
			tok := stagedToken + int64(smID*perSM)
			for k := 0; k < perSM; k++ {
				req := cache.Request{Addr: addr(smID, c, k), Warp: smID*8 + k}
				if out := staged.l1s[smID].AccessLoad(req, tok, staged.now); out != Miss {
					t.Fatalf("staged SM%d cycle %d: outcome %v, want miss", smID, c, out)
				}
				tok++
			}
		}
		// ...and the barrier commits in SM-id order.
		for i := range bufs {
			staged.sys.Commit(bufs[i])
			if bufs[i].Len() != 0 {
				t.Fatalf("buffer %d not drained by Commit: %d pending", i, bufs[i].Len())
			}
		}
		serial.cycle()
		staged.cycle()
	}

	// Drain both systems to the last fill.
	for i := 0; i < 10000 && (!serial.sys.Drained() || !staged.sys.Drained()); i++ {
		serial.cycle()
		staged.cycle()
	}
	if !serial.sys.Drained() || !staged.sys.Drained() {
		t.Fatal("memory systems did not drain")
	}

	if len(serial.fills) == 0 {
		t.Fatal("no fills delivered; the test exercised nothing")
	}
	if !reflect.DeepEqual(staged.fills, serial.fills) {
		t.Errorf("fill traces diverge:\nstaged %v\nserial %v", staged.fills, serial.fills)
	}
	if !reflect.DeepEqual(staged.nexts, serial.nexts) {
		t.Errorf("NextEventTime samples diverge:\nstaged %v\nserial %v", staged.nexts, serial.nexts)
	}
	if !reflect.DeepEqual(staged.delivered, serial.delivered) {
		t.Errorf("FillsDelivered samples diverge:\nstaged %v\nserial %v", staged.delivered, serial.delivered)
	}
}

// TestStagingInstallUninstall: SetStaging(nil) must restore direct
// scheduling, and a staged access must not touch the shared event heap
// before Commit.
func TestStagingInstallUninstall(t *testing.T) {
	cfg := config.Small()
	sys := New(cfg)
	l1 := sys.NewL1D(cache.LRU{}, nil)
	buf := &StageBuffer{}

	l1.SetStaging(buf)
	if out := l1.AccessLoad(cache.Request{Addr: 0}, 0, 1); out != Miss {
		t.Fatalf("outcome %v, want miss", out)
	}
	if buf.Len() != 1 {
		t.Fatalf("staged %d accesses, want 1", buf.Len())
	}
	if sys.NextEventTime() != -1 {
		t.Fatal("staged access leaked into the event heap before Commit")
	}
	sys.Commit(buf)
	if buf.Len() != 0 || sys.NextEventTime() < 0 {
		t.Fatal("Commit did not move the access into the event heap")
	}

	l1.SetStaging(nil)
	heapBefore := sys.NextEventTime()
	if out := l1.AccessLoad(cache.Request{Addr: int64(cfg.L2.LineBytes) * 7}, 1, 1); out != Miss {
		t.Fatalf("outcome %v, want miss", out)
	}
	if buf.Len() != 0 {
		t.Fatal("uninstalled buffer still captured an access")
	}
	if sys.NextEventTime() != heapBefore {
		// Same icnt latency, later issue cycle would change the head;
		// issued at the same cycle the head must be unchanged and the
		// heap one event longer — cheapest proxy: still non-empty.
		t.Log("event-heap head moved (same-cycle schedule); acceptable")
	}
	if sys.Drained() {
		t.Fatal("direct access did not schedule")
	}
}
