package memsys

import (
	"testing"

	"cawa/internal/cache"
)

// TestSafeHorizonBounds pins the two horizon bounds: an idle system
// bounds only by span-issued accesses (now+1+L2Latency), and a pending
// internal event tightens the bound to its earliest derivable fill
// (t + L2Latency - icntLat).
func TestSafeHorizonBounds(t *testing.T) {
	cfg := testCfg()
	s := New(cfg)
	col := &collector{}
	l1 := s.NewL1D(cache.LRU{}, col.handler)

	l2lat := int64(cfg.L2Latency)
	now := int64(100)
	if got, want := s.SafeHorizon(now), now+1+l2lat; got != want {
		t.Fatalf("idle horizon %d, want %d", got, want)
	}

	// A miss at now schedules an L2 arrival at now+icntLat: the horizon
	// must shrink to (now+icntLat) + L2Latency - icntLat = now+L2Latency.
	if got := l1.AccessLoad(cache.Request{Addr: 0x4000}, 1, now); got != Miss {
		t.Fatalf("outcome %v, want miss", got)
	}
	if got, want := s.SafeHorizon(now), now+l2lat; got != want {
		t.Fatalf("horizon with pending L2 arrival %d, want %d", got, want)
	}

	// Draining the system restores the idle bound: the internals heap
	// mirror must shrink as events are processed.
	end := drive(s, col, now+1, 10_000)
	if !s.Drained() {
		t.Fatal("system did not drain")
	}
	if got, want := s.SafeHorizon(end), end+1+l2lat; got != want {
		t.Fatalf("post-drain horizon %d, want %d", got, want)
	}
}

// pendingFillTime digs the single pending evL1Fill out of the event
// heap (the white-box view the planner's heap scan uses).
func pendingFillTime(t *testing.T, s *System) int64 {
	t.Helper()
	ft := int64(-1)
	for i := range s.events {
		if s.events[i].kind == evL1Fill {
			if ft >= 0 {
				t.Fatal("more than one pending fill")
			}
			ft = s.events[i].time
		}
	}
	if ft < 0 {
		t.Fatal("no pending fill in the event heap")
	}
	return ft
}

// missUntilFillPending drives one load miss far enough that its fill
// event is pending, and returns (fill time, last processed cycle).
func missUntilFillPending(t *testing.T, s *System, l1 *L1D, col *collector, addr int64) (int64, int64) {
	t.Helper()
	if got := l1.AccessLoad(cache.Request{Addr: addr}, 7, 0); got != Miss {
		t.Fatalf("outcome %v, want miss", got)
	}
	now := int64(0)
	for !s.Drained() {
		now++
		hasFill := false
		for i := range s.events {
			if s.events[i].kind == evL1Fill {
				hasFill = true
			}
		}
		if hasFill && s.events[0].kind == evL1Fill {
			// Only the fill remains ahead: stop before processing it.
			return pendingFillTime(t, s), now - 1
		}
		col.now = now
		s.Cycle(now)
	}
	t.Fatal("miss drained without a pending fill")
	return 0, 0
}

// TestSpanFillDeliverAndReplay exercises the split delivery protocol
// end to end: planning copies the pending fill, DeliverSpanFills
// applies the L1/SM half on the "worker", and the event pop during the
// replay consumes the record and applies the System half exactly once.
func TestSpanFillDeliverAndReplay(t *testing.T) {
	cfg := testCfg()
	s := New(cfg)
	col := &collector{}
	l1 := s.NewL1D(cache.LRU{}, col.handler)
	ft, now := missUntilFillPending(t, s, l1, col, 0x4000)

	s.PlanSpanFills(ft + 1)
	if got := l1.NextSpanFill(); got != ft {
		t.Fatalf("NextSpanFill %d, want %d", got, ft)
	}

	// Worker half: the SM callback fires and the MSHR entry retires.
	col.now = ft
	l1.DeliverSpanFills(ft)
	if len(col.fills) != 1 || col.fills[0].addr != 0x4000 || col.fills[0].at != ft {
		t.Fatalf("worker delivery fills = %+v", col.fills)
	}
	if l1.MSHROccupancy() != 0 {
		t.Fatal("MSHR entry not retired by in-span delivery")
	}
	if l1.NextSpanFill() != -1 {
		t.Fatal("plan not consumed")
	}
	if s.FillsDelivered != 0 {
		t.Fatal("System half applied before the replay")
	}

	// Replay half: popping the event consumes the record instead of
	// double-delivering, and counts the fill exactly once.
	for c := now + 1; c <= ft; c++ {
		col.now = c
		s.Cycle(c)
	}
	if s.FillsDelivered != 1 {
		t.Fatalf("FillsDelivered = %d, want 1", s.FillsDelivered)
	}
	if len(col.fills) != 1 {
		t.Fatalf("replay re-delivered: %d SM callbacks", len(col.fills))
	}
	if !l1.SpanFillsDrained() {
		t.Fatal("delivery record not consumed by the replay")
	}
	if !s.Drained() {
		t.Fatal("events left pending")
	}
	l1.ResetSpanFills()
}

// TestSpanFillUndeliveredFallsBack proves a planned-but-undelivered
// fill (the owning SM drained mid-span) gets the ordinary full
// handleFill when its event pops: the plan alone must not change
// delivery.
func TestSpanFillUndeliveredFallsBack(t *testing.T) {
	cfg := testCfg()
	s := New(cfg)
	col := &collector{}
	l1 := s.NewL1D(cache.LRU{}, col.handler)
	ft, now := missUntilFillPending(t, s, l1, col, 0x4000)

	s.PlanSpanFills(ft + 1)
	// No DeliverSpanFills call: the worker skipped this SM.
	for c := now + 1; c <= ft; c++ {
		col.now = c
		s.Cycle(c)
	}
	if len(col.fills) != 1 || col.fills[0].at != ft {
		t.Fatalf("fallback delivery fills = %+v", col.fills)
	}
	if s.FillsDelivered != 1 {
		t.Fatalf("FillsDelivered = %d, want 1", s.FillsDelivered)
	}
	if l1.MSHROccupancy() != 0 {
		t.Fatal("MSHR entry not retired by the fallback path")
	}
	l1.ResetSpanFills()
	if l1.NextSpanFill() != -1 {
		t.Fatal("reset left plan entries behind")
	}
}

// TestSpanFillStaleDelivery pins the stale protocol: a planned fill
// whose MSHR entry is already gone records stale=true in-span, and the
// replay applies no System-side effects — matching the serial engine's
// handleFill early return.
func TestSpanFillStaleDelivery(t *testing.T) {
	cfg := testCfg()
	s := New(cfg)
	col := &collector{}
	l1 := s.NewL1D(cache.LRU{}, col.handler)
	ft, now := missUntilFillPending(t, s, l1, col, 0x4000)

	s.PlanSpanFills(ft + 1)
	// Force staleness the way store forwarding does: the entry retires
	// before the fill arrives.
	line := l1.cache.BlockAddr(0x4000)
	delete(l1.mshr, line)

	col.now = ft
	l1.DeliverSpanFills(ft)
	if len(col.fills) != 0 {
		t.Fatalf("stale delivery invoked the SM callback: %+v", col.fills)
	}
	for c := now + 1; c <= ft; c++ {
		col.now = c
		s.Cycle(c)
	}
	if s.FillsDelivered != 0 {
		t.Fatalf("FillsDelivered = %d, want 0 for a stale fill", s.FillsDelivered)
	}
	if !l1.SpanFillsDrained() {
		t.Fatal("stale record not consumed")
	}
	if !s.Drained() {
		t.Fatal("events left pending")
	}
	l1.ResetSpanFills()
}
