package memsys

import (
	"testing"

	"cawa/internal/cache"
	"cawa/internal/config"
)

func testCfg() config.Config {
	c := config.Small()
	return c
}

type fillRecord struct {
	addr   int64
	tokens []int64
	at     int64
}

type collector struct {
	now   int64
	fills []fillRecord
}

func (c *collector) handler(addr int64, tokens []int64) {
	c.fills = append(c.fills, fillRecord{addr, append([]int64(nil), tokens...), c.now})
}

// drive advances the system until the L1 has no outstanding misses.
func drive(s *System, col *collector, from int64, max int64) int64 {
	now := from
	for ; now < from+max; now++ {
		col.now = now
		s.Cycle(now)
		if s.Drained() {
			break
		}
	}
	return now
}

func TestL1HitNoTraffic(t *testing.T) {
	cfg := testCfg()
	s := New(cfg)
	col := &collector{}
	l1 := s.NewL1D(cache.LRU{}, col.handler)
	// Preload the line.
	l1.Cache().Fill(cache.Request{Addr: 0x1000})
	if got := l1.AccessLoad(cache.Request{Addr: 0x1000}, 1, 10); got != Hit {
		t.Fatalf("outcome %v, want hit", got)
	}
	if !s.Drained() {
		t.Fatal("hit generated memory traffic")
	}
	if l1.LoadMisses != 0 || l1.LoadAccesses != 1 {
		t.Fatalf("counters: misses=%d accesses=%d", l1.LoadMisses, l1.LoadAccesses)
	}
}

func TestMissLatencyL2Hit(t *testing.T) {
	cfg := testCfg()
	s := New(cfg)
	col := &collector{}
	l1 := s.NewL1D(cache.LRU{}, col.handler)
	// Warm the L2 with the line so the miss is an L2 hit.
	s.L2().Fill(cache.Request{Addr: 0x2000})

	if got := l1.AccessLoad(cache.Request{Addr: 0x2000}, 7, 100); got != Miss {
		t.Fatalf("outcome %v, want miss", got)
	}
	drive(s, col, 101, 10_000)
	if len(col.fills) != 1 {
		t.Fatalf("fills = %d", len(col.fills))
	}
	f := col.fills[0]
	if f.tokens[0] != 7 {
		t.Fatalf("token %d", f.tokens[0])
	}
	lat := f.at - 100
	if lat < int64(cfg.L2Latency) || lat > int64(cfg.L2Latency)+10 {
		t.Fatalf("L2-hit latency %d, want about %d", lat, cfg.L2Latency)
	}
	// The line must now be resident in L1.
	if _, _, hit := l1.Cache().Probe(0x2000); !hit {
		t.Fatal("line not filled into L1")
	}
}

func TestMissLatencyDRAM(t *testing.T) {
	cfg := testCfg()
	s := New(cfg)
	col := &collector{}
	l1 := s.NewL1D(cache.LRU{}, col.handler)
	l1.AccessLoad(cache.Request{Addr: 0x4000}, 1, 50)
	drive(s, col, 51, 10_000)
	if len(col.fills) != 1 {
		t.Fatalf("fills = %d", len(col.fills))
	}
	lat := col.fills[0].at - 50
	if lat < int64(cfg.DRAMLatency) || lat > int64(cfg.DRAMLatency)+20 {
		t.Fatalf("DRAM latency %d, want about %d", lat, cfg.DRAMLatency)
	}
	if s.DRAMReads != 1 {
		t.Fatalf("DRAM reads %d", s.DRAMReads)
	}
	// Second access to the same line is now an L2 hit and faster.
	s2 := New(cfg)
	_ = s2
	if _, _, hit := s.L2().Probe(0x4000); !hit {
		t.Fatal("DRAM fill did not populate L2")
	}
}

func TestMSHRMerging(t *testing.T) {
	cfg := testCfg()
	s := New(cfg)
	col := &collector{}
	l1 := s.NewL1D(cache.LRU{}, col.handler)
	// Three loads to the same line before the fill returns: one memory
	// request, three tokens delivered together.
	l1.AccessLoad(cache.Request{Addr: 0x8000}, 1, 10)
	l1.AccessLoad(cache.Request{Addr: 0x8008}, 2, 11)
	l1.AccessLoad(cache.Request{Addr: 0x8040}, 3, 12)
	if l1.MSHROccupancy() != 1 {
		t.Fatalf("MSHR occupancy %d, want 1 (merged)", l1.MSHROccupancy())
	}
	drive(s, col, 13, 10_000)
	if len(col.fills) != 1 || len(col.fills[0].tokens) != 3 {
		t.Fatalf("fills %+v", col.fills)
	}
	if s.DRAMReads != 1 {
		t.Fatalf("DRAM reads %d, want 1", s.DRAMReads)
	}
}

func TestMSHRCapacityReject(t *testing.T) {
	cfg := testCfg()
	cfg.L1D.MSHRs = 2
	cfg.L1D.MSHRTargets = 2
	s := New(cfg)
	l1 := s.NewL1D(cache.LRU{}, nil)
	if l1.AccessLoad(cache.Request{Addr: 0 * 128}, 1, 1) != Miss {
		t.Fatal("first miss rejected")
	}
	if l1.AccessLoad(cache.Request{Addr: 1 * 128}, 2, 1) != Miss {
		t.Fatal("second miss rejected")
	}
	if got := l1.AccessLoad(cache.Request{Addr: 2 * 128}, 3, 1); got != Reject {
		t.Fatalf("third distinct miss outcome %v, want reject", got)
	}
	// Merging is still possible up to the target cap.
	if l1.AccessLoad(cache.Request{Addr: 0*128 + 8}, 4, 1) != Miss {
		t.Fatal("merge rejected")
	}
	if got := l1.AccessLoad(cache.Request{Addr: 0*128 + 16}, 5, 1); got != Reject {
		t.Fatalf("over-cap merge outcome %v, want reject", got)
	}
	if l1.Rejects != 2 {
		t.Fatalf("rejects %d", l1.Rejects)
	}
}

func TestCanAcceptAgreesWithAccess(t *testing.T) {
	cfg := testCfg()
	cfg.L1D.MSHRs = 2
	cfg.L1D.MSHRTargets = 2
	s := New(cfg)
	l1 := s.NewL1D(cache.LRU{}, nil)
	if !l1.CanAccept([]int64{0, 128}) {
		t.Fatal("CanAccept refused two lines with two MSHRs")
	}
	if l1.CanAccept([]int64{0, 128, 256}) {
		t.Fatal("CanAccept allowed three lines with two MSHRs")
	}
	l1.AccessLoad(cache.Request{Addr: 0}, 1, 1)
	l1.AccessLoad(cache.Request{Addr: 128}, 2, 1)
	if !l1.CanAccept([]int64{0}) {
		t.Fatal("CanAccept refused a merge")
	}
	if l1.CanAccept([]int64{256}) {
		t.Fatal("CanAccept allowed a third distinct line")
	}
}

func TestStoreWriteNoAllocate(t *testing.T) {
	cfg := testCfg()
	s := New(cfg)
	l1 := s.NewL1D(cache.LRU{}, nil)
	if got := l1.AccessStore(cache.Request{Addr: 0x3000}, 5); got != Miss {
		t.Fatalf("store miss outcome %v", got)
	}
	if _, _, hit := l1.Cache().Probe(0x3000); hit {
		t.Fatal("store miss allocated a line")
	}
	// Drain: the store becomes an L2 write / DRAM write.
	for now := int64(6); !s.Drained(); now++ {
		s.Cycle(now)
	}
	if s.L2Writes != 1 {
		t.Fatalf("L2 writes %d", s.L2Writes)
	}
	// Store hit dirties the line.
	l1.Cache().Fill(cache.Request{Addr: 0x5000})
	if got := l1.AccessStore(cache.Request{Addr: 0x5000}, 20); got != Hit {
		t.Fatalf("store hit outcome %v", got)
	}
	set, way, _ := l1.Cache().Probe(0x5000)
	if !l1.Cache().Line(set, way).Dirty {
		t.Fatal("store hit did not dirty the line")
	}
}

func TestBandwidthSerialization(t *testing.T) {
	cfg := testCfg()
	s := New(cfg)
	col := &collector{}
	l1 := s.NewL1D(cache.LRU{}, col.handler)
	// Many distinct lines mapping to the same DRAM channel: completions
	// must be spaced by at least the channel occupancy.
	lineBytes := int64(cfg.L2.LineBytes)
	stride := lineBytes * int64(cfg.DRAMChannels) * int64(cfg.L2Banks)
	const n = 8
	for i := int64(0); i < n; i++ {
		l1.AccessLoad(cache.Request{Addr: i * stride}, i, 0)
	}
	drive(s, col, 1, 100_000)
	if len(col.fills) != n {
		t.Fatalf("fills %d", len(col.fills))
	}
	first, last := col.fills[0].at, col.fills[len(col.fills)-1].at
	if span := last - first; span < int64(cfg.DRAMBandwidth)*(n-1) {
		t.Fatalf("completions span %d cycles; bandwidth not modeled", span)
	}
}

func TestPerWarpCounters(t *testing.T) {
	cfg := testCfg()
	s := New(cfg)
	l1 := s.NewL1D(cache.LRU{}, nil)
	l1.Cache().Fill(cache.Request{Addr: 0})
	l1.AccessLoad(cache.Request{Addr: 0, Warp: 3}, 1, 1)    // hit
	l1.AccessLoad(cache.Request{Addr: 4096, Warp: 3}, 2, 1) // miss
	if l1.WarpAccesses[3] != 2 || l1.WarpHits[3] != 1 {
		t.Fatalf("warp counters: %d/%d", l1.WarpAccesses[3], l1.WarpHits[3])
	}
	if got := l1.MPKI(1000); got != 1 {
		t.Fatalf("MPKI = %v", got)
	}
}

func TestAccessListenerSeesAllAccepted(t *testing.T) {
	cfg := testCfg()
	s := New(cfg)
	l1 := s.NewL1D(cache.LRU{}, nil)
	var events int
	l1.AccessListener = func(cache.Request, bool) { events++ }
	l1.Cache().Fill(cache.Request{Addr: 0})
	l1.AccessLoad(cache.Request{Addr: 0}, 1, 1)    // hit
	l1.AccessLoad(cache.Request{Addr: 4096}, 2, 1) // miss (new)
	l1.AccessLoad(cache.Request{Addr: 4096}, 3, 1) // miss (merge)
	l1.AccessStore(cache.Request{Addr: 8192}, 1)   // store miss
	if events != 4 {
		t.Fatalf("listener events %d, want 4", events)
	}
}
