package workloads

import (
	"fmt"
	"sort"

	"cawa/internal/isa"
	"cawa/internal/memory"
	"cawa/internal/simt"
)

func init() {
	register("b+tree", true, func(p Params) Workload { return newBTree(p) })
}

// btreeOrder is the fan-out of the serialized B+ tree (keys per node).
const btreeOrder = 8

// Serialized node layout, in words:
//
//	[0] nKeys   [1] isLeaf
//	[2 .. 2+ORDER)           keys
//	[2+ORDER .. 3+2*ORDER)   children (byte addresses) or values in leaves
const (
	btreeKeysOff   = 2 * 8 // byte offset of keys
	btreeChildOff  = (2 + btreeOrder) * 8
	btreeNodeWords = 2 + btreeOrder + btreeOrder + 1
)

// btree ports the Rodinia b+tree search kernel: every thread walks the
// tree root-to-leaf for one query key — data-dependent pointer chasing
// with divergent key-scan loops.
//
// Paper input: 1M nodes. Default here: 65536 keys, 32768 queries.
type btree struct {
	base
	keys    []int64
	queries []int64
	rootA   int64
	resA    int64
	kern    *simt.Kernel
	done    bool
}

type buildNode struct {
	leaf     bool
	keys     []int64
	children []*buildNode
	values   []int64
	addr     int64
}

func newBTree(p Params) *btree {
	nKeys := p.scaled(65536)
	nQueries := p.scaled(32768)
	rng := p.rng()

	keySet := make(map[int64]bool, nKeys)
	for len(keySet) < nKeys {
		keySet[int64(rng.Intn(nKeys*8))] = true
	}
	keys := make([]int64, 0, nKeys)
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	queries := make([]int64, nQueries)
	for i := range queries {
		if rng.Intn(4) == 0 {
			queries[i] = int64(rng.Intn(nKeys * 8)) // possibly absent
		} else {
			queries[i] = keys[rng.Intn(len(keys))]
		}
	}

	w := &btree{
		base:    base{name: "b+tree", sensitive: true, mem: memory.New(int64(nKeys*16+nQueries*4)*8 + 1<<21)},
		keys:    keys,
		queries: queries,
	}

	root := buildBPlusTree(keys)
	w.rootA = w.serialize(root)

	m := w.mem
	qA := m.Alloc(nQueries)
	w.resA = m.Alloc(nQueries)
	m.WriteWords(qA, queries)

	const blockDim = 256
	grid := (nQueries + blockDim - 1) / blockDim
	w.kern = mustKernel("btree_search", btreeKernel(), grid, blockDim,
		[]int64{w.resA, qA, w.rootA, int64(nQueries)}, 0)
	return w
}

// buildBPlusTree bulk-loads a B+ tree from sorted keys.
func buildBPlusTree(keys []int64) *buildNode {
	var level []*buildNode
	for i := 0; i < len(keys); i += btreeOrder {
		end := i + btreeOrder
		if end > len(keys) {
			end = len(keys)
		}
		n := &buildNode{leaf: true, keys: append([]int64(nil), keys[i:end]...)}
		for _, k := range n.keys {
			n.values = append(n.values, k*3+1)
		}
		level = append(level, n)
	}
	if len(level) == 0 {
		level = []*buildNode{{leaf: true}}
	}
	for len(level) > 1 {
		var next []*buildNode
		for i := 0; i < len(level); i += btreeOrder + 1 {
			end := i + btreeOrder + 1
			if end > len(level) {
				end = len(level)
			}
			n := &buildNode{children: level[i:end:end]}
			for _, c := range n.children[1:] {
				n.keys = append(n.keys, leftmostKey(c))
			}
			next = append(next, n)
		}
		level = next
	}
	return level[0]
}

func leftmostKey(n *buildNode) int64 {
	for !n.leaf {
		n = n.children[0]
	}
	return n.keys[0]
}

// serialize lays the tree out in workload memory, returning the root's
// byte address.
func (w *btree) serialize(root *buildNode) int64 {
	// Allocate breadth-first so siblings are contiguous.
	queue := []*buildNode{root}
	for qi := 0; qi < len(queue); qi++ {
		n := queue[qi]
		n.addr = w.mem.Alloc(btreeNodeWords)
		queue = append(queue, n.children...)
	}
	for _, n := range queue {
		m := w.mem
		m.Store(n.addr, int64(len(n.keys)))
		leaf := int64(0)
		if n.leaf {
			leaf = 1
		}
		m.Store(n.addr+8, leaf)
		for i, k := range n.keys {
			m.Store(n.addr+btreeKeysOff+int64(i)*8, k)
		}
		if n.leaf {
			for i, v := range n.values {
				m.Store(n.addr+btreeChildOff+int64(i)*8, v)
			}
		} else {
			for i, c := range n.children {
				m.Store(n.addr+btreeChildOff+int64(i)*8, c.addr)
			}
		}
	}
	return root.addr
}

// btreeKernel walks root-to-leaf and scans the leaf for the query key.
func btreeKernel() *isa.Builder {
	b := isa.NewBuilder("btree_search")
	b.SReg(isa.R0, isa.SRGTid)
	b.Param(isa.R1, 3) // nQueries
	guardRange(b, isa.R0, isa.R1, isa.R2)
	b.Param(isa.R3, 1)                        // queries
	ldElem(b, isa.R4, isa.R3, isa.R0, isa.R5) // key
	b.Param(isa.R5, 2)                        // node = root
	b.Label("walk")
	b.Ld(isa.R6, isa.R5, 8) // isLeaf
	b.CBra(isa.R6, "leaf")
	b.Ld(isa.R7, isa.R5, 0) // nKeys
	b.MovI(isa.R8, 0)       // i
	b.Label("scan")
	b.SetGE(isa.R2, isa.R8, isa.R7)
	b.CBra(isa.R2, "descend")
	b.MulI(isa.R9, isa.R8, 8)
	b.Add(isa.R9, isa.R9, isa.R5)
	b.Ld(isa.R10, isa.R9, btreeKeysOff) // separator key i
	b.SetLT(isa.R2, isa.R4, isa.R10)    // key < sep: take child i
	b.CBra(isa.R2, "descend")
	b.AddI(isa.R8, isa.R8, 1)
	b.Bra("scan")
	b.Label("descend")
	b.MulI(isa.R9, isa.R8, 8)
	b.Add(isa.R9, isa.R9, isa.R5)
	b.Ld(isa.R5, isa.R9, btreeChildOff) // node = child[i]
	b.Bra("walk")

	b.Label("leaf")
	b.Ld(isa.R7, isa.R5, 0) // nKeys
	b.MovI(isa.R11, -1)     // result
	b.MovI(isa.R8, 0)
	b.Label("lscan")
	b.SetGE(isa.R2, isa.R8, isa.R7)
	b.CBra(isa.R2, "lend")
	b.MulI(isa.R9, isa.R8, 8)
	b.Add(isa.R9, isa.R9, isa.R5)
	b.Ld(isa.R10, isa.R9, btreeKeysOff)
	b.SetEQ(isa.R2, isa.R4, isa.R10)
	b.CBraZ(isa.R2, "lnext")
	b.Ld(isa.R11, isa.R9, btreeChildOff) // value i
	b.Bra("lend")
	b.Label("lnext")
	b.AddI(isa.R8, isa.R8, 1)
	b.Bra("lscan")
	b.Label("lend")
	b.Param(isa.R12, 0) // results
	stElem(b, isa.R12, isa.R0, isa.R11, isa.R2)
	b.Label("exit")
	b.Exit()
	return b
}

// Next implements Workload.
func (w *btree) Next() (*simt.Kernel, bool) {
	if w.done {
		return nil, false
	}
	w.done = true
	return w.kern, true
}

// Verify implements Workload.
func (w *btree) Verify() error {
	present := make(map[int64]bool, len(w.keys))
	for _, k := range w.keys {
		present[k] = true
	}
	for i, q := range w.queries {
		want := int64(-1)
		if present[q] {
			want = q*3 + 1
		}
		if got := w.mem.Load(w.resA + int64(i)*8); got != want {
			return fmt.Errorf("b+tree: result[%d] (key %d) = %d, want %d", i, q, got, want)
		}
	}
	return nil
}
