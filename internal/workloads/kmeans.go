package workloads

import (
	"fmt"

	"cawa/internal/isa"
	"cawa/internal/memory"
	"cawa/internal/simt"
)

func init() {
	register("kmeans", true, func(p Params) Workload { return newKMeans(p) })
}

// kmeans ports the Rodinia k-means assignment kernel: every thread owns
// one point and scans all K centroids over F features to find the
// nearest. Features are laid out feature-major (x[f*n+i]) as in
// Rodinia, so warp accesses coalesce; the warp's working set
// (32 points x F features = 4KB) times the resident warp count far
// exceeds the 16KB L1D, producing the severe inter-warp cache thrashing
// the paper reports (kmeans speeds up 3.13x under CAWA). The host
// updates centroids between the iterations.
//
// Paper input: 494020 points. Default here: 32768 points, 8 features,
// 8 clusters, 3 assignment iterations.
type kmeans struct {
	base
	n, f, k int
	iters   int

	xA, cA, assignA int64
	points          []float64
	kern            *simt.Kernel
	iter            int

	refAssign []int
}

func newKMeans(p Params) *kmeans {
	n := p.scaled(32768)
	const f, k, iters = 8, 8, 3
	rng := p.rng()

	w := &kmeans{
		base:  base{name: "kmeans", sensitive: true, mem: memory.New(int64(n*f+k*f+n+1024)*8 + 1<<20)},
		n:     n,
		f:     f,
		k:     k,
		iters: iters,
	}
	m := w.mem
	w.xA = m.Alloc(n * f)
	w.cA = m.Alloc(k * f)
	w.assignA = m.Alloc(n)

	// points is indexed feature-major: points[f*n+i].
	w.points = make([]float64, n*f)
	for i := range w.points {
		w.points[i] = rng.Float64() * 100
	}
	m.WriteFloats(w.xA, w.points)
	// Initial centroids (point-major per centroid): the first k points.
	cent := make([]float64, k*f)
	for c := 0; c < k; c++ {
		for ff := 0; ff < f; ff++ {
			cent[c*f+ff] = w.points[ff*n+c]
		}
	}
	m.WriteFloats(w.cA, cent)

	const blockDim = 256
	grid := (n + blockDim - 1) / blockDim
	w.kern = mustKernel("kmeans_assign", kmeansKernel(), grid, blockDim,
		[]int64{w.xA, w.cA, w.assignA, int64(n), int64(f), int64(k)}, 0)

	w.refAssign = w.reference()
	return w
}

// kmeansKernel emits the nearest-centroid assignment.
func kmeansKernel() *isa.Builder {
	b := isa.NewBuilder("kmeans_assign")
	b.SReg(isa.R0, isa.SRGTid)
	b.Param(isa.R1, 3) // n
	guardRange(b, isa.R0, isa.R1, isa.R2)
	b.Param(isa.R3, 0)    // X (feature-major)
	b.Param(isa.R4, 1)    // C
	b.Param(isa.R5, 4)    // f
	b.Param(isa.R6, 5)    // k
	b.MovF(isa.R8, 1e300) // best distance
	b.MovI(isa.R9, -1)    // best cluster
	b.MovI(isa.R10, 0)    // cluster index
	b.Label("kloop")
	b.SetGE(isa.R2, isa.R10, isa.R6)
	b.CBra(isa.R2, "store")
	// R11 = &C[kk*f]
	b.Mul(isa.R11, isa.R10, isa.R5)
	b.MulI(isa.R11, isa.R11, 8)
	b.Add(isa.R11, isa.R11, isa.R4)
	b.MovF(isa.R12, 0) // accumulator
	b.MovI(isa.R13, 0) // feature index
	b.Label("floop")
	b.SetGE(isa.R2, isa.R13, isa.R5)
	b.CBra(isa.R2, "fdone")
	// x = X[f*n + i] (coalesced across the warp)
	b.Mul(isa.R14, isa.R13, isa.R1)
	b.Add(isa.R14, isa.R14, isa.R0)
	b.MulI(isa.R14, isa.R14, 8)
	b.Add(isa.R15, isa.R14, isa.R3)
	b.Ld(isa.R16, isa.R15, 0) // x value
	b.MulI(isa.R14, isa.R13, 8)
	b.Add(isa.R15, isa.R11, isa.R14)
	b.Ld(isa.R17, isa.R15, 0) // centroid value
	b.FSub(isa.R16, isa.R16, isa.R17)
	b.FMad(isa.R12, isa.R16, isa.R16) // acc += d*d
	b.AddI(isa.R13, isa.R13, 1)
	b.Bra("floop")
	b.Label("fdone")
	b.FSetLT(isa.R2, isa.R12, isa.R8)
	b.CBraZ(isa.R2, "skip")
	b.Mov(isa.R8, isa.R12)
	b.Mov(isa.R9, isa.R10)
	b.Label("skip")
	b.AddI(isa.R10, isa.R10, 1)
	b.Bra("kloop")
	b.Label("store")
	b.Param(isa.R18, 2) // assign
	stElem(b, isa.R18, isa.R0, isa.R9, isa.R2)
	b.Label("exit")
	b.Exit()
	return b
}

// Next implements Workload: run the assignment kernel, recomputing
// centroids on the host between iterations (the Rodinia host loop).
func (w *kmeans) Next() (*simt.Kernel, bool) {
	if w.iter >= w.iters {
		return nil, false
	}
	if w.iter > 0 {
		w.updateCentroids()
	}
	w.iter++
	return w.kern, true
}

// updateCentroids averages the points of each cluster from the
// simulated assignment, keeping the previous centroid for empty
// clusters.
func (w *kmeans) updateCentroids() {
	sums := make([]float64, w.k*w.f)
	counts := make([]int, w.k)
	for i := 0; i < w.n; i++ {
		c := int(w.mem.Load(w.assignA + int64(i)*8))
		if c < 0 || c >= w.k {
			continue
		}
		counts[c]++
		for ff := 0; ff < w.f; ff++ {
			sums[c*w.f+ff] += w.points[ff*w.n+i]
		}
	}
	for c := 0; c < w.k; c++ {
		if counts[c] == 0 {
			continue
		}
		for ff := 0; ff < w.f; ff++ {
			w.mem.StoreF(w.cA+int64(c*w.f+ff)*8, sums[c*w.f+ff]/float64(counts[c]))
		}
	}
}

// reference runs the same iterations in plain Go.
func (w *kmeans) reference() []int {
	cent := make([]float64, w.k*w.f)
	for c := 0; c < w.k; c++ {
		for ff := 0; ff < w.f; ff++ {
			cent[c*w.f+ff] = w.points[ff*w.n+c]
		}
	}
	assign := make([]int, w.n)
	for it := 0; it < w.iters; it++ {
		for i := 0; i < w.n; i++ {
			best, bestD := -1, 1e300
			for c := 0; c < w.k; c++ {
				d := 0.0
				for ff := 0; ff < w.f; ff++ {
					diff := w.points[ff*w.n+i] - cent[c*w.f+ff]
					d += diff * diff
				}
				if d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
		}
		if it == w.iters-1 {
			break
		}
		sums := make([]float64, w.k*w.f)
		counts := make([]int, w.k)
		for i := 0; i < w.n; i++ {
			c := assign[i]
			counts[c]++
			for ff := 0; ff < w.f; ff++ {
				sums[c*w.f+ff] += w.points[ff*w.n+i]
			}
		}
		for c := 0; c < w.k; c++ {
			if counts[c] == 0 {
				continue
			}
			for ff := 0; ff < w.f; ff++ {
				cent[c*w.f+ff] = sums[c*w.f+ff] / float64(counts[c])
			}
		}
	}
	return assign
}

// Verify implements Workload.
func (w *kmeans) Verify() error {
	for i := 0; i < w.n; i++ {
		got := int(w.mem.Load(w.assignA + int64(i)*8))
		if got != w.refAssign[i] {
			return fmt.Errorf("kmeans: assign[%d] = %d, want %d", i, got, w.refAssign[i])
		}
	}
	return nil
}
