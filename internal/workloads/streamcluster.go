package workloads

import (
	"fmt"

	"cawa/internal/isa"
	"cawa/internal/memory"
	"cawa/internal/simt"
)

func init() {
	register("strcltr_small", true, func(p Params) Workload {
		return newStreamcluster(p, "strcltr_small", true, 8192, 8, 6)
	})
	register("strcltr_mid", false, func(p Params) Workload {
		return newStreamcluster(p, "strcltr_mid", false, 16384, 16, 10)
	})
}

// streamcluster ports the Parboil/Rodinia streamcluster gain kernel:
// every thread owns one weighted point and evaluates opening each
// candidate center, switching its assignment when the weighted distance
// improves. Features are laid out feature-major (coalesced), and the
// improvement branch diverges per point. The paper evaluates two data
// set sizes with opposite sensitivity classes (Table 2).
type streamcluster struct {
	base
	n, dim, k int
	rounds    int
	round     int

	points  []float64 // feature-major: points[f*n+i]
	weights []float64
	centers [][]float64 // per round: k*dim, point-major

	xA, wA, cA, assignA, costA int64
	kern                       *simt.Kernel
}

func newStreamcluster(p Params, name string, sensitive bool, n, dim, k int) *streamcluster {
	n = p.scaled(n)
	rng := p.rng()
	const rounds = 2
	w := &streamcluster{
		base:   base{name: name, sensitive: sensitive, mem: memory.New(int64(n*dim+n*3+k*dim+1024)*8 + 1<<21)},
		n:      n,
		dim:    dim,
		k:      k,
		rounds: rounds,
	}
	w.points = make([]float64, n*dim)
	for i := range w.points {
		w.points[i] = rng.Float64() * 10
	}
	w.weights = make([]float64, n)
	for i := range w.weights {
		w.weights[i] = 0.5 + rng.Float64()
	}
	w.centers = make([][]float64, rounds)
	for r := range w.centers {
		c := make([]float64, k*dim)
		for i := range c {
			c[i] = rng.Float64() * 10
		}
		w.centers[r] = c
	}

	m := w.mem
	w.xA = m.Alloc(n * dim)
	w.wA = m.Alloc(n)
	w.cA = m.Alloc(k * dim)
	w.assignA = m.Alloc(n)
	w.costA = m.Alloc(n)
	m.WriteFloats(w.xA, w.points)
	m.WriteFloats(w.wA, w.weights)
	for i := 0; i < n; i++ {
		m.Store(w.assignA+int64(i)*8, -1)
		m.StoreF(w.costA+int64(i)*8, 1e300)
	}

	const blockDim = 128
	grid := (n + blockDim - 1) / blockDim
	w.kern = mustKernel(name+"_gain", streamclusterKernel(), grid, blockDim,
		[]int64{w.xA, w.cA, w.wA, w.assignA, w.costA, int64(n), int64(dim), int64(k)}, 0)
	return w
}

func streamclusterKernel() *isa.Builder {
	b := isa.NewBuilder("sc_gain")
	b.SReg(isa.R0, isa.SRGTid)
	b.Param(isa.R1, 5) // n
	guardRange(b, isa.R0, isa.R1, isa.R2)
	b.Param(isa.R3, 0)                          // X (feature-major)
	b.Param(isa.R4, 1)                          // centers
	b.Param(isa.R5, 6)                          // dim
	b.Param(isa.R6, 7)                          // k
	b.Param(isa.R7, 2)                          // weights
	ldElem(b, isa.R8, isa.R7, isa.R0, isa.R2)   // weight
	b.Param(isa.R9, 4)                          // cost
	ldElem(b, isa.R10, isa.R9, isa.R0, isa.R2)  // best cost so far
	b.Param(isa.R11, 3)                         // assign
	ldElem(b, isa.R12, isa.R11, isa.R0, isa.R2) // best center so far
	b.MovI(isa.R13, 0)                          // c
	b.Label("cloop")
	b.SetGE(isa.R2, isa.R13, isa.R6)
	b.CBra(isa.R2, "store")
	// dist over features: X[f*n + i], C[c*dim + f]
	b.MovF(isa.R14, 0)
	b.MovI(isa.R15, 0) // f
	b.Mul(isa.R16, isa.R13, isa.R5)
	b.MulI(isa.R16, isa.R16, 8)
	b.Add(isa.R16, isa.R16, isa.R4) // &C[c*dim]
	b.Label("floop")
	b.SetGE(isa.R2, isa.R15, isa.R5)
	b.CBra(isa.R2, "fdone")
	b.Mul(isa.R17, isa.R15, isa.R1) // f*n
	b.Add(isa.R17, isa.R17, isa.R0)
	b.MulI(isa.R17, isa.R17, 8)
	b.Add(isa.R17, isa.R17, isa.R3)
	b.Ld(isa.R18, isa.R17, 0) // x
	b.MulI(isa.R19, isa.R15, 8)
	b.Add(isa.R19, isa.R19, isa.R16)
	b.Ld(isa.R20, isa.R19, 0) // center coord
	b.FSub(isa.R18, isa.R18, isa.R20)
	b.FMad(isa.R14, isa.R18, isa.R18)
	b.AddI(isa.R15, isa.R15, 1)
	b.Bra("floop")
	b.Label("fdone")
	// weighted cost; switch when it improves (divergent).
	b.FMul(isa.R14, isa.R14, isa.R8)
	b.FSetLT(isa.R2, isa.R14, isa.R10)
	b.CBraZ(isa.R2, "skip")
	b.Mov(isa.R10, isa.R14)
	b.Mov(isa.R12, isa.R13)
	b.Label("skip")
	b.AddI(isa.R13, isa.R13, 1)
	b.Bra("cloop")
	b.Label("store")
	stElem(b, isa.R11, isa.R0, isa.R12, isa.R2)
	stElem(b, isa.R9, isa.R0, isa.R10, isa.R2)
	b.Label("exit")
	b.Exit()
	return b
}

// Next implements Workload: each round installs a new candidate center
// set (the streaming behaviour of the host algorithm) and re-runs the
// gain kernel.
func (w *streamcluster) Next() (*simt.Kernel, bool) {
	if w.round >= w.rounds {
		return nil, false
	}
	w.mem.WriteFloats(w.cA, w.centers[w.round])
	w.round++
	return w.kern, true
}

// Verify implements Workload.
func (w *streamcluster) Verify() error {
	bestCost := make([]float64, w.n)
	bestC := make([]int64, w.n)
	for i := range bestCost {
		bestCost[i] = 1e300
		bestC[i] = -1
	}
	for r := 0; r < w.rounds; r++ {
		cent := w.centers[r]
		for i := 0; i < w.n; i++ {
			for c := 0; c < w.k; c++ {
				d := 0.0
				for f := 0; f < w.dim; f++ {
					diff := w.points[f*w.n+i] - cent[c*w.dim+f]
					d += diff * diff
				}
				cost := d * w.weights[i]
				if cost < bestCost[i] {
					bestCost[i] = cost
					bestC[i] = int64(c)
				}
			}
		}
	}
	for i := 0; i < w.n; i++ {
		if got := w.mem.Load(w.assignA + int64(i)*8); got != bestC[i] {
			return fmt.Errorf("%s: assign[%d] = %d, want %d", w.name, i, got, bestC[i])
		}
	}
	return nil
}
