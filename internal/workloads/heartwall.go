package workloads

import (
	"fmt"
	"math"

	"cawa/internal/isa"
	"cawa/internal/memory"
	"cawa/internal/simt"
)

func init() {
	register("heartwall", true, func(p Params) Workload { return newHeartwall(p) })
}

// heartwall ports the tracking core of the Rodinia heartwall
// application: every thread tracks one sample point by template
// matching — it searches a window around the point for the offset whose
// sum of squared differences (SSD) against the template is minimal,
// with a data-dependent early exit once the partial SSD exceeds the
// best found so far (the source of per-warp imbalance).
//
// Paper input: 656x744 AVI frames. Default here: a 256x256 frame,
// 8192 tracking points, 5x5 search window, 4x4 template.
type heartwall struct {
	base
	imgW, imgH int
	nPoints    int
	tmplW      int
	radius     int

	img   []float64
	tmpl  []float64
	ptsX  []int64
	ptsY  []int64
	imgA  int64
	tmplA int64
	pxA   int64
	pyA   int64
	outA  int64
	kern  *simt.Kernel
	done  bool
}

func newHeartwall(p Params) *heartwall {
	imgW := 256
	imgH := 256
	nPoints := p.scaled(8192)
	const tmplW, radius = 4, 2
	rng := p.rng()

	w := &heartwall{
		base:    base{name: "heartwall", sensitive: true, mem: memory.New(int64(imgW*imgH+nPoints*4+tmplW*tmplW)*8 + 1<<21)},
		imgW:    imgW,
		imgH:    imgH,
		nPoints: nPoints,
		tmplW:   tmplW,
		radius:  radius,
	}
	w.img = make([]float64, imgW*imgH)
	for i := range w.img {
		w.img[i] = rng.Float64() * 255
	}
	w.tmpl = make([]float64, tmplW*tmplW)
	for i := range w.tmpl {
		w.tmpl[i] = rng.Float64() * 255
	}
	w.ptsX = make([]int64, nPoints)
	w.ptsY = make([]int64, nPoints)
	margin := radius + tmplW
	for i := 0; i < nPoints; i++ {
		w.ptsX[i] = int64(margin + rng.Intn(imgW-2*margin))
		w.ptsY[i] = int64(margin + rng.Intn(imgH-2*margin))
	}

	m := w.mem
	w.imgA = m.Alloc(imgW * imgH)
	w.tmplA = m.Alloc(tmplW * tmplW)
	w.pxA = m.Alloc(nPoints)
	w.pyA = m.Alloc(nPoints)
	w.outA = m.Alloc(nPoints)
	m.WriteFloats(w.imgA, w.img)
	m.WriteFloats(w.tmplA, w.tmpl)
	m.WriteWords(w.pxA, w.ptsX)
	m.WriteWords(w.pyA, w.ptsY)

	const blockDim = 256
	grid := (nPoints + blockDim - 1) / blockDim
	w.kern = mustKernel("heartwall_track", heartwallKernel(imgW, tmplW, radius), grid, blockDim,
		[]int64{w.imgA, w.tmplA, w.pxA, w.pyA, w.outA, int64(nPoints)}, 0)
	return w
}

// heartwallKernel: for each offset (dy,dx) in the search window, SSD
// against the template with early exit; emit the encoded best offset.
func heartwallKernel(imgW, tmplW, radius int) *isa.Builder {
	b := isa.NewBuilder("heartwall_track")
	b.SReg(isa.R0, isa.SRGTid)
	b.Param(isa.R1, 5)
	guardRange(b, isa.R0, isa.R1, isa.R2)
	b.Param(isa.R3, 2)
	ldElem(b, isa.R4, isa.R3, isa.R0, isa.R5) // px
	b.Param(isa.R3, 3)
	ldElem(b, isa.R6, isa.R3, isa.R0, isa.R5) // py
	b.Param(isa.R7, 0)                        // image
	b.Param(isa.R8, 1)                        // template
	b.MovF(isa.R9, 1e300)                     // best SSD
	b.MovI(isa.R10, 0)                        // best offset code
	b.MovI(isa.R11, int64(-radius))           // dy
	b.Label("dyloop")
	b.SetGTI(isa.R2, isa.R11, int64(radius))
	b.CBra(isa.R2, "store")
	b.MovI(isa.R12, int64(-radius)) // dx
	b.Label("dxloop")
	b.SetGTI(isa.R2, isa.R12, int64(radius))
	b.CBra(isa.R2, "dynext")
	// SSD over the template with early exit.
	b.MovF(isa.R13, 0) // acc
	b.MovI(isa.R14, 0) // ty
	b.Label("tyloop")
	b.SetGEI(isa.R2, isa.R14, int64(tmplW))
	b.CBra(isa.R2, "cmp")
	b.MovI(isa.R15, 0) // tx
	b.Label("txloop")
	b.SetGEI(isa.R2, isa.R15, int64(tmplW))
	b.CBra(isa.R2, "tynext")
	// iy = py+dy+ty; ix = px+dx+tx
	b.Add(isa.R16, isa.R6, isa.R11)
	b.Add(isa.R16, isa.R16, isa.R14)
	b.Add(isa.R17, isa.R4, isa.R12)
	b.Add(isa.R17, isa.R17, isa.R15)
	b.MulI(isa.R16, isa.R16, int64(imgW))
	b.Add(isa.R16, isa.R16, isa.R17)
	b.MulI(isa.R16, isa.R16, 8)
	b.Add(isa.R16, isa.R16, isa.R7)
	b.Ld(isa.R18, isa.R16, 0) // image pixel
	// template pixel
	b.MulI(isa.R19, isa.R14, int64(tmplW))
	b.Add(isa.R19, isa.R19, isa.R15)
	b.MulI(isa.R19, isa.R19, 8)
	b.Add(isa.R19, isa.R19, isa.R8)
	b.Ld(isa.R20, isa.R19, 0)
	b.FSub(isa.R18, isa.R18, isa.R20)
	b.FMad(isa.R13, isa.R18, isa.R18)
	// Early exit when the partial SSD already exceeds the best.
	b.FSetGE(isa.R2, isa.R13, isa.R9)
	b.CBra(isa.R2, "cmp")
	b.AddI(isa.R15, isa.R15, 1)
	b.Bra("txloop")
	b.Label("tynext")
	b.AddI(isa.R14, isa.R14, 1)
	b.Bra("tyloop")
	b.Label("cmp")
	b.FSetLT(isa.R2, isa.R13, isa.R9)
	b.CBraZ(isa.R2, "dxnext")
	b.Mov(isa.R9, isa.R13)
	// offset code = (dy+radius)*(2r+1) + dx+radius
	b.AddI(isa.R10, isa.R11, int64(radius))
	b.MulI(isa.R10, isa.R10, int64(2*radius+1))
	b.Add(isa.R10, isa.R10, isa.R12)
	b.AddI(isa.R10, isa.R10, int64(radius))
	b.Label("dxnext")
	b.AddI(isa.R12, isa.R12, 1)
	b.Bra("dxloop")
	b.Label("dynext")
	b.AddI(isa.R11, isa.R11, 1)
	b.Bra("dyloop")
	b.Label("store")
	b.Param(isa.R3, 4)
	stElem(b, isa.R3, isa.R0, isa.R10, isa.R2)
	b.Label("exit")
	b.Exit()
	return b
}

// Next implements Workload.
func (w *heartwall) Next() (*simt.Kernel, bool) {
	if w.done {
		return nil, false
	}
	w.done = true
	return w.kern, true
}

// Verify implements Workload: replicate the early-exit search exactly.
func (w *heartwall) Verify() error {
	side := 2*w.radius + 1
	for t := 0; t < w.nPoints; t++ {
		px, py := int(w.ptsX[t]), int(w.ptsY[t])
		best := math.Inf(1)
		bestCode := int64(0)
		for dy := -w.radius; dy <= w.radius; dy++ {
			for dx := -w.radius; dx <= w.radius; dx++ {
				acc := 0.0
				early := false
				for ty := 0; ty < w.tmplW && !early; ty++ {
					for tx := 0; tx < w.tmplW; tx++ {
						iy := py + dy + ty
						ix := px + dx + tx
						d := w.img[iy*w.imgW+ix] - w.tmpl[ty*w.tmplW+tx]
						acc += d * d
						if acc >= best {
							early = true
							break
						}
					}
				}
				if acc < best {
					best = acc
					bestCode = int64((dy+w.radius)*side + dx + w.radius)
				}
			}
		}
		if got := w.mem.Load(w.outA + int64(t)*8); got != bestCode {
			return fmt.Errorf("heartwall: out[%d] = %d, want %d", t, got, bestCode)
		}
	}
	return nil
}
