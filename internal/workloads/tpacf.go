package workloads

import (
	"fmt"

	"cawa/internal/isa"
	"cawa/internal/memory"
	"cawa/internal/simt"
)

func init() {
	register("tpacf", false, func(p Params) Workload { return newTPACF(p) })
}

// tpacfBins is the number of angular bins.
const tpacfBins = 8

// tpacf ports the Parboil two-point angular correlation function: every
// thread correlates one point against all points, binning the dot
// product of the unit vectors by walking the (descending) bin-edge
// table — a short data-dependent divergent loop per pair. Each thread
// accumulates into a private histogram slice; the host reduces them,
// like the per-thread histogramming of the original CUDA kernel.
//
// Paper input: 487x100 points. Default here: 1024 points, 8 bins.
type tpacf struct {
	base
	n                   int
	pts                 []float64 // x,y,z triples
	edges               []float64 // descending cos thresholds, len bins-1
	ptsA, edgesA, histA int64
	kern                *simt.Kernel
	done                bool
}

func newTPACF(p Params) *tpacf {
	n := p.scaled(1024)
	rng := p.rng()
	w := &tpacf{
		base: base{name: "tpacf", sensitive: false, mem: memory.New(int64(n*3+tpacfBins*(n+1)+1024)*8 + 1<<21)},
		n:    n,
	}
	w.pts = make([]float64, n*3)
	for i := 0; i < n; i++ {
		// Random unit vectors.
		var x, y, z, s float64
		for {
			x, y, z = rng.Float64()*2-1, rng.Float64()*2-1, rng.Float64()*2-1
			s = x*x + y*y + z*z
			if s > 1e-6 && s <= 1 {
				break
			}
		}
		w.pts[i*3], w.pts[i*3+1], w.pts[i*3+2] = x, y, z
	}
	w.edges = make([]float64, tpacfBins-1)
	for i := range w.edges {
		// Descending thresholds in (-1, 1).
		w.edges[i] = 1 - float64(i+1)*(2.0/float64(tpacfBins))
	}
	m := w.mem
	w.ptsA = m.Alloc(n * 3)
	w.edgesA = m.Alloc(len(w.edges))
	w.histA = m.Alloc(n * tpacfBins)
	m.WriteFloats(w.ptsA, w.pts)
	m.WriteFloats(w.edgesA, w.edges)

	const blockDim = 64
	grid := (n + blockDim - 1) / blockDim
	w.kern = mustKernel("tpacf_corr", tpacfKernel(), grid, blockDim,
		[]int64{w.ptsA, w.edgesA, w.histA, int64(n)}, 0)
	return w
}

func tpacfKernel() *isa.Builder {
	b := isa.NewBuilder("tpacf_corr")
	b.SReg(isa.R0, isa.SRGTid)
	b.Param(isa.R1, 3) // n
	guardRange(b, isa.R0, isa.R1, isa.R2)
	b.Param(isa.R3, 0) // points
	// My vector.
	b.MulI(isa.R4, isa.R0, 24)
	b.Add(isa.R4, isa.R4, isa.R3)
	b.Ld(isa.R5, isa.R4, 0)
	b.Ld(isa.R6, isa.R4, 8)
	b.Ld(isa.R7, isa.R4, 16)
	b.Param(isa.R8, 1) // edges
	b.Param(isa.R9, 2) // histograms
	// My private histogram base: hist + tid*bins*8.
	b.MulI(isa.R10, isa.R0, int64(tpacfBins)*8)
	b.Add(isa.R10, isa.R10, isa.R9)
	b.MovI(isa.R11, 0) // j
	b.Label("jloop")
	b.SetGE(isa.R2, isa.R11, isa.R1)
	b.CBra(isa.R2, "done")
	b.MulI(isa.R12, isa.R11, 24)
	b.Add(isa.R12, isa.R12, isa.R3)
	b.Ld(isa.R13, isa.R12, 0)
	b.Ld(isa.R14, isa.R12, 8)
	b.Ld(isa.R15, isa.R12, 16)
	// dot = x*xj + y*yj + z*zj
	b.MovF(isa.R16, 0)
	b.FMad(isa.R16, isa.R5, isa.R13)
	b.FMad(isa.R16, isa.R6, isa.R14)
	b.FMad(isa.R16, isa.R7, isa.R15)
	// Walk descending edges until dot >= edge[bin].
	b.MovI(isa.R17, 0) // bin
	b.Label("binloop")
	b.SetGEI(isa.R2, isa.R17, int64(tpacfBins-1))
	b.CBra(isa.R2, "binned")
	ldElem(b, isa.R18, isa.R8, isa.R17, isa.R2)
	b.FSetGE(isa.R2, isa.R16, isa.R18)
	b.CBra(isa.R2, "binned")
	b.AddI(isa.R17, isa.R17, 1)
	b.Bra("binloop")
	b.Label("binned")
	// hist[bin]++ (private region: no races).
	b.MulI(isa.R19, isa.R17, 8)
	b.Add(isa.R19, isa.R19, isa.R10)
	b.Ld(isa.R20, isa.R19, 0)
	b.AddI(isa.R20, isa.R20, 1)
	b.St(isa.R19, 0, isa.R20)
	b.AddI(isa.R11, isa.R11, 1)
	b.Bra("jloop")
	b.Label("done")
	b.Label("exit")
	b.Exit()
	return b
}

// Next implements Workload.
func (w *tpacf) Next() (*simt.Kernel, bool) {
	if w.done {
		return nil, false
	}
	w.done = true
	return w.kern, true
}

// Verify implements Workload: reduce the per-thread histograms and
// compare against the reference correlation.
func (w *tpacf) Verify() error {
	want := make([]int64, tpacfBins)
	for i := 0; i < w.n; i++ {
		for j := 0; j < w.n; j++ {
			dot := 0.0
			dot = w.pts[i*3]*w.pts[j*3] + dot
			dot = w.pts[i*3+1]*w.pts[j*3+1] + dot
			dot = w.pts[i*3+2]*w.pts[j*3+2] + dot
			bin := 0
			for bin < tpacfBins-1 && dot < w.edges[bin] {
				bin++
			}
			want[bin]++
		}
	}
	got := make([]int64, tpacfBins)
	for t := 0; t < w.n; t++ {
		for bin := 0; bin < tpacfBins; bin++ {
			got[bin] += w.mem.Load(w.histA + int64(t*tpacfBins+bin)*8)
		}
	}
	for bin := range want {
		if got[bin] != want[bin] {
			return fmt.Errorf("tpacf: hist[%d] = %d, want %d", bin, got[bin], want[bin])
		}
	}
	return nil
}
