package workloads

import (
	"fmt"
	"math"

	"cawa/internal/isa"
	"cawa/internal/memory"
	"cawa/internal/simt"
)

func init() {
	register("particle", false, func(p Params) Workload { return newParticle(p) })
}

// particle ports the core of the Rodinia particlefilter: a likelihood
// kernel (each thread scores its particle against the observations) and
// a resampling kernel (each thread binary-searches the normalized CDF
// for its quantile). Between the two kernels the host normalizes the
// weights and builds the CDF, as in the original application.
//
// Paper input: 128x128x10 frames. Default here: 4096 particles, 16
// observations.
type particle struct {
	base
	n, nObs int

	pos                        []float64
	obs                        []float64
	posA, obsA, wA, cdfA, outA int64
	k1, k2                     *simt.Kernel
	stage                      int
}

func newParticle(p Params) *particle {
	n := p.scaled(8192)
	const nObs = 16
	rng := p.rng()
	w := &particle{
		base: base{name: "particle", sensitive: false, mem: memory.New(int64(n*4+nObs+1024)*8 + 1<<21)},
		n:    n,
		nObs: nObs,
	}
	w.pos = make([]float64, n)
	for i := range w.pos {
		w.pos[i] = rng.Float64() * 100
	}
	w.obs = make([]float64, nObs)
	for i := range w.obs {
		w.obs[i] = rng.Float64() * 100
	}
	m := w.mem
	w.posA = m.Alloc(n)
	w.obsA = m.Alloc(nObs)
	w.wA = m.Alloc(n)
	w.cdfA = m.Alloc(n)
	w.outA = m.Alloc(n)
	m.WriteFloats(w.posA, w.pos)
	m.WriteFloats(w.obsA, w.obs)

	const blockDim = 256
	grid := (n + blockDim - 1) / blockDim
	w.k1 = mustKernel("particle_likelihood", particleLikelihood(nObs), grid, blockDim,
		[]int64{w.posA, w.obsA, w.wA, int64(n)}, 0)
	w.k2 = mustKernel("particle_resample", particleResample(), grid, blockDim,
		[]int64{w.cdfA, w.posA, w.outA, int64(n)}, 0)
	return w
}

func particleLikelihood(nObs int) *isa.Builder {
	b := isa.NewBuilder("particle_likelihood")
	b.SReg(isa.R0, isa.SRGTid)
	b.Param(isa.R1, 3)
	guardRange(b, isa.R0, isa.R1, isa.R2)
	b.Param(isa.R3, 0)
	ldElem(b, isa.R4, isa.R3, isa.R0, isa.R2) // my position
	b.Param(isa.R5, 1)                        // observations
	b.MovF(isa.R6, 0)                         // sum
	b.MovI(isa.R7, 0)                         // o
	b.Label("oloop")
	b.SetGEI(isa.R2, isa.R7, int64(nObs))
	b.CBra(isa.R2, "odone")
	ldElem(b, isa.R8, isa.R5, isa.R7, isa.R2)
	b.FSub(isa.R8, isa.R8, isa.R4)
	b.FMad(isa.R6, isa.R8, isa.R8)
	b.AddI(isa.R7, isa.R7, 1)
	b.Bra("oloop")
	b.Label("odone")
	// weight = exp(-0.5 * sum / nObs)
	b.MovF(isa.R9, -0.5/float64(nObs))
	b.FMul(isa.R6, isa.R6, isa.R9)
	b.FExp(isa.R6, isa.R6)
	b.Param(isa.R10, 2)
	stElem(b, isa.R10, isa.R0, isa.R6, isa.R2)
	b.Label("exit")
	b.Exit()
	return b
}

func particleResample() *isa.Builder {
	b := isa.NewBuilder("particle_resample")
	b.SReg(isa.R0, isa.SRGTid)
	b.Param(isa.R1, 3) // n
	guardRange(b, isa.R0, isa.R1, isa.R2)
	// u = (tid + 0.5) / n
	b.CvtIF(isa.R3, isa.R0)
	b.MovF(isa.R4, 0.5)
	b.FAdd(isa.R3, isa.R3, isa.R4)
	b.CvtIF(isa.R5, isa.R1)
	b.FDiv(isa.R3, isa.R3, isa.R5) // u
	b.Param(isa.R6, 0)             // cdf
	b.MovI(isa.R7, 0)              // lo
	b.SubI(isa.R8, isa.R1, 1)      // hi = n-1
	b.Label("bsloop")
	b.SetGE(isa.R2, isa.R7, isa.R8)
	b.CBra(isa.R2, "bsdone")
	b.Add(isa.R9, isa.R7, isa.R8)
	b.ShrI(isa.R9, isa.R9, 1) // mid
	ldElem(b, isa.R10, isa.R6, isa.R9, isa.R2)
	b.FSetLT(isa.R11, isa.R10, isa.R3) // cdf[mid] < u
	b.CBraZ(isa.R11, "upper")
	b.AddI(isa.R7, isa.R9, 1) // lo = mid+1
	b.Bra("bsloop")
	b.Label("upper")
	b.Mov(isa.R8, isa.R9) // hi = mid
	b.Bra("bsloop")
	b.Label("bsdone")
	// out[tid] = pos[lo]
	b.Param(isa.R12, 1)
	ldElem(b, isa.R13, isa.R12, isa.R7, isa.R2)
	b.Param(isa.R14, 2)
	stElem(b, isa.R14, isa.R0, isa.R13, isa.R2)
	b.Label("exit")
	b.Exit()
	return b
}

// Next implements Workload.
func (w *particle) Next() (*simt.Kernel, bool) {
	switch w.stage {
	case 0:
		w.stage = 1
		return w.k1, true
	case 1:
		// Host step: normalize weights into a CDF.
		sum := 0.0
		weights := w.mem.ReadFloats(w.wA, w.n)
		for _, v := range weights {
			sum += v
		}
		acc := 0.0
		for i, v := range weights {
			acc += v / sum
			w.mem.StoreF(w.cdfA+int64(i)*8, acc)
		}
		w.stage = 2
		return w.k2, true
	default:
		return nil, false
	}
}

// Verify implements Workload.
func (w *particle) Verify() error {
	// Reference likelihood.
	weights := make([]float64, w.n)
	for i := 0; i < w.n; i++ {
		acc := 0.0
		for _, o := range w.obs {
			d := o - w.pos[i]
			acc = d*d + acc
		}
		weights[i] = math.Exp(acc * (-0.5 / float64(w.nObs)))
		if got := w.mem.LoadF(w.wA + int64(i)*8); got != weights[i] {
			return fmt.Errorf("particle: weight[%d] = %g, want %g", i, got, weights[i])
		}
	}
	// Reference CDF + resample.
	sum := 0.0
	for _, v := range weights {
		sum += v
	}
	cdf := make([]float64, w.n)
	acc := 0.0
	for i, v := range weights {
		acc += v / sum
		cdf[i] = acc
	}
	for i := 0; i < w.n; i++ {
		u := (float64(i) + 0.5) / float64(w.n)
		lo, hi := 0, w.n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		want := w.pos[lo]
		if got := w.mem.LoadF(w.outA + int64(i)*8); got != want {
			return fmt.Errorf("particle: out[%d] = %g, want %g", i, got, want)
		}
	}
	return nil
}
