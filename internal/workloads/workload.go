// Package workloads ports the paper's twelve GPGPU benchmarks (Table 2;
// Rodinia and Parboil suites) to the mini ISA. Each workload owns its
// memory image, produces a sequence of kernel launches (several
// benchmarks are iterative), and verifies the simulated results against
// a plain Go reference implementation.
//
// Input sizes are scaled down from the paper's (documented per
// workload) so cycle-level simulation completes in seconds; every
// working set remains much larger than the 16KB L1D so the cache
// pressure and criticality behaviour the paper studies is preserved.
// The Params.Scale knob restores larger inputs.
package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"cawa/internal/isa"
	"cawa/internal/memory"
	"cawa/internal/simt"
)

// Params tunes workload construction.
type Params struct {
	// Scale multiplies the default problem size (1.0 = default; the
	// paper's sizes are roughly 16-64x).
	Scale float64
	// Seed drives the deterministic input generators.
	Seed int64
}

// DefaultParams returns Scale 1, Seed 1.
func DefaultParams() Params { return Params{Scale: 1, Seed: 1} }

func (p Params) scaled(n int) int {
	if p.Scale <= 0 {
		return n
	}
	v := int(float64(n) * p.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

func (p Params) rng() *rand.Rand { return rand.New(rand.NewSource(p.Seed)) }

// Workload is one benchmark instance. Workloads are single-use: create
// a fresh instance per simulated run.
type Workload interface {
	// Name is the benchmark name as in Table 2.
	Name() string
	// Sensitive reports the paper's Sens/Non-sens classification.
	Sensitive() bool
	// Mem is the memory image kernels execute against.
	Mem() *memory.Memory
	// Next returns the next kernel launch, or ok=false when the
	// application has finished. Iterative benchmarks inspect memory
	// between launches, so Next must be called after the previous
	// kernel completed.
	Next() (k *simt.Kernel, ok bool)
	// Verify checks the simulated results against a Go reference.
	Verify() error
}

// Builder creates a workload.
type Builder func(Params) Workload

type entry struct {
	name      string
	sensitive bool
	build     Builder
}

var registry []entry

func register(name string, sensitive bool, b Builder) {
	for _, e := range registry {
		if e.name == name {
			panic(fmt.Sprintf("workloads: duplicate %q", name))
		}
	}
	registry = append(registry, entry{name, sensitive, b})
	sort.Slice(registry, func(i, j int) bool { return registry[i].name < registry[j].name })
}

// New builds the named workload.
func New(name string, p Params) (Workload, error) {
	for _, e := range registry {
		if e.name == name {
			return e.build(p), nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
}

// Names lists registered workloads, sorted.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}

// Sensitive lists the paper's scheduler/cache sensitive benchmarks.
func Sensitive() []string {
	var out []string
	for _, e := range registry {
		if e.sensitive {
			out = append(out, e.name)
		}
	}
	return out
}

// NonSensitive lists the remaining benchmarks.
func NonSensitive() []string {
	var out []string
	for _, e := range registry {
		if !e.sensitive {
			out = append(out, e.name)
		}
	}
	return out
}

// base embeds the bookkeeping common to all workloads.
type base struct {
	name      string
	sensitive bool
	mem       *memory.Memory
}

func (b *base) Name() string        { return b.name }
func (b *base) Sensitive() bool     { return b.sensitive }
func (b *base) Mem() *memory.Memory { return b.mem }

// Assembly helpers shared by the kernels.

// ldElem emits dst = mem[base + idx*8] using tmp as scratch.
func ldElem(b *isa.Builder, dst, baseR, idx, tmp isa.Reg) {
	b.MulI(tmp, idx, 8)
	b.Add(tmp, tmp, baseR)
	b.Ld(dst, tmp, 0)
}

// stElem emits mem[base + idx*8] = val using tmp as scratch.
func stElem(b *isa.Builder, baseR, idx, val, tmp isa.Reg) {
	b.MulI(tmp, idx, 8)
	b.Add(tmp, tmp, baseR)
	b.St(tmp, 0, val)
}

// guardRange emits the standard "if tid >= n: exit" prologue. tid and n
// must already be loaded; tmp is scratch.
func guardRange(b *isa.Builder, tid, n, tmp isa.Reg) {
	b.SetGE(tmp, tid, n)
	b.CBra(tmp, "exit")
}

// mustKernel builds the kernel or panics; workload programs are static.
func mustKernel(name string, b *isa.Builder, grid, block int, params []int64, sharedWords int) *simt.Kernel {
	k := &simt.Kernel{
		Name:        name,
		Program:     b.MustBuild(),
		GridDim:     grid,
		BlockDim:    block,
		Params:      params,
		SharedWords: sharedWords,
	}
	if err := k.Validate(); err != nil {
		panic(err)
	}
	return k
}
