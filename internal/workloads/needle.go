package workloads

import (
	"fmt"

	"cawa/internal/isa"
	"cawa/internal/memory"
	"cawa/internal/simt"
)

func init() {
	register("needle", true, func(p Params) Workload { return newNeedle(p) })
}

// needle ports Needleman-Wunsch sequence alignment (Rodinia nw): a 2D
// dynamic program processed one anti-diagonal per kernel launch. Early
// and late diagonals have very few cells, so most launches run with one
// or two warps — the warp-parallelism-starved behaviour the paper notes
// makes CPL trivially accurate on needle (Section 5.2, footnote 2).
//
// Paper input: 1024x1024. Default here: 96x96 (191 launches).
type needle struct {
	base
	n       int
	penalty int64
	fA      int64
	refA    int64
	ref     []int64
	diag    int // next anti-diagonal (2..2n)
}

const needleBlockDim = 64

func newNeedle(p Params) *needle {
	n := p.scaled(96)
	rng := p.rng()
	w := &needle{
		base:    base{name: "needle", sensitive: true, mem: memory.New(int64((n+1)*(n+1)*2)*8 + 1<<21)},
		n:       n,
		penalty: 10,
		diag:    2,
	}
	m := w.mem
	w.fA = m.Alloc((n + 1) * (n + 1))
	w.refA = m.Alloc((n + 1) * (n + 1))
	w.ref = make([]int64, (n+1)*(n+1))
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			w.ref[i*(n+1)+j] = int64(rng.Intn(21) - 10)
		}
	}
	m.WriteWords(w.refA, w.ref)
	// Border initialization: F[i][0] = F[0][i] = -i*penalty.
	for i := 0; i <= n; i++ {
		m.Store(w.fA+int64(i*(n+1))*8, int64(i)*-w.penalty)
		m.Store(w.fA+int64(i)*8, int64(i)*-w.penalty)
	}
	return w
}

// needleKernel computes all interior cells of one anti-diagonal d:
// cell (i, d-i) for i in [lo, lo+count).
func needleKernel(n int, fA, refA, penalty int64, d, lo, count int) *simt.Kernel {
	b := isa.NewBuilder("needle_diag")
	b.SReg(isa.R0, isa.SRGTid)
	b.Param(isa.R1, 0) // count
	guardRange(b, isa.R0, isa.R1, isa.R2)
	b.Param(isa.R3, 1)            // lo
	b.Add(isa.R4, isa.R0, isa.R3) // i
	b.Param(isa.R5, 2)            // d
	b.Sub(isa.R6, isa.R5, isa.R4) // j
	// k = i*(n+1)+j
	b.MulI(isa.R7, isa.R4, int64(n+1))
	b.Add(isa.R7, isa.R7, isa.R6)
	b.Param(isa.R8, 3) // F base
	// addresses: diag = k-(n+1)-1, up = k-(n+1), left = k-1
	b.MulI(isa.R9, isa.R7, 8)
	b.Add(isa.R9, isa.R9, isa.R8)          // &F[k]
	b.Ld(isa.R10, isa.R9, int64(-(n+2))*8) // F[i-1][j-1]
	b.Ld(isa.R11, isa.R9, int64(-(n+1))*8) // F[i-1][j]
	b.Ld(isa.R12, isa.R9, -8)              // F[i][j-1]
	b.Param(isa.R13, 4)                    // ref base
	b.MulI(isa.R14, isa.R7, 8)
	b.Add(isa.R14, isa.R14, isa.R13)
	b.Ld(isa.R15, isa.R14, 0) // ref[k]
	b.Add(isa.R10, isa.R10, isa.R15)
	b.Param(isa.R16, 5) // penalty
	b.Sub(isa.R11, isa.R11, isa.R16)
	b.Sub(isa.R12, isa.R12, isa.R16)
	b.Max(isa.R10, isa.R10, isa.R11)
	b.Max(isa.R10, isa.R10, isa.R12)
	b.St(isa.R9, 0, isa.R10)
	b.Label("exit")
	b.Exit()
	return mustKernel("needle_diag", b,
		(count+needleBlockDim-1)/needleBlockDim, needleBlockDim,
		[]int64{int64(count), int64(lo), int64(d), fA, refA, penalty}, 0)
}

// Next implements Workload: one launch per anti-diagonal.
func (w *needle) Next() (*simt.Kernel, bool) {
	if w.diag > 2*w.n {
		return nil, false
	}
	d := w.diag
	w.diag++
	lo := 1
	if d-w.n > 1 {
		lo = d - w.n
	}
	hi := d - 1
	if hi > w.n {
		hi = w.n
	}
	return needleKernel(w.n, w.fA, w.refA, w.penalty, d, lo, hi-lo+1), true
}

// Verify implements Workload.
func (w *needle) Verify() error {
	n := w.n
	f := make([]int64, (n+1)*(n+1))
	for i := 0; i <= n; i++ {
		f[i*(n+1)] = int64(i) * -w.penalty
		f[i] = int64(i) * -w.penalty
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			k := i*(n+1) + j
			v := f[k-(n+1)-1] + w.ref[k]
			if up := f[k-(n+1)] - w.penalty; up > v {
				v = up
			}
			if left := f[k-1] - w.penalty; left > v {
				v = left
			}
			f[k] = v
		}
	}
	for k := range f {
		if got := w.mem.Load(w.fA + int64(k)*8); got != f[k] {
			return fmt.Errorf("needle: F[%d] = %d, want %d", k, got, f[k])
		}
	}
	return nil
}
