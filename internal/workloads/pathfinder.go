package workloads

import (
	"fmt"

	"cawa/internal/isa"
	"cawa/internal/memory"
	"cawa/internal/simt"
)

func init() {
	register("pathfinder", false, func(p Params) Workload { return newPathfinder(p) })
}

// pathfinder ports the Rodinia pathfinder dynamic program: row by row,
// every thread updates one column with the minimum of its three upper
// neighbours plus the wall cost. Row edges branch, everything else is
// coalesced and regular (Table 2: Non-sens). The host swaps the source
// and destination rows between launches.
//
// Paper input: 100000 columns. Default here: 8192 columns x 16 rows.
type pathfinder struct {
	base
	cols, rows int
	wall       []int64 // wall[r*cols + c]
	wallA      int64
	bufA       [2]int64
	row        int
	cur        int // index of the source buffer
}

func newPathfinder(p Params) *pathfinder {
	cols := p.scaled(8192)
	const rows = 16
	rng := p.rng()
	w := &pathfinder{
		base: base{name: "pathfinder", sensitive: false, mem: memory.New(int64(cols*(rows+2)+1024)*8 + 1<<21)},
		cols: cols,
		rows: rows,
	}
	w.wall = make([]int64, rows*cols)
	for i := range w.wall {
		w.wall[i] = int64(rng.Intn(10))
	}
	m := w.mem
	w.wallA = m.Alloc(rows * cols)
	w.bufA[0] = m.Alloc(cols)
	w.bufA[1] = m.Alloc(cols)
	m.WriteWords(w.wallA, w.wall)
	// Row 0 initializes the source buffer.
	m.WriteWords(w.bufA[0], w.wall[:cols])
	w.row = 1
	return w
}

func pathfinderKernel(cols int, wallA, srcA, dstA int64, row int) *simt.Kernel {
	b := isa.NewBuilder("pathfinder_row")
	b.SReg(isa.R0, isa.SRGTid)
	b.Param(isa.R1, 0) // cols
	guardRange(b, isa.R0, isa.R1, isa.R2)
	b.Param(isa.R3, 1)                        // src
	ldElem(b, isa.R4, isa.R3, isa.R0, isa.R2) // src[c]
	// left neighbour (clamped)
	b.SetEQI(isa.R2, isa.R0, 0)
	b.CBra(isa.R2, "noleft")
	b.SubI(isa.R5, isa.R0, 1)
	ldElem(b, isa.R6, isa.R3, isa.R5, isa.R2)
	b.Min(isa.R4, isa.R4, isa.R6)
	b.Label("noleft")
	// right neighbour (clamped)
	b.SubI(isa.R7, isa.R1, 1)
	b.SetEQ(isa.R2, isa.R0, isa.R7)
	b.CBra(isa.R2, "noright")
	b.AddI(isa.R5, isa.R0, 1)
	ldElem(b, isa.R6, isa.R3, isa.R5, isa.R2)
	b.Min(isa.R4, isa.R4, isa.R6)
	b.Label("noright")
	// dst[c] = wall[row*cols + c] + min
	b.Param(isa.R8, 2) // wall row base
	ldElem(b, isa.R9, isa.R8, isa.R0, isa.R2)
	b.Add(isa.R4, isa.R4, isa.R9)
	b.Param(isa.R10, 3) // dst
	stElem(b, isa.R10, isa.R0, isa.R4, isa.R2)
	b.Label("exit")
	b.Exit()
	const blockDim = 256
	return mustKernel("pathfinder_row", b, (cols+blockDim-1)/blockDim, blockDim,
		[]int64{int64(cols), srcA, wallA + int64(row*cols)*8, dstA}, 0)
}

// Next implements Workload: one launch per DP row.
func (w *pathfinder) Next() (*simt.Kernel, bool) {
	if w.row >= w.rows {
		return nil, false
	}
	src := w.bufA[w.cur]
	dst := w.bufA[1-w.cur]
	k := pathfinderKernel(w.cols, w.wallA, src, dst, w.row)
	w.row++
	w.cur = 1 - w.cur
	return k, true
}

// Verify implements Workload.
func (w *pathfinder) Verify() error {
	prev := append([]int64(nil), w.wall[:w.cols]...)
	next := make([]int64, w.cols)
	for r := 1; r < w.rows; r++ {
		for c := 0; c < w.cols; c++ {
			v := prev[c]
			if c > 0 && prev[c-1] < v {
				v = prev[c-1]
			}
			if c < w.cols-1 && prev[c+1] < v {
				v = prev[c+1]
			}
			next[c] = v + w.wall[r*w.cols+c]
		}
		prev, next = next, prev
	}
	final := w.bufA[w.cur]
	for c := 0; c < w.cols; c++ {
		if got := w.mem.Load(final + int64(c)*8); got != prev[c] {
			return fmt.Errorf("pathfinder: result[%d] = %d, want %d", c, got, prev[c])
		}
	}
	return nil
}
