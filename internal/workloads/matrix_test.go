package workloads_test

import (
	"testing"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/harness"
	"cawa/internal/workloads"
)

// TestSchedulerWorkloadMatrix verifies functional correctness of a
// representative workload subset under every scheduler and cache
// combination: timing policies must never change results.
func TestSchedulerWorkloadMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix is slow")
	}
	apps := []string{"bfs", "kmeans", "needle", "backprop", "tpacf"}
	systems := []core.SystemConfig{
		{Scheduler: "lrr"},
		{Scheduler: "gto"},
		{Scheduler: "2lvl"},
		{Scheduler: "gcaws", CPL: true},
		{Scheduler: "lrr", CPL: true, CACP: true},
		{Scheduler: "gto", CPL: true, CACP: true},
		{Scheduler: "2lvl", CPL: true, CACP: true},
		core.CAWA(),
	}
	for _, app := range apps {
		for _, sc := range systems {
			app, sc := app, sc
			t.Run(app+"/"+sc.Label(), func(t *testing.T) {
				t.Parallel()
				_, err := harness.Run(harness.RunOptions{
					Workload: app,
					Params:   workloads.Params{Scale: 0.1, Seed: 11},
					System:   sc,
					Config:   config.Small(),
				})
				if err != nil {
					t.Fatalf("%s on %s: %v", app, sc.Label(), err)
				}
			})
		}
	}
}

// TestOracleCAWSMatrix verifies the oracle-driven scheduler end to end:
// profile under the baseline, then re-run under CAWS.
func TestOracleCAWSMatrix(t *testing.T) {
	s := harness.NewSession(config.Small(), workloads.Params{Scale: 0.1, Seed: 11})
	for _, app := range []string{"bfs", "needle"} {
		oracle, err := s.OracleFor(app)
		if err != nil {
			t.Fatalf("profile %s: %v", app, err)
		}
		if _, err := s.Run(app, core.SystemConfig{Scheduler: "caws", Oracle: oracle}); err != nil {
			t.Fatalf("caws %s: %v", app, err)
		}
	}
}

// TestSeedsChangeInputs: different seeds must produce different
// workloads (guards against frozen generators).
func TestSeedsChangeInputs(t *testing.T) {
	r1, err := harness.Run(harness.RunOptions{
		Workload: "bfs", Params: workloads.Params{Scale: 0.05, Seed: 1},
		System: core.Baseline(), Config: config.Small(),
	})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := harness.Run(harness.RunOptions{
		Workload: "bfs", Params: workloads.Params{Scale: 0.05, Seed: 2},
		System: core.Baseline(), Config: config.Small(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Agg.Cycles == r2.Agg.Cycles && r1.Agg.Instructions == r2.Agg.Instructions {
		t.Fatal("different seeds produced identical executions")
	}
}

// TestScaleChangesSize: the Scale knob must actually grow the problem.
func TestScaleChangesSize(t *testing.T) {
	small, err := harness.Run(harness.RunOptions{
		Workload: "kmeans", Params: workloads.Params{Scale: 0.05, Seed: 1},
		System: core.Baseline(), Config: config.Small(),
	})
	if err != nil {
		t.Fatal(err)
	}
	big, err := harness.Run(harness.RunOptions{
		Workload: "kmeans", Params: workloads.Params{Scale: 0.1, Seed: 1},
		System: core.Baseline(), Config: config.Small(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if big.Agg.Instructions <= small.Agg.Instructions {
		t.Fatalf("scale 0.1 (%d instrs) not larger than 0.05 (%d)",
			big.Agg.Instructions, small.Agg.Instructions)
	}
}
