package workloads

import (
	"fmt"
	"math"

	"cawa/internal/isa"
	"cawa/internal/memory"
	"cawa/internal/simt"
)

func init() {
	register("backprop", false, func(p Params) Workload { return newBackprop(p) })
}

// backprop ports the Rodinia backprop forward-pass kernel: one block
// per hidden unit, threads strided over the input layer computing
// partial weighted sums, a shared-memory tree reduction with barriers,
// and a sigmoid applied by thread 0. Regular control flow and coalesced
// weights make it criticality-insensitive (Table 2: Non-sens).
//
// Paper input: 65536 input units. Default here: 4096 inputs x 128
// hidden units.
type backprop struct {
	base
	nIn, nHid int
	blockDim  int

	in            []float64
	weights       []float64 // w[i*nHid + j]
	inA, wA, outA int64
	kern          *simt.Kernel
	done          bool
}

func newBackprop(p Params) *backprop {
	nIn := p.scaled(4096)
	const nHid = 128
	const blockDim = 256
	rng := p.rng()
	w := &backprop{
		base:     base{name: "backprop", sensitive: false, mem: memory.New(int64(nIn*nHid+nIn+nHid+1024)*8 + 1<<21)},
		nIn:      nIn,
		nHid:     nHid,
		blockDim: blockDim,
	}
	w.in = make([]float64, nIn)
	for i := range w.in {
		w.in[i] = rng.Float64()*2 - 1
	}
	w.weights = make([]float64, nIn*nHid)
	for i := range w.weights {
		w.weights[i] = rng.Float64()*0.2 - 0.1
	}
	m := w.mem
	w.inA = m.Alloc(nIn)
	w.wA = m.Alloc(nIn * nHid)
	w.outA = m.Alloc(nHid)
	m.WriteFloats(w.inA, w.in)
	m.WriteFloats(w.wA, w.weights)

	w.kern = mustKernel("backprop_fwd", backpropKernel(nIn, nHid, blockDim), nHid, blockDim,
		[]int64{w.inA, w.wA, w.outA}, blockDim)
	return w
}

func backpropKernel(nIn, nHid, blockDim int) *isa.Builder {
	b := isa.NewBuilder("backprop_fwd")
	b.SReg(isa.R0, isa.SRTid)   // t
	b.SReg(isa.R1, isa.SRCtaid) // hidden unit j
	b.Param(isa.R3, 0)          // in
	b.Param(isa.R4, 1)          // weights
	// partial = sum over i = t, t+B, ... of in[i]*w[i*nHid+j]
	b.MovF(isa.R5, 0)
	b.Mov(isa.R6, isa.R0) // i
	b.Label("iloop")
	b.SetGEI(isa.R2, isa.R6, int64(nIn))
	b.CBra(isa.R2, "idone")
	ldElem(b, isa.R7, isa.R3, isa.R6, isa.R2) // in[i]
	b.MulI(isa.R8, isa.R6, int64(nHid))
	b.Add(isa.R8, isa.R8, isa.R1)
	b.MulI(isa.R8, isa.R8, 8)
	b.Add(isa.R8, isa.R8, isa.R4)
	b.Ld(isa.R9, isa.R8, 0) // w[i][j]
	b.FMad(isa.R5, isa.R7, isa.R9)
	b.AddI(isa.R6, isa.R6, int64(blockDim))
	b.Bra("iloop")
	b.Label("idone")
	// shared[t] = partial
	b.MulI(isa.R10, isa.R0, 8)
	b.StS(isa.R10, 0, isa.R5)
	b.Bar()
	// Tree reduction: for s = B/2 .. 1: if t < s: sh[t] += sh[t+s]; bar.
	b.MovI(isa.R11, int64(blockDim/2))
	b.Label("redloop")
	b.CBraZ(isa.R11, "reddone")
	b.SetLT(isa.R2, isa.R0, isa.R11)
	b.CBraZ(isa.R2, "noadd")
	b.LdS(isa.R12, isa.R10, 0) // sh[t]
	b.Add(isa.R13, isa.R0, isa.R11)
	b.MulI(isa.R13, isa.R13, 8)
	b.LdS(isa.R14, isa.R13, 0) // sh[t+s]
	b.FAdd(isa.R12, isa.R12, isa.R14)
	b.StS(isa.R10, 0, isa.R12)
	b.Label("noadd")
	b.Bar()
	b.ShrI(isa.R11, isa.R11, 1)
	b.Bra("redloop")
	b.Label("reddone")
	// Thread 0 applies the sigmoid and stores out[j].
	b.CBra(isa.R0, "exit")
	b.MovI(isa.R15, 0)
	b.LdS(isa.R16, isa.R15, 0)
	b.FNeg(isa.R16, isa.R16)
	b.FExp(isa.R16, isa.R16)
	b.MovF(isa.R17, 1)
	b.FAdd(isa.R16, isa.R16, isa.R17)
	b.FDiv(isa.R16, isa.R17, isa.R16) // 1/(1+exp(-x))
	b.Param(isa.R18, 2)
	stElem(b, isa.R18, isa.R1, isa.R16, isa.R2)
	b.Label("exit")
	b.Exit()
	return b
}

// Next implements Workload.
func (w *backprop) Next() (*simt.Kernel, bool) {
	if w.done {
		return nil, false
	}
	w.done = true
	return w.kern, true
}

// Verify implements Workload: replicate the strided partials and the
// pairwise tree reduction so float results match bit for bit.
func (w *backprop) Verify() error {
	for j := 0; j < w.nHid; j++ {
		partial := make([]float64, w.blockDim)
		for t := 0; t < w.blockDim; t++ {
			acc := 0.0
			for i := t; i < w.nIn; i += w.blockDim {
				acc = w.in[i]*w.weights[i*w.nHid+j] + acc
			}
			partial[t] = acc
		}
		for s := w.blockDim / 2; s > 0; s /= 2 {
			for t := 0; t < s; t++ {
				partial[t] += partial[t+s]
			}
		}
		want := 1 / (1 + math.Exp(-partial[0]))
		if got := w.mem.LoadF(w.outA + int64(j)*8); got != want {
			return fmt.Errorf("backprop: out[%d] = %g, want %g", j, got, want)
		}
	}
	return nil
}
