package workloads_test

import (
	"testing"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/harness"
	"cawa/internal/workloads"
)

// smallParams shrinks workloads so the full matrix stays fast in tests.
func smallParams() workloads.Params {
	return workloads.Params{Scale: 0.25, Seed: 7}
}

// TestAllWorkloadsVerifyBaseline runs every registered workload to
// completion on the round-robin baseline and checks results against the
// Go references.
func TestAllWorkloadsVerifyBaseline(t *testing.T) {
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := harness.Run(harness.RunOptions{
				Workload: name,
				Params:   smallParams(),
				System:   core.Baseline(),
				Config:   config.Small(),
			})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Agg.Instructions == 0 {
				t.Fatalf("no instructions executed")
			}
			t.Logf("%s: %s (launches=%d)", name, &res.Agg, res.Launches)
		})
	}
}

// TestAllWorkloadsVerifyCAWA runs every workload under the full CAWA
// design point: the coordinated scheduler and cache prioritization must
// never change functional results.
func TestAllWorkloadsVerifyCAWA(t *testing.T) {
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := harness.Run(harness.RunOptions{
				Workload: name,
				Params:   smallParams(),
				System:   core.CAWA(),
				Config:   config.Small(),
			})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			t.Logf("%s: %s", name, &res.Agg)
		})
	}
}
