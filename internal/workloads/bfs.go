package workloads

import (
	"fmt"

	"cawa/internal/isa"
	"cawa/internal/memory"
	"cawa/internal/simt"
)

func init() {
	register("bfs", true, func(p Params) Workload { return newBFS(p, false) })
	register("bfs-balanced", true, func(p Params) Workload { return newBFS(p, true) })
}

// bfs ports the Rodinia breadth-first search (Algorithm 1 of the
// paper): an iterative frontier expansion with two kernels per level.
// The default graph has skewed degrees (10% hub nodes), producing the
// workload imbalance of Section 2.2.1. The bfs-balanced variant builds
// a complete binary tree, isolating diverging-branch-induced disparity
// (Section 2.2.2, Figure 2b).
//
// Paper input: 65536 nodes. Default here: 32768 nodes (scale 2 restores
// the paper's size).
type bfs struct {
	base
	n     int
	rowA  int64 // CSR row offsets, n+1 entries
	edgeA int64
	maskA int64 // frontier mask
	updA  int64 // updating mask
	visA  int64
	costA int64
	overA int64

	k1, k2 *simt.Kernel
	stage  int
	iter   int
	maxIt  int

	rows  []int
	edges []int
}

const bfsBlockDim = 512 // 16 warps per block, as in the paper's Figure 12

func newBFS(p Params, balanced bool) *bfs {
	n := p.scaled(32768)
	rng := p.rng()

	// Build the graph in CSR form.
	var adj [][]int
	if balanced {
		// Complete binary tree: every node has exactly two children.
		adj = make([][]int, n)
		for i := 0; i < n; i++ {
			for c := 2*i + 1; c <= 2*i+2 && c < n; c++ {
				adj[i] = append(adj[i], c)
			}
		}
	} else {
		adj = make([][]int, n)
		for i := 0; i < n; i++ {
			deg := 1 + rng.Intn(3)
			if rng.Intn(10) == 0 {
				deg = 16 + rng.Intn(48) // hub node
			}
			for d := 0; d < deg; d++ {
				adj[i] = append(adj[i], rng.Intn(n))
			}
		}
		// Backbone chain keeps every node reachable from the source.
		for i := 0; i+1 < n; i++ {
			adj[i] = append(adj[i], i+1)
		}
	}

	rows := make([]int, n+1)
	var edges []int
	for i, nb := range adj {
		rows[i] = len(edges)
		edges = append(edges, nb...)
		_ = i
	}
	rows[n] = len(edges)

	memBytes := int64(n*6+len(edges)+64) * 8 * 2
	w := &bfs{
		base:  base{name: name(balanced), sensitive: true, mem: memory.New(memBytes + 1<<20)},
		n:     n,
		rows:  rows,
		edges: edges,
		maxIt: 4 * n,
	}
	m := w.mem
	w.rowA = m.Alloc(n + 1)
	w.edgeA = m.Alloc(maxInt(len(edges), 1))
	w.maskA = m.Alloc(n)
	w.updA = m.Alloc(n)
	w.visA = m.Alloc(n)
	w.costA = m.Alloc(n)
	w.overA = m.Alloc(1)

	for i, r := range rows {
		m.Store(w.rowA+int64(i)*8, int64(r))
	}
	for i, e := range edges {
		m.Store(w.edgeA+int64(i)*8, int64(e))
	}
	m.Store(w.maskA, 1) // source node 0 in frontier
	m.Store(w.visA, 1)

	grid := (n + bfsBlockDim - 1) / bfsBlockDim
	w.k1 = mustKernel("bfs_k1", bfsKernel1(), grid, bfsBlockDim,
		[]int64{w.rowA, w.edgeA, w.maskA, w.updA, w.visA, w.costA, int64(n)}, 0)
	w.k2 = mustKernel("bfs_k2", bfsKernel2(), grid, bfsBlockDim,
		[]int64{w.maskA, w.updA, w.visA, w.overA, int64(n)}, 0)
	return w
}

func name(balanced bool) string {
	if balanced {
		return "bfs-balanced"
	}
	return "bfs"
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// bfsKernel1 expands the frontier: for every masked node, visit its
// neighbours, setting their cost and updating mask (Algorithm 1).
func bfsKernel1() *isa.Builder {
	b := isa.NewBuilder("bfs_k1")
	b.SReg(isa.R0, isa.SRGTid)
	b.Param(isa.R1, 6) // n
	guardRange(b, isa.R0, isa.R1, isa.R2)
	b.Param(isa.R3, 2) // graph mask
	ldElem(b, isa.R4, isa.R3, isa.R0, isa.R5)
	b.CBraZ(isa.R4, "exit") // not in frontier
	b.MovI(isa.R6, 0)
	stElem(b, isa.R3, isa.R0, isa.R6, isa.R5) // mask[tid] = 0
	b.Param(isa.R7, 0)                        // row offsets
	ldElem(b, isa.R8, isa.R7, isa.R0, isa.R5) // i = rows[tid]
	b.AddI(isa.R10, isa.R0, 1)
	ldElem(b, isa.R9, isa.R7, isa.R10, isa.R5) // end = rows[tid+1]
	b.Param(isa.R12, 5)                        // cost
	ldElem(b, isa.R11, isa.R12, isa.R0, isa.R5)
	b.AddI(isa.R11, isa.R11, 1) // my cost + 1
	b.Param(isa.R13, 1)         // edges
	b.Param(isa.R14, 4)         // visited
	b.Param(isa.R15, 3)         // updating mask
	b.MovI(isa.R18, 1)
	b.Label("loop")
	b.SetGE(isa.R2, isa.R8, isa.R9)
	b.CBra(isa.R2, "exit")
	ldElem(b, isa.R16, isa.R13, isa.R8, isa.R5) // id = edges[i]
	ldElem(b, isa.R17, isa.R14, isa.R16, isa.R5)
	b.CBra(isa.R17, "skip")                      // already visited: non-child node
	stElem(b, isa.R12, isa.R16, isa.R11, isa.R5) // cost[id] = cost[tid]+1
	stElem(b, isa.R15, isa.R16, isa.R18, isa.R5) // updating[id] = 1
	b.Label("skip")
	b.AddI(isa.R8, isa.R8, 1)
	b.Bra("loop")
	b.Label("exit")
	b.Exit()
	return b
}

// bfsKernel2 promotes updated nodes into the next frontier and raises
// the continuation flag.
func bfsKernel2() *isa.Builder {
	b := isa.NewBuilder("bfs_k2")
	b.SReg(isa.R0, isa.SRGTid)
	b.Param(isa.R1, 4) // n
	guardRange(b, isa.R0, isa.R1, isa.R2)
	b.Param(isa.R3, 1) // updating mask
	ldElem(b, isa.R4, isa.R3, isa.R0, isa.R5)
	b.CBraZ(isa.R4, "exit")
	b.MovI(isa.R6, 1)
	b.Param(isa.R7, 0) // graph mask
	stElem(b, isa.R7, isa.R0, isa.R6, isa.R5)
	b.Param(isa.R8, 2) // visited
	stElem(b, isa.R8, isa.R0, isa.R6, isa.R5)
	b.Param(isa.R9, 3) // over flag
	b.St(isa.R9, 0, isa.R6)
	b.MovI(isa.R10, 0)
	stElem(b, isa.R3, isa.R0, isa.R10, isa.R5)
	b.Label("exit")
	b.Exit()
	return b
}

// Next implements Workload: k1, k2, then repeat while the over flag was
// raised.
func (w *bfs) Next() (*simt.Kernel, bool) {
	if w.iter >= w.maxIt {
		return nil, false
	}
	if w.stage == 0 {
		if w.iter > 0 && w.mem.Load(w.overA) == 0 {
			return nil, false
		}
		w.mem.Store(w.overA, 0)
		w.stage = 1
		return w.k1, true
	}
	w.stage = 0
	w.iter++
	return w.k2, true
}

// Verify implements Workload: simulated costs must equal BFS levels.
func (w *bfs) Verify() error {
	dist := make([]int, w.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	queue := []int{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range w.edges[w.rows[u]:w.rows[u+1]] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	for i := 0; i < w.n; i++ {
		want := int64(dist[i])
		if dist[i] < 0 {
			want = 0 // unreached nodes keep their initial cost
		}
		if got := w.mem.Load(w.costA + int64(i)*8); got != want {
			return fmt.Errorf("bfs: cost[%d] = %d, want %d", i, got, want)
		}
	}
	return nil
}
