package workloads

import (
	"testing"

	"cawa/internal/isa"
)

func TestRegistryCategories(t *testing.T) {
	names := Names()
	if len(names) != 13 { // 12 paper benchmarks + bfs-balanced variant
		t.Fatalf("registered %d workloads: %v", len(names), names)
	}
	sens, nons := Sensitive(), NonSensitive()
	if len(sens)+len(nons) != len(names) {
		t.Fatal("categories do not partition the registry")
	}
	for _, want := range []string{"bfs", "b+tree", "heartwall", "kmeans", "needle", "srad_1", "strcltr_small", "bfs-balanced"} {
		found := false
		for _, s := range sens {
			if s == want {
				found = true
			}
		}
		if !found {
			t.Errorf("%s not classified Sens", want)
		}
	}
	if _, err := New("bogus", DefaultParams()); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestParamsScaling(t *testing.T) {
	p := Params{Scale: 0.5}
	if got := p.scaled(100); got != 50 {
		t.Fatalf("scaled %d", got)
	}
	if got := (Params{}).scaled(100); got != 100 {
		t.Fatalf("zero-scale default %d", got)
	}
	if got := (Params{Scale: 0.0001}).scaled(100); got != 1 {
		t.Fatalf("floor %d", got)
	}
	// Determinism: same seed, same stream.
	a, b := (Params{Seed: 5}).rng(), (Params{Seed: 5}).rng()
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("seeded generators diverge")
		}
	}
}

func TestBTreeBulkLoadInvariants(t *testing.T) {
	keys := make([]int64, 1000)
	for i := range keys {
		keys[i] = int64(i * 3)
	}
	root := buildBPlusTree(keys)

	var walk func(n *buildNode, lo, hi int64, depth int) (int, int)
	leafDepth := -1
	count := 0
	walk = func(n *buildNode, lo, hi int64, depth int) (int, int) {
		if len(n.keys) > btreeOrder {
			t.Fatalf("node overflow: %d keys", len(n.keys))
		}
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i-1] >= n.keys[i] {
				t.Fatal("keys not strictly sorted in node")
			}
		}
		for _, k := range n.keys {
			if k < lo || k >= hi {
				t.Fatalf("key %d outside range [%d,%d)", k, lo, hi)
			}
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				t.Fatalf("unbalanced leaves: %d vs %d", leafDepth, depth)
			}
			count += len(n.keys)
			if len(n.values) != len(n.keys) {
				t.Fatal("leaf values missing")
			}
			return depth, depth
		}
		if len(n.children) != len(n.keys)+1 {
			t.Fatalf("internal node: %d keys, %d children", len(n.keys), len(n.children))
		}
		for i, c := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.keys[i-1]
			}
			if i < len(n.keys) {
				chi = n.keys[i]
			}
			walk(c, clo, chi, depth+1)
		}
		return depth, depth
	}
	walk(root, -1<<62, 1<<62, 0)
	if count != len(keys) {
		t.Fatalf("tree holds %d keys, want %d", count, len(keys))
	}
}

func TestBFSGraphShape(t *testing.T) {
	w := newBFS(Params{Scale: 0.05, Seed: 2}, false)
	if w.rows[len(w.rows)-1] != len(w.edges) {
		t.Fatal("CSR rows do not cover edges")
	}
	for i := 0; i+1 < len(w.rows); i++ {
		if w.rows[i] > w.rows[i+1] {
			t.Fatal("row offsets not monotone")
		}
	}
	for _, e := range w.edges {
		if e < 0 || e >= w.n {
			t.Fatalf("edge target %d out of range", e)
		}
	}
	// Backbone guarantees reachability: node i has an edge to i+1.
	for i := 0; i+1 < w.n; i++ {
		found := false
		for _, e := range w.edges[w.rows[i]:w.rows[i+1]] {
			if e == i+1 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("backbone edge %d->%d missing", i, i+1)
		}
	}

	bal := newBFS(Params{Scale: 0.05, Seed: 2}, true)
	for i := 0; i < bal.n; i++ {
		deg := bal.rows[i+1] - bal.rows[i]
		if deg > 2 {
			t.Fatalf("balanced tree node %d has degree %d", i, deg)
		}
	}
}

func TestKernelsAssembleAndAnnotate(t *testing.T) {
	// Every statically-built workload kernel must assemble, have
	// reconvergence points on all conditional branches, and declare an
	// "exit" label (the guardRange convention).
	progs := []*isa.Builder{
		bfsKernel1(), bfsKernel2(), kmeansKernel(), btreeKernel(),
		heartwallKernel(256, 4, 2), sradKernel(160), streamclusterKernel(),
		backpropKernel(4096, 128, 256), particleLikelihood(16), particleResample(),
		tpacfKernel(),
	}
	for _, b := range progs {
		p, err := b.Build()
		if err != nil {
			t.Fatalf("assemble: %v", err)
		}
		for pc := int32(0); pc < int32(p.Len()); pc++ {
			in := p.At(pc)
			if in.Op.IsCondBranch() && in.Rpc == isa.NoReconv {
				t.Fatalf("%s: branch at pc %d lacks a reconvergence point", p.Name, pc)
			}
		}
	}
}

func TestWorkloadMemoryLayouts(t *testing.T) {
	// Buffers must be line-aligned and non-overlapping (Alloc contract),
	// spot-checked through the kmeans instance.
	w := newKMeans(Params{Scale: 0.02, Seed: 1})
	for _, a := range []int64{w.xA, w.cA, w.assignA} {
		if a%128 != 0 {
			t.Fatalf("buffer %#x not line aligned", a)
		}
	}
	if w.cA <= w.xA || w.assignA <= w.cA {
		t.Fatal("allocations out of order / overlapping")
	}
}
