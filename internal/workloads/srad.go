package workloads

import (
	"fmt"
	"math"

	"cawa/internal/isa"
	"cawa/internal/memory"
	"cawa/internal/simt"
)

func init() {
	register("srad_1", true, func(p Params) Workload { return newSrad(p) })
}

// srad ports the first SRAD kernel of Rodinia (speckle-reducing
// anisotropic diffusion): a 2D stencil computing directional
// derivatives through precomputed clamped-neighbour index arrays, the
// diffusion coefficient, and a divergent two-sided clamp of the
// coefficient to [0,1].
//
// Paper input: 502x458. Default here: 160x160.
type srad struct {
	base
	rows, cols         int
	q0sqr              float64
	img                []float64
	jA                 int64
	cA                 int64
	dnA, dsA, dwA, deA int64
	inA, isA, jwA, jeA int64
	kern               *simt.Kernel
	done               bool
}

func newSrad(p Params) *srad {
	rows := p.scaled(160)
	cols := 160
	rng := p.rng()
	w := &srad{
		base:  base{name: "srad_1", sensitive: true, mem: memory.New(int64(rows*cols*6+2*(rows+cols))*8 + 1<<21)},
		rows:  rows,
		cols:  cols,
		q0sqr: 0.05,
	}
	n := rows * cols
	w.img = make([]float64, n)
	for i := range w.img {
		w.img[i] = math.Exp(rng.Float64()) // positive, as in Rodinia's extracted image
	}
	m := w.mem
	w.jA = m.Alloc(n)
	w.cA = m.Alloc(n)
	w.dnA = m.Alloc(n)
	w.dsA = m.Alloc(n)
	w.dwA = m.Alloc(n)
	w.deA = m.Alloc(n)
	w.inA = m.Alloc(rows)
	w.isA = m.Alloc(rows)
	w.jwA = m.Alloc(cols)
	w.jeA = m.Alloc(cols)
	m.WriteFloats(w.jA, w.img)
	for i := 0; i < rows; i++ {
		m.Store(w.inA+int64(i)*8, int64(maxInt(i-1, 0)))
		s := i + 1
		if s > rows-1 {
			s = rows - 1
		}
		m.Store(w.isA+int64(i)*8, int64(s))
	}
	for j := 0; j < cols; j++ {
		m.Store(w.jwA+int64(j)*8, int64(maxInt(j-1, 0)))
		e := j + 1
		if e > cols-1 {
			e = cols - 1
		}
		m.Store(w.jeA+int64(j)*8, int64(e))
	}

	const blockDim = 256
	grid := (n + blockDim - 1) / blockDim
	w.kern = mustKernel("srad_k1", sradKernel(cols), grid, blockDim,
		[]int64{w.jA, w.cA, w.dnA, w.dsA, w.dwA, w.deA,
			w.inA, w.isA, w.jwA, w.jeA, int64(n), isa.F2B(w.q0sqr)}, 0)
	return w
}

func sradKernel(cols int) *isa.Builder {
	b := isa.NewBuilder("srad_k1")
	b.SReg(isa.R0, isa.SRGTid)
	b.Param(isa.R1, 10) // n
	guardRange(b, isa.R0, isa.R1, isa.R2)
	// i = k / cols, j = k % cols
	b.DivI(isa.R3, isa.R0, int64(cols))
	b.RemI(isa.R4, isa.R0, int64(cols))
	// Clamped neighbour indices.
	b.Param(isa.R5, 6)
	ldElem(b, isa.R6, isa.R5, isa.R3, isa.R2) // iN
	b.Param(isa.R5, 7)
	ldElem(b, isa.R7, isa.R5, isa.R3, isa.R2) // iS
	b.Param(isa.R5, 8)
	ldElem(b, isa.R8, isa.R5, isa.R4, isa.R2) // jW
	b.Param(isa.R5, 9)
	ldElem(b, isa.R9, isa.R5, isa.R4, isa.R2)   // jE
	b.Param(isa.R10, 0)                         // J base
	ldElem(b, isa.R11, isa.R10, isa.R0, isa.R2) // Jc
	// dN = J[iN*cols + j] - Jc, etc.
	b.MulI(isa.R12, isa.R6, int64(cols))
	b.Add(isa.R12, isa.R12, isa.R4)
	ldElem(b, isa.R13, isa.R10, isa.R12, isa.R2)
	b.FSub(isa.R13, isa.R13, isa.R11) // dN
	b.MulI(isa.R12, isa.R7, int64(cols))
	b.Add(isa.R12, isa.R12, isa.R4)
	ldElem(b, isa.R14, isa.R10, isa.R12, isa.R2)
	b.FSub(isa.R14, isa.R14, isa.R11) // dS
	b.MulI(isa.R12, isa.R3, int64(cols))
	b.Add(isa.R12, isa.R12, isa.R8)
	ldElem(b, isa.R15, isa.R10, isa.R12, isa.R2)
	b.FSub(isa.R15, isa.R15, isa.R11) // dW
	b.MulI(isa.R12, isa.R3, int64(cols))
	b.Add(isa.R12, isa.R12, isa.R9)
	ldElem(b, isa.R16, isa.R10, isa.R12, isa.R2)
	b.FSub(isa.R16, isa.R16, isa.R11) // dE
	// G2 = (dN^2+dS^2+dW^2+dE^2) / Jc^2
	b.MovF(isa.R17, 0)
	b.FMad(isa.R17, isa.R13, isa.R13)
	b.FMad(isa.R17, isa.R14, isa.R14)
	b.FMad(isa.R17, isa.R15, isa.R15)
	b.FMad(isa.R17, isa.R16, isa.R16)
	b.FMul(isa.R18, isa.R11, isa.R11)
	b.FDiv(isa.R17, isa.R17, isa.R18) // G2
	// L = (dN+dS+dW+dE) / Jc
	b.FAdd(isa.R19, isa.R13, isa.R14)
	b.FAdd(isa.R19, isa.R19, isa.R15)
	b.FAdd(isa.R19, isa.R19, isa.R16)
	b.FDiv(isa.R19, isa.R19, isa.R11) // L
	// num = 0.5*G2 - (1/16)*L^2 ; den = 1 + 0.25*L
	b.MovF(isa.R20, 0.5)
	b.FMul(isa.R20, isa.R20, isa.R17)
	b.FMul(isa.R21, isa.R19, isa.R19)
	b.MovF(isa.R22, 1.0/16.0)
	b.FMul(isa.R21, isa.R21, isa.R22)
	b.FSub(isa.R20, isa.R20, isa.R21) // num
	b.MovF(isa.R21, 0.25)
	b.FMul(isa.R21, isa.R21, isa.R19)
	b.MovF(isa.R22, 1)
	b.FAdd(isa.R21, isa.R21, isa.R22) // den
	// qsqr = num / den^2
	b.FMul(isa.R21, isa.R21, isa.R21)
	b.FDiv(isa.R20, isa.R20, isa.R21) // qsqr
	// den2 = (qsqr - q0sqr) / (q0sqr * (1 + q0sqr))
	b.Param(isa.R23, 11) // q0sqr bits
	b.FSub(isa.R20, isa.R20, isa.R23)
	b.MovF(isa.R22, 1)
	b.FAdd(isa.R22, isa.R22, isa.R23)
	b.FMul(isa.R22, isa.R22, isa.R23)
	b.FDiv(isa.R20, isa.R20, isa.R22) // den2
	// c = 1 / (1 + den2), clamped to [0,1] with divergent branches.
	b.MovF(isa.R22, 1)
	b.FAdd(isa.R20, isa.R20, isa.R22)
	b.FDiv(isa.R20, isa.R22, isa.R20) // c
	b.MovF(isa.R22, 0)
	b.FSetLT(isa.R2, isa.R20, isa.R22)
	b.CBraZ(isa.R2, "notlow")
	b.MovF(isa.R20, 0)
	b.Label("notlow")
	b.MovF(isa.R22, 1)
	b.FSetGT(isa.R2, isa.R20, isa.R22)
	b.CBraZ(isa.R2, "nothigh")
	b.MovF(isa.R20, 1)
	b.Label("nothigh")
	// Store c and the four derivatives.
	b.Param(isa.R5, 1)
	stElem(b, isa.R5, isa.R0, isa.R20, isa.R2)
	b.Param(isa.R5, 2)
	stElem(b, isa.R5, isa.R0, isa.R13, isa.R2)
	b.Param(isa.R5, 3)
	stElem(b, isa.R5, isa.R0, isa.R14, isa.R2)
	b.Param(isa.R5, 4)
	stElem(b, isa.R5, isa.R0, isa.R15, isa.R2)
	b.Param(isa.R5, 5)
	stElem(b, isa.R5, isa.R0, isa.R16, isa.R2)
	b.Label("exit")
	b.Exit()
	return b
}

// Next implements Workload.
func (w *srad) Next() (*simt.Kernel, bool) {
	if w.done {
		return nil, false
	}
	w.done = true
	return w.kern, true
}

// Verify implements Workload.
func (w *srad) Verify() error {
	rows, cols := w.rows, w.cols
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			k := i*cols + j
			iN, iS := maxInt(i-1, 0), minInt(i+1, rows-1)
			jW, jE := maxInt(j-1, 0), minInt(j+1, cols-1)
			jc := w.img[k]
			dN := w.img[iN*cols+j] - jc
			dS := w.img[iS*cols+j] - jc
			dW := w.img[i*cols+jW] - jc
			dE := w.img[i*cols+jE] - jc
			g2 := (dN*dN + dS*dS + dW*dW + dE*dE) / (jc * jc)
			l := (dN + dS + dW + dE) / jc
			num := 0.5*g2 - (1.0/16.0)*(l*l)
			den := 1 + 0.25*l
			qsqr := num / (den * den)
			den2 := (qsqr - w.q0sqr) / (w.q0sqr * (1 + w.q0sqr))
			c := 1 / (1 + den2)
			if c < 0 {
				c = 0
			} else if c > 1 {
				c = 1
			}
			if got := w.mem.LoadF(w.cA + int64(k)*8); got != c {
				return fmt.Errorf("srad: c[%d] = %g, want %g", k, got, c)
			}
		}
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
