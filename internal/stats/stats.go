// Package stats collects and aggregates the measurements the paper
// reports: IPC, L1D MPKI, per-warp execution times and their disparity,
// stall-cycle breakdowns, and per-warp cache hit rates.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// WarpRecord is the lifetime record of one warp.
type WarpRecord struct {
	GID          int // global warp id, unique within a launch sequence
	SM           int
	Block        int // grid-wide block id
	IndexInBlock int

	DispatchCycle int64
	FinishCycle   int64

	// Instructions is the number of warp-instructions committed.
	Instructions int64
	// ThreadInstrs weighs each instruction by its active lane count.
	ThreadInstrs int64

	// Cycle breakdown while resident (sums to residency minus issue
	// cycles).
	IssueCycles       int64 // cycles this warp issued an instruction
	SchedStall        int64 // ready but not selected by the scheduler
	MemStall          int64 // blocked on global memory (data or structural)
	ALUStall          int64 // blocked on an in-flight compute result
	BarrierStall      int64 // parked at a block barrier
	EmptyStall        int64 // other (e.g. finished lanes awaiting block end)
	DivergentBranches int64
}

// ExecTime returns the warp's execution time in cycles.
func (w *WarpRecord) ExecTime() int64 { return w.FinishCycle - w.DispatchCycle }

// MemShare returns the fraction of the warp's execution time spent
// blocked on the memory subsystem (Figure 2c).
func (w *WarpRecord) MemShare() float64 {
	t := w.ExecTime()
	if t <= 0 {
		return 0
	}
	return float64(w.MemStall) / float64(t)
}

// Launch aggregates one kernel launch (or a whole multi-launch run).
type Launch struct {
	Kernel string
	Cycles int64

	// Instruction totals.
	Instructions int64 // warp-level
	ThreadInstrs int64

	// L1D totals across SMs.
	L1DAccesses uint64
	L1DMisses   uint64

	// L2 totals.
	L2Accesses uint64
	L2Misses   uint64

	// Coalescing: global-memory instructions and the line transactions
	// they generated (1 transaction per instruction = perfectly
	// coalesced; up to warp-size transactions when fully scattered).
	MemInstrs int64
	MemTxns   int64

	Warps []WarpRecord
}

// CoalescingFactor returns average transactions per global-memory
// instruction (lower is better; 1.0 is perfect).
func (l *Launch) CoalescingFactor() float64 {
	if l.MemInstrs == 0 {
		return 0
	}
	return float64(l.MemTxns) / float64(l.MemInstrs)
}

// IPC returns thread-instructions per cycle across the whole GPU.
func (l *Launch) IPC() float64 {
	if l.Cycles == 0 {
		return 0
	}
	return float64(l.ThreadInstrs) / float64(l.Cycles)
}

// MPKI returns L1D misses per thousand warp instructions.
func (l *Launch) MPKI() float64 {
	if l.Instructions == 0 {
		return 0
	}
	return float64(l.L1DMisses) / float64(l.Instructions) * 1000
}

// L1DMissRate returns misses/accesses.
func (l *Launch) L1DMissRate() float64 {
	if l.L1DAccesses == 0 {
		return 0
	}
	return float64(l.L1DMisses) / float64(l.L1DAccesses)
}

// BlockGroup returns warp records grouped by grid-wide block id.
func (l *Launch) BlockGroup() map[int][]WarpRecord {
	g := make(map[int][]WarpRecord)
	for _, w := range l.Warps {
		g[w.Block] = append(g[w.Block], w)
	}
	return g
}

// blockGroupsOrdered returns BlockGroup's values in ascending
// block-id order. Float reductions (sums, means) over the groups must
// use this instead of ranging the map: iteration order would otherwise
// change the rounding and break run-to-run determinism.
func (l *Launch) blockGroupsOrdered() [][]WarpRecord {
	g := l.BlockGroup()
	ids := make([]int, 0, len(g))
	for id := range g {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([][]WarpRecord, 0, len(ids))
	for _, id := range ids {
		out = append(out, g[id])
	}
	return out
}

// BlockDisparity returns the execution-time disparity of one block's
// warps: (slowest - fastest) / slowest. Blocks with fewer than two warps
// have zero disparity.
func BlockDisparity(warps []WarpRecord) float64 {
	if len(warps) < 2 {
		return 0
	}
	minT, maxT := warps[0].ExecTime(), warps[0].ExecTime()
	for _, w := range warps[1:] {
		t := w.ExecTime()
		if t < minT {
			minT = t
		}
		if t > maxT {
			maxT = t
		}
	}
	if maxT == 0 {
		return 0
	}
	return float64(maxT-minT) / float64(maxT)
}

// MaxDisparity returns the highest per-block warp execution time
// disparity across all blocks (Figure 1), considering only blocks with
// at least minWarps warps.
func (l *Launch) MaxDisparity(minWarps int) float64 {
	best := 0.0
	for _, ws := range l.blockGroupsOrdered() {
		if len(ws) < minWarps {
			continue
		}
		if d := BlockDisparity(ws); d > best {
			best = d
		}
	}
	return best
}

// MeanDisparity returns the average per-block disparity.
func (l *Launch) MeanDisparity(minWarps int) float64 {
	sum, n := 0.0, 0
	for _, ws := range l.blockGroupsOrdered() {
		if len(ws) < minWarps {
			continue
		}
		sum += BlockDisparity(ws)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// CriticalWarp returns the slowest warp of a block (the critical warp by
// the paper's post-hoc definition).
func CriticalWarp(warps []WarpRecord) WarpRecord {
	best := warps[0]
	for _, w := range warps[1:] {
		if w.ExecTime() > best.ExecTime() {
			best = w
		}
	}
	return best
}

// SortedByExecTime returns the warps ordered fastest-first (Figure 2).
func SortedByExecTime(warps []WarpRecord) []WarpRecord {
	out := append([]WarpRecord(nil), warps...)
	sort.Slice(out, func(i, j int) bool { return out[i].ExecTime() < out[j].ExecTime() })
	return out
}

// Merge accumulates another launch's totals into l (multi-launch
// kernels such as bfs iterate; figures report whole-application numbers).
func (l *Launch) Merge(o *Launch) {
	l.Cycles += o.Cycles
	l.Instructions += o.Instructions
	l.ThreadInstrs += o.ThreadInstrs
	l.L1DAccesses += o.L1DAccesses
	l.L1DMisses += o.L1DMisses
	l.L2Accesses += o.L2Accesses
	l.L2Misses += o.L2Misses
	l.MemInstrs += o.MemInstrs
	l.MemTxns += o.MemTxns
	l.Warps = append(l.Warps, o.Warps...)
}

// GeoMean returns the geometric mean of xs; zero and negative values are
// skipped (matching how speedup summaries treat missing data).
func GeoMean(xs []float64) float64 {
	logSum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// String summarizes the launch.
func (l *Launch) String() string {
	return fmt.Sprintf("%s: cycles=%d ipc=%.2f warp-instrs=%d mpki=%.2f warps=%d",
		l.Kernel, l.Cycles, l.IPC(), l.Instructions, l.MPKI(), len(l.Warps))
}
