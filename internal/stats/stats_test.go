package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func rec(gid, block int, start, end, mem int64) WarpRecord {
	return WarpRecord{GID: gid, Block: block, DispatchCycle: start, FinishCycle: end, MemStall: mem}
}

func TestWarpRecordDerived(t *testing.T) {
	w := rec(1, 0, 100, 300, 50)
	if w.ExecTime() != 200 {
		t.Fatalf("exec time %d", w.ExecTime())
	}
	if got := w.MemShare(); got != 0.25 {
		t.Fatalf("mem share %v", got)
	}
	zero := WarpRecord{}
	if zero.MemShare() != 0 {
		t.Fatal("zero-duration mem share")
	}
}

func TestBlockDisparity(t *testing.T) {
	warps := []WarpRecord{
		rec(0, 0, 0, 100, 0),
		rec(1, 0, 0, 150, 0),
		rec(2, 0, 0, 200, 0),
	}
	if got := BlockDisparity(warps); got != 0.5 {
		t.Fatalf("disparity %v, want 0.5", got)
	}
	if BlockDisparity(warps[:1]) != 0 {
		t.Fatal("single-warp disparity must be 0")
	}
}

func TestLaunchAggregates(t *testing.T) {
	l := &Launch{
		Kernel:       "x",
		Cycles:       1000,
		Instructions: 2000,
		ThreadInstrs: 50000,
		L1DAccesses:  400,
		L1DMisses:    100,
		Warps: []WarpRecord{
			rec(0, 0, 0, 100, 0), rec(1, 0, 0, 200, 0),
			rec(2, 1, 50, 100, 0), rec(3, 1, 50, 80, 0),
		},
	}
	if got := l.IPC(); got != 50 {
		t.Fatalf("IPC %v", got)
	}
	if got := l.MPKI(); got != 50 {
		t.Fatalf("MPKI %v", got)
	}
	if got := l.L1DMissRate(); got != 0.25 {
		t.Fatalf("miss rate %v", got)
	}
	groups := l.BlockGroup()
	if len(groups) != 2 || len(groups[0]) != 2 {
		t.Fatalf("groups %v", groups)
	}
	// Block 0 disparity: (200-100)/200 = 0.5; block 1: (50-30)/50 = 0.4.
	if got := l.MaxDisparity(2); got != 0.5 {
		t.Fatalf("max disparity %v", got)
	}
	if got := l.MeanDisparity(2); math.Abs(got-0.45) > 1e-9 {
		t.Fatalf("mean disparity %v", got)
	}
	cw := CriticalWarp(groups[0])
	if cw.GID != 1 {
		t.Fatalf("critical warp %d", cw.GID)
	}
	sorted := SortedByExecTime(groups[1])
	if sorted[0].GID != 3 || sorted[1].GID != 2 {
		t.Fatalf("sorted %v", sorted)
	}
}

func TestMerge(t *testing.T) {
	a := &Launch{Cycles: 10, Instructions: 5, ThreadInstrs: 100, L1DAccesses: 4, L1DMisses: 2,
		Warps: []WarpRecord{rec(0, 0, 0, 10, 0)}}
	b := &Launch{Cycles: 20, Instructions: 10, ThreadInstrs: 300, L1DAccesses: 6, L1DMisses: 1,
		Warps: []WarpRecord{rec(1, 1, 0, 20, 0)}}
	a.Merge(b)
	if a.Cycles != 30 || a.Instructions != 15 || a.ThreadInstrs != 400 ||
		a.L1DAccesses != 10 || a.L1DMisses != 3 || len(a.Warps) != 2 {
		t.Fatalf("merged %+v", a)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); got != 4 {
		t.Fatalf("geomean %v", got)
	}
	if got := GeoMean([]float64{1, 0, -5}); got != 1 {
		t.Fatalf("geomean with skips %v", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean")
	}
}

// Property: disparity is scale invariant and in [0,1).
func TestDisparityProperties(t *testing.T) {
	f := func(times []uint32) bool {
		if len(times) < 2 {
			return true
		}
		var warps, scaled []WarpRecord
		for i, tt := range times {
			d := int64(tt%100000) + 1
			warps = append(warps, rec(i, 0, 0, d, 0))
			scaled = append(scaled, rec(i, 0, 0, d*3, 0))
		}
		d1, d2 := BlockDisparity(warps), BlockDisparity(scaled)
		return d1 >= 0 && d1 < 1 && math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
