package memory

// StoreLog defers one SM domain's global-memory stores until the
// orchestrator's barrier flush. The parallel engine gives every SM a
// private log: during an epoch SMs only *read* the shared Memory
// (concurrent reads are safe), stores append here stamped with the
// emitting cycle, and the orchestrator flushes the logs in SM-id order
// at the barrier — one-cycle epochs with Flush, multi-cycle lookahead
// epochs cycle by cycle with FlushThrough — reproducing the serial
// engine's cycle → SM-id → program write order exactly.
//
// Loads forward from the log (newest entry first) before falling back
// to the backing Memory, so a warp observes its own SM's earlier
// unflushed stores just as it would under the serial engine. Stores
// from *other* SMs become visible only after the barrier — up to a
// horizon's worth of cycles later under lookahead; DESIGN.md
// ("Parallel intra-run engine", "Lookahead epochs") argues why that
// relaxation is unobservable for the ported workloads, and the
// engine-equivalence matrix verifies it byte-for-byte on every
// app × scheduler cell.
type StoreLog struct {
	mem    *Memory
	cycle  int64   // stamp applied to subsequent Stores (SetCycle)
	addrs  []int64 // word-aligned byte addresses, in store order
	vals   []int64
	cycles []int64 // emitting cycle per entry, non-decreasing
	head   int     // entries below head are flushed, awaiting reset
}

// NewStoreLog builds a store log backed by mem.
func NewStoreLog(mem *Memory) *StoreLog {
	return &StoreLog{mem: mem}
}

// SetCycle stamps subsequent Stores with the SM cycle that emits them.
// The owning SM calls it at the top of every cycle; stamps are
// therefore non-decreasing, which FlushThrough relies on.
func (l *StoreLog) SetCycle(c int64) { l.cycle = c }

// Store records a deferred store. The address is canonicalized to its
// word like Memory.Store would, so forwarding matches on the same
// cells a direct store would have written.
func (l *StoreLog) Store(addr, v int64) {
	l.addrs = append(l.addrs, addr&^(WordBytes-1)) //cawalint:alloc-ok amortized: cleared by Flush, capacity reused across epochs
	l.vals = append(l.vals, v)
	l.cycles = append(l.cycles, l.cycle) //cawalint:alloc-ok amortized: cleared by Flush, capacity reused across epochs
}

// Load returns the value a load at addr observes: the newest deferred
// store to the same word, or the backing memory's current value. The
// scan covers the whole log including the flushed prefix — those
// entries already equal the backing memory, so forwarding from them is
// harmless — and stays cheap: a log holds at most one epoch's stores
// from one SM.
func (l *StoreLog) Load(addr int64) int64 {
	a := addr &^ (WordBytes - 1)
	for i := len(l.addrs) - 1; i >= 0; i-- {
		if l.addrs[i] == a {
			return l.vals[i]
		}
	}
	return l.mem.Load(addr)
}

// Flush applies all remaining deferred stores to the backing memory in
// store order and empties the log.
func (l *StoreLog) Flush() {
	for i := l.head; i < len(l.addrs); i++ {
		l.mem.Store(l.addrs[i], l.vals[i])
	}
	l.reset()
}

// FlushThrough applies the deferred stores emitted at cycles <= c and
// leaves later ones pending. The lookahead engine's barrier replay
// calls it per simulated cycle, per SM in id order. Once the log
// drains completely its storage is reset for reuse.
func (l *StoreLog) FlushThrough(c int64) {
	for l.head < len(l.addrs) {
		if l.cycles[l.head] > c {
			return
		}
		l.mem.Store(l.addrs[l.head], l.vals[l.head])
		l.head++
	}
	l.reset()
}

func (l *StoreLog) reset() {
	l.addrs = l.addrs[:0]
	l.vals = l.vals[:0]
	l.cycles = l.cycles[:0]
	l.head = 0
}

// Len reports the number of deferred, unflushed stores.
func (l *StoreLog) Len() int { return len(l.addrs) - l.head }
