package memory

// StoreLog defers one SM domain's global-memory stores until the end
// of the current cycle's epoch. The parallel engine gives every SM a
// private log: during an epoch SMs only *read* the shared Memory
// (concurrent reads are safe), stores append here, and the orchestrator
// flushes the logs in SM-id order at the epoch barrier — reproducing
// the serial engine's same-cycle write order exactly.
//
// Loads forward from the log (newest entry first) before falling back
// to the backing Memory, so a warp observes its own SM's earlier
// same-cycle stores just as it would under the serial engine. Stores
// from *other* SMs in the same cycle become visible one cycle later;
// DESIGN.md ("Parallel intra-run engine") argues why that relaxation is
// unobservable for the ported workloads, and the engine-equivalence
// matrix verifies it byte-for-byte on every app × scheduler cell.
type StoreLog struct {
	mem   *Memory
	addrs []int64 // word-aligned byte addresses, in store order
	vals  []int64
}

// NewStoreLog builds a store log backed by mem.
func NewStoreLog(mem *Memory) *StoreLog {
	return &StoreLog{mem: mem}
}

// Store records a deferred store. The address is canonicalized to its
// word like Memory.Store would, so forwarding matches on the same
// cells a direct store would have written.
func (l *StoreLog) Store(addr, v int64) {
	l.addrs = append(l.addrs, addr&^(WordBytes-1)) //cawalint:alloc-ok amortized: cleared by Flush, capacity reused across epochs
	l.vals = append(l.vals, v)
}

// Load returns the value a load at addr observes: the newest deferred
// store to the same word, or the backing memory's current value. The
// backward scan is cheap — a log holds at most one cycle's stores from
// one SM (tens of entries).
func (l *StoreLog) Load(addr int64) int64 {
	a := addr &^ (WordBytes - 1)
	for i := len(l.addrs) - 1; i >= 0; i-- {
		if l.addrs[i] == a {
			return l.vals[i]
		}
	}
	return l.mem.Load(addr)
}

// Flush applies the deferred stores to the backing memory in store
// order and empties the log.
func (l *StoreLog) Flush() {
	for i, a := range l.addrs {
		l.mem.Store(a, l.vals[i])
	}
	l.addrs = l.addrs[:0]
	l.vals = l.vals[:0]
}

// Len reports the number of deferred stores.
func (l *StoreLog) Len() int { return len(l.addrs) }
