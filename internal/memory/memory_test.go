package memory

import (
	"testing"
	"testing/quick"
)

func TestAllocAlignment(t *testing.T) {
	m := New(1 << 16)
	a := m.Alloc(3)
	b := m.Alloc(1)
	if a < Base {
		t.Fatalf("allocation below base: %#x", a)
	}
	if a%128 != 0 || b%128 != 0 {
		t.Fatalf("allocations not line-aligned: %#x %#x", a, b)
	}
	if b < a+3*WordBytes {
		t.Fatal("allocations overlap")
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	m := New(4096 + 256)
	m.Alloc(16)
	defer func() {
		if recover() == nil {
			t.Fatal("expected out-of-memory panic")
		}
	}()
	m.Alloc(1 << 20)
}

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New(1 << 16)
	a := m.Alloc(8)
	m.Store(a, -42)
	if got := m.Load(a); got != -42 {
		t.Fatalf("load %d", got)
	}
	// Word-alignment forcing: low address bits are dropped.
	m.Store(a+8, 7)
	if got := m.Load(a + 8 + 3); got != 7 {
		t.Fatalf("misaligned load %d", got)
	}
}

func TestFloatsAndSlices(t *testing.T) {
	m := New(1 << 16)
	a := m.Alloc(4)
	m.WriteFloats(a, []float64{1.5, -2.25, 3})
	got := m.ReadFloats(a, 3)
	if got[0] != 1.5 || got[1] != -2.25 || got[2] != 3 {
		t.Fatalf("floats %v", got)
	}
	b := m.Alloc(4)
	m.WriteWords(b, []int64{9, 8, 7})
	if w := m.ReadWords(b, 3); w[0] != 9 || w[1] != 8 || w[2] != 7 {
		t.Fatalf("words %v", w)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(4096 + 64)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Load(1 << 30)
}

// TestStoreLoadProperty: arbitrary word-aligned writes read back.
func TestStoreLoadProperty(t *testing.T) {
	m := New(1 << 20)
	base := m.Alloc(1024)
	f := func(idx uint16, v int64) bool {
		addr := base + int64(idx%1024)*WordBytes
		m.Store(addr, v)
		return m.Load(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
