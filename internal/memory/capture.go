package memory

import "fmt"

// State is the serializable image of a Memory: the full word array and
// the bump-allocator break. Checkpoints capture it after the workload's
// constructor has already shaped the memory, so Restore requires an
// identically sized target (the restoring side rebuilds the workload
// from the same Params first).
type State struct {
	Words []int64
	Brk   int64
}

// Capture deep-copies the memory image.
func (m *Memory) Capture() State {
	st := State{Words: make([]int64, len(m.words)), Brk: m.brk}
	copy(st.Words, m.words)
	return st
}

// Restore overwrites the memory with a captured image. The capacities
// must match: a mismatch means the checkpoint was taken against a
// different workload build and cannot be applied.
func (m *Memory) Restore(st State) error {
	if len(st.Words) != len(m.words) {
		return fmt.Errorf("memory: restore size mismatch (have %d words, snapshot %d)",
			len(m.words), len(st.Words))
	}
	copy(m.words, st.Words)
	m.brk = st.Brk
	return nil
}
