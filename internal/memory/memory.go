// Package memory provides the flat global-memory backing store of the
// simulated GPU: a word-addressed array with a bump allocator, used for
// functional (value) simulation. Timing is modeled separately by
// internal/memsys; this package only stores data.
package memory

import (
	"fmt"

	"cawa/internal/isa"
)

// WordBytes is the size of one addressable word. All ISA memory accesses
// move one word.
const WordBytes = 8

// Base is the address of the first allocatable byte. Address 0 is kept
// unmapped so that it can serve as a null pointer in kernels.
const Base int64 = 4096

// Memory is a flat, word-granular global memory.
type Memory struct {
	words []int64
	brk   int64
}

// New creates a memory of the given capacity in bytes (rounded up to a
// whole word).
func New(sizeBytes int64) *Memory {
	n := (sizeBytes + WordBytes - 1) / WordBytes
	return &Memory{words: make([]int64, n), brk: Base}
}

// Size returns the capacity in bytes.
func (m *Memory) Size() int64 { return int64(len(m.words)) * WordBytes }

// Alloc reserves space for nWords words and returns its byte address.
// Allocations are aligned to 128 bytes (one cache line) so that distinct
// buffers never share a line. Alloc panics when memory is exhausted;
// workloads size their backing store at construction.
func (m *Memory) Alloc(nWords int) int64 {
	const align = 128
	addr := (m.brk + align - 1) &^ (align - 1)
	end := addr + int64(nWords)*WordBytes
	if end > m.Size() {
		panic(fmt.Sprintf("memory: out of memory allocating %d words (brk %d, size %d)", nWords, m.brk, m.Size()))
	}
	m.brk = end
	return addr
}

// index converts a byte address to a word index, forcing word alignment
// the way real hardware drops low address bits.
func (m *Memory) index(addr int64) int64 {
	i := addr &^ (WordBytes - 1) / WordBytes
	if i < 0 || i >= int64(len(m.words)) {
		panic(fmt.Sprintf("memory: address %#x out of range", addr))
	}
	return i
}

// Load returns the word at the byte address.
func (m *Memory) Load(addr int64) int64 { return m.words[m.index(addr)] }

// Store writes the word at the byte address.
func (m *Memory) Store(addr int64, v int64) { m.words[m.index(addr)] = v }

// LoadF returns the float stored at the byte address.
func (m *Memory) LoadF(addr int64) float64 { return isa.B2F(m.Load(addr)) }

// StoreF writes a float at the byte address.
func (m *Memory) StoreF(addr int64, f float64) { m.Store(addr, isa.F2B(f)) }

// WriteWords copies vals into memory starting at addr.
func (m *Memory) WriteWords(addr int64, vals []int64) {
	for i, v := range vals {
		m.Store(addr+int64(i)*WordBytes, v)
	}
}

// WriteFloats copies float vals into memory starting at addr.
func (m *Memory) WriteFloats(addr int64, vals []float64) {
	for i, v := range vals {
		m.StoreF(addr+int64(i)*WordBytes, v)
	}
}

// ReadWords copies n words starting at addr into a new slice.
func (m *Memory) ReadWords(addr int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = m.Load(addr + int64(i)*WordBytes)
	}
	return out
}

// ReadFloats copies n floats starting at addr into a new slice.
func (m *Memory) ReadFloats(addr int64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = m.LoadF(addr + int64(i)*WordBytes)
	}
	return out
}
