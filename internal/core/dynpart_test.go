package core

import (
	"testing"

	"cawa/internal/cache"
	"cawa/internal/config"
)

func TestDynPartGrowsTowardUtility(t *testing.T) {
	d := dynPartState{enabled: true, ways: 8, totalWays: 16}
	// Critical partition far more useful: boundary must grow.
	d.hitsCrit, d.hitsNon = 1000, 10
	d.adapt()
	if d.ways != 9 || d.Adjustments != 1 {
		t.Fatalf("ways %d adj %d", d.ways, d.Adjustments)
	}
	// Non-critical more useful: shrink.
	d.hitsCrit, d.hitsNon = 10, 1000
	d.adapt()
	d.adapt()
	if d.ways != 7 {
		t.Fatalf("ways %d after shrinks", d.ways)
	}
}

func TestDynPartHysteresisAndClamps(t *testing.T) {
	d := dynPartState{enabled: true, ways: 8, totalWays: 16}
	// Nearly equal utility: no movement.
	d.hitsCrit, d.hitsNon = 100, 100
	d.adapt()
	if d.ways != 8 || d.Adjustments != 0 {
		t.Fatalf("boundary moved on balanced utility: %d", d.ways)
	}
	// Clamp at the minimum.
	d.ways = dynPartMin
	d.hitsCrit, d.hitsNon = 0, 1000
	d.adapt()
	if d.ways != dynPartMin {
		t.Fatalf("boundary passed the lower clamp: %d", d.ways)
	}
	// Clamp at the maximum.
	d.ways = 16 - dynPartMin
	d.hitsCrit, d.hitsNon = 1000, 0
	d.adapt()
	if d.ways != 16-dynPartMin {
		t.Fatalf("boundary passed the upper clamp: %d", d.ways)
	}
}

func TestDynPartIntegration(t *testing.T) {
	cfg := config.CacheConfig{Sets: 2, Ways: 16, LineBytes: 128}
	p := NewCACP(CACPConfig{CriticalWays: 8, LineBytes: 128, DynamicPartition: true})
	c := cache.New(cfg, p)
	if p.CriticalWays() != 8 {
		t.Fatalf("initial boundary %d", p.CriticalWays())
	}
	// Drive a stream where only non-critical lines are ever reused: the
	// boundary should move down over the adaptation periods.
	for i := 0; i < 3*dynPartPeriod; i++ {
		addr := int64(i%64) * 128
		req := cache.Request{Addr: addr, PC: int32(i % 7)}
		if !c.Access(req) {
			c.Fill(req)
		}
	}
	if p.CriticalWays() >= 8 {
		t.Fatalf("boundary %d did not shrink despite non-critical-only reuse", p.CriticalWays())
	}
	if p.PartitionAdjustments() == 0 {
		t.Fatal("no adjustments recorded")
	}
}

func TestDynPartDisabledIsStable(t *testing.T) {
	p := NewCACP(DefaultCACPConfig())
	cfg := config.CacheConfig{Sets: 2, Ways: 16, LineBytes: 128}
	c := cache.New(cfg, p)
	for i := 0; i < 3*dynPartPeriod; i++ {
		addr := int64(i%64) * 128
		req := cache.Request{Addr: addr}
		if !c.Access(req) {
			c.Fill(req)
		}
	}
	if p.CriticalWays() != 8 || p.PartitionAdjustments() != 0 {
		t.Fatalf("static partition moved: %d ways, %d adjustments",
			p.CriticalWays(), p.PartitionAdjustments())
	}
}
