package core

import "cawa/internal/simt"

// Oracle is the criticality provider used by the PACT'14 CAWS baseline:
// warp criticality is known ahead of time (obtained offline from a
// profiling run of the same workload) instead of predicted. It
// implements sm.CriticalityProvider.
type Oracle struct {
	// values maps global warp id to its profiled criticality (the
	// warp's execution time from a baseline run).
	values map[int]float64

	slots  map[int]*oracleWarp
	blocks map[int]map[int]*oracleWarp
}

type oracleWarp struct {
	gid   int
	block int
	crit  float64
}

// NewOracle builds a provider around profiled per-warp execution times.
func NewOracle(values map[int]float64) *Oracle {
	return &Oracle{
		values: values,
		slots:  make(map[int]*oracleWarp),
		blocks: make(map[int]map[int]*oracleWarp),
	}
}

// OnWarpArrived implements sm.CriticalityProvider.
func (o *Oracle) OnWarpArrived(slot int, w *simt.Warp) {
	ow := &oracleWarp{gid: w.GID, block: w.Block, crit: o.values[w.GID]}
	o.slots[slot] = ow
	blk := o.blocks[w.Block]
	if blk == nil {
		blk = make(map[int]*oracleWarp)
		o.blocks[w.Block] = blk
	}
	blk[slot] = ow
}

// OnWarpFinished implements sm.CriticalityProvider.
func (o *Oracle) OnWarpFinished(slot int) {
	ow, ok := o.slots[slot]
	if !ok {
		return
	}
	delete(o.slots, slot)
	if blk := o.blocks[ow.block]; blk != nil {
		delete(blk, slot)
		if len(blk) == 0 {
			delete(o.blocks, ow.block)
		}
	}
}

// OnIssue implements sm.CriticalityProvider (oracle state is static).
func (o *Oracle) OnIssue(int, *simt.Step, int64, int64) {}

// Criticality implements sm.CriticalityProvider.
func (o *Oracle) Criticality(slot int) float64 {
	if ow, ok := o.slots[slot]; ok {
		return ow.crit
	}
	return 0
}

// IsCritical implements sm.CriticalityProvider.
func (o *Oracle) IsCritical(slot int) bool {
	ow, ok := o.slots[slot]
	if !ok {
		return false
	}
	blk := o.blocks[ow.block]
	if len(blk) <= 1 {
		return true
	}
	below := 0
	//cawalint:ignore order-insensitive integer count over peers
	for _, peer := range blk {
		if peer != ow && peer.crit < ow.crit {
			below++
		}
	}
	return below*2 >= len(blk)
}
