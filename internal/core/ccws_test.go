package core

import (
	"testing"

	"cawa/internal/cache"
	"cawa/internal/config"
	"cawa/internal/memsys"
	"cawa/internal/sched"
)

func TestCCWSProviderScoring(t *testing.T) {
	p := NewCCWSProvider()
	p.OnWarpArrived(0, mkWarp(10, 0, 0))
	p.OnWarpArrived(1, mkWarp(11, 0, 1))
	if p.Criticality(0) != ccwsBaseScore {
		t.Fatalf("base score %v", p.Criticality(0))
	}
	// Warp 10 loses a line and re-misses on it: score rises.
	p.onEvict(10, 0x1000)
	p.onMiss(10, 0x1008) // same 128B line
	if got := p.Criticality(0); got != ccwsBaseScore+ccwsHitGain {
		t.Fatalf("score after VTA hit %v", got)
	}
	// A miss on an unrelated line does not score.
	p.onMiss(10, 0x9000)
	if got := p.Criticality(0); got != ccwsBaseScore+ccwsHitGain {
		t.Fatalf("score after unrelated miss %v", got)
	}
	// Issue decay brings the score back down.
	for i := 0; i < ccwsHitGain; i++ {
		p.OnIssue(0, computeStep(0), 0, int64(i))
	}
	if got := p.Criticality(0); got != ccwsBaseScore {
		t.Fatalf("score after decay %v", got)
	}
	p.OnWarpFinished(0)
	if p.Criticality(0) != 0 {
		t.Fatal("finished slot still scored")
	}
}

func TestCCWSVTACapacity(t *testing.T) {
	p := NewCCWSProvider()
	p.OnWarpArrived(0, mkWarp(5, 0, 0))
	for i := int64(0); i < ccwsVTAEntries+8; i++ {
		p.onEvict(5, i*128)
	}
	// The earliest victims must have been displaced.
	p.onMiss(5, 0)
	if p.Criticality(0) != ccwsBaseScore {
		t.Fatal("displaced victim still scored")
	}
	p.onMiss(5, (ccwsVTAEntries+7)*128)
	if p.Criticality(0) != ccwsBaseScore+ccwsHitGain {
		t.Fatal("retained victim did not score")
	}
}

func TestCCWSPolicyThrottles(t *testing.T) {
	pol := &CCWSPolicy{}
	scores := map[int]float64{0: ccwsBaseScore, 1: ccwsBaseScore, 2: 10000, 3: ccwsBaseScore}
	ctx := &sched.Context{
		Ready:       []int{0, 1, 2, 3},
		Age:         func(s int) int64 { return int64(s) },
		Criticality: func(s int) float64 { return scores[s] },
	}
	// With warp 2 dominating the score mass, only it may issue.
	picks := map[int]bool{}
	for i := 0; i < 8; i++ {
		picks[pol.Select(ctx)] = true
	}
	if !picks[2] || len(picks) != 1 {
		t.Fatalf("throttle picks %v, want only warp 2", picks)
	}
	// With uniform scores everyone issues round-robin.
	for s := range scores {
		scores[s] = ccwsBaseScore
	}
	picks = map[int]bool{}
	for i := 0; i < 8; i++ {
		picks[pol.Select(ctx)] = true
	}
	if len(picks) != 4 {
		t.Fatalf("uniform picks %v", picks)
	}
	if pol.Select(&sched.Context{}) != -1 {
		t.Fatal("empty ready must select -1")
	}
}

func TestCCWSAttachObservesCache(t *testing.T) {
	cfg := config.Small()
	sys := memsys.New(cfg)
	p := NewCCWSProvider()
	l1 := sys.NewL1D(cache.LRU{}, nil)
	p.Attach(l1)
	p.OnWarpArrived(0, mkWarp(77, 0, 0))

	// Fill the cache with warp 77's lines until something of its own is
	// evicted, then re-access the victim: the score must rise.
	ways := cfg.L1D.Ways
	sets := cfg.L1D.Sets
	lineB := int64(cfg.L1D.LineBytes)
	for i := 0; i <= ways; i++ { // one set's worth plus one -> eviction
		addr := int64(i) * lineB * int64(sets)
		l1.AccessLoad(cache.Request{Addr: addr, Warp: 77}, int64(i), 1)
		// Complete the miss immediately so the line is resident.
		for now := int64(2); !sys.Drained(); now++ {
			sys.Cycle(now)
		}
	}
	before := p.Criticality(0)
	l1.AccessLoad(cache.Request{Addr: 0, Warp: 77}, 99, 1000) // victim line
	if got := p.Criticality(0); got <= before {
		t.Fatalf("VTA hit not detected through the cache: %v <= %v", got, before)
	}
}

func TestCCWSSystemBuilds(t *testing.T) {
	sc, attach := CCWSSystem()
	if sc.Scheduler != "ccws" || sc.ProviderOverride == nil || attach == nil {
		t.Fatal("CCWSSystem wiring incomplete")
	}
	if _, ok := sched.Lookup("ccws"); !ok {
		t.Fatal("ccws policy not registered")
	}
}
