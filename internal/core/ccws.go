package core

// CCWS-style cache-conscious wavefront scheduling (Rogers, O'Connor,
// Aamodt; MICRO'12 — the paper's reference [34], which also defines the
// GTO baseline). CCWS detects *lost intra-warp locality*: when a warp
// misses on a line that it itself recently had evicted, a per-warp
// lost-locality score (LLS) rises; the scheduler then throttles
// low-scoring warps so the cache-starved warps can keep their working
// sets resident.
//
// This implementation keeps the paper's structure — a per-warp victim
// tag array (VTA) fed by L1D evictions, hit-in-VTA detection on misses,
// scored throttling at the scheduler — with simplified score dynamics.
// It exists as an additional related-work baseline beyond the schedulers
// CAWA evaluates.

import (
	"cawa/internal/cache"
	"cawa/internal/memsys"
	"cawa/internal/sched"
	"cawa/internal/simt"
	"cawa/internal/sm"
)

// CCWS parameters.
const (
	ccwsVTAEntries = 16 // victim tags retained per warp
	ccwsHitGain    = 64 // LLS increase per VTA hit
	ccwsDecay      = 1  // LLS decrease per issued instruction
	ccwsBaseScore  = 32 // score floor so idle warps stay schedulable
)

// CCWSProvider maintains per-warp lost-locality scores. It implements
// sm.CriticalityProvider (Criticality reports the LLS, which the ccws
// scheduling policy consumes) and must be attached to the SM's L1D with
// Attach so it observes evictions and misses.
type CCWSProvider struct {
	slots []*ccwsWarp
	byGID map[int]*ccwsWarp
}

type ccwsWarp struct {
	gid     int
	lls     float64
	victims []int64 // FIFO of evicted line addresses
}

// NewCCWSProvider returns an empty provider for one SM.
func NewCCWSProvider() *CCWSProvider {
	return &CCWSProvider{byGID: make(map[int]*ccwsWarp)}
}

// Attach subscribes the provider to the L1D's eviction and access
// streams. Call once per SM after construction (e.g. via the harness's
// AttachL1 hook).
func (p *CCWSProvider) Attach(l1 *memsys.L1D) {
	c := l1.Cache()
	prevEvict := c.EvictListener
	c.EvictListener = func(ev *cache.Eviction) {
		if prevEvict != nil {
			prevEvict(ev)
		}
		p.onEvict(int(ev.Line.FillWarp), ev.Addr)
	}
	prevAccess := l1.AccessListener
	l1.AccessListener = func(req cache.Request, hit bool) {
		if prevAccess != nil {
			prevAccess(req, hit)
		}
		if !hit {
			p.onMiss(req.Warp, req.Addr)
		}
	}
}

func (p *CCWSProvider) onEvict(gid int, lineAddr int64) {
	w := p.byGID[gid]
	if w == nil {
		return
	}
	if len(w.victims) >= ccwsVTAEntries {
		w.victims = w.victims[1:]
	}
	w.victims = append(w.victims, lineAddr)
}

func (p *CCWSProvider) onMiss(gid int, addr int64) {
	w := p.byGID[gid]
	if w == nil {
		return
	}
	line := addr &^ 127
	for i, v := range w.victims {
		if v == line {
			// Lost locality detected: the warp re-references a line it
			// recently lost.
			w.lls += ccwsHitGain
			w.victims = append(w.victims[:i], w.victims[i+1:]...) //cawalint:alloc-ok in-place removal within the victim ring's existing capacity
			return
		}
	}
}

// OnWarpArrived implements sm.CriticalityProvider.
func (p *CCWSProvider) OnWarpArrived(slot int, w *simt.Warp) {
	for slot >= len(p.slots) {
		p.slots = append(p.slots, nil)
	}
	cw := &ccwsWarp{gid: w.GID, lls: ccwsBaseScore}
	p.slots[slot] = cw
	p.byGID[w.GID] = cw
}

// OnWarpFinished implements sm.CriticalityProvider.
func (p *CCWSProvider) OnWarpFinished(slot int) {
	if slot >= len(p.slots) || p.slots[slot] == nil {
		return
	}
	delete(p.byGID, p.slots[slot].gid)
	p.slots[slot] = nil
}

// OnIssue implements sm.CriticalityProvider: scores decay as the warp
// makes progress.
func (p *CCWSProvider) OnIssue(slot int, _ *simt.Step, _, _ int64) {
	if slot < len(p.slots) && p.slots[slot] != nil {
		w := p.slots[slot]
		if w.lls > ccwsBaseScore {
			w.lls -= ccwsDecay
		}
	}
}

// Criticality implements sm.CriticalityProvider: the lost-locality
// score.
func (p *CCWSProvider) Criticality(slot int) float64 {
	if slot < len(p.slots) && p.slots[slot] != nil {
		return p.slots[slot].lls
	}
	return 0
}

// IsCritical implements sm.CriticalityProvider (unused by CCWS's cache
// path; reported for completeness as "score above base").
func (p *CCWSProvider) IsCritical(slot int) bool {
	return p.Criticality(slot) > ccwsBaseScore
}

// CCWSPolicy is the scheduling half: round-robin restricted to the
// highest-scoring warps whenever lost locality is detected. The number
// of schedulable warps shrinks proportionally to how much of the total
// score is above the base level.
type CCWSPolicy struct {
	lrr sched.LRR
	// topK is the reused scratch buffer for the per-cycle throttled
	// ready-set selection; Select would otherwise allocate every call.
	topK []int
}

// Name implements sched.Policy.
func (*CCWSPolicy) Name() string { return "CCWS" }

// Select implements sched.Policy.
func (p *CCWSPolicy) Select(ctx *sched.Context) int {
	n := len(ctx.Ready)
	if n == 0 {
		return -1
	}
	total, excess := 0.0, 0.0
	for _, s := range ctx.Ready {
		sc := ctx.Criticality(s)
		total += sc
		if sc > ccwsBaseScore {
			excess += sc - ccwsBaseScore
		}
	}
	allowed := ctx.Ready
	if excess > 0 && total > 0 {
		// Shrink the schedulable set: the larger the share of lost
		// locality, the fewer (highest-scoring) warps may issue.
		k := n - int(float64(n)*excess/total)
		if k < 1 {
			k = 1
		}
		if k < n {
			p.topK = topKByScore(ctx, k, p.topK[:0])
			allowed = p.topK
		}
	}
	sub := *ctx
	sub.Ready = allowed
	return p.lrr.Select(&sub)
}

func topKByScore(ctx *sched.Context, k int, scratch []int) []int {
	out := append(scratch, ctx.Ready...) //cawalint:alloc-ok amortized growth of the caller's reused scratch buffer
	// Partial selection sort: small n (<=24 per scheduler).
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if ctx.Criticality(out[j]) > ctx.Criticality(out[best]) {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	return out[:k]
}

// OnWarpArrived implements sched.Policy.
func (*CCWSPolicy) OnWarpArrived(int) {}

// OnWarpFinished implements sched.Policy.
func (*CCWSPolicy) OnWarpFinished(int) {}

func init() {
	sched.Register("ccws", func() sched.Policy { return &CCWSPolicy{} })
}

// CCWSSystem returns the design point for the CCWS baseline: the ccws
// policy driven by per-SM CCWSProvider instances. The returned attach
// function must be passed to the run harness (RunOptions.AttachL1) so
// each provider observes its SM's L1D events.
func CCWSSystem() (SystemConfig, func(smID int, l1 *memsys.L1D)) {
	providers := make(map[int]*CCWSProvider)
	next := 0
	sc := SystemConfig{Scheduler: "ccws"}
	sc.ProviderOverride = func() sm.CriticalityProvider {
		p := NewCCWSProvider()
		providers[next] = p
		next++
		return p
	}
	attach := func(smID int, l1 *memsys.L1D) {
		if p, ok := providers[smID]; ok {
			p.Attach(l1)
		}
	}
	return sc, attach
}
