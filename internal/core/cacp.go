package core

import (
	"fmt"

	"cawa/internal/cache"
)

// SignatureKind selects how CACP forms predictor signatures
// (ablation: DESIGN.md decision 4). The paper xors the lower 8 bits of
// the instruction PC with the lower 8 bits of the memory (block)
// address.
type SignatureKind int

// Signature kinds.
const (
	SigPCXorAddr SignatureKind = iota // paper default
	SigPCOnly
	SigAddrOnly
)

// Predictor table geometry: 8-bit signatures index 256 entries.
const (
	sigBits    = 8
	sigEntries = 1 << sigBits
	sigMask    = sigEntries - 1

	ccbpMax       = 3 // 2-bit saturating counters
	ccbpThreshold = 2 // >= threshold predicts a critical line
	shipMax       = 7 // 3-bit SHCT counters, per the SHiP paper
)

// CACPConfig parameterizes the cache prioritization scheme.
type CACPConfig struct {
	// CriticalWays is the number of L1D ways reserved for
	// predicted-critical lines. The paper's sensitivity analysis picks
	// 8 of 16.
	CriticalWays int
	// Signature selects the predictor index composition.
	Signature SignatureKind
	// LineBytes must match the L1D line size (for the address region
	// bits of the signature).
	LineBytes int
	// DisableSHiP inserts every line at the "long" re-reference age
	// instead of consulting the hit predictor (ablation).
	DisableSHiP bool
	// DisablePartition keeps the CCBP/SHiP predictors but lets fills
	// use any way (ablation: prioritization without isolation).
	DisablePartition bool
	// DynamicPartition enables the UCP-style runtime tuning of the
	// critical-way count the paper suggests as an extension
	// (internal/core/dynpart.go); CriticalWays becomes the initial
	// boundary.
	DynamicPartition bool
	// UseSRRIP selects 2-bit SRRIP aging within partitions, the
	// replacement family the SHiP paper assumes. The default is
	// partitioned LRU with SHiP-guided dead-on-arrival insertion, which
	// performs better on this simulator's workloads (see the
	// abl-replacement bench); both honor Algorithm 4's insertion and
	// promotion rules.
	UseSRRIP bool
}

// DefaultCACPConfig returns the paper's configuration for a 16-way L1D
// with 128-byte lines.
func DefaultCACPConfig() CACPConfig {
	return CACPConfig{CriticalWays: 8, Signature: SigPCXorAddr, LineBytes: 128}
}

// CACP is the criticality-aware cache prioritization policy
// (Section 3.3, Algorithm 4). It partitions the L1D into critical and
// non-critical ways, steers fills with the critical cache block
// predictor (CCBP), and picks insertion ages with a signature-based hit
// predictor (SHiP) on top of SRRIP replacement within each partition.
//
// CACP implements cache.Policy and cache.WayChooser; one instance
// serves one SM's L1D.
type CACP struct {
	cfg    CACPConfig
	ccbp   [sigEntries]uint8
	ship   [sigEntries]uint8
	dyn    dynPartState
	fills  uint64 // bimodal-insertion counter
	wayBuf []int  // scratch for waysOf (valid until the next call)

	// Stats.
	PredCritical    uint64 // fills steered to the critical partition
	PredNonCritical uint64
	CCBPDemotions   uint64 // mispredicted-critical lines (Algorithm 4)
	SHiPDemotions   uint64 // zero-reuse signature decrements
}

// NewCACP builds the policy. Invalid configurations panic at
// construction (they are programmer errors, not runtime conditions).
func NewCACP(cfg CACPConfig) *CACP {
	if cfg.CriticalWays < 0 {
		panic(fmt.Sprintf("core: negative critical ways %d", cfg.CriticalWays))
	}
	if cfg.LineBytes <= 0 {
		cfg.LineBytes = 128
	}
	c := &CACP{cfg: cfg}
	if cfg.DynamicPartition {
		c.dyn.enabled = true
		c.dyn.ways = cfg.CriticalWays
	}
	// SHiP counters start weakly reusing so cold signatures insert at
	// "long" rather than "distant", as in the SHiP paper.
	for i := range c.ship {
		c.ship[i] = 1
	}
	return c
}

// CriticalWays reports the current critical partition size (dynamic
// when DynamicPartition is enabled).
func (c *CACP) CriticalWays() int {
	if c.dyn.enabled {
		return c.dyn.ways
	}
	return c.cfg.CriticalWays
}

// PartitionAdjustments reports how often the dynamic boundary moved.
func (c *CACP) PartitionAdjustments() uint64 { return c.dyn.Adjustments }

// Name implements cache.Policy.
func (c *CACP) Name() string { return "CACP" }

// signature forms the predictor index from the request (Section 3.3:
// lower 8 bits of the PC xor-ed with the address region bits).
func (c *CACP) signature(pc int32, addr int64) uint16 {
	pcBits := uint16(pc) & sigMask
	addrBits := uint16(addr/int64(c.cfg.LineBytes)) & sigMask
	switch c.cfg.Signature {
	case SigPCOnly:
		return pcBits
	case SigAddrOnly:
		return addrBits
	default:
		return pcBits ^ addrBits
	}
}

// partitions returns the way index ranges [0,k) and [k,W) for the
// critical and non-critical partitions of a W-way cache.
func (c *CACP) partitions(ways int) (critEnd int) {
	if c.cfg.DisablePartition {
		return ways
	}
	k := c.cfg.CriticalWays
	if c.dyn.enabled {
		c.dyn.totalWays = ways
		k = c.dyn.ways
	}
	if k > ways {
		k = ways
	}
	return k
}

// waysOf enumerates the partition's way indices.
func (c *CACP) waysOf(cacheWays int, critical bool) []int {
	k := c.partitions(cacheWays)
	var lo, hi int
	if critical {
		lo, hi = 0, k
	} else {
		lo, hi = k, cacheWays
	}
	out := c.wayBuf[:0]
	for w := lo; w < hi; w++ {
		out = append(out, w) //cawalint:alloc-ok amortized growth of the reused way-index scratch buffer
	}
	c.wayBuf = out
	return out
}

// FillWay implements cache.WayChooser: CacheFill of Algorithm 4. The
// CCBP predicts whether the incoming line is critical. Non-critical
// fills are confined to the non-critical partition so they can never
// displace critical data; critical fills prefer the reserved critical
// ways but may spill into the whole set, because the reservation's
// purpose is protecting critical lines, not starving them when the
// critical working set exceeds its partition.
func (c *CACP) FillWay(ca *cache.Cache, set int, req cache.Request) int {
	sig := c.signature(req.PC, req.Addr)
	critical := c.ccbp[sig] >= ccbpThreshold
	if critical {
		c.PredCritical++
	} else {
		c.PredNonCritical++
	}
	ways := c.waysOf(ca.Ways(), critical)
	if len(ways) == 0 {
		// Degenerate partition size (0 or all ways critical): fall back
		// to the other partition.
		ways = c.waysOf(ca.Ways(), !critical)
	}
	lines := ca.Set(set)
	for _, w := range ways {
		if !lines[w].Valid {
			return w
		}
	}
	if critical && !c.cfg.DisablePartition {
		// Spill: any invalid way, else replace over the whole set.
		for w := range lines {
			if !lines[w].Valid {
				return w
			}
		}
		return c.victimAmong(ca, set, nil)
	}
	return c.victimAmong(ca, set, ways)
}

func (c *CACP) victimAmong(ca *cache.Cache, set int, ways []int) int {
	if c.cfg.UseSRRIP {
		return cache.SRRIPVictimAmong(ca, set, ways)
	}
	return cache.LRUVictimAmong(ca, set, ways)
}

// OnFill implements cache.Policy: record the signature, the partition,
// and the SHiP-guided insertion age (re-reference interval "long" when
// the signature has shown reuse, "distant" otherwise).
func (c *CACP) OnFill(ca *cache.Cache, set, way int, req cache.Request) {
	c.dyn.onFill()
	l := ca.Line(set, way)
	sig := c.signature(req.PC, req.Addr)
	l.Sig = sig
	l.FillPC = req.PC
	l.InCritical = way < c.partitions(ca.Ways())
	c.fills++
	predictedDead := !c.cfg.DisableSHiP && c.ship[sig] == 0
	// Bimodal escape (as in BIP/BRRIP): every 8th predicted-dead fill
	// inserts normally so a mistrained signature can demonstrate reuse
	// and recover — dead-inserted lines are evicted too fast to ever
	// retrain the predictor on their own.
	if predictedDead && c.fills%8 != 0 {
		l.RRPV = cache.RRPVMax
		l.LRU = 0
	} else {
		l.RRPV = cache.RRPVLong
		l.LRU = ca.NextTick()
	}
}

// OnHit implements cache.Policy: CacheHit of Algorithm 4. Promotion to
// near re-reference, plus CCBP/SHiP training keyed on whether the
// hitting warp is predicted critical.
func (c *CACP) OnHit(ca *cache.Cache, set, way int, req cache.Request) {
	l := ca.Line(set, way)
	c.dyn.onHit(l.InCritical)
	l.RRPV = cache.RRPVNear
	l.LRU = ca.NextTick()
	if req.Critical {
		l.CReuse = true
		if c.ccbp[l.Sig] < ccbpMax {
			c.ccbp[l.Sig]++
		}
		if c.ship[l.Sig] < shipMax {
			c.ship[l.Sig]++
		}
		return
	}
	l.NCReuse = true
	if c.ship[l.Sig] < shipMax {
		c.ship[l.Sig]++
	}
}

// Victim implements cache.Policy; FillWay normally supersedes it, so it
// only serves as a safety net.
func (c *CACP) Victim(ca *cache.Cache, set int, _ cache.Request) int {
	return cache.SRRIPVictimAmong(ca, set, nil)
}

// OnEvict implements cache.Policy: EvictLine of Algorithm 4. Lines that
// landed in the critical partition but were only reused by non-critical
// warps demote their CCBP entry; lines with no reuse at all demote
// their SHiP entry.
func (c *CACP) OnEvict(_ *cache.Cache, _, _ int, ev *cache.Eviction) {
	l := &ev.Line
	switch {
	case !l.CReuse && l.NCReuse && l.InCritical:
		if c.ccbp[l.Sig] > 0 {
			c.ccbp[l.Sig]--
		}
		c.CCBPDemotions++
	case !l.CReuse && !l.NCReuse:
		if c.ship[l.Sig] > 0 {
			c.ship[l.Sig]--
		}
		c.SHiPDemotions++
	}
}

// CCBPCounter exposes a predictor entry (tests).
func (c *CACP) CCBPCounter(sig uint16) uint8 { return c.ccbp[sig&sigMask] }

// SHiPCounter exposes a predictor entry (tests).
func (c *CACP) SHiPCounter(sig uint16) uint8 { return c.ship[sig&sigMask] }

// Signature exposes signature formation (tests).
func (c *CACP) Signature(pc int32, addr int64) uint16 { return c.signature(pc, addr) }
