// Package core implements the paper's contribution, CAWA: the
// criticality prediction logic (CPL, Section 3.1), the greedy
// criticality-aware warp scheduler glue (gCAWS consumes CPL through the
// scheduler context), and criticality-aware cache prioritization
// (CACP, Section 3.3) with its critical cache block predictor (CCBP)
// and modified signature-based hit predictor (SHiP).
package core

import (
	"cawa/internal/simt"
)

// warpCrit is the CPL state of one resident warp.
type warpCrit struct {
	gid   int
	block int

	nInst    float64 // predicted remaining-instruction disparity
	nStall   float64 // accumulated stall cycles (Algorithm 3)
	issues   int64   // committed warp instructions
	arrive   int64   // dispatch cycle
	lastSeen int64   // cycle of the latest issue
}

// criticality evaluates Equation 1: nInst * CPI_avg + nStall. The
// stall term is accounted lazily, at the warp's next issue (Algorithm
// 3) — an experiment with accruing the currently-pending stall into the
// ranking turned gCAWS into longest-wait-first (round-robin-like
// fairness) and destroyed the greedy concentration that produces the
// paper's cache benefits, so the lagging update is kept deliberately.
func (w *warpCrit) criticality(now int64) float64 {
	_ = now
	cpi := 1.0
	if w.issues > 0 && w.lastSeen > w.arrive {
		cpi = float64(w.lastSeen-w.arrive) / float64(w.issues)
	}
	return w.nInst*cpi + w.nStall
}

// CPL is the per-SM criticality prediction logic. It maintains one
// criticality counter per resident warp, updated from branch-path
// instruction disparity (Algorithm 2) and from stall cycles between
// consecutive issues (Algorithm 3). CPL implements
// sm.CriticalityProvider.
type CPL struct {
	slots  []*warpCrit         // indexed by SM slot, nil when free
	blocks map[int][]*warpCrit // blockID -> resident peers
	now    int64               // latest cycle observed via OnIssue

	// DisableInstTerm / DisableStallTerm support the ablation benches
	// (DESIGN.md decision 1).
	DisableInstTerm  bool
	DisableStallTerm bool

	// CriticalFraction is the share of a block's warps IsCritical
	// reports as critical ("slow"), ranked by criticality. The paper's
	// accuracy metric uses the slower half (0.5, the default); smaller
	// values make the cache-prioritization flag more selective.
	CriticalFraction float64
}

// NewCPL returns an empty predictor for one SM.
func NewCPL() *CPL {
	return &CPL{blocks: make(map[int][]*warpCrit)}
}

func (c *CPL) at(slot int) *warpCrit {
	if slot < 0 || slot >= len(c.slots) {
		return nil
	}
	return c.slots[slot]
}

// OnWarpArrived implements sm.CriticalityProvider.
func (c *CPL) OnWarpArrived(slot int, w *simt.Warp) {
	for slot >= len(c.slots) {
		c.slots = append(c.slots, nil)
	}
	wc := &warpCrit{gid: w.GID, block: w.Block, lastSeen: c.now}
	c.slots[slot] = wc
	c.blocks[w.Block] = append(c.blocks[w.Block], wc)
}

// OnWarpFinished implements sm.CriticalityProvider.
func (c *CPL) OnWarpFinished(slot int) {
	wc := c.at(slot)
	if wc == nil {
		return
	}
	c.slots[slot] = nil
	peers := c.blocks[wc.block]
	for i, p := range peers {
		if p == wc {
			peers = append(peers[:i], peers[i+1:]...) //cawalint:alloc-ok in-place removal within the block peer list's existing capacity
			break
		}
	}
	if len(peers) == 0 {
		delete(c.blocks, wc.block)
	} else {
		c.blocks[wc.block] = peers
	}
}

// OnIssue implements sm.CriticalityProvider: Algorithm 3's stall
// accumulation, the per-commit decrement, and Algorithm 2's branch-path
// disparity update.
func (c *CPL) OnIssue(slot int, st *simt.Step, stallCycles, cycle int64) {
	wc := c.at(slot)
	if wc == nil {
		return
	}
	if wc.issues == 0 {
		wc.arrive = cycle - stallCycles - 1
	}
	wc.issues++
	wc.lastSeen = cycle
	if cycle > c.now {
		c.now = cycle
	}
	if !c.DisableStallTerm {
		wc.nStall += float64(stallCycles)
	}
	if c.DisableInstTerm {
		return
	}
	// Commit balancing: every committed instruction reduces the
	// predicted remaining disparity.
	if wc.nInst > 0 {
		wc.nInst--
	}
	if st.CondBranch {
		wc.nInst += branchPathLength(st)
	}
}

// branchPathLength infers, from the branch outcome, how many
// instructions the warp is about to execute before reaching the
// reconvergence point — the dynamic-instruction disparity signal of
// Algorithm 2. Divergent warps pay for both paths.
func branchPathLength(st *simt.Step) float64 {
	rpc := st.Instr.Rpc
	target := st.Instr.Target()
	fall := st.PC + 1
	switch {
	case st.Divergent:
		return pathLen(target, rpc) + pathLen(fall, rpc)
	case st.TakenMask != 0:
		return pathLen(target, rpc)
	default:
		return pathLen(fall, rpc)
	}
}

// pathLen estimates instructions from pc to the reconvergence point.
// Backward targets (loops) count the full loop body ahead.
func pathLen(from, rpc int32) float64 {
	if rpc <= from {
		return 0
	}
	return float64(rpc - from)
}

// Criticality implements sm.CriticalityProvider.
func (c *CPL) Criticality(slot int) float64 {
	wc := c.at(slot)
	if wc == nil {
		return 0
	}
	return wc.criticality(c.now)
}

// IsCritical implements sm.CriticalityProvider: a warp is predicted
// critical ("slow", Section 5.2) when its criticality exceeds that of
// more than half of its thread-block peers.
func (c *CPL) IsCritical(slot int) bool {
	wc := c.at(slot)
	if wc == nil {
		return false
	}
	blk := c.blocks[wc.block]
	if len(blk) <= 1 {
		return true // lone warp dominates its block
	}
	mine := wc.criticality(c.now)
	below := 0
	for _, peer := range blk {
		if peer != wc && peer.criticality(c.now) < mine {
			below++
		}
	}
	f := c.CriticalFraction
	if f <= 0 {
		f = 0.5
	}
	// Critical when ranked within the top f fraction of peers.
	return float64(below) >= float64(len(blk))*(1-f)
}

// GID returns the warp occupying a slot (-1 when free); used by
// sampling harnesses to attribute criticality snapshots.
func (c *CPL) GID(slot int) int {
	if wc := c.at(slot); wc != nil {
		return wc.gid
	}
	return -1
}

// Rank returns the slot's criticality rank within its block: 0 is the
// least critical, n-1 the most critical of n resident peers (Figure 12).
func (c *CPL) Rank(slot int) (rank, peers int) {
	wc := c.at(slot)
	if wc == nil {
		return 0, 0
	}
	blk := c.blocks[wc.block]
	mine := wc.criticality(c.now)
	below := 0
	for _, peer := range blk {
		if peer != wc && peer.criticality(c.now) < mine {
			below++
		}
	}
	return below, len(blk)
}
