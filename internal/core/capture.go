package core

import (
	"fmt"
	"sort"
)

// Serializable snapshots of the CAWA state machines. The configuration
// halves (CACPConfig, the CPL ablation flags' defaults) are not part of
// the snapshots: the restoring side reconstructs the providers from the
// same SystemConfig and then overlays the captured dynamic state.

// WarpCritState is the snapshot of one resident warp's CPL counters.
type WarpCritState struct {
	Valid bool
	GID   int
	Block int

	NInst    float64
	NStall   float64
	Issues   int64
	Arrive   int64
	LastSeen int64
}

// CPLState is the snapshot of one SM's criticality prediction logic.
// The blocks index is not serialized — it is rebuilt from the slot
// array in slot order, which is equivalent for every CPL query (peer
// scans only count strict comparisons, never positions).
type CPLState struct {
	Slots []WarpCritState
	Now   int64
}

// Capture snapshots the predictor.
func (c *CPL) Capture() CPLState {
	st := CPLState{Slots: make([]WarpCritState, len(c.slots)), Now: c.now}
	for i, wc := range c.slots {
		if wc == nil {
			continue
		}
		st.Slots[i] = WarpCritState{
			Valid: true, GID: wc.gid, Block: wc.block,
			NInst: wc.nInst, NStall: wc.nStall,
			Issues: wc.issues, Arrive: wc.arrive, LastSeen: wc.lastSeen,
		}
	}
	return st
}

// Restore overwrites the predictor's dynamic state from a snapshot,
// rebuilding the block peer index from the slot array.
func (c *CPL) Restore(st CPLState) {
	c.slots = make([]*warpCrit, len(st.Slots))
	c.blocks = make(map[int][]*warpCrit)
	for i, s := range st.Slots {
		if !s.Valid {
			continue
		}
		wc := &warpCrit{
			gid: s.GID, block: s.Block,
			nInst: s.NInst, nStall: s.NStall,
			issues: s.Issues, arrive: s.Arrive, lastSeen: s.LastSeen,
		}
		c.slots[i] = wc
		c.blocks[s.Block] = append(c.blocks[s.Block], wc)
	}
	c.now = st.Now
}

// DynPartSnapshot is the snapshot of the adaptive-partition controller.
type DynPartSnapshot struct {
	Ways        int
	TotalWays   int
	Fills       uint64
	HitsCrit    uint64
	HitsNon     uint64
	Adjustments uint64
}

// CACPState is the snapshot of one SM's cache-prioritization policy:
// the CCBP and SHiP predictor tables, the bimodal fill counter, the
// dynamic-partition controller, and the prediction statistics.
type CACPState struct {
	CCBP  []uint8
	SHiP  []uint8
	Dyn   DynPartSnapshot
	Fills uint64

	PredCritical    uint64
	PredNonCritical uint64
	CCBPDemotions   uint64
	SHiPDemotions   uint64
}

// Capture snapshots the policy's dynamic state.
func (c *CACP) Capture() CACPState {
	st := CACPState{
		CCBP: append([]uint8(nil), c.ccbp[:]...),
		SHiP: append([]uint8(nil), c.ship[:]...),
		Dyn: DynPartSnapshot{
			Ways: c.dyn.ways, TotalWays: c.dyn.totalWays,
			Fills: c.dyn.fills, HitsCrit: c.dyn.hitsCrit, HitsNon: c.dyn.hitsNon,
			Adjustments: c.dyn.Adjustments,
		},
		Fills:           c.fills,
		PredCritical:    c.PredCritical,
		PredNonCritical: c.PredNonCritical,
		CCBPDemotions:   c.CCBPDemotions,
		SHiPDemotions:   c.SHiPDemotions,
	}
	return st
}

// Restore overlays a snapshot onto a policy built with the same
// CACPConfig.
func (c *CACP) Restore(st CACPState) error {
	if len(st.CCBP) != sigEntries || len(st.SHiP) != sigEntries {
		return fmt.Errorf("core: CACP restore table size mismatch (ccbp %d, ship %d, want %d)",
			len(st.CCBP), len(st.SHiP), sigEntries)
	}
	copy(c.ccbp[:], st.CCBP)
	copy(c.ship[:], st.SHiP)
	c.dyn.ways = st.Dyn.Ways
	c.dyn.totalWays = st.Dyn.TotalWays
	c.dyn.fills = st.Dyn.Fills
	c.dyn.hitsCrit = st.Dyn.HitsCrit
	c.dyn.hitsNon = st.Dyn.HitsNon
	c.dyn.Adjustments = st.Dyn.Adjustments
	c.fills = st.Fills
	c.PredCritical = st.PredCritical
	c.PredNonCritical = st.PredNonCritical
	c.CCBPDemotions = st.CCBPDemotions
	c.SHiPDemotions = st.SHiPDemotions
	return nil
}

// OracleSlotState is the snapshot of one slot's oracle entry.
type OracleSlotState struct {
	Slot  int
	GID   int
	Block int
	Crit  float64
}

// OracleState is the snapshot of an Oracle provider's resident-warp
// index. The profiled values table is static configuration and is not
// serialized — the restoring side reconstructs the provider from the
// same SystemConfig.
type OracleState struct {
	Slots []OracleSlotState // sorted by slot
}

// Capture snapshots the provider's resident-warp index.
func (o *Oracle) Capture() OracleState {
	st := OracleState{Slots: make([]OracleSlotState, 0, len(o.slots))}
	for slot, ow := range o.slots {
		st.Slots = append(st.Slots, OracleSlotState{
			Slot: slot, GID: ow.gid, Block: ow.block, Crit: ow.crit,
		})
	}
	sort.Slice(st.Slots, func(i, j int) bool { return st.Slots[i].Slot < st.Slots[j].Slot })
	return st
}

// Restore rebuilds the resident-warp index from a snapshot.
func (o *Oracle) Restore(st OracleState) {
	o.slots = make(map[int]*oracleWarp, len(st.Slots))
	o.blocks = make(map[int]map[int]*oracleWarp)
	for _, s := range st.Slots {
		ow := &oracleWarp{gid: s.GID, block: s.Block, crit: s.Crit}
		o.slots[s.Slot] = ow
		blk := o.blocks[s.Block]
		if blk == nil {
			blk = make(map[int]*oracleWarp)
			o.blocks[s.Block] = blk
		}
		blk[s.Slot] = ow
	}
}
