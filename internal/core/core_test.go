package core

import (
	"testing"
	"testing/quick"

	"cawa/internal/cache"
	"cawa/internal/config"
	"cawa/internal/isa"
	"cawa/internal/memory"
	"cawa/internal/simt"
)

func mkWarp(gid, block, idx int) *simt.Warp {
	return simt.NewWarp(gid, block, idx, 32, 32, 100)
}

func computeStep(pc int32) *simt.Step {
	return &simt.Step{PC: pc, Instr: isa.Instr{Op: isa.OpAdd}, Lanes: 32}
}

func branchStep(pc, target, rpc int32, taken uint64, divergent bool) *simt.Step {
	return &simt.Step{
		PC:         pc,
		Instr:      isa.Instr{Op: isa.OpCBra, Imm: int64(target), Rpc: rpc},
		Lanes:      32,
		CondBranch: true,
		Divergent:  divergent,
		TakenMask:  taken,
	}
}

func TestCPLStallAccumulation(t *testing.T) {
	c := NewCPL()
	c.OnWarpArrived(0, mkWarp(100, 0, 0))
	c.OnWarpArrived(1, mkWarp(101, 0, 1))
	// Both warps last issue at cycle 61, but warp 1 accumulated 50
	// stall cycles along the way.
	c.OnIssue(0, computeStep(0), 0, 10)
	c.OnIssue(0, computeStep(1), 0, 61)
	c.OnIssue(1, computeStep(0), 0, 10)
	c.OnIssue(1, computeStep(1), 50, 61)
	if c.Criticality(1) <= c.Criticality(0) {
		t.Fatalf("stalled warp criticality %v <= %v", c.Criticality(1), c.Criticality(0))
	}
	if !c.IsCritical(1) {
		t.Fatal("stalled warp not flagged critical")
	}
	if c.IsCritical(0) {
		t.Fatal("fast warp flagged critical")
	}
}

func TestCPLBranchPathDisparity(t *testing.T) {
	c := NewCPL()
	c.OnWarpArrived(0, mkWarp(0, 0, 0))
	c.OnWarpArrived(1, mkWarp(1, 0, 1))
	// Warp 0 diverges: pays for both paths (rpc=20, target=10, fall=6).
	c.OnIssue(0, branchStep(5, 10, 20, 0xF, true), 0, 1)
	// Warp 1 takes the short path (from 10 to 20 -> 10 instructions).
	c.OnIssue(1, branchStep(5, 10, 20, ^uint64(0), false), 0, 1)
	if c.Criticality(0) <= c.Criticality(1) {
		t.Fatalf("divergent warp criticality %v <= uniform %v",
			c.Criticality(0), c.Criticality(1))
	}
}

func TestCPLCommitBalancing(t *testing.T) {
	c := NewCPL()
	c.OnWarpArrived(0, mkWarp(0, 0, 0))
	c.OnIssue(0, branchStep(0, 2, 10, ^uint64(0), false), 0, 1)
	after := c.Criticality(0)
	// Committing instructions should reduce predicted remaining work.
	for i := 0; i < 8; i++ {
		c.OnIssue(0, computeStep(int32(2+i)), 0, int64(2+i))
	}
	if got := c.Criticality(0); got >= after {
		t.Fatalf("criticality %v did not decrease from %v after commits", got, after)
	}
}

func TestCPLLifecycle(t *testing.T) {
	c := NewCPL()
	c.OnWarpArrived(3, mkWarp(7, 2, 0))
	if c.GID(3) != 7 {
		t.Fatalf("gid = %d", c.GID(3))
	}
	if !c.IsCritical(3) {
		t.Fatal("lone warp must be critical")
	}
	c.OnWarpFinished(3)
	if c.GID(3) != -1 || c.Criticality(3) != 0 || c.IsCritical(3) {
		t.Fatal("finished slot still live")
	}
	// Finishing twice or querying unknown slots is harmless.
	c.OnWarpFinished(3)
	c.OnWarpFinished(99)
	_ = c.Criticality(99)
}

func TestCPLRank(t *testing.T) {
	c := NewCPL()
	for i := 0; i < 4; i++ {
		c.OnWarpArrived(i, mkWarp(i, 0, i))
	}
	// Give slot 2 the highest stall, slot 0 none; align the final issue
	// cycle so the pending-stall term is equal for every warp.
	c.OnIssue(0, computeStep(0), 0, 200)
	c.OnIssue(1, computeStep(0), 10, 200)
	c.OnIssue(2, computeStep(0), 99, 200)
	c.OnIssue(3, computeStep(0), 5, 200)
	rank, peers := c.Rank(2)
	if peers != 4 || rank != 3 {
		t.Fatalf("rank=%d peers=%d, want 3/4", rank, peers)
	}
	rank, _ = c.Rank(0)
	if rank != 0 {
		t.Fatalf("fast warp rank=%d, want 0", rank)
	}
}

func TestCPLAblationSwitches(t *testing.T) {
	c := NewCPL()
	c.DisableStallTerm = true
	c.OnWarpArrived(0, mkWarp(0, 0, 0))
	c.OnIssue(0, computeStep(0), 1000, 1001)
	if got := c.Criticality(0); got != 0 {
		t.Fatalf("stall term disabled but criticality %v", got)
	}
	c2 := NewCPL()
	c2.DisableInstTerm = true
	c2.OnWarpArrived(0, mkWarp(0, 0, 0))
	c2.OnIssue(0, branchStep(0, 2, 50, ^uint64(0), false), 0, 1)
	if got := c2.Criticality(0); got != 0 {
		t.Fatalf("inst term disabled but criticality %v", got)
	}
}

func TestOracleProvider(t *testing.T) {
	o := NewOracle(map[int]float64{10: 100, 11: 900, 12: 500})
	o.OnWarpArrived(0, mkWarp(10, 0, 0))
	o.OnWarpArrived(1, mkWarp(11, 0, 1))
	o.OnWarpArrived(2, mkWarp(12, 0, 2))
	if o.Criticality(1) != 900 {
		t.Fatalf("oracle criticality %v", o.Criticality(1))
	}
	if !o.IsCritical(1) || o.IsCritical(0) {
		t.Fatal("oracle IsCritical wrong")
	}
	o.OnWarpFinished(1)
	if o.IsCritical(1) {
		t.Fatal("finished oracle warp still critical")
	}
	// With 10 and 12 left, 12 is above the median.
	if !o.IsCritical(2) {
		t.Fatal("12 should be critical among {10,12}")
	}
}

// cacpCache builds a 1-set cache governed by CACP for focused tests.
func cacpCache(ways, criticalWays int) (*cache.Cache, *CACP) {
	cfg := config.CacheConfig{Sets: 1, Ways: ways, LineBytes: 128}
	p := NewCACP(CACPConfig{CriticalWays: criticalWays, Signature: SigPCXorAddr, LineBytes: 128})
	return cache.New(cfg, p), p
}

func TestCACPSignature(t *testing.T) {
	p := NewCACP(DefaultCACPConfig())
	// Same PC and line -> same signature; different line -> usually different.
	if p.Signature(0x12, 0x80) != p.Signature(0x12, 0x80+64) {
		t.Fatal("signature must ignore offsets within a line")
	}
	pcOnly := NewCACP(CACPConfig{CriticalWays: 8, Signature: SigPCOnly, LineBytes: 128})
	if pcOnly.Signature(0x12, 0) != pcOnly.Signature(0x12, 1<<20) {
		t.Fatal("pc-only signature must ignore the address")
	}
	addrOnly := NewCACP(CACPConfig{CriticalWays: 8, Signature: SigAddrOnly, LineBytes: 128})
	if addrOnly.Signature(1, 0x1000) != addrOnly.Signature(2, 0x1000) {
		t.Fatal("addr-only signature must ignore the PC")
	}
}

func TestCACPPartitionedFill(t *testing.T) {
	c, p := cacpCache(16, 8)
	// Cold CCBP: everything predicted non-critical -> ways 8..15.
	for i := int64(0); i < 8; i++ {
		c.Fill(cache.Request{Addr: i * 128, PC: 1})
	}
	for w := 0; w < 8; w++ {
		if c.Line(0, w).Valid {
			t.Fatalf("critical way %d filled by non-critical prediction", w)
		}
	}
	for w := 8; w < 16; w++ {
		if !c.Line(0, w).Valid || c.Line(0, w).InCritical {
			t.Fatalf("non-critical way %d state wrong", w)
		}
	}
	if p.PredNonCritical != 8 || p.PredCritical != 0 {
		t.Fatalf("prediction counters %d/%d", p.PredCritical, p.PredNonCritical)
	}
}

func TestCACPTrainingPromotesToCritical(t *testing.T) {
	c, p := cacpCache(16, 8)
	req := cache.Request{Addr: 0x1000, PC: 42}
	sig := p.Signature(req.PC, req.Addr)
	c.Fill(req)
	// Two hits from a critical warp saturate the CCBP past threshold.
	critReq := req
	critReq.Critical = true
	c.Access(critReq)
	c.Access(critReq)
	if got := p.CCBPCounter(sig); got < 2 {
		t.Fatalf("CCBP counter %d after critical reuse", got)
	}
	// A new line with the same signature now lands in the critical
	// partition.
	req2 := cache.Request{Addr: 0x1000 + 256*128, PC: 42}
	if p.Signature(req2.PC, req2.Addr) != sig {
		t.Fatal("test setup: signatures differ")
	}
	c.Fill(req2)
	_, way, hit := c.Probe(req2.Addr)
	if !hit || way >= 8 {
		t.Fatalf("trained fill landed in way %d (hit=%v), want critical partition", way, hit)
	}
}

func TestCACPEvictionTraining(t *testing.T) {
	c, p := cacpCache(16, 8)
	req := cache.Request{Addr: 0x2000, PC: 7}
	sig := p.Signature(req.PC, req.Addr)
	shipBefore := p.SHiPCounter(sig)
	c.Fill(req)
	set, way, _ := c.Probe(req.Addr)
	// Simulate an eviction of the untouched line: zero reuse decrements SHiP.
	ev := cache.Eviction{Valid: true, Addr: req.Addr, Line: *c.Line(set, way)}
	p.OnEvict(c, set, way, &ev)
	if got := p.SHiPCounter(sig); got != shipBefore-1 {
		t.Fatalf("SHiP %d after zero-reuse eviction, want %d", got, shipBefore-1)
	}
	if p.SHiPDemotions != 1 {
		t.Fatalf("SHiPDemotions %d", p.SHiPDemotions)
	}

	// Mispredicted-critical: critical-partition line reused only by
	// non-critical warps decrements CCBP (Algorithm 4, EvictLine).
	p.ccbp[sig] = 3
	line := cache.Line{Sig: sig, InCritical: true, NCReuse: true}
	ev2 := cache.Eviction{Valid: true, Line: line}
	p.OnEvict(c, 0, 0, &ev2)
	if got := p.CCBPCounter(sig); got != 2 {
		t.Fatalf("CCBP %d after demotion, want 2", got)
	}
}

func TestCACPSHiPInsertionAge(t *testing.T) {
	c, p := cacpCache(16, 8)
	req := cache.Request{Addr: 0x3000, PC: 9}
	sig := p.Signature(req.PC, req.Addr)
	// Default SHiP counter (1) inserts at "long".
	c.Fill(req)
	set, way, _ := c.Probe(req.Addr)
	if got := c.Line(set, way).RRPV; got != cache.RRPVLong {
		t.Fatalf("warm-signature insertion RRPV %d, want %d", got, cache.RRPVLong)
	}
	// Drive the signature to zero: insert at distant.
	p.ship[sig] = 0
	req2 := cache.Request{Addr: 0x3000 + 256*128, PC: 9}
	c.Fill(req2)
	set2, way2, _ := c.Probe(req2.Addr)
	if got := c.Line(set2, way2).RRPV; got != cache.RRPVMax {
		t.Fatalf("dead-signature insertion RRPV %d, want %d", got, cache.RRPVMax)
	}
	// A hit promotes to near and records reuse class.
	c.Access(cache.Request{Addr: req2.Addr, PC: 9})
	if got := c.Line(set2, way2).RRPV; got != cache.RRPVNear {
		t.Fatalf("post-hit RRPV %d", got)
	}
	if !c.Line(set2, way2).NCReuse || c.Line(set2, way2).CReuse {
		t.Fatal("reuse class flags wrong")
	}
}

// TestCACPPartitionInvariant: regardless of the access stream, every
// valid line lies in the partition recorded by its InCritical flag.
func TestCACPPartitionInvariant(t *testing.T) {
	f := func(ops [64]uint16) bool {
		c, _ := cacpCache(16, 8)
		for _, op := range ops {
			addr := int64(op%32) * 128
			pc := int32(op >> 8)
			critical := op&0x40 != 0
			req := cache.Request{Addr: addr, PC: pc, Critical: critical}
			if !c.Access(req) {
				c.Fill(req)
			}
		}
		for w := 0; w < 16; w++ {
			l := c.Line(0, w)
			if l.Valid && l.InCritical != (w < 8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCACPDegenerateWays(t *testing.T) {
	// All ways critical: non-critical fills fall back gracefully.
	c, _ := cacpCache(4, 4)
	for i := int64(0); i < 6; i++ {
		req := cache.Request{Addr: i * 128, PC: 3}
		if !c.Access(req) {
			c.Fill(req)
		}
	}
	// Zero critical ways: critical fills fall back too.
	c2, p2 := cacpCache(4, 0)
	p2.ccbp[p2.Signature(3, 0)] = 3
	c2.Fill(cache.Request{Addr: 0, PC: 3})
	if _, _, hit := c2.Probe(0); !hit {
		t.Fatal("fill lost with zero critical ways")
	}
}

func TestSystemConfigBuild(t *testing.T) {
	mem := memory.New(1 << 12)
	cfg := config.Small()
	for _, sc := range []SystemConfig{
		Baseline(),
		CAWA(),
		{Scheduler: "gto"},
		{Scheduler: "2lvl"},
		{Scheduler: "caws", Oracle: map[int]float64{0: 1}},
		{Scheduler: "gcaws", CPL: true},
		{Scheduler: "gto", CPL: true, CACP: true},
	} {
		if _, err := sc.NewGPU(cfg, mem); err != nil {
			t.Errorf("%s: %v", sc.Label(), err)
		}
	}
	if _, err := (SystemConfig{Scheduler: "bogus"}).NewGPU(cfg, mem); err == nil {
		t.Error("bogus scheduler accepted")
	}
	bad := DefaultCACPConfig()
	bad.CriticalWays = 99
	if _, err := (SystemConfig{Scheduler: "lrr", CACP: true, CACPConfig: &bad}).NewGPU(cfg, mem); err == nil {
		t.Error("oversized partition accepted")
	}
}

func TestSystemConfigLabels(t *testing.T) {
	cases := map[string]SystemConfig{
		"lrr":      Baseline(),
		"cawa":     CAWA(),
		"gto":      {Scheduler: "gto"},
		"gto+cacp": {Scheduler: "gto", CACP: true},
	}
	for want, sc := range cases {
		if got := sc.Label(); got != want {
			t.Errorf("label %q, want %q", got, want)
		}
	}
}
