package core

import (
	"strings"
	"testing"

	"cawa/internal/sm"
)

// TestSystemConfigKeyStable: keys must be value-derived — identical
// design points built independently key identically, distinct ones
// distinctly, and no pointer formatting may leak in.
func TestSystemConfigKeyStable(t *testing.T) {
	mk := func() SystemConfig {
		cfg := DefaultCACPConfig()
		cfg.CriticalWays = 4
		return SystemConfig{Scheduler: "gcaws", CPL: true, CACP: true, CACPConfig: &cfg}
	}
	k1, err := mk().Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := mk().Key() // fresh CACPConfig pointer, same values
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("identical design points keyed differently:\n%s\n%s", k1, k2)
	}
	if strings.Contains(k1, "0x") {
		t.Fatalf("key leaks pointer formatting: %s", k1)
	}

	other := mk()
	otherCfg := *other.CACPConfig
	otherCfg.CriticalWays = 8
	other.CACPConfig = &otherCfg
	k3, err := other.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Fatal("distinct CACP configurations collided")
	}
}

// TestSystemConfigKeyVariant: function-valued fields require a Variant
// label, and the label differentiates keys.
func TestSystemConfigKeyVariant(t *testing.T) {
	tweak := func(c *CPL) { c.DisableInstTerm = true }
	if _, err := (SystemConfig{Scheduler: "gcaws", CPL: true, CPLTweak: tweak}).Key(); err == nil {
		t.Fatal("CPLTweak without Variant keyed")
	}
	override := func() sm.CriticalityProvider { return NewCPL() }
	if _, err := (SystemConfig{Scheduler: "lrr", ProviderOverride: override}).Key(); err == nil {
		t.Fatal("ProviderOverride without Variant keyed")
	}
	ka, err := (SystemConfig{Scheduler: "gcaws", CPL: true, CPLTweak: tweak, Variant: "a"}).Key()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := (SystemConfig{Scheduler: "gcaws", CPL: true, CPLTweak: tweak, Variant: "b"}).Key()
	if err != nil {
		t.Fatal(err)
	}
	if ka == kb {
		t.Fatal("distinct Variants collided")
	}
}

// TestSystemConfigKeyOracle: oracle profiles hash into the key —
// identical tables key identically regardless of construction order,
// distinct tables key distinctly.
func TestSystemConfigKeyOracle(t *testing.T) {
	o1 := map[int]float64{1: 10, 2: 20, 3: 30}
	o2 := map[int]float64{3: 30, 2: 20, 1: 10} // same entries, other order
	o3 := map[int]float64{1: 10, 2: 20, 3: 31}
	k1, err := (SystemConfig{Scheduler: "caws", Oracle: o1}).Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := (SystemConfig{Scheduler: "caws", Oracle: o2}).Key()
	if err != nil {
		t.Fatal(err)
	}
	k3, err := (SystemConfig{Scheduler: "caws", Oracle: o3}).Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("oracle fingerprint depends on map order")
	}
	if k1 == k3 {
		t.Fatal("distinct oracle tables collided")
	}
}
