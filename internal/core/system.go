package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cawa/internal/cache"
	"cawa/internal/config"
	"cawa/internal/gpu"
	"cawa/internal/memory"
	"cawa/internal/sched"
	"cawa/internal/sm"
)

// SystemConfig names one evaluated design point: a warp scheduler, an
// optional criticality provider, and an optional CACP L1D policy. The
// figures of Section 5 compare these combinations:
//
//	{Scheduler: "lrr"}                         — baseline RR
//	{Scheduler: "gto"}                         — GTO
//	{Scheduler: "2lvl"}                        — two-level
//	{Scheduler: "caws", Oracle: profiled}      — oracle CAWS (PACT'14)
//	{Scheduler: "gcaws", CPL: true}            — CAWA_gCAWS
//	{Scheduler: "gcaws", CPL: true, CACP: true} — full CAWA
//	{Scheduler: "gto", CPL: true, CACP: true}  — CACP on GTO (Figs 16-17)
type SystemConfig struct {
	// Scheduler is a registered sched policy name.
	Scheduler string
	// CPL attaches the criticality prediction logic. Required by the
	// gcaws scheduler and by CACP (which consumes IsCritical).
	CPL bool
	// CACP replaces the L1D's LRU policy with criticality-aware cache
	// prioritization.
	CACP bool
	// CACPConfig overrides the default CACP parameters when CACP is
	// set; zero value means DefaultCACPConfig.
	CACPConfig *CACPConfig
	// Oracle supplies profiled per-warp criticality (global warp id ->
	// execution time); it takes precedence over CPL as the provider and
	// is what the caws scheduler expects.
	Oracle map[int]float64
	// CPLTweak, when non-nil, adjusts each CPL instance after creation
	// (ablation switches).
	CPLTweak func(*CPL)
	// ProviderOverride, when non-nil, replaces the criticality provider
	// factory entirely — used to decorate providers with trace
	// recorders or custom instrumentation.
	ProviderOverride func() sm.CriticalityProvider
	// Variant is a stable identity label distinguishing design points
	// whose behaviour lives in the non-comparable fields above
	// (CPLTweak, ProviderOverride). Key requires it whenever either is
	// set, so caches never collapse distinct variants or key off
	// process-specific pointer values.
	Variant string
}

// CAWA returns the full coordinated design of the paper:
// gCAWS + CPL + CACP.
func CAWA() SystemConfig {
	return SystemConfig{Scheduler: "gcaws", CPL: true, CACP: true}
}

// Baseline returns the round-robin baseline configuration.
func Baseline() SystemConfig { return SystemConfig{Scheduler: "lrr"} }

// Label renders a short name for tables.
func (sc SystemConfig) Label() string {
	label := sc.Scheduler
	if sc.Scheduler == "gcaws" && sc.CACP {
		label = "cawa"
	}
	if sc.CACP && sc.Scheduler != "gcaws" {
		label += "+cacp"
	}
	return label
}

// Key returns a stable identity for the design point, usable as a
// cache key across processes: it is built only from value state (never
// pointer formatting). Design points carrying behaviour in function
// fields (CPLTweak, ProviderOverride) must also set Variant; Key
// returns an error otherwise rather than silently colliding.
func (sc SystemConfig) Key() (string, error) {
	if (sc.CPLTweak != nil || sc.ProviderOverride != nil) && sc.Variant == "" {
		return "", fmt.Errorf("core: SystemConfig with CPLTweak/ProviderOverride requires a Variant label for a stable identity")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s|cpl=%v|cacp=%v", sc.Scheduler, sc.CPL, sc.CACP)
	if sc.CACPConfig != nil {
		c := sc.CACPConfig
		fmt.Fprintf(&b, "|ways=%d|sig=%d|line=%d|noship=%v|nopart=%v|dyn=%v|srrip=%v",
			c.CriticalWays, c.Signature, c.LineBytes,
			c.DisableSHiP, c.DisablePartition, c.DynamicPartition, c.UseSRRIP)
	}
	if sc.Oracle != nil {
		fmt.Fprintf(&b, "|oracle=%016x", oracleFingerprint(sc.Oracle))
	}
	if sc.Variant != "" {
		fmt.Fprintf(&b, "|variant=%s", sc.Variant)
	}
	return b.String(), nil
}

// oracleFingerprint hashes the oracle table (FNV-1a over sorted
// entries) so distinct profiles key distinctly and identical profiles
// key identically, independent of map iteration order.
func oracleFingerprint(oracle map[int]float64) uint64 {
	gids := make([]int, 0, len(oracle))
	for gid := range oracle {
		gids = append(gids, gid)
	}
	sort.Ints(gids)
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, gid := range gids {
		mix(uint64(gid))
		mix(math.Float64bits(oracle[gid]))
	}
	return h
}

// BuildOptions assembles gpu.Options for the design point.
func (sc SystemConfig) BuildOptions(cfg config.Config, mem *memory.Memory) (gpu.Options, error) {
	factory, ok := sched.Lookup(sc.Scheduler)
	if !ok {
		return gpu.Options{}, fmt.Errorf("core: unknown scheduler %q (have %v)", sc.Scheduler, sched.Names())
	}
	opt := gpu.Options{Config: cfg, Memory: mem, Policy: factory}

	needProvider := sc.CPL || sc.CACP || sc.Oracle != nil ||
		sc.Scheduler == "gcaws" || sc.Scheduler == "caws"
	if sc.ProviderOverride != nil {
		opt.Criticality = sc.ProviderOverride
	} else if needProvider {
		if sc.Oracle != nil {
			oracle := sc.Oracle
			opt.Criticality = func() sm.CriticalityProvider { return NewOracle(oracle) }
		} else {
			tweak := sc.CPLTweak
			opt.Criticality = func() sm.CriticalityProvider {
				c := NewCPL()
				if tweak != nil {
					tweak(c)
				}
				return c
			}
		}
	}
	if sc.CACP {
		ccfg := DefaultCACPConfig()
		if sc.CACPConfig != nil {
			ccfg = *sc.CACPConfig
		}
		if ccfg.LineBytes == 0 {
			ccfg.LineBytes = cfg.L1D.LineBytes
		}
		if ccfg.CriticalWays > cfg.L1D.Ways {
			return gpu.Options{}, fmt.Errorf("core: %d critical ways exceed %d-way L1D",
				ccfg.CriticalWays, cfg.L1D.Ways)
		}
		opt.L1Policy = func() cache.Policy { return NewCACP(ccfg) }
	}
	return opt, nil
}

// NewGPU builds a ready-to-launch GPU for the design point.
func (sc SystemConfig) NewGPU(cfg config.Config, mem *memory.Memory) (*gpu.GPU, error) {
	opt, err := sc.BuildOptions(cfg, mem)
	if err != nil {
		return nil, err
	}
	return gpu.New(opt)
}
