package core

import (
	"fmt"

	"cawa/internal/cache"
	"cawa/internal/config"
	"cawa/internal/gpu"
	"cawa/internal/memory"
	"cawa/internal/sched"
	"cawa/internal/sm"
)

// SystemConfig names one evaluated design point: a warp scheduler, an
// optional criticality provider, and an optional CACP L1D policy. The
// figures of Section 5 compare these combinations:
//
//	{Scheduler: "lrr"}                         — baseline RR
//	{Scheduler: "gto"}                         — GTO
//	{Scheduler: "2lvl"}                        — two-level
//	{Scheduler: "caws", Oracle: profiled}      — oracle CAWS (PACT'14)
//	{Scheduler: "gcaws", CPL: true}            — CAWA_gCAWS
//	{Scheduler: "gcaws", CPL: true, CACP: true} — full CAWA
//	{Scheduler: "gto", CPL: true, CACP: true}  — CACP on GTO (Figs 16-17)
type SystemConfig struct {
	// Scheduler is a registered sched policy name.
	Scheduler string
	// CPL attaches the criticality prediction logic. Required by the
	// gcaws scheduler and by CACP (which consumes IsCritical).
	CPL bool
	// CACP replaces the L1D's LRU policy with criticality-aware cache
	// prioritization.
	CACP bool
	// CACPConfig overrides the default CACP parameters when CACP is
	// set; zero value means DefaultCACPConfig.
	CACPConfig *CACPConfig
	// Oracle supplies profiled per-warp criticality (global warp id ->
	// execution time); it takes precedence over CPL as the provider and
	// is what the caws scheduler expects.
	Oracle map[int]float64
	// CPLTweak, when non-nil, adjusts each CPL instance after creation
	// (ablation switches).
	CPLTweak func(*CPL)
	// ProviderOverride, when non-nil, replaces the criticality provider
	// factory entirely — used to decorate providers with trace
	// recorders or custom instrumentation.
	ProviderOverride func() sm.CriticalityProvider
}

// CAWA returns the full coordinated design of the paper:
// gCAWS + CPL + CACP.
func CAWA() SystemConfig {
	return SystemConfig{Scheduler: "gcaws", CPL: true, CACP: true}
}

// Baseline returns the round-robin baseline configuration.
func Baseline() SystemConfig { return SystemConfig{Scheduler: "lrr"} }

// Label renders a short name for tables.
func (sc SystemConfig) Label() string {
	label := sc.Scheduler
	if sc.Scheduler == "gcaws" && sc.CACP {
		label = "cawa"
	}
	if sc.CACP && sc.Scheduler != "gcaws" {
		label += "+cacp"
	}
	return label
}

// BuildOptions assembles gpu.Options for the design point.
func (sc SystemConfig) BuildOptions(cfg config.Config, mem *memory.Memory) (gpu.Options, error) {
	factory, ok := sched.Lookup(sc.Scheduler)
	if !ok {
		return gpu.Options{}, fmt.Errorf("core: unknown scheduler %q (have %v)", sc.Scheduler, sched.Names())
	}
	opt := gpu.Options{Config: cfg, Memory: mem, Policy: factory}

	needProvider := sc.CPL || sc.CACP || sc.Oracle != nil ||
		sc.Scheduler == "gcaws" || sc.Scheduler == "caws"
	if sc.ProviderOverride != nil {
		opt.Criticality = sc.ProviderOverride
	} else if needProvider {
		if sc.Oracle != nil {
			oracle := sc.Oracle
			opt.Criticality = func() sm.CriticalityProvider { return NewOracle(oracle) }
		} else {
			tweak := sc.CPLTweak
			opt.Criticality = func() sm.CriticalityProvider {
				c := NewCPL()
				if tweak != nil {
					tweak(c)
				}
				return c
			}
		}
	}
	if sc.CACP {
		ccfg := DefaultCACPConfig()
		if sc.CACPConfig != nil {
			ccfg = *sc.CACPConfig
		}
		if ccfg.LineBytes == 0 {
			ccfg.LineBytes = cfg.L1D.LineBytes
		}
		if ccfg.CriticalWays > cfg.L1D.Ways {
			return gpu.Options{}, fmt.Errorf("core: %d critical ways exceed %d-way L1D",
				ccfg.CriticalWays, cfg.L1D.Ways)
		}
		opt.L1Policy = func() cache.Policy { return NewCACP(ccfg) }
	}
	return opt, nil
}

// NewGPU builds a ready-to-launch GPU for the design point.
func (sc SystemConfig) NewGPU(cfg config.Config, mem *memory.Memory) (*gpu.GPU, error) {
	opt, err := sc.BuildOptions(cfg, mem)
	if err != nil {
		return nil, err
	}
	return gpu.New(opt)
}
