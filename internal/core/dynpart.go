package core

// Dynamic partition tuning. Section 3.3 of the paper fixes the critical
// partition at 8 of 16 ways via offline sensitivity analysis and notes
// that "a design similar to [31] (utility-based cache partitioning) can
// be integrated to dynamically tune the size of the critical and
// non-critical cache partitions based on the run-time needs of an
// application". This file implements that extension: a lightweight
// hill-climbing controller that periodically compares the hit utility
// (hits per way) of the two partitions and moves the boundary one way
// toward the partition that is using its capacity better.

// Dynamic tuning parameters.
const (
	// dynPartPeriod is the number of L1D fills between boundary
	// adjustments.
	dynPartPeriod = 2048
	// dynPartMin / dynPartMax clamp the critical-way count so neither
	// class is ever starved completely.
	dynPartMin = 2
	// dynPartBias is the utility advantage (ratio) one partition must
	// show before the boundary moves, providing hysteresis.
	dynPartBias = 1.25
)

// dynPartState tracks per-period utility for the adaptive boundary.
type dynPartState struct {
	enabled   bool
	ways      int // current critical-way count
	totalWays int
	fills     uint64
	hitsCrit  uint64
	hitsNon   uint64

	// Adjustments counts boundary moves (statistics/tests).
	Adjustments uint64
}

// onHit records which partition served a hit.
func (d *dynPartState) onHit(inCritical bool) {
	if !d.enabled {
		return
	}
	if inCritical {
		d.hitsCrit++
	} else {
		d.hitsNon++
	}
}

// onFill advances the adaptation period.
func (d *dynPartState) onFill() {
	if !d.enabled {
		return
	}
	d.fills++
	if d.fills < dynPartPeriod {
		return
	}
	d.adapt()
	d.fills, d.hitsCrit, d.hitsNon = 0, 0, 0
}

// adapt moves the boundary one way toward the partition with the higher
// hits-per-way utility, with hysteresis.
func (d *dynPartState) adapt() {
	critWays := float64(d.ways)
	nonWays := float64(d.totalWays - d.ways)
	if critWays <= 0 || nonWays <= 0 {
		return
	}
	uCrit := float64(d.hitsCrit) / critWays
	uNon := float64(d.hitsNon) / nonWays
	max := d.totalWays - dynPartMin
	switch {
	case uCrit > uNon*dynPartBias && d.ways < max:
		d.ways++
		d.Adjustments++
	case uNon > uCrit*dynPartBias && d.ways > dynPartMin:
		d.ways--
		d.Adjustments++
	}
}
