// Package sched implements the warp scheduling policies evaluated in the
// paper: the loose round-robin baseline (LRR), greedy-then-oldest (GTO,
// Rogers et al. MICRO'12), the two-level scheduler (Narasiman et al.
// MICRO'11), the oracle criticality-aware scheduler CAWS (Lee & Wu
// PACT'14), and the paper's greedy criticality-aware scheduler gCAWS,
// which consumes the CPL criticality counters from internal/core.
package sched

import (
	"fmt"
	"sort"
)

// Context is the per-cycle view a policy selects from. Slots identify
// warp positions on the SM; the callbacks expose the slot metadata a
// policy may condition on.
type Context struct {
	// Cycle is the current SM cycle.
	Cycle int64
	// Ready lists the slots that can issue this cycle, in slot order.
	Ready []int
	// Age returns the dispatch sequence number of the slot's warp
	// (smaller is older).
	Age func(slot int) int64
	// Criticality returns the slot's current criticality estimate
	// (CPL counter for gCAWS, oracle value for CAWS, 0 otherwise).
	Criticality func(slot int) float64
	// WaitingMem reports whether the slot is blocked on a long-latency
	// event — an outstanding global-memory access or a block barrier —
	// (used by the two-level scheduler to demote warps).
	WaitingMem func(slot int) bool
}

// Policy selects which ready warp issues each cycle on one scheduler.
// A Policy instance is private to a single scheduler unit; it may keep
// state across cycles.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Select returns the chosen slot, or -1 to issue nothing.
	Select(ctx *Context) int
	// OnWarpArrived tells stateful policies a new warp occupies slot.
	OnWarpArrived(slot int)
	// OnWarpFinished tells stateful policies the slot's warp retired.
	OnWarpFinished(slot int)
}

// Factory creates one Policy instance per scheduler unit.
type Factory func() Policy

// registry of named policies for CLI tools.
var registry = map[string]Factory{}

// Register adds a named policy factory. It panics on duplicates, and is
// intended to be called from package init functions.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sched: duplicate policy %q", name))
	}
	registry[name] = f
}

// Lookup returns the factory for a registered policy name.
func Lookup(name string) (Factory, bool) {
	f, ok := registry[name]
	return f, ok
}

// Names returns the registered policy names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("lrr", func() Policy { return NewLRR() })
	Register("gto", func() Policy { return NewGTO() })
	Register("2lvl", func() Policy { return NewTwoLevel(DefaultActiveGroup) })
	Register("gcaws", func() Policy { return NewGCAWS() })
	Register("caws", func() Policy { return NewCAWS() })
}

// LRR is the loose round-robin baseline: warps issue in rotating slot
// order, each ready warp getting one instruction per turn.
type LRR struct {
	last int
}

// NewLRR returns a round-robin policy.
func NewLRR() *LRR { return &LRR{last: -1} }

// Name implements Policy.
func (*LRR) Name() string { return "LRR" }

// Select implements Policy: the first ready slot after the last issued
// slot, wrapping around.
func (p *LRR) Select(ctx *Context) int {
	if len(ctx.Ready) == 0 {
		return -1
	}
	for _, s := range ctx.Ready {
		if s > p.last {
			p.last = s
			return s
		}
	}
	s := ctx.Ready[0]
	p.last = s
	return s
}

// OnWarpArrived implements Policy.
func (*LRR) OnWarpArrived(int) {}

// OnWarpFinished implements Policy.
func (*LRR) OnWarpFinished(int) {}

// GTO is greedy-then-oldest: keep issuing from the same warp until it
// stalls, then switch to the oldest ready warp.
type GTO struct {
	current int
}

// NewGTO returns a greedy-then-oldest policy.
func NewGTO() *GTO { return &GTO{current: -1} }

// Name implements Policy.
func (*GTO) Name() string { return "GTO" }

// Select implements Policy.
func (p *GTO) Select(ctx *Context) int {
	if len(ctx.Ready) == 0 {
		return -1
	}
	for _, s := range ctx.Ready {
		if s == p.current {
			return s
		}
	}
	best, bestAge := -1, int64(0)
	for _, s := range ctx.Ready {
		if a := ctx.Age(s); best == -1 || a < bestAge {
			best, bestAge = s, a
		}
	}
	p.current = best
	return best
}

// OnWarpArrived implements Policy.
func (*GTO) OnWarpArrived(int) {}

// OnWarpFinished implements Policy.
func (p *GTO) OnWarpFinished(slot int) {
	if p.current == slot {
		p.current = -1
	}
}

// DefaultActiveGroup is the two-level scheduler's active-set size
// (fetch group of 8 warps, following Narasiman et al.).
const DefaultActiveGroup = 8

// TwoLevel keeps a small active set of warps scheduled round-robin and
// swaps a warp out to the pending set when it blocks on memory, hiding
// long latencies with the next pending warp.
type TwoLevel struct {
	groupSize int
	active    []int
	pending   []int
	// ready is the reused scratch buffer for the per-cycle
	// ready∩active filter; Select would otherwise allocate every call.
	ready []int
	rr    LRR
}

// NewTwoLevel returns a two-level policy with the given active-set size.
func NewTwoLevel(groupSize int) *TwoLevel {
	if groupSize <= 0 {
		groupSize = DefaultActiveGroup
	}
	return &TwoLevel{groupSize: groupSize, rr: LRR{last: -1}}
}

// Name implements Policy.
func (*TwoLevel) Name() string { return "2LVL" }

// Select implements Policy.
func (p *TwoLevel) Select(ctx *Context) int {
	// Demote active warps blocked on long-latency events, promote
	// pending ones. The promote scan is bounded by the pending length
	// so blocked warps rotate to the back without spinning forever.
	kept := p.active[:0]
	for _, s := range p.active {
		if ctx.WaitingMem(s) {
			p.pending = append(p.pending, s) //cawalint:alloc-ok amortized growth of the persistent pending set (bounded by warp slots)
		} else {
			kept = append(kept, s) //cawalint:alloc-ok in-place filter within the active set's existing capacity
		}
	}
	p.active = kept
	for scan := len(p.pending); scan > 0 && len(p.active) < p.groupSize && len(p.pending) > 0; scan-- {
		s := p.pending[0]
		p.pending = p.pending[1:]
		if ctx.WaitingMem(s) {
			p.pending = append(p.pending, s) //cawalint:alloc-ok amortized growth of the persistent pending set (bounded by warp slots)
			continue
		}
		p.active = append(p.active, s) //cawalint:alloc-ok amortized growth of the persistent active set (bounded by warp slots)
	}
	// Round-robin among ready warps restricted to the active set,
	// collected into the policy's reused scratch buffer.
	readyActive := p.ready[:0]
	for _, s := range ctx.Ready {
		if p.inActive(s) {
			readyActive = append(readyActive, s) //cawalint:alloc-ok amortized growth of the reused ready-scratch buffer
		}
	}
	p.ready = readyActive
	sub := *ctx
	sub.Ready = readyActive
	return p.rr.Select(&sub)
}

func (p *TwoLevel) inActive(slot int) bool {
	for _, s := range p.active {
		if s == slot {
			return true
		}
	}
	return false
}

// OnWarpArrived implements Policy.
func (p *TwoLevel) OnWarpArrived(slot int) {
	if len(p.active) < p.groupSize {
		p.active = append(p.active, slot)
	} else {
		p.pending = append(p.pending, slot)
	}
}

// OnWarpFinished implements Policy.
func (p *TwoLevel) OnWarpFinished(slot int) {
	p.active = remove(p.active, slot)
	p.pending = remove(p.pending, slot)
}

func remove(s []int, v int) []int {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x) //cawalint:alloc-ok in-place filter within the slice's existing capacity
		}
	}
	return out
}

// GCAWS is the paper's greedy criticality-aware warp scheduler
// (Section 3.2): issue from the most-critical ready warp, break ties by
// age (GTO), and keep issuing from the selected warp greedily until it
// has no issuable instruction.
type GCAWS struct {
	current int
}

// NewGCAWS returns a gCAWS policy; the SM supplies CPL criticality
// through Context.Criticality.
func NewGCAWS() *GCAWS { return &GCAWS{current: -1} }

// Name implements Policy.
func (*GCAWS) Name() string { return "gCAWS" }

// Select implements Policy.
func (p *GCAWS) Select(ctx *Context) int {
	if len(ctx.Ready) == 0 {
		return -1
	}
	// Greedy: stick with the current warp while it can issue.
	for _, s := range ctx.Ready {
		if s == p.current {
			return s
		}
	}
	best := -1
	var bestCrit float64
	var bestAge int64
	for _, s := range ctx.Ready {
		c, a := ctx.Criticality(s), ctx.Age(s)
		if best == -1 || c > bestCrit || (c == bestCrit && a < bestAge) {
			best, bestCrit, bestAge = s, c, a
		}
	}
	p.current = best
	return best
}

// OnWarpArrived implements Policy.
func (*GCAWS) OnWarpArrived(int) {}

// OnWarpFinished implements Policy.
func (p *GCAWS) OnWarpFinished(slot int) {
	if p.current == slot {
		p.current = -1
	}
}

// CAWS is the PACT'14 criticality-aware warp scheduler with oracle
// criticality: always issue the ready warp with the highest (oracle)
// criticality, tie-broken by age. It is not greedy and does not limit
// the active warp count.
type CAWS struct{}

// NewCAWS returns a CAWS policy; the harness supplies oracle criticality
// through Context.Criticality (profiled warp execution times).
func NewCAWS() *CAWS { return &CAWS{} }

// Name implements Policy.
func (*CAWS) Name() string { return "CAWS" }

// Select implements Policy.
func (*CAWS) Select(ctx *Context) int {
	best := -1
	var bestCrit float64
	var bestAge int64
	for _, s := range ctx.Ready {
		c, a := ctx.Criticality(s), ctx.Age(s)
		if best == -1 || c > bestCrit || (c == bestCrit && a < bestAge) {
			best, bestCrit, bestAge = s, c, a
		}
	}
	return best
}

// OnWarpArrived implements Policy.
func (*CAWS) OnWarpArrived(int) {}

// OnWarpFinished implements Policy.
func (*CAWS) OnWarpFinished(int) {}
