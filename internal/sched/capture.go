package sched

import "fmt"

// State is the serializable snapshot of one policy instance. Exactly
// one of the per-policy fields is meaningful, keyed by Kind (the
// policy's registry name); stateless policies (caws) carry nothing
// beyond the kind. Snapshots are plain data so the checkpoint layer
// can gob-encode them.
type State struct {
	Kind string

	// lrr
	Last int
	// gto / gcaws
	Current int
	// 2lvl
	GroupSize int
	Active    []int
	Pending   []int
	RRLast    int
}

// Capture snapshots a policy instance. Policies outside this package's
// registry are rejected: a checkpoint must never silently drop
// scheduler state.
func Capture(p Policy) (State, error) {
	switch p := p.(type) {
	case *LRR:
		return State{Kind: "lrr", Last: p.last}, nil
	case *GTO:
		return State{Kind: "gto", Current: p.current}, nil
	case *TwoLevel:
		st := State{
			Kind:      "2lvl",
			GroupSize: p.groupSize,
			Active:    append([]int(nil), p.active...),
			Pending:   append([]int(nil), p.pending...),
			RRLast:    p.rr.last,
		}
		return st, nil
	case *GCAWS:
		return State{Kind: "gcaws", Current: p.current}, nil
	case *CAWS:
		return State{Kind: "caws"}, nil
	default:
		return State{}, fmt.Errorf("sched: policy %s is not checkpointable", p.Name())
	}
}

// Restore overwrites a policy instance with a captured snapshot. The
// policy's concrete type must match the snapshot's kind.
func Restore(p Policy, st State) error {
	switch p := p.(type) {
	case *LRR:
		if st.Kind != "lrr" {
			return restoreMismatch("lrr", st.Kind)
		}
		p.last = st.Last
	case *GTO:
		if st.Kind != "gto" {
			return restoreMismatch("gto", st.Kind)
		}
		p.current = st.Current
	case *TwoLevel:
		if st.Kind != "2lvl" {
			return restoreMismatch("2lvl", st.Kind)
		}
		p.groupSize = st.GroupSize
		p.active = append(p.active[:0], st.Active...)
		p.pending = append(p.pending[:0], st.Pending...)
		p.rr.last = st.RRLast
	case *GCAWS:
		if st.Kind != "gcaws" {
			return restoreMismatch("gcaws", st.Kind)
		}
		p.current = st.Current
	case *CAWS:
		if st.Kind != "caws" {
			return restoreMismatch("caws", st.Kind)
		}
	default:
		return fmt.Errorf("sched: policy %s is not checkpointable", p.Name())
	}
	return nil
}

func restoreMismatch(have, got string) error {
	return fmt.Errorf("sched: restore kind mismatch (policy %s, snapshot %s)", have, got)
}
