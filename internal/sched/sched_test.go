package sched

import (
	"testing"
	"testing/quick"
)

// mkCtx builds a selection context with fixed ages (slot index = age)
// and criticality values.
func mkCtx(ready []int, crit map[int]float64, waiting map[int]bool) *Context {
	return &Context{
		Ready: ready,
		Age:   func(s int) int64 { return int64(s) },
		Criticality: func(s int) float64 {
			return crit[s]
		},
		WaitingMem: func(s int) bool { return waiting[s] },
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"2lvl", "caws", "gcaws", "gto", "lrr"}
	if len(names) != len(want) {
		t.Fatalf("registered %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("registered %v, want %v", names, want)
		}
		f, ok := Lookup(n)
		if !ok || f() == nil {
			t.Fatalf("factory for %s broken", n)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus lookup succeeded")
	}
}

func TestLRRRotation(t *testing.T) {
	p := NewLRR()
	ready := []int{1, 3, 5}
	var order []int
	for i := 0; i < 6; i++ {
		order = append(order, p.Select(mkCtx(ready, nil, nil)))
	}
	want := []int{1, 3, 5, 1, 3, 5}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("rotation %v, want %v", order, want)
		}
	}
	if p.Select(mkCtx(nil, nil, nil)) != -1 {
		t.Fatal("empty ready must select -1")
	}
}

func TestLRRSkipsNotReady(t *testing.T) {
	p := NewLRR()
	if got := p.Select(mkCtx([]int{2, 4}, nil, nil)); got != 2 {
		t.Fatalf("first pick %d", got)
	}
	// Slot 3 becomes ready; it is after 2, so it goes next.
	if got := p.Select(mkCtx([]int{3, 4}, nil, nil)); got != 3 {
		t.Fatalf("second pick %d", got)
	}
	// Wrap around.
	if got := p.Select(mkCtx([]int{0, 1}, nil, nil)); got != 0 {
		t.Fatalf("wrap pick %d", got)
	}
}

func TestGTOGreedyThenOldest(t *testing.T) {
	p := NewGTO()
	// First pick: oldest ready = 2.
	if got := p.Select(mkCtx([]int{5, 2, 9}, nil, nil)); got != 2 {
		t.Fatalf("first pick %d", got)
	}
	// Greedy: 2 still ready, stick with it.
	if got := p.Select(mkCtx([]int{2, 5}, nil, nil)); got != 2 {
		t.Fatalf("greedy pick %d", got)
	}
	// 2 stalls: switch to oldest remaining (5), then stay greedy on 5.
	if got := p.Select(mkCtx([]int{9, 5}, nil, nil)); got != 5 {
		t.Fatalf("switch pick %d", got)
	}
	if got := p.Select(mkCtx([]int{5, 2}, nil, nil)); got != 5 {
		t.Fatalf("greedy-after-switch pick %d", got)
	}
	p.OnWarpFinished(5)
	if got := p.Select(mkCtx([]int{9, 2}, nil, nil)); got != 2 {
		t.Fatalf("post-finish pick %d", got)
	}
}

func TestTwoLevelActiveSetLimit(t *testing.T) {
	p := NewTwoLevel(2)
	for s := 0; s < 4; s++ {
		p.OnWarpArrived(s)
	}
	// Only the active set {0,1} may issue.
	picks := map[int]bool{}
	for i := 0; i < 4; i++ {
		picks[p.Select(mkCtx([]int{0, 1, 2, 3}, nil, nil))] = true
	}
	if picks[2] || picks[3] {
		t.Fatalf("pending warps issued: %v", picks)
	}
	// Demote 0 and 1 on memory wait: 2 and 3 get promoted.
	waiting := map[int]bool{0: true, 1: true}
	got := p.Select(mkCtx([]int{2, 3}, nil, waiting))
	if got != 2 && got != 3 {
		t.Fatalf("promoted pick %d", got)
	}
}

func TestTwoLevelFinishCleanup(t *testing.T) {
	p := NewTwoLevel(2)
	p.OnWarpArrived(0)
	p.OnWarpArrived(1)
	p.OnWarpArrived(2)
	p.OnWarpFinished(0)
	p.OnWarpFinished(1)
	// Slot 2 must be promotable even though actives finished.
	if got := p.Select(mkCtx([]int{2}, nil, nil)); got != 2 {
		t.Fatalf("pick after finishes %d", got)
	}
}

func TestGCAWSCriticalityFirst(t *testing.T) {
	p := NewGCAWS()
	crit := map[int]float64{1: 5, 4: 50, 7: 20}
	if got := p.Select(mkCtx([]int{1, 4, 7}, crit, nil)); got != 4 {
		t.Fatalf("pick %d, want most critical 4", got)
	}
	// Greedy: stays on 4 while ready even if others become more critical.
	crit[7] = 100
	if got := p.Select(mkCtx([]int{1, 4, 7}, crit, nil)); got != 4 {
		t.Fatalf("greedy pick %d", got)
	}
	// 4 stalls: now the most critical ready is 7.
	if got := p.Select(mkCtx([]int{1, 7}, crit, nil)); got != 7 {
		t.Fatalf("switch pick %d", got)
	}
}

func TestGCAWSTieBreakOldest(t *testing.T) {
	p := NewGCAWS()
	crit := map[int]float64{3: 10, 8: 10, 5: 10}
	if got := p.Select(mkCtx([]int{5, 3, 8}, crit, nil)); got != 3 {
		t.Fatalf("tie pick %d, want oldest 3", got)
	}
}

func TestCAWSReRanksEveryCycle(t *testing.T) {
	p := NewCAWS()
	crit := map[int]float64{1: 5, 2: 50}
	if got := p.Select(mkCtx([]int{1, 2}, crit, nil)); got != 2 {
		t.Fatalf("pick %d", got)
	}
	// Unlike gCAWS, CAWS re-ranks: when 1 becomes more critical it wins
	// immediately even though 2 is still ready.
	crit[1] = 99
	if got := p.Select(mkCtx([]int{1, 2}, crit, nil)); got != 1 {
		t.Fatalf("re-rank pick %d", got)
	}
}

// TestPoliciesAlwaysPickReady: for any ready set, every policy returns
// either -1 (only when empty for lrr/gto/gcaws/caws) or a member of the
// ready set.
func TestPoliciesAlwaysPickReady(t *testing.T) {
	f := func(readySeed []uint8, critSeed []uint8) bool {
		ready := make([]int, 0, len(readySeed))
		seen := map[int]bool{}
		for _, r := range readySeed {
			s := int(r % 48)
			if !seen[s] {
				seen[s] = true
				ready = append(ready, s)
			}
		}
		crit := map[int]float64{}
		for i, c := range critSeed {
			crit[i%48] = float64(c)
		}
		for _, name := range []string{"lrr", "gto", "gcaws", "caws"} {
			f, _ := Lookup(name)
			p := f()
			got := p.Select(mkCtx(ready, crit, nil))
			if len(ready) == 0 {
				if got != -1 {
					return false
				}
				continue
			}
			if !seen[got] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTwoLevelPicksFromReadyOrIdles: 2lvl may idle (active set blocked)
// but must never pick an unready slot.
func TestTwoLevelPicksFromReadyOrIdles(t *testing.T) {
	f := func(arrivals [12]uint8, readySeed [8]uint8) bool {
		p := NewTwoLevel(4)
		seenArr := map[int]bool{}
		for _, a := range arrivals {
			s := int(a % 24)
			if !seenArr[s] {
				seenArr[s] = true
				p.OnWarpArrived(s)
			}
		}
		ready := make([]int, 0, len(readySeed))
		seen := map[int]bool{}
		for _, r := range readySeed {
			s := int(r % 24)
			if seenArr[s] && !seen[s] {
				seen[s] = true
				ready = append(ready, s)
			}
		}
		got := p.Select(mkCtx(ready, nil, nil))
		return got == -1 || seen[got]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Register("lrr", func() Policy { return NewLRR() })
}
