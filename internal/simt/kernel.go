// Package simt implements the functional side of SIMT execution: warps
// with PDOM reconvergence stacks, per-thread register files, and the
// semantics of every ISA instruction. The timing model (internal/sm)
// drives Step and decides *when* instructions issue; this package
// decides *what* they do.
package simt

import (
	"errors"
	"fmt"

	"cawa/internal/isa"
	"cawa/internal/isa/analysis"
	"cawa/internal/memory"
)

// Kernel is a launchable GPU program: code plus launch geometry and
// parameters (buffer base addresses and scalars).
type Kernel struct {
	// Name labels the kernel in reports.
	Name string
	// Program is the assembled code.
	Program *isa.Program
	// GridDim is the number of thread-blocks.
	GridDim int
	// BlockDim is the number of threads per block.
	BlockDim int
	// Params are the kernel arguments read by OpParam.
	Params []int64
	// SharedWords is the per-block shared memory requirement in words.
	SharedWords int
	// RegsPerThread, when positive, is enforced against the SM register
	// file during block dispatch (occupancy limiting). Zero disables the
	// register constraint.
	RegsPerThread int
}

// Validate reports whether the launch geometry is usable and runs the
// static verifier over the program: def-before-use, unreachable code,
// divergent barriers, reconvergence consistency, and launch-dependent
// affine bounds all fail the launch before a single cycle simulates.
func (k *Kernel) Validate() error {
	switch {
	case k.Program == nil:
		return errors.New("simt: kernel has no program")
	case k.GridDim <= 0:
		return fmt.Errorf("simt: kernel %s: GridDim %d must be positive", k.Name, k.GridDim)
	case k.BlockDim <= 0:
		return fmt.Errorf("simt: kernel %s: BlockDim %d must be positive", k.Name, k.BlockDim)
	case k.SharedWords < 0:
		return fmt.Errorf("simt: kernel %s: negative shared memory", k.Name)
	}
	if err := analysis.Verify(k.Program, analysis.Options{Launch: k.AnalysisLaunch()}); err != nil {
		return fmt.Errorf("simt: kernel %s: %w", k.Name, err)
	}
	return nil
}

// AnalysisLaunch translates the kernel's geometry into the verifier's
// launch description. GlobalBytes is unknown at this layer (the GPU
// fills it in at Launch time, where the memory size is known).
func (k *Kernel) AnalysisLaunch() *analysis.Launch {
	return &analysis.Launch{
		GridDim:     k.GridDim,
		BlockDim:    k.BlockDim,
		SharedWords: k.SharedWords,
		Params:      k.Params,
	}
}

// TotalThreads returns GridDim*BlockDim.
func (k *Kernel) TotalThreads() int { return k.GridDim * k.BlockDim }

// WarpsPerBlock returns the number of warps a block occupies for the
// given warp size.
func (k *Kernel) WarpsPerBlock(warpSize int) int {
	return (k.BlockDim + warpSize - 1) / warpSize
}

// ExecContext carries the environment one warp executes against.
type ExecContext struct {
	// Mem is the global memory.
	Mem *memory.Memory
	// Log, when non-nil, intercepts global-memory traffic: stores are
	// deferred into the log and loads forward from it before falling
	// back to Mem. The parallel engine installs one log per SM domain
	// so concurrent domains never write Mem directly (the orchestrator
	// flushes the logs in SM-id order at each epoch barrier). Nil — the
	// serial engine — executes directly against Mem.
	Log *memory.StoreLog
	// Shared is the owning block's shared memory.
	Shared []int64
	// Params are the kernel arguments.
	Params []int64
	// BlockID, GridDim, BlockDim describe the launch point.
	BlockID  int
	GridDim  int
	BlockDim int
}
