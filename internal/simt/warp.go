package simt

import (
	"fmt"
	"math/bits"

	"cawa/internal/isa"
)

// MaxWarpSize bounds the SIMD width (lane masks are uint64).
const MaxWarpSize = 64

// StackEntry is one level of the PDOM reconvergence stack.
type StackEntry struct {
	PC   int32  // next instruction for the threads in Mask
	RPC  int32  // PC at which this entry reconverges and pops
	Mask uint64 // active lanes
}

// Warp holds the architectural state of one warp: per-thread registers
// and the SIMT reconvergence stack.
type Warp struct {
	// GID is the warp's global identifier (unique across the launch).
	GID int
	// Block is the thread-block index in the grid.
	Block int
	// IndexInBlock is the warp's index within its block.
	IndexInBlock int
	// Size is the warp width in threads.
	Size int

	regs    [][isa.NumRegs]int64
	stack   []StackEntry
	exited  uint64 // lanes that have executed OpExit
	initial uint64 // lanes that exist (partial last warp has fewer)

	// AtBarrier is set while the warp waits at a block barrier; the
	// block-level barrier logic clears it.
	AtBarrier bool
}

// NewWarp creates a warp with lanes [0,lanes) active at PC 0. The
// reconvergence PC of the bottom stack entry is the program length
// (thread exit).
func NewWarp(gid, block, indexInBlock, lanes, size int, progLen int32) *Warp {
	if lanes <= 0 || lanes > size || size > MaxWarpSize {
		panic(fmt.Sprintf("simt: bad warp geometry lanes=%d size=%d", lanes, size))
	}
	mask := uint64(1)<<uint(lanes) - 1
	if lanes == 64 {
		mask = ^uint64(0)
	}
	return &Warp{
		GID:          gid,
		Block:        block,
		IndexInBlock: indexInBlock,
		Size:         size,
		regs:         make([][isa.NumRegs]int64, size),
		stack:        []StackEntry{{PC: 0, RPC: progLen, Mask: mask}},
		initial:      mask,
	}
}

// Done reports whether every lane has exited.
func (w *Warp) Done() bool { return len(w.stack) == 0 }

// PC returns the next instruction address, popping any reconverged stack
// entries first. Calling PC on a done warp panics.
func (w *Warp) PC() int32 {
	w.popReconverged()
	return w.top().PC
}

// ActiveMask returns the lanes that will execute the next instruction.
func (w *Warp) ActiveMask() uint64 {
	if w.Done() {
		return 0
	}
	w.popReconverged()
	return w.top().Mask
}

// ActiveCount returns the number of lanes executing the next instruction.
func (w *Warp) ActiveCount() int { return bits.OnesCount64(w.ActiveMask()) }

// StackDepth exposes the reconvergence-stack depth (tests, stats).
func (w *Warp) StackDepth() int { return len(w.stack) }

// Reg returns the value of register r in the given lane.
func (w *Warp) Reg(lane int, r isa.Reg) int64 { return w.regs[lane][r] }

// SetReg sets register r in the given lane.
func (w *Warp) SetReg(lane int, r isa.Reg, v int64) { w.regs[lane][r] = v }

func (w *Warp) top() *StackEntry { return &w.stack[len(w.stack)-1] }

func (w *Warp) popReconverged() {
	for len(w.stack) > 0 {
		t := w.top()
		if t.Mask != 0 && t.PC != t.RPC {
			return
		}
		w.stack = w.stack[:len(w.stack)-1]
	}
}

// exitLanes removes lanes from every stack entry (thread exit under
// divergence) and drops entries that became empty.
func (w *Warp) exitLanes(mask uint64) {
	w.exited |= mask
	kept := w.stack[:0]
	for _, e := range w.stack {
		e.Mask &^= mask
		if e.Mask != 0 {
			kept = append(kept, e) //cawalint:alloc-ok in-place filter within the stack's existing capacity
		}
	}
	w.stack = kept
}

// ExitedMask returns lanes that have terminated.
func (w *Warp) ExitedMask() uint64 { return w.exited }

// LaneExists reports whether the lane was populated at launch (the last
// warp of a block may be partial).
func (w *Warp) LaneExists(lane int) bool { return w.initial&(1<<uint(lane)) != 0 }
