package simt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cawa/internal/isa"
	"cawa/internal/memory"
)

// randProgram builds a random structured program: straight-line ALU
// blocks interleaved with lane-data-dependent if/else regions and
// bounded loops, using registers r0..r7 (r0 seeds from the lane id).
func randProgram(rng *rand.Rand) *isa.Program {
	b := isa.NewBuilder("prop")
	b.SReg(isa.R0, isa.SRLane)
	// r6 and r7 are reserved for loop counters and predicates so random
	// ALU writes cannot corrupt control flow.
	reg := func() isa.Reg { return isa.Reg(rng.Intn(6)) }
	emitALU := func(n int) {
		for i := 0; i < n; i++ {
			dst, a, c := reg(), reg(), reg()
			switch rng.Intn(7) {
			case 0:
				b.Add(dst, a, c)
			case 1:
				b.Sub(dst, a, c)
			case 2:
				b.MulI(dst, a, int64(rng.Intn(7))-3)
			case 3:
				b.Xor(dst, a, c)
			case 4:
				b.Min(dst, a, c)
			case 5:
				b.AddI(dst, a, int64(rng.Intn(100)))
			case 6:
				b.SetLT(dst, a, c)
			}
		}
	}
	for blk := 0; blk < 2+rng.Intn(4); blk++ {
		emitALU(1 + rng.Intn(4))
		switch rng.Intn(3) {
		case 0: // if/else on a lane-dependent predicate
			b.AndI(isa.R7, reg(), 1)
			thenL, joinL := b.FreshLabel("t"), b.FreshLabel("j")
			b.CBra(isa.R7, thenL)
			emitALU(1 + rng.Intn(3))
			b.Bra(joinL)
			b.Label(thenL)
			emitALU(1 + rng.Intn(3))
			b.Label(joinL)
		case 1: // bounded lane-data-dependent loop (0..3 iterations)
			b.AndI(isa.R6, reg(), 3)
			head, done := b.FreshLabel("h"), b.FreshLabel("d")
			b.Label(head)
			b.CBraZ(isa.R6, done)
			emitALU(1 + rng.Intn(2))
			b.SubI(isa.R6, isa.R6, 1)
			b.Bra(head)
			b.Label(done)
		default:
			emitALU(2)
		}
	}
	b.Exit()
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// TestWarpEqualsPerLaneExecution is the SIMT correctness property: a
// 8-lane warp executing a divergent program must produce, per lane,
// exactly the registers of a 1-lane warp running the same program.
func TestWarpEqualsPerLaneExecution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := randProgram(rng)
		ctx := &ExecContext{
			Mem:      memory.New(1 << 12),
			Shared:   make([]int64, 16),
			BlockDim: 8,
			GridDim:  1,
		}
		const lanes = 8
		warp := NewWarp(0, 0, 0, lanes, 32, int32(prog.Len()))
		for guard := 0; !warp.Done(); guard++ {
			if guard > 100000 {
				return false
			}
			Exec(warp, prog, ctx)
		}
		for lane := 0; lane < lanes; lane++ {
			solo := NewWarp(0, 0, 0, 1, 32, int32(prog.Len()))
			// The solo warp must see the same lane id: shift via SRLane
			// is impossible for lane > 0 in a 1-lane warp, so instead
			// seed r0 manually after the first instruction executes.
			ctx2 := &ExecContext{
				Mem:      memory.New(1 << 12),
				Shared:   make([]int64, 16),
				BlockDim: 8,
				GridDim:  1,
			}
			first := true
			for guard := 0; !solo.Done(); guard++ {
				if guard > 100000 {
					return false
				}
				Exec(solo, prog, ctx2)
				if first {
					solo.SetReg(0, isa.R0, int64(lane))
					first = false
				}
			}
			for r := isa.R0; r < 6; r++ {
				if warp.Reg(lane, r) != solo.Reg(0, r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
