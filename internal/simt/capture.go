package simt

import (
	"fmt"

	"cawa/internal/isa"
)

// WarpState is the serializable snapshot of one warp's architectural
// state: per-thread registers and the SIMT reconvergence stack. Every
// field is plain data, so the checkpoint layer can gob-encode it
// directly.
type WarpState struct {
	GID          int
	Block        int
	IndexInBlock int
	Size         int

	Regs      [][isa.NumRegs]int64
	Stack     []StackEntry
	Exited    uint64
	Initial   uint64
	AtBarrier bool
}

// Capture deep-copies the warp into a WarpState.
func (w *Warp) Capture() WarpState {
	st := WarpState{
		GID:          w.GID,
		Block:        w.Block,
		IndexInBlock: w.IndexInBlock,
		Size:         w.Size,
		Regs:         make([][isa.NumRegs]int64, len(w.regs)),
		Stack:        make([]StackEntry, len(w.stack)),
		Exited:       w.exited,
		Initial:      w.initial,
		AtBarrier:    w.AtBarrier,
	}
	copy(st.Regs, w.regs)
	copy(st.Stack, w.stack)
	return st
}

// NewWarpFromState rebuilds a warp from a captured snapshot. The state
// is deep-copied, so the snapshot stays reusable.
func NewWarpFromState(st WarpState) (*Warp, error) {
	if st.Size <= 0 || st.Size > MaxWarpSize || len(st.Regs) != st.Size {
		return nil, fmt.Errorf("simt: warp state gid=%d has bad geometry size=%d regs=%d",
			st.GID, st.Size, len(st.Regs))
	}
	w := &Warp{
		GID:          st.GID,
		Block:        st.Block,
		IndexInBlock: st.IndexInBlock,
		Size:         st.Size,
		regs:         make([][isa.NumRegs]int64, len(st.Regs)),
		stack:        make([]StackEntry, len(st.Stack)),
		exited:       st.Exited,
		initial:      st.Initial,
		AtBarrier:    st.AtBarrier,
	}
	copy(w.regs, st.Regs)
	copy(w.stack, st.Stack)
	return w, nil
}
