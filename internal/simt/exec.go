package simt

import (
	"fmt"
	"math"
	"math/bits"

	"cawa/internal/isa"
)

// StepKind classifies what the timing model must do with an executed
// instruction.
type StepKind uint8

// Step kinds.
const (
	// StepCompute is an ALU/FPU/SFU instruction: occupy the unit for the
	// class latency.
	StepCompute StepKind = iota
	// StepMem is a global-memory access: coalesce and access the L1D.
	StepMem
	// StepSMem is a shared-memory access: fixed low latency.
	StepSMem
	// StepBarrier parked the warp at the block barrier.
	StepBarrier
	// StepExit terminated the active lanes.
	StepExit
)

// MemAccess is one lane's memory request.
type MemAccess struct {
	Lane int
	Addr int64
}

// Step reports everything the timing model and the criticality predictor
// need to know about one executed warp instruction.
type Step struct {
	PC    int32
	Instr isa.Instr
	Kind  StepKind
	Mask  uint64 // lanes that executed
	Lanes int    // popcount of Mask

	// Memory information (Kind==StepMem or StepSMem).
	IsLoad   bool
	Accesses []MemAccess

	// Branch information, consumed by the criticality prediction logic
	// (Section 3.1, Algorithm 2).
	CondBranch bool
	Divergent  bool   // lanes split between taken and fall-through
	TakenMask  uint64 // lanes that took the branch
	NextPC     int32  // PC the warp continues at (-1 when done)
}

// Exec executes the next instruction of the warp functionally and
// returns its Step record. The caller must ensure the warp is not done
// and not waiting at a barrier.
func Exec(w *Warp, prog *isa.Program, ctx *ExecContext) Step {
	var st Step
	ExecInto(w, prog, ctx, &st)
	return st
}

// ExecInto executes the next instruction of the warp functionally,
// overwriting *out with its Step record. The previous occupant's
// Accesses backing array is reused, so a caller that recycles one Step
// across issues executes allocation-free in the steady state. The
// caller must ensure the warp is not done and not waiting at a barrier.
func ExecInto(w *Warp, prog *isa.Program, ctx *ExecContext, out *Step) {
	w.popReconverged()
	e := w.top()
	pc := e.PC
	mask := e.Mask
	in := prog.At(pc)

	st := out
	*st = Step{PC: pc, Instr: in, Mask: mask, Lanes: bits.OnesCount64(mask), Kind: StepCompute,
		Accesses: st.Accesses[:0]}

	switch in.Op {
	case isa.OpBra:
		e.PC = in.Target()

	case isa.OpCBra, isa.OpCBraZ:
		st.CondBranch = true
		var taken uint64
		for lane := 0; lane < w.Size; lane++ {
			if mask&(1<<uint(lane)) == 0 {
				continue
			}
			v := w.regs[lane][in.A]
			if (in.Op == isa.OpCBra) == (v != 0) {
				taken |= 1 << uint(lane)
			}
		}
		st.TakenMask = taken
		switch {
		case taken == mask:
			e.PC = in.Target()
		case taken == 0:
			e.PC = pc + 1
		default:
			st.Divergent = true
			rpc := in.Rpc
			e.PC = rpc
			w.stack = append(w.stack, //cawalint:alloc-ok amortized growth of the reconvergence stack (depth bounded by divergence nesting)
				StackEntry{PC: pc + 1, RPC: rpc, Mask: mask &^ taken},
				StackEntry{PC: in.Target(), RPC: rpc, Mask: taken},
			)
		}

	case isa.OpBar:
		st.Kind = StepBarrier
		w.AtBarrier = true
		e.PC = pc + 1

	case isa.OpExit:
		st.Kind = StepExit
		w.exitLanes(mask)

	case isa.OpLd, isa.OpSt:
		st.Kind = StepMem
		st.IsLoad = in.Op == isa.OpLd
		for lane := 0; lane < w.Size; lane++ {
			if mask&(1<<uint(lane)) == 0 {
				continue
			}
			addr := w.regs[lane][in.A] + in.Imm
			st.Accesses = append(st.Accesses, MemAccess{Lane: lane, Addr: addr}) //cawalint:alloc-ok amortized growth of the reused per-slot access buffer
			switch {
			case st.IsLoad && ctx.Log != nil:
				w.regs[lane][in.Dst] = ctx.Log.Load(addr)
			case st.IsLoad:
				w.regs[lane][in.Dst] = ctx.Mem.Load(addr)
			case ctx.Log != nil:
				ctx.Log.Store(addr, w.regs[lane][in.B])
			default:
				ctx.Mem.Store(addr, w.regs[lane][in.B])
			}
		}
		e.PC = pc + 1

	case isa.OpLdS, isa.OpStS:
		st.Kind = StepSMem
		st.IsLoad = in.Op == isa.OpLdS
		for lane := 0; lane < w.Size; lane++ {
			if mask&(1<<uint(lane)) == 0 {
				continue
			}
			addr := w.regs[lane][in.A] + in.Imm
			idx := addr / 8
			if idx < 0 || idx >= int64(len(ctx.Shared)) {
				panic(fmt.Sprintf("simt: %s: shared-memory address %#x out of range (block %d, lane %d, pc %d)",
					prog.Name, addr, ctx.BlockID, lane, pc))
			}
			st.Accesses = append(st.Accesses, MemAccess{Lane: lane, Addr: addr}) //cawalint:alloc-ok amortized growth of the reused per-slot access buffer
			if st.IsLoad {
				w.regs[lane][in.Dst] = ctx.Shared[idx]
			} else {
				ctx.Shared[idx] = w.regs[lane][in.B]
			}
		}
		e.PC = pc + 1

	default:
		for lane := 0; lane < w.Size; lane++ {
			if mask&(1<<uint(lane)) == 0 {
				continue
			}
			execALU(w, lane, in, ctx)
		}
		e.PC = pc + 1
	}

	if w.Done() {
		st.NextPC = -1
	} else {
		st.NextPC = w.PC()
	}
}

// execALU computes one lane's result for a non-memory, non-control
// instruction.
func execALU(w *Warp, lane int, in isa.Instr, ctx *ExecContext) {
	r := &w.regs[lane]
	a := r[in.A]
	var b int64
	if in.BImm {
		b = in.Imm
	} else {
		b = r[in.B]
	}

	switch in.Op {
	case isa.OpNop:
	case isa.OpMov:
		r[in.Dst] = a
	case isa.OpMovI:
		r[in.Dst] = in.Imm
	case isa.OpSReg:
		r[in.Dst] = specialReg(w, lane, isa.SpecialReg(in.Imm), ctx)
	case isa.OpParam:
		idx := int(in.Imm)
		if idx >= len(ctx.Params) {
			panic(fmt.Sprintf("simt: parameter index %d out of range (have %d)", idx, len(ctx.Params)))
		}
		r[in.Dst] = ctx.Params[idx]
	case isa.OpAdd:
		r[in.Dst] = a + b
	case isa.OpSub:
		r[in.Dst] = a - b
	case isa.OpMul:
		r[in.Dst] = a * b
	case isa.OpMad:
		r[in.Dst] = a*b + r[in.Dst]
	case isa.OpDiv:
		if b == 0 {
			r[in.Dst] = 0
		} else {
			r[in.Dst] = a / b
		}
	case isa.OpRem:
		if b == 0 {
			r[in.Dst] = 0
		} else {
			r[in.Dst] = a % b
		}
	case isa.OpMin:
		r[in.Dst] = min(a, b)
	case isa.OpMax:
		r[in.Dst] = max(a, b)
	case isa.OpAnd:
		r[in.Dst] = a & b
	case isa.OpOr:
		r[in.Dst] = a | b
	case isa.OpXor:
		r[in.Dst] = a ^ b
	case isa.OpShl:
		r[in.Dst] = a << clampShift(b)
	case isa.OpShr:
		r[in.Dst] = a >> clampShift(b)
	case isa.OpAbs:
		if a < 0 {
			r[in.Dst] = -a
		} else {
			r[in.Dst] = a
		}
	case isa.OpSetLT:
		r[in.Dst] = b2i(a < b)
	case isa.OpSetLE:
		r[in.Dst] = b2i(a <= b)
	case isa.OpSetEQ:
		r[in.Dst] = b2i(a == b)
	case isa.OpSetNE:
		r[in.Dst] = b2i(a != b)
	case isa.OpSetGT:
		r[in.Dst] = b2i(a > b)
	case isa.OpSetGE:
		r[in.Dst] = b2i(a >= b)
	case isa.OpSel:
		if r[in.Dst] != 0 {
			r[in.Dst] = a
		} else {
			r[in.Dst] = b
		}
	case isa.OpFAdd:
		r[in.Dst] = isa.F2B(isa.B2F(a) + isa.B2F(b))
	case isa.OpFSub:
		r[in.Dst] = isa.F2B(isa.B2F(a) - isa.B2F(b))
	case isa.OpFMul:
		r[in.Dst] = isa.F2B(isa.B2F(a) * isa.B2F(b))
	case isa.OpFMad:
		r[in.Dst] = isa.F2B(isa.B2F(a)*isa.B2F(b) + isa.B2F(r[in.Dst]))
	case isa.OpFDiv:
		r[in.Dst] = isa.F2B(isa.B2F(a) / isa.B2F(b))
	case isa.OpFSqrt:
		r[in.Dst] = isa.F2B(math.Sqrt(isa.B2F(a)))
	case isa.OpFMin:
		r[in.Dst] = isa.F2B(math.Min(isa.B2F(a), isa.B2F(b)))
	case isa.OpFMax:
		r[in.Dst] = isa.F2B(math.Max(isa.B2F(a), isa.B2F(b)))
	case isa.OpFAbs:
		r[in.Dst] = isa.F2B(math.Abs(isa.B2F(a)))
	case isa.OpFNeg:
		r[in.Dst] = isa.F2B(-isa.B2F(a))
	case isa.OpFExp:
		r[in.Dst] = isa.F2B(math.Exp(isa.B2F(a)))
	case isa.OpFLog:
		r[in.Dst] = isa.F2B(math.Log(isa.B2F(a)))
	case isa.OpCvtIF:
		r[in.Dst] = isa.F2B(float64(a))
	case isa.OpCvtFI:
		r[in.Dst] = int64(isa.B2F(a))
	case isa.OpFSetLT:
		r[in.Dst] = b2i(isa.B2F(a) < isa.B2F(b))
	case isa.OpFSetLE:
		r[in.Dst] = b2i(isa.B2F(a) <= isa.B2F(b))
	case isa.OpFSetGT:
		r[in.Dst] = b2i(isa.B2F(a) > isa.B2F(b))
	case isa.OpFSetGE:
		r[in.Dst] = b2i(isa.B2F(a) >= isa.B2F(b))
	case isa.OpFSetEQ:
		r[in.Dst] = b2i(isa.B2F(a) == isa.B2F(b))
	default:
		panic(fmt.Sprintf("simt: unimplemented opcode %s", in.Op))
	}
}

func specialReg(w *Warp, lane int, sr isa.SpecialReg, ctx *ExecContext) int64 {
	tid := int64(w.IndexInBlock*w.Size + lane)
	switch sr {
	case isa.SRTid:
		return tid
	case isa.SRNtid:
		return int64(ctx.BlockDim)
	case isa.SRCtaid:
		return int64(ctx.BlockID)
	case isa.SRNctaid:
		return int64(ctx.GridDim)
	case isa.SRLane:
		return int64(lane)
	case isa.SRWarp:
		return int64(w.IndexInBlock)
	case isa.SRGTid:
		return int64(ctx.BlockID)*int64(ctx.BlockDim) + tid
	}
	panic(fmt.Sprintf("simt: unknown special register %d", int64(sr)))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func clampShift(b int64) uint {
	if b < 0 {
		return 0
	}
	if b > 63 {
		return 63
	}
	return uint(b)
}
