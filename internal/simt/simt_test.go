package simt

import (
	"testing"
	"testing/quick"

	"cawa/internal/isa"
	"cawa/internal/memory"
)

func ctxFor(mem *memory.Memory, blockDim int) *ExecContext {
	return &ExecContext{
		Mem:      mem,
		Shared:   make([]int64, 256),
		Params:   []int64{memory.Base, 1000, -7},
		BlockID:  2,
		GridDim:  4,
		BlockDim: blockDim,
	}
}

// run executes the warp to completion, returning the executed steps.
func run(t *testing.T, prog *isa.Program, w *Warp, ctx *ExecContext) []Step {
	t.Helper()
	var steps []Step
	for i := 0; !w.Done(); i++ {
		if i > 100000 {
			t.Fatal("runaway warp")
		}
		if w.AtBarrier {
			w.AtBarrier = false // single-warp tests self-release
		}
		steps = append(steps, Exec(w, prog, ctx))
	}
	return steps
}

func TestUniformArithmetic(t *testing.T) {
	b := isa.NewBuilder("alu")
	b.MovI(isa.R1, 20)
	b.MovI(isa.R2, 3)
	b.Add(isa.R3, isa.R1, isa.R2) // 23
	b.Sub(isa.R4, isa.R1, isa.R2) // 17
	b.Mul(isa.R5, isa.R1, isa.R2) // 60
	b.Div(isa.R6, isa.R1, isa.R2) // 6
	b.Rem(isa.R7, isa.R1, isa.R2) // 2
	b.MovI(isa.R8, 0)
	b.Div(isa.R9, isa.R1, isa.R8)  // div by zero -> 0
	b.Rem(isa.R10, isa.R1, isa.R8) // rem by zero -> 0
	b.Min(isa.R11, isa.R1, isa.R2)
	b.Max(isa.R12, isa.R1, isa.R2)
	b.ShlI(isa.R13, isa.R2, 4) // 48
	b.ShrI(isa.R14, isa.R1, 2) // 5
	b.MovI(isa.R15, -9)
	b.Abs(isa.R16, isa.R15) // 9
	b.SetLT(isa.R17, isa.R2, isa.R1)
	b.Sel(isa.R17, isa.R1, isa.R2) // predicate true -> R1
	b.Exit()
	prog := b.MustBuild()
	w := NewWarp(0, 0, 0, 1, 32, int32(prog.Len()))
	run(t, prog, w, ctxFor(memory.New(1<<16), 32))

	want := map[isa.Reg]int64{
		isa.R3: 23, isa.R4: 17, isa.R5: 60, isa.R6: 6, isa.R7: 2,
		isa.R9: 0, isa.R10: 0, isa.R11: 3, isa.R12: 20,
		isa.R13: 48, isa.R14: 5, isa.R16: 9, isa.R17: 20,
	}
	for r, v := range want {
		if got := w.Reg(0, r); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestFloatOps(t *testing.T) {
	b := isa.NewBuilder("fpu")
	b.MovF(isa.R1, 2.0)
	b.MovF(isa.R2, 0.5)
	b.FAdd(isa.R3, isa.R1, isa.R2)
	b.FSub(isa.R4, isa.R1, isa.R2)
	b.FMul(isa.R5, isa.R1, isa.R2)
	b.FDiv(isa.R6, isa.R1, isa.R2)
	b.FSqrt(isa.R7, isa.R1)
	b.MovF(isa.R8, 3.0)
	b.FMad(isa.R8, isa.R1, isa.R2) // 2*0.5+3 = 4
	b.CvtFI(isa.R9, isa.R3)        // int(2.5) = 2
	b.MovI(isa.R10, 7)
	b.CvtIF(isa.R11, isa.R10)
	b.FNeg(isa.R12, isa.R1)
	b.FAbs(isa.R13, isa.R12)
	b.Exit()
	prog := b.MustBuild()
	w := NewWarp(0, 0, 0, 1, 32, int32(prog.Len()))
	run(t, prog, w, ctxFor(memory.New(1<<16), 32))

	wantF := map[isa.Reg]float64{
		isa.R3: 2.5, isa.R4: 1.5, isa.R5: 1.0, isa.R6: 4.0,
		isa.R7: 1.4142135623730951, isa.R8: 4.0, isa.R11: 7.0,
		isa.R12: -2.0, isa.R13: 2.0,
	}
	for r, v := range wantF {
		if got := isa.B2F(w.Reg(0, r)); got != v {
			t.Errorf("r%d = %v, want %v", r, got, v)
		}
	}
	if got := w.Reg(0, isa.R9); got != 2 {
		t.Errorf("cvt.fi = %d, want 2", got)
	}
}

func TestSpecialRegisters(t *testing.T) {
	b := isa.NewBuilder("sregs")
	b.SReg(isa.R1, isa.SRTid)
	b.SReg(isa.R2, isa.SRNtid)
	b.SReg(isa.R3, isa.SRCtaid)
	b.SReg(isa.R4, isa.SRNctaid)
	b.SReg(isa.R5, isa.SRLane)
	b.SReg(isa.R6, isa.SRWarp)
	b.SReg(isa.R7, isa.SRGTid)
	b.Exit()
	prog := b.MustBuild()
	// Warp 3 of a 128-thread block in block 2 of a 4-block grid.
	w := NewWarp(11, 2, 3, 32, 32, int32(prog.Len()))
	run(t, prog, w, ctxFor(memory.New(1<<16), 128))
	for lane := 0; lane < 32; lane++ {
		tid := int64(3*32 + lane)
		checks := map[isa.Reg]int64{
			isa.R1: tid, isa.R2: 128, isa.R3: 2, isa.R4: 4,
			isa.R5: int64(lane), isa.R6: 3, isa.R7: 2*128 + tid,
		}
		for r, v := range checks {
			if got := w.Reg(lane, r); got != v {
				t.Fatalf("lane %d r%d = %d, want %d", lane, r, got, v)
			}
		}
	}
}

func TestDivergenceAndReconvergence(t *testing.T) {
	// Odd lanes take the branch; both sides write distinct values, and
	// after the join every lane runs the tail.
	b := isa.NewBuilder("div")
	b.SReg(isa.R0, isa.SRLane)
	b.AndI(isa.R1, isa.R0, 1)
	b.CBra(isa.R1, "odd")
	b.MovI(isa.R2, 100) // even path
	b.Bra("join")
	b.Label("odd")
	b.MovI(isa.R2, 200)
	b.Label("join")
	b.AddI(isa.R3, isa.R2, 1)
	b.Exit()
	prog := b.MustBuild()
	w := NewWarp(0, 0, 0, 32, 32, int32(prog.Len()))
	steps := run(t, prog, w, ctxFor(memory.New(1<<16), 32))

	var sawDivergent bool
	for _, st := range steps {
		if st.Divergent {
			sawDivergent = true
		}
	}
	if !sawDivergent {
		t.Fatal("expected a divergent branch")
	}
	for lane := 0; lane < 32; lane++ {
		want := int64(100)
		if lane%2 == 1 {
			want = 200
		}
		if got := w.Reg(lane, isa.R2); got != want {
			t.Fatalf("lane %d r2 = %d, want %d", lane, got, want)
		}
		if got := w.Reg(lane, isa.R3); got != want+1 {
			t.Fatalf("lane %d r3 = %d, want %d (tail must run for all lanes)", lane, got, want+1)
		}
	}
	if w.StackDepth() != 0 {
		t.Fatalf("stack depth %d after completion", w.StackDepth())
	}
}

func TestDivergentLoopTripCounts(t *testing.T) {
	// Each lane loops lane+1 times; divergence increases as lanes
	// finish at different trip counts.
	b := isa.NewBuilder("divloop")
	b.SReg(isa.R0, isa.SRLane)
	b.AddI(isa.R1, isa.R0, 1) // counter
	b.MovI(isa.R2, 0)         // accumulator
	b.Label("head")
	b.AddI(isa.R2, isa.R2, 1)
	b.SubI(isa.R1, isa.R1, 1)
	b.CBra(isa.R1, "head")
	b.Exit()
	prog := b.MustBuild()
	w := NewWarp(0, 0, 0, 8, 32, int32(prog.Len()))
	run(t, prog, w, ctxFor(memory.New(1<<16), 32))
	for lane := 0; lane < 8; lane++ {
		if got := w.Reg(lane, isa.R2); got != int64(lane+1) {
			t.Fatalf("lane %d looped %d times, want %d", lane, got, lane+1)
		}
	}
}

func TestPartialExit(t *testing.T) {
	// Lanes below 16 exit early; the rest continue.
	b := isa.NewBuilder("pexit")
	b.SReg(isa.R0, isa.SRLane)
	b.SetGEI(isa.R1, isa.R0, 16)
	b.CBra(isa.R1, "cont")
	b.Exit() // lanes 0-15 leave here
	b.Label("cont")
	b.MovI(isa.R2, 5)
	b.Exit()
	prog := b.MustBuild()
	w := NewWarp(0, 0, 0, 32, 32, int32(prog.Len()))
	run(t, prog, w, ctxFor(memory.New(1<<16), 32))
	for lane := 16; lane < 32; lane++ {
		if got := w.Reg(lane, isa.R2); got != 5 {
			t.Fatalf("lane %d r2 = %d, want 5", lane, got)
		}
	}
	for lane := 0; lane < 16; lane++ {
		if got := w.Reg(lane, isa.R2); got != 0 {
			t.Fatalf("lane %d r2 = %d, want 0 (exited before write)", lane, got)
		}
	}
	if w.ExitedMask() != 0xFFFFFFFF {
		t.Fatalf("exited mask %#x", w.ExitedMask())
	}
}

func TestGlobalMemoryAccess(t *testing.T) {
	mem := memory.New(1 << 16)
	base := mem.Alloc(64)
	for i := 0; i < 32; i++ {
		mem.Store(base+int64(i)*8, int64(i*11))
	}
	b := isa.NewBuilder("gmem")
	b.SReg(isa.R0, isa.SRLane)
	b.MulI(isa.R1, isa.R0, 8)
	b.Param(isa.R2, 0)
	b.Add(isa.R1, isa.R1, isa.R2)
	b.Ld(isa.R3, isa.R1, 0)
	b.AddI(isa.R3, isa.R3, 1)
	b.St(isa.R1, 256, isa.R3)
	b.Exit()
	prog := b.MustBuild()
	w := NewWarp(0, 0, 0, 32, 32, int32(prog.Len()))
	ctx := ctxFor(mem, 32)
	ctx.Params = []int64{base}
	steps := run(t, prog, w, ctx)

	var loads, stores int
	for _, st := range steps {
		if st.Kind == StepMem {
			if st.IsLoad {
				loads++
				if len(st.Accesses) != 32 {
					t.Fatalf("load accesses = %d", len(st.Accesses))
				}
			} else {
				stores++
			}
		}
	}
	if loads != 1 || stores != 1 {
		t.Fatalf("loads=%d stores=%d", loads, stores)
	}
	for i := 0; i < 32; i++ {
		if got := mem.Load(base + 256 + int64(i)*8); got != int64(i*11+1) {
			t.Fatalf("store result [%d] = %d", i, got)
		}
	}
}

func TestSharedMemoryAndBounds(t *testing.T) {
	b := isa.NewBuilder("smem")
	b.SReg(isa.R0, isa.SRLane)
	b.MulI(isa.R1, isa.R0, 8)
	b.AddI(isa.R2, isa.R0, 40)
	b.StS(isa.R1, 0, isa.R2)
	b.LdS(isa.R3, isa.R1, 0)
	b.Exit()
	prog := b.MustBuild()
	w := NewWarp(0, 0, 0, 4, 32, int32(prog.Len()))
	run(t, prog, w, ctxFor(memory.New(1<<16), 32))
	for lane := 0; lane < 4; lane++ {
		if got := w.Reg(lane, isa.R3); got != int64(lane+40) {
			t.Fatalf("lane %d shared roundtrip = %d", lane, got)
		}
	}

	// Out-of-bounds shared access panics (simulation fault).
	b2 := isa.NewBuilder("smem_oob")
	b2.MovI(isa.R1, 1<<20)
	b2.LdS(isa.R2, isa.R1, 0)
	b2.Exit()
	prog2 := b2.MustBuild()
	w2 := NewWarp(0, 0, 0, 1, 32, int32(prog2.Len()))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range shared access")
		}
	}()
	Exec(w2, prog2, ctxFor(memory.New(1<<16), 32))
	Exec(w2, prog2, ctxFor(memory.New(1<<16), 32))
}

func TestBarrierStep(t *testing.T) {
	b := isa.NewBuilder("bar")
	b.Bar()
	b.MovI(isa.R1, 1)
	b.Exit()
	prog := b.MustBuild()
	w := NewWarp(0, 0, 0, 32, 32, int32(prog.Len()))
	st := Exec(w, prog, ctxFor(memory.New(1<<16), 32))
	if st.Kind != StepBarrier || !w.AtBarrier {
		t.Fatal("barrier step did not park the warp")
	}
	w.AtBarrier = false
	Exec(w, prog, ctxFor(memory.New(1<<16), 32))
	if got := w.Reg(0, isa.R1); got != 1 {
		t.Fatal("post-barrier instruction did not run")
	}
}

func TestKernelValidate(t *testing.T) {
	b := isa.NewBuilder("k")
	b.Exit()
	p := b.MustBuild()
	good := &Kernel{Name: "k", Program: p, GridDim: 1, BlockDim: 32}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid kernel rejected: %v", err)
	}
	bad := []*Kernel{
		{Name: "no-prog", GridDim: 1, BlockDim: 32},
		{Name: "no-grid", Program: p, BlockDim: 32},
		{Name: "no-block", Program: p, GridDim: 1},
		{Name: "neg-shared", Program: p, GridDim: 1, BlockDim: 1, SharedWords: -1},
	}
	for _, k := range bad {
		if err := k.Validate(); err == nil {
			t.Errorf("%s: expected validation error", k.Name)
		}
	}
	if got := good.WarpsPerBlock(32); got != 1 {
		t.Errorf("WarpsPerBlock = %d", got)
	}
	k := &Kernel{Name: "x", Program: p, GridDim: 3, BlockDim: 100}
	if got := k.WarpsPerBlock(32); got != 4 {
		t.Errorf("WarpsPerBlock(100 threads) = %d, want 4", got)
	}
	if got := k.TotalThreads(); got != 300 {
		t.Errorf("TotalThreads = %d", got)
	}
}

// TestSelConsistency checks Sel against its definition on random
// operands (property test).
func TestSelConsistency(t *testing.T) {
	f := func(p bool, a, c int64) bool {
		b := isa.NewBuilder("sel")
		pv := int64(0)
		if p {
			pv = 1
		}
		b.MovI(isa.R1, pv)
		b.MovI(isa.R2, a)
		b.MovI(isa.R3, c)
		b.Mov(isa.R4, isa.R1)
		b.Sel(isa.R4, isa.R2, isa.R3)
		b.Exit()
		prog := b.MustBuild()
		w := NewWarp(0, 0, 0, 1, 32, int32(prog.Len()))
		for !w.Done() {
			Exec(w, prog, ctxFor(memory.New(1<<12), 32))
		}
		want := c
		if p {
			want = a
		}
		return w.Reg(0, isa.R4) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
