package simt

import (
	"math"
	"testing"

	"cawa/internal/isa"
	"cawa/internal/memory"
)

// evalOne builds a tiny program around one instruction and returns the
// destination value for lane 0.
func evalOne(t *testing.T, setup func(*isa.Builder)) int64 {
	t.Helper()
	b := isa.NewBuilder("one")
	setup(b)
	b.Exit()
	prog := b.MustBuild()
	w := NewWarp(0, 0, 0, 1, 32, int32(prog.Len()))
	ctx := &ExecContext{Mem: memory.New(1 << 12), Shared: make([]int64, 8), BlockDim: 32, GridDim: 1}
	for !w.Done() {
		Exec(w, prog, ctx)
	}
	return w.Reg(0, isa.R15)
}

func TestShiftEdgeCases(t *testing.T) {
	// Shift amounts are clamped to [0, 63].
	if got := evalOne(t, func(b *isa.Builder) {
		b.MovI(isa.R1, 1)
		b.ShlI(isa.R15, isa.R1, 200)
	}); got != math.MinInt64 { // 1 << 63 wraps to the sign bit
		t.Fatalf("shl 200 = %d", got)
	}
	if got := evalOne(t, func(b *isa.Builder) {
		b.MovI(isa.R1, 8)
		b.MovI(isa.R2, -5)
		b.Shl(isa.R15, isa.R1, isa.R2)
	}); got != 8 {
		t.Fatalf("negative shift = %d", got)
	}
	// Arithmetic right shift preserves sign.
	if got := evalOne(t, func(b *isa.Builder) {
		b.MovI(isa.R1, -16)
		b.ShrI(isa.R15, isa.R1, 2)
	}); got != -4 {
		t.Fatalf("arithmetic shr = %d", got)
	}
}

func TestMadAccumulates(t *testing.T) {
	if got := evalOne(t, func(b *isa.Builder) {
		b.MovI(isa.R15, 100)
		b.MovI(isa.R1, 6)
		b.MovI(isa.R2, 7)
		b.Mad(isa.R15, isa.R1, isa.R2)
	}); got != 142 {
		t.Fatalf("mad = %d", got)
	}
}

func TestTranscendentals(t *testing.T) {
	got := evalOne(t, func(b *isa.Builder) {
		b.MovF(isa.R1, 2)
		b.FExp(isa.R15, isa.R1)
	})
	if f := isa.B2F(got); f != math.Exp(2) {
		t.Fatalf("fexp = %v", f)
	}
	got = evalOne(t, func(b *isa.Builder) {
		b.MovF(isa.R1, math.E)
		b.FLog(isa.R15, isa.R1)
	})
	if f := isa.B2F(got); f != 1 {
		t.Fatalf("flog(e) = %v", f)
	}
	got = evalOne(t, func(b *isa.Builder) {
		b.MovF(isa.R1, 2.5)
		b.MovF(isa.R2, -1.5)
		b.FMin(isa.R15, isa.R1, isa.R2)
	})
	if f := isa.B2F(got); f != -1.5 {
		t.Fatalf("fmin = %v", f)
	}
}

func TestIntMinMaxAbsLogic(t *testing.T) {
	cases := []struct {
		build func(*isa.Builder)
		want  int64
	}{
		{func(b *isa.Builder) { b.MovI(isa.R1, 5); b.MovI(isa.R2, -7); b.Min(isa.R15, isa.R1, isa.R2) }, -7},
		{func(b *isa.Builder) { b.MovI(isa.R1, 5); b.MovI(isa.R2, -7); b.Max(isa.R15, isa.R1, isa.R2) }, 5},
		{func(b *isa.Builder) { b.MovI(isa.R1, 0xF0); b.AndI(isa.R15, isa.R1, 0x3C) }, 0x30},
		{func(b *isa.Builder) { b.MovI(isa.R1, 0xF0); b.OrI(isa.R15, isa.R1, 0x0F) }, 0xFF},
		{func(b *isa.Builder) { b.MovI(isa.R1, 0xFF); b.XorI(isa.R15, isa.R1, 0x0F) }, 0xF0},
		{func(b *isa.Builder) { b.MovI(isa.R1, math.MinInt64+1); b.Abs(isa.R15, isa.R1) }, math.MaxInt64},
	}
	for i, c := range cases {
		if got := evalOne(t, c.build); got != c.want {
			t.Errorf("case %d: got %d, want %d", i, got, c.want)
		}
	}
}

func TestFloatComparisonsAndSelect(t *testing.T) {
	got := evalOne(t, func(b *isa.Builder) {
		b.MovF(isa.R1, 1.5)
		b.MovF(isa.R2, 2.5)
		b.FSetLE(isa.R15, isa.R1, isa.R2)
	})
	if got != 1 {
		t.Fatalf("fset.le = %d", got)
	}
	// NaN compares false under every ordered comparison.
	got = evalOne(t, func(b *isa.Builder) {
		b.MovF(isa.R1, math.NaN())
		b.MovF(isa.R2, 0)
		b.FSetGE(isa.R15, isa.R1, isa.R2)
	})
	if got != 0 {
		t.Fatalf("fset.ge(NaN) = %d", got)
	}
}

func TestCvtTruncates(t *testing.T) {
	got := evalOne(t, func(b *isa.Builder) {
		b.MovF(isa.R1, -2.9)
		b.CvtFI(isa.R15, isa.R1)
	})
	if got != -2 {
		t.Fatalf("cvt.fi(-2.9) = %d (truncation toward zero expected)", got)
	}
}
