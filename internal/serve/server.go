// Package serve turns a harness.Session into a long-running HTTP
// simulation service: clients submit (application, design point) jobs,
// poll their status, and fetch results; the service executes them on
// the session's bounded worker pool behind an admission queue with
// backpressure, deduplicates concurrent identical requests through the
// session's singleflight cache, and — when the session carries a
// harness.DiskCache — survives restarts without re-simulating.
//
// The package sits entirely outside the deterministic simulation core:
// it owns goroutines, wall-clock time and request contexts, and talks
// to the simulator only through harness.Session.RunContext, which
// plumbs cancellation down to the cycle loop. A dead client, an
// expired per-job deadline, or a drain therefore frees its worker slot
// within a bounded amount of simulation work.
package serve

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cawa/internal/core"
	"cawa/internal/harness"
	"cawa/internal/obs"
	"cawa/internal/sched"
	"cawa/internal/workloads"
)

// Config parameterizes a Server.
type Config struct {
	// Session executes and caches the runs. Required. Its worker count
	// bounds concurrent simulations; attach a harness.DiskCache to it
	// for persistence across restarts.
	Session *harness.Session
	// Workers is the number of job-executing workers (default: the
	// session's worker-pool bound). More workers than session slots
	// just queue inside the session.
	Workers int
	// QueueDepth bounds the admission queue; a submit that finds the
	// queue full is rejected with HTTP 429 + Retry-After rather than
	// accepted into an unbounded backlog. Default 64.
	QueueDepth int
	// DefaultTimeout caps each job's run unless the request carries its
	// own timeout_ms. Zero means no deadline.
	DefaultTimeout time.Duration
	// RetryAfter is the backoff hint attached to 429 responses.
	// Default 1s.
	RetryAfter time.Duration
	// Logger receives the structured request log: one line per
	// lifecycle transition (submitted, started, done/failed/canceled)
	// carrying the request id, job id, app, system, outcome and
	// queue/run durations. Nil discards the log.
	Logger *slog.Logger
}

// RunRequest is the submit payload: one application on one design
// point, executed at the service session's workload scaling.
type RunRequest struct {
	App       string `json:"app"`
	Scheduler string `json:"scheduler"`            // default "lrr"
	CPL       bool   `json:"cpl,omitempty"`        // criticality prediction
	CACP      bool   `json:"cacp,omitempty"`       // cache prioritization (implies CPL)
	TimeoutMS int64  `json:"timeout_ms,omitempty"` // per-job deadline override
}

// System maps the request to a design point.
func (r RunRequest) System() core.SystemConfig {
	s := r.Scheduler
	if s == "" {
		s = "lrr"
	}
	return core.SystemConfig{Scheduler: s, CPL: r.CPL || r.CACP, CACP: r.CACP}
}

// Validate rejects requests the simulator is guaranteed to refuse,
// before they consume a queue slot.
func (r RunRequest) Validate() error {
	found := false
	for _, name := range workloads.Names() {
		if name == r.App {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown app %q (have %v)", r.App, workloads.Names())
	}
	sc := r.System()
	if _, ok := sched.Lookup(sc.Scheduler); !ok {
		return fmt.Errorf("unknown scheduler %q (have %v)", sc.Scheduler, sched.Names())
	}
	if _, err := sc.Key(); err != nil {
		return err
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("negative timeout_ms %d", r.TimeoutMS)
	}
	return nil
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// job is one submitted run and its lifecycle.
type job struct {
	id    string
	reqID string // client's X-Request-ID, or a generated req-N
	req   RunRequest
	sys   core.SystemConfig

	ctx      context.Context
	cancel   context.CancelFunc
	done     chan struct{} // closed when the job reaches a terminal state
	canceled bool          // an explicit cancel (client or drain) was requested

	state  string
	err    string
	result *harness.Result

	submitted time.Time
	started   time.Time
	finished  time.Time
}

// JobStatus is the poll view of a job. Beyond the state machine it
// carries a machine-readable timeline — absolute RFC3339 transition
// stamps plus derived queue/run durations — so a client can reconstruct
// where a request spent its time without scraping the request log.
type JobStatus struct {
	ID        string `json:"id"`
	RequestID string `json:"request_id,omitempty"`
	App       string `json:"app"`
	System    string `json:"system"`
	State     string `json:"state"`
	Error     string `json:"error,omitempty"`
	// Seconds the job has spent in its current lifecycle (queued wait
	// for queued jobs, run time for running/terminal jobs).
	Seconds float64 `json:"seconds"`

	// Timeline: SubmittedAt is always set; StartedAt once a worker
	// picked the job up (never for a queued-cancel); FinishedAt at any
	// terminal state. QueueSeconds covers submitted->started (or
	// submitted->finished for queued cancels); RunSeconds covers
	// started->finished.
	SubmittedAt  string  `json:"submitted_at"`
	StartedAt    string  `json:"started_at,omitempty"`
	FinishedAt   string  `json:"finished_at,omitempty"`
	QueueSeconds float64 `json:"queue_seconds,omitempty"`
	RunSeconds   float64 `json:"run_seconds,omitempty"`
}

// Server is the HTTP simulation service.
type Server struct {
	cfg  Config
	sess *harness.Session
	reg  *obs.Registry
	log  *slog.Logger

	// Latency histograms, observed at job lifecycle transitions and
	// rendered by /metrics with the full _bucket/_sum/_count contract.
	queueWait *obs.HistogramMetric // submitted -> started
	runDur    *obs.HistogramMetric // started -> finished
	reqDur    *obs.HistogramMetric // submitted -> finished (end-to-end)

	nextReqID atomic.Uint64

	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup
	started   time.Time

	mu          sync.Mutex
	jobs        map[string]*job
	queue       chan *job
	nextID      int
	draining    bool
	queueClosed bool
	busy        int

	submitted uint64
	rejected  uint64
	completed uint64
	failed    uint64
	canceled  uint64
}

// New builds and starts a Server: its workers begin draining the
// admission queue immediately. Call Drain to stop it.
func New(cfg Config) *Server {
	if cfg.Session == nil {
		panic("serve: Config.Session is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = cfg.Session.Workers()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		sess:      cfg.Session,
		log:       cfg.Logger,
		baseCtx:   ctx,
		cancelAll: cancel,
		started:   time.Now(),
		jobs:      make(map[string]*job),
		queue:     make(chan *job, cfg.QueueDepth),
	}
	s.reg = s.buildRegistry()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// buildRegistry registers the service's operational gauges; /metrics
// renders them through the obs text exposition alongside the session
// manifest counters.
func (s *Server) buildRegistry() *obs.Registry {
	reg := &obs.Registry{}
	locked := func(f func() float64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return f()
		}
	}
	reg.Gauge("serve_queue_depth", obs.GPUScope, func() float64 { return float64(len(s.queue)) })
	reg.Gauge("serve_queue_capacity", obs.GPUScope, func() float64 { return float64(cap(s.queue)) })
	reg.Gauge("serve_workers", obs.GPUScope, func() float64 { return float64(s.cfg.Workers) })
	reg.Gauge("serve_workers_busy", obs.GPUScope, locked(func() float64 { return float64(s.busy) }))
	reg.Gauge("serve_draining", obs.GPUScope, locked(func() float64 {
		if s.draining {
			return 1
		}
		return 0
	}))
	reg.Gauge("serve_uptime_seconds", obs.GPUScope, func() float64 { return time.Since(s.started).Seconds() })
	reg.Rate("serve_jobs_submitted_total", obs.GPUScope, locked(func() float64 { return float64(s.submitted) }))
	reg.Rate("serve_jobs_rejected_total", obs.GPUScope, locked(func() float64 { return float64(s.rejected) }))
	reg.Rate("serve_jobs_completed_total", obs.GPUScope, locked(func() float64 { return float64(s.completed) }))
	reg.Rate("serve_jobs_failed_total", obs.GPUScope, locked(func() float64 { return float64(s.failed) }))
	reg.Rate("serve_jobs_canceled_total", obs.GPUScope, locked(func() float64 { return float64(s.canceled) }))
	s.queueWait = reg.Histogram("serve_queue_wait_seconds", obs.GPUScope)
	s.runDur = reg.Histogram("serve_run_seconds", obs.GPUScope)
	s.reqDur = reg.Histogram("serve_request_seconds", obs.GPUScope)
	return reg
}

// errQueueFull and errDraining classify admission failures for the
// HTTP layer.
var (
	errQueueFull = fmt.Errorf("admission queue full")
	errDraining  = fmt.Errorf("server is draining")
)

// requestID returns the caller-supplied id unchanged, or mints a
// server-local one so every log line and timeline is traceable.
func (s *Server) requestID(supplied string) string {
	if supplied != "" {
		return supplied
	}
	return fmt.Sprintf("req-%06d", s.nextReqID.Add(1))
}

// jobAttrs are the slog attributes shared by every lifecycle line of
// one job, keeping the request log joinable on either id.
func jobAttrs(j *job) []any {
	return []any{
		slog.String("request_id", j.reqID),
		slog.String("job_id", j.id),
		slog.String("app", j.req.App),
		slog.String("system", j.sys.Label()),
	}
}

// submit validates and enqueues a job. The returned job is owned by
// the server; callers observe it through its done channel and Status.
func (s *Server) submit(req RunRequest, reqID string) (*job, error) {
	if err := req.Validate(); err != nil {
		s.log.Warn("job rejected", slog.String("request_id", reqID),
			slog.String("app", req.App), slog.String("reason", err.Error()))
		return nil, err
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.log.Warn("job rejected", slog.String("request_id", reqID),
			slog.String("app", req.App), slog.String("reason", errDraining.Error()))
		return nil, errDraining
	}
	s.nextID++
	j := &job{
		id:        fmt.Sprintf("job-%06d", s.nextID),
		reqID:     reqID,
		req:       req,
		sys:       req.System(),
		done:      make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}
	if timeout > 0 {
		j.ctx, j.cancel = context.WithTimeout(s.baseCtx, timeout)
	} else {
		j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	}
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.submitted++
		s.log.Info("job submitted", jobAttrs(j)...)
		return j, nil
	default:
		s.rejected++
		j.cancel()
		s.log.Warn("job rejected", slog.String("request_id", reqID),
			slog.String("app", req.App), slog.String("reason", errQueueFull.Error()))
		return nil, errQueueFull
	}
}

// worker executes queued jobs until the queue closes (drain).
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob drives one job through the session and records its outcome,
// observing queue-wait, run and end-to-end latencies on the way.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	s.busy++
	s.mu.Unlock()

	wait := j.started.Sub(j.submitted).Seconds()
	s.queueWait.Observe(wait)
	s.log.Info("job started", append(jobAttrs(j), slog.Float64("queue_seconds", wait))...)

	res, err := s.sess.RunContext(j.ctx, j.req.App, j.sys)

	s.mu.Lock()
	s.busy--
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
		s.completed++
	case j.ctx.Err() != nil:
		j.state = StateCanceled
		j.err = err.Error()
		s.canceled++
	default:
		j.state = StateFailed
		j.err = err.Error()
		s.failed++
	}
	outcome, errText := j.state, j.err
	close(j.done)
	s.mu.Unlock()
	j.cancel() // release the deadline timer

	run := j.finished.Sub(j.started).Seconds()
	total := j.finished.Sub(j.submitted).Seconds()
	s.runDur.Observe(run)
	s.reqDur.Observe(total)
	attrs := append(jobAttrs(j),
		slog.String("outcome", outcome),
		slog.Float64("queue_seconds", wait),
		slog.Float64("run_seconds", run),
		slog.Float64("request_seconds", total))
	if errText != "" {
		attrs = append(attrs, slog.String("error", errText))
	}
	s.log.Info("job finished", attrs...)
}

// cancelJob requests cancellation. Queued jobs terminate immediately;
// running jobs terminate as soon as the simulator observes the dead
// context. Unknown ids return false.
func (s *Server) cancelJob(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	j.canceled = true
	queuedCancel := j.state == StateQueued
	if queuedCancel {
		j.state = StateCanceled
		j.err = context.Canceled.Error()
		j.finished = time.Now()
		s.canceled++
		close(j.done)
	}
	s.mu.Unlock()
	j.cancel()
	if queuedCancel {
		// Never started: the whole request was queue wait.
		total := j.finished.Sub(j.submitted).Seconds()
		s.reqDur.Observe(total)
		s.log.Info("job finished", append(jobAttrs(j),
			slog.String("outcome", StateCanceled),
			slog.Float64("queue_seconds", total),
			slog.Float64("request_seconds", total))...)
	} else {
		s.log.Info("job cancel requested", jobAttrs(j)...)
	}
	return true
}

// status snapshots a job for the poll endpoint.
func (s *Server) status(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return s.statusLocked(j), true
}

func (s *Server) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:          j.id,
		RequestID:   j.reqID,
		App:         j.req.App,
		System:      j.sys.Label(),
		State:       j.state,
		Error:       j.err,
		SubmittedAt: j.submitted.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
		st.QueueSeconds = j.started.Sub(j.submitted).Seconds()
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
		if j.started.IsZero() {
			st.QueueSeconds = j.finished.Sub(j.submitted).Seconds()
		} else {
			st.RunSeconds = j.finished.Sub(j.started).Seconds()
		}
	}
	switch j.state {
	case StateQueued:
		st.Seconds = time.Since(j.submitted).Seconds()
	case StateRunning:
		st.Seconds = time.Since(j.started).Seconds()
	default:
		ref := j.started
		if ref.IsZero() {
			ref = j.submitted
		}
		st.Seconds = j.finished.Sub(ref).Seconds()
	}
	return st
}

// statuses lists every job, newest first.
func (s *Server) statuses() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, s.statusLocked(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID > out[k].ID })
	return out
}

// result returns a finished job's result.
func (s *Server) result(id string) (*harness.Result, JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, JobStatus{}, false
	}
	return j.result, s.statusLocked(j), true
}

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// BeginDrain stops admission (submits fail with 503, /healthz flips to
// 503 so load balancers stop routing here) without touching running
// jobs. Idempotent.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		s.log.Info("admission stopped")
	}
}

// Drain gracefully shuts the service down: stop admitting, let the
// workers finish the queued and in-flight runs, and — if ctx expires
// first — cancel everything still running and wait for the workers to
// observe it. The session's disk cache needs no separate flush: every
// result was written through at run end. Drain returns ctx.Err() when
// the deadline forced cancellation, nil on a clean finish.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if !s.queueClosed {
		s.queueClosed = true
		close(s.queue)
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		s.cancelAll()
		<-finished
		return ctx.Err()
	}
}
