package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"cawa/internal/obs"
	"cawa/internal/sched"
	"cawa/internal/workloads"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs             submit a RunRequest; 202 + JobStatus,
//	                          429 (+Retry-After) when the queue is full,
//	                          503 while draining
//	GET  /v1/jobs             list all jobs, newest first
//	GET  /v1/jobs/{id}        poll one job's JobStatus
//	GET  /v1/jobs/{id}/result fetch a finished job's harness.Result
//	POST /v1/jobs/{id}/cancel cancel a queued or running job
//	POST /v1/run              synchronous submit+wait; a client
//	                          disconnect cancels the run
//	GET  /v1/apps             list applications and schedulers
//	GET  /healthz             200 serving / 503 draining
//	GET  /metrics             Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /v1/run", s.handleRunSync)
	mux.HandleFunc("GET /v1/apps", s.handleApps)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.trace(mux)
}

// requestIDHeader carries the client-chosen request id; the server
// mints one when absent and echoes it on every response either way.
const requestIDHeader = "X-Request-ID"

// statusWriter captures the response code for the access log.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// trace is the outermost middleware: it assigns (or propagates) the
// request id, stores it in the request context for the submit path,
// echoes it on the response, and emits one structured access-log line
// per request with its HTTP latency. (The serve_request_seconds
// histogram tracks job submit->finish, not individual HTTP exchanges —
// polls would drown the signal.)
func (s *Server) trace(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := s.requestID(r.Header.Get(requestIDHeader))
		w.Header().Set(requestIDHeader, reqID)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r.WithContext(withRequestID(r.Context(), reqID)))
		s.log.Info("http request",
			slog.String("request_id", reqID),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.code),
			slog.Float64("seconds", time.Since(t0).Seconds()))
	})
}

// reqIDKey keys the request id in a request context.
type reqIDKey struct{}

func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDKey{}, id)
}

func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// apiError is the uniform error payload.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection is gone; nothing to do
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// admit decodes and enqueues a submit request, translating admission
// failures to their HTTP verdicts. Returns nil after writing the
// response when admission failed.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) *job {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return nil
	}
	j, err := s.submit(req, requestIDFrom(r.Context()))
	switch err {
	case nil:
		return j
	case errQueueFull:
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg)))
		writeError(w, http.StatusTooManyRequests, err)
	case errDraining:
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
	return nil
}

func retryAfterSeconds(cfg Config) int {
	sec := int(cfg.RetryAfter.Seconds())
	if sec < 1 {
		sec = 1
	}
	return sec
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	j := s.admit(w, r)
	if j == nil {
		return
	}
	st, _ := s.status(j.id)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statuses())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.status(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, st, ok := s.result(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	switch st.State {
	case StateDone:
		writeJSON(w, http.StatusOK, res)
	case StateFailed, StateCanceled:
		writeError(w, http.StatusConflict, fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error))
	default:
		// Not finished yet; tell the poller to come back.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg)))
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.cancelJob(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	st, _ := s.status(id)
	writeJSON(w, http.StatusOK, st)
}

// handleRunSync runs a job to completion within the request. The job's
// context is tied to the HTTP request context: when the client
// disconnects (or the request deadline fires), the simulation is
// cancelled and its worker slot freed within a bounded number of
// simulated cycles.
func (s *Server) handleRunSync(w http.ResponseWriter, r *http.Request) {
	j := s.admit(w, r)
	if j == nil {
		return
	}
	stop := context.AfterFunc(r.Context(), func() { s.cancelJob(j.id) })
	defer stop()
	<-j.done
	res, st, _ := s.result(j.id)
	if st.State != StateDone {
		writeError(w, http.StatusConflict, fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{
		"apps":       workloads.Names(),
		"schedulers": sched.Names(),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics exposes the service gauges plus the session manifest's
// cache counters in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.WritePrometheus(w, "cawa", s.reg); err != nil {
		return
	}
	hits, misses := s.sess.CacheStats()
	fmt.Fprintf(w, "# TYPE cawa_session_cache_hits_total counter\n")
	fmt.Fprintf(w, "cawa_session_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "# TYPE cawa_session_cache_misses_total counter\n")
	fmt.Fprintf(w, "cawa_session_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "# TYPE cawa_session_disk_hits_total counter\n")
	fmt.Fprintf(w, "cawa_session_disk_hits_total %d\n", s.sess.DiskHits())
	fmt.Fprintf(w, "# TYPE cawa_session_warm_resumes_total counter\n")
	fmt.Fprintf(w, "cawa_session_warm_resumes_total %d\n", s.sess.WarmResumes())
	m := s.sess.Manifest()
	fmt.Fprintf(w, "# TYPE cawa_session_runs_total counter\n")
	fmt.Fprintf(w, "cawa_session_runs_total %d\n", len(m.Runs))
	fmt.Fprintf(w, "# TYPE cawa_session_wall_seconds_total counter\n")
	fmt.Fprintf(w, "cawa_session_wall_seconds_total %g\n", m.WallSeconds)
}
