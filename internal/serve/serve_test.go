package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/gpu"
	"cawa/internal/harness"
	"cawa/internal/workloads"
)

var testParams = workloads.Params{Scale: 0.05, Seed: 3}

func testSession() *harness.Session {
	return harness.NewSession(config.Small(), testParams)
}

func postJSON(t *testing.T, client *http.Client, url string, body any) *http.Response {
	t.Helper()
	doc, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v
}

// TestServeEndToEnd drives the async API: submit, poll to completion,
// fetch the result — and requires the served bytes to be exactly what a
// direct harness run marshals to.
func TestServeEndToEnd(t *testing.T) {
	srv := New(Config{Session: testSession()})
	defer srv.Drain(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.Client(), ts.URL+"/v1/jobs", RunRequest{App: "bfs", Scheduler: "gcaws", CPL: true, CACP: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	st := decode[JobStatus](t, resp)
	if st.ID == "" || st.System != core.CAWA().Label() {
		t.Fatalf("submit status %+v", st)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		got := decode[JobStatus](t, resp)
		if got.State == StateDone {
			break
		}
		if got.State == StateFailed || got.State == StateCanceled {
			t.Fatalf("job ended %s: %s", got.State, got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", got.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", resp.StatusCode)
	}
	served, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	direct, err := testSession().Run("bfs", core.CAWA())
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.MarshalIndent(direct, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(served, want) {
		t.Errorf("served result differs from a direct harness run (%d vs %d bytes)", len(served), len(want))
	}
}

// blockingSession returns a session whose runs block until release is
// closed (or their ctx dies) — controlled occupancy for backpressure
// and drain tests.
func blockingSession(release <-chan struct{}) *harness.Session {
	s := testSession()
	s.SetRunFunc(func(ctx context.Context, opt harness.RunOptions) (*harness.Result, error) {
		select {
		case <-release:
			return &harness.Result{Launches: 1}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	return s
}

// submitN issues one submit per app name so each lands on a distinct
// singleflight key.
func submitN(t *testing.T, ts *httptest.Server, apps ...string) []JobStatus {
	t.Helper()
	var out []JobStatus
	for _, app := range apps {
		resp := postJSON(t, ts.Client(), ts.URL+"/v1/jobs", RunRequest{App: app})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: status %d", app, resp.StatusCode)
		}
		out = append(out, decode[JobStatus](t, resp))
	}
	return out
}

// TestServeBackpressure: with one worker busy and the queue full, the
// next submit is rejected with 429 + Retry-After, and once capacity
// frees up the queued job still completes.
func TestServeBackpressure(t *testing.T) {
	release := make(chan struct{})
	sess := blockingSession(release).SetWorkers(1)
	srv := New(Config{Session: sess, Workers: 1, QueueDepth: 1, RetryAfter: 3 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	jobs := submitN(t, ts, "bfs") // occupies the worker
	waitState(t, ts, jobs[0].ID, StateRunning)
	jobs = append(jobs, submitN(t, ts, "kmeans")...) // fills the queue

	resp := postJSON(t, ts.Client(), ts.URL+"/v1/jobs", RunRequest{App: "needle"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}

	close(release)
	for _, j := range jobs {
		waitState(t, ts, j.ID, StateDone)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func waitState(t *testing.T, ts *httptest.Server, id, want string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		got := decode[JobStatus](t, resp)
		if got.State == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (want %s; err %q)", id, got.State, want, got.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeCancel: cancelling a running job frees its worker slot
// within the engine's bounded cancellation cadence, and the job
// reports canceled.
func TestServeCancel(t *testing.T) {
	// Real simulation, no run seam: the cancel must reach the cycle
	// loop. kmeans at this scale runs long enough to still be in flight.
	sess := testSession().SetWorkers(1)
	srv := New(Config{Session: sess, Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	jobs := submitN(t, ts, "kmeans", "bfs")
	resp := postJSON(t, ts.Client(), ts.URL+"/v1/jobs/"+jobs[0].ID+"/cancel", nil)
	st := decode[JobStatus](t, resp)
	if st.State != StateCanceled && st.State != StateRunning {
		t.Fatalf("cancel response state %s", st.State)
	}
	waitState(t, ts, jobs[0].ID, StateCanceled)
	// The slot freed: the second job completes on the same worker.
	waitState(t, ts, jobs[1].ID, StateDone)

	// And the session is not poisoned: rerunning the canceled key works.
	res, err := sess.Run("kmeans", core.SystemConfig{Scheduler: "lrr"})
	if err != nil {
		t.Fatalf("rerun after cancel: %v", err)
	}
	if res.Agg.Cycles == 0 {
		t.Fatal("rerun returned an empty result")
	}
}

// TestServeSyncClientDisconnect: a synchronous /v1/run whose client
// goes away must cancel the underlying simulation and free the worker
// slot for the next job.
func TestServeSyncClientDisconnect(t *testing.T) {
	release := make(chan struct{})
	sess := blockingSession(release).SetWorkers(1)
	srv := New(Config{Session: sess, Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// LIFO: unblock the runs first, then drain cleanly.
	defer srv.Drain(context.Background())
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	doc, _ := json.Marshal(RunRequest{App: "bfs"})
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/run", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := ts.Client().Do(req)
		errc <- err
	}()

	// Wait until the sync job is running, then kill the client.
	waitAnyState(t, ts, "job-000001", StateRunning)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("expected the aborted request to error")
	}
	waitAnyState(t, ts, "job-000001", StateCanceled)

	// The worker slot is free: a fresh async job gets picked up (it
	// blocks on release like every seamed run, so "running" is the
	// proof the canceled job's slot came back).
	jobs := submitN(t, ts, "kmeans")
	waitState(t, ts, jobs[0].ID, StateRunning)
}

func waitAnyState(t *testing.T, ts *httptest.Server, id, want string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			got := decode[JobStatus](t, resp)
			if got.State == want {
				return
			}
		} else {
			resp.Body.Close()
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s", id, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeDrain: BeginDrain flips /healthz and rejects submits with
// 503; Drain lets queued and running jobs finish; a deadline-cut drain
// cancels what's left.
func TestServeDrain(t *testing.T) {
	release := make(chan struct{})
	sess := blockingSession(release).SetWorkers(1)
	srv := New(Config{Session: sess, Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	jobs := submitN(t, ts, "bfs")
	waitState(t, ts, jobs[0].ID, StateRunning)

	srv.BeginDrain()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d, want 503", resp.StatusCode)
	}
	resp = postJSON(t, ts.Client(), ts.URL+"/v1/jobs", RunRequest{App: "kmeans"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: status %d, want 503", resp.StatusCode)
	}

	// Graceful path: release the run, drain finishes cleanly.
	close(release)
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts, jobs[0].ID, StateDone)
}

// TestServeDrainDeadlineCancels: a drain whose context expires cancels
// in-flight runs instead of waiting forever.
func TestServeDrainDeadlineCancels(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	sess := blockingSession(release).SetWorkers(1)
	srv := New(Config{Session: sess, Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	jobs := submitN(t, ts, "bfs")
	waitState(t, ts, jobs[0].ID, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("deadline drain: err %v, want DeadlineExceeded", err)
	}
	waitState(t, ts, jobs[0].ID, StateCanceled)
}

// TestServeRestartFromDiskCache: a second service instance on the same
// cache directory serves the first instance's campaign without
// simulating — the restart acceptance criterion.
func TestServeRestartFromDiskCache(t *testing.T) {
	dir := t.TempDir()
	runOnce := func() ([]byte, *harness.Session) {
		disk, err := harness.OpenDiskCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		sess := testSession()
		sess.Disk = disk
		srv := New(Config{Session: sess})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		resp := postJSON(t, ts.Client(), ts.URL+"/v1/run", RunRequest{App: "bfs", Scheduler: "gto"})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("sync run: status %d: %s", resp.StatusCode, body)
		}
		doc, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		return doc, sess
	}

	first, s1 := runOnce()
	if len(s1.Timings()) != 1 || s1.DiskHits() != 0 {
		t.Fatalf("first instance: %d simulations, %d disk hits", len(s1.Timings()), s1.DiskHits())
	}
	second, s2 := runOnce()
	if len(s2.Timings()) != 0 || s2.DiskHits() != 1 {
		t.Fatalf("restarted instance: %d simulations, %d disk hits; want 0 and 1",
			len(s2.Timings()), s2.DiskHits())
	}
	if !bytes.Equal(first, second) {
		t.Error("restarted instance served different bytes than the original run")
	}
}

// TestServeWarmStartResumesCheckpoint: a checkpoint persisted by an
// interrupted run warm-starts the next request for the same design
// point instead of re-simulating from cycle zero, and the served result
// equals an uninterrupted run's.
func TestServeWarmStartResumesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	disk, err := harness.OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	sc := core.CAWA()
	sysKey, err := sc.Key()
	if err != nil {
		t.Fatal(err)
	}

	opt := harness.RunOptions{Workload: "bfs", Params: testParams, System: sc, Config: config.Small()}
	ref, err := harness.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	hooked := opt
	cutAt := ref.Agg.Cycles / 2
	hooked.PerCycle = func(_ *gpu.GPU, cycle int64) {
		if cycle >= cutAt {
			cancel()
		}
	}
	_, last, err := harness.RunCheckpointed(ctx, hooked, 1_000, nil)
	if err == nil || last == nil {
		t.Fatalf("interrupted run: err=%v checkpoint=%v", err, last != nil)
	}
	key := disk.CheckpointKey(disk.EntryKey("bfs", sysKey, testParams, config.Small()))
	if err := disk.StoreCheckpoint(key, last); err != nil {
		t.Fatal(err)
	}

	sess := testSession()
	sess.Disk = disk
	srv := New(Config{Session: sess})
	defer srv.Drain(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.Client(), ts.URL+"/v1/run", RunRequest{App: "bfs", Scheduler: "gcaws", CPL: true, CACP: true})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("sync run: status %d: %s", resp.StatusCode, body)
	}
	got := decode[harness.Result](t, resp)
	if got.Agg.Cycles != ref.Agg.Cycles || got.Agg.Instructions != ref.Agg.Instructions ||
		got.Agg.L1DMisses != ref.Agg.L1DMisses || got.Launches != ref.Launches {
		t.Fatalf("served aggregate differs from uninterrupted run:\nserved %+v\nref    %+v", got.Agg, ref.Agg)
	}
	if n := sess.WarmResumes(); n != 1 {
		t.Fatalf("WarmResumes = %d, want 1", n)
	}
	if _, ok := disk.LoadCheckpoint(key); ok {
		t.Fatal("checkpoint artifact survived the completed run")
	}
}

// TestServeValidation: malformed requests are rejected up front.
func TestServeValidation(t *testing.T) {
	srv := New(Config{Session: testSession()})
	defer srv.Drain(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for name, req := range map[string]RunRequest{
		"unknown app":       {App: "no-such-app"},
		"unknown scheduler": {App: "bfs", Scheduler: "fifo"},
		"negative timeout":  {App: "bfs", TimeoutMS: -1},
	} {
		resp := postJSON(t, ts.Client(), ts.URL+"/v1/jobs", req)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestServeMetricsAndApps: /metrics speaks the Prometheus text format
// and reflects job counters; /v1/apps lists the registered workloads.
func TestServeMetricsAndApps(t *testing.T) {
	srv := New(Config{Session: testSession(), Workers: 2})
	defer srv.Drain(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	jobs := submitN(t, ts, "bfs")
	waitState(t, ts, jobs[0].ID, StateDone)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE cawa_serve_queue_depth gauge",
		"cawa_serve_jobs_submitted_total 1",
		"cawa_serve_jobs_completed_total 1",
		"cawa_session_cache_misses_total 1",
		"cawa_session_runs_total 1",
		"cawa_serve_workers 2",
		// The three latency histograms speak the full prometheus
		// histogram contract after one completed job.
		"# TYPE cawa_serve_queue_wait_seconds histogram",
		"# TYPE cawa_serve_run_seconds histogram",
		"# TYPE cawa_serve_request_seconds histogram",
		`cawa_serve_queue_wait_seconds_bucket{le="+Inf"} 1`,
		"cawa_serve_queue_wait_seconds_count 1",
		`cawa_serve_run_seconds_bucket{le="+Inf"} 1`,
		"cawa_serve_run_seconds_count 1",
		`cawa_serve_request_seconds_bucket{le="+Inf"} 1`,
		"cawa_serve_request_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/apps")
	if err != nil {
		t.Fatal(err)
	}
	apps := decode[map[string][]string](t, resp)
	found := false
	for _, a := range apps["apps"] {
		if a == "bfs" {
			found = true
		}
	}
	if !found {
		t.Errorf("apps listing missing bfs: %v", apps)
	}
	if len(apps["schedulers"]) == 0 {
		t.Error("apps listing has no schedulers")
	}
}

// TestServeRequestTracing: the server propagates a client X-Request-ID
// (or mints one), echoes it on responses and in JobStatus, exposes a
// machine-readable timeline once the job finishes, and writes a
// structured request log whose lifecycle lines join on the request id.
func TestServeRequestTracing(t *testing.T) {
	var logBuf syncBuffer
	srv := New(Config{
		Session: testSession(),
		Logger:  slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	defer srv.Drain(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Client-supplied request id: echoed on the response and the status.
	doc, _ := json.Marshal(RunRequest{App: "bfs"})
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "trace-me-42")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "trace-me-42" {
		t.Errorf("response request id = %q, want trace-me-42", got)
	}
	st := decode[JobStatus](t, resp)
	if st.RequestID != "trace-me-42" {
		t.Errorf("status request id = %q, want trace-me-42", st.RequestID)
	}
	if st.SubmittedAt == "" {
		t.Error("submitted_at missing on fresh job")
	}
	waitState(t, ts, st.ID, StateDone)

	// Terminal status carries the full timeline.
	resp, err = ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("poll response missing a minted request id")
	}
	final := decode[JobStatus](t, resp)
	for name, v := range map[string]string{
		"submitted_at": final.SubmittedAt,
		"started_at":   final.StartedAt,
		"finished_at":  final.FinishedAt,
	} {
		if v == "" {
			t.Errorf("terminal status missing %s: %+v", name, final)
			continue
		}
		if _, err := time.Parse(time.RFC3339Nano, v); err != nil {
			t.Errorf("%s = %q is not RFC3339: %v", name, v, err)
		}
	}
	if final.QueueSeconds < 0 || final.RunSeconds <= 0 {
		t.Errorf("timeline durations queue=%v run=%v", final.QueueSeconds, final.RunSeconds)
	}

	// The request log: submitted, started and finished lines all carry
	// the client's request id and the job id; the finished line carries
	// the outcome and durations.
	lines := map[string]map[string]any{}
	for _, raw := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(raw), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", raw, err)
		}
		if rec["request_id"] == "trace-me-42" {
			lines[rec["msg"].(string)] = rec
		}
	}
	for _, msg := range []string{"job submitted", "job started", "job finished"} {
		rec, ok := lines[msg]
		if !ok {
			t.Errorf("request log missing %q line for trace-me-42\n%s", msg, logBuf.String())
			continue
		}
		if rec["job_id"] != st.ID || rec["app"] != "bfs" {
			t.Errorf("%q line has wrong identity: %v", msg, rec)
		}
	}
	if fin, ok := lines["job finished"]; ok {
		if fin["outcome"] != StateDone {
			t.Errorf("finished outcome = %v, want done", fin["outcome"])
		}
		if rs, ok := fin["run_seconds"].(float64); !ok || rs <= 0 {
			t.Errorf("finished run_seconds = %v", fin["run_seconds"])
		}
	}

	// No header: the server mints req-N ids.
	resp = postJSON(t, ts.Client(), ts.URL+"/v1/jobs", RunRequest{App: "kmeans"})
	minted := decode[JobStatus](t, resp)
	if !strings.HasPrefix(minted.RequestID, "req-") {
		t.Errorf("minted request id = %q, want req-N", minted.RequestID)
	}
	waitState(t, ts, minted.ID, StateDone)
}

// syncBuffer is a mutex-guarded bytes.Buffer: the slog handler writes
// from worker goroutines while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServeResultStates: result fetch on unfinished/failed jobs has
// useful semantics (202 while pending, 409 for terminal failures).
func TestServeResultStates(t *testing.T) {
	release := make(chan struct{})
	sess := blockingSession(release).SetWorkers(1)
	srv := New(Config{Session: sess, Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	jobs := submitN(t, ts, "bfs")
	waitState(t, ts, jobs[0].ID, StateRunning)
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + jobs[0].ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("pending result: status %d, want 202", resp.StatusCode)
	}

	postJSON(t, ts.Client(), ts.URL+"/v1/jobs/"+jobs[0].ID+"/cancel", nil).Body.Close()
	waitState(t, ts, jobs[0].ID, StateCanceled)
	resp, err = ts.Client().Get(ts.URL + "/v1/jobs/" + jobs[0].ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("canceled result: status %d, want 409", resp.StatusCode)
	}

	close(release)
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
